package hardtape

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// TestTelemetryEndToEnd drives bundles through an instrumented fleet —
// service handshake, gateway dispatch, device execution, ORAM-backed
// world state — and asserts the admin endpoint exports every layer's
// series. This is the PR's acceptance check: one scrape covers
// service, ORAM, HEVM, and fleet.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := NewTelemetry()
	opts := DefaultTestbedOptions()
	opts.EOAs = 8
	opts.Tokens = 2
	opts.DEXes = 1
	opts.HEVMs = 1
	opts.Telemetry = reg
	fcfg := DefaultFleetConfig()
	ftb, err := NewFleetTestbed(opts, 2, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ftb.Gateway.Close()

	svc := NewFleetService(ftb.Gateway, ftb.Devices[0], opts.Features.Sign)
	svc.SetTelemetry(reg)
	userConn, spConn := net.Pipe()
	defer userConn.Close()
	go func() {
		defer spConn.Close()
		_ = svc.ServeConn(spConn)
	}()
	client, err := Dial(userConn, ftb.Verifier(), opts.Features.Sign)
	if err != nil {
		t.Fatal(err)
	}

	token := ftb.World.Tokens[0]
	for i := 0; i < 3; i++ {
		from := ftb.World.EOAs[i%len(ftb.World.EOAs)]
		to := ftb.World.EOAs[(i+1)%len(ftb.World.EOAs)]
		tx, err := ftb.World.SignedTxAt(from, 0, &token, 0,
			workload.CalldataTransfer(to, 5), 200_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := client.PreExecute(&types.Bundle{Txs: []*types.Transaction{tx}})
		if err != nil {
			t.Fatal(err)
		}
		if res.AbortReason != "" {
			t.Fatalf("bundle aborted: %s", res.AbortReason)
		}
	}

	a, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get("http://" + a.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)

	// One representative series per pipeline layer.
	for _, series := range []string{
		"hardtape_service_sessions_total",       // service: session accepted
		"hardtape_service_handshake_seconds",    // service: attest+DHKE spans
		"hardtape_service_bundle_stage_seconds", // service: decode/execute/seal
		"hardtape_device_bundles_total",         // device: bundle outcomes
		"hardtape_evm_ops_total",                // evm: op-class samples
		"hardtape_hevm_steps_total",             // hevm: shadow machine
		"hardtape_wscache_hits_total",           // hevm L1 world-state cache
		"hardtape_oram_accesses_total",          // oram client
		"hardtape_oram_access_seconds",          // oram latency histogram
		"hardtape_fleet_submissions_total",      // gateway admission
		"hardtape_fleet_queue_wait_seconds",     // gateway wait histogram
		"hardtape_fleet_backend_dispatched_total",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}

	// The fleet Stats snapshot and the exported series must agree:
	// they are the same instruments.
	st := ftb.Gateway.Stats()
	if st.Completed == 0 || st.Admitted != 3 {
		t.Fatalf("gateway stats not backed by telemetry: %+v", st)
	}
	if st.Backends[0].HEVM.Steps+st.Backends[1].HEVM.Steps == 0 {
		t.Fatal("per-backend HEVM aggregates empty")
	}
}

// TestTelemetryDisabledParity checks the opt-out contract at the
// system level: a testbed without a registry executes bundles
// identically (the instruments are nil and record nothing).
func TestTelemetryDisabledParity(t *testing.T) {
	opts := DefaultTestbedOptions()
	opts.EOAs = 8
	opts.Tokens = 2
	opts.DEXes = 1
	opts.HEVMs = 1
	opts.Features = ConfigRaw
	tb, err := NewTestbed(opts)
	if err != nil {
		t.Fatal(err)
	}
	token := tb.World.Tokens[0]
	tx, err := tb.World.SignedTxAt(tb.World.EOAs[0], 0, &token, 0,
		workload.CalldataTransfer(tb.World.EOAs[1], 5), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Device.ExecuteContext(context.Background(), &types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil || res.GasUsed == 0 {
		t.Fatalf("disabled-telemetry execution wrong: aborted=%v gas=%d", res.Aborted, res.GasUsed)
	}
}
