// Adversary view: what a dishonest service provider actually observes.
// Runs the same user behaviour (repeated swaps on one "secret" DEX)
// against two deployments — ORAM disabled (plain page store) and the
// -full configuration — and prints each side's view, demonstrating
// the paper's access-pattern-confidentiality claim (A7).
//
//	go run ./examples/adversary-view
package main

import (
	"fmt"
	"os"
	"sort"

	"hardtape"
	"hardtape/internal/oram"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "adversary-view: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("The user secretly trades on DEX #1 (of 2). What does the SP learn?")

	// --- Deployment A: no ORAM (-ES). The SP sees which pages are
	// fetched from its (untrusted) memory. We reconstruct that view
	// from the trace's storage accesses — exactly what a plain
	// key-value service observes. ---
	fmt.Println("\n━━ deployment A: ORAM disabled (-ES) ━━")
	optsA := hardtape.DefaultTestbedOptions()
	optsA.Features = hardtape.ConfigES
	tbA, err := hardtape.NewTestbed(optsA)
	if err != nil {
		return err
	}
	secretDEX := tbA.World.DEXes[1]
	res, err := tbA.Device.Execute(swapBundle(tbA.World, secretDEX))
	if err != nil {
		return err
	}
	seen := map[hardtape.Address]int{}
	for _, tx := range res.Trace.Txs {
		for _, s := range tx.Storage {
			seen[s.Address]++
		}
	}
	fmt.Println("SP-visible plaintext accesses by contract:")
	addrs := make([]hardtape.Address, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].String() < addrs[j].String() })
	for _, a := range addrs {
		label := ""
		if a == secretDEX {
			label = "   ← the user's SECRET target, fully exposed (frontrun at will)"
		}
		fmt.Printf("  %s: %d accesses%s\n", a, seen[a], label)
	}

	// --- Deployment B: -full. The SP observes only the ORAM server's
	// event stream: uniform leaf indices on fixed-size blocks. ---
	fmt.Println("\n━━ deployment B: Path ORAM (-full) ━━")
	optsB := hardtape.DefaultTestbedOptions()
	tbB, err := hardtape.NewTestbed(optsB)
	if err != nil {
		return err
	}
	var events []oram.AccessEvent
	//hardtape:oram-direct this experiment IS the adversary: it records what the SP would see
	tbB.Device.ORAMServer().SetObserver(func(ev oram.AccessEvent) {
		events = append(events, ev)
	})
	if _, err := tbB.Device.Execute(swapBundle(tbB.World, tbB.World.DEXes[1])); err != nil {
		return err
	}
	fmt.Printf("SP-visible ORAM events: %d path accesses, every response exactly %d bytes\n",
		len(events), oram.BlockSize)
	leafCounts := map[uint64]int{}
	for _, ev := range events {
		leafCounts[ev.Leaf]++
	}
	fmt.Printf("distinct leaves touched: %d (tree has %d) — sample:",
		len(leafCounts), tbB.Device.ORAMServer().Leaves())
	for i, ev := range events {
		if i >= 10 {
			break
		}
		fmt.Printf(" %d", ev.Leaf)
	}
	fmt.Println(" ...")
	fmt.Println("no addresses, no keys, no query types: leaves are freshly randomized per access.")

	// Run the OTHER dex for comparison: the adversary cannot tell the
	// two behaviours apart from the leaf stream.
	var events2 []oram.AccessEvent
	tbB2, err := hardtape.NewTestbed(optsB)
	if err != nil {
		return err
	}
	//hardtape:oram-direct same adversary observation point for the contrast run
	tbB2.Device.ORAMServer().SetObserver(func(ev oram.AccessEvent) {
		events2 = append(events2, ev)
	})
	if _, err := tbB2.Device.Execute(swapBundle(tbB2.World, tbB2.World.DEXes[0])); err != nil {
		return err
	}
	fmt.Printf("\nsame user, DEX #0 instead: %d path accesses (vs %d) — ", len(events2), len(events))
	fmt.Println("views differ only by noise, not by target.")
	return nil
}

func swapBundle(world *workload.World, dex hardtape.Address) *hardtape.Bundle {
	var txs []*hardtape.Transaction
	for i := uint64(0); i < 3; i++ {
		tx, err := world.SignedTxAt(world.EOAs[0], i, &dex, 0,
			workload.CalldataSwap(1000*(i+1)), 400_000)
		if err != nil {
			panic(err)
		}
		txs = append(txs, tx)
	}
	return &hardtape.Bundle{Txs: txs}
}
