// Block sync: workflow step 11. New blocks execute on the (untrusted)
// node; HarDTAPE pulls the changed state with Merkle proofs, verifies
// them against the block's state root, and re-pages the data into the
// ORAM — then demonstrates that a tampered response is rejected.
//
//	go run ./examples/blocksync
package main

import (
	"fmt"
	"os"

	"hardtape"
	"hardtape/internal/node"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "blocksync: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	tb, err := hardtape.NewTestbed(hardtape.DefaultTestbedOptions())
	if err != nil {
		return err
	}

	// Produce and import three on-chain blocks of evaluation traffic.
	fmt.Println("① Importing 3 new blocks on the node...")
	for i := uint64(1); i <= 3; i++ {
		blk, err := tb.World.GenerateBlock(i, tb.Chain.Head().Header.Hash(), 25)
		if err != nil {
			return err
		}
		if err := tb.Chain.ImportBlock(blk); err != nil {
			return err
		}
		fmt.Printf("   block %d: %d txs, state root %s\n",
			i, len(blk.Txs), blk.Header.StateRoot)
	}

	// Re-sync the device: every account and record crosses the border
	// with a Merkle proof verified on-chip.
	fmt.Println("\n② Re-syncing the device (Merkle-proof verified)...")
	if err := tb.Device.Sync(); err != nil {
		return err
	}
	fmt.Println("   sync complete — new state now served obliviously")

	// A bundle now sees the post-block state.
	trader := tb.World.EOAs[2]
	token := tb.World.Tokens[0]
	nonce := uint64(0)
	if acct, ok := tb.Chain.State().Account(trader); ok {
		nonce = acct.Nonce
	}
	tx, err := tb.World.SignedTxAt(trader, nonce, &token, 0,
		workload.CalldataBalanceOf(trader), 100_000)
	if err != nil {
		return err
	}
	res, err := tb.Device.Execute(&hardtape.Bundle{Txs: []*hardtape.Transaction{tx}})
	if err != nil {
		return err
	}
	fmt.Printf("\n③ Pre-execution against block-%d state: balanceOf returned %x\n",
		tb.Chain.Head().Header.Number, res.Trace.Txs[0].ReturnData)

	// ④ The A6 attack: the SP's node serves data for a DIFFERENT state
	// root (stale or fabricated). Verification must reject it.
	fmt.Println("\n④ Adversarial node: serving proofs against a fake root...")
	fakeRoot := types.Hash{0xde, 0xad, 0xbe, 0xef}
	proof, err := tb.Chain.ProveAccount(trader)
	if err != nil {
		return err
	}
	if _, err := node.VerifyAccountProof(fakeRoot, proof); err != nil {
		fmt.Printf("   rejected as expected: %v\n", err)
	} else {
		return fmt.Errorf("SECURITY FAILURE: fake root accepted")
	}
	fmt.Println("\nintegrity holds: only Merkle-authenticated data enters the ORAM")
	return nil
}
