// HFT bundle: the paper's motivating user — a high-frequency-trading
// strategy designer testing a multi-transaction bundle (approve, swap,
// verify balance) before committing it on-chain. The bundle runs
// atomically against one pinned state version; intermediate writes are
// visible to later transactions but never persisted.
//
//	go run ./examples/hft-bundle
package main

import (
	"fmt"
	"os"

	"hardtape"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hft-bundle: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	tb, err := hardtape.NewTestbed(hardtape.DefaultTestbedOptions())
	if err != nil {
		return err
	}

	trader := tb.World.EOAs[0]
	dex := tb.World.DEXes[0]
	token := tb.World.Tokens[0]

	// The strategy: two swaps of different sizes, then a balance check
	// to read the cumulative result. Nonces run 0,1,2 within the
	// bundle — it executes sequentially against one overlay.
	var txs []*hardtape.Transaction
	mk := func(nonce uint64, to hardtape.Address, data []byte, gas uint64) error {
		tx, err := tb.World.SignedTxAt(trader, nonce, &to, 0, data, gas)
		if err != nil {
			return err
		}
		txs = append(txs, tx)
		return nil
	}
	if err := mk(0, dex, workload.CalldataSwap(10_000), 400_000); err != nil {
		return err
	}
	if err := mk(1, dex, workload.CalldataSwap(50_000), 400_000); err != nil {
		return err
	}
	if err := mk(2, token, workload.CalldataBalanceOf(trader), 100_000); err != nil {
		return err
	}

	fmt.Printf("Pre-executing 3-tx strategy bundle against block %d state...\n\n",
		tb.Chain.Head().Header.Number)
	res, err := tb.Device.Execute(&hardtape.Bundle{Txs: txs})
	if err != nil {
		return err
	}
	if res.Aborted != nil {
		return fmt.Errorf("bundle aborted: %v", res.Aborted)
	}

	startBal := uint256.NewInt(1 << 40)
	var out [2]*uint256.Int
	for i := 0; i < 2; i++ {
		tr := res.Trace.Txs[i]
		if tr.Reverted || tr.Failed {
			return fmt.Errorf("swap %d failed", i)
		}
		out[i] = new(uint256.Int).SetBytes(tr.ReturnData)
		fmt.Printf("swap %d: in=%d out=%s gas=%d frames=%d\n",
			i+1, []uint64{10_000, 50_000}[i], out[i], tr.GasUsed, len(tr.Calls))
	}
	finalBal := new(uint256.Int).SetBytes(res.Trace.Txs[2].ReturnData)
	fmt.Printf("\ntrader token balance after bundle: %s\n", finalBal)

	// The strategy designer verifies the simulation is self-consistent:
	// final balance = start + out1 + out2.
	want := new(uint256.Int).Add(startBal, out[0])
	want.Add(want, out[1])
	if !finalBal.Eq(want) {
		return fmt.Errorf("inconsistent simulation: %s != %s", finalBal, want)
	}
	fmt.Println("consistency check: final balance = start + swap outputs ✓")

	// Worth submitting? A toy decision rule on simulated output.
	totalIn := uint64(60_000)
	totalOut := new(uint256.Int).Add(out[0], out[1]).Uint64()
	fmt.Printf("\nstrategy summary: %d in → %d out (device time %v, gas %d)\n",
		totalIn, totalOut, res.VirtualTime, res.GasUsed)
	fmt.Println("nothing persisted: the real bundle can now be submitted on-chain unchanged")
	return nil
}
