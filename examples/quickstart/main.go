// Quickstart: wire all four parties in one process and pre-execute an
// ERC-20 transfer bundle through the full HarDTAPE pipeline —
// attestation, secure channel, oblivious world-state access, and the
// returned trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"net"
	"os"

	"hardtape"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The service provider's side: synthetic world, node, and a
	//    -full HarDTAPE device (3 HEVMs), synced via Merkle proofs.
	fmt.Println("① Provisioning device + syncing world state into the ORAM...")
	tb, err := hardtape.NewTestbed(hardtape.DefaultTestbedOptions())
	if err != nil {
		return err
	}
	svc := hardtape.NewService(tb.Device)

	// 2. Serve over an in-process pipe (cmd/hardtape uses TCP).
	userConn, spConn := net.Pipe()
	defer userConn.Close()
	go func() {
		defer spConn.Close()
		_ = svc.ServeConn(spConn)
	}()

	// 3. The user attests the device against the manufacturer's pinned
	//    key and the expected Hypervisor measurement, then opens the
	//    AES-GCM secure channel with per-bundle ECDSA signatures.
	fmt.Println("② Remote attestation + DHKE...")
	client, err := hardtape.Dial(userConn, tb.Verifier(), true)
	if err != nil {
		return err
	}
	fmt.Println("   device authentic, secure channel established")

	// 4. Build a bundle: transfer 1000 tokens from EOA[0] to EOA[1].
	token := tb.World.Tokens[0]
	alice, bob := tb.World.EOAs[0], tb.World.EOAs[1]
	tx, err := tb.World.SignedTxAt(alice, 0, &token, 0,
		workload.CalldataTransfer(bob, 1000), 200_000)
	if err != nil {
		return err
	}

	// 5. Pre-execute. The SP's ORAM server sees only uniform 1 KB
	//    block fetches; the trace comes back over the secure channel.
	fmt.Printf("③ Pre-executing transfer of 1000 units on %s...\n\n", token)
	res, err := client.PreExecute(&hardtape.Bundle{Txs: []*hardtape.Transaction{tx}})
	if err != nil {
		return err
	}
	if res.AbortReason != "" {
		return fmt.Errorf("bundle aborted: %s", res.AbortReason)
	}

	tr := res.Trace.Txs[0]
	fmt.Printf("   status:       ok=%v reverted=%v\n", !tr.Failed, tr.Reverted)
	fmt.Printf("   gas used:     %d\n", tr.GasUsed)
	fmt.Printf("   return value: %s (ERC-20 true)\n", new(uint256.Int).SetBytes(tr.ReturnData))
	fmt.Printf("   frames:       %d, storage accesses: %d, logs: %d\n",
		len(tr.Calls), len(tr.Storage), len(tr.Logs))
	fmt.Printf("   device time:  %v (virtual clock, paper-calibrated)\n", res.VirtualTime)
	fmt.Println("\n④ Done — nothing was persisted; the bundle was temporary.")
	return nil
}
