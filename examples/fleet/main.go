// Fleet demo: pool three HarDTAPE devices behind the gateway, push a
// burst of bundles through it, kill one device mid-run, and watch the
// fleet degrade gracefully — accepted bundles fail over to the
// survivors, over-capacity submissions get a typed ErrOverloaded, and
// the drained device is re-admitted after it recovers. The finale
// traces one high-conflict MEV bundle end to end and prints the span
// tree the flight recorder captured.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hardtape"
	"hardtape/internal/telemetry"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Three devices (2 HEVMs each) over one world, behind a gateway
	//    with a deliberately small admission queue.
	fmt.Println("① Provisioning 3 devices (2 HEVMs each) + gateway...")
	reg := hardtape.NewTelemetry()
	tr := reg.EnableTracing("fleet", 0)
	defer reg.FlightRecorder().Close()
	opts := hardtape.DefaultTestbedOptions()
	opts.HEVMs = 2
	opts.Lanes = 2 // parallel lanes, so conflicts re-execute (and trace)
	opts.Telemetry = reg
	fcfg := hardtape.DefaultFleetConfig()
	fcfg.QueueDepth = 8
	fcfg.HealthInterval = 20 * time.Millisecond
	fcfg.HealthBackoff = 20 * time.Millisecond
	fcfg.Telemetry = reg
	ftb, err := hardtape.NewFleetTestbed(opts, 3, fcfg)
	if err != nil {
		return err
	}
	g := ftb.Gateway
	defer g.Close()
	fmt.Printf("   fleet capacity: %d HEVM slots, queue depth %d\n", g.SlotCount(), fcfg.QueueDepth)

	// 2. Burst 24 swap bundles at a fleet of 6 slots + 8 queue spots.
	//    Mid-burst, dev-1 "loses power".
	fmt.Println("② Bursting 24 bundles; killing dev-1 mid-run...")
	var (
		completed, overloaded, failed atomic.Uint64
		killOnce                      sync.Once
		wg                            sync.WaitGroup
	)
	for i := 0; i < 24; i++ {
		dex := ftb.World.DEXes[0]
		from := ftb.World.EOAs[i%len(ftb.World.EOAs)]
		tx, err := ftb.World.SignedTxAt(from, 0, &dex, 0, workload.CalldataSwap(100+uint64(i)), 400_000)
		if err != nil {
			return err
		}
		bundle := &hardtape.Bundle{Txs: []*hardtape.Transaction{tx}}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := g.Submit(context.Background(), bundle)
			switch {
			case errors.Is(err, hardtape.ErrOverloaded):
				overloaded.Add(1)
			case err != nil:
				failed.Add(1)
				fmt.Printf("   bundle %2d FAILED: %v\n", i, err)
			default:
				completed.Add(1)
				_ = res
				killOnce.Do(func() {
					fmt.Println("   ⚡ dev-1 killed")
					ftb.Backends[1].Kill()
				})
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("   completed %d, backpressured %d, failed %d\n",
		completed.Load(), overloaded.Load(), failed.Load())

	// 3. The fleet snapshot shows the failover.
	st := g.Stats()
	fmt.Println("③ Fleet stats after the burst:")
	for _, b := range st.Backends {
		state := "up"
		if !b.Healthy {
			state = "DOWN"
		}
		fmt.Printf("   %-6s %-4s dispatched %2d, failures %d, hevm steps %d\n",
			b.Name, state, b.Dispatched, b.Failures, b.HEVM.Steps)
	}
	fmt.Printf("   queue wait p50 %v, p99 %v; retries %d\n",
		st.QueueWaitP50, st.QueueWaitP99, st.Retries)

	// 4. Power dev-1 back on: the health monitor re-admits it.
	fmt.Println("④ Reviving dev-1...")
	ftb.Backends[1].Revive()
	deadline := time.Now().Add(2 * time.Second)
	for !g.Stats().Backends[1].Healthy {
		if time.Now().After(deadline) {
			return fmt.Errorf("dev-1 was not re-admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("   dev-1 healthy again; fleet slots free: %d/%d\n", g.FreeSlots(), g.SlotCount())

	// 5. End-to-end tracing: a high-conflict MEV bundle (every tx swaps
	//    on the same DEX pool) under a root span. Admission, dispatch,
	//    device stages, and every conflict re-execution land in one
	//    trace in the flight recorder.
	fmt.Println("⑤ Tracing one high-conflict MEV bundle end to end...")
	mev, err := ftb.World.MEVBundle(8, 1.0)
	if err != nil {
		return err
	}
	sp := tr.StartSpan("demo.mev_bundle", telemetry.SpanContext{})
	ctx := telemetry.ContextWithSpan(context.Background(), sp.Context())
	res, err := g.Submit(ctx, mev)
	sp.SetError(err)
	sp.End()
	if err != nil {
		return err
	}
	if res.Aborted != nil {
		return fmt.Errorf("mev bundle aborted: %w", res.Aborted)
	}
	trace := reg.FlightRecorder().Lookup(sp.TraceID())
	if trace == nil {
		return fmt.Errorf("mev trace %s not captured", sp.TraceID())
	}
	fmt.Printf("   trace %s (%d spans, root %v) — /traces/%s on an -admin endpoint\n",
		trace.ID, len(trace.Spans), trace.Duration.Round(time.Microsecond), trace.ID)
	printTraceTree(trace)
	return nil
}

// printTraceTree renders the captured span tree, children indented
// under parents and ordered by start time.
func printTraceTree(trace *hardtape.Trace) {
	children := make(map[telemetry.SpanID][]telemetry.SpanRecord)
	var roots []telemetry.SpanRecord
	for _, s := range trace.Spans {
		if s.Parent.IsZero() {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	var walk func(s telemetry.SpanRecord, depth int)
	walk = func(s telemetry.SpanRecord, depth int) {
		attrs := ""
		for _, a := range s.Attrs {
			if a.IsInt {
				attrs += fmt.Sprintf(" %s=%d", a.Key, a.Int) //hardtape:secret-ok recorder attrs were vetted at the AddAttr/AddInt sink; rendering them back is the recorder's purpose
			} else {
				attrs += fmt.Sprintf(" %s=%s", a.Key, a.Str) //hardtape:secret-ok recorder attrs were vetted at the AddAttr/AddInt sink; rendering them back is the recorder's purpose
			}
		}
		fmt.Printf("   %*s%-16s %-8s %8v%s\n", //hardtape:secret-ok span names are compile-time constants (telemetrysafe) and procs are deployment labels
			2*depth, "", s.Name, s.Proc, s.Duration.Round(time.Microsecond), attrs)
		kids := children[s.Span]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
