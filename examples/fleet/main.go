// Fleet demo: pool three HarDTAPE devices behind the gateway, push a
// burst of bundles through it, kill one device mid-run, and watch the
// fleet degrade gracefully — accepted bundles fail over to the
// survivors, over-capacity submissions get a typed ErrOverloaded, and
// the drained device is re-admitted after it recovers.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hardtape"
	"hardtape/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Three devices (2 HEVMs each) over one world, behind a gateway
	//    with a deliberately small admission queue.
	fmt.Println("① Provisioning 3 devices (2 HEVMs each) + gateway...")
	opts := hardtape.DefaultTestbedOptions()
	opts.HEVMs = 2
	fcfg := hardtape.DefaultFleetConfig()
	fcfg.QueueDepth = 8
	fcfg.HealthInterval = 20 * time.Millisecond
	fcfg.HealthBackoff = 20 * time.Millisecond
	ftb, err := hardtape.NewFleetTestbed(opts, 3, fcfg)
	if err != nil {
		return err
	}
	g := ftb.Gateway
	defer g.Close()
	fmt.Printf("   fleet capacity: %d HEVM slots, queue depth %d\n", g.SlotCount(), fcfg.QueueDepth)

	// 2. Burst 24 swap bundles at a fleet of 6 slots + 8 queue spots.
	//    Mid-burst, dev-1 "loses power".
	fmt.Println("② Bursting 24 bundles; killing dev-1 mid-run...")
	var (
		completed, overloaded, failed atomic.Uint64
		killOnce                      sync.Once
		wg                            sync.WaitGroup
	)
	for i := 0; i < 24; i++ {
		dex := ftb.World.DEXes[0]
		from := ftb.World.EOAs[i%len(ftb.World.EOAs)]
		tx, err := ftb.World.SignedTxAt(from, 0, &dex, 0, workload.CalldataSwap(100+uint64(i)), 400_000)
		if err != nil {
			return err
		}
		bundle := &hardtape.Bundle{Txs: []*hardtape.Transaction{tx}}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := g.Submit(context.Background(), bundle)
			switch {
			case errors.Is(err, hardtape.ErrOverloaded):
				overloaded.Add(1)
			case err != nil:
				failed.Add(1)
				fmt.Printf("   bundle %2d FAILED: %v\n", i, err)
			default:
				completed.Add(1)
				_ = res
				killOnce.Do(func() {
					fmt.Println("   ⚡ dev-1 killed")
					ftb.Backends[1].Kill()
				})
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("   completed %d, backpressured %d, failed %d\n",
		completed.Load(), overloaded.Load(), failed.Load())

	// 3. The fleet snapshot shows the failover.
	st := g.Stats()
	fmt.Println("③ Fleet stats after the burst:")
	for _, b := range st.Backends {
		state := "up"
		if !b.Healthy {
			state = "DOWN"
		}
		fmt.Printf("   %-6s %-4s dispatched %2d, failures %d, hevm steps %d\n",
			b.Name, state, b.Dispatched, b.Failures, b.HEVM.Steps)
	}
	fmt.Printf("   queue wait p50 %v, p99 %v; retries %d\n",
		st.QueueWaitP50, st.QueueWaitP99, st.Retries)

	// 4. Power dev-1 back on: the health monitor re-admits it.
	fmt.Println("④ Reviving dev-1...")
	ftb.Backends[1].Revive()
	deadline := time.Now().Add(2 * time.Second)
	for !g.Stats().Backends[1].Healthy {
		if time.Now().After(deadline) {
			return fmt.Errorf("dev-1 was not re-admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("   dev-1 healthy again; fleet slots free: %d/%d\n", g.FreeSlots(), g.SlotCount())
	return nil
}
