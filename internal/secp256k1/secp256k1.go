// Package secp256k1 implements the secp256k1 elliptic curve and the
// ECDSA sign/verify/recover operations Ethereum uses for transaction
// signatures.
//
// This is a clean-room big.Int implementation. It is NOT constant time
// and must not be used to protect long-lived production secrets; within
// this reproduction it signs synthetic workload transactions and
// verifies/recovers senders, mirroring what an Ethereum node does.
package secp256k1

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"hardtape/internal/keccak"
)

// Curve parameters for secp256k1: y^2 = x^3 + 7 over F_p.
var (
	_p  = mustHexBig("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
	_n  = mustHexBig("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
	_gx = mustHexBig("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
	_gy = mustHexBig("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
	_b  = big.NewInt(7)

	// _halfN is used to enforce low-s signatures (EIP-2).
	_halfN = new(big.Int).Rsh(_n, 1)
)

// Errors returned by signature operations.
var (
	ErrInvalidKey       = errors.New("secp256k1: invalid private key")
	ErrInvalidSignature = errors.New("secp256k1: invalid signature")
	ErrRecoveryFailed   = errors.New("secp256k1: public key recovery failed")
)

func mustHexBig(s string) *big.Int {
	b, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("secp256k1: bad hex constant " + s)
	}
	return b
}

// PrivateKey is a secp256k1 private scalar with its public point.
type PrivateKey struct {
	D      *big.Int
	Public PublicKey
}

// PublicKey is a point on the curve in affine coordinates.
type PublicKey struct {
	X, Y *big.Int
}

// Signature is an ECDSA signature with a recovery id V in {0, 1}.
type Signature struct {
	R, S *big.Int
	V    byte
}

// GenerateKey derives a private key deterministically from seed bytes
// (hashed and reduced mod n). A zero-scalar result is remapped to 1.
func GenerateKey(seed []byte) (*PrivateKey, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("%w: empty seed", ErrInvalidKey)
	}
	h := keccak.Sum256(seed)
	d := new(big.Int).SetBytes(h[:])
	d.Mod(d, _n)
	if d.Sign() == 0 {
		d.SetInt64(1)
	}
	return NewPrivateKey(d)
}

// NewPrivateKey wraps an existing scalar, validating 0 < d < n.
func NewPrivateKey(d *big.Int) (*PrivateKey, error) {
	if d == nil || d.Sign() <= 0 || d.Cmp(_n) >= 0 {
		return nil, ErrInvalidKey
	}
	x, y := scalarBaseMult(d)
	return &PrivateKey{
		D:      new(big.Int).Set(d),
		Public: PublicKey{X: x, Y: y},
	}, nil
}

// Address returns the Ethereum address of the public key: the low 20
// bytes of keccak256(X || Y) with 32-byte big-endian coordinates.
func (pub *PublicKey) Address() [20]byte {
	var buf [64]byte
	pub.X.FillBytes(buf[:32])
	pub.Y.FillBytes(buf[32:])
	h := keccak.Sum256(buf[:])
	var addr [20]byte
	copy(addr[:], h[12:])
	return addr
}

// Bytes returns the uncompressed 64-byte X||Y encoding.
func (pub *PublicKey) Bytes() [64]byte {
	var buf [64]byte
	pub.X.FillBytes(buf[:32])
	pub.Y.FillBytes(buf[32:])
	return buf
}

// onCurve reports whether (x, y) satisfies the curve equation.
func onCurve(x, y *big.Int) bool {
	if x.Sign() < 0 || x.Cmp(_p) >= 0 || y.Sign() < 0 || y.Cmp(_p) >= 0 {
		return false
	}
	y2 := new(big.Int).Mul(y, y)
	y2.Mod(y2, _p)
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, _b)
	rhs.Mod(rhs, _p)
	return y2.Cmp(rhs) == 0
}

// Sign produces a deterministic (RFC 6979-style) low-s signature over a
// 32-byte message hash.
func (priv *PrivateKey) Sign(hash []byte) (*Signature, error) {
	if len(hash) != 32 {
		return nil, fmt.Errorf("%w: hash must be 32 bytes", ErrInvalidSignature)
	}
	for attempt := byte(0); ; attempt++ {
		k := deterministicNonce(priv.D, hash, attempt)
		if k.Sign() == 0 || k.Cmp(_n) >= 0 {
			continue
		}
		rx, ry := scalarBaseMult(k)
		r := new(big.Int).Mod(rx, _n)
		if r.Sign() == 0 {
			continue
		}
		kInv := new(big.Int).ModInverse(k, _n)
		e := hashToInt(hash)
		s := new(big.Int).Mul(r, priv.D)
		s.Add(s, e)
		s.Mul(s, kInv)
		s.Mod(s, _n)
		if s.Sign() == 0 {
			continue
		}
		v := byte(ry.Bit(0))
		// Enforce low-s: negating s flips the recovery id.
		if s.Cmp(_halfN) > 0 {
			s.Sub(_n, s)
			v ^= 1
		}
		// rx >= n would add 2 to v; astronomically rare, retry instead
		// to keep V in {0, 1} as Ethereum expects.
		if rx.Cmp(_n) >= 0 {
			continue
		}
		return &Signature{R: r, S: s, V: v}, nil
	}
}

// deterministicNonce derives the ECDSA nonce via HMAC-SHA256 over the
// private scalar, message hash, and retry counter.
func deterministicNonce(d *big.Int, hash []byte, attempt byte) *big.Int {
	mac := hmac.New(sha256.New, d.Bytes())
	mac.Write(hash)
	mac.Write([]byte{attempt})
	k := new(big.Int).SetBytes(mac.Sum(nil))
	return k.Mod(k, _n)
}

// Verify checks the signature over a 32-byte message hash.
func (pub *PublicKey) Verify(hash []byte, sig *Signature) bool {
	if len(hash) != 32 || sig == nil {
		return false
	}
	r, s := sig.R, sig.S
	if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(_n) >= 0 || s.Cmp(_n) >= 0 {
		return false
	}
	if !onCurve(pub.X, pub.Y) {
		return false
	}
	e := hashToInt(hash)
	w := new(big.Int).ModInverse(s, _n)
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, _n)
	u2 := new(big.Int).Mul(r, w)
	u2.Mod(u2, _n)

	x1, y1, z1 := scalarMultJacobian(_gx, _gy, u1)
	x2, y2, z2 := scalarMultJacobian(pub.X, pub.Y, u2)
	x3, _, z3 := addJacobian(x1, y1, z1, x2, y2, z2)
	if z3.Sign() == 0 {
		return false
	}
	// Affine x = x3 / z3^2.
	zInv := new(big.Int).ModInverse(z3, _p)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, _p)
	xAff := new(big.Int).Mul(x3, zInv2)
	xAff.Mod(xAff, _p)
	xAff.Mod(xAff, _n)
	return xAff.Cmp(r) == 0
}

// Recover returns the public key that produced sig over hash, using the
// recovery id sig.V. This is Ethereum's ecrecover.
func Recover(hash []byte, sig *Signature) (*PublicKey, error) {
	if len(hash) != 32 || sig == nil {
		return nil, ErrInvalidSignature
	}
	r, s := sig.R, sig.S
	if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(_n) >= 0 || s.Cmp(_n) >= 0 || sig.V > 1 {
		return nil, ErrInvalidSignature
	}
	// Candidate R point x coordinate (we keep V in {0,1}, so x = r).
	x := new(big.Int).Set(r)
	y, err := liftX(x, sig.V)
	if err != nil {
		return nil, err
	}
	// Q = (s * r^-1)*R - (e * r^-1)*G.
	e := hashToInt(hash)
	rInv := new(big.Int).ModInverse(r, _n)
	sr := new(big.Int).Mul(s, rInv)
	sr.Mod(sr, _n)
	er := new(big.Int).Mul(e, rInv)
	er.Mod(er, _n)

	sx, sy, sz := scalarMultJacobian(x, y, sr)
	negE := new(big.Int).Sub(_n, er)
	negE.Mod(negE, _n)
	ex, ey, ez := scalarMultJacobian(_gx, _gy, negE)
	qx, qy, qz := addJacobian(sx, sy, sz, ex, ey, ez)
	if qz.Sign() == 0 {
		return nil, ErrRecoveryFailed
	}
	ax, ay := toAffine(qx, qy, qz)
	pub := &PublicKey{X: ax, Y: ay}
	if !onCurve(ax, ay) || !pub.Verify(hash, sig) {
		return nil, ErrRecoveryFailed
	}
	return pub, nil
}

// liftX computes y with the requested parity for a given x on the curve.
func liftX(x *big.Int, parity byte) (*big.Int, error) {
	if x.Cmp(_p) >= 0 {
		return nil, ErrRecoveryFailed
	}
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	y2.Add(y2, _b)
	y2.Mod(y2, _p)
	y := new(big.Int).ModSqrt(y2, _p)
	if y == nil {
		return nil, ErrRecoveryFailed
	}
	if byte(y.Bit(0)) != parity {
		y.Sub(_p, y)
	}
	return y, nil
}

// hashToInt converts a 32-byte hash to an integer mod n, as per ECDSA.
func hashToInt(hash []byte) *big.Int {
	e := new(big.Int).SetBytes(hash)
	return e.Mod(e, _n)
}

// --- Jacobian point arithmetic ---

// toAffine converts Jacobian (x, y, z) to affine coordinates.
func toAffine(x, y, z *big.Int) (*big.Int, *big.Int) {
	zInv := new(big.Int).ModInverse(z, _p)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, _p)
	zInv3 := new(big.Int).Mul(zInv2, zInv)
	zInv3.Mod(zInv3, _p)
	ax := new(big.Int).Mul(x, zInv2)
	ax.Mod(ax, _p)
	ay := new(big.Int).Mul(y, zInv3)
	ay.Mod(ay, _p)
	return ax, ay
}

// doubleJacobian returns 2*(x, y, z) in Jacobian coordinates.
func doubleJacobian(x, y, z *big.Int) (*big.Int, *big.Int, *big.Int) {
	if y.Sign() == 0 || z.Sign() == 0 {
		return new(big.Int), big.NewInt(1), new(big.Int)
	}
	// Standard dbl-2009-l formulas (a = 0).
	a := new(big.Int).Mul(x, x)
	a.Mod(a, _p)
	bb := new(big.Int).Mul(y, y)
	bb.Mod(bb, _p)
	c := new(big.Int).Mul(bb, bb)
	c.Mod(c, _p)

	d := new(big.Int).Add(x, bb)
	d.Mul(d, d)
	d.Sub(d, a)
	d.Sub(d, c)
	d.Lsh(d, 1)
	d.Mod(d, _p)

	e := new(big.Int).Lsh(a, 1)
	e.Add(e, a)
	e.Mod(e, _p)

	f := new(big.Int).Mul(e, e)
	f.Mod(f, _p)

	x3 := new(big.Int).Sub(f, new(big.Int).Lsh(d, 1))
	x3.Mod(x3, _p)

	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	c8 := new(big.Int).Lsh(c, 3)
	y3.Sub(y3, c8)
	y3.Mod(y3, _p)

	z3 := new(big.Int).Mul(y, z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, _p)

	return x3, y3, z3
}

// addJacobian returns (x1,y1,z1) + (x2,y2,z2) in Jacobian coordinates.
func addJacobian(x1, y1, z1, x2, y2, z2 *big.Int) (*big.Int, *big.Int, *big.Int) {
	if z1.Sign() == 0 {
		return new(big.Int).Set(x2), new(big.Int).Set(y2), new(big.Int).Set(z2)
	}
	if z2.Sign() == 0 {
		return new(big.Int).Set(x1), new(big.Int).Set(y1), new(big.Int).Set(z1)
	}
	// add-2007-bl formulas.
	z1z1 := new(big.Int).Mul(z1, z1)
	z1z1.Mod(z1z1, _p)
	z2z2 := new(big.Int).Mul(z2, z2)
	z2z2.Mod(z2z2, _p)

	u1 := new(big.Int).Mul(x1, z2z2)
	u1.Mod(u1, _p)
	u2 := new(big.Int).Mul(x2, z1z1)
	u2.Mod(u2, _p)

	s1 := new(big.Int).Mul(y1, z2)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, _p)
	s2 := new(big.Int).Mul(y2, z1)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, _p)

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, _p)
	rr := new(big.Int).Sub(s2, s1)
	rr.Mod(rr, _p)

	if h.Sign() == 0 {
		if rr.Sign() == 0 {
			return doubleJacobian(x1, y1, z1)
		}
		// P + (-P) = infinity.
		return new(big.Int), big.NewInt(1), new(big.Int)
	}

	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	i.Mod(i, _p)
	j := new(big.Int).Mul(h, i)
	j.Mod(j, _p)
	rr.Lsh(rr, 1)
	rr.Mod(rr, _p)
	v := new(big.Int).Mul(u1, i)
	v.Mod(v, _p)

	x3 := new(big.Int).Mul(rr, rr)
	x3.Sub(x3, j)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	x3.Mod(x3, _p)

	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, rr)
	s1j := new(big.Int).Mul(s1, j)
	s1j.Lsh(s1j, 1)
	y3.Sub(y3, s1j)
	y3.Mod(y3, _p)

	z3 := new(big.Int).Add(z1, z2)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	z3.Mod(z3, _p)

	return x3, y3, z3
}

// scalarMultJacobian computes k*(x, y) returning Jacobian coordinates.
func scalarMultJacobian(x, y, k *big.Int) (*big.Int, *big.Int, *big.Int) {
	rx, ry, rz := new(big.Int), big.NewInt(1), new(big.Int) // infinity
	px, py, pz := new(big.Int).Set(x), new(big.Int).Set(y), big.NewInt(1)
	for i := k.BitLen() - 1; i >= 0; i-- {
		rx, ry, rz = doubleJacobian(rx, ry, rz)
		if k.Bit(i) == 1 {
			rx, ry, rz = addJacobian(rx, ry, rz, px, py, pz)
		}
	}
	return rx, ry, rz
}

// scalarBaseMult computes k*G in affine coordinates.
func scalarBaseMult(k *big.Int) (*big.Int, *big.Int) {
	x, y, z := scalarMultJacobian(_gx, _gy, k)
	if z.Sign() == 0 {
		return new(big.Int), new(big.Int)
	}
	return toAffine(x, y, z)
}
