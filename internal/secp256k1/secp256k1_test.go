package secp256k1

import (
	"encoding/hex"
	"math/big"
	"testing"
	"testing/quick"

	"hardtape/internal/keccak"
)

func TestGeneratorOnCurve(t *testing.T) {
	if !onCurve(_gx, _gy) {
		t.Fatal("generator not on curve")
	}
}

func TestKnownKeyAddress(t *testing.T) {
	// The canonical test key with D=1: its public key is G, and the
	// Ethereum address of G is a well-known constant.
	priv, err := NewPrivateKey(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if priv.Public.X.Cmp(_gx) != 0 || priv.Public.Y.Cmp(_gy) != 0 {
		t.Fatal("1*G != G")
	}
	addr := priv.Public.Address()
	want := "7e5f4552091a69125d5dfcb7b8c2659029395bdf"
	if hex.EncodeToString(addr[:]) != want {
		t.Errorf("address of key 1: got %x want %s", addr, want)
	}
}

func TestKnownScalarMult(t *testing.T) {
	// 2*G has a known x coordinate.
	priv, err := NewPrivateKey(big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	wantX := mustHexBig("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
	if priv.Public.X.Cmp(wantX) != 0 {
		t.Errorf("2G.x = %x, want %x", priv.Public.X, wantX)
	}
	if !onCurve(priv.Public.X, priv.Public.Y) {
		t.Error("2G not on curve")
	}
}

func TestInvalidKeys(t *testing.T) {
	for _, d := range []*big.Int{nil, big.NewInt(0), big.NewInt(-1), new(big.Int).Set(_n)} {
		if _, err := NewPrivateKey(d); err == nil {
			t.Errorf("NewPrivateKey(%v) should fail", d)
		}
	}
	if _, err := GenerateKey(nil); err == nil {
		t.Error("GenerateKey(nil) should fail")
	}
}

func TestSignVerify(t *testing.T) {
	priv, err := GenerateKey([]byte("test signer"))
	if err != nil {
		t.Fatal(err)
	}
	hash := keccak.Sum256([]byte("message"))
	sig, err := priv.Sign(hash[:])
	if err != nil {
		t.Fatal(err)
	}
	if !priv.Public.Verify(hash[:], sig) {
		t.Fatal("signature does not verify")
	}
	// Low-s is enforced.
	if sig.S.Cmp(_halfN) > 0 {
		t.Error("signature s is not low")
	}
	// Wrong hash must fail.
	other := keccak.Sum256([]byte("other"))
	if priv.Public.Verify(other[:], sig) {
		t.Error("signature verified against wrong hash")
	}
	// Tampered r must fail.
	bad := &Signature{R: new(big.Int).Add(sig.R, big.NewInt(1)), S: sig.S, V: sig.V}
	if priv.Public.Verify(hash[:], bad) {
		t.Error("tampered signature verified")
	}
}

func TestSignDeterministic(t *testing.T) {
	priv, err := GenerateKey([]byte("determinism"))
	if err != nil {
		t.Fatal(err)
	}
	hash := keccak.Sum256([]byte("m"))
	s1, err := priv.Sign(hash[:])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := priv.Sign(hash[:])
	if err != nil {
		t.Fatal(err)
	}
	if s1.R.Cmp(s2.R) != 0 || s1.S.Cmp(s2.S) != 0 || s1.V != s2.V {
		t.Error("signing is not deterministic")
	}
}

func TestRecover(t *testing.T) {
	priv, err := GenerateKey([]byte("recover me"))
	if err != nil {
		t.Fatal(err)
	}
	hash := keccak.Sum256([]byte("tx payload"))
	sig, err := priv.Sign(hash[:])
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Recover(hash[:], sig)
	if err != nil {
		t.Fatal(err)
	}
	if pub.X.Cmp(priv.Public.X) != 0 || pub.Y.Cmp(priv.Public.Y) != 0 {
		t.Error("recovered wrong public key")
	}
	if pub.Address() != priv.Public.Address() {
		t.Error("recovered wrong address")
	}
	// Flipping V recovers a different key (or fails), never the right one.
	flipped := &Signature{R: sig.R, S: sig.S, V: sig.V ^ 1}
	if pub2, err := Recover(hash[:], flipped); err == nil {
		if pub2.Address() == priv.Public.Address() {
			t.Error("flipped V recovered same address")
		}
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	hash := keccak.Sum256([]byte("x"))
	bad := []*Signature{
		nil,
		{R: big.NewInt(0), S: big.NewInt(1), V: 0},
		{R: big.NewInt(1), S: big.NewInt(0), V: 0},
		{R: new(big.Int).Set(_n), S: big.NewInt(1), V: 0},
		{R: big.NewInt(1), S: big.NewInt(1), V: 2},
	}
	for i, sig := range bad {
		if _, err := Recover(hash[:], sig); err == nil {
			t.Errorf("case %d: Recover accepted invalid signature", i)
		}
	}
	if _, err := Recover([]byte("short"), &Signature{R: big.NewInt(1), S: big.NewInt(1)}); err == nil {
		t.Error("Recover accepted short hash")
	}
}

func TestJacobianIdentities(t *testing.T) {
	// P + infinity = P.
	x, y, z := addJacobian(_gx, _gy, big.NewInt(1), new(big.Int), big.NewInt(1), new(big.Int))
	ax, ay := toAffine(x, y, z)
	if ax.Cmp(_gx) != 0 || ay.Cmp(_gy) != 0 {
		t.Error("G + inf != G")
	}
	// P + P = 2P = double(P).
	dx, dy, dz := doubleJacobian(_gx, _gy, big.NewInt(1))
	sx, sy, sz := addJacobian(_gx, _gy, big.NewInt(1), _gx, _gy, big.NewInt(1))
	dax, day := toAffine(dx, dy, dz)
	sax, say := toAffine(sx, sy, sz)
	if dax.Cmp(sax) != 0 || day.Cmp(say) != 0 {
		t.Error("P+P != double(P)")
	}
	// P + (-P) = infinity.
	negY := new(big.Int).Sub(_p, _gy)
	_, _, iz := addJacobian(_gx, _gy, big.NewInt(1), _gx, negY, big.NewInt(1))
	if iz.Sign() != 0 {
		t.Error("P + (-P) != infinity")
	}
	// n*G = infinity.
	_, _, nz := scalarMultJacobian(_gx, _gy, _n)
	if nz.Sign() != 0 {
		t.Error("n*G != infinity")
	}
}

// Property: sign/recover round-trips for arbitrary seeds and messages.
func TestQuickSignRecover(t *testing.T) {
	f := func(seed, msg []byte) bool {
		if len(seed) == 0 {
			return true
		}
		priv, err := GenerateKey(seed)
		if err != nil {
			return false
		}
		hash := keccak.Sum256(msg)
		sig, err := priv.Sign(hash[:])
		if err != nil {
			return false
		}
		if !priv.Public.Verify(hash[:], sig) {
			return false
		}
		pub, err := Recover(hash[:], sig)
		if err != nil {
			return false
		}
		return pub.Address() == priv.Public.Address()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: scalar multiplication distributes over addition:
// (a+b)G == aG + bG.
func TestQuickScalarDistributive(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == 0 || b == 0 {
			return true
		}
		ab := new(big.Int).Add(big.NewInt(0).SetUint64(a), big.NewInt(0).SetUint64(b))
		x1, y1 := scalarBaseMult(ab)
		ax, ay, az := scalarMultJacobian(_gx, _gy, new(big.Int).SetUint64(a))
		bx, by, bz := scalarMultJacobian(_gx, _gy, new(big.Int).SetUint64(b))
		sx, sy, sz := addJacobian(ax, ay, az, bx, by, bz)
		x2, y2 := toAffine(sx, sy, sz)
		return x1.Cmp(x2) == 0 && y1.Cmp(y2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSign(b *testing.B) {
	priv, err := GenerateKey([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	hash := keccak.Sum256([]byte("payload"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.Sign(hash[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecover(b *testing.B) {
	priv, err := GenerateKey([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	hash := keccak.Sum256([]byte("payload"))
	sig, err := priv.Sign(hash[:])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(hash[:], sig); err != nil {
			b.Fatal(err)
		}
	}
}
