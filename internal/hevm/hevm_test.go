package hevm

import (
	"errors"
	"testing"
	"time"

	"hardtape/internal/evm"
	"hardtape/internal/simclock"
	"hardtape/internal/types"
)

func newTestMachine(t testing.TB, cfg Config) (*Machine, *simclock.Clock) {
	t.Helper()
	clock := simclock.NewClock()
	key := make([]byte, 32)
	m, err := New(cfg, clock, simclock.DefaultCalibration(), key, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m, clock
}

// enter/exit/touch drive the machine directly through its hooks.
func enter(m *Machine, depth, inputSize, codeSize int) {
	m.Hooks().OnCallEnter(evm.CallFrameInfo{Depth: depth, InputSize: inputSize, CodeSize: codeSize})
}

func exit(m *Machine, depth int) {
	m.Hooks().OnCallExit(evm.CallResultInfo{Depth: depth})
}

func touch(m *Machine, offset, size uint64) {
	m.Hooks().OnMemAccess(evm.MemAccess{Offset: offset, Size: size, Write: true})
}

func step(m *Machine, pc uint64, op evm.OpCode) {
	m.Hooks().OnStep(evm.StepInfo{PC: pc, Op: op, StackLen: 4})
}

func TestFramePageAccounting(t *testing.T) {
	m, _ := newTestMachine(t, DefaultConfig())
	enter(m, 0, 100, 2000)
	// Frame: stack 4*32 + input 100 + code 2000 + frame page 1024 ≈ 3252
	// → 4 pages after first memory touch updates stack.
	step(m, 0, evm.PUSH0)
	touch(m, 0, 32)
	if m.l2Used == 0 {
		t.Fatal("no pages allocated")
	}
	before := m.l2Used
	// Growing memory by 10 KB allocates ~10 more pages.
	touch(m, 0, 10*1024)
	if m.l2Used <= before {
		t.Fatalf("pages did not grow: %d -> %d", before, m.l2Used)
	}
	exit(m, 0)
	if m.l2Used != 0 {
		t.Fatalf("pages leaked after frame exit: %d", m.l2Used)
	}
}

func TestMemoryOverflowError(t *testing.T) {
	cfg := DefaultConfig()
	m, _ := newTestMachine(t, cfg)
	enter(m, 0, 0, 1000)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no overflow panic")
		}
		var moe *MemoryOverflowError
		err, ok := r.(error)
		if !ok || !errors.As(err, &moe) {
			t.Fatalf("panic value %v is not MemoryOverflowError", r)
		}
		if moe.Limit != cfg.FrameLimitBytes {
			t.Fatalf("limit = %d", moe.Limit)
		}
		if !m.Stats().Overflowed {
			t.Fatal("Overflowed flag not set")
		}
	}()
	// One frame growing past 512 KB must abort.
	touch(m, 0, cfg.FrameLimitBytes+1)
}

func TestL3SwapOnL2Pressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Bytes = 64 * 1024 // small L2: 64 pages
	cfg.FrameLimitBytes = 32 * 1024
	m, _ := newTestMachine(t, cfg)

	// Stack three frames of ~24 KB each — the third forces the first
	// frame's pages out to L3.
	for d := 0; d < 3; d++ {
		enter(m, d, 0, 1000)
		touch(m, 0, 24*1024)
	}
	if m.L3Pages() == 0 {
		t.Fatal("no pages swapped to L3 under pressure")
	}
	evicted := false
	for _, ev := range m.SwapTrace() {
		if ev.Evict && ev.Pages > 0 {
			evicted = true
		}
	}
	if !evicted {
		t.Fatal("no evict events recorded")
	}

	// Returning to the bottom frame reloads its pages.
	exit(m, 2)
	exit(m, 1)
	cur := m.current()
	for _, p := range cur.pages {
		if cur.l3[p] {
			t.Fatal("current frame still has L3-resident pages after return")
		}
	}
	loads := 0
	for _, ev := range m.SwapTrace() {
		if !ev.Evict {
			loads += ev.Pages
		}
	}
	if loads == 0 {
		t.Fatal("no reload events recorded")
	}
}

func TestSwapNoiseVariesWithSeed(t *testing.T) {
	run := func(seed int64) []SwapEvent {
		cfg := DefaultConfig()
		cfg.L2Bytes = 64 * 1024
		cfg.FrameLimitBytes = 32 * 1024
		clock := simclock.NewClock()
		m, err := New(cfg, clock, simclock.DefaultCalibration(), make([]byte, 32), seed)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 3; d++ {
			enter(m, d, 0, 1000)
			touch(m, 0, 24*1024)
		}
		exit(m, 2)
		exit(m, 1)
		return m.SwapTrace()
	}
	a := run(1)
	b := run(2)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no swap traffic generated")
	}
	// Same workload, different noise seeds: observed page counts should
	// differ for at least one event (noise depends on RNG, not just the
	// contract) — this is the A5 defense.
	differs := len(a) != len(b)
	if !differs {
		for i := range a {
			if a[i].Pages != b[i].Pages {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Fatal("swap sizes identical across seeds — noise ineffective")
	}
}

func TestL3TamperDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Bytes = 64 * 1024
	cfg.FrameLimitBytes = 32 * 1024
	m, _ := newTestMachine(t, cfg)
	for d := 0; d < 3; d++ {
		enter(m, d, 0, 1000)
		touch(m, 0, 24*1024)
	}
	if !m.TamperL3() {
		t.Fatal("nothing in L3 to tamper")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("tampered L3 page reloaded without detection")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrL3Tampered) {
			t.Fatalf("panic = %v, want ErrL3Tampered", r)
		}
	}()
	exit(m, 2)
	exit(m, 1)
	// Depending on which page was tampered, reload may happen on either
	// exit; if we got here, force reload of everything.
	for m.L3Pages() > 0 {
		exit(m, 0)
	}
}

func TestClockAdvancesWithWork(t *testing.T) {
	m, clock := newTestMachine(t, DefaultConfig())
	enter(m, 0, 0, 100)
	start := clock.Now()
	for i := 0; i < 1000; i++ {
		step(m, uint64(i%50), evm.ADD)
	}
	plain := clock.Now() - start
	if plain <= 0 {
		t.Fatal("clock did not advance")
	}
	// Wide ALU ops cost more.
	start = clock.Now()
	for i := 0; i < 1000; i++ {
		step(m, uint64(i%50), evm.MUL)
	}
	wide := clock.Now() - start
	if wide <= plain {
		t.Fatalf("MUL (%v) should cost more than ADD (%v)", wide, plain)
	}
}

func TestCodeCacheMissCharges(t *testing.T) {
	m, clock := newTestMachine(t, DefaultConfig())
	enter(m, 0, 0, 100*1024) // 100 KB contract exceeds the 64 KB cache
	touch(m, 0, 32)
	before := clock.Now()
	step(m, 70*1024, evm.JUMPDEST) // beyond the cache window
	withMiss := clock.Now() - before
	before = clock.Now()
	step(m, 70*1024+1, evm.ADD) // same page, now resident
	noMiss := clock.Now() - before
	if withMiss <= noMiss {
		t.Fatalf("code-page miss (%v) should cost more than a hit (%v)", withMiss, noMiss)
	}
}

func TestResetClearsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Bytes = 64 * 1024
	cfg.FrameLimitBytes = 32 * 1024
	m, _ := newTestMachine(t, cfg)
	for d := 0; d < 3; d++ {
		enter(m, d, 0, 1000)
		touch(m, 0, 24*1024)
	}
	m.Reset()
	s := m.Stats()
	if s.Steps != 0 || s.SwapEvents != 0 || s.L2PagesUsed != 0 || m.L3Pages() != 0 {
		t.Fatalf("reset incomplete: %+v l3=%d", s, m.L3Pages())
	}
	if m.current() != nil {
		t.Fatal("frames survived reset")
	}
}

func TestBadKey(t *testing.T) {
	if _, err := New(DefaultConfig(), simclock.NewClock(), simclock.DefaultCalibration(), []byte("short"), 1); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestWSCacheLRU(t *testing.T) {
	c := NewWSCache(2)
	k1 := WSCacheKey{Addr: types.MustAddress("0x1111111111111111111111111111111111111111")}
	k2 := WSCacheKey{Addr: types.MustAddress("0x2222222222222222222222222222222222222222")}
	k3 := WSCacheKey{Addr: types.MustAddress("0x3333333333333333333333333333333333333333")}
	v := [32]byte{1}
	c.Put(k1, v)
	c.Put(k2, v)
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 missing")
	}
	// k2 is now LRU; inserting k3 evicts it.
	c.Put(k3, v)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 should survive (recently used)")
	}
	hits, misses := c.HitRate()
	if hits == 0 || misses == 0 {
		t.Fatalf("hit/miss accounting: %d/%d", hits, misses)
	}
}

func TestWSCacheUpdateAndInvalidate(t *testing.T) {
	c := NewWSCache(4)
	k := WSCacheKey{Addr: types.MustAddress("0x1111111111111111111111111111111111111111"), Key: types.Hash{31: 5}}
	c.Put(k, [32]byte{1})
	c.Put(k, [32]byte{2}) // update, not duplicate
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, ok := c.Get(k)
	if !ok || got[0] != 2 {
		t.Fatalf("update lost: %v %v", got, ok)
	}
	c.Invalidate(k)
	if _, ok := c.Get(k); ok {
		t.Fatal("invalidate failed")
	}
	c.Put(k, [32]byte{3})
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestWSCacheDefaultCapacity(t *testing.T) {
	c := NewWSCache(0)
	for i := 0; i < 100; i++ {
		c.Put(WSCacheKey{Key: types.Hash{31: byte(i)}}, [32]byte{byte(i)})
	}
	if c.Len() != 64 {
		t.Fatalf("default capacity should be the paper's 64 entries, got %d", c.Len())
	}
}

func TestSwapEventTimestamps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Bytes = 64 * 1024
	cfg.FrameLimitBytes = 32 * 1024
	m, clock := newTestMachine(t, cfg)
	clock.Advance(time.Second)
	for d := 0; d < 3; d++ {
		enter(m, d, 0, 1000)
		touch(m, 0, 24*1024)
	}
	for _, ev := range m.SwapTrace() {
		if ev.At < time.Second {
			t.Fatalf("event timestamp %v before work began", ev.At)
		}
	}
}
