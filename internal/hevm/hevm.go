// Package hevm models HarDTAPE's hardware EVM: the paper's 3-layer
// memory structure (§IV-B), built as a byte-accurate shadow of the
// interpreter in internal/evm.
//
//	Layer 1 — partitioned caches: full runtime stack (32 KB), 64 KB
//	          code cache, 4 KB Memory/Input caches, 1 KB ReturnData
//	          cache, 32-slot frame state, 4 KB world-state cache.
//	Layer 2 — the on-chip call stack: a 1 MB ring of 1 KB pages, one
//	          contiguous run of pages per execution frame.
//	Layer 3 — untrusted memory receiving AES-GCM-sealed page dumps
//	          when L2 overflows, with randomized pre-evict/pre-load
//	          noise so the adversary observes only noisy sizes (A5).
//
// The interpreter executes against canonical data structures and
// feeds this model through evm.Hooks; the model reproduces residency,
// swap traffic, timing, and the Memory Overflow Error exactly as the
// fixed-function hardware would, and performs real authenticated
// encryption on every L3 page movement.
package hevm

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"hardtape/internal/evm"
	"hardtape/internal/simclock"
)

// Config fixes the hardware dimensions. Defaults follow the paper.
type Config struct {
	// PageSize is the swap granularity (1 KB).
	PageSize uint64
	// L2Bytes is the on-chip call-stack capacity (1 MB).
	L2Bytes uint64
	// FrameLimitBytes aborts the bundle when one frame exceeds it
	// (paper: half of L2).
	FrameLimitBytes uint64
	// CodeCachePages is the L1 code cache capacity (64 pages = 64 KB).
	CodeCachePages int
	// WSCacheEntries is the L1 world-state cache (64 records).
	WSCacheEntries int
	// NoiseMaxPages bounds the random pre-evict/pre-load noise.
	NoiseMaxPages int
}

// DefaultConfig returns the paper's dimensions.
func DefaultConfig() Config {
	return Config{
		PageSize:        1024,
		L2Bytes:         1 << 20,
		FrameLimitBytes: 1 << 19, // L2/2
		CodeCachePages:  64,
		WSCacheEntries:  64,
		NoiseMaxPages:   8,
	}
}

// MemoryOverflowError is the paper's bundle-aborting error raised when
// a single execution frame exceeds FrameLimitBytes (observed on
// roll-up transactions, §VI-B).
type MemoryOverflowError struct {
	FrameBytes uint64
	Limit      uint64
}

func (e *MemoryOverflowError) Error() string {
	return fmt.Sprintf("hevm: memory overflow: frame %d bytes exceeds limit %d", e.FrameBytes, e.Limit)
}

// ErrL3Tampered is returned when a reloaded L3 page fails its AES-GCM
// authentication (attack A4).
var ErrL3Tampered = errors.New("hevm: layer-3 page authentication failed")

// SwapEvent is one adversary-visible L3 transfer. Pages includes the
// random noise, which is all the adversary can observe.
type SwapEvent struct {
	Evict bool
	Pages int
	At    time.Duration
}

// frameShadow tracks one execution frame's footprint.
type frameShadow struct {
	depth    int
	stackLen int
	memBytes uint64
	inputLen uint64
	codeLen  uint64
	retLen   uint64
	pages    []uint64 // page ids, bottom first
	// l3 marks which of this frame's pages currently live in L3.
	l3 map[uint64]bool
	// codePagesTouched tracks code-cache residency misses.
	codePagesTouched map[uint64]bool
}

// frameBytes is the L2 footprint: stack contents + memory-likes +
// 1 KB frame state.
func (f *frameShadow) frameBytes(pageSize uint64) uint64 {
	return uint64(f.stackLen)*32 + f.memBytes + f.inputLen + f.retLen + f.codeLen + pageSize
}

// Machine is one HEVM's hardware shadow. It is exclusively assigned to
// one bundle at a time and fully cleared between bundles (paper's
// dedicated-hardware isolation, step 10).
type Machine struct {
	cfg   Config
	clock *simclock.Clock
	cal   simclock.Calibration

	aead   cipher.AEAD
	noise  *noiseRand
	frames []*frameShadow
	// l3Store is the untrusted memory: encrypted page blobs.
	l3Store map[uint64][]byte
	// l2Used counts resident pages.
	l2Used   uint64
	nextPage uint64

	swaps      []SwapEvent
	stepCount  uint64
	codeFaults uint64
	overflowed bool
	nonceCtr   uint64
}

// New creates a machine. l3Key seals layer-3 pages (32 bytes);
// noiseSeed seeds the pre-evict/pre-load noise generator: 0 keys it
// from crypto/rand (the prototype's stand-in for the Manufacturer's
// secure RNG), any other value derives the key deterministically so
// experiments stay reproducible.
func New(cfg Config, clock *simclock.Clock, cal simclock.Calibration, l3Key []byte, noiseSeed int64) (*Machine, error) {
	if len(l3Key) != 32 {
		return nil, errors.New("hevm: l3 key must be 32 bytes")
	}
	blk, err := aes.NewCipher(l3Key)
	if err != nil {
		return nil, fmt.Errorf("hevm: %w", err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("hevm: %w", err)
	}
	noise, err := newNoiseRand(noiseSeed)
	if err != nil {
		return nil, err
	}
	return &Machine{
		cfg:     cfg,
		clock:   clock,
		cal:     cal,
		aead:    aead,
		noise:   noise,
		l3Store: make(map[uint64][]byte),
	}, nil
}

// Hooks returns the evm.Hooks that drive this machine.
func (m *Machine) Hooks() *evm.Hooks {
	return &evm.Hooks{
		OnStep:      m.onStep,
		OnCallEnter: m.onCallEnter,
		OnCallExit:  m.onCallExit,
		OnMemAccess: m.onMemAccess,
	}
}

// Reset clears all on-chip state and the L3 mirror (bundle release,
// step 10: "the HEVM is reset to the idle state and all its on-chip
// memories are cleared").
func (m *Machine) Reset() {
	m.frames = nil
	m.l3Store = make(map[uint64][]byte)
	m.l2Used = 0
	m.nextPage = 0
	m.swaps = nil
	m.stepCount = 0
	m.codeFaults = 0
	m.overflowed = false
}

// Stats summarizes the machine's counters.
type Stats struct {
	Steps      uint64
	SwapEvents int
	// PagesEvicted/Loaded count noisy (observed) page movements.
	PagesEvicted int
	PagesLoaded  int
	L2PagesUsed  uint64
	Overflowed   bool
	// CodeFaults counts L1 code-cache misses (code pages beyond the
	// 64 KB window faulting to L2) — the L1 side of the memory
	// hierarchy the telemetry layer exports.
	CodeFaults uint64
}

// Stats returns the counters.
func (m *Machine) Stats() Stats {
	s := Stats{
		Steps:       m.stepCount,
		SwapEvents:  len(m.swaps),
		L2PagesUsed: m.l2Used,
		Overflowed:  m.overflowed,
		CodeFaults:  m.codeFaults,
	}
	for _, ev := range m.swaps {
		if ev.Evict {
			s.PagesEvicted += ev.Pages
		} else {
			s.PagesLoaded += ev.Pages
		}
	}
	return s
}

// SwapTrace returns the adversary-visible swap sequence.
func (m *Machine) SwapTrace() []SwapEvent {
	out := make([]SwapEvent, len(m.swaps))
	copy(out, m.swaps)
	return out
}

// current returns the topmost frame shadow, or nil outside execution.
func (m *Machine) current() *frameShadow {
	if len(m.frames) == 0 {
		return nil
	}
	return m.frames[len(m.frames)-1]
}

// onStep charges HEVM pipeline cycles and models the code cache.
func (m *Machine) onStep(info evm.StepInfo) {
	m.stepCount++
	cycles := m.cal.HEVMCyclesPerOp
	switch info.Op {
	case evm.MUL, evm.DIV, evm.SDIV, evm.MOD, evm.SMOD,
		evm.ADDMOD, evm.MULMOD, evm.EXP:
		cycles += m.cal.HEVMCyclesPerWideALU
	case evm.KECCAK256:
		cycles += 2 * m.cal.HEVMCyclesPerKeccakBlock
	}
	m.clock.Advance(time.Duration(cycles) * m.cal.HEVMCyclePeriod)

	f := m.current()
	if f == nil {
		return
	}
	f.stackLen = info.StackLen
	// Code cache: pages beyond the 64 KB window fault to L2.
	page := info.PC / m.cfg.PageSize
	if page >= uint64(m.cfg.CodeCachePages) && !f.codePagesTouched[page] {
		if f.codePagesTouched == nil {
			f.codePagesTouched = make(map[uint64]bool)
		}
		f.codePagesTouched[page] = true
		m.codeFaults++
		m.clock.Advance(m.cal.L2SwapPerPage)
	}
}

// onCallEnter pushes a new frame shadow: L1 contents of the caller are
// evicted to its L2 frame and a fresh frame is allocated.
func (m *Machine) onCallEnter(info evm.CallFrameInfo) {
	f := &frameShadow{
		depth:    info.Depth,
		inputLen: uint64(info.InputSize),
		codeLen:  uint64(info.CodeSize),
		l3:       make(map[uint64]bool),
	}
	m.frames = append(m.frames, f)
	// Charge the L1→L2 eviction of the caller's working set.
	if len(m.frames) > 1 {
		caller := m.frames[len(m.frames)-2]
		pages := (caller.frameBytes(m.cfg.PageSize) + m.cfg.PageSize - 1) / m.cfg.PageSize
		m.clock.Advance(time.Duration(pages) * m.cal.L2SwapPerPage)
	}
	m.growFrame(f)
}

// onCallExit pops the frame, frees its pages, and reloads the caller
// entirely on-chip (the paper's invariant for secure L1 misses).
func (m *Machine) onCallExit(info evm.CallResultInfo) {
	if len(m.frames) == 0 {
		return
	}
	f := m.frames[len(m.frames)-1]
	f.retLen = uint64(info.ReturnSize)
	m.frames = m.frames[:len(m.frames)-1]
	// Free the callee's pages.
	for _, p := range f.pages {
		if f.l3[p] {
			delete(m.l3Store, p)
		} else {
			m.l2Used--
		}
	}
	// Reload the (new) current frame's swapped pages, plus noise.
	cur := m.current()
	if cur == nil {
		return
	}
	var toLoad []uint64
	for _, p := range cur.pages {
		if cur.l3[p] {
			toLoad = append(toLoad, p)
		}
	}
	if len(toLoad) > 0 {
		noise := m.preloadNoise()
		m.loadPages(cur, toLoad, noise)
	}
	// Charge the L2→L1 reload of the caller's working set.
	pages := (cur.frameBytes(m.cfg.PageSize) + m.cfg.PageSize - 1) / m.cfg.PageSize
	m.clock.Advance(time.Duration(pages) * m.cal.L2SwapPerPage)
}

// onMemAccess grows the current frame when Memory expands.
func (m *Machine) onMemAccess(a evm.MemAccess) {
	f := m.current()
	if f == nil {
		return
	}
	end := a.Offset + a.Size
	if end > f.memBytes {
		f.memBytes = end
		m.growFrame(f)
	}
}

// growFrame allocates L2 pages to match the frame's byte footprint,
// swapping lower frames to L3 when the ring is full, and raises the
// Memory Overflow Error past the frame limit.
func (m *Machine) growFrame(f *frameShadow) {
	size := f.frameBytes(m.cfg.PageSize)
	if size >= m.cfg.FrameLimitBytes {
		m.overflowed = true
		panic(&MemoryOverflowError{FrameBytes: size, Limit: m.cfg.FrameLimitBytes})
	}
	needPages := (size + m.cfg.PageSize - 1) / m.cfg.PageSize
	for uint64(len(f.pages)) < needPages {
		m.ensureL2Space(1)
		f.pages = append(f.pages, m.nextPage)
		m.nextPage++
		m.l2Used++
	}
}

// l2Capacity in pages.
func (m *Machine) l2Capacity() uint64 {
	return m.cfg.L2Bytes / m.cfg.PageSize
}

// ensureL2Space evicts bottom-frame pages to L3 until `need` pages fit.
func (m *Machine) ensureL2Space(need uint64) {
	if m.l2Used+need <= m.l2Capacity() {
		return
	}
	required := m.l2Used + need - m.l2Capacity()
	// Pre-evict noise: dump more than required.
	noisy := required + uint64(m.noise.Intn(m.cfg.NoiseMaxPages+1))
	evicted := 0
	for _, f := range m.frames { // bottom frame first
		if f == m.current() {
			break // never evict the executing frame
		}
		for _, p := range f.pages {
			if uint64(evicted) >= noisy {
				break
			}
			if f.l3[p] {
				continue
			}
			m.sealPageToL3(p)
			f.l3[p] = true
			m.l2Used--
			evicted++
		}
		if uint64(evicted) >= noisy {
			break
		}
	}
	if evicted > 0 {
		m.swaps = append(m.swaps, SwapEvent{Evict: true, Pages: evicted, At: m.clock.Now()})
		m.clock.Advance(time.Duration(evicted) * m.cal.L3SwapPerPage)
	}
}

// loadPages reloads pages from L3 into L2, adding pre-load noise by
// also loading extra swapped pages of lower frames.
func (m *Machine) loadPages(owner *frameShadow, pages []uint64, noise int) {
	loaded := 0
	for _, p := range pages {
		m.openPageFromL3(p)
		owner.l3[p] = false
		m.l2Used++
		loaded++
	}
	// Noise: reload extra pages belonging to lower frames.
	for _, f := range m.frames {
		if noise <= 0 {
			break
		}
		for _, p := range f.pages {
			if noise <= 0 {
				break
			}
			if f.l3[p] && m.l2Used < m.l2Capacity() {
				m.openPageFromL3(p)
				f.l3[p] = false
				m.l2Used++
				loaded++
				noise--
			}
		}
	}
	m.swaps = append(m.swaps, SwapEvent{Evict: false, Pages: loaded, At: m.clock.Now()})
	m.clock.Advance(time.Duration(loaded) * m.cal.L3SwapPerPage)
}

func (m *Machine) preloadNoise() int {
	return m.noise.Intn(m.cfg.NoiseMaxPages + 1)
}

// sealPageToL3 performs the real A.E.DMA encryption of one page into
// untrusted memory. Page contents are the page header + id (the
// canonical data lives in the interpreter; see DESIGN.md on shadow
// fidelity) — the cryptographic path is the real one.
func (m *Machine) sealPageToL3(pageID uint64) {
	plain := make([]byte, m.cfg.PageSize)
	binary.BigEndian.PutUint64(plain, pageID)
	nonce := make([]byte, m.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], m.nextNonce())
	var ad [8]byte
	binary.BigEndian.PutUint64(ad[:], pageID)
	m.l3Store[pageID] = append(nonce, m.aead.Seal(nil, nonce, plain, ad[:])...)
}

func (m *Machine) nextNonce() uint64 {
	m.nonceCtr++
	return m.nonceCtr
}

// openPageFromL3 decrypts and authenticates one page on reload,
// panicking with ErrL3Tampered on forgery (caught by the executor and
// surfaced as a bundle failure).
func (m *Machine) openPageFromL3(pageID uint64) {
	blob, ok := m.l3Store[pageID]
	if !ok {
		panic(ErrL3Tampered)
	}
	ns := m.aead.NonceSize()
	if len(blob) < ns {
		panic(ErrL3Tampered)
	}
	var ad [8]byte
	binary.BigEndian.PutUint64(ad[:], pageID)
	plain, err := m.aead.Open(nil, blob[:ns], blob[ns:], ad[:])
	if err != nil {
		panic(ErrL3Tampered)
	}
	if binary.BigEndian.Uint64(plain) != pageID {
		panic(ErrL3Tampered)
	}
	delete(m.l3Store, pageID)
}

// TamperL3 corrupts one stored L3 page (test hook, attack A4).
func (m *Machine) TamperL3() bool {
	for id, blob := range m.l3Store {
		blob[len(blob)-1] ^= 0x01
		m.l3Store[id] = blob
		return true
	}
	return false
}

// L3Pages reports how many pages are currently swapped out.
func (m *Machine) L3Pages() int { return len(m.l3Store) }
