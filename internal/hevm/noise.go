package hevm

import (
	"crypto/aes"
	"crypto/cipher"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// noiseRand generates the pre-evict/pre-load noise schedule (§IV-B,
// A5). The schedule must be unpredictable: with a statistical PRNG an
// adversary who reconstructs the generator state from observed swap
// sizes can subtract the noise and recover the true frame footprints.
// noiseRand is an AES-CTR generator — the software stand-in for the
// Manufacturer's secure RNG — so outputs reveal nothing about future
// outputs even across many observed bundles.
//
// Seeding: seed 0 draws the AES key from crypto/rand (deployment);
// a non-zero seed derives it by hashing, keeping experiments and
// tests reproducible without weakening the generator itself.
type noiseRand struct {
	stream cipher.Stream
}

func newNoiseRand(seed int64) (*noiseRand, error) {
	var key [32]byte
	if seed == 0 {
		if _, err := crand.Read(key[:]); err != nil {
			return nil, fmt.Errorf("hevm: noise key: %w", err)
		}
	} else {
		h := sha256.New()
		h.Write([]byte("hardtape-noise-v1"))
		var s [8]byte
		binary.BigEndian.PutUint64(s[:], uint64(seed))
		h.Write(s[:])
		copy(key[:], h.Sum(nil))
	}
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("hevm: noise cipher: %w", err)
	}
	var iv [aes.BlockSize]byte
	return &noiseRand{stream: cipher.NewCTR(blk, iv[:])}, nil
}

// Intn returns a uniform int in [0, n), n > 0, by rejection sampling
// the keystream (no modulo bias — a biased noise distribution would
// itself be a distinguisher).
func (r *noiseRand) Intn(n int) int {
	if n <= 0 {
		panic("hevm: noise bound must be positive")
	}
	bound := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		var b [8]byte
		r.stream.XORKeyStream(b[:], b[:])
		if v := binary.BigEndian.Uint64(b[:]); v < limit {
			return int(v % bound)
		}
	}
}
