package hevm

import (
	"container/list"

	"hardtape/internal/types"
)

// WSCacheKey identifies one cached world-state record: an account's
// balance/nonce/meta (Key zero) or a storage record.
type WSCacheKey struct {
	Addr types.Address
	Key  types.Hash
	// Meta distinguishes the account-meta record from storage slot 0.
	Meta bool
}

// WSCache is the L1 world-state cache: 4 KB ≙ 64 records of 32 bytes
// plus tags (paper §IV-B). It is a plain LRU; a miss raises an
// exception to the Hypervisor, which answers from the overlay, the
// local store, or the ORAM.
type WSCache struct {
	capacity int
	entries  map[WSCacheKey]*list.Element
	order    *list.List // front = most recent

	hits, misses uint64
}

type wsEntry struct {
	key   WSCacheKey
	value [32]byte
}

// NewWSCache returns a cache with the given entry capacity.
func NewWSCache(capacity int) *WSCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &WSCache{
		capacity: capacity,
		entries:  make(map[WSCacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// Get looks a record up, refreshing recency.
func (c *WSCache) Get(key WSCacheKey) ([32]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return [32]byte{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*wsEntry).value, true
}

// Put inserts or updates a record, evicting the LRU entry when full.
func (c *WSCache) Put(key WSCacheKey, value [32]byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*wsEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*wsEntry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&wsEntry{key: key, value: value})
}

// Invalidate drops one record (e.g. after an overlay write).
func (c *WSCache) Invalidate(key WSCacheKey) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// Clear wipes the cache (bundle release).
func (c *WSCache) Clear() {
	c.entries = make(map[WSCacheKey]*list.Element, c.capacity)
	c.order.Init()
	c.hits, c.misses = 0, 0
}

// Len returns the resident entry count.
func (c *WSCache) Len() int { return c.order.Len() }

// HitRate returns (hits, misses).
func (c *WSCache) HitRate() (uint64, uint64) { return c.hits, c.misses }
