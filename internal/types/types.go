// Package types defines the core Ethereum data types shared across the
// HarDTAPE reproduction: addresses, hashes, accounts, transactions,
// blocks, bundles, and execution receipts.
package types

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"

	"hardtape/internal/keccak"
	"hardtape/internal/rlp"
	"hardtape/internal/secp256k1"
	"hardtape/internal/uint256"
)

// AddressLength is the length of an Ethereum address in bytes.
const AddressLength = 20

// HashLength is the length of a keccak256 hash in bytes.
const HashLength = 32

// Address is a 20-byte Ethereum account address.
type Address [AddressLength]byte

// Hash is a 32-byte keccak256 digest.
type Hash [HashLength]byte

// Parsing errors.
var (
	ErrBadAddress = errors.New("types: invalid address")
	ErrBadHash    = errors.New("types: invalid hash")
	ErrUnsigned   = errors.New("types: transaction is not signed")
)

// HexToAddress parses a 0x-prefixed 40-hex-digit address.
func HexToAddress(s string) (Address, error) {
	var a Address
	if len(s) != 2+2*AddressLength || s[:2] != "0x" {
		return a, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	raw, err := hex.DecodeString(s[2:])
	if err != nil {
		return a, fmt.Errorf("%w: %v", ErrBadAddress, err)
	}
	copy(a[:], raw)
	return a, nil
}

// MustAddress is HexToAddress, panicking on error. For constants/tests.
func MustAddress(s string) Address {
	a, err := HexToAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// BytesToAddress returns an address from the low-order 20 bytes of b.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
	return a
}

// String implements fmt.Stringer with a 0x prefix.
func (a Address) String() string {
	return "0x" + hex.EncodeToString(a[:])
}

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool {
	return a == Address{}
}

// Word returns the address left-padded to a 256-bit word.
func (a Address) Word() *uint256.Int {
	return new(uint256.Int).SetBytes(a[:])
}

// Hash returns the keccak256 of the address bytes (used as a secure
// trie key).
func (a Address) Hash() Hash {
	return Hash(keccak.Sum256(a[:]))
}

// BytesToHash returns a hash from the low-order 32 bytes of b.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
	return h
}

// HexToHash parses a 0x-prefixed 64-hex-digit hash.
func HexToHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 2+2*HashLength || s[:2] != "0x" {
		return h, fmt.Errorf("%w: %q", ErrBadHash, s)
	}
	raw, err := hex.DecodeString(s[2:])
	if err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadHash, err)
	}
	copy(h[:], raw)
	return h, nil
}

// String implements fmt.Stringer with a 0x prefix.
func (h Hash) String() string {
	return "0x" + hex.EncodeToString(h[:])
}

// IsZero reports whether h is all zeroes.
func (h Hash) IsZero() bool {
	return h == Hash{}
}

// Word returns the hash as a 256-bit word.
func (h Hash) Word() *uint256.Int {
	return new(uint256.Int).SetBytes(h[:])
}

// EmptyCodeHash is keccak256 of the empty byte string — the code hash
// of every externally owned account.
var EmptyCodeHash = Hash(keccak.Sum256(nil))

// Account is the four-field Ethereum account state.
type Account struct {
	Nonce       uint64
	Balance     *uint256.Int
	StorageRoot Hash
	CodeHash    Hash
}

// NewAccount returns an empty account with a zero balance and the
// empty code hash.
func NewAccount() *Account {
	return &Account{
		Balance:  new(uint256.Int),
		CodeHash: EmptyCodeHash,
	}
}

// Clone returns a deep copy of the account.
func (a *Account) Clone() *Account {
	return &Account{
		Nonce:       a.Nonce,
		Balance:     a.Balance.Clone(),
		StorageRoot: a.StorageRoot,
		CodeHash:    a.CodeHash,
	}
}

// IsEmpty reports whether the account is empty per EIP-161 (zero nonce,
// zero balance, no code).
func (a *Account) IsEmpty() bool {
	return a.Nonce == 0 && a.Balance.IsZero() && a.CodeHash == EmptyCodeHash
}

// EncodeRLP serializes the account in the canonical trie leaf format.
func (a *Account) EncodeRLP() []byte {
	return rlp.List(
		rlp.Uint(a.Nonce),
		rlp.String(a.Balance.Bytes()),
		rlp.String(a.StorageRoot[:]),
		rlp.String(a.CodeHash[:]),
	).Encode()
}

// DecodeAccountRLP parses the canonical account leaf encoding.
func DecodeAccountRLP(data []byte) (*Account, error) {
	item, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("types: account decode: %w", err)
	}
	fields, err := item.Children()
	if err != nil || len(fields) != 4 {
		return nil, fmt.Errorf("types: account must be a 4-field list")
	}
	nonce, err := fields[0].UintValue()
	if err != nil {
		return nil, fmt.Errorf("types: account nonce: %w", err)
	}
	balBytes, err := fields[1].Str()
	if err != nil {
		return nil, fmt.Errorf("types: account balance: %w", err)
	}
	rootBytes, err := fields[2].Str()
	if err != nil {
		return nil, fmt.Errorf("types: account storage root: %w", err)
	}
	codeBytes, err := fields[3].Str()
	if err != nil {
		return nil, fmt.Errorf("types: account code hash: %w", err)
	}
	return &Account{
		Nonce:       nonce,
		Balance:     new(uint256.Int).SetBytes(balBytes),
		StorageRoot: BytesToHash(rootBytes),
		CodeHash:    BytesToHash(codeBytes),
	}, nil
}

// Transaction is a legacy-format Ethereum transaction. To == nil means
// contract creation.
type Transaction struct {
	Nonce    uint64
	GasPrice *uint256.Int
	GasLimit uint64
	To       *Address
	Value    *uint256.Int
	Data     []byte

	// Signature values; nil R/S means unsigned.
	R, S *big.Int
	V    byte

	// cachedSender memoizes Sender() recovery.
	cachedSender *Address
}

// SigningHash returns the keccak256 of the RLP signing payload.
func (tx *Transaction) SigningHash() Hash {
	var to []byte
	if tx.To != nil {
		to = tx.To[:]
	}
	enc := rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.String(tx.GasPrice.Bytes()),
		rlp.Uint(tx.GasLimit),
		rlp.String(to),
		rlp.String(tx.Value.Bytes()),
		rlp.String(tx.Data),
	).Encode()
	return Hash(keccak.Sum256(enc))
}

// Hash returns the transaction hash (over the signed payload).
func (tx *Transaction) Hash() Hash {
	var to []byte
	if tx.To != nil {
		to = tx.To[:]
	}
	var r, s []byte
	if tx.R != nil {
		r = tx.R.Bytes()
	}
	if tx.S != nil {
		s = tx.S.Bytes()
	}
	enc := rlp.List(
		rlp.Uint(tx.Nonce),
		rlp.String(tx.GasPrice.Bytes()),
		rlp.Uint(tx.GasLimit),
		rlp.String(to),
		rlp.String(tx.Value.Bytes()),
		rlp.String(tx.Data),
		rlp.Uint(uint64(tx.V)),
		rlp.String(r),
		rlp.String(s),
	).Encode()
	return Hash(keccak.Sum256(enc))
}

// Sign signs the transaction with the given key and caches the sender.
func (tx *Transaction) Sign(priv *secp256k1.PrivateKey) error {
	h := tx.SigningHash()
	sig, err := priv.Sign(h[:])
	if err != nil {
		return fmt.Errorf("types: sign transaction: %w", err)
	}
	tx.R, tx.S, tx.V = sig.R, sig.S, sig.V
	addr := Address(priv.Public.Address())
	tx.cachedSender = &addr
	return nil
}

// Sender recovers the transaction sender from the signature.
func (tx *Transaction) Sender() (Address, error) {
	if tx.cachedSender != nil {
		return *tx.cachedSender, nil
	}
	if tx.R == nil || tx.S == nil {
		return Address{}, ErrUnsigned
	}
	h := tx.SigningHash()
	pub, err := secp256k1.Recover(h[:], &secp256k1.Signature{R: tx.R, S: tx.S, V: tx.V})
	if err != nil {
		return Address{}, fmt.Errorf("types: sender recovery: %w", err)
	}
	addr := Address(pub.Address())
	tx.cachedSender = &addr
	return addr, nil
}

// IsCreate reports whether the transaction creates a contract.
func (tx *Transaction) IsCreate() bool {
	return tx.To == nil
}

// Bundle is an ordered sequence of transactions to pre-execute against
// one world-state version. This is the unit of work a user submits.
type Bundle struct {
	// StateBlock pins the world-state version (block number) the bundle
	// simulates against.
	StateBlock uint64
	Txs        []*Transaction
}

// BlockHeader carries the consensus fields the EVM exposes plus the
// commitment roots.
type BlockHeader struct {
	ParentHash Hash
	Number     uint64
	Timestamp  uint64
	GasLimit   uint64
	Coinbase   Address
	StateRoot  Hash
	TxRoot     Hash
	BaseFee    *uint256.Int
	PrevRandao Hash
}

// Hash returns the keccak256 of the RLP-encoded header.
func (h *BlockHeader) Hash() Hash {
	enc := rlp.List(
		rlp.String(h.ParentHash[:]),
		rlp.Uint(h.Number),
		rlp.Uint(h.Timestamp),
		rlp.Uint(h.GasLimit),
		rlp.String(h.Coinbase[:]),
		rlp.String(h.StateRoot[:]),
		rlp.String(h.TxRoot[:]),
		rlp.String(h.BaseFee.Bytes()),
		rlp.String(h.PrevRandao[:]),
	).Encode()
	return Hash(keccak.Sum256(enc))
}

// Block is a header plus its transactions.
type Block struct {
	Header BlockHeader
	Txs    []*Transaction
}

// ComputeTxRoot returns a commitment over the block's transactions
// (keccak over the concatenated tx hashes; a simplification of the
// transaction trie documented in DESIGN.md).
func (b *Block) ComputeTxRoot() Hash {
	var buf bytes.Buffer
	for _, tx := range b.Txs {
		h := tx.Hash()
		buf.Write(h[:])
	}
	return Hash(keccak.Sum256(buf.Bytes()))
}

// Log is an EVM LOG event record.
type Log struct {
	Address Address
	Topics  []Hash
	Data    []byte
}

// StorageAccess records one storage read or write observed by a tracer.
// The slot address is public EVM state (named Slot, not Key, so it is
// not mistaken for key material).
type StorageAccess struct {
	Address Address
	Slot    Hash
	Value   Hash
	Write   bool
}

// CreateAddress computes the address of a contract created by sender
// with the given nonce: keccak256(rlp([sender, nonce]))[12:].
func CreateAddress(sender Address, nonce uint64) Address {
	enc := rlp.List(rlp.String(sender[:]), rlp.Uint(nonce)).Encode()
	h := keccak.Sum256(enc)
	return BytesToAddress(h[12:])
}

// Create2Address computes the EIP-1014 deterministic deployment
// address: keccak256(0xff ++ sender ++ salt ++ keccak256(code))[12:].
func Create2Address(sender Address, salt Hash, codeHash Hash) Address {
	var h [keccak.Size]byte
	keccak.HashInto(h[:], []byte{0xff}, sender[:], salt[:], codeHash[:])
	return BytesToAddress(h[12:])
}
