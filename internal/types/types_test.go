package types

import (
	"errors"
	"testing"
	"testing/quick"

	"hardtape/internal/keccak"
	"hardtape/internal/secp256k1"
	"hardtape/internal/uint256"
)

func TestAddressParsing(t *testing.T) {
	a, err := HexToAddress("0x00112233445566778899aabbccddeeff00112233")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "0x00112233445566778899aabbccddeeff00112233" {
		t.Errorf("round trip: %s", a)
	}
	for _, bad := range []string{"", "0x", "0x1234", "00112233445566778899aabbccddeeff00112233", "0xzz112233445566778899aabbccddeeff00112233"} {
		if _, err := HexToAddress(bad); !errors.Is(err, ErrBadAddress) {
			t.Errorf("HexToAddress(%q) should fail with ErrBadAddress, got %v", bad, err)
		}
	}
}

func TestBytesToAddressPadding(t *testing.T) {
	a := BytesToAddress([]byte{0x01})
	if a[19] != 0x01 || a[0] != 0 {
		t.Errorf("short input should right-align: %s", a)
	}
	long := make([]byte, 32)
	long[31] = 0x7f
	a = BytesToAddress(long)
	if a[19] != 0x7f {
		t.Errorf("long input should keep low bytes: %s", a)
	}
	if !(Address{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestHashParsing(t *testing.T) {
	h, err := HexToHash("0x00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff")
	if err != nil {
		t.Fatal(err)
	}
	if h.IsZero() {
		t.Error("parsed hash should not be zero")
	}
	if _, err := HexToHash("0x1234"); !errors.Is(err, ErrBadHash) {
		t.Error("short hash should fail")
	}
	if !h.Word().Eq(new(uint256.Int).SetBytes(h[:])) {
		t.Error("Word mismatch")
	}
}

func TestEmptyCodeHash(t *testing.T) {
	// Well-known constant: keccak256("").
	want := "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
	if EmptyCodeHash.String() != want {
		t.Errorf("EmptyCodeHash = %s, want %s", EmptyCodeHash, want)
	}
}

func TestAccountRLPRoundTrip(t *testing.T) {
	acct := &Account{
		Nonce:       42,
		Balance:     uint256.NewInt(1_000_000),
		StorageRoot: BytesToHash([]byte{0x01}),
		CodeHash:    EmptyCodeHash,
	}
	enc := acct.EncodeRLP()
	back, err := DecodeAccountRLP(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nonce != 42 || !back.Balance.Eq(acct.Balance) ||
		back.StorageRoot != acct.StorageRoot || back.CodeHash != acct.CodeHash {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestAccountDecodeErrors(t *testing.T) {
	if _, err := DecodeAccountRLP([]byte{0xff, 0x00}); err == nil {
		t.Error("garbage should fail")
	}
	// A 3-field list is not an account.
	short := &Account{Nonce: 1, Balance: uint256.NewInt(1), CodeHash: EmptyCodeHash}
	enc := short.EncodeRLP()
	if _, err := DecodeAccountRLP(enc[:len(enc)-1]); err == nil {
		t.Error("truncated should fail")
	}
}

func TestAccountEmptyAndClone(t *testing.T) {
	a := NewAccount()
	if !a.IsEmpty() {
		t.Error("new account should be empty")
	}
	a.Balance.SetUint64(5)
	if a.IsEmpty() {
		t.Error("funded account is not empty")
	}
	c := a.Clone()
	c.Balance.SetUint64(9)
	if a.Balance.Uint64() != 5 {
		t.Error("Clone must deep-copy balance")
	}
}

func TestTransactionSignSender(t *testing.T) {
	priv, err := secp256k1.GenerateKey([]byte("alice"))
	if err != nil {
		t.Fatal(err)
	}
	to := MustAddress("0x1111111111111111111111111111111111111111")
	tx := &Transaction{
		Nonce:    7,
		GasPrice: uint256.NewInt(1),
		GasLimit: 21000,
		To:       &to,
		Value:    uint256.NewInt(100),
		Data:     []byte{0x01, 0x02},
	}
	if _, err := tx.Sender(); !errors.Is(err, ErrUnsigned) {
		t.Error("unsigned tx Sender should fail with ErrUnsigned")
	}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	sender, err := tx.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if sender != Address(priv.Public.Address()) {
		t.Errorf("sender = %s", sender)
	}

	// Recovery (not just the cache) must work: clear the cache by
	// copying the tx value.
	cp := *tx
	cp.cachedSender = nil
	sender2, err := cp.Sender()
	if err != nil {
		t.Fatal(err)
	}
	if sender2 != sender {
		t.Error("recovered sender differs from cached sender")
	}
}

func TestTransactionHashesDiffer(t *testing.T) {
	to := MustAddress("0x2222222222222222222222222222222222222222")
	tx1 := &Transaction{Nonce: 1, GasPrice: uint256.NewInt(1), GasLimit: 21000, To: &to, Value: uint256.NewInt(5)}
	tx2 := &Transaction{Nonce: 2, GasPrice: uint256.NewInt(1), GasLimit: 21000, To: &to, Value: uint256.NewInt(5)}
	if tx1.SigningHash() == tx2.SigningHash() {
		t.Error("different nonces must hash differently")
	}
	create := &Transaction{Nonce: 1, GasPrice: uint256.NewInt(1), GasLimit: 21000, Value: uint256.NewInt(5)}
	if !create.IsCreate() || tx1.IsCreate() {
		t.Error("IsCreate wrong")
	}
	if tx1.SigningHash() == create.SigningHash() {
		t.Error("create vs call must hash differently")
	}
}

func TestBlockHeaderHash(t *testing.T) {
	h1 := &BlockHeader{Number: 1, BaseFee: uint256.NewInt(7)}
	h2 := &BlockHeader{Number: 2, BaseFee: uint256.NewInt(7)}
	if h1.Hash() == h2.Hash() {
		t.Error("different headers must hash differently")
	}
	if h1.Hash() != h1.Hash() {
		t.Error("hashing must be deterministic")
	}
}

func TestComputeTxRoot(t *testing.T) {
	to := MustAddress("0x3333333333333333333333333333333333333333")
	mk := func(n uint64) *Transaction {
		return &Transaction{Nonce: n, GasPrice: uint256.NewInt(1), GasLimit: 21000, To: &to, Value: new(uint256.Int)}
	}
	b1 := &Block{Txs: []*Transaction{mk(1), mk(2)}}
	b2 := &Block{Txs: []*Transaction{mk(2), mk(1)}}
	if b1.ComputeTxRoot() == b2.ComputeTxRoot() {
		t.Error("tx root must be order-sensitive")
	}
}

func TestCreateAddress(t *testing.T) {
	// Known vector: address created by 0x00...00 with nonce 0.
	sender := MustAddress("0x0000000000000000000000000000000000000000")
	got := CreateAddress(sender, 0)
	want := MustAddress("0xbd770416a3345f91e4b34576cb804a576fa48eb1")
	if got != want {
		t.Errorf("CreateAddress = %s, want %s", got, want)
	}
	if CreateAddress(sender, 1) == got {
		t.Error("nonce must change the address")
	}
}

func TestCreate2Address(t *testing.T) {
	// EIP-1014 example 1: deployer 0x00...00, salt 0, code 0x00.
	sender := MustAddress("0x0000000000000000000000000000000000000000")
	var salt Hash
	codeHash := Hash(keccak.Sum256([]byte{0x00}))
	got := Create2Address(sender, salt, codeHash)
	want := MustAddress("0x4d1a2e2bb4f88f0250f26ffff098b0b30b26bf38")
	if got != want {
		t.Errorf("Create2Address = %s, want %s", got, want)
	}
}

func TestQuickAddressWordRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		a := Address(raw)
		w := a.Word()
		b := w.Bytes32()
		return BytesToAddress(b[:]) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAccountRLPRoundTrip(t *testing.T) {
	f := func(nonce uint64, bal [32]byte, root, code [32]byte) bool {
		acct := &Account{
			Nonce:       nonce,
			Balance:     new(uint256.Int).SetBytes(bal[:]),
			StorageRoot: Hash(root),
			CodeHash:    Hash(code),
		}
		back, err := DecodeAccountRLP(acct.EncodeRLP())
		if err != nil {
			return false
		}
		return back.Nonce == acct.Nonce && back.Balance.Eq(acct.Balance) &&
			back.StorageRoot == acct.StorageRoot && back.CodeHash == acct.CodeHash
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTxHashInjective(t *testing.T) {
	f := func(n1, n2 uint64, data []byte) bool {
		to := MustAddress("0x4444444444444444444444444444444444444444")
		tx1 := &Transaction{Nonce: n1, GasPrice: uint256.NewInt(1), GasLimit: 1, To: &to, Value: new(uint256.Int), Data: data}
		tx2 := &Transaction{Nonce: n2, GasPrice: uint256.NewInt(1), GasLimit: 1, To: &to, Value: new(uint256.Int), Data: data}
		if n1 == n2 {
			return tx1.SigningHash() == tx2.SigningHash()
		}
		return tx1.SigningHash() != tx2.SigningHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
