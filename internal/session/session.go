// Package session implements HarDTAPE's resumable-session layer: the
// amortization of the ~80 ms A53 attest + DHKE round (the dominant
// cost in the paper's Fig. 4 breakdown) across many bundles and many
// reconnects.
//
// It sits between internal/channel / internal/attest and the
// service/fleet layers and has three parts:
//
//   - Resumption tickets ([TicketIssuer], [ClientTicket]): the first
//     handshake mints an encrypted, self-authenticating ticket holding
//     an HKDF-derived pre-shared key. A later connection redeems the
//     ticket and completes a cheap AES-GCM rekey — fresh nonce-salted
//     traffic keys, key-confirmation tags, zero asymmetric crypto.
//     Tickets are single-use and rotate on every resume.
//   - Cached attestation verdicts ([VerdictCache],
//     [CachingVerifier]): the user side remembers which device key it
//     verified for a given identity + image measurement, with
//     epoch-based expiry and an explicit revocation list, so cold
//     re-dials skip the certificate-chain verification and resumes
//     skip report verification entirely.
//   - Connection multiplexing ([Mux]): one secure channel carries many
//     interleaved request/response exchanges matched by request id —
//     the PR-3 pipelined framing pattern lifted from the ORAM
//     transport — so a warm session amortizes connection setup too.
//
// The model is the e-vTPM SEV-SNP attestation flow (attest once,
// derive many session credentials); the cheap rekey path stays inside
// the trusted boundary as in T-Edge's split.
package session

import "errors"

// Typed failures. Every adversarial path fails closed with one of
// these; the wire carries only a coarse reject code (see RejectCode).
var (
	// ErrTicketTampered reports a ticket that failed authenticated
	// decryption (bit-flipped, truncated, or sealed under an unknown
	// ticket key — e.g. by a restarted service).
	ErrTicketTampered = errors.New("session: ticket tampered or unknown")
	// ErrTicketExpired reports a ticket presented after its expiry
	// epoch.
	ErrTicketExpired = errors.New("session: ticket expired")
	// ErrTicketReplayed reports a ticket redeemed a second time;
	// tickets are strictly single-use (each resume mints a successor).
	ErrTicketReplayed = errors.New("session: ticket replayed")
	// ErrMeasurementChanged reports a resume against a device whose
	// booted image measurement no longer matches the one the ticket
	// was bound to.
	ErrMeasurementChanged = errors.New("session: image measurement changed since ticket issue")
	// ErrDeviceRevoked reports a device on the user's revocation list.
	ErrDeviceRevoked = errors.New("session: device revoked")
	// ErrResumeRejected is the client-side fallback when the service
	// refuses a resume without a recognizable reason.
	ErrResumeRejected = errors.New("session: resume rejected")
	// ErrMuxClosed reports a multiplexed exchange attempted on a dead
	// session.
	ErrMuxClosed = errors.New("session: multiplexed session closed")
)

// Reject codes carried in a resume-reject message. The mapping is
// deliberately coarse — enough for the client to decide between
// "re-dial cold" and "stop trusting this device", nothing more.
const (
	RejectGeneric uint8 = iota
	RejectTampered
	RejectExpired
	RejectReplayed
	RejectMeasurement
)

// RejectCode maps a server-side redeem failure to its wire code.
func RejectCode(err error) uint8 {
	switch {
	case errors.Is(err, ErrTicketTampered):
		return RejectTampered
	case errors.Is(err, ErrTicketExpired):
		return RejectExpired
	case errors.Is(err, ErrTicketReplayed):
		return RejectReplayed
	case errors.Is(err, ErrMeasurementChanged):
		return RejectMeasurement
	default:
		return RejectGeneric
	}
}

// RejectError maps a wire code back to the typed error, so both sides
// of the protocol fail with the same sentinel.
func RejectError(code uint8) error {
	switch code {
	case RejectTampered:
		return ErrTicketTampered
	case RejectExpired:
		return ErrTicketExpired
	case RejectReplayed:
		return ErrTicketReplayed
	case RejectMeasurement:
		return ErrMeasurementChanged
	default:
		return ErrResumeRejected
	}
}

// ClientTicket is the user-side resumption state: the opaque encrypted
// ticket to present, the locally derived PSK that proves possession,
// and the identity the session was attested against (consulted for
// revocation before a resume is attempted). The PSK is secret; Resume
// consumes it (zeroes it) whether or not the resume succeeds.
type ClientTicket struct {
	// Opaque is the service-sealed ticket, presented verbatim.
	Opaque []byte
	// PSK is the HKDF-derived resumption pre-shared key.
	PSK [32]byte
	// SessionID is the session the ticket was minted under.
	SessionID uint64
	// Serial and Measurement identify the attested device.
	Serial      string
	Measurement [32]byte
	// ExpiryEpoch is the last epoch the ticket is valid in.
	ExpiryEpoch uint64
}
