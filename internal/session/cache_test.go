package session

import (
	"errors"
	"testing"

	"hardtape/internal/attest"
)

func newCache(t *testing.T) (*VerdictCache, *FakeClock) {
	t.Helper()
	clk := fakeClockAt(t)
	return NewVerdictCache(clk, 10), clk
}

func TestVerdictCacheHitMissExpiry(t *testing.T) {
	vc, clk := newCache(t)
	var m [32]byte
	m[0] = 1
	pub := []byte{4, 5, 6}

	if got := vc.Lookup("HT-1", m); got != nil {
		t.Fatal("lookup before store must miss")
	}
	vc.Store("HT-1", m, pub)
	got := vc.Lookup("HT-1", m)
	if got == nil || got[0] != 4 {
		t.Fatal("lookup after store must hit")
	}
	// Returned slice is a copy: mutating it must not poison the cache.
	got[0] = 0xFF
	if again := vc.Lookup("HT-1", m); again[0] != 4 {
		t.Fatal("cache entry aliased caller's slice")
	}
	// A different measurement under the same serial is a miss.
	var m2 [32]byte
	m2[0] = 2
	if vc.Lookup("HT-1", m2) != nil {
		t.Fatal("different measurement must miss")
	}
	// Past the TTL the entry is gone.
	clk.AdvanceEpochs(11)
	if vc.Lookup("HT-1", m) != nil {
		t.Fatal("expired entry must miss")
	}
	if vc.Len() != 0 {
		t.Fatal("expired entry must be evicted on lookup")
	}
	hits, misses := vc.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("stats hits=%d misses=%d, want 2/3", hits, misses)
	}
}

func TestVerdictCacheRevocation(t *testing.T) {
	vc, _ := newCache(t)
	var m [32]byte
	vc.Store("HT-9", m, []byte{1})
	vc.Revoke("HT-9")
	if vc.Lookup("HT-9", m) != nil {
		t.Fatal("revoked device must never hit the cache")
	}
	if vc.Len() != 0 {
		t.Fatal("revocation must drop cached entries")
	}
	vc.Store("HT-9", m, []byte{1})
	if vc.Len() != 0 {
		t.Fatal("store after revocation must be ignored")
	}
	if err := vc.Check("HT-9"); !errors.Is(err, ErrDeviceRevoked) {
		t.Fatalf("Check: got %v, want ErrDeviceRevoked", err)
	}
	if err := vc.Check("HT-2"); err != nil {
		t.Fatalf("Check on clean serial: %v", err)
	}
}

func TestCachingVerifierSkipsChainVerify(t *testing.T) {
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	image := []byte("cache-test-image")
	booted, err := func() (*attest.BootedDevice, error) {
		dev, err := mfr.Provision("HT-CACHE")
		if err != nil {
			return nil, err
		}
		return dev.SecureBoot(image)
	}()
	if err != nil {
		t.Fatal(err)
	}
	cv := &CachingVerifier{
		Verifier: attest.NewVerifier(mfr.PublicKey(), booted.Measurement()),
		Cache:    NewVerdictCache(fakeClockAt(t), 10),
	}

	verifyOnce := func() uint64 {
		nonce, err := cv.NewNonce()
		if err != nil {
			t.Fatal(err)
		}
		report, _, err := booted.Attest(nonce)
		if err != nil {
			t.Fatal(err)
		}
		before := attest.AsymOps()
		if _, _, err := cv.Verify(report, nonce); err != nil {
			t.Fatal(err)
		}
		return attest.AsymOps() - before
	}

	coldOps := verifyOnce()
	warmOps := verifyOnce()
	// The cold verify pays the manufacturer-chain ECDSA check on top of
	// the per-report work; the cache hit skips exactly that.
	if warmOps >= coldOps {
		t.Fatalf("cached verify cost %d asym ops, cold cost %d; cache saved nothing", warmOps, coldOps)
	}
	if hits, _ := cv.Cache.Stats(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Revocation fails closed before any cryptography.
	cv.Cache.Revoke("HT-CACHE")
	nonce, err := cv.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	report, _, err := booted.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cv.Verify(report, nonce); !errors.Is(err, ErrDeviceRevoked) {
		t.Fatalf("verify of revoked device: got %v, want ErrDeviceRevoked", err)
	}
}

func TestCachingVerifierRejectsSplicedKey(t *testing.T) {
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	image := []byte("splice-test-image")
	dev, err := mfr.Provision("HT-SPLICE")
	if err != nil {
		t.Fatal(err)
	}
	booted, err := dev.SecureBoot(image)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewVerdictCache(fakeClockAt(t), 10)
	cv := &CachingVerifier{
		Verifier: attest.NewVerifier(mfr.PublicKey(), booted.Measurement()),
		Cache:    cache,
	}
	// Poison the cache with a key that is NOT the device's: the verifier
	// must notice the mismatch and fall back to the full chain verify,
	// which still succeeds because the report itself is honest.
	cache.Store("HT-SPLICE", booted.Measurement(), []byte("not-the-device-key"))
	nonce, err := cv.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	report, _, err := booted.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cv.Verify(report, nonce); err != nil {
		t.Fatalf("honest report with stale cache entry must re-verify, got %v", err)
	}
}
