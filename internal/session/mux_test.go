package session

import (
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"hardtape/internal/channel"
)

// muxPair builds a client Mux talking to a minimal echo server over
// net.Pipe. The server reverses MuxBundle bodies (so replies are
// distinguishable from echoes) and fails MuxStatus frames whose body
// says "boom".
func muxPair(t *testing.T) (*Mux, func()) {
	t.Helper()
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	const sid = 77
	cch, err := channel.NewSecureChannel(key, sid)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := channel.NewSecureChannel(key, sid)
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()

	var wmu sync.Mutex
	writeReply := func(frame []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		sealed, err := sch.Seal(channel.MsgMuxReply, frame)
		if err != nil {
			return err
		}
		return channel.WriteMessage(sconn, sealed)
	}
	go func() {
		for {
			raw, err := channel.ReadMessage(sconn)
			if err != nil {
				return
			}
			hdr, frame, err := sch.Open(raw)
			if err != nil || hdr.Type != channel.MsgMux {
				return
			}
			id, kind, body, err := ParseMuxFrame(frame)
			if err != nil {
				return
			}
			// Serve each request on its own goroutine so replies can
			// overtake each other — that's what the id matching is for.
			go func(id uint64, kind byte, body []byte) {
				if kind == MuxStatus && string(body) == "boom" {
					_ = writeReply(EncodeMuxFrame(id, MuxErr, []byte("boom served")))
					return
				}
				rev := make([]byte, len(body))
				for i, b := range body {
					rev[len(body)-1-i] = b
				}
				_ = writeReply(EncodeMuxFrame(id, MuxOK, rev))
			}(id, kind, append([]byte(nil), body...))
		}
	}()

	m := NewMux(cconn, cch)
	return m, func() { m.Close(); sconn.Close() }
}

func TestMuxConcurrentRoundTrips(t *testing.T) {
	m, done := muxPair(t)
	defer done()

	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				msg := "w" + strconv.Itoa(w) + "-req-" + strconv.Itoa(i)
				got, err := m.RoundTrip(MuxBundle, []byte(msg))
				if err != nil {
					errs <- err
					return
				}
				want := make([]byte, len(msg))
				for j := 0; j < len(msg); j++ {
					want[len(msg)-1-j] = msg[j]
				}
				if string(got) != string(want) {
					errs <- fmt.Errorf("reply %q for request %q", got, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMuxRemoteErrorIsPerRequest(t *testing.T) {
	m, done := muxPair(t)
	defer done()
	if _, err := m.RoundTrip(MuxStatus, []byte("boom")); err == nil {
		t.Fatal("remote error must surface to the caller")
	}
	// One failed request must not poison the session.
	if _, err := m.RoundTrip(MuxBundle, []byte("ok")); err != nil {
		t.Fatalf("round trip after remote error: %v", err)
	}
	if m.Broken() != nil {
		t.Fatal("remote application error must not break the mux")
	}
}

func TestMuxCloseFailsInFlight(t *testing.T) {
	m, done := muxPair(t)
	defer done()
	m.Close()
	if _, err := m.RoundTrip(MuxBundle, []byte("late")); !errors.Is(err, ErrMuxClosed) {
		t.Fatalf("round trip after close: got %v, want ErrMuxClosed", err)
	}
}

func TestParseMuxFrameRejectsShort(t *testing.T) {
	if _, _, _, err := ParseMuxFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame must be rejected")
	}
	frame := EncodeMuxFrame(9, MuxBundle, []byte("xyz"))
	id, kind, body, err := ParseMuxFrame(frame)
	if err != nil || id != 9 || kind != MuxBundle || string(body) != "xyz" {
		t.Fatalf("frame round trip: id=%d kind=%d body=%q err=%v", id, kind, body, err)
	}
}

func TestAdmissionGatesColdHandshakes(t *testing.T) {
	adm := NewAdmission(2)
	if adm.Limit() != 2 {
		t.Fatalf("limit %d, want 2", adm.Limit())
	}
	if w := adm.Acquire(); w {
		t.Fatal("first acquire must not wait")
	}
	if w := adm.Acquire(); w {
		t.Fatal("second acquire must not wait")
	}
	released := make(chan struct{})
	go func() {
		// Third acquire blocks until a release.
		if w := adm.Acquire(); !w {
			t.Error("third acquire should have waited")
		}
		close(released)
	}()
	// The waiter bumps Waits before parking; release only once it has.
	for adm.Waits() == 0 {
		runtime.Gosched()
	}
	adm.Release()
	<-released
	if adm.Waits() != 1 {
		t.Fatalf("waits %d, want 1", adm.Waits())
	}
	adm.Release()
	adm.Release()
	if adm.InFlight() != 0 {
		t.Fatalf("in-flight %d, want 0", adm.InFlight())
	}
}

func TestAdmissionNilIsUnlimited(t *testing.T) {
	var adm *Admission
	if adm != NewAdmission(0) {
		t.Fatal("limit 0 must produce the nil (unlimited) admission")
	}
	for i := 0; i < 100; i++ {
		if adm.Acquire() {
			t.Fatal("nil admission must never wait")
		}
	}
	adm.Release()
	if adm.InFlight() != 0 || adm.Waits() != 0 || adm.Limit() != 0 {
		t.Fatal("nil admission counters must read zero")
	}
}
