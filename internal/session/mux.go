package session

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"hardtape/internal/channel"
)

// Multiplexing lets one secure channel carry many interleaved
// request/response exchanges, matched by an 8-byte request id — the
// pipelined framing the ORAM transport proved out in PR 3, lifted
// inside the AEAD boundary. Frames ride as the *plaintext* of sealed
// MsgMux / MsgMuxReply messages, so the request ids and kinds are
// confidential and authenticated like everything else:
//
//	request:  [reqID u64][kind u8][body]
//	response: [reqID u64][status u8][body]     (statusErr body = message)
//
// A SecureChannel is deliberately not concurrency-safe (its sequence
// numbers are the replay defense), so the mux serializes seal+write
// under one lock and performs every Open on the single reader
// goroutine — the channel's invariants hold by construction.

// Mux frame kinds.
const (
	// MuxBundle carries a gob-encoded bundle; the reply is a trace.
	MuxBundle byte = 1
	// MuxStatus probes device occupancy; the reply is a status report.
	MuxStatus byte = 2

	// MuxFlagTraced marks a request frame that carries a 24-byte
	// distributed-trace context (channel.TraceContext) between the
	// kind byte and the body. Untraced frames stay byte-identical to
	// the pre-tracing wire format, so tracing is never a protocol
	// version bump.
	MuxFlagTraced byte = 0x80
)

// Mux frame reply statuses.
const (
	MuxOK  byte = 0
	MuxErr byte = 1
)

// muxHeaderLen is the frame prefix: request id + kind/status byte.
const muxHeaderLen = 9

// EncodeMuxFrame builds a frame to seal into a MsgMux or MsgMuxReply.
func EncodeMuxFrame(reqID uint64, kind byte, body []byte) []byte {
	frame := make([]byte, muxHeaderLen+len(body))
	binary.BigEndian.PutUint64(frame[:8], reqID)
	frame[8] = kind
	copy(frame[muxHeaderLen:], body)
	return frame
}

// EncodeMuxFrameTraced builds a request frame carrying a trace
// context: the kind byte gains MuxFlagTraced and the 24-byte context
// precedes the body.
func EncodeMuxFrameTraced(reqID uint64, kind byte, tc channel.TraceContext, body []byte) []byte {
	frame := make([]byte, muxHeaderLen, muxHeaderLen+channel.TraceContextSize+len(body))
	binary.BigEndian.PutUint64(frame[:8], reqID)
	frame[8] = kind | MuxFlagTraced
	frame = channel.AppendTraceContext(frame, tc)
	return append(frame, body...)
}

// ParseMuxFrame splits a decrypted frame into id, kind/status, body.
// A traced frame's context is stripped and discarded — untraced
// consumers (legacy paths, tests) keep working; use
// ParseMuxFrameTraced to recover it.
func ParseMuxFrame(frame []byte) (reqID uint64, kind byte, body []byte, err error) {
	reqID, kind, _, body, err = ParseMuxFrameTraced(frame)
	return reqID, kind, body, err
}

// ParseMuxFrameTraced splits a decrypted frame into id, kind/status,
// trace context (zero when the frame is untraced), and body. The
// returned kind has MuxFlagTraced cleared.
func ParseMuxFrameTraced(frame []byte) (reqID uint64, kind byte, tc channel.TraceContext, body []byte, err error) {
	if len(frame) < muxHeaderLen {
		return 0, 0, channel.TraceContext{}, nil, fmt.Errorf("session: short mux frame (%d bytes)", len(frame))
	}
	reqID = binary.BigEndian.Uint64(frame[:8])
	kind = frame[8]
	body = frame[muxHeaderLen:]
	if kind&MuxFlagTraced != 0 {
		kind &^= MuxFlagTraced
		tc, body, err = channel.ParseTraceContext(body)
		if err != nil {
			return 0, 0, channel.TraceContext{}, nil, err
		}
	}
	return reqID, kind, tc, body, nil
}

// muxResult is one decoded reply (or the transport failure that killed
// the session).
type muxResult struct {
	body []byte
	err  error
}

// Mux is the client end of a multiplexed session: many goroutines may
// call RoundTrip concurrently on one connection; replies are matched
// by request id by a single reader goroutine.
type Mux struct {
	conn io.ReadWriteCloser

	cmu sync.Mutex // seal order == write order; the channel's seq demands it
	ch  *channel.SecureChannel

	pmu     sync.Mutex
	pending map[uint64]chan muxResult
	nextID  uint64
	broken  error // sticky; set once, fails every later call
}

// NewMux starts multiplexing over an established secure channel. The
// mux owns all reads from conn from this point on.
func NewMux(conn io.ReadWriteCloser, ch *channel.SecureChannel) *Mux {
	m := &Mux{conn: conn, ch: ch, pending: make(map[uint64]chan muxResult)}
	go m.readLoop()
	return m
}

// Close tears the session down; in-flight round trips fail with
// ErrMuxClosed.
func (m *Mux) Close() error {
	m.fail(ErrMuxClosed)
	return m.conn.Close()
}

// RoundTrip sends one request frame and blocks for its reply body. It
// is safe for concurrent use; the send lock covers only seal+write,
// never the link round trip, so requests pipeline.
func (m *Mux) RoundTrip(kind byte, body []byte) ([]byte, error) {
	return m.RoundTripTraced(kind, channel.TraceContext{}, body)
}

// RoundTripTraced is RoundTrip with a propagated trace context; a
// zero context sends the untraced frame encoding.
func (m *Mux) RoundTripTraced(kind byte, tc channel.TraceContext, body []byte) ([]byte, error) {
	ch := make(chan muxResult, 1)
	m.pmu.Lock()
	if m.broken != nil {
		err := m.broken
		m.pmu.Unlock()
		return nil, err
	}
	m.nextID++
	id := m.nextID
	m.pending[id] = ch
	m.pmu.Unlock()

	var frame []byte
	if tc.Valid() {
		frame = EncodeMuxFrameTraced(id, kind, tc, body)
	} else {
		frame = EncodeMuxFrame(id, kind, body)
	}
	m.cmu.Lock()
	sealed, err := m.ch.Seal(channel.MsgMux, frame)
	if err == nil {
		err = channel.WriteMessage(m.conn, sealed)
	}
	m.cmu.Unlock()
	if err != nil {
		if m.take(id) != nil {
			return nil, fmt.Errorf("session: mux send: %w", err)
		}
		// The read loop already failed this call; fall through to recv.
	}

	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	return res.body, nil
}

// readLoop opens every inbound message on one goroutine (the
// SecureChannel recv sequence is single-threaded by construction) and
// routes replies to their waiting callers.
func (m *Mux) readLoop() {
	for {
		raw, err := channel.ReadMessage(m.conn)
		if err != nil {
			m.fail(fmt.Errorf("%w: %v", ErrMuxClosed, err))
			return
		}
		hdr, frame, err := m.ch.Open(raw)
		if err != nil {
			m.fail(fmt.Errorf("session: mux open: %w", err))
			return
		}
		if hdr.Type != channel.MsgMuxReply {
			m.fail(fmt.Errorf("session: unexpected message type %d on mux", hdr.Type))
			return
		}
		id, status, body, err := ParseMuxFrame(frame)
		if err != nil {
			m.fail(err)
			return
		}
		ch := m.take(id)
		if ch == nil {
			m.fail(fmt.Errorf("session: unsolicited mux reply id %d", id))
			return
		}
		if status != MuxOK {
			ch <- muxResult{err: fmt.Errorf("session: remote: %s", body)}
			continue
		}
		ch <- muxResult{body: body}
	}
}

// take removes and returns the pending reply channel for id, if any.
func (m *Mux) take(id uint64) chan muxResult {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	ch := m.pending[id]
	delete(m.pending, id)
	return ch
}

// fail poisons the mux and unblocks every in-flight caller.
func (m *Mux) fail(err error) {
	m.pmu.Lock()
	if m.broken == nil {
		m.broken = err
	}
	calls := m.pending
	m.pending = make(map[uint64]chan muxResult)
	m.pmu.Unlock()
	for _, ch := range calls {
		ch <- muxResult{err: err}
	}
}

// Broken reports the sticky failure, if any (tests, health checks).
func (m *Mux) Broken() error {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return m.broken
}
