package session

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sync"
)

// A resumption ticket is self-authenticating state the service hands
// to the user so the service itself can stay (almost) stateless: the
// ticket body — resumption PSK, session id, expiry epoch, and the
// device identity + image measurement it was attested under — is
// sealed with AES-GCM under a service-local ticket-encryption key
// (STEK) that never leaves the trusted boundary. The user cannot read
// or forge a ticket; it can only present it back.
//
// Wire layout:
//
//	keyID(4) ‖ nonce(12) ‖ AES-GCM(body)
//	body: ver(1) ‖ sessionID(8) ‖ expiryEpoch(8) ‖ psk(32) ‖
//	      measurement(32) ‖ serialLen(2) ‖ serial
//
// The only per-ticket state the service keeps is the anti-replay set:
// tickets are single-use (every resume mints a successor), and a
// redeemed ticket's fingerprint is remembered until its expiry epoch
// passes, bounding the set's size by issue rate × lifetime.

const (
	ticketVersion   = 1
	ticketKeyIDLen  = 4
	ticketAAD       = "hardtape-ticket-v1"
	ticketFixedBody = 1 + 8 + 8 + 32 + 32 + 2
)

// DefaultTicketLifetimeEpochs is the default ticket validity (60
// one-minute epochs: long enough to amortize bursts, short enough
// that the revocation window stays tight).
const DefaultTicketLifetimeEpochs = 60

// State is the server-side resumption state a ticket carries.
type State struct {
	SessionID   uint64
	PSK         [32]byte
	Serial      string
	Measurement [32]byte
	ExpiryEpoch uint64
}

// TicketIssuer mints and redeems resumption tickets. It is safe for
// concurrent use; one issuer typically lives per Service (sharing one
// across services would let tickets roam, which the fleet gateway
// exploits deliberately by terminating sessions itself).
type TicketIssuer struct {
	clock    Clock
	lifetime uint64 // epochs
	keyID    [ticketKeyIDLen]byte
	aead     cipher.AEAD

	mu        sync.Mutex
	redeemed  map[[16]byte]uint64 // ticket fingerprint → expiry epoch
	lastPrune uint64
}

// NewTicketIssuer creates an issuer with a fresh random STEK. The
// clock is injected so expiry is deterministic under test; lifetime
// <= 0 selects DefaultTicketLifetimeEpochs.
func NewTicketIssuer(clock Clock, lifetimeEpochs int) (*TicketIssuer, error) {
	if clock == nil {
		clock = SystemClock()
	}
	if lifetimeEpochs <= 0 {
		lifetimeEpochs = DefaultTicketLifetimeEpochs
	}
	var stek [32]byte
	if _, err := rand.Read(stek[:]); err != nil {
		return nil, fmt.Errorf("session: ticket key: %w", err)
	}
	blk, err := aes.NewCipher(stek[:])
	ZeroKey(&stek)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	ti := &TicketIssuer{
		clock:    clock,
		lifetime: uint64(lifetimeEpochs),
		aead:     aead,
		redeemed: make(map[[16]byte]uint64),
	}
	if _, err := rand.Read(ti.keyID[:]); err != nil {
		return nil, fmt.Errorf("session: ticket key id: %w", err)
	}
	return ti, nil
}

// Epoch returns the issuer's current epoch.
func (ti *TicketIssuer) Epoch() uint64 { return EpochAt(ti.clock.Now()) }

// Lifetime returns the ticket validity in epochs.
func (ti *TicketIssuer) Lifetime() uint64 { return ti.lifetime }

// Issue seals st into a wire ticket, stamping st.ExpiryEpoch from the
// issuer's clock. The caller's PSK is copied into the sealed body and
// remains the caller's to zero.
func (ti *TicketIssuer) Issue(st *State) ([]byte, error) {
	st.ExpiryEpoch = ti.Epoch() + ti.lifetime
	if len(st.Serial) > 0xFFFF {
		return nil, fmt.Errorf("session: serial too long: %d", len(st.Serial))
	}
	body := make([]byte, ticketFixedBody+len(st.Serial))
	body[0] = ticketVersion
	binary.BigEndian.PutUint64(body[1:9], st.SessionID)
	binary.BigEndian.PutUint64(body[9:17], st.ExpiryEpoch)
	copy(body[17:49], st.PSK[:])
	copy(body[49:81], st.Measurement[:])
	binary.BigEndian.PutUint16(body[81:83], uint16(len(st.Serial)))
	copy(body[83:], st.Serial)

	nonce := make([]byte, ti.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		Zero(body)
		return nil, fmt.Errorf("session: ticket nonce: %w", err)
	}
	out := make([]byte, 0, ticketKeyIDLen+len(nonce)+len(body)+ti.aead.Overhead())
	out = append(out, ti.keyID[:]...)
	out = append(out, nonce...)
	out = ti.aead.Seal(out, nonce, body, ti.aad())
	Zero(body) // the plaintext PSK copy must not linger
	return out, nil
}

// Redeem authenticates, decrypts, and consumes a wire ticket. It
// fails closed with ErrTicketTampered, ErrTicketExpired, or
// ErrTicketReplayed; on success the ticket's fingerprint is burned
// until its expiry epoch passes, so a second redemption is refused
// even within the validity window.
func (ti *TicketIssuer) Redeem(wire []byte) (*State, error) {
	nonceLen := ti.aead.NonceSize()
	if len(wire) < ticketKeyIDLen+nonceLen+ti.aead.Overhead()+ticketFixedBody {
		return nil, ErrTicketTampered
	}
	// The key id is public routing data, not secret material.
	//hardtape:consttime-ok the ticket key id is a public key-rotation selector, not a secret
	if subtle.ConstantTimeCompare(wire[:ticketKeyIDLen], ti.keyID[:]) != 1 {
		return nil, ErrTicketTampered
	}
	nonce := wire[ticketKeyIDLen : ticketKeyIDLen+nonceLen]
	body, err := ti.aead.Open(nil, nonce, wire[ticketKeyIDLen+nonceLen:], ti.aad())
	if err != nil {
		return nil, ErrTicketTampered
	}
	defer Zero(body)
	if len(body) < ticketFixedBody || body[0] != ticketVersion {
		return nil, ErrTicketTampered
	}
	serialLen := int(binary.BigEndian.Uint16(body[81:83]))
	if len(body) != ticketFixedBody+serialLen {
		return nil, ErrTicketTampered
	}
	st := &State{
		SessionID:   binary.BigEndian.Uint64(body[1:9]),
		ExpiryEpoch: binary.BigEndian.Uint64(body[9:17]),
		Serial:      string(body[83 : 83+serialLen]),
	}
	copy(st.PSK[:], body[17:49])
	copy(st.Measurement[:], body[49:81])

	now := ti.Epoch()
	if now > st.ExpiryEpoch {
		ZeroKey(&st.PSK)
		return nil, ErrTicketExpired
	}
	if err := ti.burn(fingerprint(wire), st.ExpiryEpoch, now); err != nil {
		ZeroKey(&st.PSK)
		return nil, err
	}
	return st, nil
}

// burn marks a ticket fingerprint redeemed, pruning fingerprints whose
// expiry epoch passed (they can never be redeemed again anyway).
func (ti *TicketIssuer) burn(fp [16]byte, expiry, now uint64) error {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if now > ti.lastPrune {
		for k, exp := range ti.redeemed {
			if now > exp {
				delete(ti.redeemed, k)
			}
		}
		ti.lastPrune = now
	}
	if _, dup := ti.redeemed[fp]; dup {
		return ErrTicketReplayed
	}
	ti.redeemed[fp] = expiry
	return nil
}

// RedeemedCount reports the anti-replay set size (tests, stats).
func (ti *TicketIssuer) RedeemedCount() int {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return len(ti.redeemed)
}

func (ti *TicketIssuer) aad() []byte {
	aad := make([]byte, 0, len(ticketAAD)+ticketKeyIDLen)
	aad = append(aad, ticketAAD...)
	return append(aad, ti.keyID[:]...)
}

// fingerprint is the anti-replay key for a wire ticket: a hash, so
// the replay set never stores ticket ciphertext.
func fingerprint(wire []byte) [16]byte {
	sum := sha256.Sum256(wire)
	var fp [16]byte
	copy(fp[:], sum[:16])
	return fp
}
