package session

import (
	"crypto/sha256"
	"crypto/subtle"
	"sync"

	"hardtape/internal/attest"
)

// DefaultVerdictTTLEpochs is how long a cached attestation verdict
// stays fresh (4 hours of one-minute epochs): a reconnecting user
// re-verifies the full certificate chain at most that often.
const DefaultVerdictTTLEpochs = 240

// verdictKey identifies a cached verdict: the device identity AND the
// image measurement it was verified under. A device that reboots into
// a different image misses the cache and pays the full chain verify.
type verdictKey struct {
	serial      string
	measurement [32]byte
}

// VerdictCache remembers which device public key the user verified for
// a given identity + image measurement. Entries expire by epoch; an
// explicit revocation list overrides the cache (and blocks resumes)
// immediately. Safe for concurrent use.
type VerdictCache struct {
	clock Clock
	ttl   uint64 // epochs

	mu      sync.Mutex
	entries map[verdictKey]verdictEntry
	revoked map[string]struct{}
	hits    uint64
	misses  uint64
}

type verdictEntry struct {
	devPub []byte // uncompressed point, verified against the mfr chain
	expiry uint64 // epoch
}

// NewVerdictCache creates a cache with the given clock (nil for the
// system clock) and TTL in epochs (<= 0 for the default).
func NewVerdictCache(clock Clock, ttlEpochs int) *VerdictCache {
	if clock == nil {
		clock = SystemClock()
	}
	if ttlEpochs <= 0 {
		ttlEpochs = DefaultVerdictTTLEpochs
	}
	return &VerdictCache{
		clock:   clock,
		ttl:     uint64(ttlEpochs),
		entries: make(map[verdictKey]verdictEntry),
		revoked: make(map[string]struct{}),
	}
}

// Lookup returns the cached, chain-verified device public key for the
// identity + measurement, or nil on miss/expiry/revocation.
func (vc *VerdictCache) Lookup(serial string, measurement [32]byte) []byte {
	now := EpochAt(vc.clock.Now())
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if _, bad := vc.revoked[serial]; bad {
		vc.misses++
		return nil
	}
	ent, ok := vc.entries[verdictKey{serial, measurement}]
	if !ok || now > ent.expiry {
		if ok {
			delete(vc.entries, verdictKey{serial, measurement})
		}
		vc.misses++
		return nil
	}
	vc.hits++
	pub := make([]byte, len(ent.devPub))
	copy(pub, ent.devPub)
	return pub
}

// Store records a freshly chain-verified device public key.
func (vc *VerdictCache) Store(serial string, measurement [32]byte, devPub []byte) {
	now := EpochAt(vc.clock.Now())
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if _, bad := vc.revoked[serial]; bad {
		return
	}
	pub := make([]byte, len(devPub))
	copy(pub, devPub)
	vc.entries[verdictKey{serial, measurement}] = verdictEntry{devPub: pub, expiry: now + vc.ttl}
}

// Revoke blacklists a device: its cached verdicts are dropped, future
// Store calls are ignored, and Check fails with ErrDeviceRevoked. Used
// when the manufacturer or fleet operator distrusts a serial.
func (vc *VerdictCache) Revoke(serial string) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	vc.revoked[serial] = struct{}{}
	for k := range vc.entries {
		if k.serial == serial {
			delete(vc.entries, k)
		}
	}
}

// Check returns ErrDeviceRevoked if the serial is on the revocation
// list. Resume paths consult this before presenting a ticket.
func (vc *VerdictCache) Check(serial string) error {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if _, bad := vc.revoked[serial]; bad {
		return ErrDeviceRevoked
	}
	return nil
}

// Stats reports cache hits and misses (telemetry, tests).
func (vc *VerdictCache) Stats() (hits, misses uint64) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.hits, vc.misses
}

// Len reports the number of live cached verdicts.
func (vc *VerdictCache) Len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return len(vc.entries)
}

// CachingVerifier wraps an attest.Verifier with a VerdictCache: a hit
// on (serial, measurement) skips the manufacturer-chain ECDSA verify —
// the report signature is still checked against the cached device key,
// so a man-in-the-middle cannot splice a stale verdict onto a forged
// report. It satisfies the same Verify contract as attest.Verifier.
type CachingVerifier struct {
	Verifier *attest.Verifier
	Cache    *VerdictCache
}

// NewNonce samples a fresh challenge (delegates to the inner verifier).
func (cv *CachingVerifier) NewNonce() ([32]byte, error) {
	return cv.Verifier.NewNonce()
}

// Verify checks the report — via the cached verdict when possible —
// and completes the DHKE. Revoked devices fail closed before any
// cryptography runs.
func (cv *CachingVerifier) Verify(report *attest.Report, nonce [32]byte) (*attest.Session, []byte, error) {
	if cv.Cache == nil {
		return cv.Verifier.Verify(report, nonce)
	}
	if err := cv.Cache.Check(report.Cert.Serial); err != nil {
		return nil, nil, err
	}
	if cached := cv.Cache.Lookup(report.Cert.Serial, report.Measurement); cached != nil {
		// Bind the cached verdict to this exact report: the pinned key
		// must equal the one the report's certificate carries.
		//hardtape:consttime-ok public keys are public; this guards binding, not secrecy
		if subtle.ConstantTimeCompare(cached, report.Cert.DevicePub) == 1 {
			return cv.Verifier.VerifyCached(report, nonce, cached)
		}
		// Key changed under the same serial+measurement: fall through to
		// the full chain verify, which decides whether to trust it.
	}
	sess, userPub, err := cv.Verifier.Verify(report, nonce)
	if err != nil {
		return nil, nil, err
	}
	cv.Cache.Store(report.Cert.Serial, report.Measurement, report.Cert.DevicePub)
	return sess, userPub, nil
}

// FingerprintPub hashes a device public key for telemetry labels
// without exposing the key bytes in metric streams.
func FingerprintPub(pub []byte) [8]byte {
	sum := sha256.Sum256(pub)
	var fp [8]byte
	copy(fp[:], sum[:8])
	return fp
}
