package session

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// The session key schedule is HKDF-SHA256 (RFC 5869), implemented on
// the stdlib HMAC so the repo stays dependency-free. Labels are
// versioned domain separators; every derivation binds the session id
// so keys from different sessions can never collide even under an
// identical master secret.
//
//	cold handshake ──► session key K
//	                      │ HKDF(salt₀, K, "resume-psk" ‖ sid)
//	                      ▼
//	                 resumption PSK  ──────────────► sealed into ticket
//	                      │ HKDF(cn ‖ sn, PSK, "resume-traffic" ‖ sid')
//	                      ▼
//	                 traffic key K'  (fresh per resume, nonce-salted)
//	                      │ HKDF(salt₀, K', "resume-psk" ‖ sid')
//	                      ▼
//	                 next PSK        (tickets rotate every resume)

// NonceSize is the length of the client/server rekey nonces that salt
// each warm traffic key.
const NonceSize = 16

// HKDF labels (versioned; changing a schedule means a new label).
const (
	labelSalt    = "hardtape-hkdf-salt-v1"
	labelPSK     = "hardtape-resume-psk-v1"
	labelTraffic = "hardtape-resume-traffic-v1"
)

// hkdfExtract is HKDF-Extract: PRK = HMAC(salt, ikm).
func hkdfExtract(salt, ikm []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand is HKDF-Expand for lengths up to one SHA-256 block, which
// covers every key this schedule derives.
func hkdfExpand(prk, info []byte, length int) []byte {
	if length > sha256.Size {
		panic("session: hkdfExpand length exceeds one block") // programming error
	}
	mac := hmac.New(sha256.New, prk)
	mac.Write(info)
	mac.Write([]byte{1})
	return mac.Sum(nil)[:length]
}

// label8 builds `label ‖ be64(id)` derivation info.
func label8(label string, id uint64) []byte {
	info := make([]byte, 0, len(label)+8)
	info = append(info, label...)
	var sid [8]byte
	binary.BigEndian.PutUint64(sid[:], id)
	return append(info, sid[:]...)
}

// ResumptionPSK derives the resumption pre-shared key from an
// established session key. Both endpoints compute it independently;
// the service additionally seals it into the ticket so it can stay
// stateless across reconnects.
func ResumptionPSK(sessionKey [32]byte, sessionID uint64) [32]byte {
	prk := hkdfExtract([]byte(labelSalt), sessionKey[:])
	out := hkdfExpand(prk, label8(labelPSK, sessionID), 32)
	Zero(prk)
	var key [32]byte
	copy(key[:], out)
	Zero(out)
	return key
}

// TrafficKey derives the warm session's AES-256 traffic key: the PSK
// salted with both rekey nonces and bound to the new session id. A
// replayed client nonce still yields a fresh key because the service
// contributes its own.
func TrafficKey(psk [32]byte, clientNonce, serverNonce [NonceSize]byte, sessionID uint64) [32]byte {
	salt := make([]byte, 0, 2*NonceSize)
	salt = append(salt, clientNonce[:]...)
	salt = append(salt, serverNonce[:]...)
	prk := hkdfExtract(salt, psk[:])
	out := hkdfExpand(prk, label8(labelTraffic, sessionID), 32)
	Zero(prk)
	var key [32]byte
	copy(key[:], out)
	Zero(out)
	return key
}

// Zero wipes secret bytes after use. Callers zero PSKs, traffic keys,
// and decrypted ticket bodies as soon as the derived state exists.
func Zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// ZeroKey wipes a fixed-size key in place.
func ZeroKey(k *[32]byte) {
	Zero(k[:])
}
