package session

import (
	"sync"
	"time"
)

// Clock abstracts wall time so ticket expiry, verdict-cache TTLs, and
// revocation windows are deterministic under test (the same injected-
// clock discipline internal/simclock applies to virtual device time).
// Implementations must be safe for concurrent use.
type Clock interface {
	Now() time.Time
}

// EpochLength is the granularity of ticket and verdict expiry. Epochs
// coarsen timestamps so a ticket does not leak a fine-grained issue
// time, and so expiry checks are a single integer compare.
const EpochLength = time.Minute

// EpochAt converts a wall time to its epoch number.
func EpochAt(t time.Time) uint64 {
	s := t.Unix()
	if s < 0 {
		return 0
	}
	return uint64(s) / uint64(EpochLength/time.Second)
}

// systemClock reads the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the production clock.
func SystemClock() Clock { return systemClock{} }

// FakeClock is a settable clock for deterministic expiry and
// revocation tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceEpochs moves the clock forward by n expiry epochs.
func (c *FakeClock) AdvanceEpochs(n uint64) {
	c.Advance(time.Duration(n) * EpochLength)
}
