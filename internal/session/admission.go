package session

import "sync/atomic"

// Admission is a counting semaphore for cold handshakes. The fleet
// gateway bounds how many expensive attest+DHKE rounds run at once so
// a stampede of cold dials cannot starve the device of execution
// cycles — while warm resumes (microseconds of AES) bypass the gate
// entirely, which is the "session-aware admission" the ROADMAP asks
// for: a resume never queues behind someone else's cold handshake.
//
// A nil *Admission admits everything immediately, so callers thread it
// unconditionally — the same zero-cost-when-off discipline as the
// telemetry instruments.
type Admission struct {
	sem   chan struct{}
	waits atomic.Uint64
}

// NewAdmission builds a gate admitting at most limit concurrent cold
// handshakes. limit <= 0 returns nil: unlimited, zero overhead.
func NewAdmission(limit int) *Admission {
	if limit <= 0 {
		return nil
	}
	return &Admission{sem: make(chan struct{}, limit)}
}

// Acquire blocks until a cold-handshake slot frees. It reports whether
// the caller had to wait (telemetry distinguishes queued admissions).
func (a *Admission) Acquire() (waited bool) {
	if a == nil {
		return false
	}
	select {
	case a.sem <- struct{}{}:
		return false
	default:
	}
	a.waits.Add(1)
	a.sem <- struct{}{}
	return true
}

// Release frees a slot taken by Acquire.
func (a *Admission) Release() {
	if a == nil {
		return
	}
	<-a.sem
}

// InFlight reports the cold handshakes currently holding slots.
func (a *Admission) InFlight() int {
	if a == nil {
		return 0
	}
	return len(a.sem)
}

// Waits reports how many acquisitions had to queue.
func (a *Admission) Waits() uint64 {
	if a == nil {
		return 0
	}
	return a.waits.Load()
}

// Limit reports the configured slot count (0 for unlimited).
func (a *Admission) Limit() int {
	if a == nil {
		return 0
	}
	return cap(a.sem)
}
