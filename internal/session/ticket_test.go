package session

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

func fakeClockAt(t *testing.T) *FakeClock {
	t.Helper()
	return NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
}

func testState(t *testing.T) *State {
	t.Helper()
	st := &State{SessionID: 42, Serial: "HT-7"}
	if _, err := rand.Read(st.PSK[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := rand.Read(st.Measurement[:]); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTicketRoundTrip(t *testing.T) {
	clk := fakeClockAt(t)
	ti, err := NewTicketIssuer(clk, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := testState(t)
	wire, err := ti.Issue(st)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpiryEpoch != ti.Epoch()+10 {
		t.Fatalf("expiry epoch %d, want %d", st.ExpiryEpoch, ti.Epoch()+10)
	}
	// The sealed ticket must not leak the PSK in the clear.
	if bytes.Contains(wire, st.PSK[:8]) {
		t.Fatal("ticket wire contains plaintext PSK bytes")
	}
	got, err := ti.Redeem(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != st.SessionID || got.Serial != st.Serial ||
		got.PSK != st.PSK || got.Measurement != st.Measurement ||
		got.ExpiryEpoch != st.ExpiryEpoch {
		t.Fatalf("redeemed state mismatch: %+v vs %+v", got, st)
	}
}

func TestTicketReplayFailsClosed(t *testing.T) {
	ti, err := NewTicketIssuer(fakeClockAt(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ti.Issue(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Redeem(wire); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Redeem(wire); !errors.Is(err, ErrTicketReplayed) {
		t.Fatalf("second redeem: got %v, want ErrTicketReplayed", err)
	}
}

func TestTicketTamperFailsClosed(t *testing.T) {
	ti, err := NewTicketIssuer(fakeClockAt(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ti.Issue(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func([]byte) []byte{
		func(w []byte) []byte { w[len(w)/2] ^= 0x40; return w }, // bit flip in body
		func(w []byte) []byte { w[0] ^= 0xFF; return w },        // wrong key id
		func(w []byte) []byte { return w[:len(w)-1] },           // truncated
		func(w []byte) []byte { return nil },                    // empty
	} {
		cp := mut(append([]byte(nil), wire...))
		if _, err := ti.Redeem(cp); !errors.Is(err, ErrTicketTampered) {
			t.Fatalf("tampered redeem: got %v, want ErrTicketTampered", err)
		}
	}
	// A ticket sealed by a different issuer (restarted service / rotated
	// STEK) is indistinguishable from tampering.
	other, err := NewTicketIssuer(fakeClockAt(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Redeem(wire); !errors.Is(err, ErrTicketTampered) {
		t.Fatalf("foreign redeem: got %v, want ErrTicketTampered", err)
	}
}

func TestTicketExpiryIsDeterministic(t *testing.T) {
	clk := fakeClockAt(t)
	ti, err := NewTicketIssuer(clk, 5)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ti.Issue(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	// Just inside the window: still valid.
	clk.AdvanceEpochs(5)
	if _, err := ti.Redeem(wire); err != nil {
		t.Fatalf("redeem at expiry epoch: %v", err)
	}
	wire2, err := ti.Issue(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	// One epoch past: expired, deterministically.
	clk.AdvanceEpochs(6)
	if _, err := ti.Redeem(wire2); !errors.Is(err, ErrTicketExpired) {
		t.Fatalf("expired redeem: got %v, want ErrTicketExpired", err)
	}
}

func TestTicketReplaySetPrunes(t *testing.T) {
	clk := fakeClockAt(t)
	ti, err := NewTicketIssuer(clk, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		wire, err := ti.Issue(testState(t))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ti.Redeem(wire); err != nil {
			t.Fatal(err)
		}
	}
	if n := ti.RedeemedCount(); n != 8 {
		t.Fatalf("replay set size %d, want 8", n)
	}
	// Past every expiry epoch the set prunes on the next redeem.
	clk.AdvanceEpochs(3)
	wire, err := ti.Issue(testState(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Redeem(wire); err != nil {
		t.Fatal(err)
	}
	if n := ti.RedeemedCount(); n != 1 {
		t.Fatalf("replay set size after prune %d, want 1", n)
	}
}

func TestKeyScheduleDerivations(t *testing.T) {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	p1 := ResumptionPSK(key, 1)
	p1again := ResumptionPSK(key, 1)
	p2 := ResumptionPSK(key, 2)
	if p1 != p1again {
		t.Fatal("ResumptionPSK not deterministic")
	}
	if p1 == p2 {
		t.Fatal("ResumptionPSK must bind the session id")
	}
	var cn, sn [NonceSize]byte
	cn[0], sn[0] = 1, 2
	k1 := TrafficKey(p1, cn, sn, 3)
	if k1 == TrafficKey(p1, sn, cn, 3) {
		t.Fatal("TrafficKey must be ordered in the nonces")
	}
	var cn2 [NonceSize]byte
	cn2[0] = 9
	if k1 == TrafficKey(p1, cn2, sn, 3) {
		t.Fatal("TrafficKey must vary with the client nonce")
	}
	if k1 == TrafficKey(p1, cn, sn, 4) {
		t.Fatal("TrafficKey must bind the session id")
	}
	if k1 == [32]byte(p1) {
		t.Fatal("TrafficKey must differ from the PSK")
	}
}

func TestZeroWipes(t *testing.T) {
	b := []byte{1, 2, 3}
	Zero(b)
	for _, v := range b {
		if v != 0 {
			t.Fatal("Zero left bytes")
		}
	}
	var k [32]byte
	k[5] = 7
	ZeroKey(&k)
	if k != ([32]byte{}) {
		t.Fatal("ZeroKey left bytes")
	}
}

func TestEpochAt(t *testing.T) {
	if EpochAt(time.Unix(-5, 0)) != 0 {
		t.Fatal("negative times must clamp to epoch 0")
	}
	base := time.Unix(0, 0)
	if EpochAt(base.Add(EpochLength)) != EpochAt(base)+1 {
		t.Fatal("one EpochLength must advance exactly one epoch")
	}
}
