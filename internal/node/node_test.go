package node

import (
	"errors"
	"testing"

	"hardtape/internal/oram"
	"hardtape/internal/pager"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

func buildNode(t testing.TB) (*Node, *workload.World) {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.EOAs = 12
	cfg.Tokens = 2
	cfg.DEXes = 1
	w, err := workload.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	return n, w
}

func TestGenesis(t *testing.T) {
	n, _ := buildNode(t)
	head := n.Head()
	if head.Header.Number != 0 {
		t.Fatalf("genesis number = %d", head.Header.Number)
	}
	if head.Header.StateRoot.IsZero() {
		t.Fatal("genesis state root is zero")
	}
	if _, err := n.BlockByNumber(5); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("unknown block: %v", err)
	}
}

func TestImportBlocks(t *testing.T) {
	n, w := buildNode(t)
	root0 := n.Head().Header.StateRoot
	for i := uint64(1); i <= 3; i++ {
		blk, err := w.GenerateBlock(i, n.Head().Header.Hash(), 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.ImportBlock(blk); err != nil {
			t.Fatalf("import block %d: %v", i, err)
		}
	}
	if n.Head().Header.Number != 3 {
		t.Fatalf("head = %d", n.Head().Header.Number)
	}
	if n.Head().Header.StateRoot == root0 {
		t.Fatal("state root unchanged after 60 transactions")
	}
	// Parent linkage.
	b2, err := n.BlockByNumber(2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := n.BlockByNumber(1)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Header.ParentHash != b1.Header.Hash() {
		t.Fatal("parent hash linkage broken")
	}
	if n.BlockHash(1) != b1.Header.Hash() {
		t.Fatal("BlockHash lookup")
	}
	if !n.BlockHash(99).IsZero() {
		t.Fatal("BlockHash for unknown height should be zero")
	}
}

func TestImportRejectsBadBlocks(t *testing.T) {
	n, w := buildNode(t)
	// Wrong number.
	blk, err := w.GenerateBlock(5, types.Hash{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ImportBlock(blk); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("wrong number: %v", err)
	}
	// Tampered tx root.
	blk2, err := w.GenerateBlock(1, types.Hash{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	blk2.Header.TxRoot = types.Hash{1}
	if err := n.ImportBlock(blk2); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad tx root: %v", err)
	}
}

func TestImportAppliesBalances(t *testing.T) {
	n, w := buildNode(t)
	from, to := w.EOAs[0], w.EOAs[1]
	tx, err := w.SignedTx(from, &to, 12345, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	blk := &types.Block{Header: n.Head().Header}
	blk.Header.Number = 1
	blk.Header.GasLimit = 30_000_000
	blk.Txs = []*types.Transaction{tx}
	blk.Header.TxRoot = blk.ComputeTxRoot()
	if err := n.ImportBlock(blk); err != nil {
		t.Fatal(err)
	}
	acct, ok := n.State().Account(to)
	if !ok {
		t.Fatal("recipient missing")
	}
	want := uint64(1<<60) + 12345
	if acct.Balance.Uint64() != want {
		t.Fatalf("balance = %d, want %d", acct.Balance.Uint64(), want)
	}
	sender, ok := n.State().Account(from)
	if !ok || sender.Nonce != 1 {
		t.Fatal("sender nonce not committed")
	}
}

func TestAccountProofRoundTrip(t *testing.T) {
	n, w := buildNode(t)
	root := n.Head().Header.StateRoot
	addr := w.EOAs[0]
	p, err := n.ProveAccount(addr)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := VerifyAccountProof(root, p)
	if err != nil {
		t.Fatal(err)
	}
	if acct == nil || acct.Balance.Uint64() != 1<<60 {
		t.Fatalf("verified account: %+v", acct)
	}
	// Wrong root fails.
	if _, err := VerifyAccountProof(types.Hash{1}, p); err == nil {
		t.Fatal("proof verified against wrong root")
	}
}

func TestStorageProofRoundTrip(t *testing.T) {
	n, w := buildNode(t)
	token := w.Tokens[0]
	holder := w.EOAs[0]
	key := types.BytesToHash(holder.Word().Bytes())
	sp, err := n.ProveStorage(token, key)
	if err != nil {
		t.Fatal(err)
	}
	val, err := VerifyStorageProof(sp.Root, sp)
	if err != nil {
		t.Fatal(err)
	}
	if val.Word().Uint64() != 1<<40 {
		t.Fatalf("proven value = %d", val.Word().Uint64())
	}
	// Tampered value doesn't matter (value comes from the proof), but a
	// tampered proof must fail.
	sp.Proof.Nodes[0][0] ^= 0x01
	if _, err := VerifyStorageProof(sp.Root, sp); err == nil {
		t.Fatal("tampered storage proof accepted")
	}
}

func TestSyncAllIntoPlainStore(t *testing.T) {
	n, _ := buildNode(t)
	store := pager.NewStore(pager.NewPlainBackend())
	syncer := NewSyncer(n, store)
	if err := syncer.SyncAll(); err != nil {
		t.Fatal(err)
	}
	accounts, records, codePages := syncer.Stats()
	if accounts == 0 || records == 0 || codePages == 0 {
		t.Fatalf("sync stats: %d %d %d", accounts, records, codePages)
	}
}

func TestSyncIntoORAMAndReadBack(t *testing.T) {
	n, w := buildNode(t)
	srv, err := oram.NewMemServer(16384)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := oram.NewClient(srv, make([]byte, oram.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	store := pager.NewStore(pager.NewORAMBackend(cli))
	syncer := NewSyncer(n, store)
	if err := syncer.SyncAll(); err != nil {
		t.Fatal(err)
	}

	// Read back through the oblivious path: meta, storage, code.
	addr := w.EOAs[0]
	meta, err := store.ReadAccountMeta(addr)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Balance.Uint64() != 1<<60 {
		t.Fatalf("meta balance = %d", meta.Balance.Uint64())
	}
	token := w.Tokens[0]
	tokenMeta, err := store.ReadAccountMeta(token)
	if err != nil {
		t.Fatal(err)
	}
	if tokenMeta.CodeLen == 0 {
		t.Fatal("token code length missing")
	}
	code, err := store.ReadCode(tokenMeta.CodeHash, tokenMeta.CodeLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != int(tokenMeta.CodeLen) {
		t.Fatalf("code length %d != %d", len(code), tokenMeta.CodeLen)
	}
	key := types.BytesToHash(addr.Word().Bytes())
	val, found, err := store.ReadStorageRecord(token, key)
	if err != nil || !found {
		t.Fatalf("storage read: %v found=%v", err, found)
	}
	if val.Word().Uint64() != 1<<40 {
		t.Fatalf("storage value = %d", val.Word().Uint64())
	}
}

func TestSyncDetectsTamperedCode(t *testing.T) {
	n, w := buildNode(t)
	// Corrupt the node's code store by registering mismatched code
	// under an account: simulate by syncing against a wrong state root
	// (the adversary serves stale/fake data).
	store := pager.NewStore(pager.NewPlainBackend())
	syncer := NewSyncer(n, store)
	badRoot := types.Hash{0xde, 0xad}
	err := syncer.SyncAccount(badRoot, w.EOAs[0])
	if err == nil {
		t.Fatal("sync accepted data against a wrong root")
	}
}

func TestSyncAfterNewBlock(t *testing.T) {
	n, w := buildNode(t)
	store := pager.NewStore(pager.NewPlainBackend())
	syncer := NewSyncer(n, store)
	if err := syncer.SyncAll(); err != nil {
		t.Fatal(err)
	}
	// Import a block that changes a balance, re-sync the sender, and
	// check the page store sees the new value.
	from, to := w.EOAs[0], w.EOAs[1]
	tx, err := w.SignedTx(from, &to, 999, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	blk := &types.Block{Header: n.Head().Header}
	blk.Header.Number = 1
	blk.Header.GasLimit = 30_000_000
	blk.Txs = []*types.Transaction{tx}
	blk.Header.TxRoot = blk.ComputeTxRoot()
	if err := n.ImportBlock(blk); err != nil {
		t.Fatal(err)
	}
	root := n.Head().Header.StateRoot
	if err := syncer.SyncAccount(root, to); err != nil {
		t.Fatal(err)
	}
	meta, err := store.ReadAccountMeta(to)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Balance.Uint64() != (1<<60)+999 {
		t.Fatalf("resynced balance = %d", meta.Balance.Uint64())
	}
}

func TestCommitSelfdestructedAccount(t *testing.T) {
	// A block whose transaction selfdestructs a contract must remove
	// the account from the canonical state.
	n, w := buildNode(t)
	// Deploy a suicide contract directly into genesis-like state via a
	// create transaction in block 1.
	from := w.EOAs[0]
	// initcode returning runtime [PUSH20 beneficiary, SELFDESTRUCT]:
	beneficiary := w.EOAs[1]
	runtime := append([]byte{0x73}, beneficiary[:]...) // PUSH20
	runtime = append(runtime, 0xff)                    // SELFDESTRUCT
	initCode := []byte{
		0x60, byte(len(runtime)), // PUSH1 len
		0x60, 0x0a, // PUSH1 offset of runtime (10 = header length)
		0x5f,                     // PUSH0
		0x39,                     // CODECOPY
		0x60, byte(len(runtime)), // PUSH1 len
		0x5f, // PUSH0
		0xf3, // RETURN
	}
	initCode = append(initCode, runtime...)

	tx1, err := w.SignedTx(from, nil, 0, initCode, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	blk1 := &types.Block{Header: n.Head().Header}
	blk1.Header.Number = 1
	blk1.Header.GasLimit = 30_000_000
	blk1.Txs = []*types.Transaction{tx1}
	blk1.Header.TxRoot = blk1.ComputeTxRoot()
	if err := n.ImportBlock(blk1); err != nil {
		t.Fatal(err)
	}
	created := types.CreateAddress(from, 0)
	if _, ok := n.State().Account(created); !ok {
		t.Fatal("contract not committed")
	}

	// Block 2: call it → selfdestruct.
	tx2, err := w.SignedTx(from, &created, 0, nil, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	blk2 := &types.Block{Header: n.Head().Header}
	blk2.Header.Number = 2
	blk2.Header.GasLimit = 30_000_000
	blk2.Txs = []*types.Transaction{tx2}
	blk2.Header.TxRoot = blk2.ComputeTxRoot()
	if err := n.ImportBlock(blk2); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.State().Account(created); ok {
		t.Fatal("selfdestructed account still in canonical state")
	}
}

func TestProveStorageUnknownAccount(t *testing.T) {
	n, _ := buildNode(t)
	if _, err := n.ProveStorage(types.MustAddress("0x00000000000000000000000000000000000000ee"),
		types.Hash{}); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("unknown account: %v", err)
	}
}
