package node

import (
	"fmt"

	"hardtape/internal/keccak"
	"hardtape/internal/pager"
	"hardtape/internal/types"
)

// Syncer implements workflow step 11: after new blocks execute, the
// world state is pulled from the (untrusted) Node with Merkle proofs,
// verified on the trusted side, and written — re-paged — into the
// pre-executor's page store (the ORAM in the -full configuration).
// Sync traffic needs no obliviousness (blocks are public), only
// integrity.
type Syncer struct {
	node  *Node
	store *pager.Store
	// stats
	accounts, records, codePages uint64
}

// NewSyncer wires a node to a page store.
func NewSyncer(n *Node, store *pager.Store) *Syncer {
	return &Syncer{node: n, store: store}
}

// SyncAccount fetches, verifies, and re-pages one account: its meta
// page, all its storage records, and its code pages.
func (s *Syncer) SyncAccount(stateRoot types.Hash, addr types.Address) error {
	proof, err := s.node.ProveAccount(addr)
	if err != nil {
		return err
	}
	acct, err := VerifyAccountProof(stateRoot, proof)
	if err != nil {
		return fmt.Errorf("node: sync %s: %w", addr, err)
	}
	if acct == nil {
		return nil // absent account, nothing to page
	}

	// Code, authenticated by its hash.
	var codeLen uint32
	if acct.CodeHash != types.EmptyCodeHash && !acct.CodeHash.IsZero() {
		code := s.node.Code(acct.CodeHash)
		if types.Hash(keccak.Sum256(code)) != acct.CodeHash {
			return fmt.Errorf("node: sync %s: code hash mismatch", addr)
		}
		if err := s.store.WriteCode(acct.CodeHash, code); err != nil {
			return err
		}
		codeLen = uint32(len(code))
		s.codePages += uint64(pager.CodePages(codeLen))
	}

	meta := &pager.AccountMeta{
		Balance:  acct.Balance.Clone(),
		Nonce:    acct.Nonce,
		CodeLen:  codeLen,
		CodeHash: acct.CodeHash,
	}
	if err := s.store.WriteAccountMeta(addr, meta); err != nil {
		return err
	}
	s.accounts++

	// Storage records, each verified against the account's storage
	// root before paging. The verified set is written through the
	// pager's batched path: group pages are fetched and rewritten in
	// bulk, so an account costs ~2 ORAM round trips instead of 2 per
	// record.
	keys := s.node.State().StorageKeys(addr)
	recs := make([]pager.StorageRecord, 0, len(keys))
	for _, slot := range keys {
		sp, err := s.node.ProveStorage(addr, slot)
		if err != nil {
			return err
		}
		if sp.Root != acct.StorageRoot {
			return fmt.Errorf("node: sync %s: storage root mismatch", addr)
		}
		val, err := VerifyStorageProof(acct.StorageRoot, sp)
		if err != nil {
			return fmt.Errorf("node: sync %s slot %s: %w", addr, slot, err)
		}
		recs = append(recs, pager.StorageRecord{Key: slot, Value: val})
	}
	if err := s.store.WriteStorageRecords(addr, recs); err != nil {
		return err
	}
	s.records += uint64(len(recs))
	return nil
}

// SyncAll re-pages the node's entire world state (the initial "full
// sync" of the paper's 1.1 TB state, at simulation scale).
func (s *Syncer) SyncAll() error {
	root := s.node.Head().Header.StateRoot
	for _, addr := range s.node.State().Addresses() {
		if err := s.SyncAccount(root, addr); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports (accounts, storage records, code pages) synced.
func (s *Syncer) Stats() (uint64, uint64, uint64) {
	return s.accounts, s.records, s.codePages
}
