// Package node simulates the Ethereum full node of the paper's use
// case: it holds the canonical chain and world state, executes new
// blocks, and serves world-state data with Merkle proofs so that
// HarDTAPE can synchronize its ORAM with authenticated contents
// (workflow step 11, attack A6).
package node

import (
	"errors"
	"fmt"
	"sync"

	"hardtape/internal/evm"
	"hardtape/internal/mpt"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Errors.
var (
	ErrUnknownBlock = errors.New("node: unknown block")
	ErrBadBlock     = errors.New("node: block validation failed")
	ErrNoAccount    = errors.New("node: account not found")
)

// Node is a simulated full node. It is safe for concurrent reads; block
// import is serialized internally.
type Node struct {
	mu     sync.RWMutex
	state  *state.WorldState
	blocks []*types.Block
	byHash map[types.Hash]*types.Block
	// roots[i] is the state root after executing block i.
	roots []types.Hash
}

// New creates a node over a genesis world state (block 0 is implicit).
func New(genesis *state.WorldState) (*Node, error) {
	root, err := genesis.Root()
	if err != nil {
		return nil, fmt.Errorf("node: genesis root: %w", err)
	}
	genesisBlock := &types.Block{
		Header: types.BlockHeader{
			Number:    0,
			StateRoot: root,
			BaseFee:   uint256.NewInt(1),
		},
	}
	n := &Node{
		state:  genesis,
		blocks: []*types.Block{genesisBlock},
		byHash: map[types.Hash]*types.Block{genesisBlock.Header.Hash(): genesisBlock},
		roots:  []types.Hash{root},
	}
	return n, nil
}

// State exposes the node's world state (the pre-executor's backing
// Reader for locally-prefetched configurations).
func (n *Node) State() *state.WorldState { return n.state }

// Head returns the latest block.
func (n *Node) Head() *types.Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[len(n.blocks)-1]
}

// BlockByNumber returns a block by height.
func (n *Node) BlockByNumber(num uint64) (*types.Block, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if num >= uint64(len(n.blocks)) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, num)
	}
	return n.blocks[num], nil
}

// BlockHash returns the hash of a block by height (for BLOCKHASH).
func (n *Node) BlockHash(num uint64) types.Hash {
	blk, err := n.BlockByNumber(num)
	if err != nil {
		return types.Hash{}
	}
	return blk.Header.Hash()
}

// ImportBlock executes a block against the canonical state and appends
// it to the chain. It verifies the transaction root and parent linkage,
// fills in the resulting state root, and rejects blocks whose
// transactions fail validation.
//
//hardtape:locksafe-ok block application mutates local state only; ApplyTransaction here does no I/O and n.mu must cover the whole commit to stay atomic
func (n *Node) ImportBlock(blk *types.Block) error {
	n.mu.Lock()
	defer n.mu.Unlock()

	head := n.blocks[len(n.blocks)-1]
	if blk.Header.Number != head.Header.Number+1 {
		return fmt.Errorf("%w: number %d after %d", ErrBadBlock, blk.Header.Number, head.Header.Number)
	}
	if blk.Header.TxRoot != blk.ComputeTxRoot() {
		return fmt.Errorf("%w: tx root mismatch", ErrBadBlock)
	}

	// Execute on an overlay, then commit to the canonical state.
	overlay := state.NewOverlay(n.state)
	e := evm.New(evm.BlockContext{
		Coinbase:   blk.Header.Coinbase,
		Number:     blk.Header.Number,
		Timestamp:  blk.Header.Timestamp,
		GasLimit:   blk.Header.GasLimit,
		BaseFee:    baseFeeOf(blk),
		ChainID:    uint256.NewInt(1),
		PrevRandao: blk.Header.PrevRandao,
		BlockHash:  n.blockHashLocked,
	}, overlay)
	for i, tx := range blk.Txs {
		if _, err := e.ApplyTransaction(tx); err != nil {
			return fmt.Errorf("%w: tx %d: %v", ErrBadBlock, i, err)
		}
	}
	if err := commitOverlay(n.state, overlay, blk.Txs); err != nil {
		return fmt.Errorf("node: commit: %w", err)
	}
	root, err := n.state.Root()
	if err != nil {
		return fmt.Errorf("node: state root: %w", err)
	}
	blk.Header.ParentHash = head.Header.Hash()
	blk.Header.StateRoot = root

	n.blocks = append(n.blocks, blk)
	n.byHash[blk.Header.Hash()] = blk
	n.roots = append(n.roots, root)
	return nil
}

// blockHashLocked resolves BLOCKHASH during import (mu already held).
func (n *Node) blockHashLocked(num uint64) types.Hash {
	if num >= uint64(len(n.blocks)) {
		return types.Hash{}
	}
	return n.blocks[num].Header.Hash()
}

func baseFeeOf(blk *types.Block) *uint256.Int {
	if blk.Header.BaseFee == nil {
		return uint256.NewInt(1)
	}
	return blk.Header.BaseFee.Clone()
}

// commitOverlay writes an executed overlay back into the canonical
// world state. Touched accounts are discovered through the
// transactions and the overlay's dirty sets.
func commitOverlay(ws *state.WorldState, o *state.Overlay, txs []*types.Transaction) error {
	touched := make(map[types.Address]struct{})
	for _, tx := range txs {
		sender, err := tx.Sender()
		if err != nil {
			return err
		}
		touched[sender] = struct{}{}
		if tx.To != nil {
			touched[*tx.To] = struct{}{}
		}
	}
	for _, w := range o.StorageWrites() {
		touched[w.Address] = struct{}{}
	}
	for _, addr := range o.TouchedAccounts() {
		touched[addr] = struct{}{}
	}
	for addr := range touched {
		if !o.Exists(addr) {
			ws.DeleteAccount(addr)
			continue
		}
		acct := types.NewAccount()
		acct.Nonce = o.GetNonce(addr)
		acct.Balance = o.GetBalance(addr)
		if code := o.GetCode(addr); len(code) > 0 {
			acct.CodeHash = ws.SetCode(code)
		} else {
			acct.CodeHash = o.GetCodeHash(addr)
			if acct.CodeHash.IsZero() {
				acct.CodeHash = types.EmptyCodeHash
			}
		}
		if err := ws.SetAccount(addr, acct); err != nil {
			return err
		}
	}
	for _, w := range o.StorageWrites() {
		if err := ws.SetStorage(w.Address, w.Slot, w.Value); err != nil {
			return err
		}
	}
	return nil
}

// AccountProof is an authenticated account record.
type AccountProof struct {
	Address types.Address
	Account *types.Account // nil if absent
	Proof   *mpt.Proof
	Root    types.Hash
}

// ProveAccount produces the Merkle-proof response a pre-executor
// verifies during sync.
func (n *Node) ProveAccount(addr types.Address) (*AccountProof, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	proof, err := n.state.ProveAccount(addr)
	if err != nil {
		return nil, fmt.Errorf("node: prove account: %w", err)
	}
	out := &AccountProof{Address: addr, Proof: proof, Root: n.roots[len(n.roots)-1]}
	if acct, ok := n.state.Account(addr); ok {
		out.Account = acct
	}
	return out, nil
}

// StorageProof is an authenticated storage record.
type StorageProof struct {
	Address types.Address
	Key     types.Hash
	Value   types.Hash
	Proof   *mpt.Proof
	// Root is the account's storage root the proof verifies against.
	Root types.Hash
}

// ProveStorage produces an authenticated storage record.
func (n *Node) ProveStorage(addr types.Address, key types.Hash) (*StorageProof, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	acct, ok := n.state.Account(addr)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoAccount, addr)
	}
	proof, err := n.state.ProveStorage(addr, key)
	if err != nil {
		return nil, fmt.Errorf("node: prove storage: %w", err)
	}
	return &StorageProof{
		Address: addr,
		Key:     key,
		Value:   n.state.Storage(addr, key),
		Proof:   proof,
		Root:    acct.StorageRoot,
	}, nil
}

// Code returns contract code by hash (code is verified against the
// account's code hash by the syncer, so no separate proof is needed).
func (n *Node) Code(codeHash types.Hash) []byte {
	return n.state.Code(codeHash)
}

// VerifyAccountProof checks an account proof against a state root.
func VerifyAccountProof(root types.Hash, p *AccountProof) (*types.Account, error) {
	val, err := mpt.VerifySecureProof(root, p.Address[:], p.Proof)
	if err != nil {
		return nil, fmt.Errorf("node: account proof: %w", err)
	}
	if val == nil {
		if p.Account != nil {
			return nil, fmt.Errorf("%w: claimed account proven absent", mpt.ErrBadProof)
		}
		return nil, nil
	}
	acct, err := types.DecodeAccountRLP(val)
	if err != nil {
		return nil, fmt.Errorf("node: account proof decode: %w", err)
	}
	return acct, nil
}

// VerifyStorageProof checks a storage proof against a storage root.
func VerifyStorageProof(storageRoot types.Hash, p *StorageProof) (types.Hash, error) {
	val, err := mpt.VerifySecureProof(storageRoot, p.Key[:], p.Proof)
	if err != nil {
		return types.Hash{}, fmt.Errorf("node: storage proof: %w", err)
	}
	return types.BytesToHash(val), nil
}
