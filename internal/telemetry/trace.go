// Distributed tracing: request-scoped span trees that follow one
// bundle end to end — client submit → gateway admission → device
// dispatch → HEVM stages → parallel-lane conflict re-execution →
// per-shard ORAM fan-out — across process boundaries.
//
// The same two disciplines as the metrics layer apply:
//
//   - Disabled tracing costs one branch and zero allocations. A nil
//     *Tracer returns nil spans, and every *TraceSpan method no-ops on
//     a nil receiver, so call sites record unconditionally.
//
//   - Span names are compile-time constants (telemetrysafe) and
//     attribute values carry only what the untrusted SP already
//     observes — counts, stage names, shard indices — never keys,
//     calldata, addresses, or ORAM leaf positions (secretflow treats
//     StartSpan/AddAttr as sinks).
//
// Trace and span IDs are correlation handles, not secrets: they are
// minted from a splitmix64 stream seeded once per tracer from
// crypto/rand, which keeps the per-span cost to one atomic add and a
// few shifts without ever touching math/rand.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request tree (128-bit, hex on the
// wire-facing admin endpoints).
type TraceID [16]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID decodes a 32-hex-digit trace id.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, true
}

// SpanID identifies one span within a trace (64-bit).
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a live span: enough for a
// remote process to attach children to it. It is exactly what the
// 24-byte wire encoding in internal/channel carries.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// Attr is one typed span attribute. Either Str or Int is set,
// discriminated by IsInt.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// SpanRecord is one finished span, gob-encodable so remote processes
// can ship their segment of a trace back to the caller (see
// Recorder.TakeSpans / Adopt).
type SpanRecord struct {
	Trace    TraceID
	Span     SpanID
	Parent   SpanID // zero for the trace root
	Name     string
	Proc     string // process label (e.g. "gateway", "device-1")
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Err      string // non-empty when the span failed
}

// Tracer mints spans for one process. A nil tracer is the disabled
// state: StartSpan returns nil and the caller's span calls no-op. Get
// one from Registry.EnableTracing so tracing rides the same opt-in
// plumbing as metrics.
type Tracer struct {
	rec  *Recorder
	proc string
	ids  idStream
}

// newTracer builds a tracer whose spans land in rec.
func newTracer(rec *Recorder, proc string) *Tracer {
	t := &Tracer{rec: rec, proc: proc}
	t.ids.seedFromOS()
	return t
}

// Recorder returns the flight recorder the tracer records into (nil
// when the tracer is nil).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Proc returns the tracer's process label ("" when nil).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// StartSpan opens a named span under parent. An invalid parent makes
// the span a trace root and mints a fresh TraceID. The name MUST be a
// compile-time constant (telemetrysafe enforces this) and attributes
// added later must not carry secret material (secretflow enforces
// that). A nil tracer returns nil.
func (t *Tracer) StartSpan(name string, parent SpanContext) *TraceSpan {
	if t == nil {
		return nil
	}
	s := &TraceSpan{t: t, name: name}
	s.ctx.Span = t.ids.nextSpanID()
	if parent.Valid() {
		s.ctx.Trace = parent.Trace
		s.parent = parent.Span
	} else {
		s.ctx.Trace = t.ids.nextTraceID()
		s.root = true
	}
	s.start = time.Now()
	t.rec.spanStarted(s.ctx.Trace, s.root)
	return s
}

// TraceSpan is one live span. All methods are nil-receiver safe; the
// zero cost of disabled tracing rests on that.
type TraceSpan struct {
	t      *Tracer
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
	err    string
	root   bool
	ended  bool
}

// Context returns the span's propagatable identity (zero when nil).
func (s *TraceSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// TraceID returns the span's trace id (zero when nil) — the handle
// histogram exemplars store.
func (s *TraceSpan) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.ctx.Trace
}

// AddAttr attaches a string attribute. Values are a secretflow sink:
// secret material must never reach them.
func (s *TraceSpan) AddAttr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: val})
}

// AddInt attaches an integer attribute.
func (s *TraceSpan) AddInt(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: val, IsInt: true})
}

// SetError marks the span failed; error traces are always kept by the
// flight recorder's tail sampler.
func (s *TraceSpan) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// End closes the span and hands its record to the flight recorder.
// Ending twice is a no-op.
func (s *TraceSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		Trace:    s.ctx.Trace,
		Span:     s.ctx.Span,
		Parent:   s.parent,
		Name:     s.name,
		Proc:     s.t.proc,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
		Err:      s.err,
	}
	s.t.rec.spanEnded(rec, s.root)
}

// idStream generates trace/span ids: splitmix64 over an atomic
// counter with a crypto/rand seed and gamma. Unique with high
// probability and -race clean (one atomic add per id); explicitly NOT
// key material.
type idStream struct {
	ctr   atomic.Uint64
	seed  uint64
	gamma uint64
}

func (g *idStream) seedFromOS() {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not fatal for correlation ids; fall
		// back to the clock rather than refusing to trace.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(b[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
	}
	g.seed = binary.LittleEndian.Uint64(b[:8])
	// An odd gamma keeps the additive walk full-period.
	g.gamma = binary.LittleEndian.Uint64(b[8:]) | 1
}

// next draws the counter's next splitmix64 output: bijective mixing,
// so distinct counter values give distinct ids.
func (g *idStream) next() uint64 {
	z := g.seed + g.ctr.Add(1)*g.gamma
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *idStream) nextSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], g.next())
	}
	return id
}

func (g *idStream) nextTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], g.next())
		binary.BigEndian.PutUint64(id[8:], g.next())
	}
	return id
}

// ctxKey keys the propagated SpanContext in a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc so in-process callees
// (gateway → device → ORAM) can parent their spans without new
// plumbing through every signature.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext extracts the propagated span context (zero when
// absent). Callers guard with a tracer-nil check first so the
// disabled path never performs the context lookup.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
