package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hardtape_admin_test_total", "admin test").Add(42)
	a, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	if code, body := scrape(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := scrape(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "hardtape_admin_test_total 42") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := scrape(t, base+"/metrics.json"); code != 200 ||
		!strings.Contains(body, `"hardtape_admin_test_total"`) {
		t.Fatalf("/metrics.json: %d\n%s", code, body)
	}
	if code, body := scrape(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

// TestAdminServerGoroutineLeak mirrors core's ServeListener leak
// tests: many concurrent scrapes — some abandoned mid-request — then a
// Close, after which every connection goroutine must drain back to the
// pre-server baseline.
func TestAdminServerGoroutineLeak(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hardtape_leak_test_total", "leak test").Inc()

	baseline := runtime.NumGoroutine()

	a, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				// Well-behaved scrape.
				resp, err := http.Get("http://" + a.Addr() + "/metrics")
				if err != nil {
					t.Errorf("scrape %d: %v", i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return
			}
			// Abrupt teardown: open a raw connection, send half a
			// request (or nothing), slam the door.
			conn, err := net.Dial("tcp", a.Addr())
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			if i%4 == 1 {
				fmt.Fprintf(conn, "GET /metrics HTTP/1.1\r\nHost: x") // truncated
			}
			conn.Close()
		}(i)
	}
	wg.Wait()

	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Idempotent.
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// The listener must be released...
	if _, _, err := net.SplitHostPort(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + a.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}

	// ...and every goroutine drained (small slack for runtime pollers).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdminServerGracefulShutdown checks that a scrape in flight when
// Close is called completes instead of being reset.
func TestAdminServerGracefulShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hardtape_graceful_total", "graceful").Inc()
	a, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	// Hold a request open past the Close call: the handler sleeps
	// briefly, Close must wait it out (it is well inside ShutdownGrace).
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", a.Addr())
		if err != nil {
			result <- err
			return
		}
		defer conn.Close()
		fmt.Fprintf(conn, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
		close(started)
		buf, err := io.ReadAll(conn)
		if err != nil {
			result <- err
			return
		}
		if !strings.Contains(string(buf), "hardtape_graceful_total") {
			result <- fmt.Errorf("in-flight scrape truncated: %q", buf)
			return
		}
		result <- nil
	}()

	<-started
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("in-flight scrape: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight scrape never finished")
	}
}
