package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hardtape_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := reg.Gauge("hardtape_test_depth", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("SetMax = %d, want 11", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hardtape_x_total", "x")
	b := reg.Counter("hardtape_x_total", "x")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	// Distinct labels are distinct series under one family.
	l1 := reg.Counter("hardtape_y_total", "y", "backend", "dev-0")
	l2 := reg.Counter("hardtape_y_total", "y", "backend", "dev-1")
	if l1 == l2 {
		t.Fatal("distinct labels shared a series")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	reg.Gauge("hardtape_x_total", "x")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hardtape_test_seconds", "test hist", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.002) // lands in the (1e-3, 2.5e-3] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 0.19 || got > 0.21 {
		t.Fatalf("sum = %v", got)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 1e-3 || p50 > 2.5e-3 {
		t.Fatalf("p50 = %v, want inside (1e-3, 2.5e-3]", p50)
	}
	if d := h.QuantileDuration(0.99); d <= 0 {
		t.Fatalf("p99 duration = %v", d)
	}

	// Values beyond the last bound land in +Inf and clamp.
	h2 := reg.Histogram("hardtape_test2_seconds", "test hist 2", nil)
	h2.Observe(1e9)
	if got := h2.Quantile(0.5); got != DurationBuckets[len(DurationBuckets)-1] {
		t.Fatalf("+Inf quantile = %v", got)
	}
}

func TestHistogramConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hardtape_conc_seconds", "concurrent", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	want := float64(workers*per) * 0.001
	if got := h.Sum(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("sum = %v, want ~%v", got, want)
	}
}

// TestDisabledZeroAllocs is the PR's overhead discipline, stated as a
// test: with telemetry disabled (nil registry → nil instruments,
// inactive spans) the whole instrumentation surface performs zero
// allocations. The pipeline records through exactly these calls, so
// this pins the disabled hot-path cost to branches only.
func TestDisabledZeroAllocs(t *testing.T) {
	var nilReg *Registry
	c := nilReg.Counter("hardtape_off_total", "disabled")
	g := nilReg.Gauge("hardtape_off_depth", "disabled")
	h := nilReg.Histogram("hardtape_off_seconds", "disabled", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(3)
		g.SetMax(9)
		h.Observe(0.5)
		h.ObserveDuration(time.Millisecond)
		sp := nilReg.Span()
		sp.Mark(h)
		sp.Skip()
		sp.End(h)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %v per op, want 0", allocs)
	}
}

// TestEnabledRecordingZeroAllocs pins the enabled hot path too: a
// counter add and a histogram observe allocate nothing (registration
// is the only allocating step, done once at setup).
func TestEnabledRecordingZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hardtape_on_total", "enabled")
	h := reg.Histogram("hardtape_on_seconds", "enabled", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(0.002)
	})
	if allocs != 0 {
		t.Fatalf("enabled recording allocated %v per op, want 0", allocs)
	}
}

func TestSpanStages(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("hardtape_stage1_seconds", "stage 1", nil)
	h2 := reg.Histogram("hardtape_stage2_seconds", "stage 2", nil)
	sp := reg.Span()
	if !sp.Active() {
		t.Fatal("span inactive with live registry")
	}
	time.Sleep(time.Millisecond)
	sp.Mark(h1)
	sp.Mark(h2)
	if h1.Count() != 1 || h2.Count() != 1 {
		t.Fatalf("marks not recorded: %d %d", h1.Count(), h2.Count())
	}
	if h1.Sum() < 0.0005 {
		t.Fatalf("stage 1 did not capture the sleep: %v", h1.Sum())
	}
	if h2.Sum() > h1.Sum() {
		t.Fatalf("stage 2 (%v) should be shorter than stage 1 (%v)", h2.Sum(), h1.Sum())
	}

	var off Span
	off.Mark(h1) // must not record
	if h1.Count() != 1 {
		t.Fatal("inactive span recorded")
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hardtape_reqs_total", "requests", "outcome", "ok").Add(3)
	reg.Gauge("hardtape_depth", "queue depth").Set(2)
	h := reg.Histogram("hardtape_wait_seconds", "queue wait", nil)
	h.Observe(0.002)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP hardtape_reqs_total requests",
		"# TYPE hardtape_reqs_total counter",
		`hardtape_reqs_total{outcome="ok"} 3`,
		"# TYPE hardtape_depth gauge",
		"hardtape_depth 2",
		"# TYPE hardtape_wait_seconds histogram",
		`hardtape_wait_seconds_bucket{le="+Inf"} 1`,
		"hardtape_wait_seconds_count 1",
		"hardtape_wait_seconds_sum 0.002",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	// Cumulative buckets: the 0.0025 bucket already contains the
	// observation at 0.002.
	if !strings.Contains(out, `hardtape_wait_seconds_bucket{le="0.0025"} 1`) {
		t.Errorf("bucket counts not cumulative:\n%s", out)
	}

	// A nil registry renders empty without errors.
	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf.Len())
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hardtape_reqs_total", "requests", "outcome", "ok").Add(3)
	h := reg.Histogram("hardtape_wait_seconds", "queue wait", nil)
	h.Observe(0.002)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(snap.Metrics))
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	c := byName["hardtape_reqs_total"]
	if c.Type != "counter" || c.Value == nil || *c.Value != 3 || c.Labels["outcome"] != "ok" {
		t.Fatalf("counter snapshot wrong: %+v", c)
	}
	hs := byName["hardtape_wait_seconds"]
	if hs.Type != "histogram" || hs.Count == nil || *hs.Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if hs.Buckets[len(hs.Buckets)-1].UpperBound != "+Inf" {
		t.Fatalf("last bucket bound = %q", hs.Buckets[len(hs.Buckets)-1].UpperBound)
	}
	if hs.Quantiles["p50"] <= 0 {
		t.Fatalf("quantiles missing: %+v", hs.Quantiles)
	}
}
