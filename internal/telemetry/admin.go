package telemetry

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// NewAdminMux builds the admin endpoint's routes on a private mux
// (never the DefaultServeMux, so importing this package leaks nothing
// into other servers):
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (same shape as `benchtab -telemetry`)
//	/traces        flight-recorder index (when tracing is enabled)
//	/traces/{id}   one trace; ?format=chrome for chrome://tracing
//	/healthz       liveness probe
//	/debug/pprof/  net/http/pprof profiles
//
// The endpoint is operator-facing and opt-in; it serves only
// aggregates the untrusted SP already observes (see the package
// comment on the threat model) but should still bind loopback or a
// management network, not the user-facing address.
func NewAdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//hardtape:faulterr-ok a failed scrape write only ends that response; the server must keep serving
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		//hardtape:faulterr-ok a failed scrape write only ends that response; the server must keep serving
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		rec := reg.FlightRecorder()
		if rec == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		//hardtape:faulterr-ok a failed scrape write only ends that response; the server must keep serving
		_ = writeTraceIndex(w, rec)
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		rec := reg.FlightRecorder()
		if rec == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		id, ok := ParseTraceID(strings.TrimPrefix(r.URL.Path, "/traces/"))
		if !ok {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		t := rec.Lookup(id)
		if t == nil {
			http.Error(w, "trace not found (evicted or sampled out)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			//hardtape:faulterr-ok a failed scrape write only ends that response; the server must keep serving
			_ = WriteChromeTrace(w, t)
			return
		}
		//hardtape:faulterr-ok a failed scrape write only ends that response; the server must keep serving
		_ = WriteTraceJSON(w, t)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is the opt-in observability endpoint. It owns its
// listener and serve goroutine; Close shuts it down gracefully
// (in-flight scrapes finish) and waits for the goroutine to drain, so
// tests can assert no leaks the same way core's ServeListener tests
// do.
type AdminServer struct {
	srv      *http.Server
	listener net.Listener

	done chan struct{} // closed when the serve goroutine exits

	mu     sync.Mutex
	closed bool
}

// ShutdownGrace bounds how long Close waits for in-flight requests
// (long-running pprof profiles are cut off, not waited out).
const ShutdownGrace = 2 * time.Second

// StartAdmin listens on addr and serves the admin endpoint for reg in
// a background goroutine.
func StartAdmin(addr string, reg *Registry) (*AdminServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen: %w", err)
	}
	a := &AdminServer{
		srv: &http.Server{
			Handler:           NewAdminMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		},
		listener: l,
		done:     make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		//hardtape:faulterr-ok ErrServerClosed is the normal shutdown signal; Close surfaces real errors
		_ = a.srv.Serve(l)
	}()
	return a, nil
}

// Addr reports the bound address (use with ":0" listeners).
func (a *AdminServer) Addr() string { return a.listener.Addr().String() }

// Close gracefully shuts the server down: the listener closes
// immediately, in-flight requests get ShutdownGrace to finish, then
// remaining connections are forced closed. It waits for the serve
// goroutine to exit and is idempotent.
func (a *AdminServer) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return nil
	}
	a.closed = true
	a.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Laggard connections (an abandoned pprof stream) are cut off.
		err = a.srv.Close()
	}
	<-a.done
	return err
}
