package telemetry

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkTraceID builds a distinct id per call for recorder-level tests
// that bypass the tracer.
func mkTraceID(n uint64) TraceID {
	var id TraceID
	for i := 0; i < 8; i++ {
		id[i] = byte(n >> (8 * i))
	}
	id[15] = 1 // never zero
	return id
}

func TestTraceSpanTree(t *testing.T) {
	reg := NewRegistry()
	tr := reg.EnableTracing("test", 8)
	defer reg.FlightRecorder().Close()

	root := tr.StartSpan("test.root", SpanContext{})
	if !root.Context().Valid() {
		t.Fatal("root span context invalid")
	}
	child := tr.StartSpan("test.child", root.Context())
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	child.AddAttr("backend", "local-0")
	child.AddInt("txs", 16)
	child.SetError(errors.New("boom"))
	child.End()
	root.End()

	trace := reg.FlightRecorder().Lookup(root.TraceID())
	if trace == nil {
		t.Fatal("completed trace not in flight recorder")
	}
	if !trace.Err {
		t.Error("trace with a failed span not marked Err")
	}
	if trace.Root != "test.root" {
		t.Errorf("root name %q, want test.root", trace.Root)
	}
	if len(trace.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(trace.Spans))
	}
	var c *SpanRecord
	for i := range trace.Spans {
		if trace.Spans[i].Name == "test.child" {
			c = &trace.Spans[i]
		}
	}
	if c == nil {
		t.Fatal("child span missing from assembled trace")
	}
	if c.Parent != root.Context().Span {
		t.Errorf("child parent %s, want %s", c.Parent, root.Context().Span)
	}
	if c.Err != "boom" {
		t.Errorf("child err %q, want boom", c.Err)
	}
	if len(c.Attrs) != 2 {
		t.Errorf("child attrs %v, want backend + txs", c.Attrs)
	}
}

// TestTraceDisabledZeroAllocs pins the tracing-disabled hot path to
// the same bar as the metric instruments: a nil tracer (the default —
// EnableTracing was never called) must cost one nil check and zero
// allocations at every span site the pipeline runs.
func TestTraceDisabledZeroAllocs(t *testing.T) {
	var nilReg *Registry
	tr := nilReg.Tracer()
	if tr != nil {
		t.Fatal("nil registry handed out a live tracer")
	}
	if on := NewRegistry(); on.Tracer() != nil {
		t.Fatal("registry without EnableTracing handed out a live tracer")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("test.disabled", SpanContext{})
		sp.AddAttr("k", "v")
		sp.AddInt("n", 7)
		sp.SetError(nil)
		_ = sp.Context()
		_ = sp.TraceID()
		sp.End()
		nilReg.FlightRecorder().TakeSpans(TraceID{})
		nilReg.FlightRecorder().Adopt(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v per op, want 0", allocs)
	}
}

// BenchmarkTraceDisabledParity is the CI gate for the disabled path:
// it must report 0 B/op and 0 allocs/op.
func BenchmarkTraceDisabledParity(b *testing.B) {
	var nilReg *Registry
	tr := nilReg.Tracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("bench.disabled", SpanContext{})
		sp.AddInt("n", int64(i))
		sp.SetError(nil)
		sp.End()
	}
}

// TestTailSampling drives the sampler with synthetic, fixed-duration
// roots: warmup keeps everything, then only errors and roots at or
// above the keep quantile of the recent window survive.
func TestTailSampling(t *testing.T) {
	r := NewRecorder(512)
	defer r.Close()

	seq := uint64(0)
	push := func(d time.Duration, errStr string) TraceID {
		seq++
		id := mkTraceID(seq)
		r.spanStarted(id, true)
		r.spanEnded(SpanRecord{
			Trace: id, Span: SpanID{1}, Name: "t.root",
			Start: time.Now(), Duration: d, Err: errStr,
		}, true)
		return id
	}

	// Fill the warmup with uniform 10ms roots: all kept.
	for i := 0; i < recorderWarmup; i++ {
		if id := push(10*time.Millisecond, ""); r.Lookup(id) == nil {
			t.Fatalf("warmup trace %d not kept", i)
		}
	}
	// Post-warmup: a fast clean root is below the 10ms threshold.
	if id := push(time.Millisecond, ""); r.Lookup(id) != nil {
		t.Error("fast clean trace kept; want dropped by tail sampling")
	}
	// A slow root is at/above the threshold.
	if id := push(20*time.Millisecond, ""); r.Lookup(id) == nil {
		t.Error("slow trace dropped; want kept (tail)")
	}
	// A fast root with an error is always kept.
	if id := push(time.Millisecond, "deadline exceeded"); r.Lookup(id) == nil {
		t.Error("error trace dropped; want kept unconditionally")
	}
	st := r.Stats()
	if st.Dropped == 0 {
		t.Error("sampler reported zero drops")
	}
	if st.ErrKept == 0 {
		t.Error("sampler reported zero error keeps")
	}
}

// TestRecorderExpiry covers the janitor path directly: a pending
// segment whose trace never completes is expired; error-bearing
// partials are published, clean ones are dropped silently.
func TestRecorderExpiry(t *testing.T) {
	r := NewRecorder(8)
	defer r.Close()

	clean := mkTraceID(1001)
	r.Adopt([]SpanRecord{{Trace: clean, Span: SpanID{1}, Name: "t.partial", Start: time.Now()}})
	failed := mkTraceID(1002)
	r.Adopt([]SpanRecord{{Trace: failed, Span: SpanID{2}, Name: "t.partial", Start: time.Now(), Err: "conn reset"}})

	r.expireStale(time.Now().Add(time.Hour))

	if r.Lookup(clean) != nil {
		t.Error("clean expired partial was published")
	}
	if r.Lookup(failed) == nil {
		t.Error("error-bearing expired partial was not published")
	}
	if st := r.Stats(); st.Expired != 2 || st.Pending != 0 {
		t.Errorf("stats after expiry: %+v, want Expired 2 Pending 0", st)
	}
}

// TestRecorderCloseGoroutineLeak: every recorder starts a janitor;
// Close must stop it. Mirrors the admin server leak test.
func TestRecorderCloseGoroutineLeak(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 32; i++ {
		r := NewRecorder(4)
		r.spanStarted(mkTraceID(uint64(i+1)), true)
		r.Close()
		r.Close() // idempotent
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after recorder churn", before, runtime.NumGoroutine())
}

// TestTakeSpansAdopt is the cross-process shipping contract in one
// process: a "remote" recorder accumulates a trace segment rooted
// elsewhere, TakeSpans drains it, Adopt files it locally, and the
// local root completion assembles one contiguous tree.
func TestTakeSpansAdopt(t *testing.T) {
	localReg, remoteReg := NewRegistry(), NewRegistry()
	local := localReg.EnableTracing("gateway", 8)
	remote := remoteReg.EnableTracing("device", 8)
	defer localReg.FlightRecorder().Close()
	defer remoteReg.FlightRecorder().Close()

	root := local.StartSpan("test.root", SpanContext{})

	// Remote side serves under the propagated context.
	rsp := remote.StartSpan("test.remote", root.Context())
	rchild := remote.StartSpan("test.remote_child", rsp.Context())
	rchild.End()
	rsp.End()
	shipped := remoteReg.FlightRecorder().TakeSpans(root.TraceID())
	if len(shipped) != 2 {
		t.Fatalf("TakeSpans returned %d spans, want 2", len(shipped))
	}
	if again := remoteReg.FlightRecorder().TakeSpans(root.TraceID()); len(again) != 0 {
		t.Fatalf("second TakeSpans returned %d spans, want 0", len(again))
	}

	localReg.FlightRecorder().Adopt(shipped)
	root.End()

	trace := localReg.FlightRecorder().Lookup(root.TraceID())
	if trace == nil {
		t.Fatal("trace not assembled after adoption")
	}
	if len(trace.Spans) != 3 {
		t.Fatalf("assembled trace has %d spans, want 3", len(trace.Spans))
	}
	procs := map[string]bool{}
	for _, s := range trace.Spans {
		procs[s.Proc] = true
	}
	if !procs["gateway"] || !procs["device"] {
		t.Errorf("trace procs %v, want gateway and device segments", procs)
	}
}

// TestConcurrentTraceRecording hammers one tracer from many goroutines
// while readers walk the ring — the -race harness for the recorder's
// lock-free publication path.
func TestConcurrentTraceRecording(t *testing.T) {
	reg := NewRegistry()
	tr := reg.EnableTracing("race", 16)
	rec := reg.FlightRecorder()
	defer rec.Close()
	h := reg.Histogram("hardtape_trace_race_seconds", "race", nil)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartSpan("race.root", SpanContext{})
				child := tr.StartSpan("race.child", root.Context())
				child.AddInt("i", int64(i))
				child.End()
				h.ObserveTraced(float64(i)*1e-6, root.TraceID())
				if g%2 == 0 {
					root.SetError(errors.New("induced"))
				}
				root.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { // concurrent readers against the ring and stats
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, tce := range rec.Traces() {
				_ = tce.Root
			}
			_ = rec.Stats()
			_ = rec.LastExemplar()
		}
	}()
	wg.Wait()
	<-done
	if st := rec.Stats(); st.Kept == 0 {
		t.Error("no traces kept under concurrent recording")
	}
	if rec.LastExemplar().IsZero() {
		t.Error("no exemplar id after traced observations")
	}
}

// TestHistogramExemplar: a traced observation stamps its bucket's
// exemplar; an untraced one records plainly without clearing it.
func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hardtape_trace_ex_seconds", "exemplar", []float64{0.001, 1})
	id := mkTraceID(7)
	h.ObserveTraced(0.5, id)
	h.Observe(0.5)
	h.ObserveTraced(0.25, TraceID{}) // zero id: plain record
	ex := h.BucketExemplar(1)
	if ex == nil || ex.Trace != id || ex.Value != 0.5 {
		t.Fatalf("bucket exemplar %+v, want trace %s value 0.5", ex, id)
	}
	snap := reg.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name != "hardtape_trace_ex_seconds" {
			continue
		}
		for _, b := range m.Buckets {
			if b.Exemplar != nil && b.Exemplar.TraceID == id.String() {
				found = true
			}
		}
	}
	if !found {
		t.Error("exemplar trace id missing from registry snapshot (/metrics.json)")
	}
}

// TestAdminTraceEndpoints scrapes the flight recorder over the admin
// server: index, one trace as JSON, and the chrome trace-event form.
func TestAdminTraceEndpoints(t *testing.T) {
	reg := NewRegistry()
	tr := reg.EnableTracing("admin", 8)
	defer reg.FlightRecorder().Close()

	root := tr.StartSpan("admin.root", SpanContext{})
	child := tr.StartSpan("admin.child", root.Context())
	child.End()
	root.End()
	id := root.TraceID().String()

	a, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	if code, body := scrape(t, base+"/traces"); code != 200 || !strings.Contains(body, id) {
		t.Fatalf("/traces: %d\n%s", code, body)
	}
	code, body := scrape(t, base+"/traces/"+id)
	if code != 200 || !strings.Contains(body, `"admin.child"`) || !strings.Contains(body, `"proc"`) {
		t.Fatalf("/traces/%s: %d\n%s", id, code, body)
	}
	code, body = scrape(t, base+"/traces/"+id+"?format=chrome")
	if code != 200 || !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"ph"`) {
		t.Fatalf("chrome format: %d\n%s", code, body)
	}
	if code, _ := scrape(t, base+"/traces/"+fmt.Sprintf("%032x", 12345)); code != 404 {
		t.Fatalf("unknown trace id: %d, want 404", code)
	}
	if code, _ := scrape(t, base+"/traces/nonsense"); code != 400 {
		t.Fatalf("malformed trace id: %d, want 400", code)
	}
}
