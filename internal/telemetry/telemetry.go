// Package telemetry is the unified, near-zero-overhead metrics layer
// of the pre-execution pipeline: atomic counters, gauges, fixed-bucket
// histograms with lock-free hot-path recording, and lightweight
// request-scoped spans, exported in Prometheus text format and as a
// JSON snapshot (see admin.go for the HTTP endpoint).
//
// Two disciplines govern every API in this package:
//
//   - Disabled telemetry costs one branch and zero allocations. Every
//     instrument is nil-receiver safe: a nil *Counter, *Gauge, or
//     *Histogram no-ops, and a nil *Registry hands out nil
//     instruments, so call sites record unconditionally and the
//     disabled path never allocates, locks, or reads the clock
//     (Span.Mark on an inactive span returns before time.Now).
//
//   - Exported series aggregate only what the untrusted SP already
//     observes: counts, latencies, byte volumes. Per-user addresses,
//     keys, calldata, and ORAM leaf positions must never reach a
//     metric name or label — the telemetrysafe analyzer in
//     internal/analysis enforces that label values are compile-time
//     constants unless a //hardtape:telemetry-ok waiver explains why
//     a value is not user-controlled.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the instrument types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// desc is the identity of one series: family name plus label pairs.
type desc struct {
	name   string
	help   string
	kind   metricKind
	labels []string // k1, v1, k2, v2, ...
}

// key returns the series identity used for idempotent registration.
func (d *desc) key() string {
	if len(d.labels) == 0 {
		return d.name
	}
	return d.name + "\x00" + strings.Join(d.labels, "\x00")
}

// labelString renders {k="v",...} or "" without labels.
func (d *desc) labelString() string {
	if len(d.labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(d.labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", d.labels[i], d.labels[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Registry holds a process's metric series. The zero registry pointer
// (nil) is the disabled state: every registration returns a nil
// instrument and every export renders empty.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]any
	series []any // registration order: *Counter | *Gauge | *Histogram

	// tracer, when set, turns on distributed tracing for every
	// subsystem sharing this registry (see trace.go / recorder.go).
	tracer atomic.Pointer[Tracer]
}

// NewRegistry creates an enabled registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

// EnableTracing attaches a tracer and flight recorder to the registry
// so tracing rides the same opt-in plumbing as metrics: every
// subsystem holding the registry picks the tracer up via Tracer().
// proc labels this process's spans (e.g. "gateway", "device-1");
// ringSize is the flight-recorder capacity (<=0 selects
// DefaultRingSize). Idempotent per registry: a second call replaces
// the tracer; callers own closing the recorder they created. A nil
// registry returns nil (tracing requires telemetry).
func (r *Registry) EnableTracing(proc string, ringSize int) *Tracer {
	if r == nil {
		return nil
	}
	t := newTracer(NewRecorder(ringSize), proc)
	r.tracer.Store(t)
	return t
}

// Tracer returns the registry's tracer, nil when tracing (or the
// registry itself) is disabled. One atomic load: cheap enough for
// per-bundle hot paths.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}

// FlightRecorder returns the recorder behind the registry's tracer
// (nil when tracing is disabled).
func (r *Registry) FlightRecorder() *Recorder {
	return r.Tracer().Recorder()
}

// register interns a series, returning an existing instrument when the
// same name+labels was registered before. A kind clash on one name is
// a programming error and panics.
func (r *Registry) register(d desc, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byKey[d.key()]; ok {
		if kindOf(existing) != d.kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)",
				d.name, d.kind, kindOf(existing)))
		}
		return existing
	}
	m := make()
	r.byKey[d.key()] = m
	r.series = append(r.series, m)
	return m
}

func kindOf(m any) metricKind {
	switch m.(type) {
	case *Counter:
		return kindCounter
	case *Gauge:
		return kindGauge
	case *Histogram:
		return kindHistogram
	}
	return 0
}

// Counter registers (or looks up) a monotonically increasing series.
// Labels are k,v pairs; values MUST be compile-time constants or
// operator-assigned identifiers, never user data (telemetrysafe).
// A nil registry returns a nil (disabled, still usable) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	d := desc{name: name, help: help, kind: kindCounter, labels: labels}
	return r.register(d, func() any { return &Counter{d: d} }).(*Counter)
}

// Gauge registers (or looks up) a point-in-time series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	d := desc{name: name, help: help, kind: kindGauge, labels: labels}
	return r.register(d, func() any { return &Gauge{d: d} }).(*Gauge)
}

// Histogram registers (or looks up) a fixed-bucket distribution.
// bounds are inclusive upper bounds in ascending order (a +Inf bucket
// is implicit); nil selects DurationBuckets. Observations are float64s
// — by convention seconds for latency series (Prometheus base units).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	d := desc{name: name, help: help, kind: kindHistogram, labels: labels}
	return r.register(d, func() any {
		h := &Histogram{d: d, bounds: bounds}
		h.buckets = make([]atomic.Uint64, len(bounds)+1)
		h.exemplars = make([]atomic.Pointer[Exemplar], len(bounds)+1)
		return h
	}).(*Histogram)
}

// Span starts a request-scoped span, inactive when the registry is
// nil (disabled telemetry never reads the clock).
func (r *Registry) Span() Span {
	return StartSpan(r != nil)
}

// DurationBuckets spans 1µs–10s exponentially: wide enough for a DHKE
// handshake, fine enough for a single ORAM round trip.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RatioBuckets spans [0,1] for utilization and hit-rate distributions.
var RatioBuckets = []float64{
	0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1,
}

// SizeBuckets spans 64 B–16 MB for byte-volume distributions.
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20,
}

// Counter is a monotonically increasing series. All methods are safe
// on a nil receiver (the disabled state) and lock-free otherwise.
type Counter struct {
	v atomic.Uint64
	d desc
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 when disabled).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time series (int64: occupancy, depth, bytes).
type Gauge struct {
	v atomic.Int64
	d desc
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (lock-free high-water
// mark, e.g. peak stash depth).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 when disabled).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with lock-free recording:
// one atomic add per bucket/count and a CAS loop for the float sum.
type Histogram struct {
	d       desc
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	// exemplars holds, per bucket, the most recent traced observation
	// (len(bounds)+1, entries nil until a traced observation lands) —
	// the link from a p99 bucket to a concrete flight-recorder trace.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one histogram bucket to a concrete trace: "the p99
// queue wait looked like THIS request".
type Exemplar struct {
	Trace TraceID
	Value float64
	When  time.Time
}

// bucketIdx returns the index of the bucket containing v.
func (h *Histogram) bucketIdx(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveTraced records one value and, when trace is non-zero, stamps
// the containing bucket's exemplar with it. Call sites pass
// span.TraceID() unconditionally: a nil span yields a zero id and the
// exemplar store is skipped, keeping the untraced path allocation-free.
func (h *Histogram) ObserveTraced(v float64, trace TraceID) {
	if h == nil {
		return
	}
	h.Observe(v)
	if !trace.IsZero() {
		h.exemplars[h.bucketIdx(v)].Store(&Exemplar{Trace: trace, Value: v, When: time.Now()})
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// ObserveDurationTraced is ObserveTraced for latency histograms.
func (h *Histogram) ObserveDurationTraced(d time.Duration, trace TraceID) {
	if h == nil {
		return
	}
	h.ObserveTraced(d.Seconds(), trace)
}

// BucketExemplar returns bucket i's exemplar (nil when none landed).
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the containing bucket — the standard
// fixed-bucket estimate, exact enough for p50/p99 operational
// dashboards. Returns 0 with no observations; observations in the
// +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (target - cum) / c
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// QuantileDuration is Quantile for latency histograms recorded in
// seconds.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.Quantile(q) * float64(time.Second))
}

// sortedSeries returns the series sorted by family name then label
// signature (stable export order).
func (r *Registry) sortedSeries() []any {
	r.mu.Lock()
	out := append([]any(nil), r.series...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := descOf(out[i]), descOf(out[j])
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.key() < dj.key()
	})
	return out
}

func descOf(m any) *desc {
	switch v := m.(type) {
	case *Counter:
		return &v.d
	case *Gauge:
		return &v.d
	case *Histogram:
		return &v.d
	}
	panic("telemetry: unknown metric type")
}
