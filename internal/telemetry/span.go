package telemetry

import "time"

// Span is a request-scoped stopwatch for per-stage latency breakdowns
// (attest → DHKE → decode → execute → seal). It is a small value type:
// starting, marking, and ending a span never allocates, and an
// inactive span (disabled telemetry) returns before reading the clock,
// so the disabled cost is exactly one branch per call.
//
// Spans carry no attributes by design — stage identity lives in the
// histogram a Mark records into, which keeps user-controlled data
// structurally unable to reach an export (see the package comment on
// the threat model).
type Span struct {
	start time.Time
	last  time.Time
}

// StartSpan opens a span; with on=false the span is inactive and every
// method no-ops without touching the clock.
func StartSpan(on bool) Span {
	if !on {
		return Span{}
	}
	now := time.Now()
	return Span{start: now, last: now}
}

// Active reports whether the span records anything.
func (s *Span) Active() bool { return !s.start.IsZero() }

// Mark records the time since the previous Mark (or the start) into h
// and advances the stage boundary. Nil h records nothing but still
// advances, so optional stages don't skew the next one.
func (s *Span) Mark(h *Histogram) {
	if s.start.IsZero() {
		return
	}
	now := time.Now()
	h.ObserveDuration(now.Sub(s.last))
	s.last = now
}

// Skip advances the stage boundary without recording (a stage that
// didn't run).
func (s *Span) Skip() {
	if s.start.IsZero() {
		return
	}
	s.last = time.Now()
}

// End records the total time since the span started into h.
func (s *Span) End(h *Histogram) {
	if s.start.IsZero() {
		return
	}
	h.ObserveDuration(time.Since(s.start))
}

// EndTraced is End stamping the containing bucket's exemplar with a
// trace id (zero trace records plainly) — how a latency histogram's
// p99 bucket gets linked to a concrete flight-recorder trace.
func (s *Span) EndTraced(h *Histogram, trace TraceID) {
	if s.start.IsZero() {
		return
	}
	h.ObserveDurationTraced(time.Since(s.start), trace)
}
