package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the flight recorder: completed trace trees land in a
// fixed-size ring of atomic pointers (lock-free for readers and for
// the publish step) behind a tail sampler that keeps every error
// trace plus the slowest tail and drops the boring middle. Open spans
// accumulate in a mutex-guarded pending table until their trace
// completes; a janitor goroutine expires segments whose remote caller
// never collected them, so the table cannot grow without bound.
type Recorder struct {
	mu      sync.Mutex
	pending map[TraceID]*pendingTrace
	// recent is a ring of recent root durations (seconds) backing the
	// tail-sampling threshold.
	recent    []float64
	recentLen int
	recentPos int
	seen      int // completed local roots, for warmup

	ring []atomic.Pointer[Trace]
	next atomic.Uint64

	kept    atomic.Uint64
	dropped atomic.Uint64
	errKept atomic.Uint64
	expired atomic.Uint64

	staleAfter time.Duration

	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// pendingTrace accumulates one trace's spans until it completes (all
// locally started spans ended, and — when this process owns the root
// — the root ended).
type pendingTrace struct {
	open      int
	rooted    bool
	rootEnded bool
	rootDur   time.Duration
	spans     []SpanRecord
	errs      int
	born      time.Time
}

// Trace is one completed, sampled-in trace tree.
type Trace struct {
	ID       TraceID
	Root     string // root span name ("" for expired partial traces)
	Duration time.Duration
	Err      bool
	Spans    []SpanRecord // sorted by start time
}

// Tail-sampling policy knobs.
const (
	// recorderWarmup traces are kept unconditionally so the threshold
	// has data to stand on.
	recorderWarmup = 64
	// recentWindow root durations back the tail threshold.
	recentWindow = 256
	// keepQuantile: roots at or above this quantile of the recent
	// window are kept (the "slowest percentile" knob).
	keepQuantile = 0.90
	// defaultStale bounds how long an uncollected trace segment may
	// sit in the pending table.
	defaultStale = 30 * time.Second
	// DefaultRingSize is the flight-recorder capacity used by
	// Registry.EnableTracing.
	DefaultRingSize = 256
)

// NewRecorder builds a recorder with the given ring capacity (<=0
// selects DefaultRingSize) and starts its janitor. Callers must Close
// it to stop the janitor goroutine.
func NewRecorder(ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	r := &Recorder{
		pending:    make(map[TraceID]*pendingTrace),
		recent:     make([]float64, recentWindow),
		ring:       make([]atomic.Pointer[Trace], ringSize),
		staleAfter: defaultStale,
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go r.janitor()
	return r
}

// SetStaleAfter adjusts the pending-segment expiry (tests shorten it).
func (r *Recorder) SetStaleAfter(d time.Duration) {
	r.mu.Lock()
	r.staleAfter = d
	r.mu.Unlock()
}

// Close stops the janitor and waits for it to exit. Idempotent.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.closeOnce.Do(func() { close(r.quit) })
	<-r.done
}

// janitor periodically expires pending segments whose trace never
// completed locally (e.g. a remote caller that died before collecting
// them). Error-bearing partials are published so failures stay
// debuggable; clean partials are dropped.
func (r *Recorder) janitor() {
	defer close(r.done)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			r.expireStale(time.Now())
		}
	}
}

func (r *Recorder) expireStale(now time.Time) {
	var orphans []*Trace
	r.mu.Lock()
	for id, p := range r.pending {
		if now.Sub(p.born) < r.staleAfter {
			continue
		}
		delete(r.pending, id)
		r.expired.Add(1)
		if p.errs > 0 && len(p.spans) > 0 {
			orphans = append(orphans, assemble(id, p))
		}
	}
	r.mu.Unlock()
	for _, t := range orphans {
		r.publish(t)
		r.errKept.Add(1)
	}
}

// spanStarted registers a live span under its trace.
func (r *Recorder) spanStarted(id TraceID, root bool) {
	r.mu.Lock()
	p := r.pending[id]
	if p == nil {
		p = &pendingTrace{born: time.Now()}
		r.pending[id] = p
	}
	p.open++
	if root {
		p.rooted = true
	}
	r.mu.Unlock()
}

// spanEnded files a finished span and finalizes the trace when it was
// the last open span of a locally rooted tree.
func (r *Recorder) spanEnded(rec SpanRecord, root bool) {
	var complete *Trace
	r.mu.Lock()
	p := r.pending[rec.Trace]
	if p == nil {
		// The segment expired while the span ran; refile it so the
		// janitor gets another look (or TakeSpans collects it).
		p = &pendingTrace{born: time.Now(), open: 1, rooted: root}
		r.pending[rec.Trace] = p
	}
	p.open--
	p.spans = append(p.spans, rec)
	if rec.Err != "" {
		p.errs++
	}
	if root {
		p.rootEnded = true
		p.rootDur = rec.Duration
	}
	if p.rooted && p.rootEnded && p.open <= 0 {
		delete(r.pending, rec.Trace)
		if r.sampleIn(p) {
			complete = assemble(rec.Trace, p)
		}
	}
	r.mu.Unlock()
	if complete != nil {
		r.publish(complete)
	}
}

// sampleIn decides, with r.mu held, whether a completed trace is kept:
// all error traces, everything during warmup, then only roots at or
// above keepQuantile of the recent-duration window.
func (r *Recorder) sampleIn(p *pendingTrace) bool {
	sec := p.rootDur.Seconds()
	r.recent[r.recentPos] = sec
	r.recentPos = (r.recentPos + 1) % len(r.recent)
	if r.recentLen < len(r.recent) {
		r.recentLen++
	}
	r.seen++
	if p.errs > 0 {
		r.errKept.Add(1)
		return true
	}
	if r.seen <= recorderWarmup {
		return true
	}
	if sec >= r.tailThreshold() {
		return true
	}
	r.dropped.Add(1)
	return false
}

// tailThreshold computes the keepQuantile duration over the recent
// window (r.mu held).
func (r *Recorder) tailThreshold() float64 {
	n := r.recentLen
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, r.recent[:n])
	sort.Float64s(tmp)
	i := int(keepQuantile * float64(n))
	if i >= n {
		i = n - 1
	}
	return tmp[i]
}

// assemble builds the exported trace tree (r.mu held).
func assemble(id TraceID, p *pendingTrace) *Trace {
	spans := append([]SpanRecord(nil), p.spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	t := &Trace{ID: id, Err: p.errs > 0, Duration: p.rootDur, Spans: spans}
	for i := range spans {
		if spans[i].Parent.IsZero() {
			t.Root = spans[i].Name
			if t.Duration == 0 {
				t.Duration = spans[i].Duration
			}
			break
		}
	}
	return t
}

// publish stores a kept trace in the ring, overwriting the oldest.
func (r *Recorder) publish(t *Trace) {
	i := r.next.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(t)
	r.kept.Add(1)
}

// TakeSpans removes and returns the finished spans accumulated for a
// trace whose root lives in ANOTHER process — the remote side of a
// propagated context calls this after serving a request and ships the
// records back in its reply, so the caller's recorder ends up holding
// one contiguous tree. When spans of the trace are still open the
// pending entry stays (minus the taken spans); otherwise it is
// removed. Nil-receiver safe.
func (r *Recorder) TakeSpans(id TraceID) []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pending[id]
	if p == nil {
		return nil
	}
	spans := p.spans
	p.spans = nil
	p.errs = 0
	if p.open <= 0 && !p.rooted {
		delete(r.pending, id)
	}
	return spans
}

// Adopt files span records harvested from a remote process into the
// local pending table, so a trace rooted here absorbs its remote
// segments before the root ends. Nil-receiver safe.
func (r *Recorder) Adopt(spans []SpanRecord) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	for _, rec := range spans {
		p := r.pending[rec.Trace]
		if p == nil {
			p = &pendingTrace{born: time.Now()}
			r.pending[rec.Trace] = p
		}
		p.spans = append(p.spans, rec)
		if rec.Err != "" {
			p.errs++
		}
	}
	r.mu.Unlock()
}

// Traces returns the ring's contents, newest first. Lock-free.
func (r *Recorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.ring))
	out := make([]*Trace, 0, min(n, size))
	for k := uint64(1); k <= size && k <= n; k++ {
		if t := r.ring[(n-k)%size].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Lookup finds a kept trace by id (nil when evicted or never kept).
func (r *Recorder) Lookup(id TraceID) *Trace {
	if r == nil {
		return nil
	}
	for i := range r.ring {
		if t := r.ring[i].Load(); t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// LastExemplar returns the most recent kept trace id (zero when the
// ring is empty) — a convenience for tests and dashboards.
func (r *Recorder) LastExemplar() TraceID {
	ts := r.Traces()
	if len(ts) == 0 {
		return TraceID{}
	}
	return ts[0].ID
}

// RecorderStats is the recorder's own bookkeeping, exported on the
// /traces index.
type RecorderStats struct {
	Kept    uint64 `json:"kept"`
	Dropped uint64 `json:"dropped"`
	ErrKept uint64 `json:"err_kept"`
	Expired uint64 `json:"expired"`
	Pending int    `json:"pending"`
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	pending := len(r.pending)
	r.mu.Unlock()
	return RecorderStats{
		Kept:    r.kept.Load(),
		Dropped: r.dropped.Load(),
		ErrKept: r.errKept.Load(),
		Expired: r.expired.Load(),
		Pending: pending,
	}
}

// traceJSON is the /traces/{id} shape.
type traceJSON struct {
	ID       string     `json:"id"`
	Root     string     `json:"root"`
	Duration float64    `json:"duration_seconds"`
	Err      bool       `json:"err"`
	Spans    []spanJSON `json:"spans"`
}

type spanJSON struct {
	Span     string         `json:"span"`
	Parent   string         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	Proc     string         `json:"proc"`
	Start    time.Time      `json:"start"`
	Duration float64        `json:"duration_seconds"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Err      string         `json:"err,omitempty"`
}

func toTraceJSON(t *Trace) traceJSON {
	out := traceJSON{
		ID:       t.ID.String(),
		Root:     t.Root,
		Duration: t.Duration.Seconds(),
		Err:      t.Err,
		Spans:    make([]spanJSON, 0, len(t.Spans)),
	}
	for _, s := range t.Spans {
		sj := spanJSON{
			Span:     s.Span.String(),
			Name:     s.Name,
			Proc:     s.Proc,
			Start:    s.Start,
			Duration: s.Duration.Seconds(),
			Err:      s.Err,
		}
		if !s.Parent.IsZero() {
			sj.Parent = s.Parent.String()
		}
		if len(s.Attrs) > 0 {
			sj.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				if a.IsInt {
					sj.Attrs[a.Key] = a.Int
				} else {
					sj.Attrs[a.Key] = a.Str
				}
			}
		}
		out.Spans = append(out.Spans, sj)
	}
	return out
}

// writeTraceIndex renders the /traces index: recorder stats plus one
// summary row per kept trace, newest first.
func writeTraceIndex(w io.Writer, r *Recorder) error {
	type row struct {
		ID       string  `json:"id"`
		Root     string  `json:"root"`
		Duration float64 `json:"duration_seconds"`
		Spans    int     `json:"spans"`
		Err      bool    `json:"err"`
	}
	var idx struct {
		Stats  RecorderStats `json:"stats"`
		Traces []row         `json:"traces"`
	}
	idx.Stats = r.Stats()
	for _, t := range r.Traces() {
		idx.Traces = append(idx.Traces, row{
			ID:       t.ID.String(),
			Root:     t.Root,
			Duration: t.Duration.Seconds(),
			Spans:    len(t.Spans),
			Err:      t.Err,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(idx)
}

// WriteTraceJSON renders one trace as indented JSON.
func WriteTraceJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toTraceJSON(t))
}

// WriteChromeTrace renders one trace in the Chrome trace-event JSON
// format (load at chrome://tracing or ui.perfetto.dev). Spans become
// async nestable begin/end pairs grouped per process, which renders
// overlapping parallel-lane spans correctly.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat,omitempty"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"` // microseconds
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		ID    string         `json:"id,omitempty"`
		Args  map[string]any `json:"args,omitempty"`
	}
	var events []chromeEvent
	pids := map[string]int{}
	pidOf := func(proc string) int {
		if id, ok := pids[proc]; ok {
			return id
		}
		id := len(pids) + 1
		pids[proc] = id
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: id, TID: 0,
			Args: map[string]any{"name": proc},
		})
		return id
	}
	var epoch time.Time
	for _, s := range t.Spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	for _, s := range t.Spans {
		pid := pidOf(s.Proc)
		args := map[string]any{"span": s.Span.String()}
		for _, a := range s.Attrs {
			if a.IsInt {
				args[a.Key] = a.Int
			} else {
				args[a.Key] = a.Str
			}
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		ts := float64(s.Start.Sub(epoch)) / float64(time.Microsecond)
		dur := float64(s.Duration) / float64(time.Microsecond)
		id := fmt.Sprintf("%s-%s", t.ID.String()[:8], s.Span.String())
		events = append(events,
			chromeEvent{Name: s.Name, Cat: "hardtape", Phase: "b", TS: ts, PID: pid, TID: 1, ID: id, Args: args},
			chromeEvent{Name: s.Name, Cat: "hardtape", Phase: "e", TS: ts + dur, PID: pid, TID: 1, ID: id},
		)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
