package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// WritePrometheus renders every series in the Prometheus text
// exposition format (text/plain; version=0.0.4), families sorted by
// name with HELP/TYPE emitted once per family. A nil registry renders
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.sortedSeries() {
		d := descOf(m)
		if d.name != lastFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", d.name, d.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", d.name, d.kind)
			lastFamily = d.name
		}
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s%s %d\n", d.name, d.labelString(), v.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s%s %d\n", d.name, d.labelString(), v.Value())
		case *Histogram:
			writePromHistogram(bw, v)
		}
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram's cumulative buckets plus
// the _sum/_count pair, merging the le label into existing labels.
func writePromHistogram(w io.Writer, h *Histogram) {
	d := &h.d
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", d.name, labelStringWith(d, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", d.name, d.labelString(), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", d.name, d.labelString(), h.Count())
}

// labelStringWith renders the desc's labels plus one extra pair.
func labelStringWith(d *desc, k, v string) string {
	ext := desc{labels: append(append([]string(nil), d.labels...), k, v)}
	return ext.labelString()
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Snapshot is the machine-readable registry dump: one entry per
// series. The admin endpoint's /metrics.json and `benchtab -telemetry`
// both emit exactly this shape, so EXPERIMENTS.md numbers and live
// scrapes come from one code path.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one series' point-in-time state.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter/gauge readings.
	Value *float64 `json:"value,omitempty"`
	// Histogram fields.
	Count     *uint64            `json:"count,omitempty"`
	Sum       *float64           `json:"sum,omitempty"`
	Buckets   []BucketSnapshot   `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// BucketSnapshot is one histogram bucket (non-cumulative count). The
// bound is a string because the last bucket's bound is +Inf, which
// JSON numbers cannot carry. Exemplar, when present, names the most
// recent traced observation that landed in the bucket — follow the
// trace id to /traces/{id} on the admin endpoint.
type BucketSnapshot struct {
	UpperBound string            `json:"le"`
	Count      uint64            `json:"count"`
	Exemplar   *ExemplarSnapshot `json:"exemplar,omitempty"`
}

// ExemplarSnapshot is the exported form of a bucket exemplar.
type ExemplarSnapshot struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"ts"`
}

// Snapshot captures every series. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	for _, m := range r.sortedSeries() {
		d := descOf(m)
		ms := MetricSnapshot{Name: d.name, Type: d.kind.String()}
		if len(d.labels) > 0 {
			ms.Labels = make(map[string]string, len(d.labels)/2)
			for i := 0; i+1 < len(d.labels); i += 2 {
				ms.Labels[d.labels[i]] = d.labels[i+1]
			}
		}
		switch v := m.(type) {
		case *Counter:
			f := float64(v.Value())
			ms.Value = &f
		case *Gauge:
			f := float64(v.Value())
			ms.Value = &f
		case *Histogram:
			count, sum := v.Count(), v.Sum()
			ms.Count, ms.Sum = &count, &sum
			ms.Buckets = make([]BucketSnapshot, 0, len(v.buckets))
			for i := range v.buckets {
				ub := "+Inf"
				if i < len(v.bounds) {
					ub = formatFloat(v.bounds[i])
				}
				bs := BucketSnapshot{UpperBound: ub, Count: v.buckets[i].Load()}
				if ex := v.BucketExemplar(i); ex != nil {
					bs.Exemplar = &ExemplarSnapshot{
						TraceID: ex.Trace.String(), Value: ex.Value, Time: ex.When,
					}
				}
				ms.Buckets = append(ms.Buckets, bs)
			}
			if count > 0 {
				ms.Quantiles = map[string]float64{
					"p50": v.Quantile(0.50),
					"p90": v.Quantile(0.90),
					"p99": v.Quantile(0.99),
				}
			}
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// WriteJSON emits the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
