// Package plain is not security-sensitive: dropped errors here are a
// style question, not a trust violation.
package plain

import "errors"

func f() error { return errors.New("x") }

func drop() {
	_ = f()
}
