// Package core is a faulterr fixture: the "core" path element makes
// it security-sensitive.
package core

import (
	"errors"
	"fmt"
	"os"
)

func fault() error { return errors.New("bundle fault") }

func value() (int, error) { return 0, nil }

func bad() {
	fault()         // want `dropped error \(result ignored\)`
	_ = fault()     // want `dropped error \(assigned to _\)`
	v, _ := value() // want `dropped error \(assigned to _\)`
	_ = v
}

func good() error {
	if err := fault(); err != nil {
		return err
	}
	v, err := value()
	if err != nil {
		return err
	}
	_ = v
	fmt.Println("console output is exempt")
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func waived() {
	//hardtape:faulterr-ok fixture: a session failure ends that session only
	fault()
}
