package faulterr_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/faulterr"
)

func TestFaulterr(t *testing.T) {
	analysistest.Run(t, "testdata", faulterr.Analyzer, "core", "plain")
}
