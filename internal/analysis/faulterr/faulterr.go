// Package faulterr forbids silently dropped errors in
// security-sensitive packages. HarDTAPE's fault model (§V) turns
// errors into security signals: a failed bucket authentication is
// attack A4, a failed report verification is a compromised device, a
// failed bundle is billed work. Dropping one — `_ = f()` or calling
// an error-returning function as a bare statement — converts a
// detected attack into silence. Errors must be propagated, handled,
// or visibly waived.
//
// The analyzer flags, in sensitive packages (non-test files):
//
//   - expression statements calling a function whose final result is
//     an error
//   - assignments discarding an error result into _
//
// Deferred calls and Close() are exempt (conventional teardown).
//
// Escape hatch (reason required): //hardtape:faulterr-ok reason
package faulterr

import (
	"go/ast"

	"hardtape/internal/analysis"
)

// Analyzer flags dropped errors on fault and attestation paths.
var Analyzer = &analysis.Analyzer{
	Name: "faulterr",
	Doc: "errors in security-sensitive packages must be propagated, " +
		"handled, or explicitly annotated — never dropped",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.SensitivePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.DeferStmt:
				return false // teardown convention
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDropped(pass, ann, call, "result ignored")
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, ann, stmt)
			}
			return true
		})
	}
	return nil, nil
}

// checkDropped flags a bare call statement discarding an error.
func checkDropped(pass *analysis.Pass, ann *analysis.Annotations, call *ast.CallExpr, how string) {
	if !analysis.ReturnsError(pass.TypesInfo, call) || isExempt(pass, call) {
		return
	}
	if ann.Allowed(pass.Fset, call.Pos(), "faulterr-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"dropped error (%s): faults on this path are security signals; propagate, handle, or annotate //hardtape:faulterr-ok <reason>",
		how)
}

// checkBlankAssign flags `_ = f()` / `v, _ := g()` where the blank
// discards the call's error result.
func checkBlankAssign(pass *analysis.Pass, ann *analysis.Annotations, assign *ast.AssignStmt) {
	// Single call on the RHS: positions correspond to tuple results.
	if len(assign.Rhs) == 1 {
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || isExempt(pass, call) {
			return
		}
		for i, lhs := range assign.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || id.Name != "_" {
				continue
			}
			if i == len(assign.Lhs)-1 && analysis.ReturnsError(pass.TypesInfo, call) {
				checkDropped(pass, ann, call, "assigned to _")
			}
		}
		return
	}
	// Parallel assignment: match each blank LHS to its own RHS call.
	for i, lhs := range assign.Lhs {
		id, isIdent := lhs.(*ast.Ident)
		if !isIdent || id.Name != "_" || i >= len(assign.Rhs) {
			continue
		}
		if call, ok := assign.Rhs[i].(*ast.CallExpr); ok && !isExempt(pass, call) {
			if analysis.ReturnsError(pass.TypesInfo, call) {
				checkDropped(pass, ann, call, "assigned to _")
			}
		}
	}
}

// exemptPkgs are callee packages whose error results are vestigial:
// console printing and the in-memory writers documented never to
// fail (hash.Hash.Write, bytes.Buffer, strings.Builder).
var exemptPkgs = map[string]bool{
	"fmt":     true,
	"hash":    true,
	"bytes":   true,
	"strings": true,
}

// isExempt excludes conventional teardown (Close) and never-failing
// stdlib writers from the check.
func isExempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	path, name, ok := analysis.CalleeName(pass.TypesInfo, call, pass.Pkg.Path())
	if !ok {
		return false
	}
	if exemptPkgs[path] {
		return true
	}
	if i := lastDot(name); i >= 0 {
		name = name[i+1:]
	}
	return name == "Close"
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
