// Package hevm is a cryptorand fixture: the "hevm" path element makes
// it security-sensitive.
package hevm

import (
	crand "crypto/rand"
	"math/rand" // want `insecure randomness: math/rand imported in security-sensitive package hevm`
	//hardtape:cryptorand-ok fixture: waived generator, calibration jitter only
	mrand "math/rand/v2"
)

var (
	_ = rand.Int
	_ = mrand.Int64
	_ = crand.Read
)
