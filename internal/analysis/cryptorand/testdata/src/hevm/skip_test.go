// Test files are exempt: deterministic generators are fine in tests.
package hevm

import "math/rand"

var _ = rand.Int31
