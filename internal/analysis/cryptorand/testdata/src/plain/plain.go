// Package plain is not security-sensitive: math/rand is allowed.
package plain

import "math/rand"

var _ = rand.Int
