// Package cryptorand forbids math/rand in security-sensitive
// packages. HarDTAPE's side-channel defenses (the HEVM's pre-evict /
// pre-load noise, the prefetcher's randomized interval timer, ORAM's
// leaf remapping) are only as strong as their entropy source: a
// Mersenne-twister-class generator lets the adversary reconstruct the
// noise schedule and subtract it from the observed trace. Sensitive
// packages must draw from crypto/rand or a CSPRNG seeded by it.
//
// Escape hatch (reason required):
//
//	import mrand "math/rand" //hardtape:cryptorand-ok reason...
package cryptorand

import (
	"strconv"
	"strings"

	"hardtape/internal/analysis"
)

// Analyzer flags math/rand imports in sensitive packages.
var Analyzer = &analysis.Analyzer{
	Name: "cryptorand",
	Doc: "forbid math/rand in security-sensitive packages " +
		"(hevm, oram, attest, channel, fleet, core, secp256k1); " +
		"noise and key schedules must be cryptographically strong",
	Run: run,
}

// insecure lists the generator packages that leak their state.
var insecure = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.SensitivePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !insecure[path] {
				continue
			}
			if ann.Allowed(pass.Fset, imp.Pos(), "cryptorand-ok") {
				continue
			}
			pass.Reportf(imp.Pos(),
				"insecure randomness: %s imported in security-sensitive package %s; use crypto/rand or a crypto-seeded source",
				path, shortPath(pass.Pkg.Path()))
		}
	}
	return nil, nil
}

// shortPath trims the module prefix for readable diagnostics.
func shortPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
