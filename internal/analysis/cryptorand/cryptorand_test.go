package cryptorand_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/cryptorand"
)

func TestCryptorand(t *testing.T) {
	analysistest.Run(t, "testdata", cryptorand.Analyzer, "hevm", "plain")
}
