package secretflow_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/secretflow"
)

func TestSecretflow(t *testing.T) {
	analysistest.Run(t, "testdata", secretflow.Analyzer, "flows")
}
