// Package secretflow is a dataflow taint analyzer for key material.
// HarDTAPE's secrecy argument (§V A2/A3) rests on secrets —
// attestation session keys, resumption PSKs, STEKs, sealed plaintext,
// ORAM stash contents — never leaving the trusted path except under
// channel.Seal. The syntactic analyzers cannot see a key flow through
// two helpers into an error string; this one can: it rides the shared
// dataflow layer in internal/analysis (per-function transfer
// summaries over the package call graph, field/slice-sensitive taint
// propagation) and reports when a tainted value reaches an exfil
// sink.
//
// Sources:
//   - identifiers and struct fields whose names match the Flow class
//     of the shared secret lexicon (key, secret, psk, stek, hmac,
//     measurement, password, seed, stash, plaintext, ikm, prk) and
//     whose type carries bytes (slice/array of byte, string);
//   - results of key-derivation calls in the attest, session, and
//     channel packages (TrafficKey, ResumptionPSK, deriveKey, …).
//
// Sinks:
//   - format/error/log construction: fmt.Errorf/Sprintf/Printf/
//     Fprintf & friends, errors.New, log.*, panic;
//   - telemetry registration names and label values
//     (telemetry.Registry.Counter/Gauge/Histogram);
//   - distributed-tracing span names and attribute values
//     (telemetry.Tracer.StartSpan, telemetry.TraceSpan.AddAttr):
//     span records leave the device on the trace reply and surface on
//     the admin endpoints, so they are exactly as public as metric
//     labels;
//   - wire writes that bypass channel.Seal: Write/WriteString method
//     calls with a tainted payload;
//   - flag defaults in cmd/ packages (flag.String & friends).
//
// Sanitizers: Seal/Open-shaped calls (AEAD seal, channel seal) —
// their results are ciphertext or already-authenticated payload, the
// one sanctioned way secrets cross the boundary.
//
// Escape hatch (reason required): //hardtape:secret-ok reason — on
// the sink line, the line above, or the enclosing function's doc.
package secretflow

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"hardtape/internal/analysis"
)

// Analyzer reports secret-tainted values reaching exfiltration sinks.
var Analyzer = &analysis.Analyzer{
	Name: "secretflow",
	Doc: "track secret key material through assignments and calls and " +
		"report flows into logs, error strings, telemetry labels, flag " +
		"defaults, and unsealed wire writes",
	Run: run,
}

// keyDerivation matches exported/unexported key-derivation API names
// in the trusted-path packages.
var keyDerivation = regexp.MustCompile(`(?i)(key|psk|derive)`)

// derivationPkgs are the package-path elements whose derivation APIs
// mint secrets (matched like analysis.SensitivePackage, so fixtures
// named "session" qualify too).
var derivationPkgs = map[string]bool{"attest": true, "session": true, "channel": true}

// sanitizerName matches seal/open-shaped calls: AEAD.Seal,
// SecureChannel.Seal, cryptor.sealInto/openInto. Their outputs are
// ciphertext (or authenticated plaintext the callee vouches for), not
// raw key material.
var sanitizerName = regexp.MustCompile(`^(Seal|Open|seal|open)`)

func run(pass *analysis.Pass) (any, error) {
	flow := analysis.AnalyzeTaint(pass.Files, pass.TypesInfo, &analysis.TaintConfig{
		SourceName: func(name string, t types.Type) bool {
			return analysis.LooksSecretFlow(name) && analysis.ByteLikeType(t)
		},
		SourceCall: func(fn *types.Func, call *ast.CallExpr) bool {
			if fn.Pkg() == nil || !pkgInSet(fn.Pkg().Path(), derivationPkgs) {
				return false
			}
			if !keyDerivation.MatchString(fn.Name()) {
				return false
			}
			return resultsCarryBytes(fn)
		},
		Sanitizer: func(fn *types.Func, call *ast.CallExpr) bool {
			return sanitizerName.MatchString(fn.Name())
		},
		PropagateUnknown: true,
	})

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkSink(pass, flow, ann, fn, call)
				return true
			})
		}
	}
	return nil, nil
}

// checkSink classifies call and reports tainted arguments reaching it.
func checkSink(pass *analysis.Pass, flow *analysis.Flow, ann *analysis.Annotations, fn *ast.FuncDecl, call *ast.CallExpr) {
	path, name, ok := analysis.CalleeName(pass.TypesInfo, call, pass.Pkg.Path())
	if !ok {
		// panic(x) and other non-selector builtins.
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
			reportTainted(pass, flow, ann, fn, call, call.Args, "panic value")
		}
		return
	}

	switch {
	case path == "fmt":
		args := call.Args
		what := "formatted output (fmt." + name + ")"
		switch name {
		case "Errorf", "Sprintf", "Sprint", "Sprintln", "Printf", "Print", "Println":
			what = "format args (fmt." + name + ")"
		case "Fprintf", "Fprint", "Fprintln":
			if len(args) > 0 {
				args = args[1:] // the writer itself is not a payload
			}
			what = "format args (fmt." + name + ")"
		default:
			return
		}
		reportTainted(pass, flow, ann, fn, call, args, what)
	case path == "errors" && (name == "New" || name == "Join"):
		reportTainted(pass, flow, ann, fn, call, call.Args, "error value (errors."+name+")")
	case path == "log" || strings.HasSuffix(path, "/log"):
		reportTainted(pass, flow, ann, fn, call, call.Args, "log output (log."+name+")")
	case path == "flag":
		reportTainted(pass, flow, ann, fn, call, call.Args, "flag registration (flag."+name+")")
	case isTelemetryRegistration(path, name):
		reportTainted(pass, flow, ann, fn, call, call.Args, "telemetry name/label ("+name+")")
	case isTraceAnnotation(path, name):
		reportTainted(pass, flow, ann, fn, call, call.Args, "trace span name/attribute ("+name+")")
	case isWireWrite(path, name):
		if len(call.Args) >= 1 {
			reportTainted(pass, flow, ann, fn, call, call.Args[:1], "unsealed wire write")
		}
	}
}

// isWireWrite matches Write/WriteString on transport-shaped receivers
// — net.Conn and friends, bufio writers wrapping them, HTTP response
// writers — but NOT hash/MAC writers: feeding key material to an HMAC
// is the key schedule, not exfiltration.
func isWireWrite(path, name string) bool {
	typeName, method, found := strings.Cut(name, ".")
	if !found {
		return false
	}
	if method != "Write" && method != "WriteString" {
		return false
	}
	switch {
	case path == "net", path == "net/http", path == "bufio", path == "os":
		return true
	case strings.Contains(typeName, "Conn"):
		return true
	}
	return false
}

// isTraceAnnotation matches span creation and attribute attachment in
// the telemetry package: span names and attribute string values export
// like metric labels, so key material must never reach them. AddInt is
// deliberately absent — its int64 argument cannot carry byte-like
// taint.
func isTraceAnnotation(path, name string) bool {
	if path != "telemetry" && !strings.HasSuffix(path, "/telemetry") {
		return false
	}
	switch name {
	case "Tracer.StartSpan", "TraceSpan.AddAttr":
		return true
	}
	return false
}

// isTelemetryRegistration matches Registry.Counter/Gauge/Histogram in
// the telemetry package (CalleeName yields "Registry.Counter").
func isTelemetryRegistration(path, name string) bool {
	if path != "telemetry" && !strings.HasSuffix(path, "/telemetry") {
		return false
	}
	switch name {
	case "Registry.Counter", "Registry.Gauge", "Registry.Histogram":
		return true
	}
	return false
}

func reportTainted(pass *analysis.Pass, flow *analysis.Flow, ann *analysis.Annotations, fn *ast.FuncDecl, call *ast.CallExpr, args []ast.Expr, what string) {
	for _, arg := range args {
		if !flow.Tainted(arg) {
			continue
		}
		if ann.Allowed(pass.Fset, call.Pos(), "secret-ok") ||
			analysis.FuncAllowed(pass.Fset, fn, "secret-ok") {
			return
		}
		pass.Reportf(arg.Pos(),
			"secret material flows into %s; secrets may only leave the trusted path under channel.Seal (waive with //hardtape:secret-ok <reason>)",
			what)
		return // one finding per sink call is enough signal
	}
}

func pkgInSet(path string, set map[string]bool) bool {
	for _, elem := range strings.Split(path, "/") {
		if set[elem] {
			return true
		}
	}
	return false
}

// resultsCarryBytes reports whether any result of fn is byte-like —
// the signature shape of a derivation API worth treating as a source.
func resultsCarryBytes(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if analysis.ByteLikeType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}
