// Package session is a secretflow fixture dependency: its "session"
// path element makes its key-derivation APIs taint sources.
package session

// TrafficKey mimics the real session.TrafficKey shape.
func TrafficKey(psk [32]byte, id uint64) [32]byte {
	var out [32]byte
	for i := range out {
		out[i] = psk[i] ^ byte(id>>(uint(i)%8))
	}
	return out
}

// Zero wipes a buffer; not a sink, not a source.
func Zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
