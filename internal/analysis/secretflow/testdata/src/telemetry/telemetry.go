// Package telemetry is a secretflow fixture stand-in for the real
// registry: the "telemetry" path element plus the Registry type name
// is what the sink matcher keys on.
package telemetry

// Registry mimics the real registration API shape.
type Registry struct{}

// Counter registers a counter series.
func (r *Registry) Counter(name, help string, labels ...string) int { return 0 }

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) int { return 0 }

// SpanContext mimics the propagated span identity.
type SpanContext struct{}

// Tracer mimics the distributed-tracing span factory; StartSpan's name
// argument is a secretflow sink.
type Tracer struct{}

// StartSpan opens a named span.
func (t *Tracer) StartSpan(name string, parent SpanContext) *TraceSpan { return &TraceSpan{} }

// TraceSpan mimics a live span; AddAttr values are secretflow sinks.
type TraceSpan struct{}

// AddAttr attaches a string attribute.
func (s *TraceSpan) AddAttr(key, val string) {}

// AddInt attaches an integer attribute (not a byte-like sink).
func (s *TraceSpan) AddInt(key string, val int64) {}
