// Package telemetry is a secretflow fixture stand-in for the real
// registry: the "telemetry" path element plus the Registry type name
// is what the sink matcher keys on.
package telemetry

// Registry mimics the real registration API shape.
type Registry struct{}

// Counter registers a counter series.
func (r *Registry) Counter(name, help string, labels ...string) int { return 0 }

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) int { return 0 }
