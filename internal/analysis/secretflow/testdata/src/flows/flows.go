// Package flows exercises the secretflow analyzer: seeded leaks the
// dataflow layer must catch (positives) and sanctioned or innocent
// flows it must stay silent on (negatives).
package flows

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"

	"session"
	"telemetry"
)

// --- positives ----------------------------------------------------------

// Positive 1: secret-named identifier straight into an error string.
func direct(sessionKey []byte) error {
	return fmt.Errorf("bad key %x", sessionKey) // want `secret material flows into format args \(fmt\.Errorf\)`
}

// Positive 2: a key threaded through two helpers before the log call
// — only the transfer summaries can see this.
func hexify(b []byte) string { return string(b) }
func wraps(b []byte) string  { return hexify(b) }
func twoHops(psk []byte) {
	log.Printf("handshake psk=%s", wraps(psk)) // want `log output \(log\.Printf\)`
}

// Positive 3: result of a session key-derivation API is a source even
// though no identifier is secret-named.
func derived(id uint64) error {
	var material [32]byte
	k := session.TrafficKey(material, id)
	return errors.New(string(k[:])) // want `error value \(errors\.New\)`
}

// Positive 4: field sensitivity — the stek field carries taint.
type ticket struct {
	stek [32]byte
	name string
}

func field(t ticket) {
	fmt.Printf("ticket stek %x\n", t.stek) // want `format args \(fmt\.Printf\)`
}

// Positive 5: propagation through a method value.
type deriver struct{}

func (deriver) mix(k []byte) []byte { return k }

func methodValue(secret []byte) {
	d := deriver{}
	f := d.mix
	out := f(secret)
	log.Println(out) // want `log output \(log\.Println\)`
}

// Positive 6: interface dispatch propagates conservatively.
type kdf interface{ Derive(in []byte) []byte }

func dispatch(k kdf, seed []byte) {
	out := k.Derive(seed)
	fmt.Println(out) // want `format args \(fmt\.Println\)`
}

// Positive 7: raw key material written to the wire without Seal.
func wire(conn net.Conn, stek []byte) {
	conn.Write(stek) // want `unsealed wire write`
}

// Positive 8: telemetry label value built from a secret.
func labels(r *telemetry.Registry, psk string) {
	r.Counter("hardtape_resumes_total", "resumes", psk) // want `telemetry name/label \(Registry\.Counter\)`
}

// Positive 9: secret as a flag default crosses into cmd/ surface.
func flags(seedHex string) {
	flag.String("seed", seedHex, "initial seed") // want `flag registration \(flag\.String\)`
}

// Positive 10a: secret material as a span attribute value — span
// records ship to the untrusted side with the trace reply.
func spanAttr(tr *telemetry.Tracer, stashKey []byte) {
	sp := tr.StartSpan("oram.batch", telemetry.SpanContext{})
	sp.AddAttr("key", string(stashKey)) // want `trace span name/attribute \(TraceSpan\.AddAttr\)`
}

// Positive 10b: a derived key smuggled into a span NAME (dynamic names
// are also telemetrysafe violations, but the taint must be caught even
// where the name is built from a secret).
func spanName(tr *telemetry.Tracer, id uint64) {
	var material [32]byte
	k := session.TrafficKey(material, id)
	tr.StartSpan(string(k[:]), telemetry.SpanContext{}) // want `trace span name/attribute \(Tracer\.StartSpan\)`
}

// Positive 10: copy moves the secret bytes themselves.
func copied(psk []byte) {
	out := make([]byte, len(psk))
	copy(out, psk)
	fmt.Printf("copied %x\n", out) // want `format args \(fmt\.Printf\)`
}

// --- negatives ----------------------------------------------------------

// Negative 1: non-secret field of the same struct stays clean.
func fieldNeg(t ticket) {
	fmt.Printf("ticket name %s\n", t.name)
}

// Negative 2: sealed bytes are sanctioned to leave the trusted path.
func seal(b []byte) []byte { return append([]byte{1}, b...) }

func wireNeg(conn net.Conn, stek []byte) {
	ct := seal(stek)
	conn.Write(ct)
}

// Negative 3: lengths and counts of secrets are aggregates, not
// secrets.
func lenNeg(sessionKey []byte) error {
	return fmt.Errorf("key length %d", len(sessionKey))
}

// Negative 4: public keys are named like keys but are public.
func pubNeg(pubKey []byte) {
	fmt.Printf("device pub %x\n", pubKey)
}

// Negative 5: an explicit waiver with a reason suppresses, and stays
// reviewable.
func waived(psk []byte) {
	fmt.Printf("debug psk %x\n", psk) //hardtape:secret-ok fixture: documented debug-only build
}

// Negative 6: wiping a key is not exfiltration.
func zeroNeg(sessionKey []byte) {
	session.Zero(sessionKey)
}

// Negative 7: span attributes carrying counts and public structure are
// the sanctioned use; AddInt cannot carry byte taint at all.
func spanNeg(tr *telemetry.Tracer, sessionKey []byte) {
	sp := tr.StartSpan("device.bundle", telemetry.SpanContext{})
	sp.AddAttr("backend", "device-1")
	sp.AddInt("key_bytes", int64(len(sessionKey)))
}

// Negative 8: a waived span attribute stays reviewable.
func spanWaived(tr *telemetry.Tracer, psk []byte) {
	sp := tr.StartSpan("session.resume", telemetry.SpanContext{})
	sp.AddAttr("psk", string(psk)) //hardtape:secret-ok fixture: documented debug-only build
}
