package locksafe_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "core", "evm", "fleet", "plain")
}
