// Package locksafe forbids holding a mutex across a blocking
// operation on HarDTAPE's hot paths. The fleet gateway and the
// Hypervisor core serve every user session; a sync.Mutex held across
// a channel send, a bundle execution, or network I/O turns one slow
// backend into fleet-wide head-of-line blocking (the failover paths
// of PR 1 are the motivating surface). The interpreter's shared
// code-analysis cache (internal/evm) is under the same rule: its
// RWMutex sits on every frame construction, so blocking under it
// stalls every HEVM core at once. Deliberate serialization — a
// lock whose entire purpose is to serialize a non-concurrent-safe
// client — must say so with an annotation.
//
// The check is a source-order scan per function, not a CFG: a Lock()
// earlier in the function body with no intervening Unlock() on the
// same expression counts as held. Deferred Unlocks keep the lock held
// to function end. Function literals are skipped (their schedule is
// not the enclosing function's), as are selects with a default
// clause (non-blocking).
//
// Escape hatches (reason required):
//
//	//hardtape:locksafe-ok reason   — on the flagged line, or on the
//	                                  function's doc comment to waive
//	                                  the whole function
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hardtape/internal/analysis"
)

// Analyzer flags blocking operations under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "no mutex held across channel operations, bundle execution, " +
		"or network I/O in hot-path packages (core, fleet, oram, node, channel, hevm, evm)",
	Run: run,
}

// scopeElems are the hot-path packages the check covers.
var scopeElems = map[string]bool{
	"channel": true,
	"core":    true,
	"evm":     true,
	"fleet":   true,
	"hevm":    true,
	"node":    true,
	"oram":    true,
}

// blockingCalls are method/function names that block on external
// progress: bundle execution, sync, network and protocol I/O.
var blockingCalls = map[string]bool{
	"Accept":           true,
	"ApplyTransaction": true,
	"Dial":             true,
	"DialServer":       true,
	"Execute":          true,
	"ExecuteContext":   true,
	"FreeSlots":        true,
	"PreExecute":       true,
	"ReadFull":         true,
	"ReadMessage":      true,
	"Serve":            true,
	"ServeConn":        true,
	"ServeListener":    true,
	"Sleep":            true,
	"Status":           true,
	"Submit":           true,
	"Sync":             true,
	"SyncAll":          true,
	"Wait":             true,
	"WriteMessage":     true,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.FuncAllowed(pass.Fset, fn, "locksafe-ok") {
				continue
			}
			w := &walker{pass: pass, ann: ann, held: make(map[string]token.Pos)}
			w.walk(fn.Body)
		}
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, elem := range strings.Split(path, "/") {
		if scopeElems[elem] {
			return true
		}
	}
	return false
}

// walker scans one function body in source order.
type walker struct {
	pass *analysis.Pass
	ann  *analysis.Annotations
	// held maps a mutex expression (printed) to its Lock position.
	held map[string]token.Pos
	// selectComms marks channel operations that are select comm
	// clauses — reported (or not) at the select, not individually.
	selectComms map[ast.Node]bool
	// inDefer marks that the walk is inside a defer statement.
	inDefer bool
}

func (w *walker) walk(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			// A literal's body runs on its own schedule.
			return false
		case *ast.DeferStmt:
			w.visitDefer(v)
			return false
		case *ast.GoStmt:
			// The spawned call's args evaluate now, body runs later.
			for _, arg := range v.Call.Args {
				w.walk(arg)
			}
			return false
		case *ast.SelectStmt:
			w.visitSelect(v)
			return false
		case *ast.CallExpr:
			w.visitCall(v)
			return true
		case *ast.SendStmt:
			if !w.selectComms[v] {
				w.report(v.Pos(), "channel send")
			}
			return true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !w.selectComms[v] {
				w.report(v.Pos(), "channel receive")
			}
			return true
		case *ast.RangeStmt:
			if w.isChannelRange(v) {
				w.report(v.Pos(), "range over channel")
			}
			return true
		}
		return true
	})
}

// visitDefer handles `defer mu.Unlock()` (lock stays held to return,
// which is fine by itself) and other deferred calls (not blocking
// now).
func (w *walker) visitDefer(d *ast.DeferStmt) {
	// Deferred Unlock does NOT release for the scan: everything after
	// it in source order still runs under the lock.
	// Other deferred work is out of line; skip it.
}

// visitSelect reports a blocking select (no default) under a lock and
// then scans the clause bodies.
func (w *walker) visitSelect(s *ast.SelectStmt) {
	blocking := true
	if w.selectComms == nil {
		w.selectComms = make(map[ast.Node]bool)
	}
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			blocking = false // default clause
			continue
		}
		w.selectComms[cc.Comm] = true
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.selectComms[u] = true
			}
			return true
		})
	}
	if blocking {
		w.report(s.Pos(), "blocking select")
	}
	for _, clause := range s.Body.List {
		for _, stmt := range clause.(*ast.CommClause).Body {
			w.walk(stmt)
		}
	}
}

// visitCall tracks Lock/Unlock state and reports blocking calls.
func (w *walker) visitCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if w.isMutexMethod(sel) {
		expr := types.ExprString(sel.X)
		switch name {
		case "Lock", "RLock":
			w.held[expr] = call.Pos()
		case "Unlock", "RUnlock":
			delete(w.held, expr)
		}
		return
	}
	if blockingCalls[name] {
		w.report(call.Pos(), name+"()")
	}
}

// isMutexMethod reports whether the selector resolves to one of the
// sync mutex methods (covering embedded mutexes: the promoted method
// object still belongs to package sync, and only Mutex/RWMutex export
// Lock/Unlock/RLock/RUnlock there).
func (w *walker) isMutexMethod(sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	selection, ok := w.pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	obj := selection.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isChannelRange reports whether a range statement iterates a channel.
func (w *walker) isChannelRange(r *ast.RangeStmt) bool {
	tv, ok := w.pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// report emits one finding if a lock is held and no waiver applies.
func (w *walker) report(pos token.Pos, what string) {
	if len(w.held) == 0 {
		return
	}
	if w.ann.Allowed(w.pass.Fset, pos, "locksafe-ok") {
		return
	}
	var names []string
	for expr := range w.held {
		names = append(names, expr)
	}
	sort.Strings(names)
	w.pass.Reportf(pos,
		"blocking operation (%s) while holding mutex %s; release before blocking or annotate //hardtape:locksafe-ok <reason> for deliberate serialization",
		what, strings.Join(names, ", "))
}
