// Package evm is a locksafe fixture modeling the interpreter's shared
// code-analysis cache: the "evm" path element puts it in the hot-path
// scope. The cache's RWMutex sits on every frame construction, so the
// scan must run outside the lock and nothing blocking may run under
// either lock mode.
package evm

import "sync"

// Chain stands in for the world-state backend a careless
// implementation might consult while holding the cache lock.
type Chain struct{}

func (c *Chain) Sync() error { return nil }

// analysis is the cached per-code result.
type analysis struct{ jumpdests []byte }

// cache is the shared code-analysis cache (hash → analysis).
type cache struct {
	mu      sync.RWMutex
	entries map[string]*analysis
	chain   *Chain
	evicted chan string
}

func scan(code []byte) *analysis { return &analysis{jumpdests: make([]byte, len(code))} }

// badScanUnderLock holds the write lock across the backend sync: every
// HEVM core constructing a frame stalls behind it.
func (c *cache) badScanUnderLock(hash string, code []byte) *analysis {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.entries[hash]; a != nil {
		return a
	}
	c.chain.Sync() // want `blocking operation \(Sync\(\)\) while holding mutex c.mu`
	a := scan(code)
	c.entries[hash] = a
	return a
}

// badNotifyUnderRLock sends on a channel while readers hold the lock.
func (c *cache) badNotifyUnderRLock(hash string) *analysis {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.evicted <- hash // want `blocking operation \(channel send\) while holding mutex c.mu`
	return c.entries[hash]
}

// goodDoubleChecked is the shipped pattern: read under RLock, scan
// outside any lock, insert under a short write lock.
func (c *cache) goodDoubleChecked(hash string, code []byte) *analysis {
	c.mu.RLock()
	a := c.entries[hash]
	c.mu.RUnlock()
	if a != nil {
		return a
	}
	a = scan(code)
	c.mu.Lock()
	if existing := c.entries[hash]; existing != nil {
		a = existing
	} else {
		c.entries[hash] = a
	}
	c.mu.Unlock()
	return a
}

// goodNotifyAfterUnlock releases before the channel send.
func (c *cache) goodNotifyAfterUnlock(hash string) {
	c.mu.Lock()
	delete(c.entries, hash)
	c.mu.Unlock()
	c.evicted <- hash
}
