// Package plain is outside the hot-path scope: the same pattern is
// not flagged here.
package plain

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
}

func send(b *Box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1
}
