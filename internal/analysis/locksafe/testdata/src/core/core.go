// Package core is a locksafe fixture for the optimistic-parallel
// scheduler's hand-off shapes: a committer draining per-lane done
// channels and a commit mutex that must never be held across lane
// completion, re-execution, or worker teardown.
package core

import "sync"

// Tx stands in for a bundle transaction.
type Tx struct{}

// Lane stands in for one speculative execution lane.
type Lane struct{}

func (l *Lane) ApplyTransaction(tx *Tx) error { return nil }

// Sched is the scheduler skeleton: a commit mutex guarding the
// versioned overlay, per-transaction done channels, and the worker
// wait group.
type Sched struct {
	mu   sync.Mutex
	done []chan struct{}
	wg   sync.WaitGroup
}

// Committing under the lock while waiting for a lane to finish is
// head-of-line blocking: every other bundle on the device stalls.
func badDrain(s *Sched, i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.done[i] // want `blocking operation \(channel receive\) while holding mutex s.mu`
}

// Re-executing a conflicting transaction is a full EVM run; doing it
// under the commit lock serializes the device.
func badReexec(s *Sched, l *Lane, tx *Tx) {
	s.mu.Lock()
	l.ApplyTransaction(tx) // want `blocking operation \(ApplyTransaction\(\)\) while holding mutex s.mu`
	s.mu.Unlock()
}

// Worker teardown joins every lane goroutine; holding the commit lock
// across it deadlocks if a worker needs the lock to finish.
func badJoin(s *Sched) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `blocking operation \(Wait\(\)\) while holding mutex s.mu`
}

// The fix: drain the lane outside the lock, take the lock only for
// the commit itself.
func goodDrainThenCommit(s *Sched, i int) {
	<-s.done[i]
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Polling a lane with a default clause never blocks; doing so under
// the lock is legal.
func goodPoll(s *Sched, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done[i]:
		return true
	default:
		return false
	}
}

// The committer IS the serialization point for the versioned overlay:
// a deliberate single-committer design, waived with a reason.
//
//hardtape:locksafe-ok fixture: the commit lock's purpose is serializing the single committer
func waivedCommitter(s *Sched, i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.done[i]
}
