// Package fleet is a locksafe fixture: the "fleet" path element puts
// it in the hot-path scope.
package fleet

import "sync"

// Conn stands in for a protocol connection.
type Conn struct{}

func (c *Conn) ReadMessage() ([]byte, error) { return nil, nil }

// Pool guards a connection and a dispatch channel.
type Pool struct {
	mu   sync.Mutex
	conn *Conn
	ch   chan int
}

func badIO(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.ReadMessage() // want `blocking operation \(ReadMessage\(\)\) while holding mutex p.mu`
}

func badSend(p *Pool) {
	p.mu.Lock()
	p.ch <- 1 // want `blocking operation \(channel send\) while holding mutex p.mu`
	p.mu.Unlock()
}

func badSelect(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `blocking operation \(blocking select\) while holding mutex p.mu`
	case v := <-p.ch:
		_ = v
	}
}

// Releasing before the blocking call is the fix.
func goodUnlockFirst(p *Pool) ([]byte, error) {
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	return c.ReadMessage()
}

// A select with a default clause never blocks.
func goodSelectDefault(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- 1:
	default:
	}
}

// Deliberate serialization, waived for the whole function.
//
//hardtape:locksafe-ok fixture: the lock's purpose is serializing this connection
func waivedFunc(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.ReadMessage()
}

func waivedLine(p *Pool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//hardtape:locksafe-ok fixture: deliberate single-line waiver
	p.conn.ReadMessage()
}
