package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
)

// The standalone driver: `hardtape-lint ./...` without go vet. It
// shells out to `go list -deps -export` for package metadata and
// compiled export data (forcing a build of anything stale), then
// type-checks and analyzes every in-module, non-test package.

// listedPackage is the subset of `go list -json` output the driver
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// LoadModulePackages resolves patterns (e.g. "./...") in dir into
// type-checked packages ready for analysis, covering every matched
// package that belongs to the surrounding module. Dependencies —
// including the standard library — are consumed as export data only,
// so the load cost is one `go list` plus parsing the module's own
// sources.
func LoadModulePackages(dir string, patterns []string) ([]*Package, error) {
	// Pass 1: resolve the patterns to the exact match set.
	matched, err := goList(dir, []string{"list", "-f", "{{.ImportPath}}"}, patterns)
	if err != nil {
		return nil, err
	}
	matchSet := make(map[string]bool)
	for _, line := range bytes.Split(bytes.TrimSpace(matched), []byte("\n")) {
		if len(line) > 0 {
			matchSet[string(line)] = true
		}
	}

	// Pass 2: export data for the matched packages and every
	// dependency (compiling anything stale as a side effect).
	out, err := goList(dir, []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,ImportMap,Error",
	}, patterns)
	if err != nil {
		return nil, err
	}

	exportFiles := make(map[string]string)
	importMap := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			break
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if matchSet[p.ImportPath] && !p.Standard && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, importMap, exportFiles)
	var pkgs []*Package
	for _, t := range targets {
		var filenames []string
		for _, gf := range t.GoFiles {
			filenames = append(filenames, filepath.Join(t.Dir, gf))
		}
		pkg, err := CheckFiles(t.ImportPath, fset, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs one go list invocation in dir.
func goList(dir string, args, patterns []string) ([]byte, error) {
	cmd := exec.Command("go", append(args, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	return out, nil
}
