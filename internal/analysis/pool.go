package analysis

import (
	"go/ast"
	"go/types"
)

// Pool facts ride on the same dataflow layer as taint: "this value
// came from a sync.Pool" is a taint whose source is (*sync.Pool).Get,
// and "this function releases its i-th parameter" is a transfer
// summary computed bottom-up over the call graph. The poolsafe
// analyzer layers flow-sensitive checks (use-after-release,
// double-put, escape) on top of these facts.

// PoolInfo holds one package's pool-ownership facts.
type PoolInfo struct {
	// Flow is the pooledness taint: Flow.Tainted(e) means e may hold
	// a value freshly acquired from a sync.Pool (directly or through
	// an acquire wrapper like getBlockBuf).
	Flow *Flow
	info *types.Info
	// releases[fn] is the bitmask of parameters (receiver = bit 0)
	// that fn returns to a pool, directly or through a wrapper.
	releases map[*types.Func]uint64
}

// AnalyzePools computes pool-ownership facts for one package.
func AnalyzePools(files []*ast.File, info *types.Info) *PoolInfo {
	p := &PoolInfo{
		info:     info,
		releases: make(map[*types.Func]uint64),
	}
	p.Flow = AnalyzeTaint(files, info, &TaintConfig{
		SourceCall: func(fn *types.Func, call *ast.CallExpr) bool {
			return isPoolMethod(fn, "Get")
		},
		PropagateUnknown: false,
	})
	// Release summaries to a fixed point: a wrapper of a wrapper of
	// sync.Pool.Put still counts.
	g := p.Flow.Graph()
	for round := 0; round < 8; round++ {
		changed := false
		for _, node := range g.BottomUp() {
			if p.computeReleases(node) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return p
}

// Pooled reports whether e may hold a pool-owned value.
func (p *PoolInfo) Pooled(e ast.Expr) bool { return p.Flow.Tainted(e) }

// ReleasesParams returns the bitmask of fn's parameters (receiver
// first) that fn puts back into a pool.
func (p *PoolInfo) ReleasesParams(fn *types.Func) uint64 { return p.releases[fn] }

// ReleasedArgs returns the argument expressions a call releases to a
// pool: the direct operand of (*sync.Pool).Put, or the arguments
// bound to releasing parameters of a wrapper. Nil when the call
// releases nothing.
func (p *PoolInfo) ReleasedArgs(call *ast.CallExpr) []ast.Expr {
	callee := StaticCallee(p.info, call)
	if callee == nil {
		return nil
	}
	if isPoolMethod(callee, "Put") && len(call.Args) == 1 {
		return []ast.Expr{call.Args[0]}
	}
	mask := p.releases[callee]
	if mask == 0 {
		return nil
	}
	// Map parameter bits back to caller arguments (receiver = bit 0
	// for methods).
	var args []ast.Expr
	offset := 0
	sig := callee.Type().(*types.Signature)
	if sig.Recv() != nil {
		offset = 1
		if mask&1 != 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				args = append(args, sel.X)
			}
		}
	}
	for i, a := range call.Args {
		if mask&(1<<(i+offset)) != 0 {
			args = append(args, a)
		}
	}
	return args
}

// computeReleases rescans one function for release calls whose
// operand is a parameter, folding wrapper knowledge in; reports
// whether the summary grew.
func (p *PoolInfo) computeReleases(node *FuncNode) bool {
	fn, decl := node.Func, node.Decl
	sig := fn.Type().(*types.Signature)
	paramIndex := make(map[types.Object]int)
	idx := 0
	if r := sig.Recv(); r != nil {
		paramIndex[r] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIndex[sig.Params().At(i)] = idx
		idx++
	}
	mask := p.releases[fn]
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range p.ReleasedArgs(call) {
			obj, exact := RootObject(p.info, arg)
			if !exact || obj == nil {
				continue
			}
			if pi, ok := paramIndex[obj]; ok && pi < 63 {
				mask |= 1 << pi
			}
		}
		return true
	})
	if mask != p.releases[fn] {
		p.releases[fn] = mask
		return true
	}
	return false
}

// isPoolMethod reports whether fn is (*sync.Pool).<name>.
func isPoolMethod(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// RootObject resolves the base object an expression reads or writes
// through. exact is true when the expression denotes that object's
// own value wrapped only in taint-preserving shells (parens, slices,
// conversions, type assertions, address-of/deref) — precise enough to
// track release state on. Selector and index paths root at the base
// object but are inexact: releasing b.slots[i].data says nothing
// about b itself.
func RootObject(info *types.Info, e ast.Expr) (obj types.Object, exact bool) {
	exact = true
	for {
		switch x := e.(type) {
		case *ast.Ident:
			o := info.Uses[x]
			if o == nil {
				o = info.Defs[x]
			}
			return o, exact
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SelectorExpr:
			exact = false
			e = x.X
		case *ast.IndexExpr:
			exact = false
			e = x.X
		case *ast.CallExpr:
			// Conversion shells like (*[N]byte)(b) keep identity;
			// real calls root nowhere.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return nil, false
		default:
			return nil, false
		}
	}
}
