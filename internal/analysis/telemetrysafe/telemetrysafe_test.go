package telemetrysafe_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/telemetrysafe"
)

func TestTelemetrySafe(t *testing.T) {
	analysistest.Run(t, "testdata", telemetrysafe.Analyzer, "svc", "telemetry")
}
