// Package telemetrysafe fences the telemetry export boundary. The
// metrics registry publishes to the untrusted SP's scrapers, so the
// threat model allows only aggregates the SP already observes —
// counts, latencies, byte totals. A metric name or label value built
// from a runtime string is the classic leak: one formatted address,
// key fragment, or ORAM position in a label and the series itself
// exfiltrates per-user data, cardinality-bombing the registry as a
// bonus.
//
// The analyzer flags any call to Registry.Counter / Registry.Gauge /
// Registry.Histogram whose metric name or label arguments are not
// compile-time constants, and any Tracer.StartSpan whose span name is
// not — span names export on the admin trace endpoints exactly like
// metric names, so they obey the same rule. Operator-controlled
// dynamic labels (backend deployment names, enum-driven class labels)
// are legitimate; they must carry a visible waiver so the trust
// decision is reviewable. (Span ATTRIBUTE values may be dynamic — the
// secretflow taint analyzer polices what reaches them.)
//
// Escape hatch (reason required): //hardtape:telemetry-ok reason —
// on the call line, the line above, or the enclosing function's doc.
package telemetrysafe

import (
	"go/ast"
	"strings"

	"hardtape/internal/analysis"
)

// Analyzer flags non-constant metric names and label arguments.
var Analyzer = &analysis.Analyzer{
	Name: "telemetrysafe",
	Doc: "require compile-time-constant metric names and labels in telemetry " +
		"registrations; dynamic strings leak user data into the exported series",
	Run: run,
}

// labelStart maps each registration method to the index of its first
// label argument (name and help precede; Histogram also takes buckets).
var labelStart = map[string]int{
	"Counter":   2,
	"Gauge":     2,
	"Histogram": 3,
}

func run(pass *analysis.Pass) (any, error) {
	if isTelemetryPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				start, isReg := labelStart[sel.Sel.Name]
				isSpan := sel.Sel.Name == "StartSpan"
				if !isReg && !isSpan {
					return true
				}
				pkgPath, typeName, ok := analysis.NamedType(pass.TypesInfo, sel.X)
				if !ok || !isTelemetryPackage(pkgPath) {
					return true
				}
				if isSpan && typeName != "Tracer" {
					return true
				}
				if isReg && typeName != "Registry" {
					return true
				}
				if ann.Allowed(pass.Fset, call.Pos(), "telemetry-ok") ||
					analysis.FuncAllowed(pass.Fset, fn, "telemetry-ok") {
					return true
				}
				check := func(arg ast.Expr, what string) {
					if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
						return // compile-time constant
					}
					pass.Reportf(arg.Pos(),
						"dynamic %s in telemetry registration (%s.%s): exported series may only carry compile-time constants; annotate with //hardtape:telemetry-ok <reason> if the value is operator-controlled",
						what, typeName, sel.Sel.Name)
				}
				if isSpan {
					if len(call.Args) > 0 {
						check(call.Args[0], "span name")
					}
					return true
				}
				if len(call.Args) > 0 {
					check(call.Args[0], "metric name")
				}
				for i := start; i < len(call.Args); i++ {
					check(call.Args[i], "label argument")
				}
				return true
			})
		}
	}
	return nil, nil
}

// isTelemetryPackage matches the telemetry package itself (module
// path or fixture).
func isTelemetryPackage(path string) bool {
	return path == "telemetry" || strings.HasSuffix(path, "/telemetry")
}
