// Package svc consumes the registry from outside the telemetry trust
// boundary: every exported name and label must be a compile-time
// constant or carry a reviewed waiver.
package svc

import "telemetry"

const stage = "decode"

func register(reg *telemetry.Registry, user string, addr string) {
	// Constants — including named constants and concatenations — pass.
	reg.Counter("svc_requests_total", "requests")
	reg.Counter("svc_stage_total", "stages", "stage", stage)
	reg.Gauge("svc_"+stage+"_depth", "depth")
	reg.Histogram("svc_wait_seconds", "wait", nil, "stage", stage)

	// Dynamic metric names leak whatever they interpolate.
	reg.Counter("svc_user_"+user, "per-user") // want `dynamic metric name in telemetry registration \(Registry.Counter\)`
	reg.Gauge(addr, "per-address")            // want `dynamic metric name in telemetry registration \(Registry.Gauge\)`

	// Dynamic label values are the same leak through the side door.
	reg.Counter("svc_calls_total", "calls", "caller", addr)    // want `dynamic label argument in telemetry registration \(Registry.Counter\)`
	reg.Histogram("svc_lat_seconds", "lat", nil, "user", user) // want `dynamic label argument in telemetry registration \(Registry.Histogram\)`

	//hardtape:telemetry-ok backend label is the operator-assigned deployment name
	reg.Counter("svc_backend_total", "per-backend", "backend", user)
}

// registerFleet shows the function-doc waiver: the whole helper exists
// to register operator-named series.
//
//hardtape:telemetry-ok fixture: backend names come from deployment config
func registerFleet(reg *telemetry.Registry, name string) {
	reg.Counter("svc_fleet_total", "fleet", "backend", name)
	reg.Gauge("svc_fleet_depth", "fleet", "backend", name)
}

// A waiver without a reason must NOT suppress.
func silent(reg *telemetry.Registry, name string) {
	//hardtape:telemetry-ok
	reg.Counter("svc_silent_total", "silent", "backend", name) // want `dynamic label argument in telemetry registration \(Registry.Counter\)`
}

const stageSpan = "svc." + stage

// spans applies the same constant-name rule to trace spans: the name
// indexes the exported trace records, so a dynamic one leaks whatever
// it interpolates (attribute VALUES may be dynamic — secretflow
// checks their provenance).
func spans(tr *telemetry.Tracer, user string, txHash string) {
	// Constants, including named-constant concatenations, pass.
	sp := tr.StartSpan("svc.handle", telemetry.SpanContext{})
	sp.AddAttr("backend", user)
	tr.StartSpan(stageSpan, telemetry.SpanContext{})

	tr.StartSpan("svc."+user, telemetry.SpanContext{}) // want `dynamic span name in telemetry registration \(Tracer.StartSpan\)`
	tr.StartSpan(txHash, telemetry.SpanContext{})      // want `dynamic span name in telemetry registration \(Tracer.StartSpan\)`

	//hardtape:telemetry-ok fixture: operator-chosen stage name
	tr.StartSpan(user, telemetry.SpanContext{})
}
