// Package telemetry is the fixture stand-in for the real registry:
// registrations inside it are the implementation, never a finding.
package telemetry

// Counter is a monotonic series.
type Counter struct{}

// Gauge is a point-in-time series.
type Gauge struct{}

// Histogram is a bucketed distribution.
type Histogram struct{}

// Registry hands out instruments.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return &Histogram{}
}

// SpanContext mimics the propagated span identity.
type SpanContext struct{}

// TraceSpan is a live distributed-tracing span.
type TraceSpan struct{}

// AddAttr attaches a string attribute (dynamic values allowed;
// secretflow polices their content).
func (s *TraceSpan) AddAttr(key, val string) {}

// Tracer mints spans; StartSpan's name must be a compile-time
// constant, same rule as metric names.
type Tracer struct{}

func (t *Tracer) StartSpan(name string, parent SpanContext) *TraceSpan { return &TraceSpan{} }

// internalUse shows in-package dynamic names are exempt.
func internalUse(r *Registry, n string, tr *Tracer) {
	r.Counter(n, "internal")
	tr.StartSpan(n, SpanContext{})
}
