// Package telemetry is the fixture stand-in for the real registry:
// registrations inside it are the implementation, never a finding.
package telemetry

// Counter is a monotonic series.
type Counter struct{}

// Gauge is a point-in-time series.
type Gauge struct{}

// Histogram is a bucketed distribution.
type Histogram struct{}

// Registry hands out instruments.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return &Histogram{}
}

// internalUse shows in-package dynamic names are exempt.
func internalUse(r *Registry, n string) {
	r.Counter(n, "internal")
}
