// Package oramleak fences the ORAM trust boundary. Path ORAM's
// obliviousness guarantee (paper §IV-D) holds only while every block
// access flows through the client — its stash, position map, and
// per-access path re-randomization. Code outside internal/oram that
// reads or writes server buckets directly (ReadPath / WritePath),
// tampers with stored buckets, or installs bucket observers is either
// a simulation of the adversary or a leak; both must be visibly
// annotated so the trust boundary cannot drift silently.
//
// The analyzer flags, outside the oram package itself, any call to a
// raw-store method on the ORAM server types: the oram.Server interface
// or any concrete store behind it — *oram.MemServer, the disk-backed
// *oram.FileServer (the sharded/persistent deployment, DESIGN.md §17),
// and the *oram.RemoteServer TCP transport.
//
// Escape hatch (reason required): //hardtape:oram-direct reason
package oramleak

import (
	"go/ast"
	"strings"

	"hardtape/internal/analysis"
)

// Analyzer flags direct ORAM-server access outside internal/oram.
var Analyzer = &analysis.Analyzer{
	Name: "oramleak",
	Doc: "forbid raw ORAM server access (ReadPath[s]/WritePath[s]/TamperBucket/" +
		"SetObserver) outside internal/oram; all block access goes through the client",
	Run: run,
}

// rawMethods are the server methods that bypass the client stash.
var rawMethods = map[string]bool{
	"ReadPath":     true,
	"WritePath":    true,
	"ReadPaths":    true,
	"WritePaths":   true,
	"TamperBucket": true,
	"SetObserver":  true,
}

// serverTypes are the receiver types exposing the raw store. Every
// Server implementation belongs here: a new backend (disk, TCP, …)
// that is not listed would let raw access drift past the fence.
var serverTypes = map[string]bool{
	"Server":       true,
	"MemServer":    true,
	"FileServer":   true,
	"RemoteServer": true,
}

func run(pass *analysis.Pass) (any, error) {
	if isORAMPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !rawMethods[sel.Sel.Name] {
				return true
			}
			pkgPath, typeName, ok := analysis.NamedType(pass.TypesInfo, sel.X)
			if !ok || !isORAMPackage(pkgPath) || !serverTypes[typeName] {
				return true
			}
			if ann.Allowed(pass.Fset, call.Pos(), "oram-direct") {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct ORAM server access (%s.%s) outside internal/oram bypasses the oblivious client; annotate with //hardtape:oram-direct <reason> if this is an adversary observation point",
				typeName, sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}

// isORAMPackage matches the oram package itself (module or fixture).
func isORAMPackage(path string) bool {
	return path == "oram" || strings.HasSuffix(path, "/oram")
}
