// Package oram is the fixture stand-in for the real ORAM package:
// raw access inside it is the implementation, never a finding.
package oram

// AccessEvent is what a bucket observer sees.
type AccessEvent struct{ Leaf uint64 }

// MemServer mimics the raw bucket store.
type MemServer struct{ obs func(AccessEvent) }

func (s *MemServer) ReadPath(leaf uint64) [][]byte         { return nil }
func (s *MemServer) WritePath(leaf uint64, data [][]byte)  {}
func (s *MemServer) TamperBucket(i int)                    {}
func (s *MemServer) SetObserver(fn func(AccessEvent))      { s.obs = fn }
func (s *MemServer) Leaves() int                           { return 0 }

// internalUse shows in-package raw access is exempt.
func internalUse(s *MemServer) {
	s.WritePath(1, s.ReadPath(1))
}
