// Package oram is the fixture stand-in for the real ORAM package:
// raw access inside it is the implementation, never a finding.
package oram

// AccessEvent is what a bucket observer sees.
type AccessEvent struct{ Leaf uint64 }

// MemServer mimics the raw bucket store.
type MemServer struct{ obs func(AccessEvent) }

func (s *MemServer) ReadPath(leaf uint64) [][]byte        { return nil }
func (s *MemServer) WritePath(leaf uint64, data [][]byte) {}
func (s *MemServer) TamperBucket(i int)                   {}
func (s *MemServer) SetObserver(fn func(AccessEvent))     { s.obs = fn }
func (s *MemServer) Leaves() int                          { return 0 }

// FileServer mimics the disk-backed bucket store (persist/shard PR).
type FileServer struct{}

func (s *FileServer) ReadPaths(leaves []uint64) [][][]byte         { return nil }
func (s *FileServer) WritePaths(leaves []uint64, paths [][][]byte) {}
func (s *FileServer) TamperBucket(leaf uint64)                     {}
func (s *FileServer) Sync() error                                  { return nil }
func (s *FileServer) Close() error                                 { return nil }

// RemoteServer mimics the TCP transport.
type RemoteServer struct{}

func (s *RemoteServer) ReadPath(leaf uint64) [][]byte { return nil }
func (s *RemoteServer) Close() error                  { return nil }

// internalUse shows in-package raw access is exempt.
func internalUse(s *MemServer, f *FileServer) {
	s.WritePath(1, s.ReadPath(1))
	f.WritePaths(nil, f.ReadPaths(nil))
}
