// Package fleet is outside the ORAM trust boundary: raw server access
// from here bypasses the oblivious client.
package fleet

import "oram"

func probe(s *oram.MemServer) {
	s.ReadPath(3)       // want `direct ORAM server access \(MemServer.ReadPath\) outside internal/oram`
	s.TamperBucket(0)   // want `direct ORAM server access \(MemServer.TamperBucket\) outside internal/oram`
	s.WritePath(3, nil) // want `direct ORAM server access \(MemServer.WritePath\) outside internal/oram`
	//hardtape:oram-direct fixture: adversary observation point for the experiment
	s.SetObserver(func(oram.AccessEvent) {})
}

// The disk-backed and TCP stores are the same trust boundary: batched
// raw access and bucket tampering are findings there too.
func probeDurable(f *oram.FileServer, r *oram.RemoteServer) {
	f.ReadPaths(nil)       // want `direct ORAM server access \(FileServer.ReadPaths\) outside internal/oram`
	f.WritePaths(nil, nil) // want `direct ORAM server access \(FileServer.WritePaths\) outside internal/oram`
	r.ReadPath(0)          // want `direct ORAM server access \(RemoteServer.ReadPath\) outside internal/oram`
	//hardtape:oram-direct fixture: corruption injection for the recovery experiment
	f.TamperBucket(0)
}

// Reading server metadata (not a raw-store method) is fine.
func capacity(s *oram.MemServer) int {
	return s.Leaves()
}

// Lifecycle methods on the durable store don't touch buckets.
func flush(f *oram.FileServer) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
