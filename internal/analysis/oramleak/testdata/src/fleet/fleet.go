// Package fleet is outside the ORAM trust boundary: raw server access
// from here bypasses the oblivious client.
package fleet

import "oram"

func probe(s *oram.MemServer) {
	s.ReadPath(3)                  // want `direct ORAM server access \(MemServer.ReadPath\) outside internal/oram`
	s.TamperBucket(0)              // want `direct ORAM server access \(MemServer.TamperBucket\) outside internal/oram`
	s.WritePath(3, nil)            // want `direct ORAM server access \(MemServer.WritePath\) outside internal/oram`
	//hardtape:oram-direct fixture: adversary observation point for the experiment
	s.SetObserver(func(oram.AccessEvent) {})
}

// Reading server metadata (not a raw-store method) is fine.
func capacity(s *oram.MemServer) int {
	return s.Leaves()
}
