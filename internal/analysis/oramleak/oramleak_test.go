package oramleak_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/oramleak"
)

func TestORAMLeak(t *testing.T) {
	analysistest.Run(t, "testdata", oramleak.Analyzer, "fleet", "oram")
}
