package analysis

import (
	"go/ast"
	"go/types"
)

// The call graph underpins the dataflow layer (see dataflow.go): it
// resolves every static call site inside one package so per-function
// transfer summaries can be computed bottom-up, callees before
// callers. Calls that cannot be resolved statically — interface
// dispatch, func-typed variables — stay out of the graph and are
// handled conservatively by the taint engine.

// FuncNode is one package-level function or method in the call graph.
type FuncNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	// Callees are the statically resolved in-package callees.
	Callees []*FuncNode
}

// CallGraph indexes every function declared in one package.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
	order []*FuncNode
}

// BuildCallGraph constructs the static call graph of one package.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	var decls []*ast.FuncDecl
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Nodes[fn] = &FuncNode{Func: fn, Decl: fd}
			decls = append(decls, fd)
		}
	}
	for _, fd := range decls {
		caller := g.Nodes[info.Defs[fd.Name].(*types.Func)]
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if node, ok := g.Nodes[callee]; ok {
				seen[callee] = true
				caller.Callees = append(caller.Callees, node)
			}
			return true
		})
	}
	g.order = g.postorder()
	return g
}

// StaticCallee resolves the *types.Func a call invokes, or nil for
// dynamic calls (func values, method values bound to variables) and
// builtins. Interface-method calls resolve to the abstract method
// object; callers distinguish those by checking graph membership.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// BottomUp returns the nodes callees-first (postorder over the static
// call graph). Recursive cycles appear in an arbitrary internal
// order; the dataflow layer iterates summaries to a fixed point, so
// the order only affects convergence speed, not results.
func (g *CallGraph) BottomUp() []*FuncNode { return g.order }

func (g *CallGraph) postorder() []*FuncNode {
	var order []*FuncNode
	state := make(map[*FuncNode]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, c := range n.Callees {
			visit(c)
		}
		state[n] = 2
		order = append(order, n)
	}
	// Deterministic root order: declaration order via Nodes built from
	// files; map iteration is random, so sort by position.
	var roots []*FuncNode
	for _, n := range g.Nodes {
		roots = append(roots, n)
	}
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].Decl.Pos() < roots[j-1].Decl.Pos(); j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	for _, n := range roots {
		visit(n)
	}
	return order
}
