// Package consttime requires constant-time comparison of secret
// material in security-sensitive packages. A data-dependent early
// exit in a key, MAC, tag, or nonce comparison is a remote timing
// oracle (the classic HMAC-verification attack); HarDTAPE's channel
// secrecy claim (§V A2/A3) assumes no such oracle exists on the
// Hypervisor's handshake paths. Secret-named byte arrays and slices
// must be compared with crypto/subtle.ConstantTimeCompare.
//
// The analyzer flags, inside sensitive packages:
//
//   - bytes.Equal(a, b) where either operand is secret-named
//   - a == b / a != b on byte arrays where either side is secret-named
//
// "Secret-named" is a match of the shared secret lexicon's Compare
// class (analysis.SecretLexicon: key, secret, mac, tag, hmac, nonce,
// measurement, digest, token, password, psk, stek, seed, …) on any
// identifier in the operand expression. The lexicon is one exported
// table shared with the secretflow analyzer so the two cannot drift.
//
// Escape hatch (reason required): //hardtape:consttime-ok reason
package consttime

import (
	"go/ast"
	"go/token"
	"go/types"

	"hardtape/internal/analysis"
)

// Analyzer flags variable-time secret comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "consttime",
	Doc: "require crypto/subtle.ConstantTimeCompare for secret-named " +
		"byte comparisons in security-sensitive packages",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.SensitivePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkBytesEqual(pass, ann, node)
			case *ast.BinaryExpr:
				checkByteArrayCompare(pass, ann, node)
			}
			return true
		})
	}
	return nil, nil
}

// checkBytesEqual flags bytes.Equal on secret-named operands.
func checkBytesEqual(pass *analysis.Pass, ann *analysis.Annotations, call *ast.CallExpr) {
	path, name, ok := analysis.CalleeName(pass.TypesInfo, call, pass.Pkg.Path())
	if !ok || path != "bytes" || name != "Equal" || len(call.Args) != 2 {
		return
	}
	if !exprLooksSecret(call.Args[0]) && !exprLooksSecret(call.Args[1]) {
		return
	}
	if ann.Allowed(pass.Fset, call.Pos(), "consttime-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"variable-time comparison of secret material (bytes.Equal); use crypto/subtle.ConstantTimeCompare")
}

// checkByteArrayCompare flags ==/!= on secret-named byte arrays.
func checkByteArrayCompare(pass *analysis.Pass, ann *analysis.Annotations, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	if !isByteArray(pass.TypesInfo, cmp.X) && !isByteArray(pass.TypesInfo, cmp.Y) {
		return
	}
	if !exprLooksSecret(cmp.X) && !exprLooksSecret(cmp.Y) {
		return
	}
	if ann.Allowed(pass.Fset, cmp.Pos(), "consttime-ok") {
		return
	}
	pass.Reportf(cmp.Pos(),
		"variable-time comparison of secret material (%s on byte array); use crypto/subtle.ConstantTimeCompare",
		cmp.Op)
}

// isByteArray reports whether the expression's type is [N]byte.
func isByteArray(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	arr, ok := tv.Type.Underlying().(*types.Array)
	if !ok {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

// exprLooksSecret reports whether any identifier in the expression
// matches the secret-name heuristic.
func exprLooksSecret(expr ast.Expr) bool {
	secret := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && analysis.LooksSecretCompare(id.Name) {
			secret = true
			return false
		}
		return !secret
	})
	return secret
}
