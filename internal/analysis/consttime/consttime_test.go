package consttime_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/consttime"
)

func TestConsttime(t *testing.T) {
	analysistest.Run(t, "testdata", consttime.Analyzer, "attest", "plain", "session")
}
