// Package plain is not security-sensitive: even secret-named
// comparisons are out of scope.
package plain

import "bytes"

func cacheHit(key, probe []byte) bool {
	return bytes.Equal(key, probe)
}
