// Package attest is a consttime fixture: the "attest" path element
// makes it security-sensitive.
package attest

import (
	"bytes"
	"crypto/subtle"
)

func verifyMAC(mac, want []byte) bool {
	return bytes.Equal(mac, want) // want `variable-time comparison of secret material \(bytes.Equal\)`
}

func verifyTag(tag, other [32]byte) bool {
	return tag == other // want `variable-time comparison of secret material \(== on byte array\)`
}

func verifyNonce(nonce, echo [32]byte) bool {
	return nonce != echo // want `variable-time comparison of secret material \(!= on byte array\)`
}

// The fix: subtle.ConstantTimeCompare is never flagged.
func verifyMACGood(mac, want []byte) bool {
	return subtle.ConstantTimeCompare(mac, want) == 1
}

// Public data with non-secret names is fine either way.
func samePayload(a, b []byte) bool {
	return bytes.Equal(a, b)
}

func sameBlock(a, b [16]byte) bool {
	return a == b
}

func waived(nonceA, nonceB []byte) bool {
	//hardtape:consttime-ok fixture: explicit waiver for a documented non-secret use
	return bytes.Equal(nonceA, nonceB)
}
