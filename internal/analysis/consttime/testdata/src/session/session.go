// Package session is a consttime fixture: the "session" path element
// makes it security-sensitive (resumption PSKs and ticket keys live
// there in the real tree).
package session

import (
	"bytes"
	"crypto/subtle"
)

func pskMatches(psk, derivedPSK [32]byte) bool {
	return psk == derivedPSK // want `variable-time comparison of secret material \(== on byte array\)`
}

func trafficKeyMatches(trafficKey, want []byte) bool {
	return bytes.Equal(trafficKey, want) // want `variable-time comparison of secret material \(bytes.Equal\)`
}

func measurementChanged(measurement, booted [32]byte) bool {
	return measurement != booted // want `variable-time comparison of secret material \(!= on byte array\)`
}

// The fix: subtle.ConstantTimeCompare is never flagged.
func pskMatchesGood(psk, want []byte) bool {
	return subtle.ConstantTimeCompare(psk, want) == 1
}

// Ticket wire bytes are STEK-sealed and travel in plaintext; comparing
// them is not a secret comparison.
func sameWire(a, b []byte) bool {
	return bytes.Equal(a, b)
}

func waivedKeyID(keyIDA, keyIDB []byte) bool {
	//hardtape:consttime-ok fixture: key-id routing is public; mirrors ticket.go's waiver
	return bytes.Equal(keyIDA, keyIDB)
}
