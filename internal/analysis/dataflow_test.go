package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkPkg type-checks one in-memory file the same way the real
// drivers do (see CheckFiles) so the engine sees identical Info maps.
func checkPkg(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, file, info, pkg
}

const flowSrc = `package p

func sink(args ...any) {}

type dev struct{}

func (dev) mix(b []byte) []byte { return b }

func id(b []byte) []byte   { return b }
func wrap(b []byte) []byte { return id(b) }

func pick(vals ...any) any { return vals[0] }

func seal(b []byte) []byte      { return b }
func deriveKey() []byte         { return make([]byte, 32) }

func direct(secretKey []byte)  { sink(secretKey) }
func chained(secretKey []byte) { sink(wrap(secretKey)) }

func methodVal(secretKey []byte) {
	d := dev{}
	f := d.mix
	sink(f(secretKey))
}

type kdf interface{ Derive([]byte) []byte }

func dispatch(k kdf, secretSeed []byte) { sink(k.Derive(secretSeed)) }

func variadic(secretKey []byte) {
	v := pick("ok", secretKey)
	sink(v)
}

func derived() { sink(deriveKey()) }

func clean(publicBuf []byte)   { sink(publicBuf) }
func sealed(secretKey []byte)  { sink(seal(secretKey)) }
`

func testConfig() *TaintConfig {
	return &TaintConfig{
		SourceName: func(name string, t types.Type) bool {
			return strings.HasPrefix(name, "secret") && ByteLikeType(t)
		},
		SourceCall: func(fn *types.Func, call *ast.CallExpr) bool {
			return fn != nil && fn.Name() == "deriveKey"
		},
		Sanitizer: func(fn *types.Func, call *ast.CallExpr) bool {
			return fn != nil && fn.Name() == "seal"
		},
		PropagateUnknown: true,
	}
}

// sinkCalls maps enclosing-function name -> whether any argument of
// its sink(...) call carries taint.
func sinkCalls(flow *Flow, info *types.Info, file *ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
				tainted := false
				for _, arg := range call.Args {
					if flow.Tainted(arg) {
						tainted = true
					}
				}
				out[fd.Name.Name] = tainted
			}
			return true
		})
	}
	return out
}

func TestTaintPropagation(t *testing.T) {
	_, file, info, _ := checkPkg(t, flowSrc)
	flow := AnalyzeTaint([]*ast.File{file}, info, testConfig())
	got := sinkCalls(flow, info, file)

	want := map[string]bool{
		"direct":    true,  // source-named parameter used directly
		"chained":   true,  // through two local transfer summaries
		"methodVal": true,  // method value bound to a variable
		"dispatch":  true,  // interface dispatch, conservative rule
		"variadic":  true,  // taint through a ...any parameter
		"derived":   true,  // SourceCall marks the results
		"clean":     false, // no source anywhere
		"sealed":    false, // sanitizer strips taint
	}
	for name, wantTainted := range want {
		gotTainted, ok := got[name]
		if !ok {
			t.Errorf("%s: no sink call found", name)
			continue
		}
		if gotTainted != wantTainted {
			t.Errorf("%s: sink arg tainted = %v, want %v", name, gotTainted, wantTainted)
		}
	}
}

func TestTransferSummaries(t *testing.T) {
	_, file, info, pkg := checkPkg(t, flowSrc)
	flow := AnalyzeTaint([]*ast.File{file}, info, testConfig())

	lookup := func(name string) *types.Func {
		t.Helper()
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("no object %s", name)
		}
		return obj.(*types.Func)
	}

	// wrap's parameter flows into its only result, through id.
	if sum := flow.Summary(lookup("wrap")); sum == nil || len(sum.ParamFlow) != 1 || sum.ParamFlow[0]&1 == 0 {
		t.Errorf("wrap summary = %+v, want ParamFlow[0] to include result 0", sum)
	}
	// deriveKey is a source call: its own summary has no param flow.
	if sum := flow.Summary(lookup("deriveKey")); sum == nil || len(sum.ParamFlow) != 0 {
		t.Errorf("deriveKey summary = %+v, want zero params", sum)
	}
	// dev.mix: slot 0 is the receiver (no flow), slot 1 the data
	// parameter flowing into result 0.
	devObj := pkg.Scope().Lookup("dev").Type().(*types.Named)
	var mix *types.Func
	for i := 0; i < devObj.NumMethods(); i++ {
		if m := devObj.Method(i); m.Name() == "mix" {
			mix = m
		}
	}
	if mix == nil {
		t.Fatal("no method dev.mix")
	}
	sum := flow.Summary(mix)
	if sum == nil || len(sum.ParamFlow) != 2 {
		t.Fatalf("mix summary = %+v, want receiver + 1 param", sum)
	}
	if sum.ParamFlow[0] != 0 {
		t.Errorf("mix receiver flow = %b, want none", sum.ParamFlow[0])
	}
	if sum.ParamFlow[1]&1 == 0 {
		t.Errorf("mix param flow = %b, want result 0", sum.ParamFlow[1])
	}
}

func TestCallGraphOrder(t *testing.T) {
	_, file, info, pkg := checkPkg(t, flowSrc)
	g := BuildCallGraph([]*ast.File{file}, info)

	wrapFn := pkg.Scope().Lookup("wrap").(*types.Func)
	idFn := pkg.Scope().Lookup("id").(*types.Func)

	node := g.Nodes[wrapFn]
	if node == nil {
		t.Fatal("wrap not in call graph")
	}
	found := false
	for _, c := range node.Callees {
		if c.Func == idFn {
			found = true
		}
	}
	if !found {
		t.Error("wrap -> id edge missing")
	}

	// Bottom-up order must visit id before wrap so wrap's summary can
	// use id's.
	idAt, wrapAt := -1, -1
	for i, n := range g.BottomUp() {
		switch n.Func {
		case idFn:
			idAt = i
		case wrapFn:
			wrapAt = i
		}
	}
	if idAt < 0 || wrapAt < 0 || idAt > wrapAt {
		t.Errorf("bottom-up order: id at %d, wrap at %d; want id first", idAt, wrapAt)
	}
}

const poolSrc = `package q

import "sync"

type buf [8]byte

var p = sync.Pool{New: func() any { return new(buf) }}

func get() *buf  { return p.Get().(*buf) }
func put(b *buf) { p.Put(b) }

func putBoth(a, b *buf) {
	put(a)
	put(b)
}

func pairs() {
	x := get()
	y := get()
	putBoth(x, y)
}
`

func TestPoolSummaries(t *testing.T) {
	_, file, info, pkg := checkPkg(t, poolSrc)
	pools := AnalyzePools([]*ast.File{file}, info)

	putFn := pkg.Scope().Lookup("put").(*types.Func)
	bothFn := pkg.Scope().Lookup("putBoth").(*types.Func)

	if m := pools.ReleasesParams(putFn); m != 1 {
		t.Errorf("put releases mask = %b, want 1", m)
	}
	// Wrapper-of-wrapper: both parameters release.
	if m := pools.ReleasesParams(bothFn); m != 3 {
		t.Errorf("putBoth releases mask = %b, want 11", m)
	}

	// The putBoth call site in pairs releases both arguments, and both
	// arguments are recognized as pooled.
	var bothCall *ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "putBoth" {
				bothCall = call
			}
		}
		return true
	})
	if bothCall == nil {
		t.Fatal("no putBoth call")
	}
	released := pools.ReleasedArgs(bothCall)
	if len(released) != 2 {
		t.Fatalf("ReleasedArgs(putBoth) = %d args, want 2", len(released))
	}
	for _, arg := range bothCall.Args {
		if !pools.Pooled(arg) {
			t.Errorf("arg %v not recognized as pooled", arg)
		}
	}
}

func TestRootObject(t *testing.T) {
	_, file, info, _ := checkPkg(t, `package r

type buf [8]byte
type box struct{ b *buf }

func f(b *buf, x box) {
	_ = (*b)[0]
	_ = (*buf)(b)
	_ = x.b
}
`)
	var exprs []ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			exprs = append(exprs, as.Rhs[0])
		}
		return true
	})
	if len(exprs) != 3 {
		t.Fatalf("got %d exprs, want 3", len(exprs))
	}
	// (*b)[0]: rooted at b, but an index read is not the value itself.
	if obj, exact := RootObject(info, exprs[0]); obj == nil || obj.Name() != "b" || exact {
		t.Errorf("(*b)[0] root = %v exact=%v, want b inexact", obj, exact)
	}
	// A conversion is still the same value.
	if obj, exact := RootObject(info, exprs[1]); obj == nil || obj.Name() != "b" || !exact {
		t.Errorf("(*buf)(b) root = %v exact=%v, want b exact", obj, exact)
	}
	// A field read roots at the struct var but is not the var.
	if obj, exact := RootObject(info, exprs[2]); obj == nil || obj.Name() != "x" || exact {
		t.Errorf("x.b root = %v exact=%v, want x inexact", obj, exact)
	}
}
