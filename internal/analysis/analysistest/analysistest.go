// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib only.
//
// Layout: <testdata>/src/<pkgpath>/*.go. Fixture files annotate
// expected findings with trailing comments:
//
//	bad := rand.Intn(8) // want `insecure rand`
//
// Each backquoted or double-quoted string after "want" is a regexp
// that must match exactly one diagnostic reported on that line; any
// unmatched diagnostic or unsatisfied expectation fails the test.
// Fixture imports resolve against sibling fixture packages first,
// then the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hardtape/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, diffing diagnostics against the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		root:     filepath.Join(testdata, "src"),
		fset:     fset,
		fallback: importer.Default(),
		cache:    make(map[string]*types.Package),
	}
	pkg, err := loadFixture(fset, imp, pkgpath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgpath, err)
	}

	wants := collectWants(t, fset, pkg.Files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := d.Position(fset)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// collectWants extracts `// want` expectations from fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" && m[2] != "" {
						if unq, err := strconv.Unquote(`"` + m[2] + `"`); err == nil {
							pat = unq
						} else {
							pat = m[2]
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// loadFixture parses and type-checks one fixture directory.
func loadFixture(fset *token.FileSet, imp types.Importer, pkgpath string) (*analysis.Package, error) {
	fi, ok := imp.(*fixtureImporter)
	if !ok {
		return nil, fmt.Errorf("loadFixture needs a fixtureImporter")
	}
	dir := filepath.Join(fi.root, pkgpath)
	filenames, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	return analysis.CheckFiles(pkgpath, fset, filenames, imp)
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(filenames)
	return filenames, nil
}

// fixtureImporter resolves fixture-local packages from source and
// everything else through the toolchain's default importer.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	fallback types.Importer
	cache    map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		filenames, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, name := range filenames {
			f, err := parser.ParseFile(fi.fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: fi}
		pkg, err := conf.Check(path, fi.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("typecheck fixture dep %s: %w", path, err)
		}
		fi.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := fi.fallback.Import(path)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = pkg
	return pkg, nil
}
