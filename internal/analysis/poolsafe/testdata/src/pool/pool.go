// Package pool exercises the poolsafe analyzer: seeded ownership
// violations (positives) and every sanctioned pooled-buffer idiom the
// repo relies on (negatives).
package pool

import "sync"

type buf [64]byte

var p = sync.Pool{New: func() any { return new(buf) }}

// get and put are acquire/release wrappers; the dataflow layer's
// summaries mark get's result pooled and put's parameter released.
func get() *buf  { return p.Get().(*buf) }
func put(b *buf) { p.Put(b) }

type holder struct{ b *buf }

// --- positives ----------------------------------------------------------

// Positive 1: read after release.
func useAfter() byte {
	b := get()
	put(b)
	return b[0] // want `use of pooled b after release`
}

// Positive 2: releasing twice on one path.
func double() {
	b := get()
	put(b)
	put(b) // want `pooled b already released`
}

// Positive 3: pooled value parked in receiver state outlives the call.
func (h *holder) keep() {
	h.b = get() // want `pooled value escapes into receiver state`
}

// Positive 4: pooled value captured by a goroutine.
func togo() {
	b := get()
	go func() {
		_ = b[0] // want `pooled value escapes into a goroutine`
	}()
}

// Positive 5: pooled value sent on a channel.
func tochan(ch chan *buf) {
	b := get()
	ch <- b // want `pooled value escapes onto a channel`
}

// Positive 6: released in one branch, used after the merge.
func branchy(cond bool) byte {
	b := get()
	if cond {
		put(b)
	}
	return b[0] // want `use of pooled b after release`
}

// Positive 7: deferred release plus an explicit one.
func deferDouble() {
	b := get()
	defer put(b) // want `pooled b released here by defer and again`
	put(b)
}

// --- negatives ----------------------------------------------------------

// Negative 1: defer-release then keep using — the canonical idiom.
func deferOK() byte {
	b := get()
	defer put(b)
	return b[0]
}

// Negative 2: release on a terminating branch does not poison the
// fall-through path.
func terminating(cond bool) byte {
	b := get()
	if cond {
		put(b)
		return 0
	}
	return b[0]
}

// Negative 3: rebinding after release makes the variable live again.
func rebind() byte {
	b := get()
	put(b)
	b = get()
	defer put(b)
	return b[0]
}

// Negative 4: filling a caller-provided out-buffer hands ownership to
// the caller.
func fill(out []*buf) {
	for i := range out {
		out[i] = get()
	}
}

// Negative 5: attaching a pooled buffer to a local struct (and
// returning it) is an ownership transfer, like the real acquire
// wrappers do.
func local() *holder {
	h := &holder{}
	h.b = get()
	return h
}

// Negative 6: a documented custody hand-off under a waiver.
type cache struct{ m map[int]*buf }

func (c *cache) insert(k int) {
	c.m[k] = get() //hardtape:pool-ok fixture: cache takes custody and recycles on evict
}

// Negative 7: acquire/release pairs per loop iteration.
func loop(n int) {
	for i := 0; i < n; i++ {
		b := get()
		put(b)
	}
}

// Negative 8: a range value variable rebinds each iteration; releasing
// it does not poison the next iteration's value.
func recycle(bs []*buf) {
	for _, b := range bs {
		put(b)
		bs[0] = nil
	}
}

// Negative 9: a scalar field read from a pooled struct is a copy of an
// aggregate, not the pooled object; writing it back is not an escape.
type frame struct {
	gas int
	b   *buf
}

var fp = sync.Pool{New: func() any { return new(frame) }}

func getFrame() *frame { return fp.Get().(*frame) }

func drive() {
	f := getFrame()
	f.gas -= 1
	fp.Put(f)
}

func spend(f *frame) {
	g := f.gas
	f.gas = g
}

// Negative 10: copy duplicates bytes out of a pooled buffer; the
// content transfer does not move pool ownership.
type keeper struct{ last []byte }

func (k *keeper) snap() {
	b := get()
	out := make([]byte, len(b))
	copy(out, b[:])
	k.last = out
	put(b)
}
