// Package sched exercises poolsafe on the optimistic-parallel
// scheduler's hand-off shapes: pooled per-transaction outcomes moving
// from worker goroutines to the committer through an out-slice, and
// the ownership mistakes that discipline forbids.
package sched

import "sync"

type outcome struct {
	gas  int
	done bool
}

var outcomes = sync.Pool{New: func() any { return new(outcome) }}

func getOutcome() *outcome  { return outcomes.Get().(*outcome) }
func putOutcome(o *outcome) { outcomes.Put(o) }

// --- positives ----------------------------------------------------------

// Positive 1: committer recycles the outcome, then reads its stats.
func commitUseAfter(slots []*outcome, i int) int {
	o := slots[i]
	if o == nil {
		o = getOutcome()
	}
	putOutcome(o)
	return o.gas // want `use of pooled o after release`
}

// Positive 2: a retry path that recycles the outcome it already gave
// back after the first failed speculation.
func retryDouble(fail bool) {
	o := getOutcome()
	if fail {
		putOutcome(o)
	}
	putOutcome(o) // want `pooled o already released`
}

// Positive 3: a pooled outcome captured by a worker goroutine — the
// pool cannot see when the worker finishes with it.
func spawnWorker() {
	o := getOutcome()
	go func() {
		_ = o.done // want `pooled value escapes into a goroutine`
	}()
}

// Positive 4: parking a pooled outcome in scheduler state that
// outlives the bundle.
type sched struct{ last *outcome }

func (s *sched) record() {
	s.last = getOutcome() // want `pooled value escapes into receiver state`
}

// --- negatives ----------------------------------------------------------

// Negative 1: the worker→committer hand-off. Filling a caller-owned
// outcome slot transfers ownership with it; the committer releases.
func speculate(slots []*outcome, i int) {
	o := getOutcome()
	o.gas = 21000
	o.done = true
	slots[i] = o
}

// Negative 2: the committer side — drain the slot, read it, recycle.
func commit(slots []*outcome) int {
	total := 0
	for i, o := range slots {
		total += o.gas
		putOutcome(o)
		slots[i] = nil
	}
	return total
}

// Negative 3: a speculation that re-acquires after an abort recycled
// the first attempt's outcome.
func respeculate(fail bool) *outcome {
	o := getOutcome()
	if fail {
		putOutcome(o)
		o = getOutcome()
	}
	return o
}

// Negative 4: defer-release over the whole attempt, the worker-loop
// idiom for scratch outcomes.
func attempt() int {
	o := getOutcome()
	defer putOutcome(o)
	o.gas = 1
	return o.gas
}

// Negative 5: a documented custody transfer — the scheduler's free
// list takes ownership until the next bundle reuses the outcome.
type freeList struct{ slots []*outcome }

func (f *freeList) park() {
	f.slots = append(f.slots, getOutcome()) //hardtape:pool-ok fixture: free list takes custody until the next bundle
}
