package poolsafe_test

import (
	"testing"

	"hardtape/internal/analysis/analysistest"
	"hardtape/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata", poolsafe.Analyzer, "pool", "sched")
}
