// Package poolsafe encodes the pooled-buffer ownership discipline the
// PR-3/PR-4 fast paths rely on (ORAM block/plaintext/ciphertext
// buffers, EVM frames and stacks): a pooled object is owned by
// exactly one holder between Get and Put, and after Put it belongs to
// the pool again. Violations are silent cross-transaction (or
// cross-tenant) data corruption, which is why they rate a compile-time
// gate rather than a code-review convention.
//
// The analyzer rides the shared dataflow layer in internal/analysis:
// "came from a pool" is taint sourced at (*sync.Pool).Get and
// propagated through acquire wrappers via per-function transfer
// summaries; "releases its parameter" is a bottom-up summary over the
// package call graph, so putBlockBuf-style wrappers count exactly
// like sync.Pool.Put. On top of those facts it walks each function
// flow-sensitively and reports:
//
//   - use-after-release: any read of a variable after the statement
//     that released it (branch-aware; a release in one arm of an if
//     poisons the merge unless the arm terminates);
//   - double-put: releasing the same variable twice on one path, or
//     both deferring and explicitly releasing it;
//   - escape: storing a pooled value into a field or element reachable
//     from the receiver, a parameter's field, or a package-level
//     variable; sending it on a channel; or capturing it in a
//     goroutine. Locals and slice-element stores into caller-provided
//     out-buffers are ownership hand-offs and stay legal, as does
//     returning a pooled value (that is what acquire wrappers do).
//
// Escape hatch (reason required): //hardtape:pool-ok reason — for
// designed ownership transfers such as the ORAM stash taking custody
// of a block until eviction recycles it.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"hardtape/internal/analysis"
)

// Analyzer enforces the pooled-buffer ownership discipline.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "enforce sync.Pool ownership: no use-after-release, no " +
		"double-put, no escape of pooled objects into long-lived " +
		"structs, channels, or goroutines",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pools := analysis.AnalyzePools(pass.Files, pass.TypesInfo)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ann := analysis.ParseAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{
				pass:     pass,
				pools:    pools,
				ann:      ann,
				fn:       fd,
				reported: make(map[token.Pos]bool),
				deferred: make(map[types.Object]token.Pos),
			}
			c.walkBody()
		}
	}
	return nil, nil
}

// checker runs the flow-sensitive ownership walk over one function.
type checker struct {
	pass     *analysis.Pass
	pools    *analysis.PoolInfo
	ann      *analysis.Annotations
	fn       *ast.FuncDecl
	reported map[token.Pos]bool // dedupe across loop re-walks
	deferred map[types.Object]token.Pos
}

// state is the per-path release map: variables whose pooled value has
// been returned to the pool, keyed by object, valued by release site.
type state map[types.Object]token.Pos

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s state) merge(o state) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

func (c *checker) walkBody() {
	st := make(state)
	c.walkStmts(c.fn.Body.List, st)
	// A variable both deferred-released and explicitly released is a
	// double-put at function exit.
	for obj, dpos := range c.deferred {
		if rpos, ok := st[obj]; ok {
			c.report(dpos, "pooled %s released here by defer and again at %s (double put)",
				obj.Name(), c.pass.Fset.Position(rpos))
		}
	}
}

// walkStmts runs the statement list through st, returning whether the
// list terminates abruptly (return / branch / panic).
func (c *checker) walkStmts(stmts []ast.Stmt, st state) bool {
	for _, s := range stmts {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st state) bool {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return c.walkStmts(n.List, st)
	case *ast.IfStmt:
		if n.Init != nil {
			c.walkStmt(n.Init, st)
		}
		c.checkUses(n.Cond, st)
		thenSt := st.clone()
		thenTerm := c.walkStmt(n.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if n.Else != nil {
			elseTerm = c.walkStmt(n.Else, elseSt)
		}
		// Merge the arms that fall through.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			st.merge(elseSt)
		}
		return false
	case *ast.ForStmt:
		if n.Init != nil {
			c.walkStmt(n.Init, st)
		}
		if n.Cond != nil {
			c.checkUses(n.Cond, st)
		}
		c.walkLoopBody(n.Body, n.Post, st, nil)
		return false
	case *ast.RangeStmt:
		c.checkUses(n.X, st)
		// Key and Value rebind on every iteration, so each walk of
		// the body (including the second, merged-state pass) starts
		// with them live again.
		pre := func(s state) {
			if n.Key != nil {
				c.clearAssigned(n.Key, s)
			}
			if n.Value != nil {
				c.clearAssigned(n.Value, s)
			}
		}
		c.walkLoopBody(n.Body, nil, st, pre)
		return false
	case *ast.SwitchStmt:
		if n.Init != nil {
			c.walkStmt(n.Init, st)
		}
		if n.Tag != nil {
			c.checkUses(n.Tag, st)
		}
		c.walkCases(n.Body, st)
		return false
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			c.walkStmt(n.Init, st)
		}
		c.walkCases(n.Body, st)
		return false
	case *ast.SelectStmt:
		c.walkCases(n.Body, st)
		return false
	case *ast.LabeledStmt:
		return c.walkStmt(n.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkUses(r, st)
		}
		return true
	case *ast.BranchStmt:
		return n.Tok == token.BREAK || n.Tok == token.CONTINUE || n.Tok == token.GOTO
	case *ast.DeferStmt:
		c.handleDefer(n)
		return false
	case *ast.GoStmt:
		c.checkGoEscape(n)
		c.checkUses(n.Call, st)
		return false
	case *ast.SendStmt:
		c.checkUses(n.Chan, st)
		c.checkUses(n.Value, st)
		c.checkSendEscape(n)
		return false
	case *ast.ExprStmt:
		c.checkUses(n.X, st)
		c.applyReleases(n.X, st)
		if _, ok := isPanicCall(n.X); ok {
			return true
		}
		return false
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			c.checkUses(r, st)
		}
		for _, l := range n.Lhs {
			c.checkLhsUses(l, st)
		}
		for _, r := range n.Rhs {
			c.applyReleases(r, st)
		}
		c.checkAssignEscape(n)
		for _, l := range n.Lhs {
			c.clearAssigned(l, st)
		}
		return false
	case *ast.DeclStmt:
		c.checkUses(n, st)
		return false
	case *ast.IncDecStmt:
		c.checkUses(n.X, st)
		return false
	}
	return false
}

// walkLoopBody analyzes a loop body twice: once with the entry state
// and once with entry∪exit, so a value released in iteration N and
// used in iteration N+1 is caught. Diagnostics dedupe by position, so
// the re-walk cannot double-report.
// pre, when non-nil, runs at the top of each body walk to rebind the
// loop's per-iteration variables (range key/value).
func (c *checker) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, st state, pre func(state)) {
	first := st.clone()
	if pre != nil {
		pre(first)
	}
	c.walkStmt(body, first)
	if post != nil {
		c.walkStmt(post, first)
	}
	st.merge(first)
	second := st.clone()
	if pre != nil {
		pre(second)
	}
	c.walkStmt(body, second)
	if post != nil {
		c.walkStmt(post, second)
	}
	st.merge(second)
}

func (c *checker) walkCases(body *ast.BlockStmt, st state) {
	// A switch without a default may execute no case at all, so the
	// entry state is itself a fall-through path.
	hasDefault := false
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	merged := state{}
	any := !hasDefault
	if !hasDefault {
		merged = st.clone()
	}
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				c.checkUses(e, st)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				c.walkStmt(cc.Comm, st.clone())
			}
			stmts = cc.Body
		}
		caseSt := st.clone()
		if !c.walkStmts(stmts, caseSt) {
			merged.merge(caseSt)
			any = true
		}
	}
	if any {
		replace(st, merged)
	}
}

func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// --- checks -------------------------------------------------------------

// applyReleases records releases performed by calls inside e and
// reports double-puts.
func (c *checker) applyReleases(e ast.Expr, st state) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range c.pools.ReleasedArgs(call) {
			obj, exact := analysis.RootObject(c.pass.TypesInfo, arg)
			if !exact || obj == nil {
				continue
			}
			if prev, released := st[obj]; released {
				if !c.waived(call.Pos()) {
					c.report(call.Pos(), "pooled %s already released at %s (double put)",
						obj.Name(), c.pass.Fset.Position(prev))
				}
				continue
			}
			st[obj] = call.Pos()
		}
		return true
	})
}

// checkUses reports reads of released variables inside e, skipping
// the operands of the release calls themselves (those are judged by
// applyReleases) and deferred calls (they run at function exit).
func (c *checker) checkUses(n ast.Node, st state) {
	if len(st) == 0 || n == nil {
		return
	}
	skip := make(map[ast.Node]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			for _, arg := range c.pools.ReleasedArgs(call) {
				skip[arg] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if skip[m] {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if rpos, released := st[obj]; released {
			if !c.waived(id.Pos()) {
				c.report(id.Pos(), "use of pooled %s after release at %s",
					id.Name, c.pass.Fset.Position(rpos))
			}
		}
		return true
	})
}

// checkLhsUses flags released vars used as the BASE of a store
// (x.f = v or x[i] = v reads x); a plain `x = v` rebind is legal and
// handled by clearAssigned.
func (c *checker) checkLhsUses(l ast.Expr, st state) {
	if _, ok := ast.Unparen(l).(*ast.Ident); ok {
		return
	}
	c.checkUses(l, st)
}

// clearAssigned rebinds: assigning to a released variable makes it
// live again (whatever it now holds, it is not the released value).
func (c *checker) clearAssigned(l ast.Expr, st state) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj != nil {
		delete(st, obj)
	}
}

// handleDefer records deferred releases (they run at exit, so they do
// not poison subsequent uses) and flags double-deferred puts.
func (c *checker) handleDefer(n *ast.DeferStmt) {
	calls := []*ast.CallExpr{n.Call}
	if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				calls = append(calls, call)
			}
			return true
		})
	}
	for _, call := range calls {
		for _, arg := range c.pools.ReleasedArgs(call) {
			obj, exact := analysis.RootObject(c.pass.TypesInfo, arg)
			if !exact || obj == nil {
				continue
			}
			if prev, ok := c.deferred[obj]; ok {
				if !c.waived(call.Pos()) {
					c.report(call.Pos(), "pooled %s already deferred for release at %s (double put)",
						obj.Name(), c.pass.Fset.Position(prev))
				}
				continue
			}
			c.deferred[obj] = call.Pos()
		}
	}
}

// checkAssignEscape flags stores of pooled values into long-lived
// homes: fields/elements rooted at the receiver, a parameter's field,
// or a package-level variable. Slice-element stores into parameter
// out-buffers are the caller-owned hand-off idiom and stay legal.
func (c *checker) checkAssignEscape(n *ast.AssignStmt) {
	for i, l := range n.Lhs {
		rhs := n.Rhs[0]
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		}
		if !c.pools.Pooled(rhs) {
			continue
		}
		lhs := ast.Unparen(l)
		if _, ok := lhs.(*ast.Ident); ok {
			continue // plain local rebind
		}
		base, kind := storeBase(c.pass.TypesInfo, lhs)
		if base == nil {
			continue
		}
		recv, param := c.paramClass(base)
		longLived := false
		what := ""
		switch {
		case recv:
			longLived = true
			what = "receiver state (" + base.Name() + " outlives this call)"
		case param && kind == storeField:
			longLived = true
			what = "a caller-visible struct field of parameter " + base.Name()
		case !param && !isLocalVar(base):
			longLived = true
			what = "long-lived state rooted at " + base.Name()
		}
		if !longLived {
			continue
		}
		if c.waived(n.Pos()) {
			continue
		}
		c.report(n.Pos(),
			"pooled value escapes into %s; pool ownership ends at the function boundary (waive with //hardtape:pool-ok <reason> for designed hand-offs)",
			what)
	}
}

// paramClass classifies base as the receiver or a parameter of the
// function under check.
func (c *checker) paramClass(base types.Object) (recv, param bool) {
	def, ok := c.pass.TypesInfo.Defs[c.fn.Name].(*types.Func)
	if !ok {
		return false, false
	}
	sig := def.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && r == base {
		return true, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == base {
			return false, true
		}
	}
	return false, false
}

// checkGoEscape flags pooled values crossing into a goroutine: the
// pool has no idea when that goroutine finishes with them.
func (c *checker) checkGoEscape(n *ast.GoStmt) {
	var pooledUse ast.Expr
	for _, a := range n.Call.Args {
		if c.pools.Pooled(a) {
			pooledUse = a
			break
		}
	}
	if pooledUse == nil {
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if pooledUse != nil {
					return false
				}
				if id, ok := m.(*ast.Ident); ok {
					if c.pass.TypesInfo.Uses[id] != nil && c.pools.Pooled(id) {
						pooledUse = id
						return false
					}
				}
				return true
			})
		}
	}
	if pooledUse == nil || c.waived(n.Pos()) {
		return
	}
	c.report(pooledUse.Pos(),
		"pooled value escapes into a goroutine; the pool cannot track its lifetime (waive with //hardtape:pool-ok <reason>)")
}

func (c *checker) checkSendEscape(n *ast.SendStmt) {
	if !c.pools.Pooled(n.Value) || c.waived(n.Pos()) {
		return
	}
	c.report(n.Value.Pos(),
		"pooled value escapes onto a channel; pool ownership cannot follow it (waive with //hardtape:pool-ok <reason>)")
}

// --- helpers ------------------------------------------------------------

type storeKind int

const (
	storeField storeKind = iota
	storeElem
)

// storeBase walks an lvalue to its base object, classifying the
// outermost step as a field store (x.f…) or element store (x[i]).
func storeBase(info *types.Info, l ast.Expr) (types.Object, storeKind) {
	kind := storeElem
	for {
		switch x := l.(type) {
		case *ast.SelectorExpr:
			kind = storeField
			l = x.X
		case *ast.IndexExpr:
			l = x.X
		case *ast.StarExpr:
			l = x.X
		case *ast.ParenExpr:
			l = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj, kind
		default:
			return nil, kind
		}
	}
}

func isLocalVar(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return false
	}
	pkg := v.Pkg()
	return pkg == nil || v.Parent() != pkg.Scope()
}

func isPanicCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil, false
	}
	return call, true
}

func (c *checker) waived(pos token.Pos) bool {
	return c.ann.Allowed(c.pass.Fset, pos, "pool-ok") ||
		analysis.FuncAllowed(c.pass.Fset, c.fn, "pool-ok")
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}
