// Package suite registers the HarDTAPE invariant analyzers.
package suite

import (
	"hardtape/internal/analysis"
	"hardtape/internal/analysis/consttime"
	"hardtape/internal/analysis/cryptorand"
	"hardtape/internal/analysis/faulterr"
	"hardtape/internal/analysis/locksafe"
	"hardtape/internal/analysis/oramleak"
	"hardtape/internal/analysis/telemetrysafe"
)

// Analyzers returns every analyzer in the hardtape-lint suite, in
// reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cryptorand.Analyzer,
		consttime.Analyzer,
		oramleak.Analyzer,
		locksafe.Analyzer,
		faulterr.Analyzer,
		telemetrysafe.Analyzer,
	}
}
