// Package suite registers the HarDTAPE invariant analyzers.
package suite

import (
	"hardtape/internal/analysis"
	"hardtape/internal/analysis/consttime"
	"hardtape/internal/analysis/cryptorand"
	"hardtape/internal/analysis/faulterr"
	"hardtape/internal/analysis/locksafe"
	"hardtape/internal/analysis/oramleak"
	"hardtape/internal/analysis/poolsafe"
	"hardtape/internal/analysis/secretflow"
	"hardtape/internal/analysis/telemetrysafe"
)

// Analyzers returns every analyzer in the hardtape-lint suite, in
// reporting order. The first six are syntactic invariant checkers;
// secretflow and poolsafe ride the shared dataflow layer
// (internal/analysis: call graph, transfer summaries, taint).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cryptorand.Analyzer,
		consttime.Analyzer,
		oramleak.Analyzer,
		locksafe.Analyzer,
		faulterr.Analyzer,
		telemetrysafe.Analyzer,
		secretflow.Analyzer,
		poolsafe.Analyzer,
	}
}
