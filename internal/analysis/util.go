package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// sensitiveElems are the package-path elements whose code handles key
// material, oblivious access, or the trust boundary. The analyzers
// that scope by package (cryptorand, consttime, faulterr) match any
// path element, so both "hardtape/internal/hevm" and a fixture
// package named "hevm" qualify.
var sensitiveElems = map[string]bool{
	"attest":    true,
	"channel":   true,
	"core":      true,
	"fleet":     true,
	"hevm":      true,
	"oram":      true,
	"secp256k1": true,
	"session":   true,
}

// SensitivePackage reports whether the import path names a
// security-sensitive package.
func SensitivePackage(path string) bool {
	for _, elem := range strings.Split(path, "/") {
		if sensitiveElems[elem] {
			return true
		}
	}
	return false
}

// NamedType resolves the package path and name of an expression's
// type, following pointers. It returns ok=false for unnamed types.
func NamedType(info *types.Info, expr ast.Expr) (pkgPath, name string, ok bool) {
	tv, found := info.Types[expr]
	if !found {
		return "", "", false
	}
	return namedOf(tv.Type)
}

func namedOf(t types.Type) (pkgPath, name string, ok bool) {
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// CalleeName splits a call into (package-or-receiver path, function
// name). For a selector call x.F() it resolves x's named type (or the
// imported package path); for a plain call F() it returns the current
// package's path as supplied by the caller.
func CalleeName(info *types.Info, call *ast.CallExpr, selfPath string) (path, name string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return selfPath, fun.Name, true
	case *ast.SelectorExpr:
		if id, isIdent := fun.X.(*ast.Ident); isIdent {
			if obj, found := info.Uses[id]; found {
				if pkgName, isPkg := obj.(*types.PkgName); isPkg {
					return pkgName.Imported().Path(), fun.Sel.Name, true
				}
			}
		}
		if p, n, found := NamedType(info, fun.X); found {
			return p, n + "." + fun.Sel.Name, true
		}
		return "", fun.Sel.Name, true
	}
	return "", "", false
}

// ReturnsError reports whether the call's (sole or final) result is
// an error.
func ReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, found := info.Types[call]
	if !found {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
