package analysis

import (
	"regexp"
	"strings"
)

// The secret lexicon is the single table of name fragments that mark
// a value as key material or other trusted-path secrets. Two
// analyzers consume it with different sensitivities, from this one
// definition so they cannot drift:
//
//   - consttime (Compare): names whose comparison timing is
//     observable — keys, MACs, tags, nonces. A nonce is public data,
//     but comparing one byte-by-byte still leaks its value timing-wise.
//   - secretflow (Flow): names whose VALUE must never reach a log
//     line, error string, telemetry label, or unsealed wire write.
//     Public-but-timing-sensitive names (nonce, tag, digest) are
//     excluded: writing a nonce to the wire is the handshake.
//
// Patterns are case-insensitive regexp fragments; a name matches the
// lexicon when any fragment matches anywhere in it (use \b guards on
// fragments that are common substrings).
type SecretWord struct {
	Pattern string
	Compare bool // consttime: variable-time comparison is a finding
	Flow    bool // secretflow: value is a taint source
}

// SecretLexicon is the shared secret-name table.
var SecretLexicon = []SecretWord{
	{Pattern: `key`, Compare: true, Flow: true},
	{Pattern: `secret`, Compare: true, Flow: true},
	{Pattern: `mac\b`, Compare: true, Flow: false},
	{Pattern: `tag`, Compare: true, Flow: false},
	{Pattern: `hmac`, Compare: true, Flow: true},
	{Pattern: `nonce`, Compare: true, Flow: false},
	{Pattern: `measurement`, Compare: true, Flow: true},
	{Pattern: `digest`, Compare: true, Flow: false},
	{Pattern: `token`, Compare: true, Flow: false},
	{Pattern: `password`, Compare: true, Flow: true},
	{Pattern: `psk`, Compare: true, Flow: true},
	{Pattern: `stek`, Compare: true, Flow: true},
	{Pattern: `seed`, Compare: true, Flow: true},
	{Pattern: `stash\b`, Compare: false, Flow: true},
	{Pattern: `plaintext`, Compare: false, Flow: true},
	{Pattern: `ikm\b`, Compare: false, Flow: true},
	{Pattern: `prk\b`, Compare: false, Flow: true},
}

var (
	secretCompareRe = compileLexicon(func(w SecretWord) bool { return w.Compare })
	secretFlowRe    = compileLexicon(func(w SecretWord) bool { return w.Flow })
	// Names that look secret but denote public halves of a keypair:
	// pubKey, publicKey, PubkeyBytes. Flow sources must exclude them —
	// sending a public key over the wire IS the protocol.
	publicNameRe = regexp.MustCompile(`(?i)pub`)
)

func compileLexicon(include func(SecretWord) bool) *regexp.Regexp {
	var pats []string
	for _, w := range SecretLexicon {
		if include(w) {
			pats = append(pats, w.Pattern)
		}
	}
	return regexp.MustCompile(`(?i)(` + strings.Join(pats, "|") + `)`)
}

// LooksSecretCompare reports whether name matches a Compare-class
// lexicon word (consttime's sensitivity).
func LooksSecretCompare(name string) bool {
	return secretCompareRe.MatchString(name)
}

// LooksSecretFlow reports whether name matches a Flow-class lexicon
// word and is not a public-key name (secretflow's sensitivity).
func LooksSecretFlow(name string) bool {
	return secretFlowRe.MatchString(name) && !publicNameRe.MatchString(name)
}
