package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const annotated = `package p

//hardtape:faulterr-ok the accept loop must survive session failures
var a int

//hardtape:locksafe-ok
var b int

var c int //hardtape:oram-direct trailing waiver with reason
`

func TestAnnotationsRequireReason(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", annotated, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := ParseAnnotations(fset, f)

	find := func(name string) token.Pos {
		for _, d := range f.Decls {
			for _, s := range d.(*ast.GenDecl).Specs {
				vs := s.(*ast.ValueSpec)
				if vs.Names[0].Name == name {
					return vs.Pos()
				}
			}
		}
		t.Fatalf("no decl %s", name)
		return token.NoPos
	}

	if !ann.Allowed(fset, find("a"), "faulterr-ok") {
		t.Error("directive with reason should waive the next line")
	}
	if ann.Allowed(fset, find("a"), "locksafe-ok") {
		t.Error("waiver must be directive-specific")
	}
	if ann.Allowed(fset, find("b"), "locksafe-ok") {
		t.Error("directive without a reason must not waive anything")
	}
	if !ann.Allowed(fset, find("c"), "oram-direct") {
		t.Error("trailing same-line directive with reason should waive")
	}
}
