// Package analysis is a dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core: Analyzer, Pass, Diagnostic,
// and a driver that type-checks packages from compiler export data.
// HarDTAPE's security argument rests on invariants the Go type system
// cannot express — oblivious ORAM access, constant-time secret
// comparison, lock-free blocking paths, mandatory fault propagation —
// so the repo carries its own analyzers (see the sibling packages
// cryptorand, consttime, oramleak, locksafe, faulterr) and runs them
// on every change via cmd/hardtape-lint.
//
// The API mirrors x/tools so the analyzers port verbatim if the real
// framework ever becomes available; the subset implemented here is
// exactly what the five HarDTAPE analyzers need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags
	// (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic; the driver fills it in.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string // analyzer name, filled by the driver
}

// Position resolves a diagnostic's file:line:col.
func (d *Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Run applies every analyzer to pkg and returns the diagnostics
// sorted by position. Analyzer errors are returned immediately: a
// checker that cannot run is a broken gate, not a clean pass.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Category = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// Preorder walks every file in pass, calling fn for each node. fn
// returning false prunes the subtree.
func Preorder(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The invariants gate production code; tests routinely use
// math/rand, direct server access, and dropped errors on purpose.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
