package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared dataflow layer: a lightweight intra- and
// inter-procedural taint-propagation engine over go/types, built for
// the two value-flow analyzers (secretflow, poolsafe) and reusable by
// future ones.
//
// Design, in order of the trade-offs made:
//
//   - Taint is a 64-bit mask per value: bit 63 marks "derived from a
//     real source", bits 0..62 mark "derived from parameter i of the
//     enclosing function". Parameter bits exist only to build
//     transfer summaries; Flow.Tainted exposes the source bit.
//   - Within a function the analysis is flow-insensitive with
//     iteration to a fixed point: assignments only ever add taint.
//     That over-approximates (a variable overwritten with clean data
//     stays tainted) but never misses a flow, which is the right
//     polarity for a security gate.
//   - Across functions, per-function summaries (which parameters
//     reach which results, which results are sources outright) are
//     computed bottom-up over the package call graph and applied at
//     call sites, so a key threaded through two helpers into a log
//     call is still caught. Summaries iterate to a fixed point, so
//     recursion converges.
//   - Field sensitivity: struct fields are tracked per field object
//     (one cell per declared field, merged over all instances), so a
//     struct with a Key field and a Name field does not smear taint
//     between them. Slices and arrays are one cell — exactly right
//     for []byte/[32]byte key material.
//   - Method values (f := x.Derive; f(k)) resolve through a local
//     binding environment; interface dispatch and unknown externals
//     propagate conservatively (any tainted argument taints every
//     byte-, string-, or interface-typed result) when the config
//     opts in.
//
// Escapes out of the current function's scope (stores to fields,
// package-level variables, channels) keep only the source bit:
// parameter bits are meaningless outside their function.

const srcBit = uint64(1) << 63

// TaintConfig parameterizes the engine with analyzer-specific source,
// sink-independent sanitizer, and propagation policy.
type TaintConfig struct {
	// SourceName marks an identifier or field of the given name and
	// type as a source (e.g. secret-named byte slices). Nil disables.
	SourceName func(name string, t types.Type) bool
	// SourceCall marks a call's results as sources (e.g. key
	// derivation APIs). Nil disables.
	SourceCall func(fn *types.Func, call *ast.CallExpr) bool
	// Sanitizer marks a call whose results are clean regardless of
	// arguments (e.g. AEAD Seal: ciphertext out). Nil disables.
	Sanitizer func(fn *types.Func, call *ast.CallExpr) bool
	// PropagateUnknown applies the conservative rule at calls the
	// engine cannot resolve to a summary: any tainted argument taints
	// taintable results. secretflow wants true (hex.EncodeToString of
	// a key is still the key); poolsafe wants false (a pooled buffer
	// formatted into a string is not a pooled buffer).
	PropagateUnknown bool
}

// FuncSummary is one function's transfer summary.
type FuncSummary struct {
	// ParamFlow[i] is the bitmask of result indices that become
	// tainted when parameter i is tainted. For methods, parameter 0
	// is the receiver and source parameters follow.
	ParamFlow []uint64
	// SourceResults is the bitmask of result indices that are tainted
	// regardless of arguments (a source inside the function body).
	SourceResults uint64
}

// Flow is the result of running the taint engine over one package.
type Flow struct {
	cfg      *TaintConfig
	info     *types.Info
	graph    *CallGraph
	obj      map[types.Object]uint64
	field    map[*types.Var]uint64
	expr     map[ast.Expr]uint64
	sum      map[*types.Func]*FuncSummary
	bindings map[types.Object]*types.Func
	changed  bool
	record   bool
	nparams  map[*types.Func]int
}

// AnalyzeTaint runs the engine over one package to a global fixed
// point and returns the queryable flow result.
func AnalyzeTaint(files []*ast.File, info *types.Info, cfg *TaintConfig) *Flow {
	f := &Flow{
		cfg:      cfg,
		info:     info,
		graph:    BuildCallGraph(files, info),
		obj:      make(map[types.Object]uint64),
		field:    make(map[*types.Var]uint64),
		expr:     make(map[ast.Expr]uint64),
		sum:      make(map[*types.Func]*FuncSummary),
		bindings: make(map[types.Object]*types.Func),
		nparams:  make(map[*types.Func]int),
	}
	for fn := range f.graph.Nodes {
		sig := fn.Type().(*types.Signature)
		np := sig.Params().Len()
		if sig.Recv() != nil {
			np++
		}
		f.sum[fn] = &FuncSummary{ParamFlow: make([]uint64, np)}
		f.nparams[fn] = np
	}
	// Package-level var initializers participate once per round: a
	// secret-named global tainting a derived global.
	for round := 0; round < 24; round++ {
		f.changed = false
		for _, file := range files {
			f.walkPackageVars(file)
		}
		for _, node := range f.graph.BottomUp() {
			f.runFunc(node)
		}
		if !f.changed {
			break
		}
	}
	// Recording pass: masks are stable; capture per-expression taint.
	f.record = true
	for _, file := range files {
		f.walkPackageVars(file)
	}
	for _, node := range f.graph.BottomUp() {
		f.runFunc(node)
	}
	return f
}

// Tainted reports whether source-derived taint reaches e.
func (f *Flow) Tainted(e ast.Expr) bool { return f.expr[e]&srcBit != 0 }

// Summary returns fn's transfer summary, or nil for functions not
// declared (with a body) in the analyzed package.
func (f *Flow) Summary(fn *types.Func) *FuncSummary { return f.sum[fn] }

// Graph exposes the package call graph the summaries were built over.
func (f *Flow) Graph() *CallGraph { return f.graph }

// --- engine -------------------------------------------------------------

func (f *Flow) walkPackageVars(file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					m := f.evalExpr(vs.Values[i])
					if obj := f.info.Defs[name]; obj != nil {
						f.addObj(obj, m&srcBit)
					}
				}
			}
		}
	}
}

func (f *Flow) runFunc(node *FuncNode) {
	fn, decl := node.Func, node.Decl
	sig := fn.Type().(*types.Signature)
	idx := 0
	seed := func(v *types.Var) {
		m := uint64(0)
		if idx < 63 {
			m = uint64(1) << idx
		}
		if f.isSourceName(v.Name(), v.Type()) {
			m |= srcBit
		}
		f.addObj(v, m)
		idx++
	}
	if r := sig.Recv(); r != nil {
		seed(r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		seed(sig.Params().At(i))
	}
	// Intra-function fixed point: masks grow monotonically.
	for i := 0; i < 8; i++ {
		before := f.changed
		f.changed = false
		f.evalStmt(decl.Body, fn)
		inner := f.changed
		f.changed = before || inner
		if !inner {
			break
		}
	}
}

func (f *Flow) isSourceName(name string, t types.Type) bool {
	return f.cfg.SourceName != nil && f.cfg.SourceName(name, t)
}

func (f *Flow) addObj(o types.Object, m uint64) {
	if m == 0 || o == nil {
		return
	}
	if old := f.obj[o]; old|m != old {
		f.obj[o] = old | m
		f.changed = true
	}
}

func (f *Flow) addField(v *types.Var, m uint64) {
	m &= srcBit // fields outlive the function; param bits are local
	if m == 0 {
		return
	}
	if old := f.field[v]; old|m != old {
		f.field[v] = old | m
		f.changed = true
	}
}

// isLocal reports whether o is local to some function body (as
// opposed to a package-level variable or a field).
func isLocal(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return false
	}
	pkg := v.Pkg()
	return pkg == nil || v.Parent() != pkg.Scope()
}

// assignTo merges mask m into the abstract cell named by lhs.
func (f *Flow) assignTo(lhs ast.Expr, m uint64) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := f.info.Defs[e]
		if obj == nil {
			obj = f.info.Uses[e]
		}
		if obj == nil {
			return
		}
		if !isLocal(obj) {
			m &= srcBit
		}
		f.addObj(obj, m)
	case *ast.SelectorExpr:
		if sel, ok := f.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				f.addField(v, m)
			}
			return
		}
		// Qualified package-level var: pkg.V = x.
		if v, ok := f.info.Uses[e.Sel].(*types.Var); ok {
			f.addObj(v, m&srcBit)
		}
	case *ast.IndexExpr:
		f.assignTo(e.X, m)
	case *ast.StarExpr:
		f.assignTo(e.X, m)
	case *ast.SliceExpr:
		f.assignTo(e.X, m)
	}
}

// recordExpr notes e's mask during the recording pass.
func (f *Flow) recordExpr(e ast.Expr, m uint64) uint64 {
	if f.record && m != 0 {
		f.expr[e] |= m
	}
	return m
}

func (f *Flow) evalExpr(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := f.info.Uses[x]
		if obj == nil {
			obj = f.info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return 0
		}
		m := f.obj[obj]
		if f.isSourceName(x.Name, v.Type()) {
			m |= srcBit
		}
		if v.IsField() {
			m |= f.field[v]
		}
		return f.recordExpr(e, m)
	case *ast.SelectorExpr:
		if sel, ok := f.info.Selections[x]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				m := f.evalExpr(x.X)
				if v, ok := sel.Obj().(*types.Var); ok {
					// The container's taint reaches the field only if
					// the field's type can alias or hold the material;
					// scalar fields (gas counters, lengths, flags) of a
					// tainted struct are aggregates, not the taint.
					if !fieldCarries(v.Type()) {
						m = 0
					}
					m |= f.field[v]
					if f.isSourceName(v.Name(), v.Type()) {
						m |= srcBit
					}
				}
				return f.recordExpr(e, m)
			case types.MethodVal:
				// A bound method value carries no data taint itself.
				return f.recordExpr(e, 0)
			}
		}
		// Qualified identifier pkg.V.
		if v, ok := f.info.Uses[x.Sel].(*types.Var); ok {
			m := f.obj[v]
			if f.isSourceName(v.Name(), v.Type()) {
				m |= srcBit
			}
			return f.recordExpr(e, m)
		}
		return f.recordExpr(e, 0)
	case *ast.ParenExpr:
		return f.recordExpr(e, f.evalExpr(x.X))
	case *ast.StarExpr:
		return f.recordExpr(e, f.evalExpr(x.X))
	case *ast.UnaryExpr:
		// &x, -x, ^x, <-ch: operand taint (channel cells are the
		// channel object itself, merged at send sites).
		return f.recordExpr(e, f.evalExpr(x.X))
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			f.evalExpr(x.X)
			f.evalExpr(x.Y)
			return f.recordExpr(e, 0)
		}
		return f.recordExpr(e, f.evalExpr(x.X)|f.evalExpr(x.Y))
	case *ast.IndexExpr:
		f.evalExpr(x.Index)
		return f.recordExpr(e, f.evalExpr(x.X))
	case *ast.SliceExpr:
		return f.recordExpr(e, f.evalExpr(x.X))
	case *ast.TypeAssertExpr:
		return f.recordExpr(e, f.evalExpr(x.X))
	case *ast.CompositeLit:
		m := uint64(0)
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				vm := f.evalExpr(kv.Value)
				m |= vm
				if key, ok := kv.Key.(*ast.Ident); ok {
					if fv, ok := f.info.Uses[key].(*types.Var); ok && fv.IsField() {
						f.addField(fv, vm)
					}
				}
				continue
			}
			m |= f.evalExpr(elt)
		}
		return f.recordExpr(e, m)
	case *ast.CallExpr:
		rs := f.evalCall(x)
		m := uint64(0)
		for _, r := range rs {
			m |= r
		}
		return f.recordExpr(e, m)
	case *ast.FuncLit:
		// Closure bodies share the enclosing env (captured variables
		// are the same objects); analyze inline.
		f.evalStmt(x.Body, nil)
		return 0
	case *ast.BasicLit:
		return 0
	}
	return 0
}

// resultMasks returns per-result taint for a call expression.
func (f *Flow) evalCall(call *ast.CallExpr) []uint64 {
	fun := ast.Unparen(call.Fun)

	// Type conversion: T(x) carries x's taint.
	if tv, ok := f.info.Types[fun]; ok && tv.IsType() {
		m := uint64(0)
		for _, a := range call.Args {
			m |= f.evalExpr(a)
		}
		return []uint64{m}
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := f.info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				m := uint64(0)
				for _, a := range call.Args {
					m |= f.evalExpr(a)
				}
				return []uint64{m}
			case "copy":
				if len(call.Args) == 2 {
					m := f.evalExpr(call.Args[1])
					// copy duplicates content, not identity: secret
					// bytes travel with it, pool ownership does not.
					if f.cfg.PropagateUnknown {
						f.assignTo(call.Args[0], m)
					} else {
						f.evalExpr(call.Args[0])
					}
				}
				return []uint64{0}
			default:
				for _, a := range call.Args {
					f.evalExpr(a)
				}
				return []uint64{0}
			}
		}
	}

	// Resolve the callee: statically, or through a local binding of a
	// function/method value.
	callee := StaticCallee(f.info, call)
	viaBinding := false
	if callee == nil {
		if id, ok := fun.(*ast.Ident); ok {
			if obj := f.info.Uses[id]; obj != nil {
				callee = f.bindings[obj]
				viaBinding = callee != nil
			}
		}
	}

	// Argument masks, receiver first for method calls.
	var argMasks []uint64
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, found := f.info.Selections[sel]; found && s.Kind() == types.MethodVal {
			argMasks = append(argMasks, f.evalExpr(sel.X))
		}
	}
	for _, a := range call.Args {
		argMasks = append(argMasks, f.evalExpr(a))
	}

	nresults := f.callResults(call)

	if callee != nil && f.cfg.Sanitizer != nil && f.cfg.Sanitizer(callee, call) {
		return make([]uint64, nresults)
	}
	if callee != nil && f.cfg.SourceCall != nil && f.cfg.SourceCall(callee, call) {
		rs := make([]uint64, nresults)
		for i := range rs {
			rs[i] = srcBit
		}
		return rs
	}

	if callee != nil {
		if sum := f.sum[callee]; sum != nil {
			// A method value bound to a variable (f := x.M; f(a))
			// supplies no receiver argument at the call site: shift
			// arguments past the receiver's parameter slot.
			if viaBinding {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
					argMasks = append([]uint64{0}, argMasks...)
				}
			}
			return f.applySummary(callee, sum, argMasks, nresults)
		}
	}

	// Unknown callee: interface dispatch, externals, func values.
	if !f.cfg.PropagateUnknown {
		return make([]uint64, nresults)
	}
	u := uint64(0)
	for _, m := range argMasks {
		u |= m
	}
	rs := make([]uint64, nresults)
	if u == 0 {
		return rs
	}
	if tv, ok := f.info.Types[call]; ok {
		switch t := tv.Type.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if taintableType(t.At(i).Type()) {
					rs[i] = u
				}
			}
		default:
			if nresults == 1 && taintableType(tv.Type) {
				rs[0] = u
			}
		}
	}
	return rs
}

// applySummary maps caller-side argument masks through a callee
// summary, producing per-result masks in the caller's bit space.
func (f *Flow) applySummary(callee *types.Func, sum *FuncSummary, argMasks []uint64, nresults int) []uint64 {
	rs := make([]uint64, nresults)
	for r := 0; r < nresults && r < 64; r++ {
		if sum.SourceResults&(1<<r) != 0 {
			rs[r] |= srcBit
		}
	}
	np := f.nparams[callee]
	sig := callee.Type().(*types.Signature)
	variadic := sig.Variadic()
	for ai, am := range argMasks {
		if am == 0 {
			continue
		}
		pi := ai
		if pi >= np {
			if !variadic || np == 0 {
				continue
			}
			pi = np - 1
		}
		if pi >= len(sum.ParamFlow) {
			continue
		}
		flow := sum.ParamFlow[pi]
		for r := 0; r < nresults && r < 64; r++ {
			if flow&(1<<r) != 0 {
				rs[r] |= am
			}
		}
	}
	return rs
}

func (f *Flow) callResults(call *ast.CallExpr) int {
	tv, ok := f.info.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		return t.Len()
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.Invalid {
		return 0
	}
	// Void calls have no entry type; a non-tuple entry is one result.
	return 1
}

// taintableType reports whether taint survives conservatively into a
// value of type t: byte containers, strings, and interfaces. Bools,
// numbers, and errors do not re-emit secrets.
func taintableType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByteElem(u.Elem())
	case *types.Array:
		return isByteElem(u.Elem())
	case *types.Pointer:
		return taintableType(u.Elem())
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Interface:
		return !isErrorType(t)
	}
	return false
}

// fieldCarries reports whether reading a field of type t can carry
// its container's taint: reference and byte-like types alias or hold
// the underlying material, while scalar numerics and bools are
// aggregates (lengths, counters, gas) that cannot.
func fieldCarries(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsString != 0
	}
	return true
}

func isByteElem(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// ByteLikeType reports whether t is byte-slice/array/string-shaped —
// the carrier types for key material. Exported for analyzer source
// predicates.
func ByteLikeType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByteElem(u.Elem())
	case *types.Array:
		return isByteElem(u.Elem())
	case *types.Pointer:
		return ByteLikeType(u.Elem())
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// --- statements ---------------------------------------------------------

// evalStmt walks one statement, merging taint into the environment.
// fn is the enclosing declared function (nil inside closures); return
// statements feed its summary.
func (f *Flow) evalStmt(s ast.Stmt, fn *types.Func) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		if st == nil {
			return
		}
		for _, inner := range st.List {
			f.evalStmt(inner, fn)
		}
	case *ast.AssignStmt:
		f.evalAssign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						f.assignTo(name, f.evalExpr(vs.Values[i]))
					}
				}
			}
		}
	case *ast.ExprStmt:
		f.evalExpr(st.X)
	case *ast.ReturnStmt:
		f.evalReturn(st, fn)
	case *ast.IfStmt:
		f.evalStmt(st.Init, fn)
		f.evalExpr(st.Cond)
		f.evalStmt(st.Body, fn)
		f.evalStmt(st.Else, fn)
	case *ast.ForStmt:
		f.evalStmt(st.Init, fn)
		f.evalExpr(st.Cond)
		f.evalStmt(st.Post, fn)
		f.evalStmt(st.Body, fn)
	case *ast.RangeStmt:
		m := f.evalExpr(st.X)
		if st.Key != nil {
			f.assignTo(st.Key, m)
		}
		if st.Value != nil {
			f.assignTo(st.Value, m)
		}
		f.evalStmt(st.Body, fn)
	case *ast.SwitchStmt:
		f.evalStmt(st.Init, fn)
		f.evalExpr(st.Tag)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					f.evalExpr(e)
				}
				for _, inner := range cc.Body {
					f.evalStmt(inner, fn)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		f.evalStmt(st.Init, fn)
		// x := y.(type) taints x in every clause.
		var m uint64
		switch a := st.Assign.(type) {
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
					m = f.evalExpr(ta.X)
				}
			}
			if len(a.Lhs) == 1 {
				f.assignTo(a.Lhs[0], m)
			}
		case *ast.ExprStmt:
			if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
				f.evalExpr(ta.X)
			}
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, inner := range cc.Body {
					f.evalStmt(inner, fn)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				f.evalStmt(cc.Comm, fn)
				for _, inner := range cc.Body {
					f.evalStmt(inner, fn)
				}
			}
		}
	case *ast.SendStmt:
		// Channel cells: the channel's root object accumulates the
		// source bit; receives read it back via evalExpr on <-ch.
		m := f.evalExpr(st.Value)
		f.assignTo(st.Chan, m)
	case *ast.GoStmt:
		f.evalExpr(st.Call.Fun)
		f.evalCall(st.Call)
	case *ast.DeferStmt:
		f.evalExpr(st.Call.Fun)
		f.evalCall(st.Call)
	case *ast.LabeledStmt:
		f.evalStmt(st.Stmt, fn)
	case *ast.IncDecStmt:
		f.evalExpr(st.X)
	}
}

func (f *Flow) evalAssign(st *ast.AssignStmt) {
	// Method/function value bindings: f := x.Derive / g := helper.
	if len(st.Lhs) == len(st.Rhs) {
		for i, rhs := range st.Rhs {
			if id, ok := st.Lhs[i].(*ast.Ident); ok {
				var bound *types.Func
				switch r := ast.Unparen(rhs).(type) {
				case *ast.Ident:
					bound, _ = f.info.Uses[r].(*types.Func)
				case *ast.SelectorExpr:
					bound, _ = f.info.Uses[r.Sel].(*types.Func)
				}
				if bound != nil {
					obj := types.Object(f.info.Defs[id])
					if obj == nil {
						obj = f.info.Uses[id]
					}
					if obj != nil && f.bindings[obj] != bound {
						f.bindings[obj] = bound
						f.changed = true
					}
				}
			}
		}
	}

	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value: call, type assertion, map index, receive.
		switch r := ast.Unparen(st.Rhs[0]).(type) {
		case *ast.CallExpr:
			rs := f.evalCall(r)
			m := uint64(0)
			for _, v := range rs {
				m |= v
			}
			f.recordExpr(st.Rhs[0], m)
			for i, lhs := range st.Lhs {
				if i < len(rs) {
					f.assignTo(lhs, rs[i])
				}
			}
		default:
			m := f.evalExpr(st.Rhs[0])
			f.assignTo(st.Lhs[0], m)
			// ok-bools and range keys stay clean.
		}
		return
	}
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		m := f.evalExpr(rhs)
		if st.Tok == token.ADD_ASSIGN || st.Tok == token.AND_ASSIGN ||
			st.Tok == token.OR_ASSIGN || st.Tok == token.XOR_ASSIGN {
			m |= f.evalExpr(st.Lhs[i])
		}
		f.assignTo(st.Lhs[i], m)
	}
}

func (f *Flow) evalReturn(st *ast.ReturnStmt, fn *types.Func) {
	if fn == nil {
		for _, r := range st.Results {
			f.evalExpr(r)
		}
		return
	}
	sum := f.sum[fn]
	if sum == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	var masks []uint64
	if len(st.Results) == 0 {
		// Bare return with named results.
		for i := 0; i < sig.Results().Len(); i++ {
			masks = append(masks, f.obj[sig.Results().At(i)])
		}
	} else if len(st.Results) == 1 && sig.Results().Len() > 1 {
		// return f(...): spread the inner call's results.
		if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
			masks = f.evalCall(call)
		} else {
			m := f.evalExpr(st.Results[0])
			for i := 0; i < sig.Results().Len(); i++ {
				masks = append(masks, m)
			}
		}
	} else {
		for _, r := range st.Results {
			masks = append(masks, f.evalExpr(r))
		}
	}
	for r, m := range masks {
		if r >= 64 {
			break
		}
		if m&srcBit != 0 && sum.SourceResults&(1<<r) == 0 {
			sum.SourceResults |= 1 << r
			f.changed = true
		}
		for p := 0; p < len(sum.ParamFlow) && p < 63; p++ {
			if m&(1<<p) != 0 && sum.ParamFlow[p]&(1<<r) == 0 {
				sum.ParamFlow[p] |= 1 << r
				f.changed = true
			}
		}
	}
}
