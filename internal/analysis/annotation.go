package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// HarDTAPE invariant analyzers share one escape-hatch syntax:
//
//	//hardtape:<directive> <reason>
//
// placed on the flagged line or on the line above it (or on the
// enclosing function's doc comment for function-scoped directives).
// A directive without a reason does NOT suppress — silent waivers are
// exactly the trust-boundary drift the suite exists to stop.

// Directive is one parsed //hardtape: comment.
type Directive struct {
	Name   string // e.g. "oram-direct", "locksafe-ok"
	Reason string
	Line   int
}

// directivePrefix is the comment marker shared by every analyzer.
const directivePrefix = "//hardtape:"

// Annotations indexes every //hardtape: directive in one file by the
// line it governs: the comment's own line and, for a comment that
// stands alone on its line, the line below it.
type Annotations struct {
	byLine map[int][]Directive
}

// ParseAnnotations collects directives from one file.
func ParseAnnotations(fset *token.FileSet, file *ast.File) *Annotations {
	a := &Annotations{byLine: make(map[int][]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			d := Directive{Name: name, Reason: strings.TrimSpace(reason), Line: pos.Line}
			// A directive governs its own line (trailing comment) and
			// the line below it (stand-alone comment).
			a.byLine[pos.Line] = append(a.byLine[pos.Line], d)
			a.byLine[pos.Line+1] = append(a.byLine[pos.Line+1], d)
		}
	}
	return a
}

// FileDirective is one //hardtape: directive with its resolved
// position, as collected for the lint report: every waiver in the
// tree is a reviewable trust decision, so the report artifact lists
// them alongside (the ideally empty set of) findings.
type FileDirective struct {
	Directive
	Position token.Position
}

// AllDirectives collects every //hardtape: directive in file.
func AllDirectives(fset *token.FileSet, file *ast.File) []FileDirective {
	var out []FileDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			out = append(out, FileDirective{
				Directive: Directive{Name: name, Reason: strings.TrimSpace(reason), Line: pos.Line},
				Position:  pos,
			})
		}
	}
	return out
}

// Allowed reports whether a directive named name with a non-empty
// reason governs the given position.
func (a *Annotations) Allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, d := range a.byLine[line] {
		if d.Name == name && d.Reason != "" {
			return true
		}
	}
	return false
}

// FuncAllowed reports whether the enclosing function's doc comment
// (or any line inside fn up to pos) carries the directive. Used for
// function-scoped waivers such as locksafe-ok on a method whose whole
// purpose is serializing a client.
func FuncAllowed(fset *token.FileSet, fn *ast.FuncDecl, name string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		if !strings.HasPrefix(text, directivePrefix) {
			continue
		}
		rest := strings.TrimPrefix(text, directivePrefix)
		dname, reason, _ := strings.Cut(rest, " ")
		if dname == name && strings.TrimSpace(reason) != "" {
			return true
		}
	}
	return false
}
