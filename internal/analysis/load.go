package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// ExportImporter builds a types.Importer that resolves import paths
// through compiler export data files — the same mechanism the gc
// toolchain and go vet use. importMap translates source-level import
// paths to canonical package paths (identity when nil); exportFiles
// maps canonical paths to .a/export files on disk.
func ExportImporter(fset *token.FileSet, importMap, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// CheckFiles parses and type-checks one package from its file list.
// Imports resolve through imp. Parse or type errors fail the load:
// analyzing a half-typed package yields nonsense diagnostics.
func CheckFiles(importPath string, fset *token.FileSet, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}
