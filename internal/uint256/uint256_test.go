package uint256

import (
	"math/big"
	"testing"
	"testing/quick"
)

var _twoTo256 = new(big.Int).Lsh(big.NewInt(1), 256)

func mod256(b *big.Int) *big.Int {
	return new(big.Int).Mod(b, _twoTo256)
}

// limbs lets testing/quick generate arbitrary 256-bit values.
type limbs struct {
	A, B, C, D uint64
}

func (l limbs) int() *Int {
	return &Int{l.A, l.B, l.C, l.D}
}

func TestBasicRoundTrip(t *testing.T) {
	tests := []string{
		"0x0", "0x1", "0xff", "0x100",
		"0xffffffffffffffff",
		"0x10000000000000000",
		"0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
		"0xdeadbeefcafebabe0123456789abcdef00000000000000000000000000000001",
	}
	for _, s := range tests {
		z, err := FromHex(s)
		if err != nil {
			t.Fatalf("FromHex(%q): %v", s, err)
		}
		b, ok := new(big.Int).SetString(s[2:], 16)
		if !ok {
			t.Fatalf("big parse %q", s)
		}
		if z.ToBig().Cmp(b) != 0 {
			t.Errorf("round trip %q: got %s want %s", s, z.ToBig(), b)
		}
	}
}

func TestFromHexErrors(t *testing.T) {
	for _, s := range []string{"", "123", "0x", "0xzz", "0x" + string(make([]byte, 100))} {
		if _, err := FromHex(s); err == nil {
			t.Errorf("FromHex(%q): expected error", s)
		}
	}
}

func TestSetBytes(t *testing.T) {
	z := new(Int).SetBytes([]byte{0x01, 0x02})
	if z.Uint64() != 0x0102 {
		t.Fatalf("SetBytes: got %x", z.Uint64())
	}
	// Longer than 32 bytes keeps low-order 32.
	buf := make([]byte, 40)
	buf[7] = 0xaa // dropped
	buf[39] = 0x05
	z.SetBytes(buf)
	if !z.Eq(NewInt(5)) {
		t.Fatalf("SetBytes long: got %s", z)
	}
}

func TestBytes32(t *testing.T) {
	z := MustFromHex("0x0102030405")
	b := z.Bytes32()
	if b[31] != 0x05 || b[27] != 0x01 || b[0] != 0 {
		t.Fatalf("Bytes32: %x", b)
	}
	if got := z.Bytes(); len(got) != 5 || got[0] != 0x01 {
		t.Fatalf("Bytes: %x", got)
	}
}

func TestSignExtendCases(t *testing.T) {
	tests := []struct {
		back, in, want string
	}{
		{"0x0", "0xff", "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"},
		{"0x0", "0x7f", "0x7f"},
		{"0x1", "0x8000", "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff8000"},
		{"0x1", "0x7fff", "0x7fff"},
		{"0x1f", "0xff", "0xff"},
		{"0x20", "0xff", "0xff"},
	}
	for _, tt := range tests {
		back := MustFromHex(tt.back)
		in := MustFromHex(tt.in)
		want := MustFromHex(tt.want)
		got := new(Int).SignExtend(back, in)
		if !got.Eq(want) {
			t.Errorf("SignExtend(%s, %s) = %s, want %s", tt.back, tt.in, got.Hex(), want.Hex())
		}
	}
}

func TestByteOp(t *testing.T) {
	x := MustFromHex("0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
	for i := uint64(0); i < 32; i++ {
		got := new(Int).Byte(NewInt(i), x)
		if got.Uint64() != i+1 {
			t.Errorf("Byte(%d) = %d, want %d", i, got.Uint64(), i+1)
		}
	}
	if got := new(Int).Byte(NewInt(32), x); !got.IsZero() {
		t.Errorf("Byte(32) = %s, want 0", got)
	}
	if got := new(Int).Byte(MustFromHex("0x10000000000000000"), x); !got.IsZero() {
		t.Errorf("Byte(2^64) = %s, want 0", got)
	}
}

func TestDivModEdgeCases(t *testing.T) {
	x := MustFromHex("0xdeadbeef")
	zero := new(Int)
	if got := new(Int).Div(x, zero); !got.IsZero() {
		t.Errorf("x/0 = %s, want 0", got)
	}
	if got := new(Int).Mod(x, zero); !got.IsZero() {
		t.Errorf("x%%0 = %s, want 0", got)
	}
	if got := new(Int).SDiv(x, zero); !got.IsZero() {
		t.Errorf("sdiv(x,0) = %s, want 0", got)
	}
	if got := new(Int).SMod(x, zero); !got.IsZero() {
		t.Errorf("smod(x,0) = %s, want 0", got)
	}
	// EVM edge: MIN_INT256 / -1 == MIN_INT256 (overflow wraps).
	minInt := MustFromHex("0x8000000000000000000000000000000000000000000000000000000000000000")
	negOne := new(Int).Not(new(Int))
	if got := new(Int).SDiv(minInt, negOne); !got.Eq(minInt) {
		t.Errorf("MIN/-1 = %s, want MIN", got.Hex())
	}
	if got := new(Int).AddMod(x, x, zero); !got.IsZero() {
		t.Errorf("addmod(_,_,0) = %s, want 0", got)
	}
	if got := new(Int).MulMod(x, x, zero); !got.IsZero() {
		t.Errorf("mulmod(_,_,0) = %s, want 0", got)
	}
}

func TestSignedComparisons(t *testing.T) {
	negOne := new(Int).Not(new(Int))
	one := NewInt(1)
	if !negOne.Slt(one) {
		t.Error("-1 slt 1 should be true")
	}
	if negOne.Sgt(one) {
		t.Error("-1 sgt 1 should be false")
	}
	if !one.Sgt(negOne) {
		t.Error("1 sgt -1 should be true")
	}
	negTwo := new(Int).Sub(negOne, one)
	if !negTwo.Slt(negOne) {
		t.Error("-2 slt -1 should be true")
	}
	if negOne.Sign() != -1 || one.Sign() != 1 || new(Int).Sign() != 0 {
		t.Error("Sign values wrong")
	}
}

// Property tests against math/big.

func TestQuickAddSubMul(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(a, b limbs) bool {
		x, y := a.int(), b.int()
		xb, yb := x.ToBig(), y.ToBig()
		if new(Int).Add(x, y).ToBig().Cmp(mod256(new(big.Int).Add(xb, yb))) != 0 {
			return false
		}
		if new(Int).Sub(x, y).ToBig().Cmp(mod256(new(big.Int).Sub(xb, yb))) != 0 {
			return false
		}
		return new(Int).Mul(x, y).ToBig().Cmp(mod256(new(big.Int).Mul(xb, yb))) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDivMod(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(a, b limbs) bool {
		x, y := a.int(), b.int()
		if y.IsZero() {
			return new(Int).Div(x, y).IsZero() && new(Int).Mod(x, y).IsZero()
		}
		xb, yb := x.ToBig(), y.ToBig()
		q := new(Int).Div(x, y)
		r := new(Int).Mod(x, y)
		return q.ToBig().Cmp(new(big.Int).Div(xb, yb)) == 0 &&
			r.ToBig().Cmp(new(big.Int).Mod(xb, yb)) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDivModSmallDivisor(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(a limbs, d uint64) bool {
		if d == 0 {
			return true
		}
		x, y := a.int(), NewInt(d)
		q := new(Int).Div(x, y)
		r := new(Int).Mod(x, y)
		xb := x.ToBig()
		return q.ToBig().Cmp(new(big.Int).Div(xb, y.ToBig())) == 0 &&
			r.ToBig().Cmp(new(big.Int).Mod(xb, y.ToBig())) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAddModMulMod(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}
	f := func(a, b, c limbs) bool {
		x, y, m := a.int(), b.int(), c.int()
		if m.IsZero() {
			return true
		}
		xb, yb, mb := x.ToBig(), y.ToBig(), m.ToBig()
		am := new(Int).AddMod(x, y, m)
		wantAdd := new(big.Int).Mod(new(big.Int).Add(xb, yb), mb)
		if am.ToBig().Cmp(wantAdd) != 0 {
			return false
		}
		mm := new(Int).MulMod(x, y, m)
		wantMul := new(big.Int).Mod(new(big.Int).Mul(xb, yb), mb)
		return mm.ToBig().Cmp(wantMul) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickExp(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(a limbs, e uint16) bool {
		base := a.int()
		exp := NewInt(uint64(e))
		got := new(Int).Exp(base, exp)
		want := new(big.Int).Exp(base.ToBig(), exp.ToBig(), _twoTo256)
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickShifts(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(a limbs, nRaw uint16) bool {
		x := a.int()
		n := uint(nRaw) % 300
		xb := x.ToBig()
		if new(Int).Lsh(x, n).ToBig().Cmp(mod256(new(big.Int).Lsh(xb, n))) != 0 {
			return false
		}
		if new(Int).Rsh(x, n).ToBig().Cmp(new(big.Int).Rsh(xb, n)) != 0 {
			return false
		}
		// Arithmetic shift: interpret as signed.
		signed := xb
		if x.Sign() < 0 {
			signed = new(big.Int).Sub(xb, _twoTo256)
		}
		want := mod256(new(big.Int).Rsh(signed, n))
		return new(Int).SRsh(x, n).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSignedDivMod(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	toSigned := func(x *Int) *big.Int {
		b := x.ToBig()
		if x.Sign() < 0 {
			b.Sub(b, _twoTo256)
		}
		return b
	}
	f := func(a, b limbs) bool {
		x, y := a.int(), b.int()
		if y.IsZero() {
			return true
		}
		xs, ys := toSigned(x), toSigned(y)
		q := new(Int).SDiv(x, y)
		r := new(Int).SMod(x, y)
		wantQ := mod256(new(big.Int).Quo(xs, ys))
		wantR := mod256(new(big.Int).Rem(xs, ys))
		return q.ToBig().Cmp(wantQ) == 0 && r.ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBitwise(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}
	f := func(a, b limbs) bool {
		x, y := a.int(), b.int()
		xb, yb := x.ToBig(), y.ToBig()
		return new(Int).And(x, y).ToBig().Cmp(new(big.Int).And(xb, yb)) == 0 &&
			new(Int).Or(x, y).ToBig().Cmp(new(big.Int).Or(xb, yb)) == 0 &&
			new(Int).Xor(x, y).ToBig().Cmp(new(big.Int).Xor(xb, yb)) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripBytes(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}
	f := func(a limbs) bool {
		x := a.int()
		b := x.Bytes32()
		y := new(Int).SetBytes(b[:])
		return x.Eq(y) && x.ToBig().Cmp(y.ToBig()) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSignExtend(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}
	f := func(a limbs, backRaw uint8) bool {
		x := a.int()
		back := uint64(backRaw) % 33
		got := new(Int).SignExtend(NewInt(back), x)
		if back >= 31 {
			return got.Eq(x)
		}
		// Reference: truncate to (back+1) bytes, sign extend via big.Int.
		nBytes := int(back) + 1
		full := x.Bytes32()
		trunc := new(big.Int).SetBytes(full[32-nBytes:])
		signBit := new(big.Int).Lsh(big.NewInt(1), uint(nBytes*8-1))
		if trunc.Cmp(signBit) >= 0 {
			trunc.Sub(trunc, new(big.Int).Lsh(big.NewInt(1), uint(nBytes*8)))
		}
		want := mod256(trunc)
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCmpAndOrdering(t *testing.T) {
	a := MustFromHex("0x1")
	b := MustFromHex("0x10000000000000000") // 2^64
	if !a.Lt(b) || b.Lt(a) || a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("ordering broken across limb boundaries")
	}
}

func TestOverflowReporting(t *testing.T) {
	max := new(Int).Not(new(Int))
	one := NewInt(1)
	if _, overflow := new(Int).AddOverflow(max, one); !overflow {
		t.Error("AddOverflow(max, 1) should overflow")
	}
	if _, overflow := new(Int).AddOverflow(one, one); overflow {
		t.Error("AddOverflow(1, 1) should not overflow")
	}
	if _, underflow := new(Int).SubOverflow(new(Int), one); !underflow {
		t.Error("SubOverflow(0, 1) should underflow")
	}
	big3 := new(big.Int).Lsh(big.NewInt(1), 300)
	if _, overflow := FromBig(big3); !overflow {
		t.Error("FromBig(2^300) should report overflow")
	}
}

func TestStringersAndLens(t *testing.T) {
	z := MustFromHex("0xff00")
	if z.String() != "65280" {
		t.Errorf("String = %q", z.String())
	}
	if z.Hex() != "0xff00" {
		t.Errorf("Hex = %q", z.Hex())
	}
	if new(Int).Hex() != "0x0" {
		t.Errorf("zero Hex = %q", new(Int).Hex())
	}
	if z.BitLen() != 16 || z.ByteLen() != 2 {
		t.Errorf("BitLen/ByteLen = %d/%d", z.BitLen(), z.ByteLen())
	}
	if new(Int).BitLen() != 0 {
		t.Error("zero BitLen should be 0")
	}
}

func BenchmarkAdd(b *testing.B) {
	x := MustFromHex("0xdeadbeefcafebabe0123456789abcdef00000000000000000000000000000001")
	y := MustFromHex("0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
	z := new(Int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Add(x, y)
	}
}

func BenchmarkMul(b *testing.B) {
	x := MustFromHex("0xdeadbeefcafebabe0123456789abcdef00000000000000000000000000000001")
	y := MustFromHex("0x123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0")
	z := new(Int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Mul(x, y)
	}
}

func BenchmarkDiv(b *testing.B) {
	x := MustFromHex("0xdeadbeefcafebabe0123456789abcdef00000000000000000000000000000001")
	y := MustFromHex("0x123456789abcdef0123456789")
	z := new(Int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Div(x, y)
	}
}
