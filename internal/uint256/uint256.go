// Package uint256 implements fixed-size 256-bit unsigned integer
// arithmetic as required by the EVM's 256-bit stack machine.
//
// An Int is four 64-bit limbs in little-endian order. All arithmetic is
// modulo 2^256 unless documented otherwise. The zero value is usable and
// represents 0.
package uint256

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"strings"
)

// Int is a 256-bit unsigned integer: limbs in little-endian order, so
// z[0] is the least-significant 64 bits.
type Int [4]uint64

// Common errors returned by parsing functions.
var (
	ErrSyntax   = errors.New("uint256: invalid syntax")
	ErrOverflow = errors.New("uint256: value overflows 256 bits")
)

// NewInt returns a new Int set to the value of x.
func NewInt(x uint64) *Int {
	return &Int{x, 0, 0, 0}
}

// FromBig converts a big.Int to an Int. It reports overflow via the
// second return value; the value is truncated modulo 2^256 on overflow.
// Negative inputs are converted from their two's-complement
// representation (matching EVM semantics for signed values).
func FromBig(b *big.Int) (*Int, bool) {
	z := new(Int)
	overflow := z.SetFromBig(b)
	return z, overflow
}

// MustFromBig is FromBig, panicking on overflow. Intended for test and
// constant-construction contexts only.
func MustFromBig(b *big.Int) *Int {
	z, overflow := FromBig(b)
	if overflow {
		panic("uint256: MustFromBig overflow")
	}
	return z
}

// FromHex parses a 0x-prefixed hexadecimal string.
func FromHex(s string) (*Int, error) {
	if !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "0X") {
		return nil, fmt.Errorf("%w: missing 0x prefix in %q", ErrSyntax, s)
	}
	h := s[2:]
	if len(h) == 0 || len(h) > 64 {
		return nil, fmt.Errorf("%w: hex length %d", ErrSyntax, len(h))
	}
	if len(h)%2 == 1 {
		h = "0" + h
	}
	raw, err := hex.DecodeString(h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	return new(Int).SetBytes(raw), nil
}

// MustFromHex is FromHex, panicking on error.
func MustFromHex(s string) *Int {
	z, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return z
}

// SetFromBig sets z from b (two's complement for negatives) and reports
// whether b overflowed 256 bits.
func (z *Int) SetFromBig(b *big.Int) bool {
	z.Clear()
	words := b.Bits()
	overflow := false
	switch bits.UintSize {
	case 64:
		if len(words) > 4 {
			words = words[:4]
			overflow = true
		}
		for i, w := range words {
			z[i] = uint64(w)
		}
	case 32:
		if len(words) > 8 {
			words = words[:8]
			overflow = true
		}
		for i, w := range words {
			z[i/2] |= uint64(w) << (32 * uint(i%2))
		}
	}
	if b.Sign() < 0 {
		z.Neg(z)
	}
	return overflow
}

// ToBig returns the value as a new big.Int.
func (z *Int) ToBig() *big.Int {
	b := new(big.Int)
	buf := z.Bytes32()
	return b.SetBytes(buf[:])
}

// Clear sets z to 0 and returns z.
func (z *Int) Clear() *Int {
	z[0], z[1], z[2], z[3] = 0, 0, 0, 0
	return z
}

// Set sets z = x and returns z.
func (z *Int) Set(x *Int) *Int {
	*z = *x
	return z
}

// SetUint64 sets z to the value of x and returns z.
func (z *Int) SetUint64(x uint64) *Int {
	z[0], z[1], z[2], z[3] = x, 0, 0, 0
	return z
}

// SetOne sets z to 1 and returns z.
func (z *Int) SetOne() *Int {
	return z.SetUint64(1)
}

// Clone returns a copy of z.
func (z *Int) Clone() *Int {
	c := *z
	return &c
}

// IsZero reports whether z == 0.
func (z *Int) IsZero() bool {
	return (z[0] | z[1] | z[2] | z[3]) == 0
}

// IsUint64 reports whether z fits in a uint64.
func (z *Int) IsUint64() bool {
	return (z[1] | z[2] | z[3]) == 0
}

// Uint64 returns the low 64 bits of z.
func (z *Int) Uint64() uint64 {
	return z[0]
}

// Uint64WithOverflow returns the low 64 bits and whether z overflows
// a uint64.
func (z *Int) Uint64WithOverflow() (uint64, bool) {
	return z[0], !z.IsUint64()
}

// Eq reports whether z == x.
func (z *Int) Eq(x *Int) bool {
	return *z == *x
}

// Cmp compares z and x, returning -1, 0 or +1.
func (z *Int) Cmp(x *Int) int {
	for i := 3; i >= 0; i-- {
		switch {
		case z[i] < x[i]:
			return -1
		case z[i] > x[i]:
			return 1
		}
	}
	return 0
}

// Lt reports whether z < x (unsigned).
func (z *Int) Lt(x *Int) bool { return z.Cmp(x) < 0 }

// Gt reports whether z > x (unsigned).
func (z *Int) Gt(x *Int) bool { return z.Cmp(x) > 0 }

// Sign returns the sign of z interpreted as a two's-complement signed
// 256-bit integer: -1, 0 or +1.
func (z *Int) Sign() int {
	if z.IsZero() {
		return 0
	}
	if z[3]>>63 == 1 {
		return -1
	}
	return 1
}

// Slt reports whether z < x in signed (two's complement) comparison.
func (z *Int) Slt(x *Int) bool {
	zs, xs := z.Sign(), x.Sign()
	switch {
	case zs >= 0 && xs < 0:
		return false
	case zs < 0 && xs >= 0:
		return true
	default:
		return z.Cmp(x) < 0
	}
}

// Sgt reports whether z > x in signed comparison.
func (z *Int) Sgt(x *Int) bool {
	zs, xs := z.Sign(), x.Sign()
	switch {
	case zs >= 0 && xs < 0:
		return true
	case zs < 0 && xs >= 0:
		return false
	default:
		return z.Cmp(x) > 0
	}
}

// BitLen returns the number of bits required to represent z.
func (z *Int) BitLen() int {
	for i := 3; i >= 0; i-- {
		if z[i] != 0 {
			return 64*i + bits.Len64(z[i])
		}
	}
	return 0
}

// ByteLen returns the number of bytes required to represent z.
func (z *Int) ByteLen() int {
	return (z.BitLen() + 7) / 8
}

// Add sets z = x + y (mod 2^256) and returns z.
func (z *Int) Add(x, y *Int) *Int {
	var carry uint64
	z[0], carry = bits.Add64(x[0], y[0], 0)
	z[1], carry = bits.Add64(x[1], y[1], carry)
	z[2], carry = bits.Add64(x[2], y[2], carry)
	z[3], _ = bits.Add64(x[3], y[3], carry)
	return z
}

// AddOverflow sets z = x + y and reports whether the addition
// overflowed 2^256.
func (z *Int) AddOverflow(x, y *Int) (*Int, bool) {
	var carry uint64
	z[0], carry = bits.Add64(x[0], y[0], 0)
	z[1], carry = bits.Add64(x[1], y[1], carry)
	z[2], carry = bits.Add64(x[2], y[2], carry)
	z[3], carry = bits.Add64(x[3], y[3], carry)
	return z, carry != 0
}

// Sub sets z = x - y (mod 2^256) and returns z.
func (z *Int) Sub(x, y *Int) *Int {
	var borrow uint64
	z[0], borrow = bits.Sub64(x[0], y[0], 0)
	z[1], borrow = bits.Sub64(x[1], y[1], borrow)
	z[2], borrow = bits.Sub64(x[2], y[2], borrow)
	z[3], _ = bits.Sub64(x[3], y[3], borrow)
	return z
}

// SubOverflow sets z = x - y and reports whether the subtraction
// underflowed.
func (z *Int) SubOverflow(x, y *Int) (*Int, bool) {
	var borrow uint64
	z[0], borrow = bits.Sub64(x[0], y[0], 0)
	z[1], borrow = bits.Sub64(x[1], y[1], borrow)
	z[2], borrow = bits.Sub64(x[2], y[2], borrow)
	z[3], borrow = bits.Sub64(x[3], y[3], borrow)
	return z, borrow != 0
}

// Neg sets z = -x (mod 2^256) and returns z.
func (z *Int) Neg(x *Int) *Int {
	return z.Sub(new(Int), x)
}

// Mul sets z = x * y (mod 2^256) and returns z.
func (z *Int) Mul(x, y *Int) *Int {
	var res Int
	var carry uint64

	carry, res[0] = bits.Mul64(x[0], y[0])
	carry, res[1] = umulHop(carry, x[1], y[0])
	carry, res[2] = umulHop(carry, x[2], y[0])
	res[3] = carry + x[3]*y[0]

	carry, res[1] = umulHop(res[1], x[0], y[1])
	carry, res[2] = umulStep(res[2], x[1], y[1], carry)
	res[3] += x[2]*y[1] + carry

	carry, res[2] = umulHop(res[2], x[0], y[2])
	res[3] += x[1]*y[2] + carry

	res[3] += x[0] * y[3]

	return z.Set(&res)
}

// umulHop computes hi * 2^64 + lo = z + (x * y).
func umulHop(z, x, y uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(x, y)
	lo, carry := bits.Add64(lo, z, 0)
	hi += carry
	return hi, lo
}

// umulStep computes hi * 2^64 + lo = z + (x * y) + carry.
func umulStep(z, x, y, carry uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(x, y)
	lo, c := bits.Add64(lo, carry, 0)
	hi += c
	lo, c = bits.Add64(lo, z, 0)
	hi += c
	return hi, lo
}

// umul computes the full 512-bit product of x and y as 8 limbs.
func umul(x, y *Int) [8]uint64 {
	var res [8]uint64
	var carry, carry4, carry5, carry6 uint64
	var res1, res2, res3, res4, res5 uint64

	carry, res[0] = bits.Mul64(x[0], y[0])
	carry, res1 = umulHop(carry, x[1], y[0])
	carry, res2 = umulHop(carry, x[2], y[0])
	carry4, res3 = umulHop(carry, x[3], y[0])

	carry, res[1] = umulHop(res1, x[0], y[1])
	carry, res2 = umulStep(res2, x[1], y[1], carry)
	carry, res3 = umulStep(res3, x[2], y[1], carry)
	carry5, res4 = umulStep(carry4, x[3], y[1], carry)

	carry, res[2] = umulHop(res2, x[0], y[2])
	carry, res3 = umulStep(res3, x[1], y[2], carry)
	carry, res4 = umulStep(res4, x[2], y[2], carry)
	carry6, res5 = umulStep(carry5, x[3], y[2], carry)

	carry, res[3] = umulHop(res3, x[0], y[3])
	carry, res[4] = umulStep(res4, x[1], y[3], carry)
	carry, res[5] = umulStep(res5, x[2], y[3], carry)
	res[7], res[6] = umulStep(carry6, x[3], y[3], carry)

	return res
}

// Div sets z = x / y (integer division), with the EVM convention that
// division by zero yields 0. Returns z.
func (z *Int) Div(x, y *Int) *Int {
	if y.IsZero() || y.Gt(x) {
		return z.Clear()
	}
	if x.Eq(y) {
		return z.SetOne()
	}
	if x.IsUint64() {
		return z.SetUint64(x.Uint64() / y.Uint64())
	}
	var quot Int
	udivrem(quot[:], x[:], y)
	return z.Set(&quot)
}

// Mod sets z = x % y, with x % 0 == 0, and returns z.
func (z *Int) Mod(x, y *Int) *Int {
	if y.IsZero() || x.Eq(y) {
		return z.Clear()
	}
	if x.Lt(y) {
		return z.Set(x)
	}
	if x.IsUint64() {
		return z.SetUint64(x.Uint64() % y.Uint64())
	}
	var quot Int
	*z = udivrem(quot[:], x[:], y)
	return z
}

// DivMod sets z = x / y and m = x % y, returning (z, m). It treats
// division by zero as yielding (0, 0).
func (z *Int) DivMod(x, y, m *Int) (*Int, *Int) {
	if y.IsZero() {
		return z.Clear(), m.Clear()
	}
	var quot Int
	*m = udivrem(quot[:], x[:], y)
	*z = quot
	return z, m
}

// SDiv sets z = x / y for signed (two's complement) values, truncating
// toward zero, with the EVM convention x / 0 == 0. Returns z.
func (z *Int) SDiv(n, d *Int) *Int {
	if n.Sign() > 0 {
		if d.Sign() > 0 {
			return z.Div(n, d)
		}
		var dNeg Int
		dNeg.Neg(d)
		z.Div(n, &dNeg)
		return z.Neg(z)
	}
	var nNeg Int
	nNeg.Neg(n)
	if d.Sign() < 0 {
		var dNeg Int
		dNeg.Neg(d)
		return z.Div(&nNeg, &dNeg)
	}
	z.Div(&nNeg, d)
	return z.Neg(z)
}

// SMod sets z = x % y for signed values (sign follows the dividend),
// with x % 0 == 0. Returns z.
func (z *Int) SMod(x, y *Int) *Int {
	ys := y.Sign()
	xs := x.Sign()

	var xAbs, yAbs Int
	xAbs.Set(x)
	if xs < 0 {
		xAbs.Neg(x)
	}
	yAbs.Set(y)
	if ys < 0 {
		yAbs.Neg(y)
	}
	z.Mod(&xAbs, &yAbs)
	if xs < 0 {
		z.Neg(z)
	}
	return z
}

// AddMod sets z = (x + y) % m, with the convention that m == 0 yields 0.
func (z *Int) AddMod(x, y, m *Int) *Int {
	if m.IsZero() {
		return z.Clear()
	}
	var sum Int
	_, overflow := sum.AddOverflow(x, y)
	if !overflow {
		return z.Mod(&sum, m)
	}
	// Reduce using the 320-bit value [1, sum].
	num := [5]uint64{sum[0], sum[1], sum[2], sum[3], 1}
	var quot [5]uint64
	rem := udivrem(quot[:], num[:], m)
	return z.Set(&rem)
}

// MulMod sets z = (x * y) % m, with m == 0 yielding 0.
func (z *Int) MulMod(x, y, m *Int) *Int {
	if m.IsZero() {
		return z.Clear()
	}
	if x.IsZero() || y.IsZero() {
		return z.Clear()
	}
	p := umul(x, y)
	if (p[4] | p[5] | p[6] | p[7]) == 0 {
		var prod Int
		copy(prod[:], p[:4])
		return z.Mod(&prod, m)
	}
	var quot [8]uint64
	rem := udivrem(quot[:], p[:], m)
	return z.Set(&rem)
}

// Exp sets z = base^exponent (mod 2^256) by square-and-multiply.
func (z *Int) Exp(base, exponent *Int) *Int {
	res := NewInt(1)
	multiplier := base.Clone()
	expBitLen := exponent.BitLen()

	bit := 0
	for word := 0; word < 4 && bit < expBitLen; word++ {
		e := exponent[word]
		for i := 0; i < 64 && bit < expBitLen; i, bit = i+1, bit+1 {
			if e&1 == 1 {
				res.Mul(res, multiplier)
			}
			multiplier.Mul(multiplier, multiplier)
			e >>= 1
		}
	}
	return z.Set(res)
}

// SignExtend implements the EVM SIGNEXTEND operation: extend the sign
// of the value in x considered as a (back+1)-byte signed integer.
func (z *Int) SignExtend(back, x *Int) *Int {
	if back.Cmp(NewInt(31)) >= 0 {
		return z.Set(x)
	}
	bitPos := uint(back.Uint64()*8 + 7)
	word := bitPos / 64
	bitInWord := bitPos % 64
	signSet := x[word]&(1<<bitInWord) != 0
	z.Set(x)
	if signSet {
		// Set all higher bits.
		z[word] |= ^uint64(0) << bitInWord
		for i := word + 1; i < 4; i++ {
			z[i] = ^uint64(0)
		}
	} else {
		z[word] &= ^(^uint64(0) << bitInWord) | (1<<bitInWord - 1)
		z[word] &= (uint64(1) << (bitInWord + 1)) - 1
		for i := word + 1; i < 4; i++ {
			z[i] = 0
		}
	}
	return z
}

// Byte implements the EVM BYTE operation: z = the n'th byte of x, where
// byte 0 is the most significant. Out-of-range n yields 0.
// It sets z from x in place and returns z.
func (z *Int) Byte(n, x *Int) *Int {
	if !n.IsUint64() || n.Uint64() >= 32 {
		return z.Clear()
	}
	idx := n.Uint64()
	word := 3 - idx/8
	shift := (7 - idx%8) * 8
	return z.SetUint64((x[word] >> shift) & 0xff)
}

// And sets z = x & y and returns z.
func (z *Int) And(x, y *Int) *Int {
	z[0], z[1], z[2], z[3] = x[0]&y[0], x[1]&y[1], x[2]&y[2], x[3]&y[3]
	return z
}

// Or sets z = x | y and returns z.
func (z *Int) Or(x, y *Int) *Int {
	z[0], z[1], z[2], z[3] = x[0]|y[0], x[1]|y[1], x[2]|y[2], x[3]|y[3]
	return z
}

// Xor sets z = x ^ y and returns z.
func (z *Int) Xor(x, y *Int) *Int {
	z[0], z[1], z[2], z[3] = x[0]^y[0], x[1]^y[1], x[2]^y[2], x[3]^y[3]
	return z
}

// Not sets z = ^x and returns z.
func (z *Int) Not(x *Int) *Int {
	z[0], z[1], z[2], z[3] = ^x[0], ^x[1], ^x[2], ^x[3]
	return z
}

// Lsh sets z = x << n and returns z.
func (z *Int) Lsh(x *Int, n uint) *Int {
	if n >= 256 {
		return z.Clear()
	}
	z.Set(x)
	for ; n >= 64; n -= 64 {
		z[3], z[2], z[1], z[0] = z[2], z[1], z[0], 0
	}
	if n == 0 {
		return z
	}
	z[3] = z[3]<<n | z[2]>>(64-n)
	z[2] = z[2]<<n | z[1]>>(64-n)
	z[1] = z[1]<<n | z[0]>>(64-n)
	z[0] <<= n
	return z
}

// Rsh sets z = x >> n (logical shift) and returns z.
func (z *Int) Rsh(x *Int, n uint) *Int {
	if n >= 256 {
		return z.Clear()
	}
	z.Set(x)
	for ; n >= 64; n -= 64 {
		z[0], z[1], z[2], z[3] = z[1], z[2], z[3], 0
	}
	if n == 0 {
		return z
	}
	z[0] = z[0]>>n | z[1]<<(64-n)
	z[1] = z[1]>>n | z[2]<<(64-n)
	z[2] = z[2]>>n | z[3]<<(64-n)
	z[3] >>= n
	return z
}

// SRsh sets z = x >> n with sign extension (arithmetic shift) and
// returns z.
func (z *Int) SRsh(x *Int, n uint) *Int {
	if x.Sign() >= 0 {
		return z.Rsh(x, n)
	}
	if n >= 256 {
		return z.Not(new(Int)) // all ones
	}
	z.Rsh(x, n)
	// Fill vacated high bits with ones.
	var mask Int
	mask.Not(&mask)        // all ones
	mask.Lsh(&mask, 256-n) // ones in the top n bits
	return z.Or(z, &mask)
}

// SetBytes interprets buf as a big-endian unsigned integer and sets z.
// Inputs longer than 32 bytes keep only the low-order 32 bytes.
func (z *Int) SetBytes(buf []byte) *Int {
	if len(buf) > 32 {
		buf = buf[len(buf)-32:]
	}
	z.Clear()
	for i := 0; i < len(buf); i++ {
		byteIdx := len(buf) - 1 - i // position counted from the least-significant byte
		z[byteIdx/8] |= uint64(buf[i]) << (8 * uint(byteIdx%8))
	}
	return z
}

// Bytes32 returns z as a 32-byte big-endian array.
func (z *Int) Bytes32() [32]byte {
	var b [32]byte
	for i := 0; i < 32; i++ {
		b[31-i] = byte(z[i/8] >> (8 * uint(i%8)))
	}
	return b
}

// Bytes returns the minimal big-endian byte representation of z
// (empty slice for zero).
func (z *Int) Bytes() []byte {
	full := z.Bytes32()
	n := z.ByteLen()
	return full[32-n:]
}

// Hex returns a 0x-prefixed minimal hexadecimal representation.
func (z *Int) Hex() string {
	if z.IsZero() {
		return "0x0"
	}
	s := hex.EncodeToString(z.Bytes())
	s = strings.TrimLeft(s, "0")
	return "0x" + s
}

// String implements fmt.Stringer using decimal notation.
func (z *Int) String() string {
	return z.ToBig().String()
}

// udivrem divides u by d, writing the quotient into quot and returning
// the remainder. u may have more limbs than d (which is 4 limbs).
// It implements Knuth's Algorithm D with 64-bit digits.
func udivrem(quot, u []uint64, d *Int) (rem Int) {
	var dLen int
	for i := 3; i >= 0; i-- {
		if d[i] != 0 {
			dLen = i + 1
			break
		}
	}

	shift := uint(bits.LeadingZeros64(d[dLen-1]))

	var dnStorage [4]uint64
	dn := dnStorage[:dLen]
	for i := dLen - 1; i > 0; i-- {
		dn[i] = d[i] << shift
		if shift > 0 {
			dn[i] |= d[i-1] >> (64 - shift)
		}
	}
	dn[0] = d[0] << shift

	var uLen int
	for i := len(u) - 1; i >= 0; i-- {
		if u[i] != 0 {
			uLen = i + 1
			break
		}
	}
	if uLen < dLen {
		copy(rem[:], u)
		return rem
	}

	unStorage := make([]uint64, uLen+1)
	un := unStorage[:uLen+1]
	un[uLen] = 0
	if shift > 0 {
		un[uLen] = u[uLen-1] >> (64 - shift)
	}
	for i := uLen - 1; i > 0; i-- {
		un[i] = u[i] << shift
		if shift > 0 {
			un[i] |= u[i-1] >> (64 - shift)
		}
	}
	un[0] = u[0] << shift

	if dLen == 1 {
		r := udivremBy1(quot, un, dn[0])
		rem.SetUint64(r >> shift)
		return rem
	}

	udivremKnuth(quot, un, dn)

	for i := 0; i < dLen-1; i++ {
		rem[i] = un[i] >> shift
		if shift > 0 {
			rem[i] |= un[i+1] << (64 - shift)
		}
	}
	rem[dLen-1] = un[dLen-1] >> shift

	return rem
}

// udivremBy1 divides un by the single normalized limb d, writing the
// quotient into quot and returning the remainder.
func udivremBy1(quot, un []uint64, d uint64) (rem uint64) {
	reciprocal := reciprocal2by1(d)
	rem = un[len(un)-1] // top limb is the running remainder
	for j := len(un) - 2; j >= 0; j-- {
		quot[j], rem = udivrem2by1(rem, un[j], d, reciprocal)
	}
	return rem
}

// reciprocal2by1 computes <^d, ^0> / d.
func reciprocal2by1(d uint64) uint64 {
	reciprocal, _ := bits.Div64(^d, ^uint64(0), d)
	return reciprocal
}

// udivrem2by1 divides <uh, ul> by d using the provided reciprocal,
// returning quotient and remainder. Requires d to be normalized.
func udivrem2by1(uh, ul, d, reciprocal uint64) (quot, rem uint64) {
	qh, ql := bits.Mul64(reciprocal, uh)
	ql, carry := bits.Add64(ql, ul, 0)
	qh, _ = bits.Add64(qh, uh, carry)
	qh++

	r := ul - qh*d

	if r > ql {
		qh--
		r += d
	}
	if r >= d {
		qh++
		r -= d
	}
	return qh, r
}

// udivremKnuth implements the multi-limb division loop of Knuth's
// Algorithm D. un has len(u)+1 limbs (normalized), dn has >= 2 limbs.
func udivremKnuth(quot, un, dn []uint64) {
	dh := dn[len(dn)-1]
	dl := dn[len(dn)-2]
	reciprocal := reciprocal2by1(dh)

	for j := len(un) - len(dn) - 1; j >= 0; j-- {
		u2 := un[j+len(dn)]
		u1 := un[j+len(dn)-1]
		u0 := un[j+len(dn)-2]

		var qhat, rhat uint64
		if u2 >= dh {
			qhat = ^uint64(0)
		} else {
			qhat, rhat = udivrem2by1(u2, u1, dh, reciprocal)
			ph, pl := bits.Mul64(qhat, dl)
			if ph > rhat || (ph == rhat && pl > u0) {
				qhat--
			}
		}

		borrow := subMulTo(un[j:j+len(dn)], dn, qhat)
		un[j+len(dn)] = u2 - borrow
		if u2 < borrow {
			// qhat was one too large; add back.
			qhat--
			un[j+len(dn)] += addTo(un[j:j+len(dn)], dn)
		}
		if j < len(quot) {
			quot[j] = qhat
		}
	}
}

// subMulTo computes x -= y * multiplier, returning the final borrow.
func subMulTo(x, y []uint64, multiplier uint64) uint64 {
	var borrow uint64
	for i := 0; i < len(y); i++ {
		s, carry1 := bits.Sub64(x[i], borrow, 0)
		ph, pl := bits.Mul64(y[i], multiplier)
		t, carry2 := bits.Sub64(s, pl, 0)
		x[i] = t
		borrow = ph + carry1 + carry2
	}
	return borrow
}

// addTo computes x += y, returning the final carry.
func addTo(x, y []uint64) uint64 {
	var carry uint64
	for i := 0; i < len(y); i++ {
		x[i], carry = bits.Add64(x[i], y[i], carry)
	}
	return carry
}
