package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock should be zero")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	// Negative advances clamp to zero.
	c.Advance(-time.Hour)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("negative advance changed time: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 10*1000*time.Microsecond {
		t.Fatalf("concurrent advance lost updates: %v", c.Now())
	}
}

func TestSpan(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	s := c.StartSpan()
	c.Advance(250 * time.Millisecond)
	if s.Elapsed() != 250*time.Millisecond {
		t.Fatalf("span = %v", s.Elapsed())
	}
}

func TestDefaultCalibrationSanity(t *testing.T) {
	cal := DefaultCalibration()
	// The paper's headline constants must be preserved.
	if cal.ORAMLinkRTT != 2*time.Millisecond {
		t.Error("ORAM RTT should be 2 ms (paper §VI)")
	}
	if cal.ORAMServerPerQuery != 25*time.Microsecond {
		t.Error("ORAM server processing should be 25 µs (paper §VI-D)")
	}
	if cal.HEVMCyclePeriod != 10*time.Nanosecond {
		t.Error("HEVM clock should be 0.1 GHz")
	}
	// ECDSA sign+verify should land near the paper's ~80 ms -ES step.
	total := cal.ECDSASign + cal.ECDSAVerify
	if total < 60*time.Millisecond || total > 100*time.Millisecond {
		t.Errorf("ECDSA round = %v, want ≈80 ms", total)
	}
	g := DefaultGethCalibration()
	if g.TimePerOp <= 0 {
		t.Error("geth calibration must be positive")
	}
}
