// Package simclock provides the virtual clock and hardware calibration
// table used to reproduce the paper's timing results on a pure-software
// substrate.
//
// Every component charges virtual time for the work it performs; the
// *counts* (instructions executed, bytes encrypted, ORAM round trips,
// signatures) are real measurements from the running implementation,
// and only the per-unit costs come from this table, calibrated to the
// paper's prototype (HEVM @0.1 GHz on FPGA, Cortex-A53 Hypervisor
// @1.4 GHz, 2 ms Ethernet RTT to the ORAM server — §VI).
package simclock

import (
	"sync"
	"time"
)

// Calibration holds the per-unit virtual costs. The defaults reproduce
// the paper's prototype; experiments may override individual fields
// (e.g. to run ablations).
type Calibration struct {
	// HEVMCyclePeriod is one HEVM clock cycle (0.1 GHz → 10 ns).
	HEVMCyclePeriod time.Duration
	// HEVMCyclesPerOp is the average pipeline cost per EVM instruction
	// for the 4-stage in-order HEVM.
	HEVMCyclesPerOp uint64
	// HEVMCyclesPer256Mul is the extra cost of a 256-bit multiply/div.
	HEVMCyclesPerWideALU uint64
	// HEVMCyclesPerKeccakBlock is the cost of one keccak-f permutation
	// on the hardware keccak unit.
	HEVMCyclesPerKeccakBlock uint64

	// L2SwapPerPage is the cost of moving one 1 KB page between L1 and
	// L2 BlockRAM.
	L2SwapPerPage time.Duration
	// L3SwapPerPage is the cost of an authenticated-encrypted DMA of
	// one 1 KB page to/from untrusted memory.
	L3SwapPerPage time.Duration

	// ECDSASign and ECDSAVerify model the Cortex-A53 software ECDSA
	// (the paper measures ≈80 ms total per bundle for the -ES step).
	ECDSASign   time.Duration
	ECDSAVerify time.Duration
	// DHKE is the Diffie-Hellman exchange during attestation.
	DHKE time.Duration
	// AESGCMPerKB is the A.E.DMA throughput cost per KB.
	AESGCMPerKB time.Duration

	// ORAMLinkRTT is the Ethernet round-trip to the ORAM server (2 ms).
	ORAMLinkRTT time.Duration
	// ORAMServerPerQuery is the server-side processing per query
	// (25 µs, §VI-D).
	ORAMServerPerQuery time.Duration
	// ORAMClientPerBlock is the on-chip stash/position-map work per
	// ORAM block moved along the path.
	ORAMClientPerBlock time.Duration

	// LaneValidatePerRead is the in-order committer's cost to check one
	// read-set entry against the on-chip committed buffer (a tag
	// compare in the Hypervisor's SRAM, A53-class).
	LaneValidatePerRead time.Duration
	// LaneCommitPerWrite is the committer's cost to publish one
	// write-set entry into the committed buffer.
	LaneCommitPerWrite time.Duration
}

// ORAMBatchCost models a batched ORAM access of `queries` path
// queries moving `blocks` blocks in total: the link round trip is paid
// ONCE for the whole batch (the requests travel in one pipelined
// message), while server processing stays serial per query and client
// stash/crypto work stays serial per block. With queries=1 this is
// exactly the classic per-access charge, so sequential and batched
// paths share one arithmetic.
func (c Calibration) ORAMBatchCost(queries, blocks int) time.Duration {
	if queries <= 0 {
		return 0
	}
	return c.ORAMLinkRTT +
		time.Duration(queries)*c.ORAMServerPerQuery +
		time.Duration(blocks)*c.ORAMClientPerBlock
}

// ORAMShardedBatchCost models a batched access fanned out across
// `shards` independent ORAM servers in ONE overlapped round: the link
// RTT is paid once (all per-shard sub-batches leave back to back and
// their responses overlap on the wire), server processing runs in
// parallel across shards but stays serial per query *within* a shard
// (the slowest shard gates the round — with a uniform block→shard hash
// that is ⌈queries/shards⌉ queries), and the on-chip per-block client
// work stays serial (one Hypervisor does all the stash/crypto work).
// With shards ≤ 1 this degenerates to exactly ORAMBatchCost, so the
// single-tree and sharded paths share one arithmetic.
func (c Calibration) ORAMShardedBatchCost(queries, shards, blocks int) time.Duration {
	if shards <= 1 {
		return c.ORAMBatchCost(queries, blocks)
	}
	if queries <= 0 {
		return 0
	}
	perShard := (queries + shards - 1) / shards
	return c.ORAMBatchCost(perShard, blocks)
}

// ColdHandshakeCost models the device-side virtual time of a full
// attest + DHKE handshake: the A53 signs the attestation report and
// completes the key exchange (the report verification and user-side
// DHKE half run on the user's machine and are off the device clock).
// With the default calibration this is 75 ms — the ~80 ms the paper's
// Fig. 4 attributes to the asymmetric handshake step.
func (c Calibration) ColdHandshakeCost() time.Duration {
	return c.ECDSASign + c.DHKE
}

// WarmResumeCost models the device-side virtual time of a ticket
// resume: one AES-GCM open of the ticket plus the sealed rekey
// messages — symmetric crypto only, in the A.E.DMA's throughput class.
// ticketBytes sizes the dominant open; the two confirm-leg messages
// charge one KB-equivalent each. Default calibration: ≈33 µs for a
// 128-byte ticket — three orders of magnitude under the cold path.
func (c Calibration) WarmResumeCost(ticketBytes int) time.Duration {
	kb := (ticketBytes + 1023) / 1024
	return time.Duration(kb+2) * c.AESGCMPerKB
}

// DefaultCalibration returns costs calibrated to the paper's prototype.
func DefaultCalibration() Calibration {
	return Calibration{
		HEVMCyclePeriod:          10 * time.Nanosecond, // 0.1 GHz
		HEVMCyclesPerOp:          4,                    // 4-stage pipeline, ~1 IPC + hazards
		HEVMCyclesPerWideALU:     16,
		HEVMCyclesPerKeccakBlock: 24,

		L2SwapPerPage: 3 * time.Microsecond,
		L3SwapPerPage: 12 * time.Microsecond,

		ECDSASign:   40 * time.Millisecond,
		ECDSAVerify: 40 * time.Millisecond,
		DHKE:        35 * time.Millisecond,
		AESGCMPerKB: 11 * time.Microsecond,

		ORAMLinkRTT:        2 * time.Millisecond,
		ORAMServerPerQuery: 25 * time.Microsecond,
		ORAMClientPerBlock: 500 * time.Nanosecond,

		LaneValidatePerRead: 90 * time.Nanosecond,
		LaneCommitPerWrite:  120 * time.Nanosecond,
	}
}

// GethCalibration models the paper's baseline: Geth on an i7-12700 at
// 4.35 GHz with all data prefetched to main memory.
type GethCalibration struct {
	// TimePerOp is the average interpreted-EVM wall time per
	// instruction on the baseline server (≈55 cycles at 4.35 GHz ≈
	// 12.6 ns: software dispatch is heavier than the HEVM pipeline but
	// the clock is 43x faster).
	TimePerOp time.Duration
}

// DefaultGethCalibration returns the baseline cost model.
func DefaultGethCalibration() GethCalibration {
	return GethCalibration{
		TimePerOp: 13 * time.Nanosecond,
	}
}

// Clock is a virtual clock. It is safe for concurrent use; each
// HEVM/session typically owns one.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at time zero.
func NewClock() *Clock {
	return &Clock{}
}

// Advance adds d to the virtual time and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the clock forward to at least t (no-op when the
// clock is already past it) and returns the new time. The in-order
// committer uses this to wait, in virtual time, for a speculative
// lane's result.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset sets the clock back to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// LaneSet models N parallel HEVM lanes inside one device slot. Every
// lane owns a relative clock started at zero when the bundle's
// parallel phase begins; Base is the device time at that instant
// (after input crypto), so a lane's absolute time is Base + lane.Now().
// The set exists to keep the modeled numbers honest: the committer
// advances the device clock to each lane's absolute completion time
// before charging validation/commit work, and the bundle ends no
// earlier than the slowest lane.
type LaneSet struct {
	Base  time.Duration
	Lanes []*Clock
}

// NewLaneSet returns a lane set over the given relative lane clocks.
func NewLaneSet(base time.Duration, lanes []*Clock) *LaneSet {
	return &LaneSet{Base: base, Lanes: lanes}
}

// Absolute converts a lane-relative instant to device-absolute time.
func (ls *LaneSet) Absolute(rel time.Duration) time.Duration {
	return ls.Base + rel
}

// Makespan returns the device-absolute completion time of the slowest
// lane — the lower bound for the bundle's end.
func (ls *LaneSet) Makespan() time.Duration {
	end := ls.Base
	for _, l := range ls.Lanes {
		if t := ls.Base + l.Now(); t > end {
			end = t
		}
	}
	return end
}

// Span measures a virtual interval.
type Span struct {
	clock *Clock
	start time.Duration
}

// StartSpan begins measuring from the current virtual time.
func (c *Clock) StartSpan() Span {
	return Span{clock: c, start: c.Now()}
}

// Elapsed returns the virtual time since the span started.
func (s Span) Elapsed() time.Duration {
	return s.clock.Now() - s.start
}
