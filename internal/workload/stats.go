package workload

import (
	"fmt"
	"sort"
	"strings"

	"hardtape/internal/evm"
)

// FrameStats captures one execution frame's Table I dimensions.
type FrameStats struct {
	CodeSize    uint64
	InputSize   uint64
	MemorySize  uint64
	ReturnSize  uint64
	StorageKeys int
}

// TxStats captures one transaction's call-depth (Table I right column).
type TxStats struct {
	CallDepth int
}

// StatsCollector measures the distributions of Table I from live
// execution, via evm.Hooks. Attach with Hooks(), call BeginTx/EndTx
// around each transaction.
type StatsCollector struct {
	Frames []FrameStats
	Txs    []TxStats

	// open frames during execution.
	stack []*frameAccum
	depth int
}

type frameAccum struct {
	stats       FrameStats
	storageKeys map[string]struct{}
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector {
	return &StatsCollector{}
}

// Hooks returns the hooks that feed this collector.
func (c *StatsCollector) Hooks() *evm.Hooks {
	return &evm.Hooks{
		OnCallEnter:  c.onEnter,
		OnCallExit:   c.onExit,
		OnMemAccess:  c.onMem,
		OnWorldState: c.onWS,
	}
}

// BeginTx resets the per-tx depth tracker.
func (c *StatsCollector) BeginTx() {
	c.depth = 0
	c.stack = c.stack[:0]
}

// EndTx records the transaction's statistics.
func (c *StatsCollector) EndTx() {
	c.Txs = append(c.Txs, TxStats{CallDepth: c.depth})
}

func (c *StatsCollector) onEnter(info evm.CallFrameInfo) {
	f := &frameAccum{storageKeys: make(map[string]struct{})}
	f.stats.CodeSize = uint64(info.CodeSize)
	f.stats.InputSize = uint64(info.InputSize)
	c.stack = append(c.stack, f)
	if d := info.Depth + 1; d > c.depth {
		c.depth = d
	}
}

func (c *StatsCollector) onExit(info evm.CallResultInfo) {
	if len(c.stack) == 0 {
		return
	}
	f := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	f.stats.ReturnSize = uint64(info.ReturnSize)
	f.stats.StorageKeys = len(f.storageKeys)
	c.Frames = append(c.Frames, f.stats)
}

func (c *StatsCollector) onMem(a evm.MemAccess) {
	if len(c.stack) == 0 {
		return
	}
	f := c.stack[len(c.stack)-1]
	if end := a.Offset + a.Size; end > f.stats.MemorySize {
		f.stats.MemorySize = end
	}
}

func (c *StatsCollector) onWS(a evm.WorldStateAccess) {
	if len(c.stack) == 0 || a.Kind != evm.WSStorage {
		return
	}
	f := c.stack[len(c.stack)-1]
	f.storageKeys[a.Addr.String()+a.Key.String()] = struct{}{}
}

// SizeBand is one row of the Table I size panels.
type SizeBand struct {
	Label    string
	Min, Max uint64
}

// Table I size bands for memory-likes.
var SizeBands = []SizeBand{
	{"<1k", 0, 1023},
	{"1-4k", 1024, 4095},
	{"4-12k", 4096, 12287},
	{"12-64k", 12288, 65535},
	{">64k", 65536, ^uint64(0)},
}

// KeyBands for storage records per frame.
var KeyBands = []SizeBand{
	{"<=4", 0, 4},
	{"5-16", 5, 16},
	{"17-64", 17, 64},
	{">64", 65, ^uint64(0)},
}

// DepthBands for call depth per transaction.
var DepthBands = []SizeBand{
	{"1", 1, 1},
	{"2-5", 2, 5},
	{"6-10", 6, 10},
	{">10", 11, ^uint64(0)},
}

// Distribution computes the percentage of values landing in each band.
func Distribution(values []uint64, bands []SizeBand) map[string]float64 {
	out := make(map[string]float64, len(bands))
	if len(values) == 0 {
		return out
	}
	for _, b := range bands {
		count := 0
		for _, v := range values {
			if v >= b.Min && v <= b.Max {
				count++
			}
		}
		out[b.Label] = 100 * float64(count) / float64(len(values))
	}
	return out
}

// TableI renders the collector's measurements in the paper's Table I
// layout.
func (c *StatsCollector) TableI() string {
	var sb strings.Builder
	pick := func(f func(FrameStats) uint64) []uint64 {
		out := make([]uint64, len(c.Frames))
		for i, fr := range c.Frames {
			out[i] = f(fr)
		}
		return out
	}
	code := Distribution(pick(func(f FrameStats) uint64 { return f.CodeSize }), SizeBands)
	input := Distribution(pick(func(f FrameStats) uint64 { return f.InputSize }), SizeBands)
	mem := Distribution(pick(func(f FrameStats) uint64 { return f.MemorySize }), SizeBands)
	ret := Distribution(pick(func(f FrameStats) uint64 { return f.ReturnSize }), SizeBands)

	sb.WriteString("(a) Memory-like size by type in bytes per frame\n")
	fmt.Fprintf(&sb, "%-8s %8s %8s %8s %8s\n", "", "code", "input", "memory", "return")
	for _, b := range SizeBands {
		fmt.Fprintf(&sb, "%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			b.Label, code[b.Label], input[b.Label], mem[b.Label], ret[b.Label])
	}

	keys := make([]uint64, len(c.Frames))
	for i, fr := range c.Frames {
		keys[i] = uint64(fr.StorageKeys)
	}
	keyDist := Distribution(keys, KeyBands)
	depths := make([]uint64, len(c.Txs))
	for i, tx := range c.Txs {
		depths[i] = uint64(tx.CallDepth)
	}
	depthDist := Distribution(depths, DepthBands)

	sb.WriteString("\n(b) Storage records per frame | call depth per transaction\n")
	fmt.Fprintf(&sb, "%-8s %8s     %-8s %8s\n", "", "keys", "", "depth")
	keyLabels := []string{"<=4", "5-16", "17-64", ">64"}
	depthLabels := []string{"1", "2-5", "6-10", ">10"}
	for i := range keyLabels {
		fmt.Fprintf(&sb, "%-8s %7.1f%%     %-8s %7.1f%%\n",
			keyLabels[i], keyDist[keyLabels[i]], depthLabels[i], depthDist[depthLabels[i]])
	}
	return sb.String()
}

// Percentile returns the p-quantile (0..100) of values.
func Percentile(values []uint64, p float64) uint64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]uint64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
