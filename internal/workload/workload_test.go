package workload

import (
	"testing"

	"hardtape/internal/evm"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

func buildTestWorld(t testing.TB) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EOAs = 16
	cfg.Tokens = 3
	cfg.DEXes = 2
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// execTx applies one tx against a fresh overlay over the world state.
func execTx(t testing.TB, w *World, tx *types.Transaction, hooks *evm.Hooks) (*evm.ExecutionResult, *state.Overlay) {
	t.Helper()
	o := state.NewOverlay(w.State)
	e := evm.New(evm.BlockContext{Number: 100, GasLimit: 30_000_000, ChainID: uint256.NewInt(1)}, o)
	e.Hooks = hooks
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return res, o
}

func TestWorldDeterminism(t *testing.T) {
	w1 := buildTestWorld(t)
	w2 := buildTestWorld(t)
	r1, err := w1.State.Root()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w2.State.Root()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("same seed produced different worlds")
	}
	if w1.EOAs[0] != w2.EOAs[0] || w1.Tokens[0] != w2.Tokens[0] {
		t.Fatal("addresses differ across builds")
	}
}

func TestERC20TransferExecutes(t *testing.T) {
	w := buildTestWorld(t)
	from, to := w.EOAs[0], w.EOAs[1]
	token := w.Tokens[0]

	tx, err := w.SignedTx(from, &token, 0, CalldataTransfer(to, 500), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, o := execTx(t, w, tx, nil)
	if res.Err != nil {
		t.Fatalf("transfer reverted: %v (ret=%x)", res.Err, res.ReturnData)
	}
	// Check balances via storage (key = address word).
	fromKey := types.BytesToHash(from.Word().Bytes())
	toKey := types.BytesToHash(to.Word().Bytes())
	fromBal := o.GetStorage(token, fromKey).Word().Uint64()
	toBal := o.GetStorage(token, toKey).Word().Uint64()
	if fromBal != (1<<40)-500 {
		t.Fatalf("from balance = %d", fromBal)
	}
	if toBal != (1<<40)+500 {
		t.Fatalf("to balance = %d", toBal)
	}
	if len(res.Logs) != 1 {
		t.Fatalf("transfer should emit 1 log, got %d", len(res.Logs))
	}
}

func TestERC20TransferInsufficientReverts(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	token := w.Tokens[0]
	to := w.EOAs[1]
	tx, err := w.SignedTx(from, &token, 0, CalldataTransfer(to, 1<<50), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := execTx(t, w, tx, nil)
	if !res.Reverted() {
		t.Fatal("over-balance transfer should revert")
	}
}

func TestERC20BalanceOf(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	token := w.Tokens[0]
	tx, err := w.SignedTx(from, &token, 0, CalldataBalanceOf(from), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := execTx(t, w, tx, nil)
	if res.Err != nil {
		t.Fatalf("balanceOf failed: %v", res.Err)
	}
	if got := new(uint256.Int).SetBytes(res.ReturnData); !got.Eq(uint256.NewInt(1 << 40)) {
		t.Fatalf("balanceOf = %s", got)
	}
}

func TestERC20ApproveAllowance(t *testing.T) {
	w := buildTestWorld(t)
	from, spender := w.EOAs[0], w.EOAs[1]
	token := w.Tokens[0]

	// approve(spender, 777)
	approveData := buildCall(SelApprove, spender.Word().Bytes32(), u64Word(777))
	tx, err := w.SignedTx(from, &token, 0, approveData, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	o := state.NewOverlay(w.State)
	e := evm.New(evm.BlockContext{Number: 100, GasLimit: 30_000_000}, o)
	if res, err := e.ApplyTransaction(tx); err != nil || res.Err != nil {
		t.Fatalf("approve: %v %v", err, res)
	}
	// allowance(from, spender) on the same overlay.
	allowData := buildCall(SelAllowance, from.Word().Bytes32(), spender.Word().Bytes32())
	tx2, err := w.SignedTx(from, &token, 0, allowData, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e.ApplyTransaction(tx2)
	if err != nil || res2.Err != nil {
		t.Fatalf("allowance: %v %v", err, res2)
	}
	if got := new(uint256.Int).SetBytes(res2.ReturnData); !got.Eq(uint256.NewInt(777)) {
		t.Fatalf("allowance = %s", got)
	}
}

func TestDEXSwap(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	dex := w.DEXes[0]
	tx, err := w.SignedTx(from, &dex, 0, CalldataSwap(1000), 400_000)
	if err != nil {
		t.Fatal(err)
	}
	res, o := execTx(t, w, tx, nil)
	if res.Err != nil {
		t.Fatalf("swap failed: %v", res.Err)
	}
	out := new(uint256.Int).SetBytes(res.ReturnData)
	if out.IsZero() {
		t.Fatal("swap output is zero")
	}
	// Constant product: out = rOut*in/(rIn+in) with both reserves 2^30.
	want := uint64((1 << 30)) * 1000 / ((1 << 30) + 1000)
	if out.Uint64() != want {
		t.Fatalf("swap out = %d, want %d", out.Uint64(), want)
	}
	// Reserves updated.
	rIn := o.GetStorage(dex, types.Hash{31: 0}).Word().Uint64()
	rOut := o.GetStorage(dex, types.Hash{31: 1}).Word().Uint64()
	if rIn != (1<<30)+1000 || rOut != (1<<30)-want {
		t.Fatalf("reserves: %d %d", rIn, rOut)
	}
	// The swap must have produced a nested token transfer to caller.
	token := w.Tokens[0]
	callerKey := types.BytesToHash(from.Word().Bytes())
	got := o.GetStorage(token, callerKey).Word().Uint64()
	if got != (1<<40)+want {
		t.Fatalf("caller token balance = %d, want %d", got, (1<<40)+want)
	}
}

func TestDeepCallerDepth(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	to := w.DeepCaller
	tx, err := w.SignedTx(from, &to, 0, CalldataUint(4), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStatsCollector()
	sc.BeginTx()
	res, _ := execTx(t, w, tx, sc.Hooks())
	sc.EndTx()
	if res.Err != nil {
		t.Fatalf("deep call failed: %v", res.Err)
	}
	// n=4 → 5 frames total.
	if sc.Txs[0].CallDepth != 5 {
		t.Fatalf("depth = %d, want 5", sc.Txs[0].CallDepth)
	}
}

func TestStorageHeavyWritesRecords(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	to := w.StorageHeavy
	tx, err := w.SignedTx(from, &to, 0, CalldataUint(10), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, o := execTx(t, w, tx, nil)
	if res.Err != nil {
		t.Fatalf("storage heavy failed: %v", res.Err)
	}
	// Slots 1..10 written with value slot+1.
	for i := uint64(1); i <= 10; i++ {
		v := o.GetStorage(to, types.BytesToHash(uint256.NewInt(i).Bytes()))
		if v.Word().Uint64() != i+1 {
			t.Fatalf("slot %d = %d", i, v.Word().Uint64())
		}
	}
}

func TestGenerateBlockExecutes(t *testing.T) {
	w := buildTestWorld(t)
	blk, err := w.GenerateBlock(1, types.Hash{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Txs) != 50 {
		t.Fatalf("txs = %d", len(blk.Txs))
	}
	// All transactions must apply cleanly in order on one overlay.
	o := state.NewOverlay(w.State)
	e := evm.New(NewBlockContext(&blk.Header), o)
	sc := NewStatsCollector()
	e.Hooks = sc.Hooks()
	succeeded := 0
	for i, tx := range blk.Txs {
		sc.BeginTx()
		res, err := e.ApplyTransaction(tx)
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		sc.EndTx()
		if res.Err == nil {
			succeeded++
		}
	}
	if succeeded < 45 {
		t.Fatalf("only %d/50 txs succeeded", succeeded)
	}
	if len(sc.Frames) < 50 {
		t.Fatalf("frames recorded: %d", len(sc.Frames))
	}
}

func TestTableIDistributionShape(t *testing.T) {
	// Generate a decent sample and verify the measured distributions
	// match the Table I shape within tolerance.
	w := buildTestWorld(t)
	o := state.NewOverlay(w.State)
	e := evm.New(evm.BlockContext{Number: 1, GasLimit: 30_000_000}, o)
	sc := NewStatsCollector()
	e.Hooks = sc.Hooks()
	for i := 0; i < 400; i++ {
		tx, _, err := w.GenerateTx()
		if err != nil {
			t.Fatal(err)
		}
		sc.BeginTx()
		if _, err := e.ApplyTransaction(tx); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		sc.EndTx()
	}
	depths := make([]uint64, len(sc.Txs))
	for i, tx := range sc.Txs {
		depths[i] = uint64(tx.CallDepth)
	}
	d := Distribution(depths, DepthBands)
	// Paper: 40.8% / 52.6% / 6.3% / 0.3%. Allow generous sampling noise.
	if d["1"] < 25 || d["1"] > 60 {
		t.Errorf("depth-1 fraction %.1f%% far from 40.8%%", d["1"])
	}
	if d["2-5"] < 35 || d["2-5"] > 70 {
		t.Errorf("depth 2-5 fraction %.1f%% far from 52.6%%", d["2-5"])
	}
	if d["6-10"] > 20 {
		t.Errorf("depth 6-10 fraction %.1f%% far from 6.3%%", d["6-10"])
	}
	// Memory distribution: most frames under 1 KB.
	mems := make([]uint64, len(sc.Frames))
	for i, f := range sc.Frames {
		mems[i] = f.MemorySize
	}
	m := Distribution(mems, SizeBands)
	if m["<1k"] < 70 {
		t.Errorf("frames <1k memory = %.1f%%, want ≈92%%", m["<1k"])
	}
	// The rendered table must not be empty.
	table := sc.TableI()
	if len(table) < 100 {
		t.Fatalf("TableI output too short:\n%s", table)
	}
}

func TestMemoryHogExpandsMemory(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	to := w.MemoryHog
	tx, err := w.SignedTx(from, &to, 0, CalldataUint(600_000), 25_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStatsCollector()
	sc.BeginTx()
	res, _ := execTx(t, w, tx, sc.Hooks())
	sc.EndTx()
	if res.Err != nil {
		t.Fatalf("memory hog failed: %v", res.Err)
	}
	if sc.Frames[0].MemorySize < 600_000 {
		t.Fatalf("memory = %d", sc.Frames[0].MemorySize)
	}
}

func TestPercentile(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(vals, 0) != 1 || Percentile(vals, 100) != 10 {
		t.Fatal("percentile bounds")
	}
	if p := Percentile(vals, 50); p < 5 || p > 6 {
		t.Fatalf("median = %d", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestSignedTxNonceTracking(t *testing.T) {
	w := buildTestWorld(t)
	from := w.EOAs[0]
	to := w.EOAs[1]
	tx1, err := w.SignedTx(from, &to, 1, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := w.SignedTx(from, &to, 1, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	if tx1.Nonce != 0 || tx2.Nonce != 1 {
		t.Fatalf("nonces: %d %d", tx1.Nonce, tx2.Nonce)
	}
	if _, err := w.SignedTx(types.Address{}, &to, 1, nil, 21_000); err == nil {
		t.Fatal("unknown EOA accepted")
	}
}
