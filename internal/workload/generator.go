package workload

import (
	"fmt"
	"math/rand"

	"hardtape/internal/evm"
	"hardtape/internal/secp256k1"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Distribution buckets from the paper's Table I. Each entry is a
// cumulative probability with an inclusive value range to sample from.
type bucket struct {
	cum      float64
	min, max uint64
}

// sampleAt returns the value at quantile q of a bucketed distribution
// (stratified sampling: families of contracts deployed at evenly
// spaced quantiles reproduce the distribution without sampling
// variance).
func sampleAt(buckets []bucket, q float64) uint64 {
	prev := 0.0
	for _, b := range buckets {
		if q <= b.cum {
			span := b.cum - prev
			pos := 0.0
			if span > 0 {
				pos = (q - prev) / span
			}
			return b.min + uint64(pos*float64(b.max-b.min))
		}
		prev = b.cum
	}
	return buckets[len(buckets)-1].max
}

// sample draws from a bucketed distribution.
func sample(rng *rand.Rand, buckets []bucket) uint64 {
	r := rng.Float64()
	for _, b := range buckets {
		if r <= b.cum {
			if b.max <= b.min {
				return b.min
			}
			return b.min + uint64(rng.Int63n(int64(b.max-b.min+1)))
		}
	}
	last := buckets[len(buckets)-1]
	return last.max
}

// Table I distributions (paper, blocks #19145194–#19145293).
var (
	// callDepthDist: 1 → 40.8%, 2-5 → 52.6%, 6-10 → 6.3%, >10 → 0.3%.
	_callDepthDist = []bucket{
		{0.408, 1, 1}, {0.934, 2, 5}, {0.997, 6, 10}, {1.0, 11, 16},
	}
	// memorySizeDist (bytes/frame): <1k 92.7%, 1-4k 5.7%, 4-12k 0.6%,
	// tail sub-0.1%.
	_memorySizeDist = []bucket{
		{0.927, 0, 1023}, {0.984, 1024, 4095}, {0.996, 4096, 12287}, {1.0, 12288, 65535},
	}
	// memWorkerDist conditions the memory-worker archetype toward the
	// larger bands: ordinary frames use well under 1 KB of Memory, so
	// the dedicated archetype supplies the distribution's tail.
	_memWorkerDist = []bucket{
		{0.30, 64, 1023}, {0.86, 1024, 4095}, {0.98, 4096, 12287}, {1.0, 12288, 65535},
	}
	// storageKeysDist (records/frame): ≤4 79.9%, 5-16 19.0%,
	// 17-64 ≈1%, >64 ≈0.1%.
	_storageKeysDist = []bucket{
		{0.799, 0, 4}, {0.989, 5, 16}, {0.999, 17, 64}, {1.0, 65, 200},
	}
	// storageHeavyDist conditions the storage-heavy archetype toward
	// the 5-16 band: most frames in the evaluation set touch ≤4 keys
	// already (token balances, reserves), so the dedicated archetype
	// supplies the distribution's tail.
	_storageHeavyDist = []bucket{
		{0.20, 1, 4}, {0.88, 5, 16}, {0.99, 17, 64}, {1.0, 65, 200},
	}
	// codeSizeDist (bytes): <1k 9.5%, 1-4k 25.3%, 4-12k 39.6%,
	// 12-64k 25.6%.
	_codeSizeDist = []bucket{
		{0.095, 256, 1023}, {0.348, 1024, 4095}, {0.744, 4096, 12287}, {1.0, 12288, 65535},
	}
)

// World is a synthetic Ethereum world: funded EOAs, deployed
// contracts, and the canonical state they live in.
type World struct {
	State *state.WorldState

	EOAs []types.Address
	keys map[types.Address]*secp256k1.PrivateKey
	// nonces tracks the next nonce per EOA for tx generation.
	nonces map[types.Address]uint64

	Tokens []types.Address
	DEXes  []types.Address
	// DeepCallers and MemWorkers are families of identical-behaviour
	// contracts whose code sizes are drawn from Table I's code
	// distribution, so per-frame code-size statistics match the paper.
	// DeepCaller/MemWorker are the first of each family.
	DeepCallers  []types.Address
	MemWorkers   []types.Address
	DeepCaller   types.Address
	MemWorker    types.Address
	StorageHeavy types.Address
	MemoryHog    types.Address
	ArithLoop    types.Address

	rng *rand.Rand
}

// Config sizes the synthetic world.
type Config struct {
	Seed   int64
	EOAs   int
	Tokens int
	DEXes  int
}

// DefaultConfig returns a laptop-scale world.
func DefaultConfig() Config {
	return Config{Seed: 19145194, EOAs: 64, Tokens: 8, DEXes: 4}
}

// BuildWorld constructs the synthetic world deterministically from the
// seed: EOAs with balances, tokens with holders, DEX pools with
// reserves, and the special-purpose contracts.
func BuildWorld(cfg Config) (*World, error) {
	if cfg.EOAs < 2 || cfg.Tokens < 1 || cfg.DEXes < 1 {
		return nil, fmt.Errorf("workload: config too small: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		State:  state.NewWorldState(),
		keys:   make(map[types.Address]*secp256k1.PrivateKey),
		nonces: make(map[types.Address]uint64),
		rng:    rng,
	}

	// EOAs.
	for i := 0; i < cfg.EOAs; i++ {
		priv, err := secp256k1.GenerateKey([]byte(fmt.Sprintf("eoa-%d-%d", cfg.Seed, i)))
		if err != nil {
			return nil, fmt.Errorf("workload: eoa key: %w", err)
		}
		addr := types.Address(priv.Public.Address())
		w.keys[addr] = priv
		w.EOAs = append(w.EOAs, addr)
		acct := types.NewAccount()
		acct.Balance.SetUint64(1 << 60)
		if err := w.State.SetAccount(addr, acct); err != nil {
			return nil, err
		}
	}

	deploySalt := 0
	deploy := func(runtime []byte, padTo uint64) (types.Address, error) {
		code := PaddedRuntime(runtime, int(padTo))
		// Unique unreachable suffix so equal runtimes at equal pad
		// sizes still get distinct code hashes (and addresses).
		deploySalt++
		code = append(code, byte(evm.STOP), byte(deploySalt), byte(deploySalt>>8))
		h := w.State.SetCode(code)
		addr := types.BytesToAddress(h[:20])
		acct := types.NewAccount()
		acct.CodeHash = h
		acct.Balance.SetUint64(1 << 40)
		if err := w.State.SetAccount(addr, acct); err != nil {
			return types.Address{}, err
		}
		return addr, nil
	}

	// Tokens, with code sizes drawn from Table I's code distribution
	// and balances for every EOA.
	for i := 0; i < cfg.Tokens; i++ {
		q := (float64(i) + 0.5) / float64(cfg.Tokens)
		addr, err := deploy(ERC20Runtime(), sampleAt(_codeSizeDist, q))
		if err != nil {
			return nil, err
		}
		w.Tokens = append(w.Tokens, addr)
		for _, eoa := range w.EOAs {
			key := types.BytesToHash(eoa.Word().Bytes())
			bal := types.BytesToHash(uint256.NewInt(1 << 40).Bytes())
			if err := w.State.SetStorage(addr, key, bal); err != nil {
				return nil, err
			}
		}
	}

	// DEX pools: reserves in slots 0/1, token address in slot 2, token
	// balance minted to the pool.
	for i := 0; i < cfg.DEXes; i++ {
		q := (float64(i) + 0.5) / float64(cfg.DEXes)
		addr, err := deploy(DEXRuntime(), sampleAt(_codeSizeDist, q))
		if err != nil {
			return nil, err
		}
		w.DEXes = append(w.DEXes, addr)
		token := w.Tokens[i%len(w.Tokens)]
		set := func(slot byte, v *uint256.Int) error {
			return w.State.SetStorage(addr, types.Hash{31: slot}, types.BytesToHash(v.Bytes()))
		}
		if err := set(0, uint256.NewInt(1<<30)); err != nil { // reserveIn
			return nil, err
		}
		if err := set(1, uint256.NewInt(1<<30)); err != nil { // reserveOut
			return nil, err
		}
		if err := set(2, token.Word()); err != nil {
			return nil, err
		}
		// Pool token balance.
		key := types.BytesToHash(addr.Word().Bytes())
		if err := w.State.SetStorage(token, key, types.BytesToHash(uint256.NewInt(1<<50).Bytes())); err != nil {
			return nil, err
		}
	}

	// Families of deep-callers and memory-workers spanning the code
	// distribution (per-frame code-size stats weight contracts by call
	// frequency; a single contract would collapse the distribution).
	for i := 0; i < 6; i++ {
		q := (float64(i) + 0.5) / 6
		dc, err := deploy(DeepCallerRuntime(), sampleAt(_codeSizeDist, q))
		if err != nil {
			return nil, err
		}
		w.DeepCallers = append(w.DeepCallers, dc)
		mw, err := deploy(MemoryWorkerRuntime(), sampleAt(_codeSizeDist, 1-q))
		if err != nil {
			return nil, err
		}
		w.MemWorkers = append(w.MemWorkers, mw)
	}
	w.DeepCaller = w.DeepCallers[0]
	w.MemWorker = w.MemWorkers[0]

	var err error
	if w.StorageHeavy, err = deploy(StorageHeavyRuntime(), sample(rng, _codeSizeDist)); err != nil {
		return nil, err
	}
	if w.MemoryHog, err = deploy(MemoryHogRuntime(), 512); err != nil {
		return nil, err
	}
	if w.ArithLoop, err = deploy(ArithmeticLoopRuntime(), 512); err != nil {
		return nil, err
	}
	if _, err := w.State.Root(); err != nil {
		return nil, err
	}
	return w, nil
}

// Key returns the private key of a generated EOA (tests, clients).
func (w *World) Key(addr types.Address) *secp256k1.PrivateKey {
	return w.keys[addr]
}

// SignedTx builds and signs a transaction from a generated EOA,
// advancing its tracked nonce.
func (w *World) SignedTx(from types.Address, to *types.Address, value uint64, data []byte, gasLimit uint64) (*types.Transaction, error) {
	priv, ok := w.keys[from]
	if !ok {
		return nil, fmt.Errorf("workload: unknown EOA %s", from)
	}
	tx := &types.Transaction{
		Nonce:    w.nonces[from],
		GasPrice: uint256.NewInt(1),
		GasLimit: gasLimit,
		To:       to,
		Value:    uint256.NewInt(value),
		Data:     data,
	}
	if err := tx.Sign(priv); err != nil {
		return nil, err
	}
	w.nonces[from] = tx.Nonce + 1
	return tx, nil
}

// RollupTx builds a roll-up-style transaction (paper §II-A): thousands
// of storage-record updates submitted as one huge calldata blob. Its
// execution frame exceeds HarDTAPE's layer-2 frame limit, producing
// the Memory Overflow Error §VI-B reports for these transactions.
func (w *World) RollupTx(from types.Address, nonce uint64) (*types.Transaction, error) {
	// ~600 KB of calldata (the MemoryWorker copies it all into Memory,
	// so the frame holds both input and memory > 512 KB limit).
	data := make([]byte, 600*1024)
	// First word = memory touch target (small; the copy is the load).
	data[31] = 64
	for i := 32; i < len(data); i += 97 {
		data[i] = byte(i)
	}
	to := w.MemWorker
	return w.SignedTxAt(from, nonce, &to, 0, data, 25_000_000)
}

// SyncNonces realigns the generator's tracked nonces with a canonical
// state — needed after generating pre-execution transactions (which
// are never mined) before producing the next on-chain block.
func (w *World) SyncNonces(reader state.Reader) {
	for addr := range w.keys {
		if acct, ok := reader.Account(addr); ok {
			w.nonces[addr] = acct.Nonce
		} else {
			w.nonces[addr] = 0
		}
	}
}

// SignedTxAt builds and signs a transaction with an explicit nonce and
// does NOT advance the tracked nonce — for pre-execution bundles,
// which are temporary and always start from the canonical state.
func (w *World) SignedTxAt(from types.Address, nonce uint64, to *types.Address, value uint64, data []byte, gasLimit uint64) (*types.Transaction, error) {
	priv, ok := w.keys[from]
	if !ok {
		return nil, fmt.Errorf("workload: unknown EOA %s", from)
	}
	tx := &types.Transaction{
		Nonce:    nonce,
		GasPrice: uint256.NewInt(1),
		GasLimit: gasLimit,
		To:       to,
		Value:    uint256.NewInt(value),
		Data:     data,
	}
	if err := tx.Sign(priv); err != nil {
		return nil, err
	}
	return tx, nil
}

// TxKind labels generated transaction archetypes.
type TxKind int

// Transaction archetypes in the evaluation set.
const (
	TxSimpleTransfer TxKind = iota + 1
	TxERC20Transfer
	TxERC20BalanceOf
	TxDEXSwap
	TxDeepCall
	TxStorageHeavy
	TxMemoryWorker
)

// GenerateTx produces one transaction of a sampled archetype. The mix
// approximates Table I: depth-1 transactions ≈41%, depth 2-5 ≈53%
// (DEX swaps and shallow deep-calls), deeper chains ≈6%.
func (w *World) GenerateTx() (*types.Transaction, TxKind, error) {
	from := w.EOAs[w.rng.Intn(len(w.EOAs))]
	depth := sample(w.rng, _callDepthDist)

	switch {
	case depth == 1:
		// Depth-1 archetypes: plain transfer, token transfer, reads,
		// memory workers, storage-heavy frames.
		switch w.rng.Intn(5) {
		case 0:
			to := w.EOAs[w.rng.Intn(len(w.EOAs))]
			tx, err := w.SignedTx(from, &to, uint64(w.rng.Intn(1000)+1), nil, 40_000)
			return tx, TxSimpleTransfer, err
		case 1:
			token := w.Tokens[w.rng.Intn(len(w.Tokens))]
			tx, err := w.SignedTx(from, &token, 0, CalldataBalanceOf(from), 80_000)
			return tx, TxERC20BalanceOf, err
		case 2:
			// Memory worker realizes the Table I memory distribution.
			size := sample(w.rng, _memWorkerDist)
			to := w.MemWorkers[w.rng.Intn(len(w.MemWorkers))]
			tx, err := w.SignedTx(from, &to, 0, CalldataUint(size), 2_000_000)
			return tx, TxMemoryWorker, err
		case 3:
			// Storage-heavy frame realizing the records/frame tail.
			records := sample(w.rng, _storageHeavyDist)
			if records == 0 {
				records = 1
			}
			to := w.StorageHeavy
			tx, err := w.SignedTx(from, &to, 0, CalldataUint(records), 300_000+records*25_000)
			return tx, TxStorageHeavy, err
		default:
			token := w.Tokens[w.rng.Intn(len(w.Tokens))]
			to := w.EOAs[w.rng.Intn(len(w.EOAs))]
			tx, err := w.SignedTx(from, &token, 0, CalldataTransfer(to, uint64(w.rng.Intn(100)+1)), 120_000)
			return tx, TxERC20Transfer, err
		}

	case depth == 2:
		// Depth 2: DEX swap (pool frame + token frame).
		dex := w.DEXes[w.rng.Intn(len(w.DEXes))]
		tx, err := w.SignedTx(from, &dex, 0, CalldataSwap(uint64(w.rng.Intn(10_000)+1)), 300_000)
		return tx, TxDEXSwap, err

	default:
		// Depth 3+: recursive call chain of exactly `depth` frames.
		to := w.DeepCallers[w.rng.Intn(len(w.DeepCallers))]
		tx, err := w.SignedTx(from, &to, 0, CalldataUint(depth-1), 200_000*depth)
		return tx, TxDeepCall, err
	}
}

// GenerateBlock produces a block of n archetype-sampled transactions.
// Callers execute it against the world's state to advance the chain.
func (w *World) GenerateBlock(number uint64, parent types.Hash, n int) (*types.Block, error) {
	blk := &types.Block{
		Header: types.BlockHeader{
			ParentHash: parent,
			Number:     number,
			Timestamp:  1700000000 + number*12,
			GasLimit:   30_000_000,
			Coinbase:   types.MustAddress("0xc01bba5e00000000000000000000000000000000"),
			BaseFee:    uint256.NewInt(1),
		},
	}
	for i := 0; i < n; i++ {
		tx, _, err := w.GenerateTx()
		if err != nil {
			return nil, fmt.Errorf("workload: tx %d: %w", i, err)
		}
		blk.Txs = append(blk.Txs, tx)
	}
	blk.Header.TxRoot = blk.ComputeTxRoot()
	return blk, nil
}

// NewBlockContext builds the evm.BlockContext for a generated block.
func NewBlockContext(h *types.BlockHeader) evm.BlockContext {
	return evm.BlockContext{
		Coinbase:   h.Coinbase,
		Number:     h.Number,
		Timestamp:  h.Timestamp,
		GasLimit:   h.GasLimit,
		BaseFee:    h.BaseFee.Clone(),
		ChainID:    uint256.NewInt(1),
		PrevRandao: h.PrevRandao,
	}
}
