// Package workload synthesizes the evaluation set: hand-assembled EVM
// contracts and a seeded generator producing blocks whose per-frame
// memory sizes, storage-record counts, and call depths follow the
// paper's Table I (measured on Ethereum Mainnet blocks
// #19145194–#19145293). See DESIGN.md for the substitution rationale.
package workload

import (
	"hardtape/internal/evm"
	"hardtape/internal/evm/asm"
	"hardtape/internal/types"
)

// ABI selectors (first 4 bytes of keccak of the canonical signature;
// values match the real Ethereum selectors for the ERC-20 functions).
const (
	SelTransfer  uint64 = 0xa9059cbb // transfer(address,uint256)
	SelBalanceOf uint64 = 0x70a08231 // balanceOf(address)
	SelMint      uint64 = 0x40c10f19 // mint(address,uint256)
	SelApprove   uint64 = 0x095ea7b3 // approve(address,uint256)
	SelAllowance uint64 = 0xdd62ed3e // allowance(address,address)
	SelSwap      uint64 = 0x000000a1 // swap(uint256) — synthetic
)

// ERC20Runtime assembles a token contract supporting transfer,
// balanceOf, approve, allowance and mint. Balances are keyed by the
// holder's address word; allowances by owner⊕(spender<<1) — simple
// keys that keep the contract assembly tractable while exercising the
// same SLOAD/SSTORE paths as a Solidity token.
func ERC20Runtime() []byte {
	a := asm.New()
	// Deterministic dispatch order (map iteration would vary codegen).
	a.Push(0).Op(evm.CALLDATALOAD).Push(224).Op(evm.SHR)
	a.Op(evm.DUP1).Push(SelTransfer).Op(evm.EQ).JumpI("transfer")
	a.Op(evm.DUP1).Push(SelBalanceOf).Op(evm.EQ).JumpI("balanceOf")
	a.Op(evm.DUP1).Push(SelMint).Op(evm.EQ).JumpI("mint")
	a.Op(evm.DUP1).Push(SelApprove).Op(evm.EQ).JumpI("approve")
	a.Op(evm.DUP1).Push(SelAllowance).Op(evm.EQ).JumpI("allowance")
	a.Push(0).Push(0).Op(evm.REVERT)

	// --- transfer(to, amount) ---
	a.Label("transfer").Op(evm.POP)
	a.Push(4).Op(evm.CALLDATALOAD)  // [to]
	a.Push(36).Op(evm.CALLDATALOAD) // [to, amount]
	a.Op(evm.CALLER).Op(evm.SLOAD)  // [to, amount, fromBal]
	// if fromBal < amount: revert
	a.Op(evm.DUP1 + 1) // DUP2 → [to, amount, fromBal, amount]
	a.Op(evm.DUP1 + 1) // DUP2 → [to, amount, fromBal, amount, fromBal]
	a.Op(evm.LT)       // fromBal < amount → [to, amount, fromBal, cond]
	a.JumpI("revert")
	// fromBal -= amount
	a.Op(evm.DUP1 + 1)              // [to, amount, fromBal, amount]
	a.Op(evm.DUP1 + 1)              // [to, amount, fromBal, amount, fromBal]
	a.Op(evm.SUB)                   // fromBal-amount → [to, amount, fromBal, newFrom]
	a.Op(evm.CALLER).Op(evm.SSTORE) // key=caller, val=newFrom → [to, amount, fromBal]
	a.Op(evm.POP)                   // [to, amount]
	// toBal += amount
	a.Op(evm.DUP1 + 1).Op(evm.SLOAD)  // [to, amount, toBal]
	a.Op(evm.ADD)                     // [to, newToBal]
	a.Op(evm.DUP1 + 1).Op(evm.SSTORE) // key=to → [to]
	a.Op(evm.POP)
	// Bookkeeping real tokens maintain (fee accumulator, transfer
	// counter, last sender) — gives token frames the 5-key footprint
	// Table I measures for DeFi transfers.
	a.Push(36).Op(evm.CALLDATALOAD).Push(0x10).Op(evm.SSTORE)
	a.Push(1).Push(0x11).Op(evm.SSTORE)
	a.Op(evm.CALLER).Push(0x12).Op(evm.SSTORE)
	// emit Transfer(caller, to) — LOG1 with the amount as data.
	a.Push(1).Push(0).Op(evm.MSTORE)
	a.Push(0xddf2) // synthetic Transfer topic
	a.Push(32).Push(0).Op(evm.LOG1)
	// return true
	a.Push(1).Push(0).Op(evm.MSTORE).ReturnData(0, 32)

	// --- balanceOf(addr) ---
	a.Label("balanceOf").Op(evm.POP)
	a.Push(4).Op(evm.CALLDATALOAD).Op(evm.SLOAD)
	a.Push(0).Op(evm.MSTORE).ReturnData(0, 32)

	// --- mint(to, amount) ---
	a.Label("mint").Op(evm.POP)
	a.Push(4).Op(evm.CALLDATALOAD)  // [to]
	a.Op(evm.DUP1).Op(evm.SLOAD)    // [to, bal]
	a.Push(36).Op(evm.CALLDATALOAD) // [to, bal, amount]
	a.Op(evm.ADD)                   // [to, newBal]
	a.Op(evm.SWAP1)                 // [newBal, to]
	a.Op(evm.SSTORE)                // key=to
	a.Stop()

	// --- approve(spender, amount): allowance key = caller ⊕ (spender<<1) ---
	a.Label("approve").Op(evm.POP)
	a.Push(36).Op(evm.CALLDATALOAD) // [amount]
	a.Push(4).Op(evm.CALLDATALOAD)  // [amount, spender]
	a.Push(1).Op(evm.SHL)           // spender<<1 (SHL pops shift then value? shift=top) → see note
	a.Op(evm.CALLER).Op(evm.XOR)    // [amount, key]
	a.Op(evm.SSTORE)                // key on top, value below
	a.Stop()

	// --- allowance(owner, spender) ---
	a.Label("allowance").Op(evm.POP)
	a.Push(36).Op(evm.CALLDATALOAD) // [spender]
	a.Push(1).Op(evm.SHL)
	a.Push(4).Op(evm.CALLDATALOAD) // [spender<<1, owner]
	a.Op(evm.XOR).Op(evm.SLOAD)
	a.Push(0).Op(evm.MSTORE).ReturnData(0, 32)

	// --- revert ---
	a.Label("revert")
	a.Push(0).Push(0).Op(evm.REVERT)

	return a.MustAssemble()
}

// DEXRuntime assembles a constant-product AMM: swap(amountIn) computes
// out = reserveOut·in/(reserveIn+in), updates the reserves in slots
// 0/1, and transfers `out` of the token whose address sits in slot 2 to
// the caller (a real cross-contract CALL, giving the paper's depth-2+
// frames).
func DEXRuntime() []byte {
	a := asm.New()
	a.Push(0).Op(evm.CALLDATALOAD).Push(224).Op(evm.SHR)
	a.Op(evm.DUP1).Push(SelSwap).Op(evm.EQ).JumpI("swap")
	a.Push(0).Push(0).Op(evm.REVERT)

	a.Label("swap").Op(evm.POP)
	a.Push(4).Op(evm.CALLDATALOAD) // [in]
	a.Push(0).Op(evm.SLOAD)        // [in, rIn]
	a.Push(1).Op(evm.SLOAD)        // [in, rIn, rOut]
	// denom = in + rIn
	a.Op(evm.DUP1 + 2) // DUP3: [in, rIn, rOut, in]
	a.Op(evm.DUP1 + 2) // DUP3: [in, rIn, rOut, in, rIn]
	a.Op(evm.ADD)      // [in, rIn, rOut, denom]
	// num = rOut * in
	a.Op(evm.DUP1 + 1) // [.., denom, rOut]
	a.Op(evm.DUP1 + 4) // DUP5 = in → [.., denom, rOut, in]
	a.Op(evm.MUL)      // [.., denom, num]
	a.Op(evm.DIV)      // num/denom → [in, rIn, rOut, out]
	// slot1 = rOut - out
	a.Op(evm.DUP1)     // [.., out, out]
	a.Op(evm.DUP1 + 2) // [.., out, out, rOut]
	a.Op(evm.SUB)      // rOut-out → [in, rIn, rOut, out, newROut]
	a.Push(1).Op(evm.SSTORE)
	// slot0 = rIn + in
	a.Op(evm.DUP1 + 3) // DUP4 = in → [in, rIn, rOut, out, in]
	a.Op(evm.DUP1 + 3) // DUP4 = rIn → [.., in, rIn]
	a.Op(evm.ADD)
	a.Push(0).Op(evm.SSTORE) // [in, rIn, rOut, out]
	// Bookkeeping slots real AMMs maintain (cumulative price
	// observation, k-last, fee accumulators): slots 3-6 ← out.
	for slot := uint64(3); slot <= 6; slot++ {
		a.Op(evm.DUP1).Push(slot).Op(evm.SSTORE)
	}
	// token.transfer(caller, out): build calldata at mem[0..68).
	a.Push(SelTransfer).Push(224).Op(evm.SHL).Push(0).Op(evm.MSTORE)
	a.Op(evm.CALLER).Push(4).Op(evm.MSTORE)
	a.Op(evm.DUP1).Push(36).Op(evm.MSTORE) // amount = out
	a.Push(0).Push(0)                      // outSize, outOff
	a.Push(68).Push(0)                     // inSize, inOff
	a.Push(0)                              // value
	a.Push(2).Op(evm.SLOAD)                // token address from slot 2
	a.Op(evm.GAS)
	a.Op(evm.CALL).Op(evm.POP)
	// return out
	a.Push(0).Op(evm.MSTORE) // [in, rIn, rOut] — out stored
	a.ReturnData(0, 32)

	return a.MustAssemble()
}

// DeepCallerRuntime assembles a contract that re-enters itself
// calldata[0] times, producing call chains of arbitrary depth
// (Table I's depth distribution).
func DeepCallerRuntime() []byte {
	a := asm.New()
	a.Push(0).Op(evm.CALLDATALOAD) // [n]
	a.Op(evm.DUP1).Op(evm.ISZERO).JumpI("done")
	// mem[0..32) = n-1
	a.Push(1).Op(evm.SWAP1).Op(evm.SUB) // [n-1]
	a.Push(0).Op(evm.MSTORE)
	a.Push(0).Push(0)  // outSize, outOff
	a.Push(32).Push(0) // inSize, inOff
	a.Push(0)          // value
	a.Op(evm.ADDRESS)  // self
	a.Op(evm.GAS)
	a.Op(evm.CALL).Op(evm.POP)
	a.Stop()
	a.Label("done")
	a.Stop()
	return a.MustAssemble()
}

// StorageHeavyRuntime assembles the roll-up-style contract: it writes
// calldata[0] consecutive storage slots (the workload that exercises
// the paper's 32-records-per-page grouping, and at large n the
// Memory Overflow discussion's heavy frames).
func StorageHeavyRuntime() []byte {
	a := asm.New()
	a.Push(0).Op(evm.CALLDATALOAD) // [i]
	a.Label("loop")
	a.Op(evm.DUP1).Op(evm.ISZERO).JumpI("end")
	// sstore(i, i+1)
	a.Op(evm.DUP1).Push(1).Op(evm.ADD) // [i, i+1]
	a.Op(evm.DUP1 + 1)                 // [i, i+1, i]
	a.Op(evm.SSTORE)                   // [i]
	a.Push(1).Op(evm.SWAP1).Op(evm.SUB)
	a.Jump("loop")
	a.Label("end")
	a.Stop()
	return a.MustAssemble()
}

// MemoryHogRuntime assembles a contract that expands Memory to
// calldata[0] bytes — the attack contract that must trip the HEVM's
// Memory Overflow Error (§V A2) instead of harming other sessions.
func MemoryHogRuntime() []byte {
	a := asm.New()
	a.Push(0xff)
	a.Push(0).Op(evm.CALLDATALOAD)
	a.Op(evm.MSTORE8)
	a.Stop()
	return a.MustAssemble()
}

// ArithmeticLoopRuntime assembles the Fig. 5 arithmetic benchmark: a
// counted loop of ALU work with no storage or call activity.
func ArithmeticLoopRuntime() []byte {
	a := asm.New()
	a.Push(0).Op(evm.CALLDATALOAD) // [i]
	a.Label("loop")
	a.Op(evm.DUP1).Op(evm.ISZERO).JumpI("end")
	// ALU noise: i*i, i+i, discard.
	a.Op(evm.DUP1).Op(evm.DUP1).Op(evm.MUL).Op(evm.POP)
	a.Op(evm.DUP1).Op(evm.DUP1).Op(evm.ADD).Op(evm.POP)
	a.Push(1).Op(evm.SWAP1).Op(evm.SUB)
	a.Jump("loop")
	a.Label("end")
	a.Stop()
	return a.MustAssemble()
}

// MemoryWorkerRuntime assembles a contract that touches Memory up to
// calldata[0] bytes and copies its input around — used to realize
// Table I's memory/input size distribution.
func MemoryWorkerRuntime() []byte {
	a := asm.New()
	// Copy all calldata into memory, then MSTORE8 at the target size.
	a.Op(evm.CALLDATASIZE).Push(0).Push(0).Op(evm.CALLDATACOPY)
	a.Push(0xaa)
	a.Push(0).Op(evm.CALLDATALOAD)
	a.Op(evm.MSTORE8)
	// Return the first 64 bytes.
	a.ReturnData(0, 64)
	return a.MustAssemble()
}

// PaddedRuntime appends JUMPDEST padding to reach a target code size
// without altering behaviour — used to realize Table I's code-size
// distribution (the padding is never executed).
func PaddedRuntime(runtime []byte, targetSize int) []byte {
	if len(runtime) >= targetSize {
		return runtime
	}
	out := make([]byte, targetSize)
	copy(out, runtime)
	for i := len(runtime); i < targetSize; i++ {
		out[i] = byte(evm.JUMPDEST)
	}
	return out
}

// CalldataTransfer builds the ABI calldata for transfer(to, amount).
func CalldataTransfer(to types.Address, amount uint64) []byte {
	return buildCall(SelTransfer, to.Word().Bytes32(), u64Word(amount))
}

// CalldataBalanceOf builds calldata for balanceOf(addr).
func CalldataBalanceOf(addr types.Address) []byte {
	return buildCall(SelBalanceOf, addr.Word().Bytes32())
}

// CalldataMint builds calldata for mint(to, amount).
func CalldataMint(to types.Address, amount uint64) []byte {
	return buildCall(SelMint, to.Word().Bytes32(), u64Word(amount))
}

// CalldataSwap builds calldata for swap(amountIn).
func CalldataSwap(amountIn uint64) []byte {
	return buildCall(SelSwap, u64Word(amountIn))
}

// CalldataUint builds a single-word calldata (deep-caller, loops).
func CalldataUint(v uint64) []byte {
	w := u64Word(v)
	return w[:]
}

func u64Word(v uint64) [32]byte {
	var w [32]byte
	for i := 0; i < 8; i++ {
		w[31-i] = byte(v >> (8 * i))
	}
	return w
}

func buildCall(selector uint64, words ...[32]byte) []byte {
	out := []byte{
		byte(selector >> 24), byte(selector >> 16),
		byte(selector >> 8), byte(selector),
	}
	for _, w := range words {
		out = append(out, w[:]...)
	}
	return out
}
