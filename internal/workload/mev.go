package workload

import (
	"fmt"
	"math"

	"hardtape/internal/types"
)

// MEVBundle builds a high-conflict "searcher" bundle: n transactions
// from n DISTINCT senders, of which a conflictRate fraction are
// near-identical swaps hammering ONE DEX pool — every one reads and
// rewrites the pool's reserve slots 0/1 (plus the pool token's fee and
// bookkeeping slots), the canonical MEV backrun shape. The remainder
// are storage-free compute (uniform-cost arithmetic loops), which
// touch no shared state and commit cleanly, so conflictRate alone
// controls the fraction of transactions an optimistic scheduler must
// re-execute — and the rate-0 point is a balanced lane-scaling
// workload rather than a commit-overhead microbenchmark.
//
// Senders sign at their canonical (genesis) nonce; the bundle is a
// pre-execution artifact and never advances the generator's nonces.
func (w *World) MEVBundle(n int, conflictRate float64) (*types.Bundle, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: mev bundle needs at least 1 tx, got %d", n)
	}
	if n > len(w.EOAs) {
		return nil, fmt.Errorf("workload: mev bundle needs %d distinct senders, world has %d EOAs", n, len(w.EOAs))
	}
	if conflictRate < 0 || conflictRate > 1 {
		return nil, fmt.Errorf("workload: conflict rate %v outside [0,1]", conflictRate)
	}
	hot := int(math.Round(conflictRate * float64(n)))
	pool := w.DEXes[0]
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		sender := w.EOAs[i]
		nonce := uint64(0)
		if acct, ok := w.State.Account(sender); ok {
			nonce = acct.Nonce
		}
		var (
			tx  *types.Transaction
			err error
		)
		if i < hot {
			// Searcher swap: distinct amounts keep the txs distinguishable
			// while every one contends on the pool's reserve slots.
			tx, err = w.SignedTxAt(sender, nonce, &pool, 0, CalldataSwap(uint64(1000+i)), 300_000)
		} else {
			// Conflict-free filler: a compute-only loop reading and
			// writing nothing any other transaction touches.
			to := w.ArithLoop
			tx, err = w.SignedTxAt(sender, nonce, &to, 0, CalldataUint(1500+uint64(i)*16), 2_000_000)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: mev tx %d: %w", i, err)
		}
		txs = append(txs, tx)
	}
	return &types.Bundle{Txs: txs}, nil
}

// ConflictFreeBundle builds an n-transaction bundle with pairwise
// disjoint read/write storage sets: distinct senders rotate through
// plain ETH transfers to fresh recipients, token balance reads of their
// own (distinct) balance slots, and memory-worker calls that touch no
// storage at all. An optimistic scheduler commits every speculation
// unchanged — the upper-bound workload for lane-speedup measurements.
func (w *World) ConflictFreeBundle(n int) (*types.Bundle, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: bundle needs at least 1 tx, got %d", n)
	}
	if n > len(w.EOAs) {
		return nil, fmt.Errorf("workload: bundle needs %d distinct senders, world has %d EOAs", n, len(w.EOAs))
	}
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		sender := w.EOAs[i]
		nonce := uint64(0)
		if acct, ok := w.State.Account(sender); ok {
			nonce = acct.Nonce
		}
		var (
			tx  *types.Transaction
			err error
		)
		switch i % 3 {
		case 0:
			to := types.BytesToAddress([]byte{0xcf, 0xcf, byte(i >> 8), byte(i)})
			tx, err = w.SignedTxAt(sender, nonce, &to, uint64(50+i), nil, 40_000)
		case 1:
			token := w.Tokens[i%len(w.Tokens)]
			tx, err = w.SignedTxAt(sender, nonce, &token, 0, CalldataBalanceOf(sender), 80_000)
		default:
			to := w.MemWorkers[i%len(w.MemWorkers)]
			tx, err = w.SignedTxAt(sender, nonce, &to, 0, CalldataUint(4096+uint64(i)*128), 2_000_000)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: conflict-free tx %d: %w", i, err)
		}
		txs = append(txs, tx)
	}
	return &types.Bundle{Txs: txs}, nil
}
