package bench

import (
	"strings"
	"testing"
)

func TestNoiseAblation(t *testing.T) {
	rep, err := RunNoiseAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalWithoutNoise {
		t.Error("without noise, identical workloads should give identical swap sizes")
	}
	if rep.IdenticalWithNoise {
		t.Error("with noise, swap sizes should differ across RNG seeds")
	}
	if rep.SwapEventsObserved == 0 {
		t.Error("no swap traffic generated")
	}
	if !strings.Contains(rep.Render(), "noise ON") {
		t.Error("render incomplete")
	}
}

func TestPrefetchAblation(t *testing.T) {
	env := smallEnv(t)
	rep, err := RunPrefetchAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	// Without prefetching, code pages form long contiguous runs; with
	// it, they interleave with K-V queries.
	if rep.MaxCodeRunWithout <= rep.MaxCodeRunWith {
		t.Errorf("code-run ablation inverted: with=%d without=%d",
			rep.MaxCodeRunWith, rep.MaxCodeRunWithout)
	}
	if rep.QueriesWith == 0 || rep.QueriesWithout == 0 {
		t.Error("no queries recorded")
	}
	if !strings.Contains(rep.Render(), "prefetch OFF") {
		t.Error("render incomplete")
	}
}

func TestGroupingAblation(t *testing.T) {
	rep, err := RunGroupingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// 1/page must cost 32 queries; 32/page must cost 1.
	if rep.Rows[0].GroupSize != 1 || rep.Rows[0].ORAMQueries != 32 {
		t.Errorf("ungrouped scan: %+v", rep.Rows[0])
	}
	if rep.Rows[2].GroupSize != 32 || rep.Rows[2].ORAMQueries != 1 {
		t.Errorf("grouped scan: %+v", rep.Rows[2])
	}
	if rep.Rows[0].BytesMoved <= rep.Rows[2].BytesMoved {
		t.Error("grouping should reduce bytes moved")
	}
	if !strings.Contains(rep.Render(), "records/page") {
		t.Error("render incomplete")
	}
}

func TestDepthAblation(t *testing.T) {
	rep, err := RunDepthAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Bytes per access must grow monotonically with capacity (O(log n)).
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].BytesPerAccess <= rep.Rows[i-1].BytesPerAccess {
			t.Errorf("bytes/access not growing: %+v then %+v", rep.Rows[i-1], rep.Rows[i])
		}
		if rep.Rows[i].Depth <= rep.Rows[i-1].Depth {
			t.Errorf("depth not growing with capacity")
		}
	}
	// And the growth should be roughly linear in depth: ratio of
	// (bytes/access)/depth stays within 2x across the sweep.
	first := float64(rep.Rows[0].BytesPerAccess) / float64(rep.Rows[0].Depth)
	last := float64(rep.Rows[len(rep.Rows)-1].BytesPerAccess) / float64(rep.Rows[len(rep.Rows)-1].Depth)
	if last > 2*first || first > 2*last {
		t.Errorf("bytes/access not ∝ depth: %f vs %f", first, last)
	}
	if !strings.Contains(rep.Render(), "O(log n)") {
		t.Error("render incomplete")
	}
}

func TestMaxCodeRun(t *testing.T) {
	if got := maxCodeRun([]byte("kkcccck")); got != 4 {
		t.Errorf("maxCodeRun = %d, want 4", got)
	}
	if got := maxCodeRun([]byte("ckckck")); got != 1 {
		t.Errorf("interleaved maxCodeRun = %d, want 1", got)
	}
	if maxCodeRun(nil) != 0 {
		t.Error("empty sequence")
	}
}
