package bench

import (
	"fmt"
	"math"
	"strings"

	"hardtape/internal/core"
	"hardtape/internal/evm"
	"hardtape/internal/hevm"
	"hardtape/internal/oram"
	"hardtape/internal/pager"
	"hardtape/internal/simclock"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// This file holds the ablations of DESIGN.md §5: each isolates one of
// the paper's design choices and measures what breaks without it.

// --- Ablation 1: swap-size noise (paper §IV-B, attack A5) ---

// NoiseAblation compares the adversary-observable L3 swap sizes with
// the random pre-evict/pre-load noise on and off.
type NoiseAblation struct {
	// WithoutNoise: swap sequences for two runs of the same contract
	// are identical — the sizes are a stable contract fingerprint.
	IdenticalWithoutNoise bool
	// WithNoise: the same two runs differ — sizes are noise-bound.
	IdenticalWithNoise bool
	SwapEventsObserved int
}

// RunNoiseAblation executes a heavy multi-frame workload twice per
// noise setting (different RNG seeds, same contract) and compares the
// observed swap-size sequences.
func RunNoiseAblation() (*NoiseAblation, error) {
	run := func(noiseMax int, seed int64) ([]hevm.SwapEvent, error) {
		cfg := hevm.DefaultConfig()
		cfg.L2Bytes = 64 * 1024
		cfg.FrameLimitBytes = 32 * 1024
		cfg.NoiseMaxPages = noiseMax
		clock := simclock.NewClock()
		m, err := hevm.New(cfg, clock, simclock.DefaultCalibration(), make([]byte, 32), seed)
		if err != nil {
			return nil, err
		}
		// Deterministic 3-frame workload exceeding L2.
		h := m.Hooks()
		for d := 0; d < 3; d++ {
			h.OnCallEnter(frameInfo(d, 1000))
			h.OnMemAccess(memInfo(24 * 1024))
		}
		h.OnCallExit(exitInfo(2))
		h.OnCallExit(exitInfo(1))
		return m.SwapTrace(), nil
	}
	sizes := func(events []hevm.SwapEvent) []int {
		out := make([]int, len(events))
		for i, ev := range events {
			out[i] = ev.Pages
		}
		return out
	}
	equal := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	off1, err := run(0, 1)
	if err != nil {
		return nil, err
	}
	off2, err := run(0, 2)
	if err != nil {
		return nil, err
	}
	on1, err := run(8, 1)
	if err != nil {
		return nil, err
	}
	on2, err := run(8, 2)
	if err != nil {
		return nil, err
	}
	return &NoiseAblation{
		IdenticalWithoutNoise: equal(sizes(off1), sizes(off2)),
		IdenticalWithNoise:    equal(sizes(on1), sizes(on2)),
		SwapEventsObserved:    len(on1),
	}, nil
}

// Render produces the report text.
func (a *NoiseAblation) Render() string {
	var sb strings.Builder
	sb.WriteString("ABLATION — L3 swap-size noise (attack A5)\n\n")
	fmt.Fprintf(&sb, "noise OFF: identical runs give identical swap sizes: %v (fingerprintable)\n",
		a.IdenticalWithoutNoise)
	fmt.Fprintf(&sb, "noise ON:  identical runs give identical swap sizes: %v (unlinkable)\n",
		a.IdenticalWithNoise)
	fmt.Fprintf(&sb, "swap events observed: %d\n", a.SwapEventsObserved)
	return sb.String()
}

// --- Ablation 2: pagewise code prefetching (paper §IV-D problem 3) ---

// PrefetchAblation compares the *position* of code-page queries in the
// adversary-observable query sequence with and without the randomized
// prefetch timer. With a burst fetch, an execution frame shows as a
// contiguous run of code queries — the pattern §IV-D problem 3 says
// "can possibly be used to identify the running contract". With
// prefetching, code queries are interleaved among K-V queries.
type PrefetchAblation struct {
	// MaxCodeRun is the longest contiguous run of code-page queries.
	MaxCodeRunWith    int
	MaxCodeRunWithout int
	QueriesWith       int
	QueriesWithout    int
}

// RunPrefetchAblation executes the same multi-page-code workload on a
// -full device with prefetching on and off.
func RunPrefetchAblation(env *Env) (*PrefetchAblation, error) {
	run := func(disable bool) ([]byte, error) {
		cfg := core.DefaultConfig()
		cfg.Features = core.ConfigFull
		cfg.HEVMs = 1
		cfg.DisablePrefetch = disable
		dev, err := core.NewDevice(cfg, nil, env.Chain)
		if err != nil {
			return nil, err
		}
		if err := dev.Sync(); err != nil {
			return nil, err
		}
		// A swap touches two contracts with Table-I-sized (multi-page)
		// code plus several storage queries. Stratified deployment puts
		// the largest code on the last pool — the interesting case for
		// burst visibility.
		dex := env.World.DEXes[len(env.World.DEXes)-1]
		tx, err := env.World.SignedTxAt(env.World.EOAs[0], 0, &dex, 0,
			workload.CalldataSwap(1000), 400_000)
		if err != nil {
			return nil, err
		}
		res, err := dev.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
		if err != nil {
			return nil, err
		}
		return res.QueryKinds, nil
	}
	with, err := run(false)
	if err != nil {
		return nil, err
	}
	without, err := run(true)
	if err != nil {
		return nil, err
	}
	return &PrefetchAblation{
		MaxCodeRunWith:    maxCodeRun(with),
		MaxCodeRunWithout: maxCodeRun(without),
		QueriesWith:       len(with),
		QueriesWithout:    len(without),
	}, nil
}

// maxCodeRun finds the longest contiguous run of code-page queries in
// a query-kind sequence.
func maxCodeRun(kinds []byte) int {
	best, cur := 0, 0
	for _, k := range kinds {
		if k == 'c' {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// Render produces the report text.
func (a *PrefetchAblation) Render() string {
	var sb strings.Builder
	sb.WriteString("ABLATION — pagewise code prefetching (§IV-D problem 3)\n\n")
	fmt.Fprintf(&sb, "prefetch ON:  %d queries, longest code-query run %d (code spread between K-V queries)\n",
		a.QueriesWith, a.MaxCodeRunWith)
	fmt.Fprintf(&sb, "prefetch OFF: %d queries, longest code-query run %d (frame boundaries visible as bursts)\n",
		a.QueriesWithout, a.MaxCodeRunWithout)
	return sb.String()
}

// --- Ablation 3: record grouping (paper §IV-D problems 1–2) ---

// GroupingAblation measures the ORAM cost of reading 32 consecutive
// storage records (a Solidity array scan) under different group sizes.
type GroupingAblation struct {
	Rows []GroupingRow
}

// GroupingRow is one group-size configuration.
type GroupingRow struct {
	GroupSize   int
	ORAMQueries uint64
	BytesMoved  uint64
}

// RunGroupingAblation scans 32 consecutive keys through ORAM-backed
// stores with group sizes 1, 8 and 32.
func RunGroupingAblation() (*GroupingAblation, error) {
	out := &GroupingAblation{}
	for _, gs := range []int{1, 8, 32} {
		srv, err := oram.NewMemServer(4096)
		if err != nil {
			return nil, err
		}
		cli, err := oram.NewClient(srv, make([]byte, oram.KeySize))
		if err != nil {
			return nil, err
		}
		store, err := pager.NewStoreGrouped(pager.NewORAMBackend(cli), gs)
		if err != nil {
			return nil, err
		}
		addr := types.MustAddress("0x00000000000000000000000000000000000000aa")
		for i := byte(0); i < 32; i++ {
			if err := store.WriteStorageRecord(addr, types.Hash{31: i}, types.Hash{31: i + 1}); err != nil {
				return nil, err
			}
		}
		// The scan models the Hypervisor's L1 world-state cache: a page
		// already fetched for an earlier key in the same group serves
		// later keys without another ORAM access.
		before := cli.Stats()
		var lastGroup types.Hash
		haveGroup := false
		for i := byte(0); i < 32; i++ {
			key := types.Hash{31: i}
			group := store.GroupKey(key)
			if haveGroup && group == lastGroup {
				continue
			}
			if _, _, err := store.ReadStorageRecord(addr, key); err != nil {
				return nil, err
			}
			lastGroup, haveGroup = group, true
		}
		after := cli.Stats()
		out.Rows = append(out.Rows, GroupingRow{
			GroupSize:   gs,
			ORAMQueries: after.Accesses - before.Accesses,
			BytesMoved:  after.BytesMoved - before.BytesMoved,
		})
	}
	return out, nil
}

// Render produces the report text.
func (a *GroupingAblation) Render() string {
	var sb strings.Builder
	sb.WriteString("ABLATION — storage record grouping (§IV-D problems 1-2)\n")
	sb.WriteString("scan of 32 consecutive records (Solidity array layout):\n\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s\n", "records/page", "ORAM queries", "bytes moved")
	for _, r := range a.Rows {
		fmt.Fprintf(&sb, "%-12d %14d %14d\n", r.GroupSize, r.ORAMQueries, r.BytesMoved)
	}
	sb.WriteString("\npaper's choice (32/page) turns an array scan into a single page fetch\n")
	return sb.String()
}

// --- Ablation 4: ORAM capacity scaling (O(log n) bandwidth) ---

// DepthAblation measures per-access bandwidth as capacity grows.
type DepthAblation struct {
	Rows []DepthRow
}

// DepthRow is one capacity point.
type DepthRow struct {
	Capacity       uint64
	Depth          int
	BytesPerAccess uint64
}

// RunDepthAblation sweeps the ORAM capacity and measures the real
// bytes-moved-per-access, which should grow with log(n).
func RunDepthAblation() (*DepthAblation, error) {
	out := &DepthAblation{}
	for _, capacity := range []uint64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		srv, err := oram.NewMemServer(capacity)
		if err != nil {
			return nil, err
		}
		cli, err := oram.NewClient(srv, make([]byte, oram.KeySize))
		if err != nil {
			return nil, err
		}
		payload := make([]byte, oram.BlockSize)
		const accesses = 64
		for i := 0; i < accesses; i++ {
			if err := cli.Write(oram.BlockID(i), payload); err != nil {
				return nil, err
			}
		}
		st := cli.Stats()
		out.Rows = append(out.Rows, DepthRow{
			Capacity:       capacity,
			Depth:          st.Depth,
			BytesPerAccess: st.BytesMoved / st.Accesses,
		})
	}
	return out, nil
}

// Render produces the report text.
func (a *DepthAblation) Render() string {
	var sb strings.Builder
	sb.WriteString("ABLATION — ORAM bandwidth vs capacity (O(log n) overhead)\n\n")
	fmt.Fprintf(&sb, "%-12s %8s %16s %18s\n", "capacity", "depth", "bytes/access", "bytes / log2(cap)")
	for _, r := range a.Rows {
		ratio := float64(r.BytesPerAccess) / math.Log2(float64(r.Capacity))
		fmt.Fprintf(&sb, "%-12d %8d %16d %18.0f\n", r.Capacity, r.Depth, r.BytesPerAccess, ratio)
	}
	sb.WriteString("\nbytes/access grows ∝ depth = O(log n), the Path ORAM bound the paper cites\n")
	return sb.String()
}

// frameInfo/memInfo/exitInfo build hook payloads for direct machine
// driving.
func frameInfo(depth, codeSize int) evm.CallFrameInfo {
	return evm.CallFrameInfo{Depth: depth, CodeSize: codeSize}
}

func memInfo(size uint64) evm.MemAccess {
	return evm.MemAccess{Size: size, Write: true}
}

func exitInfo(depth int) evm.CallResultInfo {
	return evm.CallResultInfo{Depth: depth}
}
