package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"hardtape/internal/core"
	"hardtape/internal/telemetry"
)

// TraceRow is one timed configuration of the tracing-overhead sweep:
// the same device and bundle stream with the flight recorder disabled
// (the production hot path — one nil check per span site) or enabled.
type TraceRow struct {
	Mode      string        `json:"mode"` // "disabled" | "traced"
	Bundles   int           `json:"bundles"`
	Wall      time.Duration `json:"wall_ns"`
	PerBundle time.Duration `json:"per_bundle_ns"`
	// OverheadPct is this row's per-bundle wall time over the disabled
	// row's, minus one, in percent. The disabled row reads 0.
	OverheadPct float64 `json:"overhead_pct"`
}

// TraceSweepReport is the sweep plus what the recorder kept: its
// tail-sampling counters and one captured trace as a shape witness.
type TraceSweepReport struct {
	Txs          int                     `json:"txs_per_bundle"`
	Lanes        int                     `json:"lanes"`
	ConflictRate float64                 `json:"conflict_rate"`
	Rows         []TraceRow              `json:"rows"`
	Recorder     telemetry.RecorderStats `json:"recorder"`
	SampleTrace  string                  `json:"sample_trace,omitempty"`
	SampleSpans  []string                `json:"sample_spans,omitempty"`
}

// TraceSweep measures what end-to-end tracing costs on the bundle
// path. Two identical -full devices (parallel lanes, sharded ORAM)
// pre-execute the same high-conflict MEV bundle stream; one runs with
// telemetry attached but tracing disabled (the default), the other
// with the tail-sampling flight recorder on and a root span around
// every bundle. Wall-clock time is the real host cost — the virtual
// clock models the hardware and does not move with tracing.
func TraceSweep(env *Env, txs, bundles int) (*TraceSweepReport, error) {
	const (
		lanes        = 4
		shards       = 4
		conflictRate = 0.5
	)
	if txs > len(env.World.EOAs) {
		txs = len(env.World.EOAs)
	}
	bundle, err := env.World.MEVBundle(txs, conflictRate)
	if err != nil {
		return nil, err
	}

	mkDevice := func(reg *telemetry.Registry) (*core.Device, error) {
		cfg := core.DefaultConfig()
		cfg.Features = core.ConfigFull
		cfg.HEVMs = 1
		cfg.Lanes = lanes
		cfg.ORAMShards = shards
		cfg.Telemetry = reg
		dev, err := core.NewDevice(cfg, nil, env.Chain)
		if err != nil {
			return nil, err
		}
		if err := dev.Sync(); err != nil {
			return nil, err
		}
		return dev, nil
	}

	run := func(dev *core.Device, tr *telemetry.Tracer, n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			ctx := context.Background()
			var sp *telemetry.TraceSpan
			if tr != nil {
				sp = tr.StartSpan("bench.bundle", telemetry.SpanContext{})
				ctx = telemetry.ContextWithSpan(ctx, sp.Context())
			}
			res, err := dev.ExecuteContext(ctx, bundle)
			if err == nil && res.Aborted != nil {
				err = res.Aborted
			}
			sp.SetError(err)
			sp.End()
			if err != nil {
				return 0, fmt.Errorf("bench: trace sweep bundle %d: %w", i, err)
			}
		}
		return time.Since(start), nil
	}

	rep := &TraceSweepReport{Txs: txs, Lanes: lanes, ConflictRate: conflictRate}

	// Disabled row: registry attached (metrics live), tracer nil.
	offReg := telemetry.NewRegistry()
	offDev, err := mkDevice(offReg)
	if err != nil {
		return nil, fmt.Errorf("bench: trace sweep disabled device: %w", err)
	}
	if _, err := run(offDev, nil, 2); err != nil { // warm ORAM stash and caches
		return nil, err
	}
	offWall, err := run(offDev, nil, bundles)
	if err != nil {
		return nil, err
	}

	// Traced row: same device shape, flight recorder on.
	onReg := telemetry.NewRegistry()
	onDev, err := mkDevice(onReg)
	if err != nil {
		return nil, fmt.Errorf("bench: trace sweep traced device: %w", err)
	}
	tr := onReg.EnableTracing("bench", 0)
	defer onReg.FlightRecorder().Close()
	if _, err := run(onDev, tr, 2); err != nil {
		return nil, err
	}
	onWall, err := run(onDev, tr, bundles)
	if err != nil {
		return nil, err
	}

	rep.Rows = []TraceRow{
		{Mode: "disabled", Bundles: bundles, Wall: offWall,
			PerBundle: offWall / time.Duration(bundles)},
		{Mode: "traced", Bundles: bundles, Wall: onWall,
			PerBundle:   onWall / time.Duration(bundles),
			OverheadPct: (float64(onWall)/float64(offWall) - 1) * 100},
	}

	rec := onReg.FlightRecorder()
	rep.Recorder = rec.Stats()
	if kept := rec.Traces(); len(kept) > 0 {
		t := kept[0]
		rep.SampleTrace = t.ID.String()
		names := map[string]bool{}
		for _, s := range t.Spans {
			names[s.Name] = true
		}
		for n := range names {
			rep.SampleSpans = append(rep.SampleSpans, n)
		}
		sort.Strings(rep.SampleSpans)
	}
	return rep, nil
}

// Render produces the textual overhead table.
func (r *TraceSweepReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TRACING OVERHEAD — %d-tx MEV bundles (rate %.2f), -full device, %d lanes\n\n",
		r.Txs, r.ConflictRate, r.Lanes)
	fmt.Fprintf(&sb, "%10s %9s %12s %14s %10s\n", "mode", "bundles", "wall", "per-bundle", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%10s %9d %12s %14s %9.1f%%\n",
			row.Mode, row.Bundles, row.Wall.Round(time.Microsecond),
			row.PerBundle.Round(time.Microsecond), row.OverheadPct)
	}
	fmt.Fprintf(&sb, "\nrecorder: kept %d (err %d) dropped %d expired %d pending %d\n",
		r.Recorder.Kept, r.Recorder.ErrKept, r.Recorder.Dropped,
		r.Recorder.Expired, r.Recorder.Pending)
	if r.SampleTrace != "" {
		fmt.Fprintf(&sb, "sample trace %s spans: %s\n", r.SampleTrace, strings.Join(r.SampleSpans, ", "))
	}
	sb.WriteString("\nexpected shape: single-digit overhead when traced; the disabled row\n")
	sb.WriteString("is the production default (one nil check per span site, 0 allocs)\n")
	return sb.String()
}
