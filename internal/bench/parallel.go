package bench

import (
	"fmt"
	"strings"
	"time"

	"hardtape/internal/core"
	"hardtape/internal/types"
)

// ParallelRow is one cell of the lanes × conflict-rate sweep: modeled
// bundle latency and scheduler behaviour for one configuration.
type ParallelRow struct {
	Lanes        int           `json:"lanes"`
	ConflictRate float64       `json:"conflict_rate"`
	VirtualTime  time.Duration `json:"virtual_time_ns"`
	// Speedup is sequential virtual time over this row's, at the same
	// conflict rate.
	Speedup     float64       `json:"speedup"`
	Conflicts   int           `json:"conflicts"`
	ReExecs     int           `json:"reexecs"`
	SpecRetries int           `json:"spec_retries"`
	ReExecTime  time.Duration `json:"reexec_time_ns"`
	Occupancy   float64       `json:"occupancy"`
}

// ParallelReport is the full sweep plus its shape.
type ParallelReport struct {
	Txs  int           `json:"txs_per_bundle"`
	Rows []ParallelRow `json:"rows"`
}

// ParallelSweep measures the optimistic intra-bundle scheduler across
// lane counts and conflict rates on the MEV-searcher workload
// (workload.MEVBundle): distinct senders, a conflictRate fraction of
// them hammering one DEX pool's reserve slots. Devices run -raw so the
// numbers isolate execution scaling from the per-bundle crypto and
// ORAM constants (Fig. 4's additive terms are unchanged by lanes).
// Traces stay byte-identical to sequential execution at every point —
// only the modeled time and the conflict counters move.
func ParallelSweep(env *Env, txs int, laneCounts []int, rates []float64) (*ParallelReport, error) {
	if len(laneCounts) == 0 {
		laneCounts = []int{1, 2, 4, 8}
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.25, 0.5, 1}
	}
	devices := make(map[int]*core.Device, len(laneCounts))
	mkDevice := func(lanes int) (*core.Device, error) {
		cfg := core.DefaultConfig()
		cfg.Features = core.ConfigRaw
		cfg.HEVMs = 1
		cfg.Lanes = lanes
		dev, err := core.NewDevice(cfg, nil, env.Chain)
		if err != nil {
			return nil, err
		}
		if err := dev.Sync(); err != nil {
			return nil, err
		}
		return dev, nil
	}
	for _, lanes := range laneCounts {
		dev, err := mkDevice(lanes)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel device (%d lanes): %w", lanes, err)
		}
		devices[lanes] = dev
	}
	seqDev, err := mkDevice(0)
	if err != nil {
		return nil, fmt.Errorf("bench: parallel baseline device: %w", err)
	}

	rep := &ParallelReport{Txs: txs}
	for _, rate := range rates {
		bundle, err := env.World.MEVBundle(txs, rate)
		if err != nil {
			return nil, err
		}
		seq, err := seqDev.Execute(bundle)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel baseline (rate %.2f): %w", rate, err)
		}
		for _, lanes := range laneCounts {
			res, err := runParallelBundle(devices[lanes], bundle)
			if err != nil {
				return nil, fmt.Errorf("bench: parallel %d lanes rate %.2f: %w", lanes, rate, err)
			}
			row := ParallelRow{
				Lanes:        lanes,
				ConflictRate: rate,
				VirtualTime:  res.VirtualTime,
				Speedup:      float64(seq.VirtualTime) / float64(res.VirtualTime),
			}
			if p := res.Parallel; p != nil {
				row.Conflicts = p.Conflicts
				row.ReExecs = p.ReExecs
				row.SpecRetries = p.SpecRetries
				row.ReExecTime = p.ReExecTime
				row.Occupancy = p.Occupancy
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// runParallelBundle executes one bundle and cross-checks its gas
// against nothing — it exists so a scheduler error surfaces with the
// aborting transaction rather than as a skewed row.
func runParallelBundle(dev *core.Device, bundle *types.Bundle) (*core.BundleResult, error) {
	res, err := dev.Execute(bundle)
	if err != nil {
		return nil, err
	}
	if res.Aborted != nil {
		return nil, fmt.Errorf("aborted: %w", res.Aborted)
	}
	return res, nil
}

// Render produces the textual sweep table.
func (r *ParallelReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PARALLEL PRE-EXECUTION — lanes × conflict-rate sweep (%d-tx MEV bundles, -raw device)\n\n", r.Txs)
	fmt.Fprintf(&sb, "%8s %8s %12s %9s %10s %8s %10s %10s\n",
		"lanes", "rate", "virtual", "speedup", "conflicts", "reexecs", "reexec-t", "occupancy")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8d %8.2f %12s %8.2fx %10d %8d %10s %9.2f\n",
			row.Lanes, row.ConflictRate, row.VirtualTime.Round(time.Microsecond),
			row.Speedup, row.Conflicts, row.ReExecs,
			row.ReExecTime.Round(time.Microsecond), row.Occupancy)
	}
	sb.WriteString("\nexpected shape: speedup ≈ lanes at rate 0, decaying toward 1x as the\n")
	sb.WriteString("conflict rate forces the committer to re-execute serially; traces are\n")
	sb.WriteString("byte-identical to sequential execution at every cell\n")
	return sb.String()
}
