package bench

import (
	"crypto/rand"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/core"
	"hardtape/internal/fleet"
	"hardtape/internal/session"
	"hardtape/internal/simclock"
)

// SessionsReport is the cold-vs-warm handshake sweep: the wall-clock
// and asymmetric-operation cost of a full attested dial against a
// ticket resume, plus the simclock-modeled hardware costs (the
// software ECDSA on the A53 dominates the real device's cold dial; our
// host CPU hides it, so both views are reported).
type SessionsReport struct {
	N           int           `json:"n"`
	TicketBytes int           `json:"ticket_bytes"`
	ColdMean    time.Duration `json:"cold_mean_ns"`
	ColdP95     time.Duration `json:"cold_p95_ns"`
	WarmMean    time.Duration `json:"warm_mean_ns"`
	WarmP95     time.Duration `json:"warm_p95_ns"`
	Speedup     float64       `json:"speedup"`
	ColdAsymOps uint64        `json:"cold_asym_ops"`
	WarmAsymOps uint64        `json:"warm_asym_ops"`
	// Modeled device-clock costs from the simclock calibration.
	ModelCold time.Duration `json:"model_cold_ns"`
	ModelWarm time.Duration `json:"model_warm_ns"`
}

// sessionRig is a service over an unsigned device (resume forbids the
// per-message ECDSA layer) with its own manufacturer so the verifier
// can pin a root of trust.
type sessionRig struct {
	dev *core.Device
	svc *core.Service
	vrf *attest.Verifier
}

func newSessionRig(env *Env) (*sessionRig, error) {
	mfr, err := attest.NewManufacturer()
	if err != nil {
		return nil, err
	}
	dcfg := core.DefaultConfig()
	dcfg.Features = core.ConfigE
	dev, err := core.NewDevice(dcfg, mfr, env.Chain)
	if err != nil {
		return nil, err
	}
	if err := dev.Sync(); err != nil {
		return nil, err
	}
	return &sessionRig{
		dev: dev,
		svc: core.NewService(dev),
		vrf: attest.NewVerifier(mfr.PublicKey(), core.ImageMeasurement()),
	}, nil
}

// serve answers one connection in the background and returns the
// client end.
func (sr *sessionRig) serve() net.Conn {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = sr.svc.ServeConn(server)
	}()
	return client
}

func durStats(times []time.Duration) (mean, p95 time.Duration) {
	if len(times) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return total / time.Duration(len(sorted)), sorted[len(sorted)*95/100]
}

// Sessions sweeps n cold dials and n warm resumes against one service
// and reports both wall-clock and asymmetric-op costs.
func Sessions(env *Env, n int) (*SessionsReport, error) {
	if n < 2 {
		n = 2
	}
	sr, err := newSessionRig(env)
	if err != nil {
		return nil, err
	}

	// Cold sweep. The last dial's ticket seeds the warm chain.
	var ticket *session.ClientTicket
	coldTimes := make([]time.Duration, 0, n)
	coldBefore := attest.AsymOps()
	for i := 0; i < n; i++ {
		conn := sr.serve()
		start := time.Now()
		c, err := core.Dial(conn, sr.vrf, false)
		if err != nil {
			return nil, fmt.Errorf("bench: cold dial %d: %w", i, err)
		}
		coldTimes = append(coldTimes, time.Since(start))
		ticket = c.Ticket()
		c.Close()
		conn.Close()
	}
	coldOps := attest.AsymOps() - coldBefore
	if ticket == nil {
		return nil, fmt.Errorf("bench: cold dial minted no ticket")
	}
	ticketBytes := len(ticket.Opaque)

	// Warm sweep: each resume consumes the previous ticket and harvests
	// the rotated successor — the chain the real client lives on.
	warmTimes := make([]time.Duration, 0, n)
	warmBefore := attest.AsymOps()
	for i := 0; i < n; i++ {
		conn := sr.serve()
		start := time.Now()
		c, err := core.Resume(conn, ticket)
		if err != nil {
			return nil, fmt.Errorf("bench: warm resume %d: %w", i, err)
		}
		warmTimes = append(warmTimes, time.Since(start))
		ticket = c.Ticket()
		c.Close()
		conn.Close()
		if ticket == nil {
			return nil, fmt.Errorf("bench: resume %d minted no successor ticket", i)
		}
	}
	warmOps := attest.AsymOps() - warmBefore

	cal := simclock.DefaultCalibration()
	rep := &SessionsReport{
		N:           n,
		TicketBytes: ticketBytes,
		ColdAsymOps: coldOps / uint64(n),
		WarmAsymOps: warmOps / uint64(n),
		ModelCold:   cal.ColdHandshakeCost(),
		ModelWarm:   cal.WarmResumeCost(ticketBytes),
	}
	rep.ColdMean, rep.ColdP95 = durStats(coldTimes)
	rep.WarmMean, rep.WarmP95 = durStats(warmTimes)
	if rep.WarmMean > 0 {
		rep.Speedup = float64(rep.ColdMean) / float64(rep.WarmMean)
	}
	return rep, nil
}

// Render produces the report text.
func (r *SessionsReport) Render() string {
	var sb strings.Builder
	sb.WriteString("sessions — cold dial vs ticket resume\n\n")
	fmt.Fprintf(&sb, "handshakes per sweep:     %d\n", r.N)
	fmt.Fprintf(&sb, "ticket size:              %d B\n", r.TicketBytes)
	fmt.Fprintf(&sb, "cold dial:                %v mean, %v p95, %d asym ops\n",
		r.ColdMean.Round(time.Microsecond), r.ColdP95.Round(time.Microsecond), r.ColdAsymOps)
	fmt.Fprintf(&sb, "warm resume:              %v mean, %v p95, %d asym ops\n",
		r.WarmMean.Round(time.Microsecond), r.WarmP95.Round(time.Microsecond), r.WarmAsymOps)
	fmt.Fprintf(&sb, "speedup:                  %.1f×\n", r.Speedup)
	fmt.Fprintf(&sb, "modeled device cost:      %v cold (A53 ECDSA+DHKE) vs %v warm (A.E.DMA only)\n",
		r.ModelCold, r.ModelWarm)
	return sb.String()
}

// SessionScaleReport is the gateway resume-stampede benchmark: many
// clients resuming against one fleet service at once, the worst case a
// restarted gateway faces when its whole user population reconnects.
type SessionScaleReport struct {
	Sessions      int           `json:"sessions"`
	Workers       int           `json:"workers"`
	ColdLimit     int           `json:"cold_limit"`
	Total         time.Duration `json:"total_ns"`
	ResumesPerSec float64       `json:"resumes_per_sec"`
	AsymOps       uint64        `json:"asym_ops"`
	AdmissionWait uint64        `json:"admission_waits"`
}

// SessionScale mints `sessions` resumable tickets directly from the
// service's issuer (standing in for that many previously attested
// users) and replays them concurrently against a fleet gateway.
func SessionScale(env *Env, sessions, workers int) (*SessionScaleReport, error) {
	if sessions <= 0 {
		sessions = 10000
	}
	if workers <= 0 {
		workers = 64
	}
	mfr, err := attest.NewManufacturer()
	if err != nil {
		return nil, err
	}
	dcfg := core.DefaultConfig()
	dcfg.Features = core.ConfigE
	dev, err := core.NewDevice(dcfg, mfr, env.Chain)
	if err != nil {
		return nil, err
	}
	if err := dev.Sync(); err != nil {
		return nil, err
	}
	gcfg := fleet.DefaultConfig()
	gcfg.ColdHandshakeLimit = 4
	gw := fleet.NewGateway(gcfg, fleet.NewLocalBackend("bench-0", dev))
	defer gw.Close()
	svc := core.NewServiceFor(gw, dev.Booted(), false)
	svc.SetAdmission(gw.SessionAdmission())

	issuer := svc.SessionIssuer()
	serial := dev.Booted().Serial()
	measurement := core.ImageMeasurement()
	tickets := make([]*session.ClientTicket, sessions)
	for i := range tickets {
		st := &session.State{
			// High ids keep minted sessions clear of the ones the service
			// allocates live.
			SessionID:   uint64(1_000_000 + i),
			Serial:      serial,
			Measurement: measurement,
		}
		if _, err := rand.Read(st.PSK[:]); err != nil {
			return nil, err
		}
		wire, err := issuer.Issue(st)
		if err != nil {
			return nil, err
		}
		tickets[i] = &session.ClientTicket{
			Opaque: wire, PSK: st.PSK, SessionID: st.SessionID,
			Serial: st.Serial, Measurement: st.Measurement, ExpiryEpoch: st.ExpiryEpoch,
		}
	}

	before := attest.AsymOps()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	next := make(chan *session.ClientTicket, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ticket := range next {
				client, server := net.Pipe()
				go func() {
					defer server.Close()
					_ = svc.ServeConn(server)
				}()
				c, err := core.Resume(client, ticket)
				if err != nil {
					client.Close()
					select {
					case errs <- err:
					default:
					}
					return
				}
				c.Close()
				client.Close()
			}
		}()
	}
	for _, t := range tickets {
		next <- t
	}
	close(next)
	wg.Wait()
	total := time.Since(start)
	select {
	case err := <-errs:
		return nil, fmt.Errorf("bench: session scale: %w", err)
	default:
	}

	rep := &SessionScaleReport{
		Sessions:      sessions,
		Workers:       workers,
		ColdLimit:     gcfg.ColdHandshakeLimit,
		Total:         total,
		AsymOps:       attest.AsymOps() - before,
		AdmissionWait: gw.SessionAdmission().Waits(),
	}
	if total > 0 {
		rep.ResumesPerSec = float64(sessions) / total.Seconds()
	}
	return rep, nil
}

// Render produces the report text.
func (r *SessionScaleReport) Render() string {
	var sb strings.Builder
	sb.WriteString("sessions — gateway resume stampede\n\n")
	fmt.Fprintf(&sb, "sessions resumed:         %d (%d workers, cold-limit %d)\n", r.Sessions, r.Workers, r.ColdLimit)
	fmt.Fprintf(&sb, "total wall clock:         %v\n", r.Total.Round(time.Millisecond))
	fmt.Fprintf(&sb, "resume throughput:        %.0f sessions/s\n", r.ResumesPerSec)
	fmt.Fprintf(&sb, "asymmetric ops:           %d (must be 0)\n", r.AsymOps)
	fmt.Fprintf(&sb, "cold-gate queue events:   %d (resumes bypass the gate)\n", r.AdmissionWait)
	return sb.String()
}
