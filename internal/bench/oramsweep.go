package bench

import (
	"fmt"
	"strings"
	"time"

	"hardtape/internal/oram"
	"hardtape/internal/simclock"
)

// oramSweepCapacity is the total block capacity of every sweep point,
// split evenly across shards — the comparison holds aggregate capacity
// constant, so a 4-shard point is four quarter-size trees, not four
// full-size ones.
const oramSweepCapacity = 4096

// oramSweepBlocks is the working set touched by the sweep.
const oramSweepBlocks = 512

// ORAMSweepCell is one (shards × batch-size) point of the sweep.
type ORAMSweepCell struct {
	// Shards is the partition width (1 = the paper's single tree).
	Shards int
	// Batch is the number of queries fanned out per round.
	Batch int
	// ModeledPerBatch is the virtual-clock cost per round under the
	// overlapped sharded arithmetic (RTT once, slowest shard's serial
	// server work, serial on-chip client work).
	ModeledPerBatch time.Duration
	// MeasuredPerBatch is the wall-clock cost per round of the software
	// fan-out (in-process MemServers; dominated by bucket crypto).
	MeasuredPerBatch time.Duration
	// ModeledSpeedup / MeasuredSpeedup are relative to the 1-shard cell
	// of the same batch size.
	ModeledSpeedup  float64 `json:",omitempty"`
	MeasuredSpeedup float64 `json:",omitempty"`
	// MaxStash is the worst per-shard stash high-water mark — evidence
	// the partition does not degrade any shard's stash behaviour.
	MaxStash int
}

// ORAMSweepReport holds the shard-scaling sweep of DESIGN.md §17: for
// each batch size, how the per-round cost falls as the tree is
// partitioned across more shards.
type ORAMSweepReport struct {
	// Capacity is the aggregate tree capacity (blocks), constant across
	// sweep points.
	Capacity uint64
	// Rounds is the number of measured batch rounds per cell.
	Rounds int
	Cells  []ORAMSweepCell
}

// ORAMShardSweep measures batched ORAM access cost across shard counts
// {1, 2, 4, … ≤ maxShards} × the given batch sizes. Each cell builds a
// fresh sharded client over in-process MemServers (aggregate capacity
// held constant), loads a deterministic working set, then times batched
// reads both on the virtual clock (the calibrated overlapped model) and
// on the wall clock (the real software fan-out).
func ORAMShardSweep(maxShards int, batches []int, rounds int) (*ORAMSweepReport, error) {
	if maxShards < 1 {
		maxShards = 1
	}
	if rounds < 1 {
		rounds = 16
	}
	if len(batches) == 0 {
		batches = []int{8, 32}
	}
	var shardCounts []int
	for k := 1; k <= maxShards; k *= 2 {
		shardCounts = append(shardCounts, k)
	}

	rep := &ORAMSweepReport{Capacity: oramSweepCapacity, Rounds: rounds}
	base := make(map[int]ORAMSweepCell) // batch → 1-shard cell
	for _, batch := range batches {
		for _, shards := range shardCounts {
			cell, err := oramSweepCell(shards, batch, rounds)
			if err != nil {
				return nil, fmt.Errorf("bench: oram sweep %d shards × batch %d: %w", shards, batch, err)
			}
			if shards == 1 {
				base[batch] = cell
			} else if b, ok := base[batch]; ok {
				cell.ModeledSpeedup = float64(b.ModeledPerBatch) / float64(cell.ModeledPerBatch)
				cell.MeasuredSpeedup = float64(b.MeasuredPerBatch) / float64(cell.MeasuredPerBatch)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

func oramSweepCell(shards, batch, rounds int) (ORAMSweepCell, error) {
	perShard := (oramSweepCapacity + uint64(shards) - 1) / uint64(shards)
	servers := make([]oram.Server, shards)
	for i := range servers {
		srv, err := oram.NewMemServer(perShard)
		if err != nil {
			return ORAMSweepCell{}, err
		}
		servers[i] = srv
	}
	clock := simclock.NewClock()
	cli, err := oram.NewShardedClient(servers, make([]byte, oram.KeySize),
		oram.WithShardClock(clock, simclock.DefaultCalibration()))
	if err != nil {
		return ORAMSweepCell{}, err
	}

	// Deterministic working set, written through the batched path.
	payload := make([]byte, oram.BlockSize)
	ops := make([]oram.BatchOp, 0, batch)
	for lo := 0; lo < oramSweepBlocks; lo += batch {
		ops = ops[:0]
		for j := lo; j < lo+batch && j < oramSweepBlocks; j++ {
			payload[0] = byte(j)
			op := oram.BatchOp{Op: oram.OpWrite, ID: oram.BlockID(j)}
			op.Data = append([]byte(nil), payload...)
			ops = append(ops, op)
		}
		if _, err := cli.AccessBatch(ops); err != nil {
			return ORAMSweepCell{}, err
		}
	}

	clock.Reset()
	start := time.Now()
	next := 0
	reads := make([]oram.BatchOp, batch)
	for r := 0; r < rounds; r++ {
		for j := range reads {
			reads[j] = oram.BatchOp{Op: oram.OpRead, ID: oram.BlockID(next % oramSweepBlocks)}
			next++
		}
		if _, err := cli.AccessBatch(reads); err != nil {
			return ORAMSweepCell{}, err
		}
	}
	wall := time.Since(start)
	modeled := clock.Now()

	return ORAMSweepCell{
		Shards:           shards,
		Batch:            batch,
		ModeledPerBatch:  modeled / time.Duration(rounds),
		MeasuredPerBatch: wall / time.Duration(rounds),
		MaxStash:         cli.Stats().MaxStash,
	}, nil
}

// Render produces the report text.
func (r *ORAMSweepReport) Render() string {
	var sb strings.Builder
	sb.WriteString("§17 — sharded ORAM batch fan-out (aggregate capacity ")
	fmt.Fprintf(&sb, "%d blocks, %d rounds/cell)\n\n", r.Capacity, r.Rounds)
	sb.WriteString("shards  batch   modeled/batch  speedup   measured/batch  speedup  max stash\n")
	for _, c := range r.Cells {
		mSpeed, wSpeed := "—", "—"
		if c.ModeledSpeedup > 0 {
			mSpeed = fmt.Sprintf("%.2fx", c.ModeledSpeedup)
		}
		if c.MeasuredSpeedup > 0 {
			wSpeed = fmt.Sprintf("%.2fx", c.MeasuredSpeedup)
		}
		fmt.Fprintf(&sb, "%6d  %5d  %13v  %7s  %14v  %7s  %9d\n",
			c.Shards, c.Batch,
			c.ModeledPerBatch.Round(time.Microsecond), mSpeed,
			c.MeasuredPerBatch.Round(time.Microsecond), wSpeed,
			c.MaxStash)
	}
	sb.WriteString("\nmodeled: overlapped round (RTT once + slowest shard's serial server work\n")
	sb.WriteString("+ serial on-chip client work); measured: wall clock, in-process servers.\n")
	return sb.String()
}
