// Package bench regenerates every table and figure of the paper's
// evaluation (§VI): Table I (workload distributions), Fig. 4
// (end-to-end per-transaction time by configuration), Fig. 5
// (per-operation time with warm local data), the §VI-A resource
// audit, the §VI-B correctness check, and the §VI-D scalability
// estimate. cmd/benchtab and the repo-root benchmarks drive these.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hardtape/internal/baseline"
	"hardtape/internal/core"
	"hardtape/internal/evm"
	"hardtape/internal/node"
	"hardtape/internal/state"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// Env is a fully provisioned experiment environment: one synthetic
// world, its node, and one HarDTAPE device per Fig. 4 configuration.
type Env struct {
	World *workload.World
	Chain *node.Node
	// Devices maps configuration name (-raw, …, -full) to a device.
	Devices map[string]*core.Device
	// Geth is the unprotected baseline.
	Geth *baseline.Geth
}

// EnvConfig scales the environment.
type EnvConfig struct {
	Seed   int64
	EOAs   int
	Tokens int
	DEXes  int
	// HEVMs per device.
	HEVMs int
}

// DefaultEnvConfig returns a laptop-scale environment.
func DefaultEnvConfig() EnvConfig {
	return EnvConfig{Seed: 19145194, EOAs: 24, Tokens: 4, DEXes: 2, HEVMs: 3}
}

// NewEnv builds and syncs the environment.
func NewEnv(cfg EnvConfig) (*Env, error) {
	w, err := workload.BuildWorld(workload.Config{
		Seed: cfg.Seed, EOAs: cfg.EOAs, Tokens: cfg.Tokens, DEXes: cfg.DEXes,
	})
	if err != nil {
		return nil, err
	}
	chain, err := node.New(w.State)
	if err != nil {
		return nil, err
	}
	env := &Env{
		World:   w,
		Chain:   chain,
		Devices: make(map[string]*core.Device),
		Geth:    baseline.NewGeth(w.State, workload.NewBlockContext(&chain.Head().Header)),
	}
	for _, feat := range []core.Features{
		core.ConfigRaw, core.ConfigE, core.ConfigES, core.ConfigESO, core.ConfigFull,
	} {
		dcfg := core.DefaultConfig()
		dcfg.Features = feat
		dcfg.HEVMs = cfg.HEVMs
		dev, err := core.NewDevice(dcfg, nil, chain)
		if err != nil {
			return nil, err
		}
		if err := dev.Sync(); err != nil {
			return nil, err
		}
		env.Devices[feat.Name()] = dev
	}
	return env, nil
}

// EvalBundles generates n single-transaction bundles from the
// evaluation-set mix (the paper runs "each transaction as a separate
// bundle"). Every bundle's sender signs with its canonical nonce.
func (e *Env) EvalBundles(n int) ([]*types.Bundle, error) {
	bundles := make([]*types.Bundle, 0, n)
	// Track per-sender nonces so consecutive bundles from one EOA stay
	// individually valid against the canonical state (nonce 0): use a
	// fresh sender rotation instead.
	for i := 0; i < n; i++ {
		tx, _, err := e.World.GenerateTx()
		if err != nil {
			return nil, err
		}
		// GenerateTx tracks nonces as if the txs executed
		// sequentially; rebuild at the canonical nonce since every
		// bundle runs against the same pinned state.
		sender, err := tx.Sender()
		if err != nil {
			return nil, err
		}
		nonce := uint64(0)
		if acct, ok := e.Chain.State().Account(sender); ok {
			nonce = acct.Nonce
		}
		rebuilt, err := e.World.SignedTxAt(sender, nonce, tx.To, tx.Value.Uint64(), tx.Data, tx.GasLimit)
		if err != nil {
			return nil, err
		}
		bundles = append(bundles, &types.Bundle{Txs: []*types.Transaction{rebuilt}})
	}
	return bundles, nil
}

// --- Table I ---

// TableI executes n evaluation-set transactions on the reference
// executor with the statistics collector attached and renders the
// paper's Table I.
func TableI(env *Env, n int) (string, error) {
	sc := workload.NewStatsCollector()
	// The run executes on a fresh overlay over canonical state, so the
	// generator's nonce tracking must restart from canonical too (it
	// drifts when earlier experiments generated unmined transactions).
	env.World.SyncNonces(env.Chain.State())
	overlay := state.NewOverlay(env.Chain.State())
	e := evm.New(workload.NewBlockContext(&env.Chain.Head().Header), overlay)
	e.Hooks = sc.Hooks()
	for i := 0; i < n; i++ {
		tx, _, err := env.World.GenerateTx()
		if err != nil {
			return "", err
		}
		sc.BeginTx()
		if _, err := e.ApplyTransaction(tx); err != nil {
			return "", fmt.Errorf("bench: table1 tx %d: %w", i, err)
		}
		sc.EndTx()
	}
	header := fmt.Sprintf("TABLE I — distributions over %d transactions / %d frames (synthetic evaluation set)\n\n",
		len(sc.Txs), len(sc.Frames))
	return header + sc.TableI(), nil
}

// --- Fig. 4 ---

// Fig4Row is one bar of Fig. 4.
type Fig4Row struct {
	Config string
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	N      int
}

// Fig4 measures end-to-end per-transaction time for Geth and each
// HarDTAPE configuration over n single-tx bundles.
func Fig4(env *Env, n int) ([]Fig4Row, error) {
	bundles, err := env.EvalBundles(n)
	if err != nil {
		return nil, err
	}
	var rows []Fig4Row

	// Geth baseline.
	var gethTimes []time.Duration
	for _, b := range bundles {
		res, err := env.Geth.ExecuteBundle(b)
		if err != nil {
			return nil, fmt.Errorf("bench: geth: %w", err)
		}
		gethTimes = append(gethTimes, res.VirtualTime)
	}
	rows = append(rows, summarize("Geth", gethTimes))

	for _, name := range []string{"-raw", "-E", "-ES", "-ESO", "-full"} {
		dev := env.Devices[name]
		var times []time.Duration
		for _, b := range bundles {
			res, err := dev.Execute(b)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", name, err)
			}
			if res.Aborted != nil {
				// Overflow aborts are excluded, as in the paper.
				continue
			}
			times = append(times, res.VirtualTime)
		}
		rows = append(rows, summarize(name, times))
	}
	return rows, nil
}

func summarize(name string, times []time.Duration) Fig4Row {
	if len(times) == 0 {
		return Fig4Row{Config: name}
	}
	sorted := make([]time.Duration, len(times))
	copy(sorted, times)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, t := range times {
		total += t
	}
	return Fig4Row{
		Config: name,
		Mean:   total / time.Duration(len(times)),
		P50:    sorted[len(sorted)/2],
		P95:    sorted[len(sorted)*95/100],
		N:      len(times),
	}
}

// RenderFig4 produces the textual figure.
func RenderFig4(rows []Fig4Row) string {
	var sb strings.Builder
	sb.WriteString("FIG. 4 — end-to-end per-transaction time (virtual clock)\n\n")
	fmt.Fprintf(&sb, "%-8s %12s %12s %12s %6s\n", "config", "mean", "p50", "p95", "n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %12s %12s %12s %6d\n",
			r.Config, round(r.Mean), round(r.P50), round(r.P95), r.N)
	}
	sb.WriteString("\npaper shape: Geth ≈ -raw ≪ -E ≪ -ES < -ESO < -full;\n")
	sb.WriteString("signature ≈ +80 ms, ORAM ≈ +80 ms (30 ms K-V + 50 ms code); -full ≈ 164 ms\n")
	return sb.String()
}

func round(d time.Duration) time.Duration {
	if d < 100*time.Microsecond {
		return d.Round(100 * time.Nanosecond)
	}
	return d.Round(10 * time.Microsecond)
}

// --- correctness (§VI-B) ---

// CorrectnessReport summarizes the trace-diff run.
type CorrectnessReport struct {
	Total      int
	Matched    int
	Aborted    int
	Mismatches []string
}

// Correctness pre-executes n evaluation transactions on the -full
// device and diffs every trace against the reference executor.
func Correctness(env *Env, n int) (*CorrectnessReport, error) {
	bundles, err := env.EvalBundles(n)
	if err != nil {
		return nil, err
	}
	dev := env.Devices["-full"]
	rep := &CorrectnessReport{Total: len(bundles)}
	for i, b := range bundles {
		res, err := dev.Execute(b)
		if err != nil {
			return nil, fmt.Errorf("bench: correctness bundle %d: %w", i, err)
		}
		if res.Aborted != nil {
			rep.Aborted++
			continue
		}
		ref, err := env.Geth.ExecuteBundle(b)
		if err != nil {
			return nil, err
		}
		ok := true
		for j := range b.Txs {
			if diffs := tracer.Diff(res.Trace.Txs[j], ref.Trace.Txs[j]); len(diffs) > 0 {
				ok = false
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("bundle %d tx %d: %s", i, j, strings.Join(diffs, "; ")))
			}
		}
		if ok {
			rep.Matched++
		}
	}
	return rep, nil
}

// Render produces the report text.
func (r *CorrectnessReport) Render() string {
	var sb strings.Builder
	sb.WriteString("§VI-B — pre-execution correctness vs ground truth\n\n")
	fmt.Fprintf(&sb, "bundles:          %d\n", r.Total)
	fmt.Fprintf(&sb, "traces identical: %d\n", r.Matched)
	fmt.Fprintf(&sb, "overflow aborts:  %d (roll-up-style frames, paper leaves these as future work)\n", r.Aborted)
	fmt.Fprintf(&sb, "mismatches:       %d\n", len(r.Mismatches))
	for _, m := range r.Mismatches {
		fmt.Fprintf(&sb, "  %s\n", m)
	}
	return sb.String()
}
