package bench

import (
	"fmt"
	"strings"
	"time"

	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// AmortizationRow is one bundle-size point of the §VI-C observation:
// "more transactions in a bundle lead to less time-consuming ECDSA
// verifications and signatures" — the paper's single-tx-per-bundle
// Fig. 4 numbers are therefore a lower bound on throughput.
type AmortizationRow struct {
	BundleSize int
	Total      time.Duration
	PerTx      time.Duration
}

// Amortization measures -full per-transaction time as the bundle size
// grows: the per-bundle ECDSA round (~80 ms) spreads over all
// transactions.
func Amortization(env *Env, sizes []int) ([]AmortizationRow, error) {
	dev := env.Devices["-full"]
	token := env.World.Tokens[0]
	from := env.World.EOAs[0]

	var rows []AmortizationRow
	for _, n := range sizes {
		bundle := &types.Bundle{}
		for i := 0; i < n; i++ {
			tx, err := env.World.SignedTxAt(from, uint64(i), &token, 0,
				workload.CalldataTransfer(env.World.EOAs[1+i%4], uint64(i+1)), 200_000)
			if err != nil {
				return nil, err
			}
			bundle.Txs = append(bundle.Txs, tx)
		}
		res, err := dev.Execute(bundle)
		if err != nil {
			return nil, fmt.Errorf("bench: amortization n=%d: %w", n, err)
		}
		if res.Aborted != nil {
			return nil, fmt.Errorf("bench: amortization n=%d aborted: %v", n, res.Aborted)
		}
		rows = append(rows, AmortizationRow{
			BundleSize: n,
			Total:      res.VirtualTime,
			PerTx:      res.VirtualTime / time.Duration(n),
		})
	}
	return rows, nil
}

// RenderAmortization produces the report text.
func RenderAmortization(rows []AmortizationRow) string {
	var sb strings.Builder
	sb.WriteString("§VI-C — bundle amortization (per-bundle ECDSA spread over transactions)\n\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s\n", "bundle size", "total", "per tx")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12d %14s %14s\n",
			r.BundleSize, r.Total.Round(10*time.Microsecond), r.PerTx.Round(10*time.Microsecond))
	}
	sb.WriteString("\npaper: single-tx bundles are the throughput lower bound; the ~80 ms\n")
	sb.WriteString("signature round is paid once per bundle regardless of size\n")
	return sb.String()
}
