// interp.go measures the interpreter fast path (ISSUE 4): the three
// microbench workloads the optimization targets — keccak-heavy loop,
// dup/swap-heavy loop, deep self-call — plus raw-device bundle
// throughput. The same workloads run as go-test benchmarks in
// internal/evm (BenchmarkInterp*) and at the repo root
// (BenchmarkBundleThroughput, through core.Service); this file exports
// the numbers through `benchtab -json` for archiving.
package bench

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"hardtape/internal/evm"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

// InterpRow is one interpreter fast-path measurement.
type InterpRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// TxsPerSec is set only for the bundle-throughput row.
	TxsPerSec float64 `json:"txs_per_sec,omitempty"`
}

var (
	interpContract = types.MustAddress("0xc0de00000000000000000000000000000000c0de")
	interpCaller   = types.MustAddress("0xca11e4000000000000000000000000000000ca11")
)

// interpLoop assembles "PUSH2 n; loop: JUMPDEST <body>; decrement;
// DUP1; PUSH2 loop; JUMPI; STOP" (the loop counter stays on top of the
// stack through the body).
func interpLoop(prologue []byte, n uint16, body []byte) []byte {
	code := append([]byte{}, prologue...)
	code = append(code, byte(evm.PUSH1+1), byte(n>>8), byte(n))
	loop := uint16(len(code))
	code = append(code, byte(evm.JUMPDEST))
	code = append(code, body...)
	code = append(code, byte(evm.PUSH1), 1, byte(evm.SWAP1), byte(evm.SUB))
	code = append(code, byte(evm.DUP1), byte(evm.PUSH1+1), byte(loop>>8), byte(loop), byte(evm.JUMPI))
	code = append(code, byte(evm.STOP))
	return code
}

// interpKeccakBody hashes the loop-counter word every iteration.
var interpKeccakBody = []byte{
	byte(evm.DUP1), byte(evm.PUSH0), byte(evm.MSTORE),
	byte(evm.PUSH1), 32, byte(evm.PUSH0), byte(evm.KECCAK256), byte(evm.POP),
}

// interpDupSwapSeed pushes 16 operands; interpDupSwapBody is 64
// stack-neutral DUP/SWAP/POP ops (palindromic swap runs + DUP/POP
// pairs).
var (
	interpDupSwapSeed = func() []byte {
		var code []byte
		for i := byte(1); i <= 16; i++ {
			code = append(code, byte(evm.PUSH1), i)
		}
		return code
	}()
	interpDupSwapBody = func() []byte {
		block := []byte{
			byte(evm.SWAP1), byte(evm.SWAP1 + 1), byte(evm.SWAP1 + 2), byte(evm.SWAP1 + 3),
			byte(evm.SWAP1 + 3), byte(evm.SWAP1 + 2), byte(evm.SWAP1 + 1), byte(evm.SWAP1),
			byte(evm.DUP1 + 2), byte(evm.POP), byte(evm.DUP1 + 4), byte(evm.POP),
			byte(evm.DUP1 + 6), byte(evm.POP), byte(evm.DUP1 + 8), byte(evm.POP),
		}
		var body []byte
		for i := 0; i < 4; i++ {
			body = append(body, block...)
		}
		return body
	}()
)

// interpDeepCallCode reads a recursion depth from calldata word 0 and
// CALLs itself with depth-1 until it reaches zero.
func interpDeepCallCode() []byte {
	var code []byte
	code = append(code, byte(evm.PUSH0), byte(evm.CALLDATALOAD))
	code = append(code, byte(evm.DUP1), byte(evm.ISZERO))
	endPatch := len(code) + 1
	code = append(code, byte(evm.PUSH1+1), 0, 0, byte(evm.JUMPI))
	code = append(code, byte(evm.PUSH1), 1, byte(evm.SWAP1), byte(evm.SUB))
	code = append(code, byte(evm.PUSH0), byte(evm.MSTORE))
	code = append(code, byte(evm.PUSH0), byte(evm.PUSH0), byte(evm.PUSH1), 32, byte(evm.PUSH0), byte(evm.PUSH0))
	code = append(code, byte(evm.PUSH1+19))
	code = append(code, interpContract[:]...)
	code = append(code, byte(evm.GAS), byte(evm.CALL), byte(evm.POP), byte(evm.PUSH0))
	end := uint16(len(code))
	code[endPatch] = byte(end >> 8)
	code[endPatch+1] = byte(end)
	code = append(code, byte(evm.JUMPDEST), byte(evm.STOP))
	return code
}

// interpEVM wires a bare EVM over a fresh overlay with code deployed
// at interpContract.
func interpEVM(code []byte) *evm.EVM {
	w := state.NewWorldState()
	o := state.NewOverlay(w)
	o.CreateAccount(interpCaller)
	o.AddBalance(interpCaller, uint256.NewInt(1_000_000_000))
	o.CreateAccount(interpContract)
	o.SetCode(interpContract, code)
	return evm.New(evm.BlockContext{
		Number:    100,
		Timestamp: 1700000000,
		GasLimit:  30_000_000,
		BaseFee:   uint256.NewInt(7),
		ChainID:   uint256.NewInt(1),
	}, o)
}

// interpMeasure benchmarks repeated calls of code on one EVM (one
// warm-up call, then snapshot/revert around each measured call).
func interpMeasure(name string, code, input []byte, gas uint64) (InterpRow, error) {
	e := interpEVM(code)
	zero := new(uint256.Int)
	if _, _, err := e.Call(interpCaller, interpContract, input, gas, zero); err != nil {
		return InterpRow{}, fmt.Errorf("%s warm-up: %w", name, err)
	}
	var callErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := e.State.Snapshot()
			if _, _, err := e.Call(interpCaller, interpContract, input, gas, zero); err != nil {
				callErr = err
				b.FailNow()
			}
			e.State.RevertToSnapshot(snap)
		}
	})
	if callErr != nil {
		return InterpRow{}, fmt.Errorf("%s: %w", name, callErr)
	}
	return InterpRow{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// InterpFastPath measures the interpreter fast-path workloads plus
// bundle throughput on the env's -raw device (crypto and ORAM off, so
// the number tracks the interpreter).
func InterpFastPath(env *Env) ([]InterpRow, error) {
	var depth [32]byte
	binary.BigEndian.PutUint64(depth[24:], 64)
	rows := make([]InterpRow, 0, 4)
	for _, m := range []struct {
		name  string
		code  []byte
		input []byte
		gas   uint64
	}{
		{"keccak-loop", interpLoop(nil, 256, interpKeccakBody), nil, 10_000_000},
		{"dupswap-loop", interpLoop(interpDupSwapSeed, 256, interpDupSwapBody), nil, 10_000_000},
		{"deep-call", interpDeepCallCode(), depth[:], 30_000_000},
	} {
		row, err := interpMeasure(m.name, m.code, m.input, m.gas)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// Bundle throughput: 8 transfers per bundle on the -raw device.
	const txsPerBundle = 8
	dev := env.Devices["-raw"]
	token := env.World.Tokens[0]
	eoas := env.World.EOAs
	bundles := make([]*types.Bundle, len(eoas))
	for i := range bundles {
		txs := make([]*types.Transaction, txsPerBundle)
		for j := range txs {
			tx, err := env.World.SignedTxAt(eoas[i], uint64(j), &token, 0,
				workload.CalldataTransfer(eoas[(i+1)%len(eoas)], 7), 200_000)
			if err != nil {
				return nil, err
			}
			txs[j] = tx
		}
		bundles[i] = &types.Bundle{Txs: txs}
	}
	var execErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dev.Execute(bundles[i%len(bundles)]); err != nil {
				execErr = err
				b.FailNow()
			}
		}
	})
	if execErr != nil {
		return nil, fmt.Errorf("bundle-throughput: %w", execErr)
	}
	row := InterpRow{
		Name:        "bundle-throughput-raw",
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if res.T > 0 {
		row.TxsPerSec = float64(res.N*txsPerBundle) / res.T.Seconds()
	}
	rows = append(rows, row)
	return rows, nil
}

// RenderInterp renders the fast-path table.
func RenderInterp(rows []InterpRow) string {
	var b strings.Builder
	b.WriteString("Interpreter fast path (ISSUE 4)\n")
	fmt.Fprintf(&b, "%-24s %14s %12s %12s %12s\n",
		"workload", "ns/op", "B/op", "allocs/op", "txs/sec")
	for _, r := range rows {
		tps := "-"
		if r.TxsPerSec > 0 {
			tps = fmt.Sprintf("%.1f", r.TxsPerSec)
		}
		fmt.Fprintf(&b, "%-24s %14.0f %12d %12d %12s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, tps)
	}
	return strings.TrimRight(b.String(), "\n")
}
