package bench

import (
	"strings"
	"testing"
	"time"

	"hardtape/internal/hevm"
)

// smallEnv builds a reduced environment once per test binary.
func smallEnv(t testing.TB) *Env {
	t.Helper()
	cfg := DefaultEnvConfig()
	cfg.EOAs = 12
	cfg.Tokens = 2
	cfg.DEXes = 1
	cfg.HEVMs = 2
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestTableIRuns(t *testing.T) {
	env := smallEnv(t)
	out, err := TableI(env, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"code", "input", "memory", "return", "keys", "depth", "<1k", "2-5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	env := smallEnv(t)
	rows, err := Fig4(env, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	// Paper shape assertions.
	if byName["-raw"].Mean >= byName["-ES"].Mean {
		t.Errorf("-raw (%v) should be far below -ES (%v)", byName["-raw"].Mean, byName["-ES"].Mean)
	}
	if byName["-ES"].Mean >= byName["-full"].Mean {
		t.Errorf("-ES (%v) should be below -full (%v)", byName["-ES"].Mean, byName["-full"].Mean)
	}
	// Signature step ≈80 ms dominates encryption step ≈3 ms.
	sigStep := byName["-ES"].Mean - byName["-E"].Mean
	encStep := byName["-E"].Mean - byName["-raw"].Mean
	if sigStep < 10*encStep {
		t.Errorf("signature step %v should dominate encryption step %v", sigStep, encStep)
	}
	// -full stays within the paper's 600 ms usability bound.
	if byName["-full"].Mean > 600*time.Millisecond {
		t.Errorf("-full mean %v exceeds the 600 ms usability bound", byName["-full"].Mean)
	}
	out := RenderFig4(rows)
	if !strings.Contains(out, "-full") || !strings.Contains(out, "Geth") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	env := smallEnv(t)
	rows, err := Fig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Geth <= 0 || r.TSCVEE <= 0 || r.HarDTAPE < 0 {
			t.Errorf("%s: non-positive per-op times: %+v", r.Benchmark, r)
		}
		// "No significant difference": within two orders of magnitude
		// on the log-scale plot.
		if r.HarDTAPE > 0 && (r.HarDTAPE > 100*r.Geth || r.Geth > 100*r.HarDTAPE) {
			t.Errorf("%s: HarDTAPE %v vs Geth %v diverge beyond plot expectations",
				r.Benchmark, r.HarDTAPE, r.Geth)
		}
	}
	out := RenderFig5(rows)
	if !strings.Contains(out, "Transfer") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestScalabilityReport(t *testing.T) {
	env := smallEnv(t)
	rep, err := Scalability(env, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChipThroughput <= 0 {
		t.Error("throughput must be positive")
	}
	if rep.SupportedHEVMs <= 0 {
		t.Error("supported HEVMs must be positive")
	}
	if rep.MeanQueryGap <= 0 {
		t.Error("query gap must be positive")
	}
	out := rep.Render()
	if !strings.Contains(out, "tx/s") || !strings.Contains(out, "HEVMs per ORAM server") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestCorrectnessAllMatch(t *testing.T) {
	env := smallEnv(t)
	rep, err := Correctness(env, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched+rep.Aborted != rep.Total {
		t.Fatalf("accounting: %d + %d != %d (mismatches: %v)",
			rep.Matched, rep.Aborted, rep.Total, rep.Mismatches)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("trace mismatches: %v", rep.Mismatches)
	}
	if !strings.Contains(rep.Render(), "traces identical") {
		t.Fatal("render incomplete")
	}
}

func TestResourcesReport(t *testing.T) {
	rep := Resources(hevm.DefaultConfig(), 30)
	if rep.PerHEVMOnChip < 1<<20 {
		t.Fatalf("per-HEVM budget %d below the 1 MB L2 alone", rep.PerHEVMOnChip)
	}
	out := rep.Render()
	if !strings.Contains(out, "103388 LUT") {
		t.Fatal("paper constants missing from render")
	}
}

func TestAmortizationFallsWithBundleSize(t *testing.T) {
	env := smallEnv(t)
	rows, err := Amortization(env, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Per-tx cost must fall monotonically as the per-bundle ECDSA round
	// amortizes.
	for i := 1; i < len(rows); i++ {
		if rows[i].PerTx >= rows[i-1].PerTx {
			t.Fatalf("per-tx time not falling: %v then %v", rows[i-1], rows[i])
		}
	}
	// At 16 txs/bundle the ~80 ms signature is <6 ms/tx of the total.
	if rows[2].PerTx > rows[0].PerTx/2 {
		t.Fatalf("amortization too weak: 1-tx %v vs 16-tx %v", rows[0].PerTx, rows[2].PerTx)
	}
	if !strings.Contains(RenderAmortization(rows), "bundle size") {
		t.Fatal("render incomplete")
	}
}

func TestParallelSweepShape(t *testing.T) {
	env := smallEnv(t)
	rep, err := ParallelSweep(env, 12, []int{1, 4}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	cell := func(lanes int, rate float64) ParallelRow {
		for _, r := range rep.Rows {
			if r.Lanes == lanes && r.ConflictRate == rate {
				return r
			}
		}
		t.Fatalf("missing cell lanes=%d rate=%v", lanes, rate)
		return ParallelRow{}
	}
	// Lanes=1 is the sequential path: speedup 1x by construction.
	if s := cell(1, 0).Speedup; s < 0.99 || s > 1.01 {
		t.Errorf("1-lane speedup = %.3f, want 1.0", s)
	}
	// Conflict-free bundles commit every speculation unchanged and beat
	// sequential; fully conflicting bundles re-execute at least one tx.
	free, hot := cell(4, 0), cell(4, 1)
	if free.Conflicts != 0 {
		t.Errorf("rate-0 cell reported %d conflicts", free.Conflicts)
	}
	if free.Speedup <= 1.0 {
		t.Errorf("rate-0 speedup at 4 lanes = %.2f, want > 1", free.Speedup)
	}
	if hot.Conflicts+hot.SpecRetries == 0 {
		t.Error("rate-1 cell saw no staleness at all")
	}
	if hot.Speedup > free.Speedup {
		t.Errorf("hot speedup %.2f exceeds conflict-free speedup %.2f", hot.Speedup, free.Speedup)
	}
	out := rep.Render()
	for _, want := range []string{"lanes", "conflicts", "speedup", "occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSessionsSweepRuns(t *testing.T) {
	env := smallEnv(t)
	rep, err := Sessions(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmAsymOps != 0 {
		t.Fatalf("warm resume performed %d asymmetric ops, want 0", rep.WarmAsymOps)
	}
	if rep.ColdAsymOps == 0 {
		t.Fatal("cold dial should perform asymmetric ops")
	}
	if rep.WarmMean >= rep.ColdMean {
		t.Fatalf("warm resume (%v) not faster than cold dial (%v)", rep.WarmMean, rep.ColdMean)
	}
	if rep.ModelWarm >= rep.ModelCold {
		t.Fatalf("modeled warm cost (%v) not below cold (%v)", rep.ModelWarm, rep.ModelCold)
	}
	out := rep.Render()
	for _, want := range []string{"cold dial", "warm resume", "speedup", "ticket size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSessionScaleRuns(t *testing.T) {
	env := smallEnv(t)
	rep, err := SessionScale(env, 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AsymOps != 0 {
		t.Fatalf("resume stampede performed %d asymmetric ops, want 0", rep.AsymOps)
	}
	if rep.AdmissionWait != 0 {
		t.Fatalf("resumes queued on the cold gate %d times, want 0", rep.AdmissionWait)
	}
	if rep.ResumesPerSec <= 0 {
		t.Fatal("no resume throughput measured")
	}
	if !strings.Contains(rep.Render(), "resume throughput") {
		t.Fatalf("render missing throughput:\n%s", rep.Render())
	}
}
