package bench

import (
	"fmt"
	"strings"
	"time"

	"hardtape/internal/hevm"
	"hardtape/internal/oram"
	"hardtape/internal/pager"
)

// ScalabilityReport reproduces §VI-D: transactions per second per
// chip, and how many full-load HEVMs one ORAM server sustains.
type ScalabilityReport struct {
	// MeanFullTime is the -full per-transaction time (Fig. 4's bar).
	MeanFullTime time.Duration
	// HEVMsPerChip is the configured core count (paper: 3).
	HEVMsPerChip int
	// ChipThroughput = HEVMsPerChip / MeanFullTime.
	ChipThroughput float64
	// MeanQueryGap is the measured virtual time between ORAM queries
	// from one busy HEVM (paper measures 630 µs).
	MeanQueryGap time.Duration
	// ServerPerQuery is the calibrated server processing time (25 µs).
	ServerPerQuery time.Duration
	// MeasuredServerPerQuery is the wall-clock cost of our software
	// ORAM server per query, reported alongside for transparency.
	MeasuredServerPerQuery time.Duration
	// SupportedHEVMs = floor(MeanQueryGap / ServerPerQuery).
	SupportedHEVMs int
}

// Scalability measures the report quantities from live -full runs.
func Scalability(env *Env, nBundles int) (*ScalabilityReport, error) {
	dev := env.Devices["-full"]
	bundles, err := env.EvalBundles(nBundles)
	if err != nil {
		return nil, err
	}
	var (
		total   time.Duration
		count   int
		queries uint64
	)
	for _, b := range bundles {
		res, err := dev.Execute(b)
		if err != nil {
			return nil, err
		}
		if res.Aborted != nil {
			continue
		}
		total += res.VirtualTime
		queries += res.ORAMQueries
		count++
	}
	if count == 0 || queries == 0 {
		return nil, fmt.Errorf("bench: scalability: no successful bundles")
	}
	rep := &ScalabilityReport{
		MeanFullTime:   total / time.Duration(count),
		HEVMsPerChip:   dev.SlotCount(),
		ServerPerQuery: dev.Config().Calibration.ORAMServerPerQuery,
		MeanQueryGap:   total / time.Duration(queries),
	}
	rep.ChipThroughput = float64(rep.HEVMsPerChip) / rep.MeanFullTime.Seconds()
	if rep.ServerPerQuery > 0 {
		rep.SupportedHEVMs = int(rep.MeanQueryGap / rep.ServerPerQuery)
	}
	rep.MeasuredServerPerQuery = measureServerQuery()
	return rep, nil
}

// measureServerQuery times the software ORAM server's real per-query
// wall-clock cost (ReadPath + WritePath round trip through a client).
func measureServerQuery() time.Duration {
	srv, err := oram.NewMemServer(4096)
	if err != nil {
		return 0
	}
	cli, err := oram.NewClient(srv, make([]byte, oram.KeySize))
	if err != nil {
		return 0
	}
	payload := make([]byte, oram.BlockSize)
	for i := 0; i < 64; i++ {
		if err := cli.Write(oram.BlockID(i), payload); err != nil {
			return 0
		}
	}
	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := cli.Read(oram.BlockID(i % 64)); err != nil {
			return 0
		}
	}
	return time.Since(start) / n
}

// Render produces the report text.
func (r *ScalabilityReport) Render() string {
	var sb strings.Builder
	sb.WriteString("§VI-D — scalability\n\n")
	fmt.Fprintf(&sb, "-full mean per-tx time:        %v\n", r.MeanFullTime.Round(10*time.Microsecond))
	fmt.Fprintf(&sb, "HEVMs per chip:                %d\n", r.HEVMsPerChip)
	fmt.Fprintf(&sb, "chip throughput:               %.1f tx/s (paper: ≈18; Ethereum needs ≈17)\n", r.ChipThroughput)
	fmt.Fprintf(&sb, "mean gap between ORAM queries: %v (paper: 630 µs)\n", r.MeanQueryGap.Round(time.Microsecond))
	fmt.Fprintf(&sb, "server time per query (model): %v (paper: 25 µs)\n", r.ServerPerQuery)
	fmt.Fprintf(&sb, "server time per query (ours):  %v wall-clock, software server\n", r.MeasuredServerPerQuery.Round(time.Microsecond))
	fmt.Fprintf(&sb, "HEVMs per ORAM server:         %d (paper: ⌊630/25⌋ = 25)\n", r.SupportedHEVMs)
	return sb.String()
}

// --- §VI-A resources ---

// ResourceReport reproduces the §VI-A utilization audit: the paper's
// synthesis numbers quoted next to our configured on-chip budgets.
type ResourceReport struct {
	// Per-HEVM on-chip memory budget (bytes), from the configured
	// hardware geometry.
	PerHEVMOnChip uint64
	L2Bytes       uint64
	// ORAM client on-chip state (stash bound + position map estimate).
	StashBoundBytes uint64
}

// Resources computes the audit from a hardware config.
func Resources(hw hevm.Config, oramDepth int) *ResourceReport {
	l1 := uint64(32*1024) + // full runtime stack
		uint64(hw.CodeCachePages)*hw.PageSize + // code cache
		3*4*1024 + // memory/input caches + world-state cache (4 KB each)
		1024 + // ReturnData cache
		32*32 // frame state registers
	return &ResourceReport{
		PerHEVMOnChip:   l1 + hw.L2Bytes,
		L2Bytes:         hw.L2Bytes,
		StashBoundBytes: uint64(16*oramDepth) * pager.PageSize,
	}
}

// Render produces the report text.
func (r *ResourceReport) Render() string {
	var sb strings.Builder
	sb.WriteString("§VI-A — resource utility\n\n")
	sb.WriteString("paper (Vivado synthesis, XCZU15EV): 103388 LUT, 37104 FF, 509 KB BlockRAM per HEVM;\n")
	sb.WriteString("three HEVMs per chip (LUT-bound); Hypervisor 248 KB used of 256 KB on-chip RAM\n\n")
	fmt.Fprintf(&sb, "our model, per HEVM on-chip memory: %d KB (L1 partitions + %d KB L2 ring)\n",
		r.PerHEVMOnChip/1024, r.L2Bytes/1024)
	fmt.Fprintf(&sb, "ORAM client stash bound:            %d KB (fits the paper's ≈1 MB stash budget)\n",
		r.StashBoundBytes/1024)
	return sb.String()
}
