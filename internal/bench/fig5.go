package bench

import (
	"fmt"
	"strings"
	"time"

	"hardtape/internal/baseline"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// Fig5Row is one bar group of Fig. 5: the per-operation time of one
// benchmark on the three platforms, with all data found locally after
// first access (warm caches — "no security overhead" case, §VI-C).
type Fig5Row struct {
	Benchmark string
	Geth      time.Duration
	TSCVEE    time.Duration
	HarDTAPE  time.Duration
	// Ops is the operation count the marginal cost was computed over.
	Ops uint64
}

// Fig5 reproduces the local-execution microbenchmarks: Arithmetic
// (per ALU loop iteration), Storage (per warm SLOAD/SSTORE pair), and
// Transfer (per warm ERC-20 transfer call).
//
// Per-operation times are *marginal*: T(2n) − T(n) over n additional
// operations, cancelling fixed per-bundle costs (attestation crypto,
// first-touch ORAM fetches), which is exactly the paper's
// "all used data are found locally" setting.
func Fig5(env *Env) ([]Fig5Row, error) {
	var rows []Fig5Row

	// Each benchmark compares a bundle of one tx against a bundle of
	// two identical txs: the second tx finds all code and storage warm
	// (same contract, same record set), so the delta isolates the warm
	// per-operation cost.
	mkPair := func(to types.Address, data []byte, gas uint64) (*types.Bundle, *types.Bundle, error) {
		from := env.World.EOAs[0]
		tx0, err := env.World.SignedTxAt(from, 0, &to, 0, data, gas)
		if err != nil {
			return nil, nil, err
		}
		tx0b, err := env.World.SignedTxAt(from, 0, &to, 0, data, gas)
		if err != nil {
			return nil, nil, err
		}
		tx1, err := env.World.SignedTxAt(from, 1, &to, 0, data, gas)
		if err != nil {
			return nil, nil, err
		}
		one := &types.Bundle{Txs: []*types.Transaction{tx0}}
		two := &types.Bundle{Txs: []*types.Transaction{tx0b, tx1}}
		return one, two, nil
	}

	// --- Arithmetic: 2000 loop iterations per tx. ---
	const arithN = 2000
	one, two, err := mkPair(env.World.ArithLoop, workload.CalldataUint(arithN), 30_000_000)
	if err != nil {
		return nil, err
	}
	row, err := measurePair(env, "Arithmetic", arithN, one, two)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// --- Storage: 32 consecutive records, warm on the second pass. ---
	const storeN = 32
	one, two, err = mkPair(env.World.StorageHeavy, workload.CalldataUint(storeN), 5_000_000)
	if err != nil {
		return nil, err
	}
	row, err = measurePair(env, "Storage", storeN, one, two)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// --- Transfer: one warm ERC-20 transfer call. ---
	one, two, err = mkPair(env.World.Tokens[0],
		workload.CalldataTransfer(env.World.EOAs[1], 1), 200_000)
	if err != nil {
		return nil, err
	}
	row, err = measurePair(env, "Transfer", 1, one, two)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	return rows, nil
}

func measurePair(env *Env, name string, n uint64, small, big *types.Bundle) (Fig5Row, error) {
	row := Fig5Row{Benchmark: name, Ops: n}

	// Geth.
	gs, err := env.Geth.ExecuteBundle(small)
	if err != nil {
		return row, fmt.Errorf("bench: fig5 %s geth: %w", name, err)
	}
	gb, err := env.Geth.ExecuteBundle(big)
	if err != nil {
		return row, err
	}
	row.Geth = perOp(gb.VirtualTime-gs.VirtualTime, n)

	// TSC-VEE (single admitted contract: the benchmark's target).
	target := *small.Txs[0].To
	v := baseline.NewTSCVEE(env.Chain.State(), workload.NewBlockContext(&env.Chain.Head().Header), target)
	vs, err := v.ExecuteBundle(small)
	if err != nil {
		return row, fmt.Errorf("bench: fig5 %s tscvee: %w", name, err)
	}
	vb, err := v.ExecuteBundle(big)
	if err != nil {
		return row, err
	}
	row.TSCVEE = perOp(vb.VirtualTime-vs.VirtualTime, n)

	// HarDTAPE -full (marginal cost cancels the per-bundle ORAM
	// first-touch and signature overheads).
	dev := env.Devices["-full"]
	hs, err := dev.Execute(small)
	if err != nil {
		return row, fmt.Errorf("bench: fig5 %s hardtape: %w", name, err)
	}
	hb, err := dev.Execute(big)
	if err != nil {
		return row, err
	}
	if hs.Aborted != nil || hb.Aborted != nil {
		return row, fmt.Errorf("bench: fig5 %s hardtape aborted: %v/%v", name, hs.Aborted, hb.Aborted)
	}
	row.HarDTAPE = perOp(hb.VirtualTime-hs.VirtualTime, n)
	return row, nil
}

func perOp(delta time.Duration, n uint64) time.Duration {
	if delta < 0 {
		delta = 0
	}
	return delta / time.Duration(n)
}

// RenderFig5 produces the textual figure.
func RenderFig5(rows []Fig5Row) string {
	var sb strings.Builder
	sb.WriteString("FIG. 5 — execution time per operation, all data local (warm caches)\n\n")
	fmt.Fprintf(&sb, "%-12s %12s %12s %12s %8s\n", "benchmark", "Geth", "TSC-VEE", "HarDTAPE", "ops")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12s %12s %12s %8d\n",
			r.Benchmark, r.Geth, r.TSCVEE, r.HarDTAPE, r.Ops)
	}
	sb.WriteString("\npaper shape: no significant platform difference except Geth slower on Transfer\n")
	return sb.String()
}
