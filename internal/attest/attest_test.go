package attest

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
)

var _testImage = []byte("hypervisor-firmware-v1.0")

// fullHandshake provisions a device, boots it, and runs attestation.
func fullHandshake(t *testing.T) (*Session, *Session) {
	t.Helper()
	m, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := m.Provision("HT-0001")
	if err != nil {
		t.Fatal(err)
	}
	booted, err := dev.SecureBoot(_testImage)
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(m.PublicKey(), sha256.Sum256(_testImage))
	nonce, err := v.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	report, complete, err := booted.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	userSession, userPub, err := v.Verify(report, nonce)
	if err != nil {
		t.Fatal(err)
	}
	devSession, err := complete(userPub)
	if err != nil {
		t.Fatal(err)
	}
	return userSession, devSession
}

func TestAttestationEstablishesSharedKey(t *testing.T) {
	user, dev := fullHandshake(t)
	if user.Key != dev.Key {
		t.Fatal("DHKE produced different keys on each side")
	}
	if user.Key == ([32]byte{}) {
		t.Fatal("session key is zero")
	}
}

func TestSessionsAreUnique(t *testing.T) {
	s1, _ := fullHandshake(t)
	s2, _ := fullHandshake(t)
	if s1.Key == s2.Key {
		t.Fatal("two sessions derived the same key")
	}
}

func TestRejectsWrongManufacturer(t *testing.T) {
	// A1: fake pre-executor — device provisioned by a different
	// (adversarial) manufacturer must fail certificate verification.
	honest, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	evil, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := evil.Provision("HT-EVIL")
	if err != nil {
		t.Fatal(err)
	}
	booted, err := dev.SecureBoot(_testImage)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(honest.PublicKey(), sha256.Sum256(_testImage))
	nonce, _ := v.NewNonce()
	report, _, err := booted.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Verify(report, nonce); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("evil device accepted: %v", err)
	}
}

func TestRejectsWrongImage(t *testing.T) {
	m, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := m.Provision("HT-0002")
	if err != nil {
		t.Fatal(err)
	}
	booted, err := dev.SecureBoot([]byte("malicious-firmware"))
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(m.PublicKey(), sha256.Sum256(_testImage))
	nonce, _ := v.NewNonce()
	report, _, err := booted.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Verify(report, nonce); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("wrong image accepted: %v", err)
	}
}

func TestRejectsReplayedNonce(t *testing.T) {
	m, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := m.Provision("HT-0003")
	if err != nil {
		t.Fatal(err)
	}
	booted, err := dev.SecureBoot(_testImage)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(m.PublicKey(), sha256.Sum256(_testImage))
	oldNonce, _ := v.NewNonce()
	report, _, err := booted.Attest(oldNonce)
	if err != nil {
		t.Fatal(err)
	}
	// The user expects a fresh nonce; the adversary replays the old
	// report.
	freshNonce, _ := v.NewNonce()
	if _, _, err := v.Verify(report, freshNonce); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("replayed report accepted: %v", err)
	}
}

func TestRejectsTamperedReport(t *testing.T) {
	m, err := NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := m.Provision("HT-0004")
	if err != nil {
		t.Fatal(err)
	}
	booted, err := dev.SecureBoot(_testImage)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(m.PublicKey(), sha256.Sum256(_testImage))
	nonce, _ := v.NewNonce()
	report, _, err := booted.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a MITM session key.
	report.SessionPub = append([]byte(nil), report.SessionPub...)
	report.SessionPub[10] ^= 0x01
	if _, _, err := v.Verify(report, nonce); !errors.Is(err, ErrBadReport) {
		t.Fatalf("tampered report accepted: %v", err)
	}
}

func TestPUFDeterminism(t *testing.T) {
	fuse := bytes.Repeat([]byte{0xaa}, 32)
	p1 := NewPUF("S1", fuse)
	p2 := NewPUF("S1", fuse)
	k1, err := p1.deviceKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p2.deviceKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1.D.Cmp(k2.D) != 0 {
		t.Fatal("PUF-derived keys differ across boots")
	}
	// Different serials → different keys.
	p3 := NewPUF("S2", fuse)
	k3, err := p3.deviceKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1.D.Cmp(k3.D) == 0 {
		t.Fatal("different devices derived the same key")
	}
}
