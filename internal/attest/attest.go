// Package attest implements HarDTAPE's chain of trust (paper §IV-A):
// a Manufacturer-provisioned PUF seeds the device key pair, the
// Manufacturer certifies the device public key, the secure bootloader
// measures the booted image, and remote attestation proves both to a
// user before a DHKE-established AES session key opens the secure
// channel. The protocol follows ShEF (Zhao et al., ASPLOS'22), the
// design the paper adopts: the device signs the session key and a
// user-supplied nonce to defeat man-in-the-middle and replay.
package attest

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"
)

// asymOps counts asymmetric operations (ECDSA sign/verify, ECDH
// keygen/agreement) performed through this package. The session
// subsystem's core claim — a warm resume performs ZERO asymmetric
// crypto — is asserted against this counter by test instrumentation,
// not argued from code reading.
var asymOps atomic.Uint64

// AsymOps returns the cumulative asymmetric-operation count.
func AsymOps() uint64 { return asymOps.Load() }

// RecordAsymOps adds n external asymmetric operations (e.g. per-bundle
// ECDSA signatures performed by the channel layer) to the counter.
func RecordAsymOps(n uint64) { asymOps.Add(n) }

// Errors.
var (
	ErrBadCertificate = errors.New("attest: device certificate invalid")
	ErrBadReport      = errors.New("attest: attestation report invalid")
	ErrBadMeasurement = errors.New("attest: image measurement mismatch")
	ErrNonceMismatch  = errors.New("attest: nonce mismatch (replay?)")
)

// PUF simulates the physically unclonable function: a per-device
// secret that never leaves the chip. The simulation derives it from a
// fused serial; the real artifact is silicon variation.
type PUF struct {
	secret [32]byte
}

// NewPUF derives a device PUF from its (public) serial and the
// manufacturing fuse entropy.
func NewPUF(serial string, fuse []byte) *PUF {
	h := sha256.New()
	h.Write([]byte("hardtape-puf-v1"))
	h.Write([]byte(serial))
	h.Write(fuse)
	var p PUF
	copy(p.secret[:], h.Sum(nil))
	return &p
}

// deviceKey deterministically derives the device's ECDSA P-256 key
// from the PUF (re-derived at every boot; never stored).
func (p *PUF) deviceKey() (*ecdsa.PrivateKey, error) {
	// Hash-to-scalar, retrying on out-of-range (negligible probability).
	seed := p.secret
	for i := 0; i < 8; i++ {
		d := new(big.Int).SetBytes(seed[:])
		n := elliptic.P256().Params().N
		if d.Sign() > 0 && d.Cmp(n) < 0 {
			priv := new(ecdsa.PrivateKey)
			priv.Curve = elliptic.P256()
			priv.D = d
			priv.PublicKey.X, priv.PublicKey.Y = priv.Curve.ScalarBaseMult(d.Bytes())
			return priv, nil
		}
		seed = sha256.Sum256(seed[:])
	}
	return nil, errors.New("attest: key derivation failed")
}

// Manufacturer is the trusted device maker: it provisions PUF fuses
// and signs device certificates.
type Manufacturer struct {
	key *ecdsa.PrivateKey
}

// NewManufacturer creates a manufacturer with a fresh root key.
func NewManufacturer() (*Manufacturer, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: manufacturer key: %w", err)
	}
	return &Manufacturer{key: key}, nil
}

// PublicKey returns the manufacturer root of trust users pin.
func (m *Manufacturer) PublicKey() *ecdsa.PublicKey {
	return &m.key.PublicKey
}

// Certificate binds a device public key to its serial under the
// manufacturer's signature.
type Certificate struct {
	Serial    string
	DevicePub []byte // uncompressed point
	Sig       []byte // ASN.1 ECDSA over sha256(serial || devicePub)
}

// Provision fabricates a device: generates fuse entropy, builds the
// PUF, derives the device key, and signs its certificate.
func (m *Manufacturer) Provision(serial string) (*Device, error) {
	fuse := make([]byte, 32)
	if _, err := rand.Read(fuse); err != nil {
		return nil, fmt.Errorf("attest: fuse entropy: %w", err)
	}
	puf := NewPUF(serial, fuse)
	devKey, err := puf.deviceKey()
	if err != nil {
		return nil, err
	}
	pub := elliptic.Marshal(elliptic.P256(), devKey.PublicKey.X, devKey.PublicKey.Y)
	digest := certDigest(serial, pub)
	sig, err := ecdsa.SignASN1(rand.Reader, m.key, digest)
	if err != nil {
		return nil, fmt.Errorf("attest: sign certificate: %w", err)
	}
	return &Device{
		Serial: serial,
		puf:    puf,
		cert:   Certificate{Serial: serial, DevicePub: pub, Sig: sig},
	}, nil
}

func certDigest(serial string, pub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("hardtape-cert-v1"))
	h.Write([]byte(serial))
	h.Write(pub)
	return h.Sum(nil)
}

// Device is the provisioned chip: PUF + certificate. SecureBoot
// produces a booted device bound to an image measurement.
type Device struct {
	Serial string
	puf    *PUF
	cert   Certificate
}

// Certificate returns the manufacturer-signed device certificate.
func (d *Device) Certificate() Certificate { return d.cert }

// BootedDevice is a device after secure boot: it holds the re-derived
// device key and the measurement of the running image.
type BootedDevice struct {
	dev         *Device
	key         *ecdsa.PrivateKey
	measurement [32]byte
}

// SecureBoot verifies nothing here (the CSU checks the image signature
// in hardware); it measures the image and re-derives the device key
// from the PUF, exactly the state a booted Hypervisor holds.
func (d *Device) SecureBoot(image []byte) (*BootedDevice, error) {
	key, err := d.puf.deviceKey()
	if err != nil {
		return nil, err
	}
	return &BootedDevice{
		dev:         d,
		key:         key,
		measurement: sha256.Sum256(image),
	}, nil
}

// Measurement returns the booted image hash.
func (b *BootedDevice) Measurement() [32]byte { return b.measurement }

// Serial returns the device identity (ticket binding, verdict-cache
// keys).
func (b *BootedDevice) Serial() string { return b.dev.Serial }

// Report is the remote attestation response: the device signs the
// measurement, its ephemeral session (ECDH) public key, and the user's
// nonce.
type Report struct {
	Cert        Certificate
	Measurement [32]byte
	SessionPub  []byte // ECDH P-256 public key
	Nonce       [32]byte
	Sig         []byte // ASN.1 ECDSA by the device key
}

// session holds the device's side of an in-progress key exchange.
type Session struct {
	// Key is the derived AES-256 session key.
	Key [32]byte
}

// Attest answers a user's attestation request: generate an ephemeral
// ECDH key, sign (measurement, session pub, nonce), and return the
// report plus a continuation that completes the exchange when the
// user's ECDH public key arrives.
func (b *BootedDevice) Attest(nonce [32]byte) (*Report, func(userPub []byte) (*Session, error), error) {
	asymOps.Add(2) // ephemeral ECDH keygen + report ECDSA sign
	eph, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("attest: ephemeral key: %w", err)
	}
	report := &Report{
		Cert:        b.dev.cert,
		Measurement: b.measurement,
		SessionPub:  eph.PublicKey().Bytes(),
		Nonce:       nonce,
	}
	digest := reportDigest(report)
	sig, err := ecdsa.SignASN1(rand.Reader, b.key, digest)
	if err != nil {
		return nil, nil, fmt.Errorf("attest: sign report: %w", err)
	}
	report.Sig = sig

	complete := func(userPub []byte) (*Session, error) {
		asymOps.Add(1) // ECDH agreement
		peer, err := ecdh.P256().NewPublicKey(userPub)
		if err != nil {
			return nil, fmt.Errorf("attest: peer key: %w", err)
		}
		shared, err := eph.ECDH(peer)
		if err != nil {
			return nil, fmt.Errorf("attest: ecdh: %w", err)
		}
		return &Session{Key: deriveKey(shared, report.Nonce)}, nil
	}
	return report, complete, nil
}

func reportDigest(r *Report) []byte {
	h := sha256.New()
	h.Write([]byte("hardtape-report-v1"))
	h.Write(r.Measurement[:])
	h.Write(r.SessionPub)
	h.Write(r.Nonce[:])
	return h.Sum(nil)
}

// deriveKey turns the ECDH shared secret into the AES session key.
func deriveKey(shared []byte, nonce [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("hardtape-session-v1"))
	h.Write(shared)
	h.Write(nonce[:])
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}

// Verifier is the user side: it pins the manufacturer key and the
// expected image measurement.
type Verifier struct {
	manufacturerPub *ecdsa.PublicKey
	expectedImage   [32]byte
	rng             io.Reader
}

// NewVerifier builds a verifier for a known-good image hash.
func NewVerifier(manufacturerPub *ecdsa.PublicKey, expectedImage [32]byte) *Verifier {
	return &Verifier{manufacturerPub: manufacturerPub, expectedImage: expectedImage, rng: rand.Reader}
}

// NewNonce samples a fresh challenge.
func (v *Verifier) NewNonce() ([32]byte, error) {
	var n [32]byte
	if _, err := io.ReadFull(v.rng, n[:]); err != nil {
		return n, fmt.Errorf("attest: nonce: %w", err)
	}
	return n, nil
}

// Verify checks the report chain and, on success, completes the DHKE
// with a fresh user key, returning the session and the user's ECDH
// public key (to send to the device).
func (v *Verifier) Verify(report *Report, nonce [32]byte) (*Session, []byte, error) {
	asymOps.Add(1) // certificate-chain ECDSA verify
	// 1. Certificate chain: manufacturer signed the device key.
	certHash := certDigest(report.Cert.Serial, report.Cert.DevicePub)
	if !ecdsa.VerifyASN1(v.manufacturerPub, certHash, report.Cert.Sig) {
		return nil, nil, ErrBadCertificate
	}
	return v.verifyReport(report, nonce, report.Cert.DevicePub)
}

// VerifyCached checks a report against an already chain-verified
// device public key — the verdict-cache fast path. It skips only the
// manufacturer-certificate ECDSA verify; the report signature is still
// checked against the pinned key, so a forged report cannot ride a
// cached verdict.
func (v *Verifier) VerifyCached(report *Report, nonce [32]byte, trustedDevPub []byte) (*Session, []byte, error) {
	return v.verifyReport(report, nonce, trustedDevPub)
}

// verifyReport runs steps 2-5 of the chain: report signature under
// devPubBytes, nonce freshness, measurement, and the DHKE completion.
func (v *Verifier) verifyReport(report *Report, nonce [32]byte, devPubBytes []byte) (*Session, []byte, error) {
	asymOps.Add(3) // report verify + user ECDH keygen + agreement
	// 2. Report signature by the device key.
	x, y := elliptic.Unmarshal(elliptic.P256(), devPubBytes)
	if x == nil {
		return nil, nil, ErrBadCertificate
	}
	devPub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	if !ecdsa.VerifyASN1(devPub, reportDigest(report), report.Sig) {
		return nil, nil, ErrBadReport
	}
	// 3. Nonce freshness. Constant-time: comparison latency must not
	// tell a probing SP how many nonce bytes it guessed right.
	if subtle.ConstantTimeCompare(report.Nonce[:], nonce[:]) != 1 {
		return nil, nil, ErrNonceMismatch
	}
	// 4. Image measurement, same discipline.
	if subtle.ConstantTimeCompare(report.Measurement[:], v.expectedImage[:]) != 1 {
		return nil, nil, ErrBadMeasurement
	}
	// 5. Complete DHKE.
	userKey, err := ecdh.P256().GenerateKey(v.rng)
	if err != nil {
		return nil, nil, fmt.Errorf("attest: user key: %w", err)
	}
	devEph, err := ecdh.P256().NewPublicKey(report.SessionPub)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: session pub: %v", ErrBadReport, err)
	}
	shared, err := userKey.ECDH(devEph)
	if err != nil {
		return nil, nil, fmt.Errorf("attest: ecdh: %w", err)
	}
	return &Session{Key: deriveKey(shared, nonce)}, userKey.PublicKey().Bytes(), nil
}
