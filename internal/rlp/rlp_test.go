package rlp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// Canonical test vectors from the Ethereum wiki.
func TestKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		item *Item
		want []byte
	}{
		{"empty string", String(nil), []byte{0x80}},
		{"dog", String([]byte("dog")), []byte{0x83, 'd', 'o', 'g'}},
		{"single low byte", String([]byte{0x0f}), []byte{0x0f}},
		{"single high byte", String([]byte{0x80}), []byte{0x81, 0x80}},
		{"zero uint", Uint(0), []byte{0x80}},
		{"uint 15", Uint(15), []byte{0x0f}},
		{"uint 1024", Uint(1024), []byte{0x82, 0x04, 0x00}},
		{"empty list", List(), []byte{0xc0}},
		{
			"cat dog list",
			List(String([]byte("cat")), String([]byte("dog"))),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'},
		},
		{
			"set theoretic representation of three",
			List(List(), List(List()), List(List(), List(List()))),
			[]byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.item.Encode()
			if !bytes.Equal(got, tt.want) {
				t.Fatalf("encode: got %x want %x", got, tt.want)
			}
			back, err := Decode(got)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(back.Encode(), tt.want) {
				t.Fatalf("re-encode mismatch: %x", back.Encode())
			}
		})
	}
}

func TestLongString(t *testing.T) {
	// "Lorem ipsum..." style: a 56-byte string needs a long-form header.
	s := bytes.Repeat([]byte{'a'}, 56)
	enc := EncodeBytes(s)
	if enc[0] != 0xb8 || enc[1] != 56 {
		t.Fatalf("long string header: %x", enc[:2])
	}
	it, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := it.MustStr(); !bytes.Equal(got, s) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestLongList(t *testing.T) {
	var elems [][]byte
	for i := 0; i < 30; i++ {
		elems = append(elems, []byte("ab"))
	}
	enc := EncodeList(elems...)
	it, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	children, err := it.Children()
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 30 {
		t.Fatalf("children = %d", len(children))
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated short string", []byte{0x83, 'd', 'o'}, ErrTruncated},
		{"truncated long string", []byte{0xb8, 0x40, 0x01}, ErrTruncated},
		{"truncated list", []byte{0xc8, 0x83}, ErrTruncated},
		{"trailing bytes", []byte{0x01, 0x02}, ErrTrailingBytes},
		{"non-canonical single byte", []byte{0x81, 0x05}, ErrNonCanonical},
		{"non-canonical long string", append([]byte{0xb8, 0x01}, 0xff), ErrNonCanonical},
		{"non-canonical length leading zero", []byte{0xb9, 0x00, 0x01}, ErrNonCanonical},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.in); !errors.Is(err, tt.want) {
				t.Fatalf("Decode(%x): got %v, want %v", tt.in, err, tt.want)
			}
		})
	}
}

func TestKindAccessors(t *testing.T) {
	s := String([]byte("x"))
	l := List(s)
	if s.Kind() != KindString || l.Kind() != KindList {
		t.Fatal("Kind accessors wrong")
	}
	if _, err := s.Children(); !errors.Is(err, ErrNotList) {
		t.Error("Children on string should fail")
	}
	if _, err := l.Str(); !errors.Is(err, ErrNotString) {
		t.Error("Str on list should fail")
	}
}

func TestUintValue(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 255, 256, 1 << 32, 1<<63 + 5} {
		it, err := Decode(EncodeUint(v))
		if err != nil {
			t.Fatalf("decode uint %d: %v", v, err)
		}
		got, err := it.UintValue()
		if err != nil {
			t.Fatalf("UintValue(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("UintValue = %d, want %d", got, v)
		}
	}
	// Leading zero is non-canonical for integers.
	it := String([]byte{0x00, 0x01})
	if _, err := it.UintValue(); !errors.Is(err, ErrNonCanonical) {
		t.Error("leading-zero integer should be non-canonical")
	}
	// Too large.
	it = String(bytes.Repeat([]byte{0xff}, 9))
	if _, err := it.UintValue(); err == nil {
		t.Error("9-byte integer should fail")
	}
}

func TestDecodePrefix(t *testing.T) {
	data := append(EncodeBytes([]byte("hello")), 0xde, 0xad)
	it, rest, err := DecodePrefix(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(it.MustStr(), []byte("hello")) {
		t.Fatalf("prefix item: %q", it.MustStr())
	}
	if !bytes.Equal(rest, []byte{0xde, 0xad}) {
		t.Fatalf("rest: %x", rest)
	}
}

func TestStringCopies(t *testing.T) {
	src := []byte("mutable")
	it := String(src)
	src[0] = 'X'
	if it.MustStr()[0] == 'X' {
		t.Error("String must copy its input")
	}
}

// Property: encode→decode→encode is the identity on arbitrary byte
// strings and on lists built from them.
func TestQuickRoundTrip(t *testing.T) {
	f := func(chunks [][]byte) bool {
		items := make([]*Item, len(chunks))
		for i, c := range chunks {
			items[i] = String(c)
		}
		root := List(items...)
		enc := root.Encode()
		back, err := Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(back.Encode(), enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics, and any successful
// decode re-encodes to exactly the consumed input (canonicality).
func TestQuickDecodeTotal(t *testing.T) {
	f := func(data []byte) bool {
		it, err := Decode(data)
		if err != nil {
			return true
		}
		return bytes.Equal(it.Encode(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
