// Package rlp implements Ethereum's Recursive Length Prefix (RLP)
// serialization, used by the Merkle Patricia Trie, transactions, and
// block headers.
//
// RLP encodes two kinds of items: byte strings and lists of items. This
// package exposes an Item tree model plus convenience encoders for the
// common cases (bytes, uint64, lists of byte slices).
package rlp

import (
	"errors"
	"fmt"
)

// Kind discriminates the two RLP item types.
type Kind int

// The two RLP item kinds.
const (
	KindString Kind = iota + 1
	KindList
)

// Item is a decoded RLP item: either a byte string or a list of items.
type Item struct {
	kind Kind
	str  []byte
	list []*Item
}

// Decoding errors.
var (
	ErrTruncated     = errors.New("rlp: input truncated")
	ErrTrailingBytes = errors.New("rlp: trailing bytes after item")
	ErrNonCanonical  = errors.New("rlp: non-canonical encoding")
	ErrNotString     = errors.New("rlp: item is not a string")
	ErrNotList       = errors.New("rlp: item is not a list")
)

// String constructs a string item. The bytes are copied.
func String(b []byte) *Item {
	s := make([]byte, len(b))
	copy(s, b)
	return &Item{kind: KindString, str: s}
}

// Uint constructs a string item holding the minimal big-endian
// representation of v (empty string for zero), per RLP convention.
func Uint(v uint64) *Item {
	return &Item{kind: KindString, str: putUint(v)}
}

// List constructs a list item from the given children.
func List(children ...*Item) *Item {
	return &Item{kind: KindList, list: children}
}

// Kind returns the item's kind.
func (it *Item) Kind() Kind { return it.kind }

// Str returns the string payload. It returns ErrNotString for lists.
func (it *Item) Str() ([]byte, error) {
	if it.kind != KindString {
		return nil, ErrNotString
	}
	return it.str, nil
}

// MustStr returns the string payload, panicking for lists. For use in
// contexts where the shape has already been validated.
func (it *Item) MustStr() []byte {
	b, err := it.Str()
	if err != nil {
		panic(err)
	}
	return b
}

// Children returns the list elements. It returns ErrNotList for strings.
func (it *Item) Children() ([]*Item, error) {
	if it.kind != KindList {
		return nil, ErrNotList
	}
	return it.list, nil
}

// UintValue decodes the string payload as a big-endian unsigned integer.
func (it *Item) UintValue() (uint64, error) {
	b, err := it.Str()
	if err != nil {
		return 0, err
	}
	if len(b) > 8 {
		return 0, fmt.Errorf("rlp: integer too large (%d bytes)", len(b))
	}
	if len(b) > 0 && b[0] == 0 {
		return 0, ErrNonCanonical
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}

// Encode serializes the item tree.
func (it *Item) Encode() []byte {
	return it.appendTo(nil)
}

func (it *Item) appendTo(out []byte) []byte {
	if it.kind == KindString {
		return appendString(out, it.str)
	}
	var payload []byte
	for _, child := range it.list {
		payload = child.appendTo(payload)
	}
	out = appendLength(out, 0xc0, len(payload))
	return append(out, payload...)
}

// EncodeBytes RLP-encodes a single byte string.
func EncodeBytes(b []byte) []byte {
	return appendString(nil, b)
}

// EncodeUint RLP-encodes an unsigned integer.
func EncodeUint(v uint64) []byte {
	return appendString(nil, putUint(v))
}

// EncodeList RLP-encodes a list whose elements are byte strings.
func EncodeList(elems ...[]byte) []byte {
	items := make([]*Item, len(elems))
	for i, e := range elems {
		items[i] = String(e)
	}
	return List(items...).Encode()
}

// putUint returns the minimal big-endian representation of v.
func putUint(v uint64) []byte {
	if v == 0 {
		return nil
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		c := byte(v >> uint(shift))
		if n == 0 && c == 0 {
			continue
		}
		buf[n] = c
		n++
	}
	return buf[:n]
}

// appendString appends the RLP encoding of a byte string.
func appendString(out, b []byte) []byte {
	if len(b) == 1 && b[0] < 0x80 {
		return append(out, b[0])
	}
	out = appendLength(out, 0x80, len(b))
	return append(out, b...)
}

// appendLength appends the RLP length prefix with the given base tag.
func appendLength(out []byte, base byte, length int) []byte {
	if length < 56 {
		return append(out, base+byte(length))
	}
	lenBytes := putUint(uint64(length))
	out = append(out, base+55+byte(len(lenBytes)))
	return append(out, lenBytes...)
}

// Decode parses a single RLP item and requires the input to be fully
// consumed.
func Decode(data []byte) (*Item, error) {
	it, rest, err := decodeItem(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailingBytes
	}
	return it, nil
}

// DecodePrefix parses a single RLP item from the front of data,
// returning the item and any remaining bytes.
func DecodePrefix(data []byte) (*Item, []byte, error) {
	return decodeItem(data)
}

func decodeItem(data []byte) (*Item, []byte, error) {
	if len(data) == 0 {
		return nil, nil, ErrTruncated
	}
	tag := data[0]
	switch {
	case tag < 0x80:
		return &Item{kind: KindString, str: []byte{tag}}, data[1:], nil

	case tag <= 0xb7: // short string
		length := int(tag - 0x80)
		if len(data) < 1+length {
			return nil, nil, ErrTruncated
		}
		str := data[1 : 1+length]
		if length == 1 && str[0] < 0x80 {
			return nil, nil, ErrNonCanonical
		}
		cp := make([]byte, length)
		copy(cp, str)
		return &Item{kind: KindString, str: cp}, data[1+length:], nil

	case tag <= 0xbf: // long string
		payload, rest, err := decodeLongLength(data, tag-0xb7)
		if err != nil {
			return nil, nil, err
		}
		if len(payload) < 56 {
			return nil, nil, ErrNonCanonical
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		return &Item{kind: KindString, str: cp}, rest, nil

	case tag <= 0xf7: // short list
		length := int(tag - 0xc0)
		if len(data) < 1+length {
			return nil, nil, ErrTruncated
		}
		children, err := decodeListPayload(data[1 : 1+length])
		if err != nil {
			return nil, nil, err
		}
		return &Item{kind: KindList, list: children}, data[1+length:], nil

	default: // long list
		payload, rest, err := decodeLongLength(data, tag-0xf7)
		if err != nil {
			return nil, nil, err
		}
		if len(payload) < 56 {
			return nil, nil, ErrNonCanonical
		}
		children, err := decodeListPayload(payload)
		if err != nil {
			return nil, nil, err
		}
		return &Item{kind: KindList, list: children}, rest, nil
	}
}

// decodeLongLength reads an n-byte big-endian length then slices out the
// payload.
func decodeLongLength(data []byte, n byte) (payload, rest []byte, err error) {
	if len(data) < 1+int(n) {
		return nil, nil, ErrTruncated
	}
	lenBytes := data[1 : 1+n]
	if lenBytes[0] == 0 {
		return nil, nil, ErrNonCanonical
	}
	var length uint64
	for _, c := range lenBytes {
		if length > (1<<56)-1 {
			return nil, nil, fmt.Errorf("rlp: length overflow")
		}
		length = length<<8 | uint64(c)
	}
	start := 1 + int(n)
	if uint64(len(data)-start) < length {
		return nil, nil, ErrTruncated
	}
	return data[start : start+int(length)], data[start+int(length):], nil
}

func decodeListPayload(payload []byte) ([]*Item, error) {
	var children []*Item
	for len(payload) > 0 {
		child, rest, err := decodeItem(payload)
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		payload = rest
	}
	return children, nil
}
