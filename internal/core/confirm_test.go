package core

import (
	"errors"
	"net"
	"testing"
	"time"

	"hardtape/internal/channel"
)

// TestServeConnRejectsBadConfirmTag replays the handshake with a
// client that completes DHKE correctly but sends a corrupted
// key-confirmation tag: the service must refuse to open the bundle
// loop with ErrBadConfirmTag, not fail later with a generic AEAD
// error.
func TestServeConnRejectsBadConfirmTag(t *testing.T) {
	sr := buildServiceRig(t, ConfigFull)
	client, server := net.Pipe()
	defer client.Close()
	errCh := make(chan error, 1)
	go func() {
		defer server.Close()
		errCh <- sr.svc.ServeConn(server)
	}()

	verifier := sr.verifier()
	nonce, err := verifier.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	if err := writePlain(client, channel.MsgAttestRequest, 0, &attestRequestMsg{Nonce: nonce}); err != nil {
		t.Fatal(err)
	}
	raw, err := channel.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	_, body, err := parsePlain(raw, channel.MsgAttestReport)
	if err != nil {
		t.Fatal(err)
	}
	var rep attestReportMsg
	if err := gobDecode(body, &rep); err != nil {
		t.Fatal(err)
	}
	session, userPub, err := verifier.Verify(&rep.Report, nonce)
	if err != nil {
		t.Fatal(err)
	}

	confirm := channel.ConfirmTag(session.Key, rep.SessionID, "user")
	confirm[0] ^= 0x01 // attacker-in-the-middle: tag no longer matches the key
	kx := keyExchangeMsg{SessionID: rep.SessionID, UserPub: userPub, Confirm: confirm[:]}
	if err := writePlain(client, channel.MsgKeyExchange, rep.SessionID, &kx); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errCh:
		if !errors.Is(err, channel.ErrBadConfirmTag) {
			t.Fatalf("want ErrBadConfirmTag, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("service did not reject the tampered confirmation tag")
	}
}
