// Package core implements HarDTAPE itself: the trusted pre-execution
// device of the paper (Fig. 3). It composes every substrate — the
// EVM interpreter, the hardware-EVM shadow (3-layer memory), the
// Path-ORAM-backed paged world state, the prefetcher, attestation, the
// secure channel, and the tracer — into the bundle lifecycle
// (steps 1–11) and exposes the feature toggles of the paper's Fig. 4
// configurations (-raw, -E, -ES, -ESO, -full).
package core

import (
	"hardtape/internal/hevm"
	"hardtape/internal/simclock"
	"hardtape/internal/telemetry"
)

// Features selects the security mechanisms, mirroring Fig. 4.
type Features struct {
	// Encrypt protects user inputs and returned traces with AES-GCM
	// over the session key (-E).
	Encrypt bool
	// Sign adds per-bundle ECDSA signature and verification (-ES).
	Sign bool
	// ORAMStorage serves K-V queries (account meta + storage records)
	// through the Path ORAM (-ESO).
	ORAMStorage bool
	// ORAMCode serves contract code through the Path ORAM with
	// pagewise prefetching (-full).
	ORAMCode bool
}

// The paper's named configurations.
var (
	// ConfigRaw disables all off-chip data protections.
	ConfigRaw = Features{}
	// ConfigE enables encryption.
	ConfigE = Features{Encrypt: true}
	// ConfigES adds user data signature and verification.
	ConfigES = Features{Encrypt: true, Sign: true}
	// ConfigESO adds ORAM for storage.
	ConfigESO = Features{Encrypt: true, Sign: true, ORAMStorage: true}
	// ConfigFull adds ORAM for all world-state data. This is the
	// configuration the SP deploys.
	ConfigFull = Features{Encrypt: true, Sign: true, ORAMStorage: true, ORAMCode: true}
)

// Name renders the paper's label for a feature set.
func (f Features) Name() string {
	switch f {
	case ConfigRaw:
		return "-raw"
	case ConfigE:
		return "-E"
	case ConfigES:
		return "-ES"
	case ConfigESO:
		return "-ESO"
	case ConfigFull:
		return "-full"
	default:
		return "custom"
	}
}

// Config sizes one HarDTAPE device.
type Config struct {
	Features Features
	// HEVMs is the number of hardware EVM cores (the XCZU15EV fits 3).
	HEVMs int
	// Lanes is the number of speculative execution lanes per HEVM core.
	// 0 or 1 executes bundles sequentially (the paper's prototype);
	// N > 1 pre-executes a bundle's transactions optimistically in
	// parallel on N lanes with in-order commit and conflict-driven
	// re-execution (DESIGN.md §16). Traces are byte-identical either
	// way; only the modeled timing and occupancy change.
	Lanes int
	// Hardware is the per-HEVM memory geometry.
	Hardware hevm.Config
	// Calibration is the virtual-time cost table.
	Calibration simclock.Calibration
	// ORAMCapacity is the ORAM tree capacity in 1 KB blocks (split
	// evenly across shards when ORAMShards > 1).
	ORAMCapacity uint64
	// ORAMShards partitions the world state across K independent Path
	// ORAM trees by a stable block-id hash; batched accesses fan out
	// across shards in one overlapped round (DESIGN.md §17). 0 or 1
	// keeps the paper's single tree.
	ORAMShards int
	// ORAMDir, when non-empty, makes the ORAM durable: disk-backed
	// bucket files plus crash-consistent stash/position-map
	// checkpointing under this directory, one subdirectory per shard.
	// A device restarted over the same directory (and ORAMKey) resumes
	// from the last checkpoint. Mutually exclusive with RemoteORAMAddr
	// and RecursivePositionMap.
	ORAMDir string
	// NoiseSeed seeds the swap-noise RNG (reproducibility).
	NoiseSeed int64
	// CaptureSteps enables per-instruction traces (correctness runs).
	CaptureSteps bool
	// DisablePrefetch turns off pagewise code prefetching: all code
	// pages of a frame are fetched in one burst. This is the ablation
	// of §IV-D problem 3 — it leaks the query type via burst patterns
	// and is for experiments only.
	DisablePrefetch bool
	// RecursivePositionMap stores the ORAM position map in a smaller
	// parent ORAM instead of flat on-chip memory — the paper's
	// "higher-level ORAMs recursively" extension (§II-C). Costs extra
	// ORAM accesses per query; the default keeps the highest-level map
	// on-chip as the prototype does.
	RecursivePositionMap bool
	// ORAMKey, when set, is the shared bucket-encryption key obtained
	// from a sibling device via RequestORAMKey (paper §IV-D). Empty
	// means "first device deployed": generate a fresh random key.
	ORAMKey []byte
	// RemoteORAMAddr, when non-empty, connects to a TCP ORAM server at
	// this address instead of creating an in-process one — the paper's
	// deployment shape (the SP runs one ORAM server over Ethernet for
	// multiple HarDTAPE instances, §IV-D).
	RemoteORAMAddr string
	// Telemetry, when non-nil, registers the device's metric series on
	// this registry and records per bundle. Nil (the default) disables
	// telemetry entirely: the pipeline pays one branch per record site
	// and allocates nothing.
	Telemetry *telemetry.Registry
}

// ORAMShardCount returns the effective shard count (minimum 1).
func (c Config) ORAMShardCount() int {
	if c.ORAMShards > 1 {
		return c.ORAMShards
	}
	return 1
}

// DefaultConfig mirrors the paper's prototype.
func DefaultConfig() Config {
	return Config{
		Features:     ConfigFull,
		HEVMs:        3,
		Hardware:     hevm.DefaultConfig(),
		Calibration:  simclock.DefaultCalibration(),
		ORAMCapacity: 1 << 16, // 64k pages ≙ 64 MB simulated world state
		NoiseSeed:    1,
	}
}
