package core

import (
	"hardtape/internal/evm"
	"hardtape/internal/telemetry"
)

// devMetrics holds a device's registered series. The struct is always
// allocated — with telemetry disabled every instrument is nil and each
// record call costs one branch (the telemetry package's nil-receiver
// contract), so the pipeline never checks "is the holder there".
//
// Everything exported here is SP-observable already: bundle counts and
// sizes, wall/virtual latencies, swap-event and page-movement totals,
// ORAM query counts. Nothing carries addresses, calldata, keys, or
// leaf positions.
type devMetrics struct {
	enabled bool

	bundlesOK      *telemetry.Counter
	bundlesAborted *telemetry.Counter
	bundlesErr     *telemetry.Counter
	txs            *telemetry.Counter
	gas            *telemetry.Counter

	execWall    *telemetry.Histogram
	execVirtual *telemetry.Histogram

	hevmSteps      *telemetry.Counter
	hevmSwaps      *telemetry.Counter
	hevmEvicted    *telemetry.Counter
	hevmLoaded     *telemetry.Counter
	hevmCodeFaults *telemetry.Counter
	hevmOverflows  *telemetry.Counter
	hevmL2Peak     *telemetry.Gauge

	wsHits   *telemetry.Counter
	wsMisses *telemetry.Counter

	oramQueries *telemetry.Counter

	// Optimistic-scheduler series (Config.Lanes > 1).
	specsTotal    *telemetry.Counter
	specRetries   *telemetry.Counter
	conflicts     *telemetry.Counter
	reexecs       *telemetry.Counter
	reexecSeconds *telemetry.Histogram
	laneOccupancy *telemetry.Histogram

	opClasses [evm.NumOpClasses]*telemetry.Counter
}

func newDevMetrics(reg *telemetry.Registry) *devMetrics {
	m := &devMetrics{}
	if reg == nil {
		return m
	}
	m.enabled = true
	m.bundlesOK = reg.Counter("hardtape_device_bundles_total", "bundles pre-executed by outcome", "outcome", "ok")
	m.bundlesAborted = reg.Counter("hardtape_device_bundles_total", "bundles pre-executed by outcome", "outcome", "aborted")
	m.bundlesErr = reg.Counter("hardtape_device_bundles_total", "bundles pre-executed by outcome", "outcome", "error")
	m.txs = reg.Counter("hardtape_device_txs_total", "transactions pre-executed")
	m.gas = reg.Counter("hardtape_device_gas_total", "gas consumed by pre-executed transactions")
	m.execWall = reg.Histogram("hardtape_device_execute_seconds", "wall time of bundle execution on an HEVM slot", nil)
	m.execVirtual = reg.Histogram("hardtape_device_virtual_seconds", "modeled device time per bundle (the Fig. 4 quantity)", nil)
	m.hevmSteps = reg.Counter("hardtape_hevm_steps_total", "EVM instructions retired by the HEVM shadow")
	m.hevmSwaps = reg.Counter("hardtape_hevm_swap_events_total", "L2/L3 swap events (adversary-observable bursts)")
	m.hevmEvicted = reg.Counter("hardtape_hevm_pages_evicted_total", "pages sealed to L3, including eviction noise")
	m.hevmLoaded = reg.Counter("hardtape_hevm_pages_loaded_total", "pages reloaded from L3, including preload noise")
	m.hevmCodeFaults = reg.Counter("hardtape_hevm_code_faults_total", "L1 code-cache misses faulting to L2")
	m.hevmOverflows = reg.Counter("hardtape_hevm_overflows_total", "Memory Overflow aborts")
	m.hevmL2Peak = reg.Gauge("hardtape_hevm_l2_pages_peak", "high-water L2 ring occupancy in pages")
	m.wsHits = reg.Counter("hardtape_wscache_hits_total", "L1 world-state cache hits")
	m.wsMisses = reg.Counter("hardtape_wscache_misses_total", "L1 world-state cache misses")
	m.oramQueries = reg.Counter("hardtape_device_oram_queries_total", "world-state queries answered through the ORAM")
	m.specsTotal = reg.Counter("hardtape_device_speculations_total", "speculative transaction executions on parallel lanes")
	m.specRetries = reg.Counter("hardtape_device_spec_retries_total", "worker-side re-speculations after a stale read set")
	m.conflicts = reg.Counter("hardtape_device_conflicts_total", "commit-time read-set validation failures")
	m.reexecs = reg.Counter("hardtape_device_reexecs_total", "in-order re-executions on the commit lane")
	m.reexecSeconds = reg.Histogram("hardtape_device_reexec_seconds", "modeled device time spent re-executing conflicting transactions", nil)
	m.laneOccupancy = reg.Histogram("hardtape_device_lane_occupancy", "mean speculative-lane utilization per parallel bundle", telemetry.RatioBuckets)
	for i := range m.opClasses {
		// The class label is drawn from the fixed OpClass enum, never
		// from program data.
		//hardtape:telemetry-ok class labels enumerate the closed OpClass set
		m.opClasses[i] = reg.Counter("hardtape_evm_ops_total", "instructions retired by opcode class", "class", evm.OpClass(i).String())
	}
	return m
}

// recordBundle flushes one finished bundle's per-slot state into the
// shared series. Called with the slot still held, before reset.
func (m *devMetrics) recordBundle(s *slot, res *BundleResult) {
	if !m.enabled {
		return
	}
	st := res.HEVMStats
	m.hevmSteps.Add(st.Steps)
	m.hevmSwaps.Add(uint64(st.SwapEvents))
	m.hevmEvicted.Add(uint64(st.PagesEvicted))
	m.hevmLoaded.Add(uint64(st.PagesLoaded))
	m.hevmCodeFaults.Add(st.CodeFaults)
	if st.Overflowed {
		m.hevmOverflows.Inc()
	}
	m.hevmL2Peak.SetMax(int64(st.L2PagesUsed))
	hits, misses := s.wsCache.HitRate()
	m.wsHits.Add(hits)
	m.wsMisses.Add(misses)
	m.oramQueries.Add(res.ORAMQueries)
	counts := s.opCounts
	for _, l := range s.lanes {
		lh, lm := l.wsCache.HitRate()
		m.wsHits.Add(lh)
		m.wsMisses.Add(lm)
		for i, n := range l.opCounts {
			counts[i] += n
		}
	}
	for i, n := range counts {
		if n != 0 {
			m.opClasses[i].Add(n)
		}
	}
	if p := res.Parallel; p != nil {
		m.specsTotal.Add(uint64(p.Speculations))
		m.specRetries.Add(uint64(p.SpecRetries))
		m.conflicts.Add(uint64(p.Conflicts))
		m.reexecs.Add(uint64(p.ReExecs))
		m.reexecSeconds.Observe(p.ReExecTime.Seconds())
		m.laneOccupancy.Observe(p.Occupancy)
	}
	m.execVirtual.Observe(res.VirtualTime.Seconds())
	m.gas.Add(res.GasUsed)
	if res.Aborted != nil {
		m.bundlesAborted.Inc()
	} else {
		m.bundlesOK.Inc()
	}
}

// svcMetrics holds the Service's registered series: session and
// handshake counts, per-stage latencies of the bundle loop, and
// message sizes. Same allocation discipline as devMetrics.
type svcMetrics struct {
	enabled bool

	sessions *telemetry.Counter
	// Handshakes split by mode: cold pays attest+DHKE (~80 ms of
	// asymmetric crypto), warm is a ticket redemption plus an AES rekey.
	handshakesCold *telemetry.Counter
	handshakesWarm *telemetry.Counter

	attest *telemetry.Histogram
	dhke   *telemetry.Histogram
	resume *telemetry.Histogram

	// Ticket lifecycle counters, one per event outcome.
	ticketsIssued     *telemetry.Counter
	ticketsRedeemed   *telemetry.Counter
	ticketsExpired    *telemetry.Counter
	ticketsReplayed   *telemetry.Counter
	ticketsTampered   *telemetry.Counter
	ticketsMismatched *telemetry.Counter

	// admissionWait is how long a cold handshake queued at the gate
	// (resumes bypass it by design, so they never appear here).
	admissionWait *telemetry.Histogram

	execute *telemetry.Histogram

	bytesIn  *telemetry.Histogram
	bytesOut *telemetry.Histogram

	bundlesOK  *telemetry.Counter
	bundlesErr *telemetry.Counter
}

func newSvcMetrics(reg *telemetry.Registry) *svcMetrics {
	m := &svcMetrics{}
	if reg == nil {
		return m
	}
	m.enabled = true
	m.sessions = reg.Counter("hardtape_service_sessions_total", "user sessions accepted")
	m.handshakesCold = reg.Counter("hardtape_service_handshakes_total", "handshakes completed by mode", "mode", "cold")
	m.handshakesWarm = reg.Counter("hardtape_service_handshakes_total", "handshakes completed by mode", "mode", "warm")
	m.attest = reg.Histogram("hardtape_service_handshake_seconds", "handshake stage latency", nil, "stage", "attest")
	m.dhke = reg.Histogram("hardtape_service_handshake_seconds", "handshake stage latency", nil, "stage", "dhke")
	m.resume = reg.Histogram("hardtape_service_handshake_seconds", "handshake stage latency", nil, "stage", "resume")
	m.ticketsIssued = reg.Counter("hardtape_service_tickets_total", "resumption tickets by lifecycle event", "event", "issued")
	m.ticketsRedeemed = reg.Counter("hardtape_service_tickets_total", "resumption tickets by lifecycle event", "event", "redeemed")
	m.ticketsExpired = reg.Counter("hardtape_service_tickets_total", "resumption tickets by lifecycle event", "event", "expired")
	m.ticketsReplayed = reg.Counter("hardtape_service_tickets_total", "resumption tickets by lifecycle event", "event", "replayed")
	m.ticketsTampered = reg.Counter("hardtape_service_tickets_total", "resumption tickets by lifecycle event", "event", "tampered")
	m.ticketsMismatched = reg.Counter("hardtape_service_tickets_total", "resumption tickets by lifecycle event", "event", "mismatched")
	m.admissionWait = reg.Histogram("hardtape_service_admission_wait_seconds", "cold-handshake admission queue wait", nil)
	m.execute = reg.Histogram("hardtape_service_bundle_stage_seconds", "bundle pipeline stage latency", nil, "stage", "execute")
	m.bytesIn = reg.Histogram("hardtape_service_request_bytes", "sealed bundle request size", telemetry.SizeBuckets)
	m.bytesOut = reg.Histogram("hardtape_service_response_bytes", "sealed trace response size", telemetry.SizeBuckets)
	m.bundlesOK = reg.Counter("hardtape_service_bundles_total", "bundle requests served by outcome", "outcome", "ok")
	m.bundlesErr = reg.Counter("hardtape_service_bundles_total", "bundle requests served by outcome", "outcome", "error")
	return m
}
