package core

import (
	"net"
	"testing"

	"hardtape/internal/node"
	"hardtape/internal/oram"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// TestRecursivePositionMapDevice exercises the paper's recursive
// position-map extension end to end: same behaviour, more ORAM work.
func TestRecursivePositionMapDevice(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 8
	wcfg.Tokens = 1
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HEVMs = 1
	cfg.RecursivePositionMap = true
	dev, err := NewDevice(cfg, nil, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	token := w.Tokens[0]
	tx, err := w.SignedTxAt(w.EOAs[0], 0, &token, 0,
		workload.CalldataTransfer(w.EOAs[1], 11), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil || res.Trace.Txs[0].Reverted {
		t.Fatalf("recursive-posmap execution failed: %+v", res)
	}
}

// TestRemoteORAMDevice runs the whole device against a TCP ORAM server
// — the paper's actual deployment topology.
func TestRemoteORAMDevice(t *testing.T) {
	inner, err := oram.NewMemServer(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := oram.ServeTCP(inner, l)
	defer srv.Close()

	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 8
	wcfg.Tokens = 1
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HEVMs = 1
	cfg.RemoteORAMAddr = srv.Addr().String()
	dev, err := NewDevice(cfg, nil, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	token := w.Tokens[0]
	tx, err := w.SignedTxAt(w.EOAs[0], 0, &token, 0,
		workload.CalldataTransfer(w.EOAs[1], 7), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil || res.Trace.Txs[0].Reverted || res.ORAMQueries == 0 {
		t.Fatalf("remote-ORAM execution failed: %+v", res)
	}
	// The TCP server actually held the data.
	if inner.StoredBytes() == 0 {
		t.Fatal("remote server stored nothing")
	}
}

// TestRemoteAndLocalAgree: the transport must not change behaviour.
func TestRemoteAndLocalORAMAgree(t *testing.T) {
	inner, err := oram.NewMemServer(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := oram.ServeTCP(inner, l)
	defer srv.Close()

	run := func(remoteAddr string) *tracer.TxTrace {
		wcfg := workload.DefaultConfig()
		wcfg.EOAs = 8
		wcfg.Tokens = 1
		wcfg.DEXes = 1
		w, err := workload.BuildWorld(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := node.New(w.State)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.HEVMs = 1
		cfg.RemoteORAMAddr = remoteAddr
		dev, err := NewDevice(cfg, nil, chain)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Sync(); err != nil {
			t.Fatal(err)
		}
		dex := w.DEXes[0]
		tx, err := w.SignedTxAt(w.EOAs[0], 0, &dex, 0, workload.CalldataSwap(500), 500_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace.Txs[0]
	}
	local := run("")
	remote := run(srv.Addr().String())
	if diffs := tracer.Diff(local, remote); len(diffs) != 0 {
		t.Fatalf("transport changed behaviour: %v", diffs)
	}
}
