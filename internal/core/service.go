package core

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/channel"
	"hardtape/internal/session"
	"hardtape/internal/telemetry"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
)

// Wire payloads (gob-encoded inside channel messages).

// attestRequestMsg opens a session (plaintext: no keys exist yet).
type attestRequestMsg struct {
	Nonce [32]byte
}

// attestReportMsg carries the device's report plus the session id the
// Hypervisor allocated.
type attestReportMsg struct {
	Report    attest.Report
	SessionID uint64
	// DevSigPub is the Hypervisor's per-session ECDSA public key
	// (uncompressed), used when signatures are enabled.
	DevSigPub []byte
}

// keyExchangeMsg completes DHKE. The exchange itself is plaintext, so
// Confirm carries the user's key-confirmation tag: an HMAC under the
// derived session key that the Hypervisor verifies before opening the
// bundle loop. A tampered exchange is rejected here, explicitly,
// instead of surfacing later as an unattributable AEAD failure.
type keyExchangeMsg struct {
	SessionID  uint64
	UserPub    []byte
	UserSigPub []byte
	Confirm    []byte
}

// bundleMsg is the encrypted bundle submission.
type bundleMsg struct {
	Bundle types.Bundle
}

// traceMsg is the encrypted response.
type traceMsg struct {
	Trace       tracer.BundleTrace
	VirtualTime time.Duration
	AbortReason string
	GasUsed     uint64
	// TraceSpans carries this process's finished distributed-tracing
	// spans for the request's trace back to the caller, which adopts
	// them into its flight recorder — one contiguous tree per request
	// no matter how many processes served it. Empty when the request
	// was untraced.
	TraceSpans []telemetry.SpanRecord
}

// wireTraceContext converts a span context to its channel encoding.
func wireTraceContext(sc telemetry.SpanContext) channel.TraceContext {
	return channel.TraceContext{Trace: [16]byte(sc.Trace), Span: [8]byte(sc.Span)}
}

// spanCtxFromWire converts a received wire context back.
func spanCtxFromWire(tc channel.TraceContext) telemetry.SpanContext {
	return telemetry.SpanContext{Trace: telemetry.TraceID(tc.Trace), Span: telemetry.SpanID(tc.Span)}
}

// statusMsg is the occupancy-probe response (request carries a zero
// value of the same type).
type statusMsg struct {
	FreeSlots int
	Capacity  int
}

// Service errors.
var (
	ErrProtocol = errors.New("core: protocol violation")
)

// BundleExecutor is what a Service fronts: one Device, or a fleet
// gateway pooling many of them. ExecuteContext must be safe for
// concurrent sessions; FreeSlots/SlotCount feed the MsgStatus
// occupancy probe.
type BundleExecutor interface {
	ExecuteContext(ctx context.Context, bundle *types.Bundle) (*BundleResult, error)
	FreeSlots() int
	SlotCount() int
}

// Service exposes a BundleExecutor over the message protocol. One
// goroutine per connection; sessions are independent.
type Service struct {
	exec      BundleExecutor
	booted    *attest.BootedDevice
	sign      bool
	sessionID atomic.Uint64
	// issuer mints and redeems resumption tickets; nil only if STEK
	// generation failed, in which case cold handshakes still work and
	// every resume is rejected.
	issuer *session.TicketIssuer
	// admission gates cold handshakes; nil admits everything. Warm
	// resumes bypass it by design.
	admission *session.Admission
	// tm is always non-nil (nil instruments when disabled).
	tm *svcMetrics
	// reg is the telemetry registry (nil when disabled); the service
	// picks up distributed tracing from it via reg.Tracer().
	reg *telemetry.Registry
}

// NewService wraps a device, inheriting its telemetry registry.
func NewService(dev *Device) *Service {
	s := NewServiceFor(dev, dev.Booted(), dev.cfg.Features.Sign)
	s.SetTelemetry(dev.cfg.Telemetry)
	return s
}

// NewServiceFor wraps any executor with an attestation identity. The
// fleet gateway uses this: it terminates user sessions with one booted
// identity and fans bundles out to the pool behind it.
func NewServiceFor(exec BundleExecutor, booted *attest.BootedDevice, sign bool) *Service {
	//hardtape:faulterr-ok a failed STEK draw degrades to issuer==nil: cold handshakes work, every resume is rejected (fail-safe)
	issuer, _ := session.NewTicketIssuer(nil, 0)
	return &Service{exec: exec, booted: booted, sign: sign, issuer: issuer, tm: newSvcMetrics(nil)}
}

// SetTelemetry registers the service's series on reg (nil disables).
// Call before serving connections.
func (s *Service) SetTelemetry(reg *telemetry.Registry) {
	s.tm = newSvcMetrics(reg)
	s.reg = reg
}

// SetSessionPolicy replaces the ticket issuer (clock + lifetime in
// expiry epochs; zero lifetime keeps the default) and the cold-
// handshake admission gate. Call before serving connections. Replacing
// the issuer invalidates previously issued tickets — exactly what a
// STEK rotation does.
func (s *Service) SetSessionPolicy(clock session.Clock, lifetimeEpochs int, adm *session.Admission) error {
	issuer, err := session.NewTicketIssuer(clock, lifetimeEpochs)
	if err != nil {
		return err
	}
	s.issuer = issuer
	s.admission = adm
	return nil
}

// SessionIssuer exposes the ticket issuer (benchmarks mint resumable
// state directly; the gateway shares one issuer across listeners).
func (s *Service) SessionIssuer() *session.TicketIssuer { return s.issuer }

// SetAdmission installs a cold-handshake gate without rotating the
// ticket issuer. Call before serving connections.
func (s *Service) SetAdmission(adm *session.Admission) { s.admission = adm }

// ServeListener accepts and serves connections until the listener
// closes. It returns the first accept error (net.ErrClosed on normal
// shutdown).
func (s *Service) ServeListener(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			//hardtape:faulterr-ok a session failure ends that session only; the accept loop must survive it
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn runs one user session over a stream. The first message
// decides the path: MsgAttestRequest opens the full cold handshake
// (steps 2–10), MsgResumeRequest redeems a ticket and rekeys without
// touching asymmetric crypto.
func (s *Service) ServeConn(conn io.ReadWriter) error {
	s.tm.sessions.Inc()
	raw, err := channel.ReadMessage(conn)
	if err != nil {
		return err
	}
	if len(raw) >= channel.HeaderSize {
		if hdr, err := channel.ParseHeader(raw[:channel.HeaderSize]); err == nil && hdr.Type == channel.MsgResumeRequest {
			return s.serveResume(conn, raw)
		}
	}
	return s.serveCold(conn, raw)
}

// serveCold performs the full attest + DHKE handshake (steps 2–10) and
// mints the session's first resumption ticket.
func (s *Service) serveCold(conn io.ReadWriter, raw []byte) error {
	// Cold handshakes are the expensive path; the admission gate bounds
	// how many run at once so resumes and live bundles are not starved.
	asp := telemetry.StartSpan(s.tm.enabled)
	s.admission.Acquire()
	defer s.admission.Release()
	asp.Mark(s.tm.admissionWait)

	// --- Step 2: remote attestation + DHKE ---
	hsp := telemetry.StartSpan(s.tm.enabled)
	hdr, body, err := parsePlain(raw, channel.MsgAttestRequest)
	if err != nil {
		return err
	}
	_ = hdr
	var req attestRequestMsg
	if err := gobDecode(body, &req); err != nil {
		return err
	}

	report, complete, err := s.booted.Attest(req.Nonce)
	if err != nil {
		return err
	}
	sessionID := s.sessionID.Add(1)

	devSigKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return fmt.Errorf("core: session sig key: %w", err)
	}
	attest.RecordAsymOps(1) // per-session device signing key
	resp := attestReportMsg{
		Report:    *report,
		SessionID: sessionID,
		DevSigPub: elliptic.Marshal(elliptic.P256(), devSigKey.PublicKey.X, devSigKey.PublicKey.Y),
	}
	if err := writePlain(conn, channel.MsgAttestReport, sessionID, &resp); err != nil {
		return err
	}
	hsp.Mark(s.tm.attest)

	raw, err = channel.ReadMessage(conn)
	if err != nil {
		return err
	}
	_, body, err = parsePlain(raw, channel.MsgKeyExchange)
	if err != nil {
		return err
	}
	var kx keyExchangeMsg
	if err := gobDecode(body, &kx); err != nil {
		return err
	}
	sess, err := complete(kx.UserPub)
	if err != nil {
		return err
	}
	if err := channel.VerifyConfirmTag(sess.Key, sessionID, "user", kx.Confirm); err != nil {
		return err
	}
	secure, err := channel.NewSecureChannel(sess.Key, sessionID)
	if err != nil {
		return err
	}
	if s.sign {
		userPub, err := unmarshalPub(kx.UserSigPub)
		if err != nil {
			return err
		}
		secure.EnableSigning(devSigKey, userPub)
	}
	hsp.Mark(s.tm.dhke)
	s.tm.handshakesCold.Inc()

	// Mint the session's first resumption ticket: the PSK is derived
	// from the session key (the user derives the same one on its side),
	// bound to this device's identity and booted measurement.
	psk := session.ResumptionPSK(sess.Key, sessionID)
	session.ZeroKey(&sess.Key)
	if err := s.sendTicket(conn, secure, nil, psk, sessionID); err != nil {
		return err
	}

	return s.serveSession(conn, secure)
}

// sendTicket seals the rotated resumption ticket into the established
// channel. wmu (nil on a fresh handshake) serializes with concurrent
// mux replies. The PSK is consumed: sealed into the ticket and zeroed.
func (s *Service) sendTicket(conn io.ReadWriter, secure *channel.SecureChannel, wmu *sync.Mutex, psk [32]byte, sessionID uint64) error {
	defer session.ZeroKey(&psk)
	var out ticketIssueMsg
	if s.issuer != nil {
		st := &session.State{
			SessionID:   sessionID,
			PSK:         psk,
			Serial:      s.booted.Serial(),
			Measurement: s.booted.Measurement(),
		}
		wire, err := s.issuer.Issue(st)
		session.ZeroKey(&st.PSK)
		if err == nil {
			out.Ticket = wire
			out.ExpiryEpoch = st.ExpiryEpoch
			s.tm.ticketsIssued.Inc()
		}
		// On issue failure the message carries no ticket; the client
		// simply cannot resume — fail-safe, not fail-open.
	}
	if wmu != nil {
		wmu.Lock()
		defer wmu.Unlock()
	}
	sealed, err := secure.Seal(channel.MsgTicketIssue, gobEncode(&out))
	if err != nil {
		return err
	}
	//hardtape:locksafe-ok wmu exists to keep seal order == write order; the channel's sequence numbers demand it
	return channel.WriteMessage(conn, sealed)
}

// serveSession is the shared post-handshake loop for cold and resumed
// sessions: multiplexed exchanges (MsgMux) execute concurrently and
// reply out of order by request id, while the legacy one-at-a-time
// MsgBundle/MsgStatus forms stay supported inline. All Opens happen on
// this goroutine (the channel's receive sequence demands it); Seals
// are serialized by wmu.
func (s *Service) serveSession(conn io.ReadWriter, secure *channel.SecureChannel) error {
	var (
		wmu sync.Mutex
		wg  sync.WaitGroup
	)
	defer wg.Wait()
	writeSealed := func(t channel.MsgType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		sealed, err := secure.Seal(t, payload)
		if err != nil {
			return err
		}
		if err := channel.WriteMessage(conn, sealed); err != nil {
			return err
		}
		s.tm.bytesOut.Observe(float64(len(sealed)))
		return nil
	}
	for {
		raw, err := channel.ReadMessage(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		hdr, payload, err := secure.Open(raw)
		if err != nil {
			return err
		}
		switch hdr.Type {
		case channel.MsgMux:
			reqID, kind, tc, body, err := session.ParseMuxFrameTraced(payload)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			switch kind {
			case session.MuxStatus:
				out := statusMsg{FreeSlots: s.exec.FreeSlots(), Capacity: s.exec.SlotCount()}
				if err := writeSealed(channel.MsgMuxReply, session.EncodeMuxFrame(reqID, session.MuxOK, gobEncode(&out))); err != nil {
					return err
				}
			case session.MuxBundle:
				s.tm.bytesIn.Observe(float64(len(raw)))
				var bm bundleMsg
				if err := gobDecode(body, &bm); err != nil {
					if werr := writeSealed(channel.MsgMuxReply, session.EncodeMuxFrame(reqID, session.MuxErr, []byte(err.Error()))); werr != nil {
						return werr
					}
					continue
				}
				// A traced frame parents this process's spans under the
				// caller's; the finished records travel back in the reply.
				// An untraced frame roots a NEW trace here, kept by the
				// local flight recorder — so a -trace server is useful even
				// when its clients don't propagate contexts. The two cases
				// compose: a locally rooted trace assembles into the local
				// ring when its root ends, and TakeSpans then finds nothing
				// left to ship.
				var sp *telemetry.TraceSpan
				if tr := s.reg.Tracer(); tr != nil {
					sp = tr.StartSpan("service.bundle", spanCtxFromWire(tc))
				}
				// Interleaving is the point of the mux: the bundle runs on
				// its own goroutine while this loop keeps reading, so many
				// bundles share the connection and the executor's slots.
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := s.executeBundle(&bm, sp)
					//hardtape:faulterr-ok a write race with connection teardown fails the conn, which the read loop reports
					_ = writeSealed(channel.MsgMuxReply, session.EncodeMuxFrame(reqID, session.MuxOK, gobEncode(&out)))
				}()
			default:
				return fmt.Errorf("%w: mux kind %d", ErrProtocol, kind)
			}
		case channel.MsgStatus:
			out := statusMsg{FreeSlots: s.exec.FreeSlots(), Capacity: s.exec.SlotCount()}
			if err := writeSealed(channel.MsgStatus, gobEncode(&out)); err != nil {
				return err
			}
		case channel.MsgBundle:
			s.tm.bytesIn.Observe(float64(len(raw)))
			var bm bundleMsg
			if err := gobDecode(payload, &bm); err != nil {
				return err
			}
			out := s.executeBundle(&bm, nil)
			if err := writeSealed(channel.MsgTrace, gobEncode(&out)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: expected bundle, got %d", ErrProtocol, hdr.Type)
		}
	}
}

// executeBundle runs one decoded bundle and shapes the trace reply.
// sp, when non-nil, is the request's service span: the executor's
// context carries its identity so device/ORAM spans parent under it,
// and the reply collects every finished local span of the trace.
func (s *Service) executeBundle(bm *bundleMsg, sp *telemetry.TraceSpan) traceMsg {
	bsp := telemetry.StartSpan(s.tm.enabled)
	ctx := context.Background()
	if sp != nil {
		ctx = telemetry.ContextWithSpan(ctx, sp.Context())
	}
	res, err := s.exec.ExecuteContext(ctx, &bm.Bundle)
	bsp.Mark(s.tm.execute)
	var out traceMsg
	if err != nil {
		out.AbortReason = err.Error()
		s.tm.bundlesErr.Inc()
	} else {
		out.Trace = *res.Trace
		out.VirtualTime = res.VirtualTime
		out.GasUsed = res.GasUsed
		if res.Aborted != nil {
			out.AbortReason = res.Aborted.Error()
		}
		s.tm.bundlesOK.Inc()
	}
	if sp != nil {
		sp.SetError(err)
		sp.End()
		out.TraceSpans = s.reg.FlightRecorder().TakeSpans(sp.TraceID())
	}
	return out
}

// ReportVerifier is what Dial needs from the user side of attestation:
// *attest.Verifier satisfies it, and so does session.CachingVerifier,
// which skips the manufacturer-chain ECDSA verify on a cache hit.
type ReportVerifier interface {
	NewNonce() ([32]byte, error)
	Verify(report *attest.Report, nonce [32]byte) (*attest.Session, []byte, error)
}

// Client is the user side of the pre-execution service: it attests the
// device (or resumes a prior session), establishes the secure channel,
// and submits bundles over a multiplexed connection.
type Client struct {
	conn    io.ReadWriter
	mux     *session.Mux
	session uint64
	// warm reports whether this client skipped asymmetric crypto
	// (ticket resumption) rather than attesting from scratch.
	warm bool
	// tracer, when set, roots a distributed trace per PreExecute (or
	// continues the caller's via PreExecuteContext) and adopts the
	// remote spans the service returns.
	tracer *telemetry.Tracer

	tmu    sync.Mutex
	ticket *session.ClientTicket
}

// SetTracer turns on distributed tracing for this client's requests
// (nil disables). Usually reg.Tracer() for the process registry.
func (c *Client) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

// readWriteCloser adapts the io.ReadWriter handshake streams (net.Pipe
// halves in tests, net.Conn in production) to the mux's closer needs.
type readWriteCloser struct{ io.ReadWriter }

func (rw readWriteCloser) Close() error {
	if c, ok := rw.ReadWriter.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Dial attests a service over an established stream. The verifier must
// pin the manufacturer key and the expected Hypervisor measurement;
// sign toggles the -ES signature layer and must match the service.
func Dial(conn io.ReadWriter, verifier ReportVerifier, sign bool) (*Client, error) {
	nonce, err := verifier.NewNonce()
	if err != nil {
		return nil, err
	}
	if err := writePlain(conn, channel.MsgAttestRequest, 0, &attestRequestMsg{Nonce: nonce}); err != nil {
		return nil, err
	}
	raw, err := channel.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	_, body, err := parsePlain(raw, channel.MsgAttestReport)
	if err != nil {
		return nil, err
	}
	var rep attestReportMsg
	if err := gobDecode(body, &rep); err != nil {
		return nil, err
	}
	sess, userPub, err := verifier.Verify(&rep.Report, nonce)
	if err != nil {
		return nil, fmt.Errorf("core: attestation failed: %w", err)
	}

	userSigKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	attest.RecordAsymOps(1) // per-session user signing key
	confirm := channel.ConfirmTag(sess.Key, rep.SessionID, "user")
	kx := keyExchangeMsg{
		SessionID:  rep.SessionID,
		UserPub:    userPub,
		UserSigPub: elliptic.Marshal(elliptic.P256(), userSigKey.PublicKey.X, userSigKey.PublicKey.Y),
		Confirm:    confirm[:],
	}
	if err := writePlain(conn, channel.MsgKeyExchange, rep.SessionID, &kx); err != nil {
		return nil, err
	}

	secure, err := channel.NewSecureChannel(sess.Key, rep.SessionID)
	if err != nil {
		return nil, err
	}
	if sign {
		devPub, err := unmarshalPub(rep.DevSigPub)
		if err != nil {
			return nil, err
		}
		secure.EnableSigning(userSigKey, devPub)
	}

	// Derive the resumption PSK from the same session key the service
	// used, then collect the sealed ticket it minted.
	psk := session.ResumptionPSK(sess.Key, rep.SessionID)
	session.ZeroKey(&sess.Key)
	ticket, err := readTicket(conn, secure, psk, rep.SessionID,
		rep.Report.Cert.Serial, rep.Report.Measurement)
	if err != nil {
		return nil, err
	}

	c := &Client{conn: conn, session: rep.SessionID, ticket: ticket}
	c.mux = session.NewMux(readWriteCloser{conn}, secure)
	return c, nil
}

// readTicket consumes the MsgTicketIssue the service sends at the end
// of every handshake, pairing the opaque wire ticket with the locally
// derived PSK. A service that could not mint (nil ticket) leaves the
// client un-resumable but otherwise functional; the PSK is zeroed.
func readTicket(conn io.ReadWriter, secure *channel.SecureChannel, psk [32]byte, sessionID uint64, serial string, measurement [32]byte) (*session.ClientTicket, error) {
	raw, err := channel.ReadMessage(conn)
	if err != nil {
		session.ZeroKey(&psk)
		return nil, err
	}
	hdr, payload, err := secure.Open(raw)
	if err != nil {
		session.ZeroKey(&psk)
		return nil, err
	}
	if hdr.Type != channel.MsgTicketIssue {
		session.ZeroKey(&psk)
		return nil, fmt.Errorf("%w: expected ticket, got %d", ErrProtocol, hdr.Type)
	}
	var tim ticketIssueMsg
	if err := gobDecode(payload, &tim); err != nil {
		session.ZeroKey(&psk)
		return nil, err
	}
	if len(tim.Ticket) == 0 {
		session.ZeroKey(&psk)
		return nil, nil
	}
	t := &session.ClientTicket{
		Opaque:      tim.Ticket,
		PSK:         psk,
		SessionID:   sessionID,
		Serial:      serial,
		Measurement: measurement,
		ExpiryEpoch: tim.ExpiryEpoch,
	}
	session.ZeroKey(&psk)
	return t, nil
}

// Ticket detaches the client's current resumption ticket (single-use;
// nil if the service issued none or it was already taken). The caller
// owns the ticket's PSK from here — Resume consumes and zeroes it.
func (c *Client) Ticket() *session.ClientTicket {
	c.tmu.Lock()
	defer c.tmu.Unlock()
	t := c.ticket
	c.ticket = nil
	return t
}

// Warm reports whether this session was resumed from a ticket rather
// than attested from scratch.
func (c *Client) Warm() bool { return c.warm }

// SessionID returns the wire session id.
func (c *Client) SessionID() uint64 { return c.session }

// Close tears down the multiplexed session.
func (c *Client) Close() error { return c.mux.Close() }

// PreExecute submits a bundle and waits for its trace. Safe for
// concurrent use: bundles interleave on the multiplexed connection.
func (c *Client) PreExecute(bundle *types.Bundle) (*TraceResult, error) {
	return c.PreExecuteContext(context.Background(), bundle)
}

// PreExecuteContext is PreExecute carrying the caller's context: when
// tracing is on, the submission span parents under any span context
// in ctx (a gateway forwarding a traced request) or roots a fresh
// trace, propagates over the wire, and the remote spans returned in
// the reply are adopted into the local flight recorder.
func (c *Client) PreExecuteContext(ctx context.Context, bundle *types.Bundle) (*TraceResult, error) {
	var (
		sp *telemetry.TraceSpan
		tc channel.TraceContext
	)
	if c.tracer != nil {
		sp = c.tracer.StartSpan("client.preexecute", telemetry.SpanFromContext(ctx))
		sp.AddInt("txs", int64(len(bundle.Txs)))
		tc = wireTraceContext(sp.Context())
	}
	body, err := c.mux.RoundTripTraced(session.MuxBundle, tc, gobEncode(&bundleMsg{Bundle: *bundle}))
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	var tm traceMsg
	if err := gobDecode(body, &tm); err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	if sp != nil {
		c.tracer.Recorder().Adopt(tm.TraceSpans)
		sp.End()
	}
	return &TraceResult{
		Trace:       &tm.Trace,
		VirtualTime: tm.VirtualTime,
		AbortReason: tm.AbortReason,
		GasUsed:     tm.GasUsed,
	}, nil
}

// TraceResult is the client-side view of a pre-execution response.
type TraceResult struct {
	Trace       *tracer.BundleTrace
	VirtualTime time.Duration
	AbortReason string
	GasUsed     uint64
}

// ServiceStatus is the client-side view of an occupancy probe.
type ServiceStatus struct {
	// FreeSlots is the number of idle HEVM cores behind the service.
	FreeSlots int
	// Capacity is the total core count.
	Capacity int
}

// Status probes the service's live occupancy over the established
// session. Schedulers (the fleet gateway) use it both as a health
// check and to weight dispatch by free capacity.
func (c *Client) Status() (*ServiceStatus, error) {
	body, err := c.mux.RoundTrip(session.MuxStatus, gobEncode(&statusMsg{}))
	if err != nil {
		return nil, err
	}
	var sm statusMsg
	if err := gobDecode(body, &sm); err != nil {
		return nil, err
	}
	return &ServiceStatus{FreeSlots: sm.FreeSlots, Capacity: sm.Capacity}, nil
}

// --- plumbing ---

// writePlain frames an unencrypted protocol message (pre-session).
func writePlain(w io.Writer, t channel.MsgType, session uint64, v any) error {
	payload := gobEncode(v)
	h := channel.Header{Type: t, Session: session, Length: uint32(len(payload))}
	hdr := h.Marshal()
	msg := append(hdr[:], payload...)
	return channel.WriteMessage(w, msg)
}

// parsePlain validates an unencrypted protocol message.
func parsePlain(raw []byte, want channel.MsgType) (*channel.Header, []byte, error) {
	if len(raw) < channel.HeaderSize {
		return nil, nil, channel.ErrBadHeader
	}
	hdr, err := channel.ParseHeader(raw[:channel.HeaderSize])
	if err != nil {
		return nil, nil, err
	}
	if hdr.Type != want {
		return nil, nil, fmt.Errorf("%w: expected type %d, got %d", ErrProtocol, want, hdr.Type)
	}
	body := raw[channel.HeaderSize:]
	if uint32(len(body)) != hdr.Length {
		return nil, nil, channel.ErrBadHeader
	}
	return hdr, body, nil
}

func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: gob encode: %v", err)) // programming error
	}
	return buf.Bytes()
}

func gobDecode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("core: decode: %w", err)
	}
	return nil
}

func unmarshalPub(raw []byte) (*ecdsa.PublicKey, error) {
	x, y := elliptic.Unmarshal(elliptic.P256(), raw)
	if x == nil {
		return nil, fmt.Errorf("%w: bad public key", ErrProtocol)
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}

// ImageMeasurement returns the hash users pin for attestation.
func ImageMeasurement() [32]byte {
	return sha256.Sum256(HypervisorImage)
}
