package core

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/channel"
	"hardtape/internal/telemetry"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
)

// Wire payloads (gob-encoded inside channel messages).

// attestRequestMsg opens a session (plaintext: no keys exist yet).
type attestRequestMsg struct {
	Nonce [32]byte
}

// attestReportMsg carries the device's report plus the session id the
// Hypervisor allocated.
type attestReportMsg struct {
	Report    attest.Report
	SessionID uint64
	// DevSigPub is the Hypervisor's per-session ECDSA public key
	// (uncompressed), used when signatures are enabled.
	DevSigPub []byte
}

// keyExchangeMsg completes DHKE. The exchange itself is plaintext, so
// Confirm carries the user's key-confirmation tag: an HMAC under the
// derived session key that the Hypervisor verifies before opening the
// bundle loop. A tampered exchange is rejected here, explicitly,
// instead of surfacing later as an unattributable AEAD failure.
type keyExchangeMsg struct {
	SessionID  uint64
	UserPub    []byte
	UserSigPub []byte
	Confirm    []byte
}

// bundleMsg is the encrypted bundle submission.
type bundleMsg struct {
	Bundle types.Bundle
}

// traceMsg is the encrypted response.
type traceMsg struct {
	Trace       tracer.BundleTrace
	VirtualTime time.Duration
	AbortReason string
	GasUsed     uint64
}

// statusMsg is the occupancy-probe response (request carries a zero
// value of the same type).
type statusMsg struct {
	FreeSlots int
	Capacity  int
}

// Service errors.
var (
	ErrProtocol = errors.New("core: protocol violation")
)

// BundleExecutor is what a Service fronts: one Device, or a fleet
// gateway pooling many of them. ExecuteContext must be safe for
// concurrent sessions; FreeSlots/SlotCount feed the MsgStatus
// occupancy probe.
type BundleExecutor interface {
	ExecuteContext(ctx context.Context, bundle *types.Bundle) (*BundleResult, error)
	FreeSlots() int
	SlotCount() int
}

// Service exposes a BundleExecutor over the message protocol. One
// goroutine per connection; sessions are independent.
type Service struct {
	exec      BundleExecutor
	booted    *attest.BootedDevice
	sign      bool
	sessionID atomic.Uint64
	// tm is always non-nil (nil instruments when disabled).
	tm *svcMetrics
}

// NewService wraps a device, inheriting its telemetry registry.
func NewService(dev *Device) *Service {
	s := NewServiceFor(dev, dev.Booted(), dev.cfg.Features.Sign)
	s.SetTelemetry(dev.cfg.Telemetry)
	return s
}

// NewServiceFor wraps any executor with an attestation identity. The
// fleet gateway uses this: it terminates user sessions with one booted
// identity and fans bundles out to the pool behind it.
func NewServiceFor(exec BundleExecutor, booted *attest.BootedDevice, sign bool) *Service {
	return &Service{exec: exec, booted: booted, sign: sign, tm: newSvcMetrics(nil)}
}

// SetTelemetry registers the service's series on reg (nil disables).
// Call before serving connections.
func (s *Service) SetTelemetry(reg *telemetry.Registry) {
	s.tm = newSvcMetrics(reg)
}

// ServeListener accepts and serves connections until the listener
// closes. It returns the first accept error (net.ErrClosed on normal
// shutdown).
func (s *Service) ServeListener(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			//hardtape:faulterr-ok a session failure ends that session only; the accept loop must survive it
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn runs one user session over a stream (steps 2–10).
func (s *Service) ServeConn(conn io.ReadWriter) error {
	s.tm.sessions.Inc()
	// --- Step 2: remote attestation + DHKE ---
	raw, err := channel.ReadMessage(conn)
	if err != nil {
		return err
	}
	hsp := telemetry.StartSpan(s.tm.enabled)
	hdr, body, err := parsePlain(raw, channel.MsgAttestRequest)
	if err != nil {
		return err
	}
	_ = hdr
	var req attestRequestMsg
	if err := gobDecode(body, &req); err != nil {
		return err
	}

	report, complete, err := s.booted.Attest(req.Nonce)
	if err != nil {
		return err
	}
	sessionID := s.sessionID.Add(1)

	devSigKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return fmt.Errorf("core: session sig key: %w", err)
	}
	resp := attestReportMsg{
		Report:    *report,
		SessionID: sessionID,
		DevSigPub: elliptic.Marshal(elliptic.P256(), devSigKey.PublicKey.X, devSigKey.PublicKey.Y),
	}
	if err := writePlain(conn, channel.MsgAttestReport, sessionID, &resp); err != nil {
		return err
	}
	hsp.Mark(s.tm.attest)

	raw, err = channel.ReadMessage(conn)
	if err != nil {
		return err
	}
	_, body, err = parsePlain(raw, channel.MsgKeyExchange)
	if err != nil {
		return err
	}
	var kx keyExchangeMsg
	if err := gobDecode(body, &kx); err != nil {
		return err
	}
	session, err := complete(kx.UserPub)
	if err != nil {
		return err
	}
	if err := channel.VerifyConfirmTag(session.Key, sessionID, "user", kx.Confirm); err != nil {
		return err
	}
	secure, err := channel.NewSecureChannel(session.Key, sessionID)
	if err != nil {
		return err
	}
	if s.sign {
		userPub, err := unmarshalPub(kx.UserSigPub)
		if err != nil {
			return err
		}
		secure.EnableSigning(devSigKey, userPub)
	}
	hsp.Mark(s.tm.dhke)
	s.tm.handshakes.Inc()

	// --- Steps 3–10: bundle loop ---
	for {
		raw, err := channel.ReadMessage(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		hdr, payload, err := secure.Open(raw)
		if err != nil {
			return err
		}
		switch hdr.Type {
		case channel.MsgStatus:
			out := statusMsg{FreeSlots: s.exec.FreeSlots(), Capacity: s.exec.SlotCount()}
			sealed, err := secure.Seal(channel.MsgStatus, gobEncode(&out))
			if err != nil {
				return err
			}
			if err := channel.WriteMessage(conn, sealed); err != nil {
				return err
			}
		case channel.MsgBundle:
			bsp := telemetry.StartSpan(s.tm.enabled)
			s.tm.bytesIn.Observe(float64(len(raw)))
			var bm bundleMsg
			if err := gobDecode(payload, &bm); err != nil {
				return err
			}
			bsp.Mark(s.tm.decode)
			res, err := s.exec.ExecuteContext(context.Background(), &bm.Bundle)
			bsp.Mark(s.tm.execute)
			var out traceMsg
			if err != nil {
				out.AbortReason = err.Error()
				s.tm.bundlesErr.Inc()
			} else {
				out.Trace = *res.Trace
				out.VirtualTime = res.VirtualTime
				out.GasUsed = res.GasUsed
				if res.Aborted != nil {
					out.AbortReason = res.Aborted.Error()
				}
				s.tm.bundlesOK.Inc()
			}
			sealed, err := secure.Seal(channel.MsgTrace, gobEncode(&out))
			if err != nil {
				return err
			}
			if err := channel.WriteMessage(conn, sealed); err != nil {
				return err
			}
			bsp.Mark(s.tm.seal)
			s.tm.bytesOut.Observe(float64(len(sealed)))
		default:
			return fmt.Errorf("%w: expected bundle, got %d", ErrProtocol, hdr.Type)
		}
	}
}

// Client is the user side of the pre-execution service: it attests the
// device, establishes the secure channel, and submits bundles.
type Client struct {
	conn    io.ReadWriter
	secure  *channel.SecureChannel
	session uint64
}

// Dial attests a service over an established stream. The verifier must
// pin the manufacturer key and the expected Hypervisor measurement;
// sign toggles the -ES signature layer and must match the service.
func Dial(conn io.ReadWriter, verifier *attest.Verifier, sign bool) (*Client, error) {
	nonce, err := verifier.NewNonce()
	if err != nil {
		return nil, err
	}
	if err := writePlain(conn, channel.MsgAttestRequest, 0, &attestRequestMsg{Nonce: nonce}); err != nil {
		return nil, err
	}
	raw, err := channel.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	_, body, err := parsePlain(raw, channel.MsgAttestReport)
	if err != nil {
		return nil, err
	}
	var rep attestReportMsg
	if err := gobDecode(body, &rep); err != nil {
		return nil, err
	}
	session, userPub, err := verifier.Verify(&rep.Report, nonce)
	if err != nil {
		return nil, fmt.Errorf("core: attestation failed: %w", err)
	}

	userSigKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	confirm := channel.ConfirmTag(session.Key, rep.SessionID, "user")
	kx := keyExchangeMsg{
		SessionID:  rep.SessionID,
		UserPub:    userPub,
		UserSigPub: elliptic.Marshal(elliptic.P256(), userSigKey.PublicKey.X, userSigKey.PublicKey.Y),
		Confirm:    confirm[:],
	}
	if err := writePlain(conn, channel.MsgKeyExchange, rep.SessionID, &kx); err != nil {
		return nil, err
	}

	secure, err := channel.NewSecureChannel(session.Key, rep.SessionID)
	if err != nil {
		return nil, err
	}
	if sign {
		devPub, err := unmarshalPub(rep.DevSigPub)
		if err != nil {
			return nil, err
		}
		secure.EnableSigning(userSigKey, devPub)
	}
	return &Client{conn: conn, secure: secure, session: rep.SessionID}, nil
}

// PreExecute submits a bundle and waits for its trace.
func (c *Client) PreExecute(bundle *types.Bundle) (*TraceResult, error) {
	sealed, err := c.secure.Seal(channel.MsgBundle, gobEncode(&bundleMsg{Bundle: *bundle}))
	if err != nil {
		return nil, err
	}
	if err := channel.WriteMessage(c.conn, sealed); err != nil {
		return nil, err
	}
	raw, err := channel.ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	hdr, payload, err := c.secure.Open(raw)
	if err != nil {
		return nil, err
	}
	if hdr.Type != channel.MsgTrace {
		return nil, fmt.Errorf("%w: expected trace, got %d", ErrProtocol, hdr.Type)
	}
	var tm traceMsg
	if err := gobDecode(payload, &tm); err != nil {
		return nil, err
	}
	return &TraceResult{
		Trace:       &tm.Trace,
		VirtualTime: tm.VirtualTime,
		AbortReason: tm.AbortReason,
		GasUsed:     tm.GasUsed,
	}, nil
}

// TraceResult is the client-side view of a pre-execution response.
type TraceResult struct {
	Trace       *tracer.BundleTrace
	VirtualTime time.Duration
	AbortReason string
	GasUsed     uint64
}

// ServiceStatus is the client-side view of an occupancy probe.
type ServiceStatus struct {
	// FreeSlots is the number of idle HEVM cores behind the service.
	FreeSlots int
	// Capacity is the total core count.
	Capacity int
}

// Status probes the service's live occupancy over the established
// session. Schedulers (the fleet gateway) use it both as a health
// check and to weight dispatch by free capacity.
func (c *Client) Status() (*ServiceStatus, error) {
	sealed, err := c.secure.Seal(channel.MsgStatus, gobEncode(&statusMsg{}))
	if err != nil {
		return nil, err
	}
	if err := channel.WriteMessage(c.conn, sealed); err != nil {
		return nil, err
	}
	raw, err := channel.ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	hdr, payload, err := c.secure.Open(raw)
	if err != nil {
		return nil, err
	}
	if hdr.Type != channel.MsgStatus {
		return nil, fmt.Errorf("%w: expected status, got %d", ErrProtocol, hdr.Type)
	}
	var sm statusMsg
	if err := gobDecode(payload, &sm); err != nil {
		return nil, err
	}
	return &ServiceStatus{FreeSlots: sm.FreeSlots, Capacity: sm.Capacity}, nil
}

// --- plumbing ---

// writePlain frames an unencrypted protocol message (pre-session).
func writePlain(w io.Writer, t channel.MsgType, session uint64, v any) error {
	payload := gobEncode(v)
	h := channel.Header{Type: t, Session: session, Length: uint32(len(payload))}
	hdr := h.Marshal()
	msg := append(hdr[:], payload...)
	return channel.WriteMessage(w, msg)
}

// parsePlain validates an unencrypted protocol message.
func parsePlain(raw []byte, want channel.MsgType) (*channel.Header, []byte, error) {
	if len(raw) < channel.HeaderSize {
		return nil, nil, channel.ErrBadHeader
	}
	hdr, err := channel.ParseHeader(raw[:channel.HeaderSize])
	if err != nil {
		return nil, nil, err
	}
	if hdr.Type != want {
		return nil, nil, fmt.Errorf("%w: expected type %d, got %d", ErrProtocol, want, hdr.Type)
	}
	body := raw[channel.HeaderSize:]
	if uint32(len(body)) != hdr.Length {
		return nil, nil, channel.ErrBadHeader
	}
	return hdr, body, nil
}

func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: gob encode: %v", err)) // programming error
	}
	return buf.Bytes()
}

func gobDecode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("core: decode: %w", err)
	}
	return nil
}

func unmarshalPub(raw []byte) (*ecdsa.PublicKey, error) {
	x, y := elliptic.Unmarshal(elliptic.P256(), raw)
	if x == nil {
		return nil, fmt.Errorf("%w: bad public key", ErrProtocol)
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}

// ImageMeasurement returns the hash users pin for attestation.
func ImageMeasurement() [32]byte {
	return sha256.Sum256(HypervisorImage)
}
