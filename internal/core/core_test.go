package core

import (
	"errors"
	"sync"
	"testing"

	"hardtape/internal/baseline"
	"hardtape/internal/hevm"
	"hardtape/internal/node"
	"hardtape/internal/oram"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

// rig is a fully wired test environment.
type rig struct {
	world  *workload.World
	chain  *node.Node
	device *Device
}

func buildRig(t testing.TB, features Features) *rig {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 12
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Features = features
	cfg.HEVMs = 2
	dev, err := NewDevice(cfg, nil, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	return &rig{world: w, chain: chain, device: dev}
}

// transferBundle builds a single ERC-20 transfer bundle. Bundles are
// temporary (nothing persists), so each bundle uses a distinct sender
// to keep the canonical nonce (0) valid.
func (r *rig) transferBundle(t testing.TB, amount uint64) *types.Bundle {
	t.Helper()
	return r.transferBundleFrom(t, int(amount)%len(r.world.EOAs), amount)
}

func (r *rig) transferBundleFrom(t testing.TB, sender int, amount uint64) *types.Bundle {
	t.Helper()
	token := r.world.Tokens[0]
	from := r.world.EOAs[sender%len(r.world.EOAs)]
	tx, err := r.world.SignedTxAt(from, 0, &token, 0,
		workload.CalldataTransfer(r.world.EOAs[1], amount), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	return &types.Bundle{StateBlock: 0, Txs: []*types.Transaction{tx}}
}

func TestExecuteTransferFull(t *testing.T) {
	r := buildRig(t, ConfigFull)
	res, err := r.device.Execute(r.transferBundle(t, 250))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil {
		t.Fatalf("aborted: %v", res.Aborted)
	}
	if len(res.Trace.Txs) != 1 {
		t.Fatalf("trace txs = %d", len(res.Trace.Txs))
	}
	tx := res.Trace.Txs[0]
	if tx.Reverted || tx.Failed {
		t.Fatalf("transfer failed: %+v", tx)
	}
	if got := new(uint256.Int).SetBytes(tx.ReturnData); !got.Eq(uint256.NewInt(1)) {
		t.Fatalf("return = %s", got)
	}
	if res.VirtualTime <= 0 {
		t.Fatal("no virtual time charged")
	}
	if res.ORAMQueries == 0 {
		t.Fatal("-full must query the ORAM")
	}
	if res.HEVMStats.Steps == 0 {
		t.Fatal("machine saw no steps")
	}
}

func TestTraceMatchesGroundTruth(t *testing.T) {
	// §VI-B: HarDTAPE's trace must equal the reference executor's.
	r := buildRig(t, ConfigFull)
	bundle := r.transferBundle(t, 123)

	res, err := r.device.Execute(bundle)
	if err != nil {
		t.Fatal(err)
	}
	// Reference run with the same (already signed) txs; fresh world
	// with identical state.
	g := baseline.NewGeth(r.chain.State(), workload.NewBlockContext(&r.chain.Head().Header))
	ref, err := g.ExecuteBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bundle.Txs {
		diffs := tracer.Diff(res.Trace.Txs[i], ref.Trace.Txs[i])
		if len(diffs) != 0 {
			t.Fatalf("tx %d diverges from ground truth: %v", i, diffs)
		}
	}
}

func TestAllConfigsAgreeOnBehaviour(t *testing.T) {
	configs := []Features{ConfigRaw, ConfigE, ConfigES, ConfigESO, ConfigFull}
	var refGas uint64
	for i, feat := range configs {
		r := buildRig(t, feat)
		res, err := r.device.Execute(r.transferBundle(t, 42))
		if err != nil {
			t.Fatalf("%s: %v", feat.Name(), err)
		}
		if res.Aborted != nil {
			t.Fatalf("%s aborted: %v", feat.Name(), res.Aborted)
		}
		if i == 0 {
			refGas = res.GasUsed
		} else if res.GasUsed != refGas {
			t.Fatalf("%s gas %d != raw gas %d", feat.Name(), res.GasUsed, refGas)
		}
	}
}

func TestFeatureCostOrdering(t *testing.T) {
	// Fig. 4's shape: -raw < -E < -ES < -ESO ≤ -full in end-to-end time
	// (signature and ORAM dominate).
	times := map[string]int64{}
	for _, feat := range []Features{ConfigRaw, ConfigE, ConfigES, ConfigESO, ConfigFull} {
		r := buildRig(t, feat)
		// Use a DEX swap: it touches code + storage of two contracts.
		dex := r.world.DEXes[0]
		tx, err := r.world.SignedTxAt(r.world.EOAs[0], 0, &dex, 0, workload.CalldataSwap(1000), 400_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.device.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
		if err != nil {
			t.Fatal(err)
		}
		times[feat.Name()] = int64(res.VirtualTime)
	}
	if !(times["-raw"] < times["-E"] && times["-E"] < times["-ES"] &&
		times["-ES"] < times["-ESO"] && times["-ESO"] <= times["-full"]) {
		t.Fatalf("cost ordering broken: %v", times)
	}
	// Signature should dominate encryption (paper: 80 ms vs 2.9 ms).
	if times["-ES"]-times["-E"] < 10*(times["-E"]-times["-raw"]) {
		t.Fatalf("ECDSA step should dominate encryption: %v", times)
	}
}

func TestMemoryOverflowAbortsBundle(t *testing.T) {
	r := buildRig(t, ConfigRaw)
	hog := r.world.MemoryHog
	tx, err := r.world.SignedTxAt(r.world.EOAs[0], 0, &hog, 0,
		workload.CalldataUint(600_000), 25_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.device.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	var moe *hevm.MemoryOverflowError
	if !errors.As(res.Aborted, &moe) {
		t.Fatalf("expected Memory Overflow Error, got %v", res.Aborted)
	}
	// The device stays usable: a normal bundle still runs (A2 — other
	// sessions unaffected).
	res2, err := r.device.Execute(r.transferBundle(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Aborted != nil || res2.Trace.Txs[0].Failed {
		t.Fatalf("device poisoned after overflow: %+v", res2)
	}
}

func TestBundleStateIsTemporary(t *testing.T) {
	// Step 10: world-state modifications are never persisted.
	r := buildRig(t, ConfigFull)
	if _, err := r.device.Execute(r.transferBundle(t, 999)); err != nil {
		t.Fatal(err)
	}
	// A second bundle reading the balance must see the ORIGINAL value.
	token := r.world.Tokens[0]
	tx, err := r.world.SignedTxAt(r.world.EOAs[2], 0, &token, 0,
		workload.CalldataBalanceOf(r.world.EOAs[1]), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.device.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	got := new(uint256.Int).SetBytes(res.Trace.Txs[0].ReturnData)
	if !got.Eq(uint256.NewInt(1 << 40)) {
		t.Fatalf("bundle write leaked into persistent state: balance = %s", got)
	}
}

func TestSlotIsolationAndReset(t *testing.T) {
	r := buildRig(t, ConfigFull)
	res1, err := r.device.Execute(r.transferBundle(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.device.Execute(r.transferBundle(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Counters must not accumulate across bundles (cleared state).
	if res2.ORAMQueries > 2*res1.ORAMQueries+16 {
		t.Fatalf("slot state leaked across bundles: %d then %d queries",
			res1.ORAMQueries, res2.ORAMQueries)
	}
	if res2.HEVMStats.Steps == 0 || res2.HEVMStats.Steps > 2*res1.HEVMStats.Steps {
		t.Fatalf("machine steps leaked: %d then %d", res1.HEVMStats.Steps, res2.HEVMStats.Steps)
	}
}

func TestConcurrentBundlesQueueForSlots(t *testing.T) {
	r := buildRig(t, ConfigRaw) // no shared ORAM → true slot parallelism
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]*BundleResult, n)
	bundles := make([]*types.Bundle, n)
	for i := 0; i < n; i++ {
		bundles[i] = r.transferBundle(t, uint64(i+1))
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.device.Execute(bundles[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("bundle %d: %v", i, errs[i])
		}
		if results[i].Aborted != nil || len(results[i].Trace.Txs) != 1 {
			t.Fatalf("bundle %d bad result", i)
		}
	}
}

func TestORAMObserverSeesUniformishTraffic(t *testing.T) {
	r := buildRig(t, ConfigFull)
	var leaves []uint64
	r.device.ORAMServer().SetObserver(func(ev oram.AccessEvent) {
		if !ev.Write {
			leaves = append(leaves, ev.Leaf)
		}
	})
	for i := 0; i < 5; i++ {
		if _, err := r.device.Execute(r.transferBundle(t, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if len(leaves) == 0 {
		t.Fatal("no ORAM traffic observed")
	}
	// At minimum, the observed leaves must not be constant.
	first := leaves[0]
	varied := false
	for _, l := range leaves[1:] {
		if l != first {
			varied = true
			break
		}
	}
	if !varied && len(leaves) > 4 {
		t.Fatal("ORAM leaf sequence constant — pattern leaks")
	}
}

func TestPrefetcherRunsInFullConfig(t *testing.T) {
	r := buildRig(t, ConfigFull)
	// A DEX swap touches a contract with multi-page code (tokens are
	// padded per Table I's code-size distribution) and issues multiple
	// storage queries to drive the interval timer.
	dex := r.world.DEXes[0]
	tx, err := r.world.SignedTxAt(r.world.EOAs[0], 0, &dex, 0, workload.CalldataSwap(500), 400_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.device.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil {
		t.Fatal(res.Aborted)
	}
	// Code of both contracts flowed through the ORAM: queries must
	// exceed the storage accesses alone.
	if res.ORAMQueries < 4 {
		t.Fatalf("too few ORAM queries for a cross-contract call: %d", res.ORAMQueries)
	}
}

func TestEmptyAndUnbooted(t *testing.T) {
	r := buildRig(t, ConfigRaw)
	if _, err := r.device.Execute(&types.Bundle{}); !errors.Is(err, ErrBundleEmpty) {
		t.Fatalf("empty bundle: %v", err)
	}
}

func TestDeviceRequiresHEVMs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HEVMs = 0
	if _, err := NewDevice(cfg, nil, nil); err == nil {
		t.Fatal("0-HEVM device accepted")
	}
}
