package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	"hardtape/internal/attest"
	"hardtape/internal/node"
	"hardtape/internal/telemetry"
	"hardtape/internal/workload"
)

// buildTracedServiceRig is buildServiceRig with tracing on at the
// device side (its own registry, standing in for the device process)
// and the parallel scheduler + sharded ORAM enabled so traced bundles
// cover every span family.
func buildTracedServiceRig(t testing.TB) (*serviceRig, *telemetry.Registry) {
	t.Helper()
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 8
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	devReg := telemetry.NewRegistry()
	devReg.EnableTracing("device", 0)
	t.Cleanup(devReg.FlightRecorder().Close)
	cfg := DefaultConfig()
	cfg.Features = ConfigFull
	cfg.HEVMs = 2
	cfg.Lanes = 2
	cfg.ORAMShards = 2
	cfg.Telemetry = devReg
	dev, err := NewDevice(cfg, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	return &serviceRig{
		rig: &rig{world: w, chain: chain, device: dev},
		mfr: mfr,
		svc: NewService(dev),
	}, devReg
}

// TestConcurrentTracedMuxTraffic hammers one multiplexed session with
// parallel traced bundles: concurrent span recording at the client,
// service, device, and ORAM layers all funnel through two recorders
// while replies interleave on the mux. Run under -race this is the
// whole-pipeline data-race harness for the tracing tentpole.
func TestConcurrentTracedMuxTraffic(t *testing.T) {
	sr, _ := buildTracedServiceRig(t)
	clientConn, serverConn := net.Pipe()
	defer clientConn.Close()
	go func() {
		defer serverConn.Close()
		//hardtape:faulterr-ok the session ends when the test closes the pipe; its EOF is the shutdown signal
		_ = sr.svc.ServeConn(serverConn)
	}()

	clientReg := telemetry.NewRegistry()
	ctr := clientReg.EnableTracing("client", 0)
	defer clientReg.FlightRecorder().Close()

	c, err := Dial(clientConn, sr.verifier(), true)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTracer(ctr)

	const workers, rounds = 6, 4
	var wg sync.WaitGroup
	errc := make(chan error, workers*rounds)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				bundle := sr.transferBundleFrom(t, g, uint64(10+g))
				res, err := c.PreExecuteContext(context.Background(), bundle)
				if err != nil {
					errc <- err
					return
				}
				if res.AbortReason != "" {
					errc <- fmt.Errorf("bundle aborted: %s", res.AbortReason)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("traced mux bundle: %v", err)
	}

	rec := clientReg.FlightRecorder()
	traces := rec.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces kept after concurrent traced traffic")
	}
	// Every kept trace must be contiguous: client root, device-side
	// segment adopted over the wire, all parent links resolving.
	for _, trace := range traces {
		procs := map[string]bool{}
		spans := map[telemetry.SpanID]bool{}
		for _, s := range trace.Spans {
			procs[s.Proc] = true
			spans[s.Span] = true
		}
		if !procs["client"] || !procs["device"] {
			t.Fatalf("trace %s procs %v, want client and device", trace.ID, procs)
		}
		if trace.Root != "client.preexecute" {
			t.Errorf("trace %s root %q, want client.preexecute", trace.ID, trace.Root)
		}
		for _, s := range trace.Spans {
			if !s.Parent.IsZero() && !spans[s.Parent] {
				t.Errorf("trace %s span %s (%s) has unresolved parent %s",
					trace.ID, s.Span, s.Name, s.Parent)
			}
		}
	}
}
