package core

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/evm"
	"hardtape/internal/hevm"
	"hardtape/internal/node"
	"hardtape/internal/oram"
	"hardtape/internal/pager"
	"hardtape/internal/simclock"
	"hardtape/internal/state"
	"hardtape/internal/telemetry"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// HypervisorImage is the measured firmware image (stand-in bytes whose
// hash users pin for attestation).
var HypervisorImage = []byte("hardtape-hypervisor-v1.0")

// Errors.
var (
	ErrNotBooted   = errors.New("core: device not booted")
	ErrBundleEmpty = errors.New("core: empty bundle")
	ErrAborted     = errors.New("core: bundle aborted")
)

// laneState is one execution lane's dedicated hardware set: machine
// shadow, L1 world-state cache, prefetcher, virtual clock, and the
// per-bundle bookkeeping the readers and hooks write into. A slot's
// embedded laneState serves sequential execution and the parallel
// committer; the extra lanes (when Config.Lanes > 1) run speculative
// transactions.
type laneState struct {
	id          int
	clock       *simclock.Clock
	machine     *hevm.Machine
	wsCache     *hevm.WSCache
	prefetcher  *pager.Prefetcher
	oramQueries uint64
	// opCounts samples retired instructions by class for telemetry.
	// Plain memory owned by this lane — flushed to shared counters
	// between bundles, so the interpreter loop never touches atomics.
	opCounts evm.OpClassCounts
	// queryTimes/queryKinds record the virtual time and kind ('k' for
	// K-V, 'c' for code) of every ORAM query this bundle issued (for
	// the prefetch ablation). Speculative lanes record lane-relative
	// times, folded to absolute when the bundle result is assembled.
	queryTimes []time.Duration
	queryKinds []byte
	// codeCache holds contract code fetched during this bundle (the
	// paper's "all data can be found locally after first access",
	// §VI-C); cleared with the rest of the on-chip state at release.
	codeCache map[types.Hash][]byte
}

// reset clears every on-chip structure (step 10).
func (l *laneState) reset() {
	l.machine.Reset()
	l.wsCache.Clear()
	l.prefetcher.Reset()
	l.clock.Reset()
	l.oramQueries = 0
	l.opCounts.Reset()
	l.queryTimes = nil
	l.queryKinds = nil
	l.codeCache = make(map[types.Hash][]byte)
}

// slot is one HEVM core. The embedded laneState is the core's primary
// hardware set (sequential execution, and the commit lane in parallel
// mode); lanes holds the speculative lanes when the device is
// configured with Config.Lanes > 1. A slot serves exactly one bundle
// at a time (the paper's dedicated-hardware isolation).
type slot struct {
	laneState
	lanes []*laneState
}

// reset clears every on-chip structure across all lanes (step 10).
func (s *slot) reset() {
	s.laneState.reset()
	for _, l := range s.lanes {
		l.reset()
	}
}

// hevmStats aggregates machine statistics across the commit lane and
// every speculative lane (counts sum; the L2 high-water mark is the max
// across independent rings; any lane overflowing marks the slot).
func (s *slot) hevmStats() hevm.Stats {
	st := s.machine.Stats()
	for _, l := range s.lanes {
		ls := l.machine.Stats()
		st.Steps += ls.Steps
		st.SwapEvents += ls.SwapEvents
		st.PagesEvicted += ls.PagesEvicted
		st.PagesLoaded += ls.PagesLoaded
		st.CodeFaults += ls.CodeFaults
		if ls.L2PagesUsed > st.L2PagesUsed {
			st.L2PagesUsed = ls.L2PagesUsed
		}
		st.Overflowed = st.Overflowed || ls.Overflowed
	}
	return st
}

// totalORAMQueries sums query counts across all lanes.
func (s *slot) totalORAMQueries() uint64 {
	n := s.oramQueries
	for _, l := range s.lanes {
		n += l.oramQueries
	}
	return n
}

// mergedQueries folds the speculative lanes' lane-relative query logs
// into the commit lane's absolute log, sorted into one device-absolute
// timeline (the cadence one adversary tap on the ORAM link observes).
// base is the device time at which the lane clocks started.
func (s *slot) mergedQueries(base time.Duration) ([]time.Duration, []byte) {
	n := len(s.queryTimes)
	for _, l := range s.lanes {
		n += len(l.queryTimes)
	}
	if n == 0 {
		return nil, nil
	}
	times := append(make([]time.Duration, 0, n), s.queryTimes...)
	kinds := append(make([]byte, 0, n), s.queryKinds...)
	for _, l := range s.lanes {
		for i, t := range l.queryTimes {
			times = append(times, base+t)
			kinds = append(kinds, l.queryKinds[i])
		}
	}
	sort.Stable(&queryLog{times: times, kinds: kinds})
	return times, kinds
}

// queryLog sorts a (time, kind) pair slice by timestamp.
type queryLog struct {
	times []time.Duration
	kinds []byte
}

func (q *queryLog) Len() int           { return len(q.times) }
func (q *queryLog) Less(i, j int) bool { return q.times[i] < q.times[j] }
func (q *queryLog) Swap(i, j int) {
	q.times[i], q.times[j] = q.times[j], q.times[i]
	q.kinds[i], q.kinds[j] = q.kinds[j], q.kinds[i]
}

// Device is one HarDTAPE chip: the Hypervisor plus cfg.HEVMs cores,
// attached to a Node (for sync) and an ORAM server (run by the SP).
type Device struct {
	cfg    Config
	booted *attest.BootedDevice

	chain *node.Node

	oramServer *oram.MemServer
	// oramServers holds every in-process shard server when the tree is
	// sharded (oramServer aliases shard 0 for single-tree callers).
	oramServers []*oram.MemServer
	oramStore   *pager.Store
	mirror      *pager.Store
	syncORAM    *node.Syncer
	syncMirror  *node.Syncer

	slots    chan *slot
	allSlots []*slot

	// oramClient is the shared Path ORAM access point (nil without
	// ORAM features): the single-tree Client, or the ShardedClient
	// fanning batches out across ORAMShards trees.
	oramClient oram.Accessor

	// tm is always non-nil; with telemetry disabled its instruments
	// are nil and every record call is a single branch.
	tm *devMetrics

	mu       sync.Mutex
	codeLens map[types.Hash]uint32
	// oramKey is the shared bucket-encryption key (paper §IV-D "ORAM
	// key protection"); OfferORAMKey transfers it to sibling devices.
	oramKey []byte
	// oramMu serializes the shared ORAM client (the Hypervisor
	// serializes queries; Path ORAM clients are not concurrent-safe).
	oramMu sync.Mutex
}

// NewDevice provisions, boots, and wires a device to its node. The
// manufacturer is created internally when mfr is nil (tests); pass a
// shared manufacturer when users must verify against a pinned root.
func NewDevice(cfg Config, mfr *attest.Manufacturer, chain *node.Node) (*Device, error) {
	if cfg.HEVMs <= 0 {
		return nil, fmt.Errorf("core: need at least one HEVM, got %d", cfg.HEVMs)
	}
	if mfr == nil {
		var err error
		mfr, err = attest.NewManufacturer()
		if err != nil {
			return nil, err
		}
	}
	provisioned, err := mfr.Provision(fmt.Sprintf("HT-%d", cfg.NoiseSeed))
	if err != nil {
		return nil, err
	}
	booted, err := provisioned.SecureBoot(HypervisorImage)
	if err != nil {
		return nil, err
	}

	d := &Device{
		cfg:      cfg,
		booted:   booted,
		chain:    chain,
		mirror:   pager.NewStore(pager.NewPlainBackend()),
		codeLens: make(map[types.Hash]uint32),
		slots:    make(chan *slot, cfg.HEVMs),
		tm:       newDevMetrics(cfg.Telemetry),
	}

	// ORAM server(s) + shared client (the SP runs the servers; the
	// Hypervisor holds the client with its on-chip stash/position map).
	if cfg.Features.ORAMStorage || cfg.Features.ORAMCode {
		key := cfg.ORAMKey
		if len(key) == 0 {
			key = make([]byte, oram.KeySize)
			if _, err := rand.Read(key); err != nil {
				return nil, fmt.Errorf("core: oram key: %w", err)
			}
		} else if len(key) != oram.KeySize {
			return nil, fmt.Errorf("core: ORAM key must be %d bytes", oram.KeySize)
		}
		d.oramKey = append([]byte(nil), key...)
		client, err := d.buildORAM(cfg, key)
		if err != nil {
			return nil, err
		}
		d.oramClient = client
		d.oramStore = pager.NewStore(pager.NewORAMBackend(client))
		d.syncORAM = node.NewSyncer(chain, d.oramStore)
	}
	d.syncMirror = node.NewSyncer(chain, d.mirror)

	for i := 0; i < cfg.HEVMs; i++ {
		lane, err := newLane(cfg, i, cfg.NoiseSeed+int64(i))
		if err != nil {
			return nil, err
		}
		s := &slot{laneState: *lane}
		// Speculative lanes get their own full hardware set each, with
		// noise seeds disjoint from every core's primary seed.
		if cfg.Lanes > 1 {
			for j := 0; j < cfg.Lanes; j++ {
				seed := cfg.NoiseSeed + int64(cfg.HEVMs) + int64(i*cfg.Lanes+j)
				sl, err := newLane(cfg, j, seed)
				if err != nil {
					return nil, err
				}
				s.lanes = append(s.lanes, sl)
			}
		}
		d.allSlots = append(d.allSlots, s)
		d.slots <- s
	}
	return d, nil
}

// buildORAM wires the device's oblivious store from the config: the
// paper's single tree (in-memory or remote), or ORAMShards independent
// trees behind the fan-out client — optionally disk-backed with
// checkpointing when ORAMDir is set (DESIGN.md §17).
func (d *Device) buildORAM(cfg Config, key []byte) (oram.Accessor, error) {
	shards := cfg.ORAMShardCount()

	// Durable path: disk-backed bucket files + checkpoint stores under
	// ORAMDir, any shard count (a single shard still checkpoints).
	if cfg.ORAMDir != "" {
		if cfg.RemoteORAMAddr != "" {
			return nil, fmt.Errorf("core: ORAMDir and RemoteORAMAddr are mutually exclusive")
		}
		if cfg.RecursivePositionMap {
			return nil, fmt.Errorf("core: checkpointing requires the flat position map")
		}
		var sopts []oram.ShardOption
		if cfg.Telemetry != nil {
			sopts = append(sopts, oram.WithShardTelemetry(cfg.Telemetry))
		}
		sc, err := oram.OpenShardedStore(cfg.ORAMDir, shards, cfg.ORAMCapacity, key, 1, sopts...)
		if err != nil {
			return nil, fmt.Errorf("core: durable oram: %w", err)
		}
		return sc, nil
	}

	if shards > 1 {
		if cfg.RecursivePositionMap {
			return nil, fmt.Errorf("core: sharding uses per-shard flat position maps (the partitioned map); RecursivePositionMap is single-tree only")
		}
		servers := make([]oram.Server, shards)
		if cfg.RemoteORAMAddr != "" {
			// One TCP server per shard, comma-separated in config order.
			addrs := strings.Split(cfg.RemoteORAMAddr, ",")
			if len(addrs) != shards {
				return nil, fmt.Errorf("core: %d ORAM shards need %d remote addresses, got %d",
					shards, shards, len(addrs))
			}
			for i, addr := range addrs {
				remote, err := oram.DialServer(strings.TrimSpace(addr))
				if err != nil {
					return nil, fmt.Errorf("core: remote oram shard %d: %w", i, err)
				}
				servers[i] = remote
			}
		} else {
			perShard := (cfg.ORAMCapacity + uint64(shards) - 1) / uint64(shards)
			for i := range servers {
				mem, err := oram.NewMemServer(perShard)
				if err != nil {
					return nil, err
				}
				d.oramServers = append(d.oramServers, mem)
				servers[i] = mem
			}
			d.oramServer = d.oramServers[0]
		}
		var sopts []oram.ShardOption
		if cfg.Telemetry != nil {
			sopts = append(sopts, oram.WithShardTelemetry(cfg.Telemetry))
		}
		return oram.NewShardedClient(servers, key, sopts...)
	}

	// The paper's single tree.
	var server oram.Server
	if cfg.RemoteORAMAddr != "" {
		remote, err := oram.DialServer(cfg.RemoteORAMAddr)
		if err != nil {
			return nil, fmt.Errorf("core: remote oram: %w", err)
		}
		server = remote
	} else {
		mem, err := oram.NewMemServer(cfg.ORAMCapacity)
		if err != nil {
			return nil, err
		}
		d.oramServer = mem
		d.oramServers = []*oram.MemServer{mem}
		server = mem
	}
	var opts []oram.ClientOption
	if cfg.Telemetry != nil {
		opts = append(opts, oram.WithTelemetry(cfg.Telemetry))
	}
	if cfg.RecursivePositionMap {
		pmKey := make([]byte, oram.KeySize)
		if _, err := rand.Read(pmKey); err != nil {
			return nil, fmt.Errorf("core: posmap key: %w", err)
		}
		pm, err := oram.NewRecursivePositionMap(cfg.ORAMCapacity, pmKey)
		if err != nil {
			return nil, err
		}
		opts = append(opts, oram.WithPositionMap(pm))
	}
	return oram.NewClient(server, key, opts...)
}

// newLane builds one execution lane's hardware set.
func newLane(cfg Config, id int, noiseSeed int64) (*laneState, error) {
	clock := simclock.NewClock()
	l3Key := make([]byte, 32)
	if _, err := rand.Read(l3Key); err != nil {
		return nil, fmt.Errorf("core: l3 key: %w", err)
	}
	machine, err := hevm.New(cfg.Hardware, clock, cfg.Calibration, l3Key, noiseSeed)
	if err != nil {
		return nil, err
	}
	return &laneState{
		id:         id,
		clock:      clock,
		machine:    machine,
		wsCache:    hevm.NewWSCache(cfg.Hardware.WSCacheEntries),
		prefetcher: pager.NewPrefetcher(),
		codeCache:  make(map[types.Hash][]byte),
	}, nil
}

// Booted exposes the attestation endpoint (step 2).
func (d *Device) Booted() *attest.BootedDevice { return d.booted }

// ORAMServer exposes the SP-side server (adversary observation point).
// With a sharded tree set this is shard 0; ORAMServers lists them all.
func (d *Device) ORAMServer() *oram.MemServer { return d.oramServer }

// ORAMServers exposes every in-process shard server in shard order
// (nil for remote or disk-backed deployments).
func (d *Device) ORAMServers() []*oram.MemServer { return d.oramServers }

// Sync pulls the node's world state — Merkle-verified — into the
// device's stores (step 11 / initial full sync).
//
//hardtape:locksafe-ok oramMu exists to serialize the non-concurrent-safe ORAM client; holding it across SyncAll is the lock's purpose
func (d *Device) Sync() error {
	if err := d.syncMirror.SyncAll(); err != nil {
		return fmt.Errorf("core: mirror sync: %w", err)
	}
	if d.syncORAM != nil {
		d.oramMu.Lock()
		defer d.oramMu.Unlock()
		if err := d.syncORAM.SyncAll(); err != nil {
			return fmt.Errorf("core: oram sync: %w", err)
		}
	}
	// Register code lengths from the chain (hypervisor bookkeeping,
	// maintained during sync).
	for _, addr := range d.chain.State().Addresses() {
		if acct, ok := d.chain.State().Account(addr); ok {
			if code := d.chain.State().Code(acct.CodeHash); code != nil {
				d.registerCodeLen(acct.CodeHash, uint32(len(code)))
			}
		}
	}
	return nil
}

// registerCodeLen records a contract's code length (trusted metadata,
// like the position map).
func (d *Device) registerCodeLen(h types.Hash, n uint32) {
	if h == types.EmptyCodeHash || h.IsZero() || n == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.codeLens[h] = n
}

func (d *Device) codeLen(h types.Hash) (uint32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.codeLens[h]
	return n, ok
}

// BundleResult is what a pre-execution returns to the user (step 9).
type BundleResult struct {
	Trace *tracer.BundleTrace
	// VirtualTime is the modeled end-to-end device time for the bundle
	// (the quantity Fig. 4 reports).
	VirtualTime time.Duration
	// Aborted carries a Memory Overflow (or tamper) abort.
	Aborted error
	// Machine/query statistics.
	HEVMStats   hevm.Stats
	ORAMQueries uint64
	GasUsed     uint64
	// QueryTimes is the virtual timestamp of each ORAM query (the
	// adversary-observable cadence); QueryKinds is the ground-truth
	// kind per query ('k' K-V, 'c' code) for the prefetch ablation.
	QueryTimes []time.Duration
	QueryKinds []byte
	// Parallel carries the optimistic-scheduler statistics; nil when the
	// bundle ran sequentially.
	Parallel *ParallelStats
}

// Execute runs a bundle on an exclusively assigned HEVM, blocking
// until a core is idle (step 3's queue). It implements steps 3–10.
func (d *Device) Execute(bundle *types.Bundle) (*BundleResult, error) {
	return d.ExecuteContext(context.Background(), bundle)
}

// ExecuteContext is Execute with a cancellable wait for a free HEVM:
// if ctx expires before a core is idle, the bundle is abandoned with
// ctx.Err() instead of queuing forever. Once a core is assigned the
// bundle runs to completion (the paper's HEVMs have no preemption).
func (d *Device) ExecuteContext(ctx context.Context, bundle *types.Bundle) (*BundleResult, error) {
	if d.booted == nil {
		return nil, ErrNotBooted
	}
	if bundle == nil || len(bundle.Txs) == 0 {
		return nil, ErrBundleEmpty
	}
	// Continue the caller's distributed trace when one rides the
	// context (tracer-nil check first: the disabled path never touches
	// the context value).
	var tsp *telemetry.TraceSpan
	dtr := d.cfg.Telemetry.Tracer()
	if dtr != nil {
		if parent := telemetry.SpanFromContext(ctx); parent.Valid() {
			tsp = dtr.StartSpan("device.bundle", parent)
			tsp.AddInt("txs", int64(len(bundle.Txs)))
		}
	}
	var s *slot
	select {
	case s = <-d.slots: // exclusive assignment
	default:
		// All cores busy: the queue wait is a span of its own, so a
		// trace shows admission stalls apart from execution time.
		var wsp *telemetry.TraceSpan
		if tsp != nil {
			wsp = dtr.StartSpan("device.slot_wait", tsp.Context())
		}
		select {
		case s = <-d.slots:
			wsp.End()
		case <-ctx.Done():
			wsp.SetError(ctx.Err())
			wsp.End()
			tsp.SetError(ctx.Err())
			tsp.End()
			return nil, ctx.Err()
		}
	}
	defer func() {
		s.reset()
		d.slots <- s
	}()
	s.reset()
	res, err := d.executeOn(s, bundle, tsp)
	tsp.SetError(err)
	tsp.End()
	return res, err
}

// executeOn runs the bundle on a specific slot. tsp is the bundle's
// "device.bundle" trace span (nil when untraced).
func (d *Device) executeOn(s *slot, bundle *types.Bundle, tsp *telemetry.TraceSpan) (*BundleResult, error) {
	sp := telemetry.StartSpan(d.tm.enabled)
	cal := d.cfg.Calibration
	feat := d.cfg.Features

	// "device.exec" covers execution proper — HEVM stages between the
	// border-crossing charges — and parents the lane and ORAM spans.
	var xsp *telemetry.TraceSpan
	if tsp != nil {
		xsp = d.cfg.Telemetry.Tracer().StartSpan("device.exec", tsp.Context())
		if len(s.lanes) > 0 && len(bundle.Txs) > 1 {
			xsp.AddInt("lanes", int64(len(s.lanes)))
		}
	}

	// Step 6: the user's message crosses the border. Charge the
	// A.E.DMA decrypt and the per-bundle signature verification.
	inputBytes := bundleSize(bundle)
	if feat.Encrypt {
		s.clock.Advance(time.Duration(inputBytes/1024+1) * cal.AESGCMPerKB)
	}
	if feat.Sign {
		s.clock.Advance(cal.ECDSAVerify)
	}
	// Device time when execution proper starts — the zero point of the
	// speculative lanes' relative clocks in parallel mode.
	execBase := s.clock.Now()

	head := d.chain.Head()
	blockCtx := workload.NewBlockContext(&head.Header)
	blockCtx.BlockHash = d.chain.BlockHash

	result := &BundleResult{}
	if len(s.lanes) > 0 && len(bundle.Txs) > 1 {
		// Optimistic intra-bundle parallelism (DESIGN.md §16).
		if err := d.runTxsParallel(s, blockCtx, bundle, result, xsp); err != nil {
			d.tm.bundlesErr.Inc()
			xsp.SetError(err)
			xsp.End()
			return nil, err
		}
	} else {
		reader := d.newReader(&s.laneState)
		overlay := state.NewOverlay(reader)
		e := evm.New(blockCtx, overlay)

		tr := tracer.New(d.cfg.CaptureSteps)
		e.Hooks = evm.CombineHooks(tr.Hooks(), s.machine.Hooks())
		if d.tm.enabled {
			// Op-class sampling rides the interpreter's hook fast path:
			// installed only here, so disabled telemetry re-uses the
			// existing hook-presence flags at zero extra cost.
			e.Hooks = evm.CombineHooks(e.Hooks, s.opCounts.Hooks())
		}

		if err := d.runTxs(e, tr, s, bundle, result, xsp.Context()); err != nil {
			d.tm.bundlesErr.Inc()
			xsp.SetError(err)
			xsp.End()
			return nil, err
		}
		result.Trace = tr.Bundle()
	}
	xsp.End()

	// Step 9: trace leaves through the secure channel.
	traceBytes := traceSize(result.Trace)
	if feat.Encrypt {
		s.clock.Advance(time.Duration(traceBytes/1024+1) * cal.AESGCMPerKB)
	}
	if feat.Sign {
		s.clock.Advance(cal.ECDSASign)
	}
	result.VirtualTime = s.clock.Now()
	result.HEVMStats = s.hevmStats()
	result.ORAMQueries = s.totalORAMQueries()
	result.QueryTimes, result.QueryKinds = s.mergedQueries(execBase)
	d.tm.txs.Add(uint64(len(bundle.Txs)))
	d.tm.recordBundle(s, result)
	sp.End(d.tm.execWall)
	return result, nil
}

// runTxs executes the bundle's transactions, converting hardware
// aborts (Memory Overflow, L3 tamper) into result errors.
//
//hardtape:locksafe-ok oramMu serializes the shared ORAM client for the whole bundle; ApplyTransaction's storage reads ARE the guarded resource
func (d *Device) runTxs(e *evm.EVM, tr *tracer.Tracer, s *slot, bundle *types.Bundle, result *BundleResult, sc telemetry.SpanContext) (err error) {
	// The ORAM client is shared across slots; serialize bundles that
	// touch it. (Lock ordering: slots never nest bundle executions.)
	if d.cfg.Features.ORAMStorage || d.cfg.Features.ORAMCode {
		d.oramMu.Lock()
		defer d.oramMu.Unlock()
		// Attribute this bundle's ORAM rounds to its trace. Stamped
		// unconditionally (sc is zero for untraced bundles) so an
		// untraced bundle interleaving with a traced one can never ride
		// the previous holder's span.
		if dtr := d.cfg.Telemetry.Tracer(); dtr != nil {
			d.oramClient.SetTrace(dtr, sc)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			rErr, ok := r.(error)
			if !ok {
				panic(r) // genuine bug, re-raise
			}
			var moe *hevm.MemoryOverflowError
			switch {
			case errors.As(rErr, &moe):
				result.Aborted = rErr
			case errors.Is(rErr, hevm.ErrL3Tampered):
				result.Aborted = rErr
			default:
				err = fmt.Errorf("%w: %v", ErrAborted, rErr)
			}
		}
	}()
	for i, tx := range bundle.Txs {
		tr.BeginTx(tx.Hash())
		res, applyErr := e.ApplyTransaction(tx)
		if applyErr != nil {
			return fmt.Errorf("core: tx %d: %w", i, applyErr)
		}
		tr.EndTx(res)
		result.GasUsed += res.GasUsed
	}
	return nil
}

// bundleSize approximates the wire size of a bundle.
func bundleSize(b *types.Bundle) uint64 {
	var n uint64
	for _, tx := range b.Txs {
		n += 128 + uint64(len(tx.Data))
	}
	return n
}

// traceSize approximates the wire size of a returned trace.
func traceSize(tr *tracer.BundleTrace) uint64 {
	if tr == nil {
		return 0
	}
	var n uint64
	for _, tx := range tr.Txs {
		n += 64 + uint64(len(tx.ReturnData)) + uint64(len(tx.Calls))*64 +
			uint64(len(tx.Storage))*72 + uint64(len(tx.Steps))*24
	}
	return n
}

// SlotCount reports the number of HEVM cores.
func (d *Device) SlotCount() int { return d.cfg.HEVMs }

// FreeSlots reports how many HEVM cores are idle right now without
// blocking — the Hypervisor's occupancy register, read by schedulers
// (the fleet gateway) for least-busy dispatch.
func (d *Device) FreeSlots() int { return len(d.slots) }

// ORAMStats snapshots the shared ORAM client's counters (zero value
// when ORAM features are disabled).
func (d *Device) ORAMStats() oram.Stats {
	if d.oramClient == nil {
		return oram.Stats{}
	}
	d.oramMu.Lock()
	defer d.oramMu.Unlock()
	return d.oramClient.Stats()
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }
