package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFreeSlotsTracksOccupancy(t *testing.T) {
	r := buildRig(t, ConfigRaw)
	d := r.device
	if got := d.FreeSlots(); got != d.SlotCount() {
		t.Fatalf("idle device: FreeSlots = %d, want %d", got, d.SlotCount())
	}

	// Occupy one core directly (the same channel Execute draws from).
	s := <-d.slots
	if got := d.FreeSlots(); got != d.SlotCount()-1 {
		t.Fatalf("one core busy: FreeSlots = %d, want %d", got, d.SlotCount()-1)
	}
	d.slots <- s
	if got := d.FreeSlots(); got != d.SlotCount() {
		t.Fatalf("released: FreeSlots = %d, want %d", got, d.SlotCount())
	}

	// Executing a bundle restores the slot afterwards.
	if _, err := d.Execute(r.transferBundle(t, 11)); err != nil {
		t.Fatal(err)
	}
	if got := d.FreeSlots(); got != d.SlotCount() {
		t.Fatalf("after execute: FreeSlots = %d, want %d", got, d.SlotCount())
	}
}

func TestExecuteContextTimesOutWhenSaturated(t *testing.T) {
	r := buildRig(t, ConfigRaw)
	d := r.device

	// Saturate every core so ExecuteContext must queue.
	var held []*slot
	for i := 0; i < d.SlotCount(); i++ {
		held = append(held, <-d.slots)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := d.ExecuteContext(ctx, r.transferBundle(t, 7)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated device: err = %v, want DeadlineExceeded", err)
	}

	// Releasing a core lets the same bundle run.
	for _, s := range held {
		d.slots <- s
	}
	res, err := d.ExecuteContext(context.Background(), r.transferBundle(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil {
		t.Fatalf("aborted: %v", res.Aborted)
	}
}

func TestExecuteContextPrefersFreeSlotOverCancelledContext(t *testing.T) {
	// A free core should win even if the context is already cancelled
	// (non-blocking fast path).
	r := buildRig(t, ConfigRaw)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.device.ExecuteContext(ctx, r.transferBundle(t, 3))
	if err != nil {
		t.Fatalf("free device with cancelled ctx: %v", err)
	}
	if len(res.Trace.Txs) != 1 {
		t.Fatal("no trace")
	}
}
