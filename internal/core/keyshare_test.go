package core

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"hardtape/internal/attest"
	"hardtape/internal/node"
	"hardtape/internal/oram"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// keyShareRig builds two devices from ONE manufacturer sharing ONE TCP
// ORAM server: device A deploys first (fresh key); device B obtains
// A's key through the DHKE transfer.
func keyShareRig(t *testing.T) (a, b *Device, mfr *attest.Manufacturer, w *workload.World) {
	t.Helper()
	inner, err := oram.NewMemServer(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := oram.ServeTCP(inner, l)
	t.Cleanup(func() { _ = srv.Close() })

	mfr, err = attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 8
	wcfg.Tokens = 1
	wcfg.DEXes = 1
	w, err = workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}

	// Device A is the first deployment: it holds the ORAM key but (in
	// this test) acts only as the key provider — Path ORAM position
	// maps are per-client, so exactly one device writes the shared
	// tree at a time (see keyshare.go).
	cfgA := DefaultConfig()
	cfgA.HEVMs = 1
	cfgA.RemoteORAMAddr = srv.Addr().String()
	a, err = NewDevice(cfgA, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}

	// Device B: same manufacturer, same server, key fetched from A.
	verifier := attest.NewVerifier(mfr.PublicKey(), ImageMeasurement())
	key, err := RequestORAMKey(a, verifier)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := DefaultConfig()
	cfgB.HEVMs = 1
	cfgB.NoiseSeed = 2 // distinct serial
	cfgB.RemoteORAMAddr = srv.Addr().String()
	cfgB.ORAMKey = key
	b, err = NewDevice(cfgB, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	return a, b, mfr, w
}

func TestORAMKeyTransfer(t *testing.T) {
	a, b, _, w := keyShareRig(t)
	if !bytes.Equal(a.oramKey, b.oramKey) {
		t.Fatal("devices hold different ORAM keys after transfer")
	}
	// The successor device operates the shared tree with the inherited
	// key.
	token := w.Tokens[0]
	tx, err := w.SignedTxAt(w.EOAs[0], 0, &token, 0,
		workload.CalldataTransfer(w.EOAs[1], 9), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Execute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil || res.Trace.Txs[0].Reverted {
		t.Fatalf("successor bundle failed: %+v", res)
	}
	if res.ORAMQueries == 0 {
		t.Fatal("successor did not touch the shared ORAM")
	}
}

func TestORAMKeyTransferRejectsImposter(t *testing.T) {
	a, _, _, _ := keyShareRig(t)
	// A requester pinning a DIFFERENT manufacturer must refuse A's key
	// offer (it would otherwise hand its trust to an unknown device).
	evil, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	wrongVerifier := attest.NewVerifier(evil.PublicKey(), ImageMeasurement())
	if _, err := RequestORAMKey(a, wrongVerifier); err == nil {
		t.Fatal("key transfer accepted an unverifiable provider")
	}
}

func TestOfferORAMKeyWithoutORAM(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 4
	wcfg.Tokens = 1
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Features = ConfigRaw // no ORAM
	cfg.HEVMs = 1
	dev, err := NewDevice(cfg, nil, chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.OfferORAMKey([32]byte{}); !errors.Is(err, ErrNoORAMKey) {
		t.Fatalf("raw device offered a key: %v", err)
	}
}

func TestBadORAMKeyLengthRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ORAMKey = []byte("short")
	if _, err := NewDevice(cfg, nil, nil); err == nil {
		t.Fatal("short ORAM key accepted")
	}
}
