package core

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"hardtape/internal/channel"

	"hardtape/internal/attest"
	"hardtape/internal/node"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
	"hardtape/internal/workload"
)

// serviceRig wires a device behind a Service with a shared
// manufacturer so the client can pin the root of trust.
type serviceRig struct {
	*rig
	mfr *attest.Manufacturer
	svc *Service
}

func buildServiceRig(t testing.TB, features Features) *serviceRig {
	t.Helper()
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 8
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Features = features
	cfg.HEVMs = 2
	dev, err := NewDevice(cfg, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	return &serviceRig{
		rig: &rig{world: w, chain: chain, device: dev},
		mfr: mfr,
		svc: NewService(dev),
	}
}

func (sr *serviceRig) verifier() *attest.Verifier {
	return attest.NewVerifier(sr.mfr.PublicKey(), ImageMeasurement())
}

func TestServiceEndToEndOverPipe(t *testing.T) {
	sr := buildServiceRig(t, ConfigFull)
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		_ = sr.svc.ServeConn(server)
	}()

	c, err := Dial(client, sr.verifier(), true)
	if err != nil {
		t.Fatal(err)
	}
	bundle := sr.transferBundle(t, 77)
	res, err := c.PreExecute(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortReason != "" {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	if len(res.Trace.Txs) != 1 || res.Trace.Txs[0].Reverted {
		t.Fatalf("trace: %+v", res.Trace)
	}
	if got := new(uint256.Int).SetBytes(res.Trace.Txs[0].ReturnData); !got.Eq(uint256.NewInt(1)) {
		t.Fatalf("return = %s", got)
	}
	if res.VirtualTime <= 0 {
		t.Fatal("no virtual time reported")
	}

	// A second bundle reuses the session.
	res2, err := c.PreExecute(sr.transferBundleFrom(t, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trace.Txs) != 1 {
		t.Fatal("second bundle failed")
	}
}

func TestServiceOverTCP(t *testing.T) {
	sr := buildServiceRig(t, ConfigES)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = sr.svc.ServeListener(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := Dial(conn, sr.verifier(), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.PreExecute(sr.transferBundle(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Txs) != 1 {
		t.Fatal("TCP round trip failed")
	}
}

func TestServiceRejectsWrongManufacturer(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	evil, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		_ = sr.svc.ServeConn(server)
	}()
	wrongVerifier := attest.NewVerifier(evil.PublicKey(), ImageMeasurement())
	if _, err := Dial(client, wrongVerifier, false); err == nil {
		t.Fatal("client accepted a device from an unknown manufacturer")
	} else if !strings.Contains(err.Error(), "attestation failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestServiceReportsAborts(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		_ = sr.svc.ServeConn(server)
	}()
	c, err := Dial(client, sr.verifier(), false)
	if err != nil {
		t.Fatal(err)
	}
	hog := sr.world.MemoryHog
	tx, err := sr.world.SignedTxAt(sr.world.EOAs[0], 0, &hog, 0,
		workload.CalldataUint(600_000), 25_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.PreExecute(&types.Bundle{Txs: []*types.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.AbortReason, "memory overflow") {
		t.Fatalf("abort reason: %q", res.AbortReason)
	}
}

func TestServiceRejectsProtocolViolations(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)

	t.Run("garbage first message", func(t *testing.T) {
		client, server := net.Pipe()
		defer client.Close()
		errCh := make(chan error, 1)
		go func() {
			defer server.Close()
			errCh <- sr.svc.ServeConn(server)
		}()
		// A framed message with a bogus header.
		if err := channel.WriteMessage(client, []byte("not a protocol message at all....")); err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err == nil {
			t.Fatal("service accepted garbage")
		}
	})

	t.Run("wrong message type first", func(t *testing.T) {
		client, server := net.Pipe()
		defer client.Close()
		errCh := make(chan error, 1)
		go func() {
			defer server.Close()
			errCh <- sr.svc.ServeConn(server)
		}()
		h := channel.Header{Type: channel.MsgTrace, Length: 0}
		raw := h.Marshal()
		if err := channel.WriteMessage(client, raw[:]); err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; !errors.Is(err, ErrProtocol) {
			t.Fatalf("wrong-type open: %v", err)
		}
	})
}

func TestClientSessionEndsCleanly(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		defer server.Close()
		errCh <- sr.svc.ServeConn(server)
	}()
	c, err := Dial(client, sr.verifier(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PreExecute(sr.transferBundle(t, 3)); err != nil {
		t.Fatal(err)
	}
	// Closing the connection ends the session loop without error.
	client.Close()
	if err := <-errCh; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("session did not end cleanly: %v", err)
	}
}

func TestSecondClientGetsFreshSession(t *testing.T) {
	sr := buildServiceRig(t, ConfigES)
	runOne := func(amount uint64) uint64 {
		client, server := net.Pipe()
		defer client.Close()
		go func() {
			defer server.Close()
			_ = sr.svc.ServeConn(server)
		}()
		c, err := Dial(client, sr.verifier(), true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.PreExecute(sr.transferBundle(t, amount)); err != nil {
			t.Fatal(err)
		}
		return c.session
	}
	s1 := runOne(1)
	s2 := runOne(2)
	if s1 == s2 {
		t.Fatal("sessions must be unique per connection")
	}
}
