package core

import (
	"errors"
	"testing"

	"hardtape/internal/baseline"
	"hardtape/internal/hevm"
	"hardtape/internal/node"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// TestFullLifecycleAcrossBlocks drives the complete paper workflow
// over several chain epochs: blocks execute on the node (step 11),
// the device re-syncs with Merkle verification, and pre-executions
// against each new state version keep matching ground truth (§VI-B).
func TestFullLifecycleAcrossBlocks(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 16
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HEVMs = 2
	dev, err := NewDevice(cfg, nil, chain)
	if err != nil {
		t.Fatal(err)
	}

	for epoch := uint64(1); epoch <= 3; epoch++ {
		// New on-chain traffic. Pre-execution txs generated below are
		// never mined, so realign the generator's nonce tracking with
		// the canonical state first.
		w.SyncNonces(chain.State())
		blk, err := w.GenerateBlock(epoch, chain.Head().Header.Hash(), 15)
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.ImportBlock(blk); err != nil {
			t.Fatalf("epoch %d import: %v", epoch, err)
		}
		// Step 11: re-sync the ORAM.
		if err := dev.Sync(); err != nil {
			t.Fatalf("epoch %d sync: %v", epoch, err)
		}

		// Pre-execute a batch against the fresh state and diff against
		// the reference executor on the same state.
		ref := baseline.NewGeth(chain.State(), workload.NewBlockContext(&chain.Head().Header))
		for i := 0; i < 5; i++ {
			tx, _, err := w.GenerateTx()
			if err != nil {
				t.Fatal(err)
			}
			sender, err := tx.Sender()
			if err != nil {
				t.Fatal(err)
			}
			nonce := uint64(0)
			if acct, ok := chain.State().Account(sender); ok {
				nonce = acct.Nonce
			}
			tx, err = w.SignedTxAt(sender, nonce, tx.To, tx.Value.Uint64(), tx.Data, tx.GasLimit)
			if err != nil {
				t.Fatal(err)
			}
			bundle := &types.Bundle{Txs: []*types.Transaction{tx}}

			res, err := dev.Execute(bundle)
			if err != nil {
				t.Fatalf("epoch %d bundle %d: %v", epoch, i, err)
			}
			if res.Aborted != nil {
				continue
			}
			gt, err := ref.ExecuteBundle(bundle)
			if err != nil {
				t.Fatal(err)
			}
			if diffs := tracer.Diff(res.Trace.Txs[0], gt.Trace.Txs[0]); len(diffs) != 0 {
				t.Fatalf("epoch %d bundle %d diverges post-sync: %v", epoch, i, diffs)
			}
		}
	}
}

// TestBalancesVisibleAfterSync pins the exact data path: a balance
// changed by an imported block must be served through the ORAM on the
// next bundle.
func TestBalancesVisibleAfterSync(t *testing.T) {
	r := buildRig(t, ConfigFull)
	from, to := r.world.EOAs[3], r.world.EOAs[4]

	// On-chain transfer of 5000 wei.
	tx, err := r.world.SignedTx(from, &to, 5000, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	blk := &types.Block{Header: r.chain.Head().Header}
	blk.Header.Number = 1
	blk.Header.GasLimit = 30_000_000
	blk.Txs = []*types.Transaction{tx}
	blk.Header.TxRoot = blk.ComputeTxRoot()
	if err := r.chain.ImportBlock(blk); err != nil {
		t.Fatal(err)
	}
	if err := r.device.Sync(); err != nil {
		t.Fatal(err)
	}

	// Pre-execute a plain transfer FROM the recipient: its gas check
	// reads the post-block balance through the oblivious path. Use the
	// recipient's canonical nonce.
	nonce := uint64(0)
	if acct, ok := r.chain.State().Account(to); ok {
		nonce = acct.Nonce
	}
	probe, err := r.world.SignedTxAt(to, nonce, &from, 1, nil, 21_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.device.Execute(&types.Bundle{Txs: []*types.Transaction{probe}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil || res.Trace.Txs[0].Failed {
		t.Fatalf("post-sync bundle failed: %+v", res)
	}
}

// TestEvaluationSetCorrectnessAtScale is the §VI-B experiment at a
// larger sample size (guarded by -short).
func TestEvaluationSetCorrectnessAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large correctness sweep skipped in -short mode")
	}
	r := buildRig(t, ConfigFull)
	ref := baseline.NewGeth(r.chain.State(), workload.NewBlockContext(&r.chain.Head().Header))
	matched, aborted := 0, 0
	const n = 150
	for i := 0; i < n; i++ {
		tx, _, err := r.world.GenerateTx()
		if err != nil {
			t.Fatal(err)
		}
		sender, err := tx.Sender()
		if err != nil {
			t.Fatal(err)
		}
		tx, err = r.world.SignedTxAt(sender, 0, tx.To, tx.Value.Uint64(), tx.Data, tx.GasLimit)
		if err != nil {
			t.Fatal(err)
		}
		bundle := &types.Bundle{Txs: []*types.Transaction{tx}}
		res, err := r.device.Execute(bundle)
		if err != nil {
			t.Fatalf("bundle %d: %v", i, err)
		}
		if res.Aborted != nil {
			aborted++
			continue
		}
		gt, err := ref.ExecuteBundle(bundle)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := tracer.Diff(res.Trace.Txs[0], gt.Trace.Txs[0]); len(diffs) != 0 {
			t.Fatalf("bundle %d diverges: %v", i, diffs)
		}
		matched++
	}
	if matched+aborted != n {
		t.Fatalf("accounting: %d + %d != %d", matched, aborted, n)
	}
	t.Logf("§VI-B at scale: %d/%d identical, %d overflow aborts", matched, n, aborted)
}

// TestRollupTransactionHitsOverflow reproduces §VI-B's observation:
// roll-up transactions (huge calldata blobs) exceed the layer-2 frame
// size limit and abort with the Memory Overflow Error, while the
// unprotected baseline executes them fine — support is future work.
func TestRollupTransactionHitsOverflow(t *testing.T) {
	r := buildRig(t, ConfigRaw)
	tx, err := r.world.RollupTx(r.world.EOAs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	bundle := &types.Bundle{Txs: []*types.Transaction{tx}}

	res, err := r.device.Execute(bundle)
	if err != nil {
		t.Fatal(err)
	}
	var moe *hevm.MemoryOverflowError
	if !errors.As(res.Aborted, &moe) {
		t.Fatalf("roll-up should hit Memory Overflow, got %v", res.Aborted)
	}
	// The software baseline handles the same transaction.
	ref := baseline.NewGeth(r.chain.State(), workload.NewBlockContext(&r.chain.Head().Header))
	gt, err := ref.ExecuteBundle(bundle)
	if err != nil {
		t.Fatalf("baseline should run the roll-up: %v", err)
	}
	if gt.Trace.Txs[0].Failed {
		t.Fatal("baseline execution failed")
	}
}
