package core

import (
	"crypto/rand"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"

	"hardtape/internal/channel"
	"hardtape/internal/session"
	"hardtape/internal/telemetry"
)

// Warm handshake: a ticket redemption plus an AES-GCM rekey, no
// asymmetric crypto on either side.
//
//	user                                device
//	 │ MsgResumeRequest{ticket, cn}        │  plaintext
//	 │────────────────────────────────────►│  redeem ticket (GCM open)
//	 │                                     │  K' = HKDF(PSK, cn‖sn, sid')
//	 │ MsgResumeAccept{sid', sn, devTag}   │  plaintext (tag proves K')
//	 │◄────────────────────────────────────│
//	 │ MsgResumeConfirm{userTag}           │  sealed under K'
//	 │────────────────────────────────────►│  verify tag
//	 │ MsgTicketIssue{next ticket}         │  sealed under K'
//	 │◄────────────────────────────────────│  (rotation: old one is burned)
//	 │            bundle loop (mux)        │
//
// Mutual authentication comes from the PSK: only the endpoint that ran
// the original attested handshake can derive K', and the ticket binds
// the device identity + measurement the user originally verified. The
// confirm tags reuse channel.ConfirmTag (role-bound HMAC), so neither
// side's proof can be reflected back.
//
// Resumed channels never enable per-message ECDSA signatures: the
// bundle stream is authenticated by the PSK-bound AEAD, and keeping the
// warm path free of asymmetric operations is the subsystem's entire
// point. A deployment that requires the -ES signature layer simply
// re-dials cold.

// resumeRequestMsg presents a ticket. Plaintext: the ticket is opaque
// (STEK-sealed) and the nonce is public salt.
type resumeRequestMsg struct {
	Ticket      []byte
	ClientNonce [session.NonceSize]byte
}

// resumeAcceptMsg answers with the new session id, the server's rekey
// nonce, and the device's key-confirmation tag under the new traffic
// key — possession proof before the user sends anything sealed.
type resumeAcceptMsg struct {
	SessionID   uint64
	ServerNonce [session.NonceSize]byte
	Confirm     []byte
}

// resumeRejectMsg carries the coarse reject code (session.Reject*).
type resumeRejectMsg struct {
	Code uint8
}

// resumeConfirmMsg closes the rekey: the user's confirmation tag,
// sealed under the traffic key it claims to hold.
type resumeConfirmMsg struct {
	Confirm []byte
}

// ticketIssueMsg delivers a (possibly rotated) resumption ticket at
// the end of a handshake. An empty Ticket means the service could not
// mint one; the session still works, it just cannot be resumed.
type ticketIssueMsg struct {
	Ticket      []byte
	ExpiryEpoch uint64
}

// serveResume runs the server side of the warm handshake, then enters
// the shared session loop. Every failure path is fail-closed: a typed
// reject goes back in plaintext (the client maps it to the same
// sentinel) and the connection dies.
func (s *Service) serveResume(conn io.ReadWriter, raw []byte) error {
	hsp := telemetry.StartSpan(s.tm.enabled)
	_, body, err := parsePlain(raw, channel.MsgResumeRequest)
	if err != nil {
		return err
	}
	var req resumeRequestMsg
	if err := gobDecode(body, &req); err != nil {
		return err
	}

	st, err := s.redeemTicket(req.Ticket)
	if err != nil {
		s.recordTicketFailure(err)
		//hardtape:faulterr-ok the reject write is best-effort; the redeem failure is the error that matters
		_ = writePlain(conn, channel.MsgResumeReject, 0, &resumeRejectMsg{Code: session.RejectCode(err)})
		return err
	}
	s.tm.ticketsRedeemed.Inc()

	// A fresh session id: the ticket's PSK is bound to the old id, the
	// traffic key to the new one, so transcripts never collide.
	newID := s.sessionID.Add(1)
	var serverNonce [session.NonceSize]byte
	if _, err := rand.Read(serverNonce[:]); err != nil {
		session.ZeroKey(&st.PSK)
		return fmt.Errorf("core: resume nonce: %w", err)
	}
	traffic := session.TrafficKey(st.PSK, req.ClientNonce, serverNonce, newID)
	session.ZeroKey(&st.PSK)

	devTag := channel.ConfirmTag(traffic, newID, "device")
	accept := resumeAcceptMsg{SessionID: newID, ServerNonce: serverNonce, Confirm: devTag[:]}
	if err := writePlain(conn, channel.MsgResumeAccept, newID, &accept); err != nil {
		session.ZeroKey(&traffic)
		return err
	}

	secure, err := channel.NewSecureChannel(traffic, newID)
	if err != nil {
		session.ZeroKey(&traffic)
		return err
	}
	raw, err = channel.ReadMessage(conn)
	if err != nil {
		session.ZeroKey(&traffic)
		return err
	}
	hdr, payload, err := secure.Open(raw)
	if err != nil {
		session.ZeroKey(&traffic)
		return err
	}
	if hdr.Type != channel.MsgResumeConfirm {
		session.ZeroKey(&traffic)
		return fmt.Errorf("%w: expected resume confirm, got %d", ErrProtocol, hdr.Type)
	}
	var cm resumeConfirmMsg
	if err := gobDecode(payload, &cm); err != nil {
		session.ZeroKey(&traffic)
		return err
	}
	if err := channel.VerifyConfirmTag(traffic, newID, "user", cm.Confirm); err != nil {
		session.ZeroKey(&traffic)
		return err
	}

	// Rotate: derive the next PSK from the traffic key and mint the
	// successor ticket before any bundles flow.
	nextPSK := session.ResumptionPSK(traffic, newID)
	session.ZeroKey(&traffic)
	if err := s.sendTicket(conn, secure, nil, nextPSK, newID); err != nil {
		return err
	}

	hsp.Mark(s.tm.resume)
	s.tm.handshakesWarm.Inc()
	return s.serveSession(conn, secure)
}

// redeemTicket consumes a wire ticket and checks it against the booted
// identity: a ticket minted for a different image measurement (the
// device re-flashed since issue) fails closed.
func (s *Service) redeemTicket(wire []byte) (*session.State, error) {
	if s.issuer == nil {
		return nil, session.ErrResumeRejected
	}
	st, err := s.issuer.Redeem(wire)
	if err != nil {
		return nil, err
	}
	measurement := s.booted.Measurement()
	ok := subtle.ConstantTimeCompare(st.Measurement[:], measurement[:]) == 1
	if st.Serial != s.booted.Serial() || !ok {
		session.ZeroKey(&st.PSK)
		return nil, session.ErrMeasurementChanged
	}
	return st, nil
}

// recordTicketFailure counts a redeem failure under its event label.
func (s *Service) recordTicketFailure(err error) {
	switch {
	case errors.Is(err, session.ErrTicketExpired):
		s.tm.ticketsExpired.Inc()
	case errors.Is(err, session.ErrTicketReplayed):
		s.tm.ticketsReplayed.Inc()
	case errors.Is(err, session.ErrTicketTampered):
		s.tm.ticketsTampered.Inc()
	case errors.Is(err, session.ErrMeasurementChanged):
		s.tm.ticketsMismatched.Inc()
	}
}

// Resume re-establishes a session from a ticket with zero asymmetric
// crypto. The ticket is consumed (its PSK zeroed) whether or not the
// resume succeeds — on failure the caller re-dials cold. Typed errors
// (session.ErrTicket*, session.ErrMeasurementChanged) say why.
func Resume(conn io.ReadWriter, ticket *session.ClientTicket) (*Client, error) {
	if ticket == nil || len(ticket.Opaque) == 0 {
		return nil, session.ErrResumeRejected
	}
	defer session.ZeroKey(&ticket.PSK)

	var clientNonce [session.NonceSize]byte
	if _, err := rand.Read(clientNonce[:]); err != nil {
		return nil, fmt.Errorf("core: resume nonce: %w", err)
	}
	req := resumeRequestMsg{Ticket: ticket.Opaque, ClientNonce: clientNonce}
	if err := writePlain(conn, channel.MsgResumeRequest, ticket.SessionID, &req); err != nil {
		return nil, err
	}

	raw, err := channel.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	if len(raw) >= channel.HeaderSize {
		if hdr, err := channel.ParseHeader(raw[:channel.HeaderSize]); err == nil && hdr.Type == channel.MsgResumeReject {
			var rej resumeRejectMsg
			if _, body, perr := parsePlain(raw, channel.MsgResumeReject); perr == nil {
				//hardtape:faulterr-ok an undecodable reject still rejects; the code only refines the sentinel
				_ = gobDecode(body, &rej)
			}
			return nil, session.RejectError(rej.Code)
		}
	}
	_, body, err := parsePlain(raw, channel.MsgResumeAccept)
	if err != nil {
		return nil, err
	}
	var accept resumeAcceptMsg
	if err := gobDecode(body, &accept); err != nil {
		return nil, err
	}

	traffic := session.TrafficKey(ticket.PSK, clientNonce, accept.ServerNonce, accept.SessionID)
	// The device's tag proves it redeemed the ticket and derived the
	// same traffic key — without it, anyone could echo our nonce.
	if err := channel.VerifyConfirmTag(traffic, accept.SessionID, "device", accept.Confirm); err != nil {
		session.ZeroKey(&traffic)
		return nil, fmt.Errorf("%w: %w", session.ErrResumeRejected, err)
	}
	secure, err := channel.NewSecureChannel(traffic, accept.SessionID)
	if err != nil {
		session.ZeroKey(&traffic)
		return nil, err
	}
	userTag := channel.ConfirmTag(traffic, accept.SessionID, "user")
	sealed, err := secure.Seal(channel.MsgResumeConfirm, gobEncode(&resumeConfirmMsg{Confirm: userTag[:]}))
	if err != nil {
		session.ZeroKey(&traffic)
		return nil, err
	}
	if err := channel.WriteMessage(conn, sealed); err != nil {
		session.ZeroKey(&traffic)
		return nil, err
	}

	// Collect the rotated ticket; its PSK ratchets from the traffic key.
	nextPSK := session.ResumptionPSK(traffic, accept.SessionID)
	session.ZeroKey(&traffic)
	next, err := readTicket(conn, secure, nextPSK, accept.SessionID, ticket.Serial, ticket.Measurement)
	if err != nil {
		return nil, err
	}

	c := &Client{conn: conn, session: accept.SessionID, warm: true, ticket: next}
	c.mux = session.NewMux(readWriteCloser{conn}, secure)
	return c, nil
}
