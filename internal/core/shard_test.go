package core

import (
	"testing"

	"hardtape/internal/node"
	"hardtape/internal/tracer"
	"hardtape/internal/workload"
)

// buildShardedRig wires a device over the given ORAM shard count (and
// optional durable directory) against a small deterministic world.
func buildShardedRig(t testing.TB, mutate func(*Config)) *rig {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 12
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Features = ConfigFull
	cfg.HEVMs = 2
	if mutate != nil {
		mutate(&cfg)
	}
	dev, err := NewDevice(cfg, nil, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	return &rig{world: w, chain: chain, device: dev}
}

// TestShardedDeviceTraceParity: the shard count is a performance knob,
// never a behaviour knob — a 4-shard -full device must produce exactly
// the single-tree device's trace, gas, and ORAM query count for the
// same bundle.
func TestShardedDeviceTraceParity(t *testing.T) {
	single := buildShardedRig(t, nil)
	sharded := buildShardedRig(t, func(c *Config) { c.ORAMShards = 4 })

	for _, amount := range []uint64{123, 250} {
		res1, err := single.device.Execute(single.transferBundle(t, amount))
		if err != nil {
			t.Fatal(err)
		}
		res4, err := sharded.device.Execute(sharded.transferBundle(t, amount))
		if err != nil {
			t.Fatal(err)
		}
		if res1.Aborted != nil || res4.Aborted != nil {
			t.Fatalf("aborted: single=%v sharded=%v", res1.Aborted, res4.Aborted)
		}
		for i := range res1.Trace.Txs {
			if diffs := tracer.Diff(res1.Trace.Txs[i], res4.Trace.Txs[i]); len(diffs) != 0 {
				t.Fatalf("amount %d tx %d: sharded trace diverges: %v", amount, i, diffs)
			}
		}
		if res1.GasUsed != res4.GasUsed {
			t.Fatalf("amount %d: gas %d (single) != %d (sharded)", amount, res1.GasUsed, res4.GasUsed)
		}
		if res1.ORAMQueries != res4.ORAMQueries {
			t.Fatalf("amount %d: ORAM queries %d (single) != %d (sharded)",
				amount, res1.ORAMQueries, res4.ORAMQueries)
		}
		// The balanced overlap model can only make batched rounds
		// cheaper, never dearer.
		if res4.VirtualTime > res1.VirtualTime {
			t.Fatalf("amount %d: sharded virtual time %v exceeds single-tree %v",
				amount, res4.VirtualTime, res1.VirtualTime)
		}
	}

	st := sharded.device.ORAMStats()
	if st.Shards != 4 {
		t.Fatalf("ORAMStats().Shards = %d, want 4", st.Shards)
	}
	if len(sharded.device.ORAMServers()) != 4 {
		t.Fatalf("ORAMServers() = %d servers, want 4", len(sharded.device.ORAMServers()))
	}
}

// TestShardedDeviceDurable: a -full device over a durable sharded store
// executes correctly, and a second device opened over the same
// directory and key reuses the persisted trees.
func TestShardedDeviceDurable(t *testing.T) {
	dir := t.TempDir()
	key := make([]byte, 32)
	copy(key, "core-durable-test-key-0123456789")

	r := buildShardedRig(t, func(c *Config) {
		c.ORAMShards = 2
		c.ORAMDir = dir
		c.ORAMKey = key
		c.ORAMCapacity = 1 << 12
	})
	res, err := r.device.Execute(r.transferBundle(t, 77))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != nil {
		t.Fatalf("aborted: %v", res.Aborted)
	}
	want := res.Trace.Txs[0]

	// Second device over the same directory: recovery opens the
	// checkpointed trees (Sync then overwrites the same ids in place).
	r2 := buildShardedRig(t, func(c *Config) {
		c.ORAMShards = 2
		c.ORAMDir = dir
		c.ORAMKey = key
		c.ORAMCapacity = 1 << 12
	})
	res2, err := r2.device.Execute(r2.transferBundle(t, 77))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Aborted != nil {
		t.Fatalf("resumed device aborted: %v", res2.Aborted)
	}
	if diffs := tracer.Diff(want, res2.Trace.Txs[0]); len(diffs) != 0 {
		t.Fatalf("durable device trace diverges: %v", diffs)
	}
}

// TestShardedConfigRejections: the combinations the sharded path cannot
// honor must fail device construction loudly, not degrade silently.
func TestShardedConfigRejections(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 4
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"shards+recursive-posmap", func(c *Config) {
			c.ORAMShards = 4
			c.RecursivePositionMap = true
		}},
		{"dir+remote", func(c *Config) {
			c.ORAMDir = t.TempDir()
			c.RemoteORAMAddr = "127.0.0.1:1"
		}},
		{"dir+recursive-posmap", func(c *Config) {
			c.ORAMDir = t.TempDir()
			c.RecursivePositionMap = true
		}},
		{"shards+short-remote-list", func(c *Config) {
			c.ORAMShards = 4
			c.RemoteORAMAddr = "127.0.0.1:1,127.0.0.1:2"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.HEVMs = 1
			tc.mutate(&cfg)
			if _, err := NewDevice(cfg, nil, chain); err == nil {
				t.Fatal("invalid ORAM configuration accepted")
			}
		})
	}
}
