package core

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestServeListenerConcurrentSessions drives many parallel sessions —
// some well-behaved, some torn down abruptly mid-session — and checks
// that every connection goroutine winds down once the listener closes
// (no goroutine leak from half-open sessions).
func TestServeListenerConcurrentSessions(t *testing.T) {
	sr := buildServiceRig(t, ConfigES)

	baseline := runtime.NumGoroutine()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = sr.svc.ServeListener(l)
	}()

	const sessions = 8
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer conn.Close()
			c, err := Dial(conn, sr.verifier(), true)
			if err != nil {
				t.Errorf("attest %d: %v", i, err)
				return
			}
			if i%2 == 0 {
				// Abrupt teardown: hang up right after the handshake
				// (and, for some, mid-request) without a clean close.
				if i%4 == 0 {
					// Announce a frame, deliver half of it, slam the door.
					_, _ = conn.Write([]byte{0, 0, 0, 64, 'p', 'a', 'r', 't'})
				}
				conn.Close()
				_ = c
				return
			}
			res, err := c.PreExecute(sr.transferBundleFrom(t, i, uint64(i+1)))
			if err != nil {
				t.Errorf("pre-execute %d: %v", i, err)
				return
			}
			if len(res.Trace.Txs) != 1 {
				t.Errorf("session %d: bad trace", i)
			}
		}(i)
	}
	wg.Wait()

	// Shut down: the accept loop must exit and every per-connection
	// goroutine must drain.
	l.Close()
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("ServeListener did not return after listener close")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		// Allow a small slack over the pre-listener baseline: the
		// runtime's own pollers fluctuate.
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
