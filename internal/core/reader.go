package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hardtape/internal/hevm"
	"hardtape/internal/oram"
	"hardtape/internal/pager"
	"hardtape/internal/state"
	"hardtape/internal/telemetry"
	"hardtape/internal/types"
)

// hvReader is the Hypervisor's world-state query path: the backing
// Reader behind a bundle's overlay. Reads flow
//
//	L1 world-state cache → page store (ORAM or prefetched local),
//
// with a Hypervisor exception charged on every L1 miss (paper step 5)
// and the code prefetcher notified on every real ORAM query (§IV-D).
//
// hvReader panics with a wrapped error on backend failures — the
// executor converts this into a bundle failure, matching the hardware
// behaviour of halting the HEVM on an unrecoverable exception.
type hvReader struct {
	dev  *Device
	lane *laneState
	// kvStore serves account meta and storage records.
	kvStore *pager.Store
	// codeStore serves code pages; codeMirror provides the bytes when
	// ORAM traffic is spread by the prefetcher (see DESIGN.md).
	codeStore  *pager.Store
	codeMirror *pager.Store
	// kvORAM/codeORAM mark whether each store crosses the ORAM.
	kvORAM, codeORAM bool
}

var _ state.Reader = (*hvReader)(nil)

// chargeQuery advances the lane clock for one page fetch and drains
// any due prefetches first.
func (r *hvReader) chargeQuery(oramBacked bool) {
	r.chargeQueryKind(oramBacked, 'k')
}

func (r *hvReader) chargeQueryKind(oramBacked bool, kind byte) {
	if oramBacked {
		r.drainPrefetch()
		r.lane.prefetcher.NotifyQuery(r.lane.clock.Now())
		r.recordORAMQuery(kind)
		return
	}
	// Prefetched-to-untrusted-memory path: one A.E.DMA page move.
	r.lane.clock.Advance(r.dev.cfg.Calibration.L3SwapPerPage)
}

// recordORAMQuery logs one real ORAM query at the current virtual time
// and charges its link-RTT + server cost — the single bookkeeping site
// for every query the adversary observes.
func (r *hvReader) recordORAMQuery(kind byte) {
	r.recordORAMBatch(kind, 1)
}

// recordORAMBatch logs n queries issued together in one batched
// message and charges them as OVERLAPPED virtual time: the 2 ms link
// round trip is paid once for the whole batch, server processing
// serially per query within a shard but in parallel across shards
// (simclock.Calibration.ORAMShardedBatchCost — with one shard this is
// exactly ORAMBatchCost). All n queries share one timestamp — on the
// wire they leave back to back.
func (r *hvReader) recordORAMBatch(kind byte, n int) {
	now := r.lane.clock.Now()
	for i := 0; i < n; i++ {
		r.lane.queryTimes = append(r.lane.queryTimes, now)
		r.lane.queryKinds = append(r.lane.queryKinds, kind)
	}
	r.lane.clock.Advance(r.dev.cfg.Calibration.ORAMShardedBatchCost(n, r.dev.cfg.ORAMShardCount(), 0))
	r.lane.oramQueries += uint64(n)
}

// drainPrefetch issues at most ONE code prefetch whose randomized
// interval timer has expired (a real ORAM access whose data is
// discarded). One per real query is the paper's design: "we insert a
// prefetch query in the middle of every two original queries" — a
// loop here would burst the queue and recreate the very pattern the
// prefetcher exists to hide.
func (r *hvReader) drainPrefetch() {
	if !r.codeORAM {
		return
	}
	ref, ok := r.lane.prefetcher.PopDue(r.lane.clock.Now())
	if !ok {
		return
	}
	if _, err := r.codeStore.ReadCodePage(ref.CodeHash, ref.Index); err != nil &&
		!errors.Is(err, pager.ErrPageNotFound) {
		panic(fmt.Errorf("core: prefetch page %d: %w", ref.Index, err))
	}
	r.recordORAMQuery('c')
}

// Account implements state.Reader via the account-meta page.
func (r *hvReader) Account(addr types.Address) (*types.Account, bool) {
	r.chargeQuery(r.kvORAM)
	meta, err := r.kvStore.ReadAccountMeta(addr)
	if errors.Is(err, pager.ErrPageNotFound) {
		return nil, false
	}
	if err != nil {
		panic(fmt.Errorf("core: account %s: %w", addr, err))
	}
	r.dev.registerCodeLen(meta.CodeHash, meta.CodeLen)
	return &types.Account{
		Nonce:    meta.Nonce,
		Balance:  meta.Balance.Clone(),
		CodeHash: meta.CodeHash,
	}, true
}

// Storage implements state.Reader with the L1 world-state cache in
// front of the page store.
func (r *hvReader) Storage(addr types.Address, slot types.Hash) types.Hash {
	ck := hevm.WSCacheKey{Addr: addr, Key: slot}
	if v, ok := r.lane.wsCache.Get(ck); ok {
		// L1 hit: same-cycle, no exception.
		return types.Hash(v)
	}
	r.chargeQuery(r.kvORAM)
	val, _, err := r.kvStore.ReadStorageRecord(addr, slot)
	if err != nil {
		panic(fmt.Errorf("core: storage %s/%s: %w", addr, slot, err))
	}
	r.lane.wsCache.Put(ck, val)
	return val
}

// Code implements state.Reader. With ORAM-backed code, page 0 is
// fetched obliviously now and the tail pages are queued on the
// prefetcher's randomized interval timer; the bytes executed come from
// the trusted-side mirror (simulation note in DESIGN.md — the
// adversary-visible ORAM sequence is the faithful artifact).
func (r *hvReader) Code(codeHash types.Hash) []byte {
	if codeHash == types.EmptyCodeHash || codeHash.IsZero() {
		return nil
	}
	// Bundle-local code cache: repeated calls to the same contract find
	// the code on-chip (paper §VI-C's warm case).
	if code, ok := r.lane.codeCache[codeHash]; ok {
		return code
	}
	codeLen, ok := r.dev.codeLen(codeHash)
	if !ok {
		return nil
	}
	if r.codeORAM {
		r.chargeQueryKind(true, 'c')
		if _, err := r.codeStore.ReadCodePage(codeHash, 0); err != nil &&
			!errors.Is(err, pager.ErrPageNotFound) {
			panic(fmt.Errorf("core: code page 0 of %s: %w", codeHash, err))
		}
		if r.dev.cfg.DisablePrefetch {
			// Ablation: burst-fetch all remaining pages immediately —
			// the distinguishable pattern §IV-D problem 3 warns about.
			// The burst rides the batched ORAM path: one multi-path
			// message (and one overlapped RTT) instead of one blocking
			// round trip per page.
			if n := pager.CodePages(codeLen); n > 1 {
				indices := make([]uint32, 0, n-1)
				for i := uint32(1); i < n; i++ {
					indices = append(indices, i)
				}
				if _, err := r.codeStore.ReadCodePages(codeHash, indices); err != nil {
					panic(fmt.Errorf("core: code pages of %s: %w", codeHash, err))
				}
				r.recordORAMBatch('c', len(indices))
			}
		} else {
			r.lane.prefetcher.QueueCode(codeHash, codeLen)
		}
		code, err := r.codeMirror.ReadCode(codeHash, codeLen)
		if err != nil {
			panic(fmt.Errorf("core: code mirror %s: %w", codeHash, err))
		}
		r.lane.codeCache[codeHash] = code
		return code
	}
	// Local path: every page is one untrusted-memory move.
	pages := pager.CodePages(codeLen)
	r.lane.clock.Advance(time.Duration(pages) * r.dev.cfg.Calibration.L3SwapPerPage)
	code, err := r.codeStore.ReadCode(codeHash, codeLen)
	if err != nil {
		panic(fmt.Errorf("core: code %s: %w", codeHash, err))
	}
	r.lane.codeCache[codeHash] = code
	return code
}

// newReader wires a reader for the device's feature set, charging the
// given lane's clock and caches.
func (d *Device) newReader(l *laneState) *hvReader {
	r := &hvReader{dev: d, lane: l}
	if d.cfg.Features.ORAMStorage {
		r.kvStore, r.kvORAM = d.oramStore, true
	} else {
		r.kvStore = d.mirror
	}
	if d.cfg.Features.ORAMCode {
		r.codeStore, r.codeORAM = d.oramStore, true
		r.codeMirror = d.mirror
	} else {
		r.codeStore = d.mirror
		r.codeMirror = d.mirror
	}
	return r
}

// lockedReader serializes one lane's world-state queries against the
// device's shared Path ORAM client. Sequential execution holds oramMu
// for a whole bundle (runTxs); parallel lanes instead take it per
// query — the Hypervisor's query serialization point — so lanes
// interleave at ORAM-access granularity.
type lockedReader struct {
	mu    *sync.Mutex
	inner state.Reader
	// acc/tr/sc re-stamp the shared ORAM client's trace attribution
	// under the lock on every query: lanes from different bundles (and
	// traced next to untraced ones) interleave here, so each holder
	// must claim — or clear — the attribution for its own accesses.
	acc oram.Accessor
	tr  *telemetry.Tracer
	sc  telemetry.SpanContext
}

var _ state.Reader = (*lockedReader)(nil)

// stamp installs this lane's trace identity; callers hold r.mu.
func (r *lockedReader) stamp() {
	if r.tr != nil {
		r.acc.SetTrace(r.tr, r.sc)
	}
}

func (r *lockedReader) Account(addr types.Address) (*types.Account, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stamp()
	return r.inner.Account(addr)
}

func (r *lockedReader) Storage(addr types.Address, key types.Hash) types.Hash {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stamp()
	return r.inner.Storage(addr, key)
}

func (r *lockedReader) Code(codeHash types.Hash) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stamp()
	return r.inner.Code(codeHash)
}

// newLaneReader wires the reader a parallel lane executes against.
// With ORAM features the shared client is not concurrent-safe, so each
// query takes oramMu for its duration; the -raw mirror is a plain map
// safe for concurrent reads and needs no lock. sc is the bundle's
// execution span (zero when the bundle is untraced — still stamped, to
// displace a previous holder's attribution).
func (d *Device) newLaneReader(l *laneState, sc telemetry.SpanContext) state.Reader {
	r := d.newReader(l)
	if d.cfg.Features.ORAMStorage || d.cfg.Features.ORAMCode {
		return &lockedReader{
			mu: &d.oramMu, inner: r,
			acc: d.oramClient, tr: d.cfg.Telemetry.Tracer(), sc: sc,
		}
	}
	return r
}
