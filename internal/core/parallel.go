package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hardtape/internal/evm"
	"hardtape/internal/hevm"
	"hardtape/internal/simclock"
	"hardtape/internal/state"
	"hardtape/internal/telemetry"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
)

// maxSpecAttempts bounds how often a lane re-speculates a transaction
// whose read set went stale before handing it to the committer. The
// committer's in-order re-execution is the unconditional backstop, so
// one retry is enough to absorb the common "raced one commit" case
// without burning lane time on hot conflicts.
const maxSpecAttempts = 2

// ParallelStats reports what the optimistic scheduler did for one
// bundle (surfaced on BundleResult and in telemetry).
type ParallelStats struct {
	// Lanes is the number of speculative lanes the bundle ran on.
	Lanes int
	// Speculations counts speculative executions on the lanes,
	// including worker-side retries.
	Speculations int
	// SpecRetries counts worker-side re-speculations after an advisory
	// validation failed.
	SpecRetries int
	// Conflicts counts commit-time validation failures.
	Conflicts int
	// ReExecs counts in-order re-executions on the commit lane (one per
	// conflict — re-execution against the committed prefix is final).
	ReExecs int
	// ReExecTime is the modeled device time spent re-executing.
	ReExecTime time.Duration
	// MaxTxExecs is the most executions any single transaction needed
	// (lane speculations plus the commit-lane re-execution). 3 means
	// some transaction conflicted twice: its retry went stale too, and
	// the committer re-executed it a second time.
	MaxTxExecs int
	// LaneBusy is each lane's modeled busy time.
	LaneBusy []time.Duration
	// Occupancy is mean lane utilization over the parallel phase
	// (1.0 = every lane busy until the last commit).
	Occupancy float64
}

// laneOutcome is one speculated transaction, handed from a worker lane
// to the in-order committer.
type laneOutcome struct {
	res   *evm.ExecutionResult
	trace *tracer.TxTrace
	rs    *state.ReadSet
	ws    *state.WriteSet
	// applyErr is a transaction validation failure (nonce, funds —
	// sequential execution fails the whole bundle on it).
	applyErr error
	// abortErr is a hardware abort (Memory Overflow, L3 tamper).
	abortErr error
	// hardErr is any other error panic out of the execution path,
	// already wrapped like the sequential path wraps it.
	hardErr error
	// bugPanic carries a non-error panic to re-raise on the committer.
	bugPanic any
	attempts int
	// specEnd is the lane-relative virtual time the speculation
	// finished at.
	specEnd time.Duration
}

// failed reports whether the speculation ended in any failure mode.
func (o *laneOutcome) failed() bool {
	return o.applyErr != nil || o.abortErr != nil || o.hardErr != nil
}

// runTxsParallel pre-executes the bundle's transactions optimistically
// in parallel (DESIGN.md §16): transaction i runs speculatively on lane
// i mod N against a versioned view of the bundle's base snapshot,
// recording its read and write sets; the committer walks the bundle in
// order, validates each read set against the committed buffer, commits
// clean write sets, and re-executes conflicting transactions on the
// commit lane — so the resulting traces are byte-identical to
// sequential execution.
//
//hardtape:poolsafe-ok laneOutcome buffers are bundle-scoped, never pooled; the slot channel hand-off in ExecuteContext covers the slot itself
func (d *Device) runTxsParallel(s *slot, blockCtx evm.BlockContext, bundle *types.Bundle, result *BundleResult, xsp *telemetry.TraceSpan) (err error) {
	lanes := s.lanes
	n := len(bundle.Txs)
	v := state.NewVersioned()
	base := s.clock.Now()
	laneClocks := make([]*simclock.Clock, len(lanes))
	for i, l := range lanes {
		laneClocks[i] = l.clock
	}
	ls := simclock.NewLaneSet(base, laneClocks)

	outcomes := make([]*laneOutcome, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// The slot is reset and recycled as soon as executeOn returns, so
	// every worker must be drained before then; stopping first keeps
	// the drain short when the committer bails out early.
	defer wg.Wait()
	defer stop.Store(true)

	for w, l := range lanes {
		wg.Add(1)
		go func(w int, l *laneState) {
			defer wg.Done()
			laneBase := d.newLaneReader(l, xsp.Context())
			for i := w; i < n; i += len(lanes) {
				if stop.Load() {
					close(done[i])
					continue
				}
				outcomes[i] = d.speculate(l, laneBase, v, blockCtx, bundle.Txs[i])
				close(done[i])
			}
		}(w, l)
	}

	// In-order commit. The commit lane (the slot's primary hardware
	// set) validates, commits, and re-executes conflicts; its reader
	// serializes against in-flight lanes per query.
	cal := d.cfg.Calibration
	commitReader := d.newLaneReader(&s.laneState, xsp.Context())
	stats := &ParallelStats{Lanes: len(lanes)}
	result.Parallel = stats
	traces := make([]*tracer.TxTrace, 0, n)
	defer func() {
		result.Trace = &tracer.BundleTrace{Txs: traces}
		phase := s.clock.Now() - base
		for _, l := range lanes {
			busy := l.clock.Now()
			stats.LaneBusy = append(stats.LaneBusy, busy)
			if phase > 0 {
				stats.Occupancy += float64(busy) / (float64(phase) * float64(len(lanes)))
			}
		}
	}()

	for i := 0; i < n; i++ {
		<-done[i]
		out := outcomes[i]
		if out.bugPanic != nil {
			panic(out.bugPanic) // genuine bug, re-raise
		}
		stats.Speculations += out.attempts
		stats.SpecRetries += out.attempts - 1
		execs := out.attempts

		// The committer can act no earlier than the lane finished, and
		// pays a tag compare per read-set entry.
		s.clock.AdvanceTo(ls.Absolute(out.specEnd))
		s.clock.Advance(time.Duration(out.rs.Len()) * cal.LaneValidatePerRead)

		if v.Validate(out.rs) {
			// The speculation saw exactly the committed prefix: its
			// outcome — success or failure — is what sequential
			// execution would produce.
			if out.failed() {
				return d.finishFailed(result, i, out)
			}
			v.Commit(out.ws, commitReader)
			s.clock.Advance(time.Duration(out.ws.Len()) * cal.LaneCommitPerWrite)
			traces = append(traces, out.trace)
			result.GasUsed += out.res.GasUsed
			if execs > stats.MaxTxExecs {
				stats.MaxTxExecs = execs
			}
			continue
		}

		// Conflict: a transaction committed after the speculation began
		// changed something it read. Re-execute in order on the commit
		// lane; against the committed prefix the result is final.
		stats.Conflicts++
		stats.ReExecs++
		execs++
		if execs > stats.MaxTxExecs {
			stats.MaxTxExecs = execs
		}
		// Conflict re-executions are first-class trace spans: a trace of
		// a contended bundle shows exactly which transactions paid the
		// serial re-run (the tx index is its bundle position — public
		// structure, not content).
		var rsp *telemetry.TraceSpan
		if xsp != nil {
			rsp = d.cfg.Telemetry.Tracer().StartSpan("lane.reexec", xsp.Context())
			rsp.AddInt("tx", int64(i))
		}
		span := s.clock.StartSpan()
		re := d.specOnce(&s.laneState, commitReader, v, blockCtx, bundle.Txs[i])
		stats.ReExecTime += span.Elapsed()
		rsp.End()
		if re.bugPanic != nil {
			panic(re.bugPanic)
		}
		if re.failed() {
			return d.finishFailed(result, i, re)
		}
		v.Commit(re.ws, commitReader)
		s.clock.Advance(time.Duration(re.ws.Len()) * cal.LaneCommitPerWrite)
		traces = append(traces, re.trace)
		result.GasUsed += re.res.GasUsed
	}
	return nil
}

// finishFailed maps a validated failure outcome onto the sequential
// path's behaviour: validation failures and non-abort panics fail the
// bundle, hardware aborts end it with Aborted set (earlier transactions
// keep their traces).
func (d *Device) finishFailed(result *BundleResult, i int, out *laneOutcome) error {
	if out.applyErr != nil {
		return fmt.Errorf("core: tx %d: %w", i, out.applyErr)
	}
	if out.abortErr != nil {
		result.Aborted = out.abortErr
		return nil
	}
	return out.hardErr
}

// speculate runs one transaction on a lane, retrying once if an
// advisory validation shows the view went stale mid-flight. The final
// say stays with the committer; the retry only keeps cheap conflicts
// off the serial commit lane.
func (d *Device) speculate(l *laneState, laneBase state.Reader, v *state.Versioned,
	blockCtx evm.BlockContext, tx *types.Transaction) *laneOutcome {
	var out *laneOutcome
	for attempt := 1; attempt <= maxSpecAttempts; attempt++ {
		out = d.specOnce(l, laneBase, v, blockCtx, tx)
		out.attempts = attempt
		if out.bugPanic != nil {
			break
		}
		l.clock.Advance(time.Duration(out.rs.Len()) * d.cfg.Calibration.LaneValidatePerRead)
		if v.Validate(out.rs) {
			break
		}
	}
	out.specEnd = l.clock.Now()
	return out
}

// specOnce executes one transaction on the given lane against a fresh
// versioned overlay and returns its outcome with read/write sets. Both
// speculative lanes and the committer's re-execution path run through
// here; they differ only in the reader and in whether the outcome is
// validated afterwards.
func (d *Device) specOnce(l *laneState, laneBase state.Reader, v *state.Versioned,
	blockCtx evm.BlockContext, tx *types.Transaction) (out *laneOutcome) {
	out = &laneOutcome{}
	txo := state.NewTxOverlay(v, laneBase)
	e := evm.New(blockCtx, txo)
	ttr := tracer.New(d.cfg.CaptureSteps)
	e.Hooks = evm.CombineHooks(ttr.Hooks(), l.machine.Hooks())
	if d.tm.enabled {
		e.Hooks = evm.CombineHooks(e.Hooks, l.opCounts.Hooks())
	}
	defer func() {
		if r := recover(); r != nil {
			rErr, ok := r.(error)
			if !ok {
				out.bugPanic = r
				return
			}
			var moe *hevm.MemoryOverflowError
			switch {
			case errors.As(rErr, &moe), errors.Is(rErr, hevm.ErrL3Tampered):
				out.abortErr = rErr
			default:
				out.hardErr = fmt.Errorf("%w: %v", ErrAborted, rErr)
			}
			// The read set decides whether this failure is authoritative
			// (the sequential execution would have hit it too) or an
			// artifact of a stale view.
			out.rs, _ = txo.Finish()
		}
	}()
	ttr.BeginTx(tx.Hash())
	res, applyErr := e.ApplyTransaction(tx)
	if applyErr != nil {
		out.applyErr = applyErr
		out.rs, _ = txo.Finish()
		return out
	}
	out.res = res
	out.trace = ttr.EndTx(res)
	out.rs, out.ws = txo.Finish()
	return out
}
