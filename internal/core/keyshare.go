package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"

	"hardtape/internal/attest"
)

// Paper §IV-D, "ORAM key protection": the SP runs one ORAM server for
// multiple HarDTAPE instances; because every ORAM client lives inside
// a trusted Hypervisor, the devices share one ORAM key. "The key is
// chosen randomly by the first HarDTAPE Hypervisor when deployed.
// When adding a new HarDTAPE device, it queries the ORAM key from a
// previous device through a DHKE secure channel." This file implements
// that transfer: the requesting device plays the verifier role of the
// attestation protocol against the provider (same chain of trust users
// rely on), and the key crosses the wire AES-GCM-sealed under the
// DHKE session key.
//
// Each device still maintains its own on-chip stash, position map, and
// page dictionary (per Path ORAM's client-side state); the shared key
// is what lets them decrypt the same tree. NOTE: the paper does not
// specify how concurrently-writing devices coordinate their position
// maps — with independent maps, one device's path rewrites relocate
// blocks the other still expects on old paths. We therefore support
// (and test) the sound deployment: one writing device per tree region
// at a time, with the key hand-off enabling a replacement or scale-out
// device to take over the shared server.

// ErrNoORAMKey is returned when the provider has no ORAM configured.
var ErrNoORAMKey = errors.New("core: device has no ORAM key to share")

// ORAMKeyOffer is the provider's sealed key response.
type ORAMKeyOffer struct {
	Report attest.Report
	// Sealed is nonce||AES-GCM(sessionKey, oramKey).
	Sealed []byte
}

// OfferORAMKey produces the provider side of the transfer: it attests
// itself against the requester's nonce and, once the requester's DHKE
// public key arrives, seals the ORAM key under the session key.
// The two-step shape mirrors the user attestation flow.
func (d *Device) OfferORAMKey(nonce [32]byte) (*ORAMKeyOffer, func(requesterPub []byte) ([]byte, error), error) {
	d.mu.Lock()
	key := append([]byte(nil), d.oramKey...)
	d.mu.Unlock()
	if len(key) == 0 {
		return nil, nil, ErrNoORAMKey
	}
	report, complete, err := d.booted.Attest(nonce)
	if err != nil {
		return nil, nil, err
	}
	offer := &ORAMKeyOffer{Report: *report}
	finish := func(requesterPub []byte) ([]byte, error) {
		session, err := complete(requesterPub)
		if err != nil {
			return nil, err
		}
		return sealKey(session.Key, key)
	}
	return offer, finish, nil
}

// RequestORAMKey runs the requester side end to end against an
// in-process provider (the cmd binaries wire the same exchange over
// the channel protocol): verify the provider's attestation, complete
// DHKE, and unseal the ORAM key.
func RequestORAMKey(provider *Device, verifier *attest.Verifier) ([]byte, error) {
	nonce, err := verifier.NewNonce()
	if err != nil {
		return nil, err
	}
	offer, finish, err := provider.OfferORAMKey(nonce)
	if err != nil {
		return nil, err
	}
	session, requesterPub, err := verifier.Verify(&offer.Report, nonce)
	if err != nil {
		return nil, fmt.Errorf("core: provider attestation failed: %w", err)
	}
	sealed, err := finish(requesterPub)
	if err != nil {
		return nil, err
	}
	return openKey(session.Key, sealed)
}

func sealKey(sessionKey [32]byte, oramKey []byte) ([]byte, error) {
	blk, err := aes.NewCipher(sessionKey[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return append(nonce, aead.Seal(nil, nonce, oramKey, []byte("oram-key-v1"))...), nil
}

func openKey(sessionKey [32]byte, sealed []byte) ([]byte, error) {
	blk, err := aes.NewCipher(sessionKey[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, errors.New("core: sealed key too short")
	}
	key, err := aead.Open(nil, sealed[:aead.NonceSize()], sealed[aead.NonceSize():], []byte("oram-key-v1"))
	if err != nil {
		return nil, fmt.Errorf("core: key transfer authentication failed: %w", err)
	}
	return key, nil
}
