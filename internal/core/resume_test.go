package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/session"
)

// serveOnce runs the service side of one connection in the background.
func (sr *serviceRig) serveOnce(t testing.TB) (client net.Conn) {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close() })
	go func() {
		defer server.Close()
		_ = sr.svc.ServeConn(server)
	}()
	return client
}

// dialCold establishes a full attested session (sign=false so a later
// resume is permitted) and returns the client.
func (sr *serviceRig) dialCold(t testing.TB) *Client {
	t.Helper()
	c, err := Dial(sr.serveOnce(t), sr.verifier(), false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// copyTicket deep-copies a client ticket so a test can present the same
// wire bytes twice (the real client API consumes tickets single-use).
func copyTicket(ct *session.ClientTicket) *session.ClientTicket {
	cp := *ct
	cp.Opaque = append([]byte(nil), ct.Opaque...)
	return &cp
}

func TestResumeWarmSessionZeroAsymOps(t *testing.T) {
	sr := buildServiceRig(t, ConfigE)

	cold := sr.dialCold(t)
	if cold.Warm() {
		t.Fatal("cold dial reported warm")
	}
	bundle := sr.transferBundle(t, 77)
	coldRes, err := cold.PreExecute(bundle)
	if err != nil {
		t.Fatal(err)
	}
	ticket := cold.Ticket()
	if ticket == nil {
		t.Fatal("cold session minted no ticket")
	}
	if cold.Ticket() != nil {
		t.Fatal("Ticket must be single-use (detach)")
	}
	cold.Close()

	// The warm handshake plus a bundle must perform ZERO asymmetric
	// operations on either side — that is the subsystem's entire point.
	before := attest.AsymOps()
	warm, err := Resume(sr.serveOnce(t), ticket)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm() {
		t.Fatal("resumed client not marked warm")
	}
	if warm.SessionID() == cold.SessionID() {
		t.Fatal("resume must mint a fresh session id")
	}
	warmRes, err := warm.PreExecute(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if ops := attest.AsymOps() - before; ops != 0 {
		t.Fatalf("warm resume + bundle performed %d asymmetric ops, want 0", ops)
	}

	// Pre-execution is stateless, so the cold and warm sessions must
	// produce byte-identical traces for the same bundle.
	if !bytes.Equal(gobEncode(coldRes.Trace), gobEncode(warmRes.Trace)) {
		t.Fatal("cold and warm execution traces differ")
	}

	// The rotated ticket chains: a second resume works too.
	next := warm.Ticket()
	if next == nil {
		t.Fatal("warm session minted no successor ticket")
	}
	warm.Close()
	warm2, err := Resume(sr.serveOnce(t), next)
	if err != nil {
		t.Fatalf("second-generation resume: %v", err)
	}
	if _, err := warm2.PreExecute(sr.transferBundleFrom(t, 3, 9)); err != nil {
		t.Fatal(err)
	}
	warm2.Close()
}

func TestResumeReplayedTicketFailsClosed(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	cold := sr.dialCold(t)
	ticket := cold.Ticket()
	cold.Close()
	replay := copyTicket(ticket)

	warm, err := Resume(sr.serveOnce(t), ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	if _, err := Resume(sr.serveOnce(t), replay); !errors.Is(err, session.ErrTicketReplayed) {
		t.Fatalf("replayed ticket: got %v, want ErrTicketReplayed", err)
	}
}

func TestResumeTamperedTicketFailsClosed(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	cold := sr.dialCold(t)
	ticket := cold.Ticket()
	cold.Close()

	ticket.Opaque[len(ticket.Opaque)/2] ^= 0x01
	if _, err := Resume(sr.serveOnce(t), ticket); !errors.Is(err, session.ErrTicketTampered) {
		t.Fatalf("tampered ticket: got %v, want ErrTicketTampered", err)
	}
}

func TestResumeExpiredTicketFailsClosed(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	clk := session.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if err := sr.svc.SetSessionPolicy(clk, 2, nil); err != nil {
		t.Fatal(err)
	}
	cold := sr.dialCold(t)
	ticket := cold.Ticket()
	cold.Close()

	clk.AdvanceEpochs(3)
	if _, err := Resume(sr.serveOnce(t), ticket); !errors.Is(err, session.ErrTicketExpired) {
		t.Fatalf("expired ticket: got %v, want ErrTicketExpired", err)
	}
}

func TestResumeMeasurementChangeFailsClosed(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)
	issuer := sr.svc.SessionIssuer()
	serial := sr.device.Booted().Serial()

	mint := func(serial string, measurement [32]byte) *session.ClientTicket {
		st := &session.State{SessionID: 9999, Serial: serial, Measurement: measurement}
		if _, err := rand.Read(st.PSK[:]); err != nil {
			t.Fatal(err)
		}
		wire, err := issuer.Issue(st)
		if err != nil {
			t.Fatal(err)
		}
		return &session.ClientTicket{
			Opaque: wire, PSK: st.PSK, SessionID: st.SessionID,
			Serial: st.Serial, Measurement: st.Measurement, ExpiryEpoch: st.ExpiryEpoch,
		}
	}

	// Right identity, wrong image measurement: the device re-flashed
	// since the ticket was minted. Must fail closed, typed.
	var wrongImage [32]byte
	wrongImage[0] = 0xEE
	if _, err := Resume(sr.serveOnce(t), mint(serial, wrongImage)); !errors.Is(err, session.ErrMeasurementChanged) {
		t.Fatalf("changed measurement: got %v, want ErrMeasurementChanged", err)
	}

	// Wrong identity under the right measurement fails the same way.
	if _, err := Resume(sr.serveOnce(t), mint("HT-IMPOSTOR", ImageMeasurement())); !errors.Is(err, session.ErrMeasurementChanged) {
		t.Fatalf("wrong serial: got %v, want ErrMeasurementChanged", err)
	}
}

func TestResumeNilAndEmptyTickets(t *testing.T) {
	if _, err := Resume(nil, nil); !errors.Is(err, session.ErrResumeRejected) {
		t.Fatalf("nil ticket: got %v, want ErrResumeRejected", err)
	}
	if _, err := Resume(nil, &session.ClientTicket{}); !errors.Is(err, session.ErrResumeRejected) {
		t.Fatalf("empty ticket: got %v, want ErrResumeRejected", err)
	}
}

func TestResumeBypassesAdmission(t *testing.T) {
	sr := buildServiceRig(t, ConfigRaw)

	cold := sr.dialCold(t)
	ticket := cold.Ticket()
	cold.Close()

	// Fill the cold-handshake gate completely: any cold dial would now
	// queue. A warm resume must sail through regardless.
	adm := session.NewAdmission(1)
	adm.Acquire()
	sr.svc.SetAdmission(adm)

	warm, err := Resume(sr.serveOnce(t), ticket)
	if err != nil {
		t.Fatalf("resume blocked by admission gate: %v", err)
	}
	if _, err := warm.PreExecute(sr.transferBundle(t, 5)); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	if adm.Waits() != 0 {
		t.Fatal("resume queued on the cold-handshake gate")
	}
	adm.Release()
}

func TestResumeConcurrentMuxBundles(t *testing.T) {
	sr := buildServiceRig(t, ConfigE)
	cold := sr.dialCold(t)
	ticket := cold.Ticket()
	cold.Close()

	warm, err := Resume(sr.serveOnce(t), ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	// Interleave bundles and status probes on the one multiplexed
	// session from many goroutines (run under -race in CI). Each bundle
	// uses a distinct sender so the canonical nonce stays valid.
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := warm.PreExecute(sr.transferBundleFrom(t, w, uint64(100+w)))
			if err != nil {
				errs <- err
				return
			}
			if len(res.Trace.Txs) != 1 || res.Trace.Txs[0].Reverted {
				errs <- errors.New("bundle trace wrong under concurrency")
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := warm.Status(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
