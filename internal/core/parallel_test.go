package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hardtape/internal/node"
	"hardtape/internal/state"
	"hardtape/internal/telemetry"
	"hardtape/internal/tracer"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// parallelRig wires one world behind two devices: a sequential
// reference and an optimistic-parallel unit under test.
type parallelRig struct {
	world *workload.World
	chain *node.Node
	seq   *Device
	par   *Device
}

func buildParallelRig(t testing.TB, features Features, lanes int, captureSteps bool) *parallelRig {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 16
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(lanes int) *Device {
		cfg := DefaultConfig()
		cfg.Features = features
		cfg.HEVMs = 1
		cfg.Lanes = lanes
		cfg.CaptureSteps = captureSteps
		dev, err := NewDevice(cfg, nil, chain)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Sync(); err != nil {
			t.Fatal(err)
		}
		return dev
	}
	return &parallelRig{world: w, chain: chain, seq: mk(0), par: mk(lanes)}
}

// nonceChainBundle is n transactions from ONE sender at consecutive
// nonces — every speculation past the first either fails its nonce
// check or reads a stale nonce, so the scheduler must fall back to
// in-order re-execution for the whole chain.
func nonceChainBundle(t testing.TB, w *workload.World, n int) *types.Bundle {
	t.Helper()
	sender := w.EOAs[0]
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		to := types.BytesToAddress([]byte{0xab, byte(i)})
		tx, err := w.SignedTxAt(sender, uint64(i), &to, uint64(10+i), nil, 40_000)
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return &types.Bundle{Txs: txs}
}

// uniformBundle is n equal-cost, pairwise conflict-free arithmetic-loop
// calls from distinct senders to one compute-only contract — the
// balanced workload for modeled lane-speedup assertions.
func uniformBundle(t testing.TB, w *workload.World, n int) *types.Bundle {
	t.Helper()
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		to := w.ArithLoop
		tx, err := w.SignedTxAt(w.EOAs[i], 0, &to, 0, workload.CalldataUint(2000), 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return &types.Bundle{Txs: txs}
}

func assertTraceParity(t *testing.T, name string, seq, par *BundleResult) {
	t.Helper()
	if (seq.Aborted == nil) != (par.Aborted == nil) {
		t.Fatalf("%s: abort mismatch: seq=%v par=%v", name, seq.Aborted, par.Aborted)
	}
	if seq.GasUsed != par.GasUsed {
		t.Errorf("%s: gas mismatch: seq=%d par=%d", name, seq.GasUsed, par.GasUsed)
	}
	if len(seq.Trace.Txs) != len(par.Trace.Txs) {
		t.Fatalf("%s: trace length mismatch: seq=%d par=%d", name, len(seq.Trace.Txs), len(par.Trace.Txs))
	}
	for i := range seq.Trace.Txs {
		if diffs := tracer.Diff(seq.Trace.Txs[i], par.Trace.Txs[i]); len(diffs) > 0 {
			t.Errorf("%s: tx %d diverges: %v", name, i, diffs)
		}
		if !reflect.DeepEqual(seq.Trace.Txs[i], par.Trace.Txs[i]) {
			t.Errorf("%s: tx %d traces not byte-identical", name, i)
		}
	}
}

// TestParallelTraceParity is the tentpole's hard correctness bar:
// byte-identical traces vs sequential execution across the evaluation
// workloads, including the high-conflict MEV scenario, write-after-
// write on one slot, reads racing aborted speculations, and a nonce
// chain that re-executes every transaction.
func TestParallelTraceParity(t *testing.T) {
	r := buildParallelRig(t, ConfigFull, 4, true)

	bundles := map[string]*types.Bundle{}
	mev, err := r.world.MEVBundle(12, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bundles["mev-hot"] = mev
	mixed, err := r.world.MEVBundle(12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bundles["mev-mixed"] = mixed
	free, err := r.world.ConflictFreeBundle(12)
	if err != nil {
		t.Fatal(err)
	}
	bundles["conflict-free"] = free
	bundles["nonce-chain"] = nonceChainBundle(t, r.world, 6)

	for name, b := range bundles {
		seq, err := r.seq.Execute(b)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		par, err := r.par.Execute(b)
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		assertTraceParity(t, name, seq, par)
		if par.Parallel == nil {
			t.Fatalf("%s: parallel run reported no scheduler stats", name)
		}
		if seq.Parallel != nil {
			t.Fatalf("%s: sequential run reported scheduler stats", name)
		}
	}
}

// TestParallelEvalSetParity sweeps the generator's archetype mix as
// single- and multi-tx bundles through both devices.
func TestParallelEvalSetParity(t *testing.T) {
	r := buildParallelRig(t, ConfigFull, 4, true)
	r.world.SyncNonces(r.chain.State())
	for i := 0; i < 6; i++ {
		var txs []*types.Transaction
		for j := 0; j < 4; j++ {
			tx, _, err := r.world.GenerateTx()
			if err != nil {
				t.Fatal(err)
			}
			txs = append(txs, tx)
		}
		b := &types.Bundle{Txs: txs}
		seq, err := r.seq.Execute(b)
		if err != nil {
			t.Fatalf("bundle %d: sequential: %v", i, err)
		}
		par, err := r.par.Execute(b)
		if err != nil {
			t.Fatalf("bundle %d: parallel: %v", i, err)
		}
		assertTraceParity(t, fmt.Sprintf("eval-%d", i), seq, par)
		// The generator threads nonces across bundles; re-anchor so the
		// next bundle stays valid against the pinned canonical state.
		r.world.SyncNonces(r.chain.State())
	}
}

// TestParallelSchedulerStats checks the scheduler's accounting
// identities and that the high-conflict workload actually produces
// conflict-driven re-executions.
func TestParallelSchedulerStats(t *testing.T) {
	r := buildParallelRig(t, ConfigFull, 4, false)
	mev, err := r.world.MEVBundle(12, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.par.Execute(mev)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Parallel
	if p == nil {
		t.Fatal("no scheduler stats")
	}
	if p.Lanes != 4 {
		t.Fatalf("lanes = %d", p.Lanes)
	}
	if p.Conflicts != p.ReExecs {
		t.Fatalf("conflicts %d != re-execs %d (every conflict re-executes exactly once)", p.Conflicts, p.ReExecs)
	}
	if p.Speculations != len(mev.Txs)+p.SpecRetries {
		t.Fatalf("speculations %d != txs %d + retries %d", p.Speculations, len(mev.Txs), p.SpecRetries)
	}
	if p.Conflicts == 0 && p.SpecRetries == 0 {
		t.Fatal("12 transactions hammering one pool produced no staleness at all")
	}
	if p.MaxTxExecs < 1 || p.MaxTxExecs > maxSpecAttempts+1 {
		t.Fatalf("MaxTxExecs = %d outside [1, %d]", p.MaxTxExecs, maxSpecAttempts+1)
	}
	if p.ReExecs > 0 && p.ReExecTime <= 0 {
		t.Fatal("re-executions charged no virtual time")
	}
	if len(p.LaneBusy) != 4 {
		t.Fatalf("lane busy entries = %d", len(p.LaneBusy))
	}
	if p.Occupancy <= 0 || p.Occupancy > 1 {
		t.Fatalf("occupancy = %v", p.Occupancy)
	}
	if res.VirtualTime <= 0 {
		t.Fatal("no virtual time")
	}
}

// TestParallelWriteAfterWriteSameSlot pins the write-after-write edge
// case end to end: every transaction writes the SAME storage slots
// (one DEX pool's reserves), so each commit must supersede the
// previous write, in bundle order, with traces identical to the
// sequential device. (The state-layer half of this edge case is
// TestVersionedWriteAfterWrite.)
func TestParallelWriteAfterWriteSameSlot(t *testing.T) {
	r := buildParallelRig(t, ConfigFull, 2, true)
	for _, n := range []int{2, 6} {
		b, err := r.world.MEVBundle(n, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := r.seq.Execute(b)
		if err != nil {
			t.Fatal(err)
		}
		par, err := r.par.Execute(b)
		if err != nil {
			t.Fatal(err)
		}
		assertTraceParity(t, fmt.Sprintf("waw-%d", n), seq, par)
	}
}

// TestParallelReadAfterRevertedWrite: transaction 0 starts the same
// swap but runs out of gas mid-execution, so its speculative storage
// writes are discarded; transaction 1 swaps the same pool and must
// read the ORIGINAL reserves, not the aborted transaction's. Byte
// parity with the sequential device proves no leakage. (The
// state-layer half is TestVersionedAbortedWritesInvisible.)
func TestParallelReadAfterRevertedWrite(t *testing.T) {
	r := buildParallelRig(t, ConfigFull, 2, true)
	pool := r.world.DEXes[0]
	oog, err := r.world.SignedTxAt(r.world.EOAs[0], 0, &pool, 0,
		workload.CalldataSwap(5000), 30_000)
	if err != nil {
		t.Fatal(err)
	}
	swap, err := r.world.SignedTxAt(r.world.EOAs[1], 0, &pool, 0,
		workload.CalldataSwap(6000), 300_000)
	if err != nil {
		t.Fatal(err)
	}
	b := &types.Bundle{Txs: []*types.Transaction{oog, swap}}
	seq, err := r.seq.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	par, err := r.par.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	assertTraceParity(t, "reverted-write", seq, par)
}

// TestParallelConflictTwiceReexecutesTwice walks one transaction
// through the scheduler's full abort/retry ladder deterministically:
// its first speculation is invalidated by a competing commit
// (conflict 1 → the worker-retry re-execution), the retry is
// invalidated by another commit (conflict 2 → the commit-lane
// re-execution), and the third execution — against the quiesced
// committed prefix — validates and commits. Uses the same specOnce /
// Validate / Commit primitives the worker and committer run. (The
// state-layer half is TestVersionedDoubleConflict.)
func TestParallelConflictTwiceReexecutesTwice(t *testing.T) {
	r := buildParallelRig(t, ConfigRaw, 2, false)
	d := r.par
	s := <-d.slots
	s.reset()
	defer func() { s.reset(); d.slots <- s }()
	head := d.chain.Head()
	blockCtx := workload.NewBlockContext(&head.Header)
	blockCtx.BlockHash = d.chain.BlockHash

	pool := r.world.DEXes[0]
	mkSwap := func(i int) *types.Transaction {
		tx, err := r.world.SignedTxAt(r.world.EOAs[i], 0, &pool, 0,
			workload.CalldataSwap(uint64(1000+i)), 300_000)
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	v := state.NewVersioned()
	reader := d.newLaneReader(&s.laneState, telemetry.SpanContext{})
	run := func(i int) *laneOutcome {
		out := d.specOnce(&s.laneState, reader, v, blockCtx, mkSwap(i))
		if out.failed() {
			t.Fatalf("swap %d failed: %v %v %v", i, out.applyErr, out.abortErr, out.hardErr)
		}
		return out
	}

	victim := run(0) // speculation: reads the pool's base reserves
	v.Commit(run(1).ws, reader)
	if v.Validate(victim.rs) {
		t.Fatal("conflict 1 not detected after a competing swap committed")
	}
	victim = run(0) // re-execution 1 (the worker retry)
	v.Commit(run(2).ws, reader)
	if v.Validate(victim.rs) {
		t.Fatal("conflict 2 not detected after a second competing commit")
	}
	victim = run(0) // re-execution 2 (the commit lane); final
	if !v.Validate(victim.rs) {
		t.Fatal("final re-execution against the quiesced prefix must validate")
	}
	v.Commit(victim.ws, reader)
}

// TestParallelModeledSpeedup is the acceptance bar: on a conflict-free
// bundle, 4 lanes must model at least a 3x virtual-time speedup over
// sequential execution on the same workload.
func TestParallelModeledSpeedup(t *testing.T) {
	r := buildParallelRig(t, ConfigRaw, 4, false)
	b := uniformBundle(t, r.world, 16)
	seq, err := r.seq.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	par, err := r.par.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	if par.Parallel.Conflicts != 0 {
		t.Fatalf("conflict-free bundle reported %d conflicts", par.Parallel.Conflicts)
	}
	speedup := float64(seq.VirtualTime) / float64(par.VirtualTime)
	if speedup < 3.0 {
		t.Fatalf("modeled speedup %.2fx < 3x (seq=%v par=%v)", speedup, seq.VirtualTime, par.VirtualTime)
	}
	t.Logf("modeled speedup at 4 lanes: %.2fx (seq=%v par=%v occupancy=%.2f)",
		speedup, seq.VirtualTime, par.VirtualTime, par.Parallel.Occupancy)
}

// TestParallelConcurrentBundles drives the parallel scheduler from
// several goroutines at once (multiple slots, shared ORAM client) —
// the -race target for the scheduler's hand-offs.
func TestParallelConcurrentBundles(t *testing.T) {
	r := buildParallelRig(t, ConfigFull, 3, false)
	mev, err := r.world.MEVBundle(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	free, err := r.world.ConflictFreeBundle(10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.seq.Execute(mev)
	if err != nil {
		t.Fatal(err)
	}
	wantFree, err := r.seq.Execute(free)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, ref := mev, want
			if i%2 == 1 {
				b, ref = free, wantFree
			}
			res, err := r.par.Execute(b)
			if err != nil {
				errs <- err
				return
			}
			if res.GasUsed != ref.GasUsed {
				errs <- fmt.Errorf("run %d: gas %d != %d", i, res.GasUsed, ref.GasUsed)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
