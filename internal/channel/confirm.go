package channel

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
)

// Key confirmation closes the handshake gap the key-exchange message
// leaves open: the DHKE completion is plaintext, so before the bundle
// loop starts each side should prove it actually derived the same
// session key. Without this, a tampered exchange is only discovered
// later, as an unattributable AEAD failure on the first payload.
//
// The tag is HMAC-SHA256 over a domain label, the session id, and the
// sender's role; binding the role prevents reflecting a peer's own
// tag back at it.

// ConfirmTagSize is the length of a key-confirmation tag.
const ConfirmTagSize = 32

// ErrBadConfirmTag reports a failed session-key confirmation: the
// peer does not hold the negotiated key.
var ErrBadConfirmTag = errors.New("channel: session-key confirmation failed")

// ConfirmTag derives the key-confirmation tag the role side sends
// after key exchange (role is "user" or "device").
func ConfirmTag(key [32]byte, sessionID uint64, role string) [ConfirmTagSize]byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte("hardtape-confirm-v1"))
	var sid [8]byte
	binary.BigEndian.PutUint64(sid[:], sessionID)
	mac.Write(sid[:])
	mac.Write([]byte(role))
	var tag [ConfirmTagSize]byte
	copy(tag[:], mac.Sum(nil))
	return tag
}

// VerifyConfirmTag checks a peer's confirmation tag in constant time.
func VerifyConfirmTag(key [32]byte, sessionID uint64, role string, tag []byte) error {
	want := ConfirmTag(key, sessionID, role)
	if subtle.ConstantTimeCompare(want[:], tag) != 1 {
		return ErrBadConfirmTag
	}
	return nil
}
