package channel

import "fmt"

// Trace-context propagation: the wire encoding that lets one trace
// follow a bundle across the secure channel into another process. The
// context rides INSIDE the sealed payload (see session's mux framing),
// never in the cleartext header — trace ids are correlation handles,
// not secrets, but the fixed 32-byte header is part of the attested
// handshake transcript and stays untouched; keeping the context under
// the AEAD also means an on-path attacker cannot splice requests
// across traces.

// TraceContextSize is the wire length of a propagated trace context:
// a 128-bit trace id followed by the 64-bit id of the sending span.
const TraceContextSize = 24

// TraceContext is the propagated identity of the caller's span. Raw
// byte arrays, not telemetry types: the channel layer defines the wire
// format and stays dependency-free; internal/core converts.
type TraceContext struct {
	Trace [16]byte
	Span  [8]byte
}

// Valid reports whether the context names a real span.
func (tc TraceContext) Valid() bool {
	return tc.Trace != [16]byte{} && tc.Span != [8]byte{}
}

// AppendTraceContext appends the 24-byte encoding to dst.
func AppendTraceContext(dst []byte, tc TraceContext) []byte {
	dst = append(dst, tc.Trace[:]...)
	return append(dst, tc.Span[:]...)
}

// ParseTraceContext splits a trace context off the front of b,
// returning the remainder.
func ParseTraceContext(b []byte) (tc TraceContext, rest []byte, err error) {
	if len(b) < TraceContextSize {
		return TraceContext{}, nil, fmt.Errorf("channel: short trace context (%d bytes)", len(b))
	}
	copy(tc.Trace[:], b[:16])
	copy(tc.Span[:], b[16:24])
	return tc, b[TraceContextSize:], nil
}
