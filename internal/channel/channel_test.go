package channel

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"net"
	"testing"
	"testing/quick"
)

func sessionKey() [32]byte {
	var k [32]byte
	for i := range k {
		k[i] = byte(i)
	}
	return k
}

// pair builds two channels sharing a session key (user side + device
// side).
func pair(t testing.TB) (*SecureChannel, *SecureChannel) {
	t.Helper()
	a, err := NewSecureChannel(sessionKey(), 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecureChannel(sessionKey(), 77)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: MsgBundle, Flags: FlagEncrypted, Session: 9, Seq: 42, Length: 100}
	raw := h.Marshal()
	back, err := ParseHeader(raw[:])
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != MsgBundle || back.Session != 9 || back.Seq != 42 || back.Length != 100 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestHeaderValidation(t *testing.T) {
	good := (&Header{Type: MsgTrace, Length: 1}).Marshal()

	short := make([]byte, 16)
	if _, err := ParseHeader(short); !errors.Is(err, ErrBadHeader) {
		t.Errorf("short: %v", err)
	}
	badMagic := good
	badMagic[0] = 0x00
	if _, err := ParseHeader(badMagic[:]); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	badVersion := good
	badVersion[2] = 9
	if _, err := ParseHeader(badVersion[:]); !errors.Is(err, ErrBadHeader) {
		t.Errorf("version: %v", err)
	}
	badType := good
	badType[3] = 0xff
	if _, err := ParseHeader(badType[:]); !errors.Is(err, ErrBadHeader) {
		t.Errorf("type: %v", err)
	}
	tooBig := (&Header{Type: MsgTrace, Length: MaxPayload + 1}).Marshal()
	if _, err := ParseHeader(tooBig[:]); !errors.Is(err, ErrTooLarge) {
		t.Errorf("too large: %v", err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	a, b := pair(t)
	payload := []byte("pre-execution bundle payload")
	msg, err := a.Seal(MsgBundle, payload)
	if err != nil {
		t.Fatal(err)
	}
	h, pt, err := b.Open(msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgBundle || !bytes.Equal(pt, payload) {
		t.Fatalf("open: %+v %q", h, pt)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	a, b := pair(t)
	msg, err := a.Seal(MsgBundle, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	msg[len(msg)-1] ^= 0x01
	if _, _, err := b.Open(msg); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("tampered: %v", err)
	}
}

func TestOpenRejectsReplay(t *testing.T) {
	a, b := pair(t)
	msg, err := a.Seal(MsgBundle, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Open(msg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Open(msg); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: %v", err)
	}
}

func TestOpenRejectsWrongSession(t *testing.T) {
	a, err := NewSecureChannel(sessionKey(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecureChannel(sessionKey(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := a.Seal(MsgBundle, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Open(msg); err == nil {
		t.Fatal("cross-session message accepted")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	a, _ := pair(t)
	other := sessionKey()
	other[0] ^= 0xff
	b, err := NewSecureChannel(other, 77)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := a.Seal(MsgBundle, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Open(msg); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestSignedMessages(t *testing.T) {
	aKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pair(t)
	a.EnableSigning(aKey, &bKey.PublicKey)
	b.EnableSigning(bKey, &aKey.PublicKey)

	msg, err := a.Seal(MsgTrace, []byte("signed trace"))
	if err != nil {
		t.Fatal(err)
	}
	_, pt, err := b.Open(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "signed trace" {
		t.Fatalf("payload: %q", pt)
	}

	// Signature by the wrong key is rejected.
	evilKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	evil, err := NewSecureChannel(sessionKey(), 77)
	if err != nil {
		t.Fatal(err)
	}
	evil.EnableSigning(evilKey, &bKey.PublicKey)
	msg2, err := evil.Seal(MsgTrace, []byte("forged"))
	if err != nil {
		t.Fatal(err)
	}
	// Receiver b expects signatures from aKey.
	b2, err := NewSecureChannel(sessionKey(), 77)
	if err != nil {
		t.Fatal(err)
	}
	b2.EnableSigning(bKey, &aKey.PublicKey)
	if _, _, err := b2.Open(msg2); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged signature: %v", err)
	}
}

func TestStreamFraming(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	a, b := pair(t)
	go func() {
		msg, err := a.Seal(MsgBundle, []byte("over the wire"))
		if err == nil {
			_ = WriteMessage(client, msg)
		}
	}()
	raw, err := ReadMessage(server)
	if err != nil {
		t.Fatal(err)
	}
	_, pt, err := b.Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "over the wire" {
		t.Fatalf("payload: %q", pt)
	}
}

func TestPayloadSizeLimit(t *testing.T) {
	a, _ := pair(t)
	if _, err := a.Seal(MsgBundle, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize seal: %v", err)
	}
}

// Property: seal/open round-trips arbitrary payloads in sequence.
func TestQuickSealOpen(t *testing.T) {
	a, b := pair(t)
	f := func(payload []byte) bool {
		msg, err := a.Seal(MsgORAMRead, payload)
		if err != nil {
			return false
		}
		_, pt, err := b.Open(msg)
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(pt) == 0
		}
		return bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSealOpen1KB(b *testing.B) {
	a, bb := pair(b)
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg, err := a.Seal(MsgORAMRead, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := bb.Open(msg); err != nil {
			b.Fatal(err)
		}
	}
}
