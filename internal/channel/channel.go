// Package channel implements HarDTAPE's protected message protocol
// (paper §IV-C): every datum crossing the trusted-untrusted border
// travels in a message with a fixed 32-byte header — the only part
// the Hypervisor parses — followed by a payload handled entirely by
// the authenticated-encryption DMA (here, real AES-GCM). The fixed
// header is the control-flow-integrity argument of §V(A3): the
// Hypervisor never buffers attacker-sized input in its own memory.
package channel

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// HeaderSize is the fixed message header length (paper: 32 bytes).
const HeaderSize = 32

// MaxPayload bounds a message payload (16 MB), checked before any DMA.
const MaxPayload = 16 << 20

// MsgType labels the message purpose.
type MsgType uint8

// Message types crossing the border.
const (
	MsgAttestRequest MsgType = iota + 1
	MsgAttestReport
	MsgKeyExchange
	MsgBundle
	MsgTrace
	MsgError
	MsgORAMRead
	MsgORAMWrite
	MsgBlockSync
	// MsgStatus probes live device occupancy (free HEVM slots) inside
	// an established session — schedulers use it for health checks.
	MsgStatus
	// Session-resumption handshake (internal/session). The request,
	// accept, and reject legs travel in plaintext — they carry only the
	// opaque ticket, rekey nonces, and key-confirmation tags, none of
	// which is confidential — while confirm and ticket-issue ride the
	// freshly rekeyed secure channel.
	MsgResumeRequest
	MsgResumeAccept
	MsgResumeReject
	MsgResumeConfirm
	// MsgTicketIssue delivers a (rotated) resumption ticket over the
	// established channel at the end of a cold or warm handshake.
	MsgTicketIssue
	// MsgMux / MsgMuxReply carry multiplexed request-id-framed exchanges
	// — many interleaved bundles on one connection.
	MsgMux
	MsgMuxReply
)

// Flags.
const (
	// FlagEncrypted marks AES-GCM payload protection.
	FlagEncrypted uint8 = 1 << iota
	// FlagSigned marks an appended ECDSA signature (the -ES config).
	FlagSigned
)

// Errors.
var (
	ErrBadHeader    = errors.New("channel: malformed header")
	ErrBadMagic     = errors.New("channel: bad magic")
	ErrTooLarge     = errors.New("channel: payload exceeds limit")
	ErrAuthFailed   = errors.New("channel: payload authentication failed")
	ErrBadSignature = errors.New("channel: signature verification failed")
	ErrReplay       = errors.New("channel: sequence replayed or reordered")
)

// Header is the fixed 32-byte message header.
//
// Layout: magic(2) | version(1) | type(1) | flags(1) | rsvd(3) |
// session(8) | seq(8) | length(4) | rsvd(4).
type Header struct {
	Type    MsgType
	Flags   uint8
	Session uint64
	Seq     uint64
	Length  uint32
}

const _version = 1

// Marshal encodes the header.
func (h *Header) Marshal() [HeaderSize]byte {
	var out [HeaderSize]byte
	out[0], out[1] = 0x48, 0xD7 // "H", 0xD7
	out[2] = _version
	out[3] = byte(h.Type)
	out[4] = h.Flags
	binary.BigEndian.PutUint64(out[8:16], h.Session)
	binary.BigEndian.PutUint64(out[16:24], h.Seq)
	binary.BigEndian.PutUint32(out[24:28], h.Length)
	return out
}

// ParseHeader validates and decodes a 32-byte header. This mirrors the
// Hypervisor's only software parsing step: type, length, and offsets
// are checked before any DMA is configured.
func ParseHeader(raw []byte) (*Header, error) {
	if len(raw) != HeaderSize {
		return nil, fmt.Errorf("%w: length %d", ErrBadHeader, len(raw))
	}
	if raw[0] != 0x48 || raw[1] != 0xD7 {
		return nil, ErrBadMagic
	}
	if raw[2] != _version {
		return nil, fmt.Errorf("%w: version %d", ErrBadHeader, raw[2])
	}
	h := &Header{
		Type:    MsgType(raw[3]),
		Flags:   raw[4],
		Session: binary.BigEndian.Uint64(raw[8:16]),
		Seq:     binary.BigEndian.Uint64(raw[16:24]),
		Length:  binary.BigEndian.Uint32(raw[24:28]),
	}
	if h.Type < MsgAttestRequest || h.Type > MsgMuxReply {
		return nil, fmt.Errorf("%w: type %d", ErrBadHeader, h.Type)
	}
	if h.Length > MaxPayload {
		return nil, ErrTooLarge
	}
	return h, nil
}

// SecureChannel protects payloads with the session AES key and,
// optionally, per-bundle ECDSA signatures. Both endpoints construct
// one from the attestation session key.
type SecureChannel struct {
	aead      cipher.AEAD
	session   uint64
	sendSeq   uint64
	recvSeq   uint64
	signKey   *ecdsa.PrivateKey
	verifyKey *ecdsa.PublicKey
}

// NewSecureChannel builds a channel from a 32-byte session key.
func NewSecureChannel(sessionKey [32]byte, sessionID uint64) (*SecureChannel, error) {
	blk, err := aes.NewCipher(sessionKey[:])
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	return &SecureChannel{aead: aead, session: sessionID}, nil
}

// EnableSigning adds the -ES signature layer: sign with own key,
// verify the peer's.
func (c *SecureChannel) EnableSigning(own *ecdsa.PrivateKey, peer *ecdsa.PublicKey) {
	c.signKey = own
	c.verifyKey = peer
}

// Seal builds a full wire message (header || ciphertext [|| signature]).
func (c *SecureChannel) Seal(t MsgType, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	c.sendSeq++
	h := Header{Type: t, Flags: FlagEncrypted, Session: c.session, Seq: c.sendSeq}

	nonce := make([]byte, c.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.sendSeq)
	hdrForAD := h
	ct := c.aead.Seal(nil, nonce, payload, adFor(&hdrForAD))

	var sig []byte
	if c.signKey != nil {
		h.Flags |= FlagSigned
		digest := sha256.Sum256(ct)
		var err error
		sig, err = ecdsa.SignASN1(rand.Reader, c.signKey, digest[:])
		if err != nil {
			return nil, fmt.Errorf("channel: sign: %w", err)
		}
	}

	h.Length = uint32(len(ct))
	hdr := h.Marshal()
	// The signature length rides in the header's reserved tail so the
	// receiver can split ciphertext from signature.
	binary.BigEndian.PutUint32(hdr[28:32], uint32(len(sig)))

	out := make([]byte, 0, HeaderSize+len(ct)+len(sig))
	out = append(out, hdr[:]...)
	out = append(out, ct...)
	out = append(out, sig...)
	return out, nil
}

// adFor binds header fields (without Length, which differs between
// seal-time passes) into the AEAD associated data.
func adFor(h *Header) []byte {
	var ad [24]byte
	ad[0] = byte(h.Type)
	binary.BigEndian.PutUint64(ad[8:16], h.Session)
	binary.BigEndian.PutUint64(ad[16:24], h.Seq)
	return ad[:]
}

// Open verifies and decrypts a full wire message, enforcing strictly
// increasing sequence numbers (replay defense).
func (c *SecureChannel) Open(msg []byte) (*Header, []byte, error) {
	if len(msg) < HeaderSize {
		return nil, nil, ErrBadHeader
	}
	h, err := ParseHeader(msg[:HeaderSize])
	if err != nil {
		return nil, nil, err
	}
	if h.Session != c.session {
		return nil, nil, fmt.Errorf("%w: session %d", ErrBadHeader, h.Session)
	}
	if h.Seq <= c.recvSeq {
		return nil, nil, ErrReplay
	}
	sigLen := binary.BigEndian.Uint32(msg[28:32])
	body := msg[HeaderSize:]
	if uint64(len(body)) != uint64(h.Length)+uint64(sigLen) {
		return nil, nil, fmt.Errorf("%w: body %d != %d+%d", ErrBadHeader, len(body), h.Length, sigLen)
	}
	ct := body[:h.Length]
	sig := body[h.Length:]

	if h.Flags&FlagSigned != 0 {
		if c.verifyKey == nil {
			return nil, nil, ErrBadSignature
		}
		digest := sha256.Sum256(ct)
		if !ecdsa.VerifyASN1(c.verifyKey, digest[:], sig) {
			return nil, nil, ErrBadSignature
		}
	}

	nonce := make([]byte, c.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], h.Seq)
	pt, err := c.aead.Open(nil, nonce, ct, adFor(h))
	if err != nil {
		return nil, nil, ErrAuthFailed
	}
	c.recvSeq = h.Seq
	return h, pt, nil
}

// WriteMessage frames a sealed message onto a stream.
func WriteMessage(w io.Writer, msg []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("channel: write frame: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("channel: write body: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message from a stream.
func ReadMessage(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("channel: read frame: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxPayload+HeaderSize+128 {
		return nil, ErrTooLarge
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("channel: read body: %w", err)
	}
	return msg, nil
}
