package channel

import (
	"errors"
	"testing"
)

func TestConfirmTagRoundTrip(t *testing.T) {
	key := [32]byte{1, 2, 3}
	tag := ConfirmTag(key, 7, "user")
	if err := VerifyConfirmTag(key, 7, "user", tag[:]); err != nil {
		t.Fatalf("valid tag rejected: %v", err)
	}
}

func TestConfirmTagRejectsTampering(t *testing.T) {
	key := [32]byte{1, 2, 3}
	tag := ConfirmTag(key, 7, "user")

	cases := map[string]func() error{
		"flipped bit": func() error {
			bad := tag
			bad[0] ^= 0x80
			return VerifyConfirmTag(key, 7, "user", bad[:])
		},
		"wrong key": func() error {
			other := key
			other[31] ^= 1
			forged := ConfirmTag(other, 7, "user")
			return VerifyConfirmTag(key, 7, "user", forged[:])
		},
		"wrong session": func() error {
			forged := ConfirmTag(key, 8, "user")
			return VerifyConfirmTag(key, 7, "user", forged[:])
		},
		"reflected role": func() error {
			forged := ConfirmTag(key, 7, "device")
			return VerifyConfirmTag(key, 7, "user", forged[:])
		},
		"truncated": func() error {
			return VerifyConfirmTag(key, 7, "user", tag[:16])
		},
		"empty": func() error {
			return VerifyConfirmTag(key, 7, "user", nil)
		},
	}
	for name, fn := range cases {
		if err := fn(); !errors.Is(err, ErrBadConfirmTag) {
			t.Errorf("%s: want ErrBadConfirmTag, got %v", name, err)
		}
	}
}
