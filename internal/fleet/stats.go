package fleet

import (
	"time"

	"hardtape/internal/hevm"
	"hardtape/internal/oram"
)

// Stats is a point-in-time snapshot of the gateway. The struct is
// wire-stable: PR 5 moved its backing store from private aggregate
// structs onto the shared telemetry series, but every field keeps its
// name, type, and meaning.
type Stats struct {
	// Capacity/FreeSlots describe the fleet's HEVM pool (free counts
	// only healthy backends).
	Capacity  int
	FreeSlots int
	// Waiting is bundles admitted but not yet holding a slot; InFlight
	// is bundles executing on a backend.
	Waiting  int
	InFlight int
	// Admission counters (monotonic).
	Admitted  uint64
	Rejected  uint64
	Completed uint64
	Failed    uint64
	Retries   uint64
	// Queue-wait quantiles, interpolated from the admission-to-slot
	// wait histogram.
	QueueWaitP50 time.Duration
	QueueWaitP99 time.Duration
	Backends     []BackendStats
}

// BackendStats is the per-backend slice of the snapshot.
type BackendStats struct {
	Name    string
	Healthy bool
	// Capacity/FreeSlots/InFlight mirror the scheduler's live view.
	Capacity  int
	FreeSlots int
	InFlight  int
	// Dispatched counts bundles this backend ran (including
	// bundle-fault errors); Failures counts infrastructure faults.
	Dispatched uint64
	Failures   uint64
	LastError  string
	// HEVM aggregates per-bundle machine stats over this backend's
	// completed bundles; ORAM is the device's live client counters
	// (in-process backends only).
	HEVM hevm.Stats
	ORAM oram.Stats
}

// oramStatser is implemented by backends that can surface their
// device's ORAM counters (LocalBackend).
type oramStatser interface {
	ORAMStats() oram.Stats
}

// Stats snapshots the gateway from its telemetry series plus the
// mutex-guarded live scheduling state.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Waiting:      g.waiting,
		Admitted:     g.tm.admitted.Value(),
		Rejected:     g.tm.rejected.Value(),
		Completed:    g.tm.completed.Value(),
		Failed:       g.tm.failed.Value(),
		Retries:      g.tm.retries.Value(),
		QueueWaitP50: g.tm.queueWait.QuantileDuration(0.50),
		QueueWaitP99: g.tm.queueWait.QuantileDuration(0.99),
	}
	for _, bs := range g.backends {
		b := BackendStats{
			Name:       bs.b.Name(),
			Healthy:    bs.healthy,
			Capacity:   bs.b.Capacity(),
			FreeSlots:  bs.effectiveFree(),
			InFlight:   bs.inflight,
			Dispatched: bs.m.dispatched.Value(),
			Failures:   bs.m.failures.Value(),
			HEVM:       bs.m.hevmStats(),
		}
		if bs.lastErr != nil {
			b.LastError = bs.lastErr.Error()
		}
		if os, ok := bs.b.(oramStatser); ok {
			b.ORAM = os.ORAMStats()
		}
		st.Capacity += b.Capacity
		st.InFlight += bs.inflight
		if bs.healthy {
			st.FreeSlots += b.FreeSlots
		}
		st.Backends = append(st.Backends, b)
	}
	return st
}
