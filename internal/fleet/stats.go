package fleet

import (
	"sort"
	"sync"
	"time"

	"hardtape/internal/hevm"
	"hardtape/internal/oram"
)

// Stats is a point-in-time snapshot of the gateway.
type Stats struct {
	// Capacity/FreeSlots describe the fleet's HEVM pool (free counts
	// only healthy backends).
	Capacity  int
	FreeSlots int
	// Waiting is bundles admitted but not yet holding a slot; InFlight
	// is bundles executing on a backend.
	Waiting  int
	InFlight int
	// Admission counters (monotonic).
	Admitted  uint64
	Rejected  uint64
	Completed uint64
	Failed    uint64
	Retries   uint64
	// Queue-wait quantiles over the recent WaitWindow submissions.
	QueueWaitP50 time.Duration
	QueueWaitP99 time.Duration
	Backends     []BackendStats
}

// BackendStats is the per-backend slice of the snapshot.
type BackendStats struct {
	Name    string
	Healthy bool
	// Capacity/FreeSlots/InFlight mirror the scheduler's live view.
	Capacity  int
	FreeSlots int
	InFlight  int
	// Dispatched counts bundles this backend ran (including
	// bundle-fault errors); Failures counts infrastructure faults.
	Dispatched uint64
	Failures   uint64
	LastError  string
	// HEVM aggregates per-bundle machine stats over this backend's
	// completed bundles; ORAM is the device's live client counters
	// (in-process backends only).
	HEVM hevm.Stats
	ORAM oram.Stats
}

// oramStatser is implemented by backends that can surface their
// device's ORAM counters (LocalBackend).
type oramStatser interface {
	ORAMStats() oram.Stats
}

// Stats snapshots the gateway.
func (g *Gateway) Stats() Stats {
	p50, p99 := g.waits.quantiles()
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Waiting:      g.waiting,
		Admitted:     g.totalAdmitted,
		Rejected:     g.totalRejected,
		Completed:    g.totalCompleted,
		Failed:       g.totalFailed,
		Retries:      g.totalRetries,
		QueueWaitP50: p50,
		QueueWaitP99: p99,
	}
	for _, bs := range g.backends {
		b := BackendStats{
			Name:       bs.b.Name(),
			Healthy:    bs.healthy,
			Capacity:   bs.b.Capacity(),
			FreeSlots:  bs.effectiveFree(),
			InFlight:   bs.inflight,
			Dispatched: bs.dispatched,
			Failures:   bs.failures,
			HEVM:       bs.hevmAgg.Stats,
		}
		if bs.lastErr != nil {
			b.LastError = bs.lastErr.Error()
		}
		if os, ok := bs.b.(oramStatser); ok {
			b.ORAM = os.ORAMStats()
		}
		st.Capacity += b.Capacity
		st.InFlight += bs.inflight
		if bs.healthy {
			st.FreeSlots += b.FreeSlots
		}
		st.Backends = append(st.Backends, b)
	}
	return st
}

// hevmTotals accumulates per-bundle machine stats.
type hevmTotals struct {
	hevm.Stats
}

func (t *hevmTotals) add(s hevm.Stats) {
	t.Steps += s.Steps
	t.SwapEvents += s.SwapEvents
	t.PagesEvicted += s.PagesEvicted
	t.PagesLoaded += s.PagesLoaded
	if s.L2PagesUsed > t.L2PagesUsed {
		t.L2PagesUsed = s.L2PagesUsed
	}
	t.Overflowed = t.Overflowed || s.Overflowed
}

// waitSampler keeps a ring of recent queue waits for quantiles.
type waitSampler struct {
	mu   sync.Mutex
	ring []time.Duration
	n    int
}

func newWaitSampler(window int) *waitSampler {
	return &waitSampler{ring: make([]time.Duration, window)}
}

func (w *waitSampler) record(d time.Duration) {
	w.mu.Lock()
	w.ring[w.n%len(w.ring)] = d
	w.n++
	w.mu.Unlock()
}

// quantiles returns the p50/p99 of the recorded window (zeros when
// nothing was recorded yet).
func (w *waitSampler) quantiles() (p50, p99 time.Duration) {
	w.mu.Lock()
	filled := w.n
	if filled > len(w.ring) {
		filled = len(w.ring)
	}
	sorted := append([]time.Duration(nil), w.ring[:filled]...)
	w.mu.Unlock()
	if filled == 0 {
		return 0, 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(filled-1))
		return sorted[i]
	}
	return idx(0.50), idx(0.99)
}
