package fleet

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/core"
	"hardtape/internal/node"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

func TestLocalBackendKillRevive(t *testing.T) {
	r := buildFleetRig(t, 1, 2)
	lb := r.backends[0]

	free, err := lb.FreeSlots()
	if err != nil || free != 2 {
		t.Fatalf("healthy probe: free=%d err=%v", free, err)
	}
	if _, err := lb.Execute(context.Background(), r.transferBundle(t, 0, 5)); err != nil {
		t.Fatalf("healthy execute: %v", err)
	}

	lb.Kill()
	var be *BackendError
	if _, err := lb.FreeSlots(); !errors.As(err, &be) {
		t.Fatalf("killed probe: %v", err)
	}
	if _, err := lb.Execute(context.Background(), r.transferBundle(t, 1, 5)); !errors.As(err, &be) {
		t.Fatalf("killed execute: %v", err)
	}

	lb.Revive()
	if _, err := lb.Execute(context.Background(), r.transferBundle(t, 2, 5)); err != nil {
		t.Fatalf("revived execute: %v", err)
	}
}

// remoteService is a killable core.Service over real TCP: it tracks
// accepted connections so "killing the device" also severs
// established sessions, like a machine going down.
type remoteService struct {
	t    *testing.T
	addr string

	mu    sync.Mutex
	l     net.Listener
	conns []net.Conn
}

func serveRemote(t *testing.T, svc *core.Service) *remoteService {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &remoteService{t: t, addr: l.Addr().String(), l: l}
	go rs.acceptLoop(svc, l)
	t.Cleanup(rs.kill)
	return rs
}

func (rs *remoteService) acceptLoop(svc *core.Service, l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		rs.mu.Lock()
		rs.conns = append(rs.conns, conn)
		rs.mu.Unlock()
		go func() {
			defer conn.Close()
			_ = svc.ServeConn(conn)
		}()
	}
}

// kill closes the listener and every live session.
func (rs *remoteService) kill() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.l.Close()
	for _, c := range rs.conns {
		c.Close()
	}
	rs.conns = nil
}

// restart reopens the listener on the same address.
func (rs *remoteService) restart(svc *core.Service) {
	rs.t.Helper()
	l, err := net.Listen("tcp", rs.addr)
	if err != nil {
		rs.t.Fatal(err)
	}
	rs.mu.Lock()
	rs.l = l
	rs.mu.Unlock()
	go rs.acceptLoop(svc, l)
}

func TestRemoteBackendOverTCP(t *testing.T) {
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 8
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Features = core.ConfigES
	cfg.HEVMs = 2
	dev, err := core.NewDevice(cfg, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(dev)
	rs := serveRemote(t, svc)

	verifier := attest.NewVerifier(mfr.PublicKey(), core.ImageMeasurement())
	rb := NewRemoteBackend("remote-0", rs.addr, verifier, true, 2)
	defer rb.Close()

	// The status probe reflects the remote device's occupancy.
	free, err := rb.FreeSlots()
	if err != nil || free != 2 {
		t.Fatalf("remote probe: free=%d err=%v", free, err)
	}

	bundle := func(sender int) *types.Bundle {
		token := w.Tokens[0]
		tx, err := w.SignedTxAt(w.EOAs[sender], 0, &token, 0,
			workload.CalldataTransfer(w.EOAs[1], 42), 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return &types.Bundle{Txs: []*types.Transaction{tx}}
	}
	res, err := rb.Execute(context.Background(), bundle(0))
	if err != nil {
		t.Fatalf("remote execute: %v", err)
	}
	if res.Aborted != nil || len(res.Trace.Txs) != 1 {
		t.Fatalf("remote result: %+v", res)
	}

	// Kill the service: probe and execute fail with BackendError.
	rs.kill()
	var be *BackendError
	if _, err := rb.FreeSlots(); !errors.As(err, &be) {
		t.Fatalf("dead-service probe: %v", err)
	}
	if _, err := rb.Execute(context.Background(), bundle(2)); !errors.As(err, &be) {
		t.Fatalf("dead-service execute: %v", err)
	}

	// Restart on the same address: lazy redial recovers both paths
	// without rebuilding the backend.
	rs.restart(svc)
	if _, err := rb.FreeSlots(); err != nil {
		t.Fatalf("restarted probe: %v", err)
	}
	if _, err := rb.Execute(context.Background(), bundle(3)); err != nil {
		t.Fatalf("restarted execute: %v", err)
	}
}

func TestGatewayWithRemoteBackendFailover(t *testing.T) {
	// One local + one remote backend; the remote dies mid-run and the
	// local picks up its bundles.
	r := buildFleetRig(t, 1, 1)

	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(r.world.State)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Features = core.ConfigRaw
	cfg.HEVMs = 1
	dev, err := core.NewDevice(cfg, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	rs := serveRemote(t, core.NewService(dev))
	verifier := attest.NewVerifier(mfr.PublicKey(), core.ImageMeasurement())
	remote := NewRemoteBackend("remote", rs.addr, verifier, false, 1)

	g := NewGateway(Config{QueueDepth: 8, HealthInterval: 10 * time.Millisecond}, r.backends[0], remote)
	defer g.Close()

	for i := 0; i < 6; i++ {
		if i == 3 {
			rs.kill()
		}
		if _, err := g.Submit(context.Background(), r.transferBundle(t, i, uint64(i+1))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := g.Stats()
	if st.Backends[0].Dispatched == 0 {
		t.Fatal("local backend never dispatched")
	}
}
