package fleet

import (
	"context"
	"net"
	"testing"

	"hardtape/internal/attest"
	"hardtape/internal/core"
	"hardtape/internal/node"
	"hardtape/internal/telemetry"
	"hardtape/internal/workload"
)

// TestTracePropagationAcrossFleet is the examples/fleet topology with
// process-grade isolation: an end client, a gateway, and two devices,
// each with its OWN registry and flight recorder, talking only over
// TCP (devices) and a pipe (client). One traced high-conflict MEV
// bundle must come back as ONE contiguous trace in the client's
// recorder: the client root, the gateway's admission/scheduling
// segment, and the executing device's bundle, lane re-execution, and
// per-shard ORAM batch spans, every parent link resolving.
func TestTracePropagationAcrossFleet(t *testing.T) {
	mfr, err := attest.NewManufacturer()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 16
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}

	// Two device "processes" behind real TCP listeners. Full feature
	// set, parallel lanes, sharded ORAM — the whole span surface.
	mkDevice := func(proc string) *remoteService {
		reg := telemetry.NewRegistry()
		reg.EnableTracing(proc, 0)
		t.Cleanup(reg.FlightRecorder().Close)
		cfg := core.DefaultConfig()
		cfg.Features = core.ConfigFull
		cfg.HEVMs = 1
		cfg.Lanes = 4
		cfg.ORAMShards = 2
		// Burst-fetch code pages so the bundle rides the batched ORAM
		// fan-out (the prefetcher spreads single accesses instead, which
		// never batch); multi-page DEX code then produces per-shard
		// oram.shard_batch spans on the first cold execution.
		cfg.DisablePrefetch = true
		cfg.Telemetry = reg
		dev, err := core.NewDevice(cfg, mfr, chain)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Sync(); err != nil {
			t.Fatal(err)
		}
		return serveRemote(t, core.NewService(dev))
	}
	rs0 := mkDevice("device-0")
	rs1 := mkDevice("device-1")

	// The gateway "process": remote backends only, its own recorder.
	gwReg := telemetry.NewRegistry()
	gwReg.EnableTracing("gateway", 0)
	t.Cleanup(gwReg.FlightRecorder().Close)
	verifier := attest.NewVerifier(mfr.PublicKey(), core.ImageMeasurement())
	fcfg := DefaultConfig()
	fcfg.Telemetry = gwReg
	gw := NewGateway(fcfg,
		NewRemoteBackend("remote-0", rs0.addr, verifier, true, 2),
		NewRemoteBackend("remote-1", rs1.addr, verifier, true, 2))
	defer gw.Close()

	// The gateway fronts the fleet over the same attested protocol a
	// single device speaks (cmd/hardtape-gateway's NewFleetService).
	idCfg := core.DefaultConfig()
	idCfg.Features = core.ConfigFull
	idDev, err := core.NewDevice(idCfg, mfr, chain)
	if err != nil {
		t.Fatal(err)
	}
	fsvc := core.NewServiceFor(gw, idDev.Booted(), true)
	fsvc.SetTelemetry(gwReg)
	clientConn, serverConn := net.Pipe()
	defer clientConn.Close()
	go func() {
		defer serverConn.Close()
		//hardtape:faulterr-ok the session ends when the test closes the pipe; its EOF is the shutdown signal
		_ = fsvc.ServeConn(serverConn)
	}()

	// The end-client "process".
	clientReg := telemetry.NewRegistry()
	ctr := clientReg.EnableTracing("client", 0)
	t.Cleanup(clientReg.FlightRecorder().Close)
	c, err := core.Dial(clientConn, verifier, true)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTracer(ctr)

	// A high-conflict MEV bundle on cold devices: every tx hammers one
	// pool (lane re-execution) and first-touch state rides the batched
	// ORAM prefetch (per-shard fan-out spans).
	bundle, err := w.MEVBundle(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.PreExecuteContext(context.Background(), bundle)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortReason != "" {
		t.Fatalf("bundle aborted: %s", res.AbortReason)
	}

	traces := clientReg.FlightRecorder().Traces()
	if len(traces) != 1 {
		t.Fatalf("client recorder kept %d traces, want 1", len(traces))
	}
	trace := traces[0]
	if trace.Root != "client.preexecute" {
		t.Fatalf("root %q, want client.preexecute", trace.Root)
	}

	names := map[string]int{}
	procs := map[string]bool{}
	spans := map[telemetry.SpanID]bool{}
	for _, s := range trace.Spans {
		if s.Trace != trace.ID {
			t.Fatalf("span %s carries trace %s, want %s", s.Name, s.Trace, trace.ID)
		}
		names[s.Name]++
		procs[s.Proc] = true
		spans[s.Span] = true
	}
	// One contiguous tree: every non-root parent is present.
	for _, s := range trace.Spans {
		if !s.Parent.IsZero() && !spans[s.Parent] {
			t.Errorf("span %s (%s@%s) has unresolved parent %s",
				s.Span, s.Name, s.Proc, s.Parent)
		}
	}
	if !procs["client"] || !procs["gateway"] || (!procs["device-0"] && !procs["device-1"]) {
		t.Errorf("procs %v, want client + gateway + one executing device", procs)
	}
	for _, want := range []string{
		"client.preexecute", // end client root
		"service.bundle",    // gateway fleet service admission
		"gateway.submit",    // fleet scheduling
		"gateway.dispatch",  // backend selection
		"device.bundle",     // executing device
		"device.exec",       // HEVM stage
		"lane.reexec",       // conflict-driven re-execution
		"oram.shard_batch",  // per-shard batched fan-out
	} {
		if names[want] == 0 {
			t.Errorf("span %q missing from trace (got %v)", want, names)
		}
	}
	// Both the gateway's fleet service and the device's service run
	// admission under the same propagated context.
	if names["service.bundle"] < 2 {
		t.Errorf("service.bundle count %d, want one per hop (>=2)", names["service.bundle"])
	}
	if names["oram.shard_batch"] < 2 {
		t.Errorf("oram.shard_batch count %d, want one per shard (>=2)", names["oram.shard_batch"])
	}
}
