package fleet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"hardtape/internal/attest"
	"hardtape/internal/core"
	"hardtape/internal/oram"
	"hardtape/internal/session"
	"hardtape/internal/telemetry"
	"hardtape/internal/types"
)

// Backend is one execution target behind the gateway: an in-process
// Device or a remote Service endpoint. Implementations must be safe
// for concurrent use.
type Backend interface {
	// Name identifies the backend in stats and errors.
	Name() string
	// Capacity is the backend's total HEVM slot count (dispatch weight).
	Capacity() int
	// FreeSlots probes live occupancy without blocking. An error marks
	// the backend unhealthy; the gateway drains it and re-probes with
	// exponential backoff.
	FreeSlots() (int, error)
	// Execute runs one bundle. Infrastructure failures must be wrapped
	// in *BackendError so the gateway fails over; bundle-fault errors
	// (invalid txs) pass through to the submitter.
	Execute(ctx context.Context, bundle *types.Bundle) (*core.BundleResult, error)
	// Close releases backend resources.
	Close() error
}

// --- in-process backend ---

// LocalBackend adapts an in-process *core.Device. Kill/Revive inject
// device failure for failover tests and demos (the software stand-in
// for yanking a chip's power).
type LocalBackend struct {
	name string
	dev  *core.Device

	mu   sync.Mutex
	down error
}

// NewLocalBackend wraps a booted, synced device.
func NewLocalBackend(name string, dev *core.Device) *LocalBackend {
	return &LocalBackend{name: name, dev: dev}
}

// Kill simulates a device failure: every in-flight and future call
// fails with a *BackendError until Revive.
func (b *LocalBackend) Kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = fmt.Errorf("device killed")
}

// Revive restores a killed device.
func (b *LocalBackend) Revive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = nil
}

func (b *LocalBackend) failed() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return b.name }

// Capacity implements Backend.
func (b *LocalBackend) Capacity() int { return b.dev.SlotCount() }

// FreeSlots implements Backend via the device's occupancy register.
func (b *LocalBackend) FreeSlots() (int, error) {
	if err := b.failed(); err != nil {
		return 0, &BackendError{Backend: b.name, Err: err}
	}
	return b.dev.FreeSlots(), nil
}

// Execute implements Backend. A kill that lands mid-run discards the
// result: a crashed device returns nothing trustworthy.
func (b *LocalBackend) Execute(ctx context.Context, bundle *types.Bundle) (*core.BundleResult, error) {
	if err := b.failed(); err != nil {
		return nil, &BackendError{Backend: b.name, Err: err}
	}
	res, err := b.dev.ExecuteContext(ctx, bundle)
	if killed := b.failed(); killed != nil {
		return nil, &BackendError{Backend: b.name, Err: killed}
	}
	return res, err
}

// ORAMStats exposes the device's ORAM counters for fleet.Stats.
func (b *LocalBackend) ORAMStats() oram.Stats { return b.dev.ORAMStats() }

// Close implements Backend (devices have no resources to release).
func (b *LocalBackend) Close() error { return nil }

// --- remote backend ---

// RemoteBackend fronts a core.Service over TCP. It keeps one attested
// session per slot (the service dedicates an HEVM per concurrent
// bundle) plus a control session for occupancy probes; dead
// connections are redialed lazily, so a restarted service re-admits
// without operator action.
type RemoteBackend struct {
	name        string
	addr        string
	verifier    core.ReportVerifier
	cache       *session.VerdictCache
	sign        bool
	sessions    int
	dialTimeout time.Duration

	pool chan *remoteConn

	// tracer, when non-nil, is handed to every dialed core.Client so
	// bundle submissions propagate the caller's trace context over the
	// wire and adopt the service's returned span segments. Set before
	// first use (NewGateway wires it from its telemetry registry).
	tracer *telemetry.Tracer

	mu     sync.Mutex
	probe  *remoteConn
	closed bool
}

// remoteConn is one pooled session slot; conn/client are nil until
// first use (and again after a transport failure). ticket is the
// rotated resumption ticket harvested from the previous session on
// this slot — a redial presents it and skips the asymmetric handshake.
type remoteConn struct {
	conn   net.Conn
	client *core.Client
	ticket *session.ClientTicket
}

func (rc *remoteConn) reset() {
	if rc.client != nil {
		// The session dies but its ticket survives: it was minted at
		// handshake and is still unredeemed, so the next connect on this
		// slot resumes warm (a restarted service rejects it and we fall
		// back cold).
		if t := rc.client.Ticket(); t != nil {
			rc.ticket = t
		}
	}
	if rc.conn != nil {
		rc.conn.Close()
	}
	rc.conn, rc.client = nil, nil
}

// NewRemoteBackend builds a backend for the service at addr with the
// given parallel session count. No connection is made until the first
// probe or bundle; the gateway's health check absorbs dial failures.
func NewRemoteBackend(name, addr string, verifier *attest.Verifier, sign bool, sessions int) *RemoteBackend {
	if sessions <= 0 {
		sessions = 1
	}
	// Cold dials share a verdict cache: after the first session against
	// a device+image, later dials skip the manufacturer-chain verify.
	cache := session.NewVerdictCache(nil, 0)
	b := &RemoteBackend{
		name:        name,
		addr:        addr,
		verifier:    &session.CachingVerifier{Verifier: verifier, Cache: cache},
		cache:       cache,
		sign:        sign,
		sessions:    sessions,
		dialTimeout: 2 * time.Second,
		pool:        make(chan *remoteConn, sessions),
	}
	for i := 0; i < sessions; i++ {
		b.pool <- &remoteConn{}
	}
	return b
}

// SetTracer installs the tracer future sessions propagate trace
// contexts with (dial concurrency starts only after the backend is
// handed to a gateway, so setting it at wiring time is race-free).
func (b *RemoteBackend) SetTracer(tr *telemetry.Tracer) { b.tracer = tr }

// Name implements Backend.
func (b *RemoteBackend) Name() string { return b.name }

// Capacity implements Backend: the number of parallel sessions this
// gateway holds against the service.
func (b *RemoteBackend) Capacity() int { return b.sessions }

// connect dials one session: warm (ticket resume, zero asymmetric
// crypto) when the slot holds a live ticket, cold attestation
// otherwise. Signing sessions always dial cold — resumed channels
// deliberately never carry the per-message ECDSA layer.
func (b *RemoteBackend) connect(rc *remoteConn) error {
	if rc.client != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", b.addr, b.dialTimeout)
	if err != nil {
		return err
	}
	if ticket := rc.ticket; ticket != nil && !b.sign {
		rc.ticket = nil
		if err := b.cache.Check(ticket.Serial); err != nil {
			// Revoked since the ticket was minted: fail closed, never
			// hand the device a provable live session.
			conn.Close()
			return err
		}
		if client, rerr := core.Resume(conn, ticket); rerr == nil {
			client.SetTracer(b.tracer)
			rc.conn, rc.client = conn, client
			return nil
		}
		// Resume burned the stream (and the ticket); redial cold.
		conn.Close()
		if conn, err = net.DialTimeout("tcp", b.addr, b.dialTimeout); err != nil {
			return err
		}
	}
	client, err := core.Dial(conn, b.verifier, b.sign)
	if err != nil {
		conn.Close()
		return err
	}
	client.SetTracer(b.tracer)
	rc.conn, rc.client = conn, client
	return nil
}

// VerdictCache exposes the backend's attestation-verdict cache (for
// revocation: VerdictCache().Revoke(serial) blocks future sessions).
func (b *RemoteBackend) VerdictCache() *session.VerdictCache { return b.cache }

// FreeSlots implements Backend: it asks the service for its live
// occupancy over the control session. This doubles as the health
// check — a dead service fails the probe.
//
//hardtape:locksafe-ok b.mu exists to serialize the probe session; the deadline bounds the I/O it guards
func (b *RemoteBackend) FreeSlots() (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, &BackendError{Backend: b.name, Err: ErrClosed}
	}
	if b.probe == nil {
		b.probe = &remoteConn{}
	}
	if err := b.connect(b.probe); err != nil {
		return 0, &BackendError{Backend: b.name, Err: err}
	}
	if err := b.probe.conn.SetDeadline(time.Now().Add(b.dialTimeout)); err != nil {
		b.probe.reset()
		return 0, &BackendError{Backend: b.name, Err: err}
	}
	st, err := b.probe.client.Status()
	if derr := b.probe.conn.SetDeadline(time.Time{}); derr != nil && err == nil {
		err = derr
	}
	if err != nil {
		b.probe.reset()
		return 0, &BackendError{Backend: b.name, Err: err}
	}
	// The service may have more cores than we hold sessions for (or
	// fewer free); dispatchable work is bounded by both.
	free := st.FreeSlots
	if idle := len(b.pool); idle < free {
		free = idle
	}
	return free, nil
}

// Execute implements Backend: it runs the bundle on one pooled
// session, honouring ctx while waiting for a session and while the
// bundle is in flight (via the connection deadline).
func (b *RemoteBackend) Execute(ctx context.Context, bundle *types.Bundle) (*core.BundleResult, error) {
	var rc *remoteConn
	select {
	case rc = <-b.pool:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { b.pool <- rc }()

	var tr *core.TraceResult
	for attempt := 0; ; attempt++ {
		if err := b.connect(rc); err != nil {
			return nil, &BackendError{Backend: b.name, Err: err}
		}
		var err error
		if dl, ok := ctx.Deadline(); ok {
			err = rc.conn.SetDeadline(dl)
		}
		if err == nil {
			// Context-carrying variant: the dispatch span on ctx rides
			// the mux frame to the service, which returns its finished
			// span segment for adoption into our flight recorder.
			tr, err = rc.client.PreExecuteContext(ctx, bundle)
		}
		if err == nil {
			err = rc.conn.SetDeadline(time.Time{})
		}
		if err != nil {
			// Transport failure (a failed deadline set counts: the
			// socket is unusable): the session is desynced; drop it.
			// A pooled session may simply be stale (service restarted
			// underneath it), so redial fresh once before giving up.
			rc.reset()
			if attempt == 0 && ctx.Err() == nil {
				continue
			}
			return nil, &BackendError{Backend: b.name, Err: err}
		}
		break
	}
	res := &core.BundleResult{
		Trace:       tr.Trace,
		VirtualTime: tr.VirtualTime,
		GasUsed:     tr.GasUsed,
	}
	if tr.AbortReason != "" {
		res.Aborted = fmt.Errorf("%s", tr.AbortReason)
	}
	return res, nil
}

// Close implements Backend: it tears down every session.
func (b *RemoteBackend) Close() error {
	b.mu.Lock()
	b.closed = true
	if b.probe != nil {
		b.probe.reset()
	}
	b.mu.Unlock()
	for i := 0; i < b.sessions; i++ {
		rc := <-b.pool
		rc.reset()
	}
	return nil
}
