package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hardtape/internal/core"
	"hardtape/internal/node"
	"hardtape/internal/telemetry"
	"hardtape/internal/types"
	"hardtape/internal/workload"
)

// fakeBackend is a controllable Backend for scheduler tests.
type fakeBackend struct {
	name     string
	capacity int

	mu          sync.Mutex
	down        error
	inflight    int
	maxInflight int
	executed    int
	// block, when non-nil, stalls Execute until it is closed.
	block chan struct{}
}

func newFakeBackend(name string, capacity int) *fakeBackend {
	return &fakeBackend{name: name, capacity: capacity}
}

func (f *fakeBackend) Name() string  { return f.name }
func (f *fakeBackend) Capacity() int { return f.capacity }
func (f *fakeBackend) Close() error  { return nil }

func (f *fakeBackend) setDown(err error) {
	f.mu.Lock()
	f.down = err
	f.mu.Unlock()
}

func (f *fakeBackend) FreeSlots() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down != nil {
		return 0, &BackendError{Backend: f.name, Err: f.down}
	}
	return f.capacity - f.inflight, nil
}

func (f *fakeBackend) Execute(ctx context.Context, b *types.Bundle) (*core.BundleResult, error) {
	f.mu.Lock()
	if f.down != nil {
		err := f.down
		f.mu.Unlock()
		return nil, &BackendError{Backend: f.name, Err: err}
	}
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	block := f.block
	f.mu.Unlock()

	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			f.mu.Lock()
			f.inflight--
			f.mu.Unlock()
			return nil, ctx.Err()
		}
	}

	f.mu.Lock()
	f.inflight--
	f.executed++
	down := f.down
	f.mu.Unlock()
	if down != nil {
		return nil, &BackendError{Backend: f.name, Err: down}
	}
	return &core.BundleResult{}, nil
}

func testBundle() *types.Bundle {
	return &types.Bundle{Txs: []*types.Transaction{{}}}
}

func TestSubmitRejectsWhenOverloaded(t *testing.T) {
	fb := newFakeBackend("a", 1)
	fb.block = make(chan struct{})
	g := NewGateway(Config{QueueDepth: 2, BundleDeadline: 5 * time.Second}, fb)
	defer g.Close()

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := g.Submit(context.Background(), testBundle())
			results <- err
		}()
	}
	// Wait until both are admitted (one in flight, one waiting).
	waitFor(t, func() bool {
		st := g.Stats()
		return st.InFlight == 1 && st.Waiting == 1
	})

	if _, err := g.Submit(context.Background(), testBundle()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity submit: err = %v, want ErrOverloaded", err)
	}

	close(fb.block)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted bundle failed: %v", err)
		}
	}
	st := g.Stats()
	if st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("stats: rejected=%d completed=%d, want 1/2", st.Rejected, st.Completed)
	}
}

func TestSubmitDeadlineWhileQueued(t *testing.T) {
	fb := newFakeBackend("a", 1)
	fb.block = make(chan struct{})
	defer close(fb.block)
	g := NewGateway(Config{QueueDepth: 8, BundleDeadline: time.Hour}, fb)
	defer g.Close()

	go g.Submit(context.Background(), testBundle()) // occupies the only slot
	waitFor(t, func() bool { return g.Stats().InFlight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	_, err := g.Submit(ctx, testBundle())
	if !errors.Is(err, ErrNoBackends) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued past deadline: err = %v, want ErrNoBackends wrapping DeadlineExceeded", err)
	}
}

func TestLeastBusyDispatch(t *testing.T) {
	a := newFakeBackend("a", 3)
	b := newFakeBackend("b", 1)
	a.block = make(chan struct{})
	b.block = make(chan struct{})
	g := NewGateway(Config{QueueDepth: 8, BundleDeadline: 5 * time.Second}, a, b)
	defer g.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Submit(context.Background(), testBundle()); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
		// Serialize reservations so the free-slot ordering is
		// deterministic: a(3) a(2) a(1)≻tie b(1) → a, then b.
		waitFor(t, func() bool { return g.Stats().InFlight == i+1 })
	}
	close(a.block)
	close(b.block)
	wg.Wait()

	if a.maxInflight != 3 || b.maxInflight != 1 {
		t.Fatalf("dispatch spread: a=%d b=%d, want 3/1", a.maxInflight, b.maxInflight)
	}
}

func TestFailoverOnBackendError(t *testing.T) {
	a := newFakeBackend("a", 2) // preferred (more free slots)
	b := newFakeBackend("b", 1)
	g := NewGateway(Config{QueueDepth: 8, BundleDeadline: 5 * time.Second}, a, b)
	defer g.Close()
	// Yank a after the initial probe admitted it: dispatch goes to a,
	// fails, and must fail over to b.
	a.setDown(fmt.Errorf("yanked"))

	res, err := g.Submit(context.Background(), testBundle())
	if err != nil || res == nil {
		t.Fatalf("failover submit: res=%v err=%v", res, err)
	}
	st := g.Stats()
	if st.Backends[0].Failures == 0 || st.Backends[0].Healthy {
		t.Fatalf("backend a not drained: %+v", st.Backends[0])
	}
	if st.Backends[1].Dispatched != 1 {
		t.Fatalf("backend b dispatched = %d, want 1", st.Backends[1].Dispatched)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
}

func TestBundleFaultDoesNotFailOver(t *testing.T) {
	a := newFakeBackend("a", 1)
	g := NewGateway(Config{QueueDepth: 4, BundleDeadline: time.Second}, a)
	defer g.Close()
	// An empty bundle is the submitter's fault: rejected up front, no
	// backend involved, no drain.
	if _, err := g.Submit(context.Background(), &types.Bundle{}); !errors.Is(err, core.ErrBundleEmpty) {
		t.Fatalf("empty bundle: %v", err)
	}
	if st := g.Stats(); !st.Backends[0].Healthy || st.Backends[0].Failures != 0 {
		t.Fatalf("healthy backend was drained: %+v", st.Backends[0])
	}
}

func TestHealthBackoffAndReadmit(t *testing.T) {
	a := newFakeBackend("a", 1)
	a.setDown(fmt.Errorf("powered off"))
	g := NewGateway(Config{
		QueueDepth:       4,
		BundleDeadline:   50 * time.Millisecond,
		HealthInterval:   10 * time.Millisecond,
		HealthBackoff:    10 * time.Millisecond,
		HealthBackoffMax: 40 * time.Millisecond,
	}, a)
	defer g.Close()

	if _, err := g.Submit(context.Background(), testBundle()); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("all-down fleet: err = %v, want ErrNoBackends", err)
	}
	// Let a few backoff probes fail, then revive.
	time.Sleep(60 * time.Millisecond)
	a.setDown(nil)
	waitFor(t, func() bool { return g.Stats().Backends[0].Healthy })

	if _, err := g.Submit(context.Background(), testBundle()); err != nil {
		t.Fatalf("re-admitted backend: %v", err)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	a := newFakeBackend("a", 1)
	a.block = make(chan struct{})
	defer close(a.block)
	g := NewGateway(Config{QueueDepth: 4, BundleDeadline: 10 * time.Second}, a)

	go g.Submit(context.Background(), testBundle())
	waitFor(t, func() bool { return g.Stats().InFlight == 1 })
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Submit(context.Background(), testBundle())
		errCh <- err
	}()
	waitFor(t, func() bool { return g.Stats().Waiting == 1 })

	go g.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter unblocked with %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter stuck after Close")
	}
}

func TestQueueWaitQuantiles(t *testing.T) {
	m := newGwMetrics(telemetry.NewRegistry())
	if p50 := m.queueWait.QuantileDuration(0.50); p50 != 0 {
		t.Fatalf("empty histogram must report zero, got %v", p50)
	}
	for i := 1; i <= 100; i++ {
		m.queueWait.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	p50 := m.queueWait.QuantileDuration(0.50)
	p99 := m.queueWait.QuantileDuration(0.99)
	// Bucket interpolation is coarser than the old sorted ring, but the
	// quantiles must stay ordered and in the observed range.
	if p50 <= 0 || p50 > 100*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < p50 || p99 > 150*time.Millisecond {
		t.Fatalf("p99 = %v (p50 %v)", p99, p50)
	}
}

// --- integration: real devices, one killed mid-run ---

// fleetRig is three single-HEVM devices on one synthetic chain.
type fleetRig struct {
	world    *workload.World
	backends []*LocalBackend
}

func buildFleetRig(t testing.TB, devices, hevms int) *fleetRig {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.EOAs = 12
	wcfg.Tokens = 2
	wcfg.DEXes = 1
	w, err := workload.BuildWorld(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := node.New(w.State)
	if err != nil {
		t.Fatal(err)
	}
	r := &fleetRig{world: w}
	for i := 0; i < devices; i++ {
		cfg := core.DefaultConfig()
		cfg.Features = core.ConfigRaw // fastest config; scheduling is what's under test
		cfg.HEVMs = hevms
		cfg.NoiseSeed = int64(i + 1)
		dev, err := core.NewDevice(cfg, nil, chain)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Sync(); err != nil {
			t.Fatal(err)
		}
		r.backends = append(r.backends, NewLocalBackend(fmt.Sprintf("dev-%d", i), dev))
	}
	return r
}

func (r *fleetRig) transferBundle(t testing.TB, sender int, amount uint64) *types.Bundle {
	t.Helper()
	token := r.world.Tokens[0]
	from := r.world.EOAs[sender%len(r.world.EOAs)]
	tx, err := r.world.SignedTxAt(from, 0, &token, 0,
		workload.CalldataTransfer(r.world.EOAs[1], amount), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	return &types.Bundle{Txs: []*types.Transaction{tx}}
}

func TestFleetFailoverIntegration(t *testing.T) {
	r := buildFleetRig(t, 3, 1)
	g := NewGateway(Config{
		QueueDepth:     6,
		BundleDeadline: 10 * time.Second,
		HealthInterval: 10 * time.Millisecond,
		HealthBackoff:  10 * time.Millisecond,
	}, r.backends[0], r.backends[1], r.backends[2])
	defer g.Close()

	// --- Phase 1: burst with one device killed mid-run. Every bundle
	// the gateway accepts must still complete on the survivors.
	const submitters = 40
	var (
		completed atomic.Uint64
		rejected  atomic.Uint64
		killOnce  sync.Once
		start     = make(chan struct{})
		wg        sync.WaitGroup
	)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := g.Submit(context.Background(), r.transferBundle(t, i, uint64(i+1)))
			switch {
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1) // backpressured, never accepted: fine
			case err != nil:
				t.Errorf("accepted bundle %d failed: %v", i, err)
			default:
				if res.Aborted != nil {
					t.Errorf("bundle %d aborted: %v", i, res.Aborted)
				}
				completed.Add(1)
				// Kill one device mid-run, once traffic is flowing.
				killOnce.Do(func() { r.backends[0].Kill() })
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := completed.Load() + rejected.Load(); got != submitters {
		t.Fatalf("accounting: %d completed + %d rejected != %d", completed.Load(), rejected.Load(), submitters)
	}
	st := g.Stats()
	if st.Completed != completed.Load() || st.Rejected != rejected.Load() {
		t.Fatalf("stats disagree with callers: %+v", st)
	}
	if st.Backends[0].Healthy {
		t.Fatal("killed backend still marked healthy")
	}
	if st.Backends[1].Dispatched+st.Backends[2].Dispatched == 0 {
		t.Fatal("survivors dispatched nothing")
	}
	if st.Backends[1].HEVM.Steps+st.Backends[2].HEVM.Steps == 0 {
		t.Fatal("no aggregated HEVM stats on survivors")
	}

	// --- Phase 2: drain the whole fleet, then overload the admission
	// queue. The first QueueDepth submissions wait; the rest must get
	// an immediate ErrOverloaded, not a hang.
	r.backends[1].Kill()
	r.backends[2].Kill()
	waitFor(t, func() bool {
		s := g.Stats()
		return !s.Backends[1].Healthy && !s.Backends[2].Healthy
	})
	var (
		overloaded atomic.Uint64
		waitersOK  atomic.Uint64
		wg2        sync.WaitGroup
	)
	for i := 0; i < 10; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			_, err := g.Submit(context.Background(), r.transferBundle(t, i, 9))
			switch {
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			case err == nil:
				waitersOK.Add(1)
			default:
				t.Errorf("drained-fleet submit %d: %v", i, err)
			}
		}(i)
	}
	// Nothing can complete while all devices are down, so exactly
	// QueueDepth submissions sit waiting and the rest bounce.
	waitFor(t, func() bool { return overloaded.Load() == 10-6 && g.Stats().Waiting == 6 })

	// Revive one device: the health monitor re-admits it and every
	// queued bundle completes there.
	r.backends[1].Revive()
	wg2.Wait()
	if waitersOK.Load() != 6 {
		t.Fatalf("queued bundles completed = %d, want 6", waitersOK.Load())
	}
	final := g.Stats()
	if !final.Backends[1].Healthy {
		t.Fatal("revived backend not re-admitted")
	}
	if final.QueueWaitP99 <= 0 {
		t.Fatal("queue-wait quantiles never recorded")
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
