package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hardtape/internal/core"
	"hardtape/internal/session"
	"hardtape/internal/telemetry"
	"hardtape/internal/types"
)

// Config tunes the gateway's admission and health policies.
type Config struct {
	// QueueDepth bounds concurrently admitted bundles (waiting plus in
	// flight); submissions beyond it get ErrOverloaded immediately.
	// 0 means twice the fleet's total slot capacity.
	QueueDepth int
	// BundleDeadline caps a bundle's admission-to-completion time;
	// 0 disables the per-bundle timeout.
	BundleDeadline time.Duration
	// HealthInterval is the probe cadence for healthy backends.
	HealthInterval time.Duration
	// HealthBackoff is the initial re-probe delay after a failure; it
	// doubles per consecutive failure up to HealthBackoffMax.
	HealthBackoff time.Duration
	// HealthBackoffMax caps the exponential backoff.
	HealthBackoffMax time.Duration
	// DispatchRetries is how many times one accepted bundle may fail
	// over to another backend after a BackendError.
	DispatchRetries int
	// WaitWindow is retained for configuration compatibility. The
	// sample ring it sized was replaced by a fixed-bucket telemetry
	// histogram, which needs no window.
	WaitWindow int
	// ColdHandshakeLimit bounds concurrent cold (attest+DHKE)
	// handshakes on services fronting this gateway; warm ticket resumes
	// bypass the gate, so a reconnect burst never queues behind cold
	// dials. 0 means unlimited.
	ColdHandshakeLimit int
	// Telemetry, when non-nil, registers the gateway's series there so
	// they export alongside the rest of the pipeline. When nil the
	// gateway keeps a private registry: the same instruments back the
	// Stats() snapshot either way.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns production-ish gateway settings.
func DefaultConfig() Config {
	return Config{
		BundleDeadline:   10 * time.Second,
		HealthInterval:   100 * time.Millisecond,
		HealthBackoff:    50 * time.Millisecond,
		HealthBackoffMax: 5 * time.Second,
		DispatchRetries:  3,
	}
}

// backendState is the gateway's scheduling view of one backend.
type backendState struct {
	b       Backend
	healthy bool
	// lastFree is the most recent occupancy probe, decremented on
	// dispatch and restored on completion between probes.
	lastFree  int
	inflight  int
	lastErr   error
	backoff   time.Duration
	nextProbe time.Time
	// m holds the backend's telemetry series — also the source of
	// truth for dispatch/failure counts and HEVM aggregates.
	m *backendMetrics
}

// effectiveFree is the slots the gateway may still dispatch to.
func (bs *backendState) effectiveFree() int {
	free := bs.b.Capacity() - bs.inflight
	if bs.lastFree < free {
		free = bs.lastFree
	}
	if free < 0 {
		free = 0
	}
	return free
}

// Gateway fronts a pool of backends: bounded admission, least-busy
// dispatch, health-checked failover. It implements core.BundleExecutor
// so a core.Service can expose a whole fleet over the wire protocol.
type Gateway struct {
	cfg Config

	mu       sync.Mutex
	backends []*backendState
	admitted int // waiting + in flight
	waiting  int
	wake     chan struct{}
	closed   bool

	tm     *gwMetrics
	adm    *session.Admission
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// SessionAdmission returns the gateway's cold-handshake gate (nil when
// unlimited) for wiring into the core.Service that fronts it.
func (g *Gateway) SessionAdmission() *session.Admission { return g.adm }

// NewGateway wires the backends and starts the health monitor. Each
// backend is probed once synchronously so the initial healthy set is
// accurate (an unreachable remote starts drained, not trusted).
func NewGateway(cfg Config, backends ...Backend) *Gateway {
	def := DefaultConfig()
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = def.HealthInterval
	}
	if cfg.HealthBackoff <= 0 {
		cfg.HealthBackoff = def.HealthBackoff
	}
	if cfg.HealthBackoffMax <= 0 {
		cfg.HealthBackoffMax = def.HealthBackoffMax
	}
	if cfg.DispatchRetries <= 0 {
		cfg.DispatchRetries = def.DispatchRetries
	}
	reg := cfg.Telemetry
	if reg == nil {
		// Private registry: Stats() is backed by instruments either way.
		reg = telemetry.NewRegistry()
	}
	g := &Gateway{
		cfg:    cfg,
		wake:   make(chan struct{}),
		tm:     newGwMetrics(reg),
		adm:    session.NewAdmission(cfg.ColdHandshakeLimit),
		stopCh: make(chan struct{}),
	}
	capacity := 0
	for _, b := range backends {
		// Remote backends inherit the gateway's tracer so cross-process
		// bundles keep one trace id (no-op when tracing is disabled).
		if rb, ok := b.(*RemoteBackend); ok && rb.tracer == nil {
			rb.SetTracer(cfg.Telemetry.Tracer())
		}
		bs := &backendState{b: b, m: newBackendMetrics(reg, b.Name())}
		free, err := b.FreeSlots()
		if err == nil {
			bs.healthy = true
			bs.lastFree = free
			bs.nextProbe = time.Now().Add(cfg.HealthInterval)
		} else {
			bs.lastErr = err
			bs.backoff = cfg.HealthBackoff
			bs.nextProbe = time.Now().Add(bs.backoff)
		}
		g.backends = append(g.backends, bs)
		capacity += b.Capacity()
	}
	if g.cfg.QueueDepth <= 0 {
		g.cfg.QueueDepth = 2 * capacity
		if g.cfg.QueueDepth == 0 {
			g.cfg.QueueDepth = 1
		}
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g
}

// Submit pre-executes one bundle on the least-busy healthy backend.
// It returns ErrOverloaded without queuing when the admission bound is
// hit, fails over on backend faults, and respects ctx plus the
// configured per-bundle deadline while waiting for capacity.
func (g *Gateway) Submit(ctx context.Context, bundle *types.Bundle) (*core.BundleResult, error) {
	if bundle == nil || len(bundle.Txs) == 0 {
		return nil, core.ErrBundleEmpty
	}

	// Continue the submitter's distributed trace (the fronting
	// core.Service puts its span on ctx); admission, queue wait, and
	// dispatch each become their own span.
	gtr := g.cfg.Telemetry.Tracer()
	var ssp *telemetry.TraceSpan
	if gtr != nil {
		if parent := telemetry.SpanFromContext(ctx); parent.Valid() {
			ssp = gtr.StartSpan("gateway.submit", parent)
			ssp.AddInt("txs", int64(len(bundle.Txs)))
		}
	}

	// Admission: a full queue rejects instead of blocking (the typed
	// backpressure signal the single-device Execute never had).
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ssp.SetError(ErrClosed)
		ssp.End()
		return nil, ErrClosed
	}
	if g.admitted >= g.cfg.QueueDepth {
		g.tm.rejected.Inc()
		g.mu.Unlock()
		ssp.SetError(ErrOverloaded)
		ssp.End()
		return nil, ErrOverloaded
	}
	g.admitted++
	g.waiting++
	g.mu.Unlock()
	g.tm.admitted.Inc()
	defer func() {
		g.mu.Lock()
		g.admitted--
		g.mu.Unlock()
	}()

	if g.cfg.BundleDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.BundleDeadline)
		defer cancel()
	}

	start := time.Now()
	waitDone := false
	retries := 0
	// The queue wait gets its own span AND stamps the wait histogram's
	// exemplar, so a p99 queue-wait bucket points at a concrete trace.
	var qsp *telemetry.TraceSpan
	if ssp != nil {
		qsp = gtr.StartSpan("gateway.queue_wait", ssp.Context())
	}
	for {
		bs, wake := g.reserve()
		if bs == nil {
			select {
			case <-wake:
				continue
			case <-ctx.Done():
				g.mu.Lock()
				g.waiting--
				g.mu.Unlock()
				g.tm.failed.Inc()
				err := fmt.Errorf("%w: %w", ErrNoBackends, ctx.Err())
				qsp.SetError(err)
				qsp.End()
				ssp.SetError(err)
				ssp.End()
				return nil, err
			case <-g.stopCh:
				g.mu.Lock()
				g.waiting--
				g.mu.Unlock()
				qsp.SetError(ErrClosed)
				qsp.End()
				ssp.SetError(ErrClosed)
				ssp.End()
				return nil, ErrClosed
			}
		}
		if !waitDone {
			if ssp != nil {
				g.tm.queueWait.ObserveDurationTraced(time.Since(start), ssp.TraceID())
			} else {
				g.tm.queueWait.ObserveDuration(time.Since(start))
			}
			qsp.End()
			waitDone = true
		}

		// The dispatch span rides ctx into the backend: an in-process
		// device (or the remote client's wire context) parents its
		// "device.bundle" span on it. Backend names are deployment
		// labels the operator chose — public, never tainted.
		bctx := ctx
		var dsp *telemetry.TraceSpan
		if ssp != nil {
			dsp = gtr.StartSpan("gateway.dispatch", ssp.Context())
			dsp.AddAttr("backend", bs.b.Name())
			bctx = telemetry.ContextWithSpan(ctx, dsp.Context())
		}
		res, err := bs.b.Execute(bctx, bundle)
		dsp.SetError(err)
		dsp.End()
		g.release(bs, res, err)
		if err == nil {
			g.tm.completed.Inc()
			ssp.End()
			return res, nil
		}
		var be *BackendError
		if !errors.As(err, &be) {
			// The bundle's own fault (invalid tx, context expiry while
			// holding a slot): no failover, surface it.
			g.tm.failed.Inc()
			ssp.SetError(err)
			ssp.End()
			return nil, err
		}
		// Infrastructure fault: drain the backend and retry the bundle
		// on a survivor.
		retries++
		if ctx.Err() != nil || retries > g.cfg.DispatchRetries {
			g.tm.failed.Inc()
			ssp.SetError(err)
			ssp.End()
			return nil, err
		}
		g.mu.Lock()
		g.waiting++
		g.mu.Unlock()
		g.tm.retries.Inc()
	}
}

// reserve picks the healthy backend with the most effective free
// slots, reserving one. When none qualifies it returns the current
// wake channel to wait on.
func (g *Gateway) reserve() (*backendState, chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var best *backendState
	for _, bs := range g.backends {
		if !bs.healthy {
			continue
		}
		// In-process probes are a channel-length read; refresh on the
		// dispatch path so scheduling sees the device's true occupancy
		// (other clients may share the device outside this gateway).
		if lb, ok := bs.b.(*LocalBackend); ok {
			//hardtape:locksafe-ok LocalBackend.FreeSlots is an in-process channel-length read, not network I/O
			if free, err := lb.FreeSlots(); err == nil {
				bs.lastFree = free
			}
		}
		if bs.effectiveFree() <= 0 {
			continue
		}
		switch {
		case best == nil,
			bs.effectiveFree() > best.effectiveFree(),
			bs.effectiveFree() == best.effectiveFree() &&
				bs.m.dispatched.Value() < best.m.dispatched.Value():
			best = bs
		}
	}
	if best == nil {
		return nil, g.wake
	}
	best.inflight++
	best.lastFree--
	g.waiting--
	return best, nil
}

// release returns a reservation, records the outcome, and wakes
// waiters (a slot just opened — or a failure changed the fleet shape).
func (g *Gateway) release(bs *backendState, res *core.BundleResult, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	bs.inflight--
	if bs.lastFree < bs.b.Capacity() {
		bs.lastFree++
	}
	var be *BackendError
	if err == nil {
		bs.m.dispatched.Inc()
		if res != nil {
			bs.m.addHEVM(res.HEVMStats)
		}
	} else if errors.As(err, &be) {
		bs.m.failures.Inc()
		bs.healthy = false
		bs.lastErr = err
		bs.backoff = g.cfg.HealthBackoff
		bs.nextProbe = time.Now().Add(bs.backoff)
	} else {
		// Bundle-fault errors still consumed a dispatch.
		bs.m.dispatched.Inc()
	}
	g.broadcastLocked()
}

// broadcastLocked wakes every Submit waiting for capacity.
func (g *Gateway) broadcastLocked() {
	close(g.wake)
	g.wake = make(chan struct{})
}

// healthLoop probes backends: healthy ones every HealthInterval,
// failed ones on their exponential-backoff schedule, re-admitting as
// soon as a probe succeeds.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	tick := g.cfg.HealthInterval / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-t.C:
		}
		now := time.Now()
		var due []*backendState
		g.mu.Lock()
		for _, bs := range g.backends {
			if !now.Before(bs.nextProbe) {
				due = append(due, bs)
			}
		}
		g.mu.Unlock()
		for _, bs := range due {
			free, err := bs.b.FreeSlots()
			g.mu.Lock()
			if err != nil {
				if bs.healthy {
					bs.m.failures.Inc()
				}
				bs.healthy = false
				bs.lastErr = err
				if bs.backoff <= 0 {
					bs.backoff = g.cfg.HealthBackoff
				} else if bs.backoff < g.cfg.HealthBackoffMax {
					bs.backoff *= 2
					if bs.backoff > g.cfg.HealthBackoffMax {
						bs.backoff = g.cfg.HealthBackoffMax
					}
				}
				bs.nextProbe = time.Now().Add(bs.backoff)
			} else {
				readmitted := !bs.healthy
				bs.healthy = true
				bs.lastErr = nil
				bs.backoff = 0
				bs.lastFree = free
				bs.nextProbe = time.Now().Add(g.cfg.HealthInterval)
				if readmitted {
					g.broadcastLocked()
				}
			}
			g.mu.Unlock()
		}
	}
}

// Close drains the gateway: waiting submissions fail with ErrClosed,
// the health loop stops, and backends are released.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stopCh)
	g.wg.Wait()
	var first error
	for _, bs := range g.backends {
		if err := bs.b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- core.BundleExecutor ---

// ExecuteContext implements core.BundleExecutor, so a core.Service can
// front the whole fleet.
func (g *Gateway) ExecuteContext(ctx context.Context, bundle *types.Bundle) (*core.BundleResult, error) {
	return g.Submit(ctx, bundle)
}

// FreeSlots implements core.BundleExecutor: dispatchable slots across
// healthy backends.
func (g *Gateway) FreeSlots() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	free := 0
	for _, bs := range g.backends {
		if bs.healthy {
			free += bs.effectiveFree()
		}
	}
	return free
}

// SlotCount implements core.BundleExecutor: total fleet capacity.
func (g *Gateway) SlotCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, bs := range g.backends {
		n += bs.b.Capacity()
	}
	return n
}
