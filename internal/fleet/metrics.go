package fleet

import (
	"hardtape/internal/hevm"
	"hardtape/internal/telemetry"
)

// gwMetrics is the gateway's registered series. The gateway always
// has a live registry — a private one when Config.Telemetry is nil —
// because these instruments are also the backing store for Stats():
// the old private wait-window ring and per-backend aggregate structs
// are gone, replaced by the shared histogram/counters.
type gwMetrics struct {
	admitted  *telemetry.Counter
	rejected  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	retries   *telemetry.Counter
	queueWait *telemetry.Histogram
}

func newGwMetrics(reg *telemetry.Registry) *gwMetrics {
	return &gwMetrics{
		admitted:  reg.Counter("hardtape_fleet_submissions_total", "bundle submissions by admission outcome", "outcome", "admitted"),
		rejected:  reg.Counter("hardtape_fleet_submissions_total", "bundle submissions by admission outcome", "outcome", "rejected"),
		completed: reg.Counter("hardtape_fleet_bundles_total", "admitted bundles by final outcome", "outcome", "completed"),
		failed:    reg.Counter("hardtape_fleet_bundles_total", "admitted bundles by final outcome", "outcome", "failed"),
		retries:   reg.Counter("hardtape_fleet_retries_total", "bundle failovers to another backend"),
		queueWait: reg.Histogram("hardtape_fleet_queue_wait_seconds", "admission-to-slot wait", nil),
	}
}

// backendMetrics is one backend's slice of the series, labeled by the
// operator-assigned backend name.
type backendMetrics struct {
	dispatched *telemetry.Counter
	failures   *telemetry.Counter

	hevmSteps      *telemetry.Counter
	hevmSwaps      *telemetry.Counter
	hevmEvicted    *telemetry.Counter
	hevmLoaded     *telemetry.Counter
	hevmCodeFaults *telemetry.Counter
	hevmOverflows  *telemetry.Counter
	hevmL2Peak     *telemetry.Gauge
}

// newBackendMetrics registers the per-backend series. The backend
// label is the operator-chosen deployment name from Config — fleet
// topology the SP already knows, never user data.
//
//hardtape:telemetry-ok backend label is the operator-assigned deployment name, not user data
func newBackendMetrics(reg *telemetry.Registry, name string) *backendMetrics {
	return &backendMetrics{
		dispatched:     reg.Counter("hardtape_fleet_backend_dispatched_total", "bundles run on this backend", "backend", name),
		failures:       reg.Counter("hardtape_fleet_backend_failures_total", "infrastructure faults on this backend", "backend", name),
		hevmSteps:      reg.Counter("hardtape_fleet_backend_hevm_steps_total", "EVM instructions retired behind this backend", "backend", name),
		hevmSwaps:      reg.Counter("hardtape_fleet_backend_hevm_swap_events_total", "L2/L3 swap events behind this backend", "backend", name),
		hevmEvicted:    reg.Counter("hardtape_fleet_backend_hevm_pages_evicted_total", "pages sealed to L3 behind this backend", "backend", name),
		hevmLoaded:     reg.Counter("hardtape_fleet_backend_hevm_pages_loaded_total", "pages reloaded from L3 behind this backend", "backend", name),
		hevmCodeFaults: reg.Counter("hardtape_fleet_backend_hevm_code_faults_total", "L1 code-cache misses behind this backend", "backend", name),
		hevmOverflows:  reg.Counter("hardtape_fleet_backend_hevm_overflows_total", "Memory Overflow aborts behind this backend", "backend", name),
		hevmL2Peak:     reg.Gauge("hardtape_fleet_backend_hevm_l2_pages_peak", "high-water L2 occupancy behind this backend", "backend", name),
	}
}

// addHEVM folds one bundle's machine stats into the backend's series.
func (m *backendMetrics) addHEVM(s hevm.Stats) {
	m.hevmSteps.Add(s.Steps)
	m.hevmSwaps.Add(uint64(s.SwapEvents))
	m.hevmEvicted.Add(uint64(s.PagesEvicted))
	m.hevmLoaded.Add(uint64(s.PagesLoaded))
	m.hevmCodeFaults.Add(s.CodeFaults)
	if s.Overflowed {
		m.hevmOverflows.Inc()
	}
	m.hevmL2Peak.SetMax(int64(s.L2PagesUsed))
}

// hevmStats reconstructs the aggregate hevm.Stats view BackendStats
// has always exposed (wire compatibility) from the series.
func (m *backendMetrics) hevmStats() hevm.Stats {
	return hevm.Stats{
		Steps:        m.hevmSteps.Value(),
		SwapEvents:   int(m.hevmSwaps.Value()),
		PagesEvicted: int(m.hevmEvicted.Value()),
		PagesLoaded:  int(m.hevmLoaded.Value()),
		L2PagesUsed:  uint64(m.hevmL2Peak.Value()),
		Overflowed:   m.hevmOverflows.Value() > 0,
		CodeFaults:   m.hevmCodeFaults.Value(),
	}
}
