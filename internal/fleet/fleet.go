// Package fleet pools many HarDTAPE devices behind one gateway — the
// scaling story the paper's exclusive-assignment model (§III) demands:
// each bundle still gets a dedicated HEVM, but the HEVMs come from a
// fleet of devices instead of a single chip. The gateway provides
//
//   - bounded admission: a configurable queue depth and per-bundle
//     deadline, rejecting excess load with ErrOverloaded instead of
//     blocking forever;
//   - weighted least-busy dispatch driven by live free-slot counts
//     (Device.FreeSlots locally, the MsgStatus probe remotely);
//   - health-checked failover: failed backends are drained, probed
//     with exponential backoff, and re-admitted when they recover,
//     while accepted bundles retry on surviving backends;
//   - a Stats snapshot aggregating queue behaviour (depth, p50/p99
//     wait) with per-backend dispatch/failure counters and the
//     underlying hevm/oram statistics.
//
// The gateway runs inside the trusted boundary (a scaled-up
// Hypervisor): it terminates user secure channels and forwards
// plaintext bundles to devices over links the SP must protect — see
// DESIGN.md "Fleet deployment" for the trust argument.
package fleet

import (
	"errors"
	"fmt"
)

// Typed gateway errors.
var (
	// ErrOverloaded rejects a submission when the admission queue is
	// full. Callers should back off and retry; the bundle was never
	// accepted.
	ErrOverloaded = errors.New("fleet: admission queue full")
	// ErrNoBackends means every backend is unhealthy (or the gateway
	// has none); accepted bundles waiting on a slot get it once their
	// deadline expires.
	ErrNoBackends = errors.New("fleet: no healthy backend")
	// ErrClosed reports submissions after Close.
	ErrClosed = errors.New("fleet: gateway closed")
)

// BackendError wraps infrastructure failures — dead connections,
// killed devices — as opposed to bundle-fault errors (invalid
// transactions, aborts), which are returned to the caller verbatim.
// The gateway fails over on BackendError and only on BackendError.
type BackendError struct {
	Backend string
	Err     error
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("fleet: backend %s: %v", e.Backend, e.Err)
}

func (e *BackendError) Unwrap() error { return e.Err }
