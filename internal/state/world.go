// Package state implements the Ethereum world state: a canonical
// MPT-backed store (WorldState) plus the journaled per-bundle write
// overlay (Overlay) that gives pre-executed transactions temporary,
// revertible world-state modifications (paper §II-A, §IV-B).
package state

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hardtape/internal/keccak"
	"hardtape/internal/mpt"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Reader is the read-only world-state view the execution engine pulls
// from. Implementations include the direct in-memory WorldState, the
// ORAM-backed reader, and caching wrappers.
type Reader interface {
	// Account returns the account state, or false if it does not exist.
	Account(addr types.Address) (*types.Account, bool)
	// Storage returns the storage record at key (zero hash if unset).
	Storage(addr types.Address, key types.Hash) types.Hash
	// Code returns the contract code for a code hash (nil if unknown).
	Code(codeHash types.Hash) []byte
}

// WorldState is the canonical, MPT-authenticated world state held by a
// Node. It is safe for concurrent reads interleaved with exclusive
// writes (callers synchronize writes; a mutex protects map access).
type WorldState struct {
	mu       sync.RWMutex
	accounts *mpt.SecureTrie
	storage  map[types.Address]*mpt.SecureTrie
	code     map[types.Hash][]byte
	// storageKeys is a preimage index (the secure trie stores hashed
	// keys) so block sync can enumerate an account's records.
	storageKeys map[types.Address]map[types.Hash]struct{}
	// addrs is the preimage index for account addresses.
	addrs map[types.Address]struct{}
}

var _ Reader = (*WorldState)(nil)

// NewWorldState returns an empty world state.
func NewWorldState() *WorldState {
	return &WorldState{
		accounts:    mpt.NewSecure(),
		storage:     make(map[types.Address]*mpt.SecureTrie),
		code:        make(map[types.Hash][]byte),
		storageKeys: make(map[types.Address]map[types.Hash]struct{}),
		addrs:       make(map[types.Address]struct{}),
	}
}

// Account implements Reader.
func (w *WorldState) Account(addr types.Address) (*types.Account, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	enc, err := w.accounts.Get(addr[:])
	if err != nil {
		return nil, false
	}
	acct, err := types.DecodeAccountRLP(enc)
	if err != nil {
		return nil, false
	}
	return acct, true
}

// Storage implements Reader.
func (w *WorldState) Storage(addr types.Address, key types.Hash) types.Hash {
	w.mu.RLock()
	defer w.mu.RUnlock()
	trie, ok := w.storage[addr]
	if !ok {
		return types.Hash{}
	}
	enc, err := trie.Get(key[:])
	if err != nil {
		return types.Hash{}
	}
	return types.BytesToHash(enc)
}

// Code implements Reader.
func (w *WorldState) Code(codeHash types.Hash) []byte {
	if codeHash == types.EmptyCodeHash || codeHash.IsZero() {
		return nil
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.code[codeHash]
}

// SetAccount writes the account record (storage root managed by Root).
func (w *WorldState) SetAccount(addr types.Address, acct *types.Account) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.addrs[addr] = struct{}{}
	return w.accounts.Put(addr[:], acct.Clone().EncodeRLP())
}

// DeleteAccount removes an account entirely.
func (w *WorldState) DeleteAccount(addr types.Address) {
	w.mu.Lock()
	defer w.mu.Unlock()
	_ = w.accounts.Delete(addr[:])
	delete(w.storage, addr)
	delete(w.storageKeys, addr)
	delete(w.addrs, addr)
}

// SetStorage writes one storage record; a zero value deletes the slot.
func (w *WorldState) SetStorage(addr types.Address, key, value types.Hash) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	trie, ok := w.storage[addr]
	if !ok {
		trie = mpt.NewSecure()
		w.storage[addr] = trie
	}
	if value.IsZero() {
		if keys := w.storageKeys[addr]; keys != nil {
			delete(keys, key)
		}
		err := trie.Delete(key[:])
		if errors.Is(err, mpt.ErrNotFound) {
			return nil
		}
		return err
	}
	keys, ok := w.storageKeys[addr]
	if !ok {
		keys = make(map[types.Hash]struct{})
		w.storageKeys[addr] = keys
	}
	keys[key] = struct{}{}
	// Store the minimal big-endian encoding, like Ethereum.
	v := value.Word().Bytes()
	return trie.Put(key[:], v)
}

// SetCode stores contract code, returning its hash.
func (w *WorldState) SetCode(code []byte) types.Hash {
	h := types.Hash(keccak.Sum256(code))
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make([]byte, len(code))
	copy(cp, code)
	w.code[h] = cp
	return h
}

// Root recomputes every dirty account's storage root and returns the
// state root. Call after a batch of writes.
func (w *WorldState) Root() (types.Hash, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Deterministic iteration order for reproducibility of any errors.
	addrs := make([]types.Address, 0, len(w.storage))
	for addr := range w.storage {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i][:]) < string(addrs[j][:])
	})
	for _, addr := range addrs {
		enc, err := w.accounts.Get(addr[:])
		if err != nil {
			// Storage exists for an account that was never created;
			// ignore, it is unreachable state.
			continue
		}
		acct, err := types.DecodeAccountRLP(enc)
		if err != nil {
			return types.Hash{}, fmt.Errorf("state: corrupt account %s: %w", addr, err)
		}
		root := types.Hash(w.storage[addr].Hash())
		if acct.StorageRoot != root {
			acct.StorageRoot = root
			if err := w.accounts.Put(addr[:], acct.EncodeRLP()); err != nil {
				return types.Hash{}, fmt.Errorf("state: update storage root: %w", err)
			}
		}
	}
	return types.Hash(w.accounts.Hash()), nil
}

// ProveAccount returns a Merkle proof of the account record.
func (w *WorldState) ProveAccount(addr types.Address) (*mpt.Proof, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.accounts.Prove(addr[:])
}

// ProveStorage returns a Merkle proof of one storage record against the
// account's storage root.
func (w *WorldState) ProveStorage(addr types.Address, key types.Hash) (*mpt.Proof, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	trie, ok := w.storage[addr]
	if !ok {
		return nil, fmt.Errorf("state: no storage for %s: %w", addr, mpt.ErrNotFound)
	}
	return trie.Prove(key[:])
}

// StorageKeys returns all storage keys of an account in deterministic
// order (for block-sync page building).
func (w *WorldState) StorageKeys(addr types.Address) []types.Hash {
	w.mu.RLock()
	defer w.mu.RUnlock()
	keys := make([]types.Hash, 0, len(w.storageKeys[addr]))
	for k := range w.storageKeys[addr] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return string(keys[i][:]) < string(keys[j][:])
	})
	return keys
}

// Addresses returns every account address in deterministic order.
func (w *WorldState) Addresses() []types.Address {
	w.mu.RLock()
	defer w.mu.RUnlock()
	addrs := make([]types.Address, 0, len(w.addrs))
	for a := range w.addrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i][:]) < string(addrs[j][:])
	})
	return addrs
}

// AddBalance credits an account, creating it if needed.
func (w *WorldState) AddBalance(addr types.Address, amount *uint256.Int) error {
	acct, ok := w.Account(addr)
	if !ok {
		acct = types.NewAccount()
	}
	acct.Balance.Add(acct.Balance, amount)
	return w.SetAccount(addr, acct)
}
