package state

import (
	"sync"

	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// This file implements the versioned state layer behind intra-bundle
// optimistic parallelism (DESIGN.md §16):
//
//   - Versioned is the bundle-scope committed buffer. Transactions
//     commit into it strictly in bundle order, so a single resolved
//     entry per account/slot (rather than a per-version list) is
//     enough: a reader either sees the latest committed value or falls
//     through to the bundle's immutable base snapshot.
//   - TxOverlay is the speculative per-transaction journal: an Overlay
//     whose backend records the first value observed for every
//     account field and storage slot actually consumed (the read set)
//     and whose mutators flag what was written (the write set).
//   - Validation is by value: a transaction's read set is valid iff
//     every consumed value still equals what the committed buffer (or
//     the static base) holds. The base never changes during a bundle —
//     only commits can invalidate a read — so validation needs no base
//     access at all.
//
// Account commits are per-field-aware to keep the classic serializers
// (coinbase fee credits, transfer recipients) from conflicting on
// every transaction: an account whose balance was only Add/SubBalanced
// and never read commits as a signed balance *delta* against the
// current committed value. Any account with a written nonce/code, a
// creation or destruction, or a consumed-and-written balance commits
// absolutely — and then its full observed state joins the read set, so
// the absolute write is only applied when the observation still holds.

// accountFieldMask marks which fields of an account an execution
// consumed (and therefore which fields validation must check).
type accountFieldMask uint8

const (
	readNonce accountFieldMask = 1 << iota
	readBalance
	readCodeHash
	readExists

	readAll = readNonce | readBalance | readCodeHash | readExists
)

// writeFlags marks which mutators touched an account.
type writeFlags uint8

const (
	wroteBalance writeFlags = 1 << iota
	wroteNonce
	wroteCode
	wroteCreated
	wroteDestructed

	// wroteAbsolute selects the flags that force an absolute commit.
	wroteAbsolute = wroteNonce | wroteCode | wroteCreated | wroteDestructed
)

// versionedAccount is one fully resolved account state: the canonical
// absent form is {0, 0, EmptyCodeHash, false}.
type versionedAccount struct {
	nonce    uint64
	balance  uint256.Int
	codeHash types.Hash
	exists   bool
}

func accountOf(acct *types.Account, found bool) versionedAccount {
	if !found {
		return versionedAccount{codeHash: types.EmptyCodeHash}
	}
	return versionedAccount{
		nonce:    acct.Nonce,
		balance:  *acct.Balance,
		codeHash: acct.CodeHash,
		exists:   true,
	}
}

// accountRead pairs a consumed-field mask with the observed values.
type accountRead struct {
	mask accountFieldMask
	obs  versionedAccount
}

// ReadSet is everything a speculative execution observed from outside
// its own writes: first-observed account fields and storage values.
type ReadSet struct {
	accounts map[types.Address]accountRead
	storage  map[storageSlot]types.Hash
}

// Len counts validated entries (accounts + storage slots) — the unit
// the lane clock charges per commit-time validation.
func (rs *ReadSet) Len() int {
	if rs == nil {
		return 0
	}
	return len(rs.accounts) + len(rs.storage)
}

// accountWrite is one account's pending commit: either the full
// resolved final state (absolute), or a signed balance delta plus a
// monotonic exists bit.
type accountWrite struct {
	absolute bool
	final    versionedAccount

	deltaNeg bool
	delta    uint256.Int
	exists   bool
}

// WriteSet is everything a speculative execution wants to publish.
type WriteSet struct {
	accounts map[types.Address]*accountWrite
	storage  map[storageSlot]types.Hash
	code     map[types.Hash][]byte
}

// Len counts committed entries (accounts + storage slots) — the unit
// the lane clock charges per commit.
func (ws *WriteSet) Len() int {
	if ws == nil {
		return 0
	}
	return len(ws.accounts) + len(ws.storage)
}

// Versioned is the bundle-scope committed buffer shared by all
// speculative lanes. Reads (View, Validate) take the read lock; Commit
// is called by the single in-order committer with the write lock.
type Versioned struct {
	mu       sync.RWMutex
	accounts map[types.Address]versionedAccount
	storage  map[storageSlot]types.Hash
	code     map[types.Hash][]byte
}

// NewVersioned returns an empty committed buffer.
func NewVersioned() *Versioned {
	return &Versioned{
		accounts: make(map[types.Address]versionedAccount),
		storage:  make(map[storageSlot]types.Hash),
		code:     make(map[types.Hash][]byte),
	}
}

// View returns a Reader that resolves committed entries first and
// falls through to base — the versioned snapshot a speculative lane
// executes against. base is charged (clock, caches) only on real
// fall-throughs, so committed-buffer hits stay on-chip.
func (v *Versioned) View(base Reader) Reader {
	return &versionedView{v: v, base: base}
}

type versionedView struct {
	v    *Versioned
	base Reader
}

func (r *versionedView) Account(addr types.Address) (*types.Account, bool) {
	r.v.mu.RLock()
	e, ok := r.v.accounts[addr]
	r.v.mu.RUnlock()
	if !ok {
		return r.base.Account(addr)
	}
	if !e.exists {
		return nil, false
	}
	bal := e.balance
	return &types.Account{Nonce: e.nonce, Balance: &bal, CodeHash: e.codeHash}, true
}

func (r *versionedView) Storage(addr types.Address, key types.Hash) types.Hash {
	r.v.mu.RLock()
	val, ok := r.v.storage[storageSlot{addr, key}]
	r.v.mu.RUnlock()
	if ok {
		return val
	}
	return r.base.Storage(addr, key)
}

func (r *versionedView) Code(codeHash types.Hash) []byte {
	r.v.mu.RLock()
	code, ok := r.v.code[codeHash]
	r.v.mu.RUnlock()
	if ok {
		return code
	}
	return r.base.Code(codeHash)
}

// Validate reports whether every observation in rs still holds against
// the committed buffer. The base snapshot is immutable for the life of
// a bundle, so an entry absent from the buffer cannot have changed —
// validation never touches the base. A nil read set is valid.
func (v *Versioned) Validate(rs *ReadSet) bool {
	if rs == nil {
		return true
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	for addr, ar := range rs.accounts {
		cur, ok := v.accounts[addr]
		if !ok {
			// Committed entries are never deleted: absent now means
			// absent at observation time, so the value came from base.
			continue
		}
		if ar.mask&readNonce != 0 && cur.nonce != ar.obs.nonce {
			return false
		}
		if ar.mask&readBalance != 0 && !cur.balance.Eq(&ar.obs.balance) {
			return false
		}
		if ar.mask&readCodeHash != 0 && cur.codeHash != ar.obs.codeHash {
			return false
		}
		if ar.mask&readExists != 0 && cur.exists != ar.obs.exists {
			return false
		}
	}
	for sl, observed := range rs.storage {
		if cur, ok := v.storage[sl]; ok && cur != observed {
			return false
		}
	}
	return true
}

// Commit publishes a validated (or re-executed) transaction's write
// set. Called only by the in-order committer; delta commits resolve
// against the current committed value, falling through to base for
// accounts no earlier transaction touched.
func (v *Versioned) Commit(ws *WriteSet, base Reader) {
	if ws == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for addr, aw := range ws.accounts {
		if aw.absolute {
			fin := aw.final
			if !fin.exists {
				// Canonicalize deletions so later observations compare
				// equal to a base-absent account.
				fin = versionedAccount{codeHash: types.EmptyCodeHash}
			}
			v.accounts[addr] = fin
			continue
		}
		cur, ok := v.accounts[addr]
		if !ok {
			cur = accountOf(base.Account(addr))
		}
		if aw.deltaNeg {
			cur.balance.Sub(&cur.balance, &aw.delta)
		} else {
			cur.balance.Add(&cur.balance, &aw.delta)
		}
		cur.exists = cur.exists || aw.exists
		v.accounts[addr] = cur
	}
	for sl, val := range ws.storage {
		v.storage[sl] = val
	}
	for h, code := range ws.code {
		if _, dup := v.code[h]; !dup {
			v.code[h] = code
		}
	}
}

// recordingReader sits between a TxOverlay and the versioned view: it
// records the first value observed for every account and storage slot
// and pins it, so repeated reads within one speculation stay
// self-consistent even while the committer publishes concurrently.
type recordingReader struct {
	view     Reader
	accounts map[types.Address]versionedAccount
	storage  map[storageSlot]types.Hash
}

func (r *recordingReader) Account(addr types.Address) (*types.Account, bool) {
	if obs, ok := r.accounts[addr]; ok {
		if !obs.exists {
			return nil, false
		}
		bal := obs.balance
		return &types.Account{Nonce: obs.nonce, Balance: &bal, CodeHash: obs.codeHash}, true
	}
	acct, found := r.view.Account(addr)
	r.accounts[addr] = accountOf(acct, found)
	return acct, found
}

func (r *recordingReader) Storage(addr types.Address, key types.Hash) types.Hash {
	sl := storageSlot{addr, key}
	if val, ok := r.storage[sl]; ok {
		return val
	}
	val := r.view.Storage(addr, key)
	r.storage[sl] = val
	return val
}

// Code is content-addressed: the bytes behind a hash never change, so
// code reads need neither pinning nor validation (the consuming
// account's codeHash field covers them).
func (r *recordingReader) Code(codeHash types.Hash) []byte {
	return r.view.Code(codeHash)
}

// txFlags tracks one account's consumption and mutation within a
// speculative transaction. Deliberately not journaled: a reverted
// write leaves its flag set, but then the final value equals the
// observed one, so the forced-absolute commit is validated a no-op.
type txFlags struct {
	consumed accountFieldMask
	written  writeFlags
}

// TxOverlay is the speculative per-transaction journal: a full Overlay
// running against a recording view of the versioned state, with the
// Journal read methods overridden to mark consumed account fields and
// the mutators overridden to mark writes. Finish extracts the read and
// write sets for conflict detection and in-order commit.
type TxOverlay struct {
	*Overlay
	rec *recordingReader
	// orig serves GetCommittedStorage: SSTORE gas keys off the
	// pre-BUNDLE value (the sequential Overlay reads its static
	// backend), so it must bypass both the committed buffer and the
	// recorder. Base values are immutable — no validation needed.
	orig  Reader
	flags map[types.Address]*txFlags
}

var _ Journal = (*TxOverlay)(nil)

// NewTxOverlay builds a speculative journal for one transaction over
// the committed buffer v and the bundle's immutable base reader.
func NewTxOverlay(v *Versioned, base Reader) *TxOverlay {
	rec := &recordingReader{
		view:     v.View(base),
		accounts: make(map[types.Address]versionedAccount),
		storage:  make(map[storageSlot]types.Hash),
	}
	return &TxOverlay{
		Overlay: NewOverlay(rec),
		rec:     rec,
		orig:    base,
		flags:   make(map[types.Address]*txFlags),
	}
}

func (t *TxOverlay) fl(addr types.Address) *txFlags {
	f, ok := t.flags[addr]
	if !ok {
		f = &txFlags{}
		t.flags[addr] = f
	}
	return f
}

func (t *TxOverlay) consume(addr types.Address, m accountFieldMask) {
	t.fl(addr).consumed |= m
}

func (t *TxOverlay) wrote(addr types.Address, w writeFlags) {
	t.fl(addr).written |= w
}

// Consuming reads.

func (t *TxOverlay) Exists(addr types.Address) bool {
	t.consume(addr, readExists)
	return t.Overlay.Exists(addr)
}

func (t *TxOverlay) GetBalance(addr types.Address) *uint256.Int {
	t.consume(addr, readBalance)
	return t.Overlay.GetBalance(addr)
}

func (t *TxOverlay) GetNonce(addr types.Address) uint64 {
	t.consume(addr, readNonce)
	return t.Overlay.GetNonce(addr)
}

func (t *TxOverlay) GetCodeHash(addr types.Address) types.Hash {
	// The EXTCODEHASH result folds in existence (zero hash for absent
	// accounts), so both fields are consumed.
	t.consume(addr, readCodeHash|readExists)
	return t.Overlay.GetCodeHash(addr)
}

func (t *TxOverlay) GetCode(addr types.Address) []byte {
	t.consume(addr, readCodeHash)
	return t.Overlay.GetCode(addr)
}

func (t *TxOverlay) GetCodeSize(addr types.Address) int {
	t.consume(addr, readCodeHash)
	return t.Overlay.GetCodeSize(addr)
}

// Flagging mutators.

func (t *TxOverlay) CreateAccount(addr types.Address) {
	t.wrote(addr, wroteCreated)
	t.Overlay.CreateAccount(addr)
}

func (t *TxOverlay) AddBalance(addr types.Address, amount *uint256.Int) {
	t.wrote(addr, wroteBalance)
	t.Overlay.AddBalance(addr, amount)
}

func (t *TxOverlay) SubBalance(addr types.Address, amount *uint256.Int) {
	t.wrote(addr, wroteBalance)
	t.Overlay.SubBalance(addr, amount)
}

func (t *TxOverlay) SetNonce(addr types.Address, nonce uint64) {
	t.wrote(addr, wroteNonce)
	t.Overlay.SetNonce(addr, nonce)
}

func (t *TxOverlay) SetCode(addr types.Address, code []byte) {
	t.wrote(addr, wroteCode)
	t.Overlay.SetCode(addr, code)
}

func (t *TxOverlay) Selfdestruct(addr types.Address) bool {
	t.wrote(addr, wroteDestructed)
	return t.Overlay.Selfdestruct(addr)
}

// GetCommittedStorage reads the pre-bundle value straight from the
// base snapshot (see the orig field).
func (t *TxOverlay) GetCommittedStorage(addr types.Address, key types.Hash) types.Hash {
	return t.orig.Storage(addr, key)
}

// Finish extracts the transaction's read and write sets. Call it after
// ApplyTransaction; on a speculation failure only the read set is
// meaningful (the write set must not be committed).
func (t *TxOverlay) Finish() (*ReadSet, *WriteSet) {
	rs := &ReadSet{
		accounts: make(map[types.Address]accountRead),
		storage:  t.rec.storage,
	}
	ws := &WriteSet{
		accounts: make(map[types.Address]*accountWrite),
		storage:  t.Overlay.storage,
		code:     t.Overlay.code,
	}
	for addr, fl := range t.flags {
		obs, haveObs := t.rec.accounts[addr]
		if !haveObs {
			// Every consumed or mutated account passed through
			// loadAccount and thus the recorder; canonical-absent is a
			// defensive default.
			obs = versionedAccount{codeHash: types.EmptyCodeHash}
		}
		consumed := fl.consumed
		if fl.written != 0 {
			// A fully reverted first touch deletes the overlay entry;
			// the net effect is then the observation itself.
			final := obs
			if e, ok := t.Overlay.accounts[addr]; ok {
				final = versionedAccount{
					nonce:    e.nonce,
					balance:  *e.balance,
					codeHash: e.codeHash,
					exists:   e.exists && !e.destructed,
				}
			}
			switch {
			case fl.written&wroteAbsolute != 0 ||
				(fl.written&wroteBalance != 0 && consumed&readBalance != 0):
				// Absolute commits publish the final resolved state, so
				// every field the resolution depended on must still
				// hold at commit time: force-consume all of them.
				consumed = readAll
				ws.accounts[addr] = &accountWrite{absolute: true, final: final}
			case fl.written&wroteBalance != 0:
				// Unread balance: commit the signed delta so concurrent
				// fee credits (coinbase, transfer recipients) compose
				// instead of conflicting.
				aw := &accountWrite{exists: final.exists}
				if final.balance.Lt(&obs.balance) {
					aw.deltaNeg = true
					aw.delta.Sub(&obs.balance, &final.balance)
				} else {
					aw.delta.Sub(&final.balance, &obs.balance)
				}
				if !aw.delta.IsZero() || (aw.exists && !obs.exists) {
					ws.accounts[addr] = aw
				}
			}
		}
		if consumed != 0 {
			rs.accounts[addr] = accountRead{mask: consumed, obs: obs}
		}
	}
	return rs, ws
}
