package state

import (
	"hardtape/internal/keccak"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Overlay is the journaled, revertible write layer a pre-executed
// bundle runs against. Reads fall through to the backing Reader; writes
// stay local and are discarded when the bundle is released (paper
// step 10: "world state modifications made by the pre-executed
// transactions are not written into any persistent storage").
//
// Overlay also tracks EIP-2929 warm/cold access lists, EIP-1153
// transient storage, the gas refund counter, and emitted logs, all of
// which participate in snapshot/revert.
type Overlay struct {
	backend Reader

	accounts  map[types.Address]*accountEntry
	storage   map[storageSlot]types.Hash
	transient map[storageSlot]types.Hash
	code      map[types.Hash][]byte

	warmAddrs map[types.Address]struct{}
	warmSlots map[storageSlot]struct{}

	refund uint64
	logs   []*types.Log

	journal []journalEntry
}

type storageSlot struct {
	addr types.Address
	key  types.Hash
}

// accountEntry is the overlay's mutable view of one account.
type accountEntry struct {
	nonce    uint64
	balance  *uint256.Int
	codeHash types.Hash
	exists   bool
	// destructed marks a SELFDESTRUCT pending end-of-tx deletion.
	destructed bool
	// createdInOverlay marks contracts deployed by this bundle.
	createdInOverlay bool
}

func (e *accountEntry) clone() *accountEntry {
	cp := *e
	cp.balance = e.balance.Clone()
	return &cp
}

// journalEntry undoes one state mutation on revert.
type journalEntry interface{ revert(o *Overlay) }

type (
	accountChange struct {
		addr types.Address
		prev *accountEntry // nil means the entry was absent
	}
	storageChange struct {
		slot    storageSlot
		prev    types.Hash
		existed bool
	}
	transientChange struct {
		slot    storageSlot
		prev    types.Hash
		existed bool
	}
	warmAddrAdd struct{ addr types.Address }
	warmSlotAdd struct{ slot storageSlot }
	refundSet   struct{ prev uint64 }
	logAppend   struct{}
	codeStore   struct{ hash types.Hash }
)

func (j accountChange) revert(o *Overlay) {
	if j.prev == nil {
		delete(o.accounts, j.addr)
	} else {
		o.accounts[j.addr] = j.prev
	}
}

func (j storageChange) revert(o *Overlay) {
	if j.existed {
		o.storage[j.slot] = j.prev
	} else {
		delete(o.storage, j.slot)
	}
}

func (j transientChange) revert(o *Overlay) {
	if j.existed {
		o.transient[j.slot] = j.prev
	} else {
		delete(o.transient, j.slot)
	}
}

func (j warmAddrAdd) revert(o *Overlay) { delete(o.warmAddrs, j.addr) }
func (j warmSlotAdd) revert(o *Overlay) { delete(o.warmSlots, j.slot) }
func (j refundSet) revert(o *Overlay)   { o.refund = j.prev }
func (j logAppend) revert(o *Overlay)   { o.logs = o.logs[:len(o.logs)-1] }
func (j codeStore) revert(o *Overlay)   { delete(o.code, j.hash) }

// NewOverlay returns an overlay over the given backend.
func NewOverlay(backend Reader) *Overlay {
	return &Overlay{
		backend:   backend,
		accounts:  make(map[types.Address]*accountEntry),
		storage:   make(map[storageSlot]types.Hash),
		transient: make(map[storageSlot]types.Hash),
		code:      make(map[types.Hash][]byte),
		warmAddrs: make(map[types.Address]struct{}),
		warmSlots: make(map[storageSlot]struct{}),
	}
}

// loadAccount pulls an account into the overlay (without journaling).
func (o *Overlay) loadAccount(addr types.Address) *accountEntry {
	if e, ok := o.accounts[addr]; ok {
		return e
	}
	var e *accountEntry
	if acct, ok := o.backend.Account(addr); ok {
		e = &accountEntry{
			nonce:    acct.Nonce,
			balance:  acct.Balance.Clone(),
			codeHash: acct.CodeHash,
			exists:   true,
		}
	} else {
		e = &accountEntry{balance: new(uint256.Int), codeHash: types.EmptyCodeHash}
	}
	o.accounts[addr] = e
	return e
}

// mutateAccount journals the previous value then returns a mutable entry.
func (o *Overlay) mutateAccount(addr types.Address) *accountEntry {
	prevEntry, had := o.accounts[addr]
	e := o.loadAccount(addr)
	var prev *accountEntry
	if had {
		prev = prevEntry.clone()
	} else {
		// The freshly loaded entry mirrors the backend; cloning it
		// preserves fall-through semantics on revert.
		prev = e.clone()
	}
	o.journal = append(o.journal, accountChange{addr: addr, prev: prev})
	return e
}

// Exists reports whether the account exists (post-overlay view).
func (o *Overlay) Exists(addr types.Address) bool {
	e := o.loadAccount(addr)
	return e.exists && !e.destructed
}

// Empty reports EIP-161 emptiness.
func (o *Overlay) Empty(addr types.Address) bool {
	e := o.loadAccount(addr)
	return e.nonce == 0 && e.balance.IsZero() && e.codeHash == types.EmptyCodeHash
}

// CreateAccount marks an account as existing (called on contract
// creation and on first credit).
func (o *Overlay) CreateAccount(addr types.Address) {
	e := o.mutateAccount(addr)
	e.exists = true
	e.createdInOverlay = true
}

// GetBalance returns the current balance (copy).
func (o *Overlay) GetBalance(addr types.Address) *uint256.Int {
	return o.loadAccount(addr).balance.Clone()
}

// AddBalance credits an account.
func (o *Overlay) AddBalance(addr types.Address, amount *uint256.Int) {
	e := o.mutateAccount(addr)
	e.balance.Add(e.balance, amount)
	e.exists = true
}

// SubBalance debits an account (caller checks sufficiency).
func (o *Overlay) SubBalance(addr types.Address, amount *uint256.Int) {
	e := o.mutateAccount(addr)
	e.balance.Sub(e.balance, amount)
}

// GetNonce returns the account nonce.
func (o *Overlay) GetNonce(addr types.Address) uint64 {
	return o.loadAccount(addr).nonce
}

// SetNonce sets the account nonce.
func (o *Overlay) SetNonce(addr types.Address, nonce uint64) {
	e := o.mutateAccount(addr)
	e.nonce = nonce
	e.exists = true
}

// GetCodeHash returns the code hash (EmptyCodeHash for EOAs, zero hash
// for non-existent accounts per EVM EXTCODEHASH semantics).
func (o *Overlay) GetCodeHash(addr types.Address) types.Hash {
	e := o.loadAccount(addr)
	if !e.exists {
		return types.Hash{}
	}
	return e.codeHash
}

// GetCode returns the account's contract code.
func (o *Overlay) GetCode(addr types.Address) []byte {
	e := o.loadAccount(addr)
	if e.codeHash == types.EmptyCodeHash {
		return nil
	}
	if c, ok := o.code[e.codeHash]; ok {
		return c
	}
	return o.backend.Code(e.codeHash)
}

// GetCodeSize returns len(GetCode(addr)).
func (o *Overlay) GetCodeSize(addr types.Address) int {
	return len(o.GetCode(addr))
}

// SetCode deploys code to an account.
func (o *Overlay) SetCode(addr types.Address, code []byte) {
	h := types.Hash(keccak.Sum256(code))
	cp := make([]byte, len(code))
	copy(cp, code)
	if _, dup := o.code[h]; !dup {
		o.code[h] = cp
		o.journal = append(o.journal, codeStore{hash: h})
	}
	e := o.mutateAccount(addr)
	e.codeHash = h
	e.exists = true
}

// GetStorage reads a storage record through the overlay.
func (o *Overlay) GetStorage(addr types.Address, key types.Hash) types.Hash {
	slot := storageSlot{addr, key}
	if v, ok := o.storage[slot]; ok {
		return v
	}
	return o.backend.Storage(addr, key)
}

// GetCommittedStorage reads the pre-bundle value (for SSTORE gas).
func (o *Overlay) GetCommittedStorage(addr types.Address, key types.Hash) types.Hash {
	return o.backend.Storage(addr, key)
}

// SetStorage writes a storage record into the overlay.
func (o *Overlay) SetStorage(addr types.Address, key, value types.Hash) {
	slot := storageSlot{addr, key}
	prev, existed := o.storage[slot]
	o.journal = append(o.journal, storageChange{slot: slot, prev: prev, existed: existed})
	o.storage[slot] = value
}

// GetTransient reads EIP-1153 transient storage.
func (o *Overlay) GetTransient(addr types.Address, key types.Hash) types.Hash {
	return o.transient[storageSlot{addr, key}]
}

// SetTransient writes EIP-1153 transient storage.
func (o *Overlay) SetTransient(addr types.Address, key, value types.Hash) {
	slot := storageSlot{addr, key}
	prev, existed := o.transient[slot]
	o.journal = append(o.journal, transientChange{slot: slot, prev: prev, existed: existed})
	o.transient[slot] = value
}

// Selfdestruct marks the account destructed and zeroes its balance.
// It reports whether the account was not already destructed.
func (o *Overlay) Selfdestruct(addr types.Address) bool {
	e := o.mutateAccount(addr)
	already := e.destructed
	e.destructed = true
	e.balance.Clear()
	return !already
}

// HasSelfdestructed reports pending destruction.
func (o *Overlay) HasSelfdestructed(addr types.Address) bool {
	if e, ok := o.accounts[addr]; ok {
		return e.destructed
	}
	return false
}

// AddLog appends a log record (journaled, so reverts drop it).
func (o *Overlay) AddLog(log *types.Log) {
	o.journal = append(o.journal, logAppend{})
	o.logs = append(o.logs, log)
}

// Logs returns the accumulated logs.
func (o *Overlay) Logs() []*types.Log {
	out := make([]*types.Log, len(o.logs))
	copy(out, o.logs)
	return out
}

// AddRefund increments the SSTORE refund counter.
func (o *Overlay) AddRefund(gas uint64) {
	o.journal = append(o.journal, refundSet{prev: o.refund})
	o.refund += gas
}

// SubRefund decrements the refund counter (clamping at zero).
func (o *Overlay) SubRefund(gas uint64) {
	o.journal = append(o.journal, refundSet{prev: o.refund})
	if gas > o.refund {
		o.refund = 0
		return
	}
	o.refund -= gas
}

// GetRefund returns the refund counter.
func (o *Overlay) GetRefund() uint64 { return o.refund }

// AddressWarm reports and sets address warmth (EIP-2929): it returns
// whether the address was already warm, then warms it.
func (o *Overlay) AddressWarm(addr types.Address) bool {
	if _, ok := o.warmAddrs[addr]; ok {
		return true
	}
	o.warmAddrs[addr] = struct{}{}
	o.journal = append(o.journal, warmAddrAdd{addr: addr})
	return false
}

// SlotWarm reports and sets storage slot warmth (EIP-2929).
func (o *Overlay) SlotWarm(addr types.Address, key types.Hash) bool {
	slot := storageSlot{addr, key}
	if _, ok := o.warmSlots[slot]; ok {
		return true
	}
	o.warmSlots[slot] = struct{}{}
	o.journal = append(o.journal, warmSlotAdd{slot: slot})
	return false
}

// Snapshot returns a revert point.
func (o *Overlay) Snapshot() int { return len(o.journal) }

// RevertToSnapshot undoes every mutation after the snapshot.
func (o *Overlay) RevertToSnapshot(snap int) {
	for i := len(o.journal) - 1; i >= snap; i-- {
		o.journal[i].revert(o)
	}
	o.journal = o.journal[:snap]
}

// BeginTx resets per-transaction scopes: transient storage, access
// lists, the refund counter, and the journal. Cross-transaction
// overlay writes (accounts, storage, code, logs) persist for the rest
// of the bundle.
func (o *Overlay) BeginTx() {
	o.transient = make(map[storageSlot]types.Hash)
	o.warmAddrs = make(map[types.Address]struct{})
	o.warmSlots = make(map[storageSlot]struct{})
	o.refund = 0
	o.journal = o.journal[:0]
}

// FinaliseTx deletes accounts destroyed during the transaction.
func (o *Overlay) FinaliseTx() {
	for addr, e := range o.accounts {
		if e.destructed {
			o.accounts[addr] = &accountEntry{
				balance:  new(uint256.Int),
				codeHash: types.EmptyCodeHash,
			}
		}
	}
}

// TouchedAccounts returns every account the overlay has materialized
// (reads and writes) — used when committing an executed block back to
// the canonical state.
func (o *Overlay) TouchedAccounts() []types.Address {
	out := make([]types.Address, 0, len(o.accounts))
	for addr := range o.accounts {
		out = append(out, addr)
	}
	return out
}

// StorageWrites returns the bundle's dirty storage slots (for traces).
func (o *Overlay) StorageWrites() []types.StorageAccess {
	out := make([]types.StorageAccess, 0, len(o.storage))
	for slot, v := range o.storage {
		out = append(out, types.StorageAccess{
			Address: slot.addr, Slot: slot.key, Value: v, Write: true,
		})
	}
	return out
}
