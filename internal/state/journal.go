package state

import (
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Journal is the world-state access surface the EVM interpreter runs
// against: every read and write the interpreter loop performs goes
// through this interface instead of touching a concrete overlay. Two
// implementations exist:
//
//   - *Overlay, the sequential journaled write layer (one per bundle);
//   - *TxOverlay, the per-transaction speculative layer used by the
//     optimistic parallel scheduler, which additionally records the
//     transaction's read and write sets for conflict detection.
//
// The split is what makes intra-bundle parallelism possible without
// the interpreter knowing: a speculative lane sees a versioned view of
// the bundle state while recording exactly which values it consumed.
type Journal interface {
	// Account lifecycle and fields.
	Exists(addr types.Address) bool
	CreateAccount(addr types.Address)
	GetBalance(addr types.Address) *uint256.Int
	AddBalance(addr types.Address, amount *uint256.Int)
	SubBalance(addr types.Address, amount *uint256.Int)
	GetNonce(addr types.Address) uint64
	SetNonce(addr types.Address, nonce uint64)
	GetCodeHash(addr types.Address) types.Hash
	GetCode(addr types.Address) []byte
	GetCodeSize(addr types.Address) int
	SetCode(addr types.Address, code []byte)
	Selfdestruct(addr types.Address) bool
	HasSelfdestructed(addr types.Address) bool

	// Persistent and transient storage.
	GetStorage(addr types.Address, key types.Hash) types.Hash
	GetCommittedStorage(addr types.Address, key types.Hash) types.Hash
	SetStorage(addr types.Address, key, value types.Hash)
	GetTransient(addr types.Address, key types.Hash) types.Hash
	SetTransient(addr types.Address, key, value types.Hash)

	// Logs and the SSTORE refund counter.
	AddLog(log *types.Log)
	Logs() []*types.Log
	AddRefund(gas uint64)
	SubRefund(gas uint64)
	GetRefund() uint64

	// EIP-2929 warm/cold access lists.
	AddressWarm(addr types.Address) bool
	SlotWarm(addr types.Address, key types.Hash) bool

	// Snapshot/revert and per-transaction scoping.
	Snapshot() int
	RevertToSnapshot(snap int)
	BeginTx()
	FinaliseTx()
}

var _ Journal = (*Overlay)(nil)
