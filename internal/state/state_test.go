package state

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

func addr(b byte) types.Address {
	var a types.Address
	a[19] = b
	return a
}

func hashOf(b byte) types.Hash {
	var h types.Hash
	h[31] = b
	return h
}

func TestWorldStateAccounts(t *testing.T) {
	w := NewWorldState()
	a := addr(1)
	if _, ok := w.Account(a); ok {
		t.Fatal("account should not exist")
	}
	acct := types.NewAccount()
	acct.Nonce = 3
	acct.Balance.SetUint64(1000)
	if err := w.SetAccount(a, acct); err != nil {
		t.Fatal(err)
	}
	got, ok := w.Account(a)
	if !ok || got.Nonce != 3 || got.Balance.Uint64() != 1000 {
		t.Fatalf("Account round trip: %+v ok=%v", got, ok)
	}
	// Mutating the returned account must not alias the stored one.
	got.Balance.SetUint64(1)
	got2, _ := w.Account(a)
	if got2.Balance.Uint64() != 1000 {
		t.Fatal("Account returned aliased state")
	}
	w.DeleteAccount(a)
	if _, ok := w.Account(a); ok {
		t.Fatal("deleted account still present")
	}
}

func TestWorldStateStorage(t *testing.T) {
	w := NewWorldState()
	a := addr(2)
	k, v := hashOf(1), hashOf(0xaa)
	if got := w.Storage(a, k); !got.IsZero() {
		t.Fatal("unset storage should be zero")
	}
	if err := w.SetStorage(a, k, v); err != nil {
		t.Fatal(err)
	}
	if got := w.Storage(a, k); got != v {
		t.Fatalf("storage = %s, want %s", got, v)
	}
	// Zero value deletes.
	if err := w.SetStorage(a, k, types.Hash{}); err != nil {
		t.Fatal(err)
	}
	if got := w.Storage(a, k); !got.IsZero() {
		t.Fatal("zeroed storage should read zero")
	}
	// Deleting an unset slot is fine.
	if err := w.SetStorage(a, hashOf(9), types.Hash{}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldStateCode(t *testing.T) {
	w := NewWorldState()
	code := []byte{0x60, 0x01, 0x60, 0x02, 0x01}
	h := w.SetCode(code)
	if got := w.Code(h); string(got) != string(code) {
		t.Fatalf("code round trip failed: %x", got)
	}
	if w.Code(types.EmptyCodeHash) != nil {
		t.Fatal("empty code hash should yield nil")
	}
	if w.Code(types.Hash{}) != nil {
		t.Fatal("zero code hash should yield nil")
	}
}

func TestWorldStateRootChanges(t *testing.T) {
	w := NewWorldState()
	r0, err := w.Root()
	if err != nil {
		t.Fatal(err)
	}
	a := addr(3)
	if err := w.SetAccount(a, types.NewAccount()); err != nil {
		t.Fatal(err)
	}
	r1, err := w.Root()
	if err != nil {
		t.Fatal(err)
	}
	if r0 == r1 {
		t.Fatal("root unchanged after account creation")
	}
	// Storage writes change the root via the storage root field.
	if err := w.SetStorage(a, hashOf(1), hashOf(2)); err != nil {
		t.Fatal(err)
	}
	r2, err := w.Root()
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("root unchanged after storage write")
	}
}

func TestWorldStateKeysIndexes(t *testing.T) {
	w := NewWorldState()
	a := addr(7)
	if err := w.SetAccount(a, types.NewAccount()); err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 5; i++ {
		if err := w.SetStorage(a, hashOf(i), hashOf(0xf0+i)); err != nil {
			t.Fatal(err)
		}
	}
	keys := w.StorageKeys(a)
	if len(keys) != 5 {
		t.Fatalf("StorageKeys = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if string(keys[i-1][:]) >= string(keys[i][:]) {
			t.Fatal("StorageKeys not sorted")
		}
	}
	addrs := w.Addresses()
	if len(addrs) != 1 || addrs[0] != a {
		t.Fatalf("Addresses = %v", addrs)
	}
}

func TestOverlayFallThrough(t *testing.T) {
	w := NewWorldState()
	a := addr(1)
	acct := types.NewAccount()
	acct.Balance.SetUint64(500)
	if err := w.SetAccount(a, acct); err != nil {
		t.Fatal(err)
	}
	if err := w.SetStorage(a, hashOf(1), hashOf(0x11)); err != nil {
		t.Fatal(err)
	}

	o := NewOverlay(w)
	if o.GetBalance(a).Uint64() != 500 {
		t.Fatal("balance fall-through failed")
	}
	if o.GetStorage(a, hashOf(1)) != hashOf(0x11) {
		t.Fatal("storage fall-through failed")
	}
	// Overlay writes do not touch the backend.
	o.SetStorage(a, hashOf(1), hashOf(0x22))
	if o.GetStorage(a, hashOf(1)) != hashOf(0x22) {
		t.Fatal("overlay write invisible")
	}
	if w.Storage(a, hashOf(1)) != hashOf(0x11) {
		t.Fatal("overlay write leaked to backend")
	}
	if o.GetCommittedStorage(a, hashOf(1)) != hashOf(0x11) {
		t.Fatal("committed storage should see backend value")
	}
}

func TestOverlayBalanceNonce(t *testing.T) {
	o := NewOverlay(NewWorldState())
	a := addr(5)
	o.AddBalance(a, uint256.NewInt(100))
	o.SubBalance(a, uint256.NewInt(40))
	if o.GetBalance(a).Uint64() != 60 {
		t.Fatalf("balance = %d", o.GetBalance(a).Uint64())
	}
	o.SetNonce(a, 9)
	if o.GetNonce(a) != 9 {
		t.Fatal("nonce")
	}
	if !o.Exists(a) {
		t.Fatal("credited account should exist")
	}
	if o.Empty(a) {
		t.Fatal("credited account is not empty")
	}
}

func TestOverlayCode(t *testing.T) {
	o := NewOverlay(NewWorldState())
	a := addr(6)
	if o.GetCode(a) != nil || o.GetCodeSize(a) != 0 {
		t.Fatal("EOA should have no code")
	}
	if !o.GetCodeHash(a).IsZero() {
		t.Fatal("non-existent account EXTCODEHASH should be zero")
	}
	o.CreateAccount(a)
	if o.GetCodeHash(a) != types.EmptyCodeHash {
		t.Fatal("existing EOA EXTCODEHASH should be empty-code hash")
	}
	code := []byte{0x60, 0x00}
	o.SetCode(a, code)
	if string(o.GetCode(a)) != string(code) || o.GetCodeSize(a) != 2 {
		t.Fatal("code not set")
	}
}

func TestOverlaySnapshotRevert(t *testing.T) {
	w := NewWorldState()
	a := addr(1)
	acct := types.NewAccount()
	acct.Balance.SetUint64(1000)
	if err := w.SetAccount(a, acct); err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(w)

	o.SetStorage(a, hashOf(1), hashOf(0x01))
	snap := o.Snapshot()

	o.SetStorage(a, hashOf(1), hashOf(0x02))
	o.SetStorage(a, hashOf(2), hashOf(0x03))
	o.SubBalance(a, uint256.NewInt(999))
	o.SetNonce(a, 42)
	o.AddLog(&types.Log{Address: a})
	o.AddRefund(100)
	o.SetTransient(a, hashOf(9), hashOf(0x55))
	if o.AddressWarm(a) {
		t.Fatal("address should have been cold")
	}

	o.RevertToSnapshot(snap)

	if o.GetStorage(a, hashOf(1)) != hashOf(0x01) {
		t.Error("storage not reverted to snapshot value")
	}
	if !o.GetStorage(a, hashOf(2)).IsZero() {
		t.Error("new storage slot not reverted")
	}
	if o.GetBalance(a).Uint64() != 1000 {
		t.Errorf("balance not reverted: %d", o.GetBalance(a).Uint64())
	}
	if o.GetNonce(a) != 0 {
		t.Error("nonce not reverted")
	}
	if len(o.Logs()) != 0 {
		t.Error("logs not reverted")
	}
	if o.GetRefund() != 0 {
		t.Error("refund not reverted")
	}
	if !o.GetTransient(a, hashOf(9)).IsZero() {
		t.Error("transient not reverted")
	}
	if o.AddressWarm(a) {
		t.Error("warmth not reverted")
	}
}

func TestOverlayNestedSnapshots(t *testing.T) {
	o := NewOverlay(NewWorldState())
	a := addr(2)
	o.SetStorage(a, hashOf(1), hashOf(1))
	s1 := o.Snapshot()
	o.SetStorage(a, hashOf(1), hashOf(2))
	s2 := o.Snapshot()
	o.SetStorage(a, hashOf(1), hashOf(3))

	o.RevertToSnapshot(s2)
	if o.GetStorage(a, hashOf(1)) != hashOf(2) {
		t.Fatal("inner revert wrong")
	}
	o.RevertToSnapshot(s1)
	if o.GetStorage(a, hashOf(1)) != hashOf(1) {
		t.Fatal("outer revert wrong")
	}
}

func TestOverlaySelfdestruct(t *testing.T) {
	w := NewWorldState()
	a := addr(3)
	acct := types.NewAccount()
	acct.Balance.SetUint64(777)
	if err := w.SetAccount(a, acct); err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(w)
	snap := o.Snapshot()
	if !o.Selfdestruct(a) {
		t.Fatal("first selfdestruct should return true")
	}
	if o.Selfdestruct(a) {
		t.Fatal("second selfdestruct should return false")
	}
	if !o.GetBalance(a).IsZero() {
		t.Fatal("selfdestruct should zero balance")
	}
	if !o.HasSelfdestructed(a) {
		t.Fatal("HasSelfdestructed false")
	}
	// Revert resurrects.
	o.RevertToSnapshot(snap)
	if o.HasSelfdestructed(a) || o.GetBalance(a).Uint64() != 777 {
		t.Fatal("selfdestruct not reverted")
	}
	// Destruct again and finalise.
	o.Selfdestruct(a)
	o.FinaliseTx()
	if o.Exists(a) {
		t.Fatal("finalised destructed account should not exist")
	}
}

func TestOverlayWarmth(t *testing.T) {
	o := NewOverlay(NewWorldState())
	a := addr(4)
	if o.AddressWarm(a) {
		t.Fatal("first touch should be cold")
	}
	if !o.AddressWarm(a) {
		t.Fatal("second touch should be warm")
	}
	if o.SlotWarm(a, hashOf(1)) {
		t.Fatal("first slot touch should be cold")
	}
	if !o.SlotWarm(a, hashOf(1)) {
		t.Fatal("second slot touch should be warm")
	}
	if o.SlotWarm(a, hashOf(2)) {
		t.Fatal("different slot should be cold")
	}
	o.BeginTx()
	if o.AddressWarm(a) || o.SlotWarm(a, hashOf(1)) {
		t.Fatal("BeginTx should clear warmth")
	}
}

func TestOverlayBeginTxPersistsWrites(t *testing.T) {
	o := NewOverlay(NewWorldState())
	a := addr(5)
	o.SetStorage(a, hashOf(1), hashOf(0x77))
	o.AddBalance(a, uint256.NewInt(5))
	o.SetTransient(a, hashOf(1), hashOf(0xff))
	o.AddRefund(10)

	o.BeginTx()

	if o.GetStorage(a, hashOf(1)) != hashOf(0x77) {
		t.Error("storage should persist across txs in a bundle")
	}
	if o.GetBalance(a).Uint64() != 5 {
		t.Error("balance should persist across txs")
	}
	if !o.GetTransient(a, hashOf(1)).IsZero() {
		t.Error("transient storage must clear per tx")
	}
	if o.GetRefund() != 0 {
		t.Error("refund must clear per tx")
	}
}

func TestOverlayRefundClamp(t *testing.T) {
	o := NewOverlay(NewWorldState())
	o.AddRefund(10)
	o.SubRefund(25)
	if o.GetRefund() != 0 {
		t.Fatalf("refund should clamp at zero, got %d", o.GetRefund())
	}
}

func TestOverlayStorageWrites(t *testing.T) {
	o := NewOverlay(NewWorldState())
	a := addr(6)
	o.SetStorage(a, hashOf(1), hashOf(2))
	o.SetStorage(a, hashOf(3), hashOf(4))
	writes := o.StorageWrites()
	if len(writes) != 2 {
		t.Fatalf("StorageWrites = %d", len(writes))
	}
}

// Property: arbitrary mutate/snapshot/revert sequences leave the overlay
// equal to a model that applies only the committed operations.
func TestQuickOverlayJournal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := NewOverlay(NewWorldState())
		type modelState map[storageSlot]types.Hash
		model := modelState{}
		var stack []struct {
			snap  int
			model modelState
		}
		cloneModel := func(m modelState) modelState {
			c := modelState{}
			for k, v := range m {
				c[k] = v
			}
			return c
		}
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				slot := storageSlot{addr(byte(rng.Intn(4))), hashOf(byte(rng.Intn(6)))}
				v := hashOf(byte(rng.Intn(250) + 1))
				o.SetStorage(slot.addr, slot.key, v)
				model[slot] = v
			case 2:
				stack = append(stack, struct {
					snap  int
					model modelState
				}{o.Snapshot(), cloneModel(model)})
			case 3:
				if len(stack) > 0 {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					o.RevertToSnapshot(top.snap)
					model = top.model
				}
			}
		}
		for slot, v := range model {
			if o.GetStorage(slot.addr, slot.key) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: WorldState roots are content-addressed — two stores with the
// same contents built in different orders agree.
func TestQuickWorldStateRootDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		type entry struct {
			a types.Address
			k types.Hash
			v types.Hash
		}
		var entries []entry
		for i := 0; i < n; i++ {
			entries = append(entries, entry{
				addr(byte(rng.Intn(6) + 1)),
				hashOf(byte(rng.Intn(6))),
				hashOf(byte(rng.Intn(250) + 1)),
			})
		}
		build := func(perm []int) types.Hash {
			w := NewWorldState()
			seen := map[types.Address]bool{}
			for _, idx := range perm {
				e := entries[idx]
				if !seen[e.a] {
					if err := w.SetAccount(e.a, types.NewAccount()); err != nil {
						return types.Hash{}
					}
					seen[e.a] = true
				}
				if err := w.SetStorage(e.a, e.k, e.v); err != nil {
					return types.Hash{}
				}
			}
			root, err := w.Root()
			if err != nil {
				return types.Hash{}
			}
			return root
		}
		fwd := make([]int, n)
		rev := make([]int, n)
		for i := 0; i < n; i++ {
			fwd[i], rev[i] = i, n-1-i
		}
		// Later writes win; to make orders comparable, dedupe slots.
		slotSeen := map[string]bool{}
		var dedup []entry
		for i := n - 1; i >= 0; i-- {
			key := fmt.Sprintf("%s/%s", entries[i].a, entries[i].k)
			if !slotSeen[key] {
				slotSeen[key] = true
				dedup = append([]entry{entries[i]}, dedup...)
			}
		}
		entries = dedup
		n = len(entries)
		fwd, rev = fwd[:n], rev[:n]
		for i := 0; i < n; i++ {
			fwd[i], rev[i] = i, n-1-i
		}
		return build(fwd) == build(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOverlayStorageWrite(b *testing.B) {
	o := NewOverlay(NewWorldState())
	a := addr(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.SetStorage(a, hashOf(byte(i%64)), hashOf(byte(i%250+1)))
	}
}

func BenchmarkWorldStateRoot(b *testing.B) {
	w := NewWorldState()
	for i := 0; i < 100; i++ {
		a := addr(byte(i))
		if err := w.SetAccount(a, types.NewAccount()); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if err := w.SetStorage(a, hashOf(byte(j)), hashOf(byte(j+1))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Root(); err != nil {
			b.Fatal(err)
		}
	}
}
