package state

import (
	"testing"

	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

func testWorld(t *testing.T) *WorldState {
	t.Helper()
	w := NewWorldState()
	for b := byte(1); b <= 4; b++ {
		acct := types.NewAccount()
		acct.Nonce = uint64(b)
		acct.Balance.SetUint64(1000)
		if err := w.SetAccount(addr(b), acct); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SetStorage(addr(1), hashOf(7), hashOf(42)); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestVersionedWriteAfterWrite: two transactions write the same slot;
// committing them in bundle order must leave the later value, and a
// view opened afterwards must see it.
func TestVersionedWriteAfterWrite(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	t1 := NewTxOverlay(v, w)
	t1.BeginTx()
	t1.SetStorage(addr(1), hashOf(7), hashOf(100))
	_, ws1 := t1.Finish()

	t2 := NewTxOverlay(v, w)
	t2.BeginTx()
	t2.SetStorage(addr(1), hashOf(7), hashOf(200))
	_, ws2 := t2.Finish()

	v.Commit(ws1, w)
	v.Commit(ws2, w)

	if got := v.View(w).Storage(addr(1), hashOf(7)); got != hashOf(200) {
		t.Fatalf("WAW slot = %s, want later writer's value %s", got, hashOf(200))
	}
}

// TestVersionedAbortedWritesInvisible: a speculative transaction that
// fails (its write set is never committed) must leave no trace — a
// concurrent reader and a later transaction both see the base value.
func TestVersionedAbortedWritesInvisible(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	aborted := NewTxOverlay(v, w)
	aborted.BeginTx()
	aborted.SetStorage(addr(1), hashOf(7), hashOf(99))
	// Speculation failed: Finish is called (the scheduler always
	// extracts the read set) but the write set is dropped.
	rs, _ := aborted.Finish()
	if !v.Validate(rs) {
		t.Fatal("untouched buffer should validate the aborted tx's reads")
	}

	if got := v.View(w).Storage(addr(1), hashOf(7)); got != hashOf(42) {
		t.Fatalf("view sees aborted write: %s, want base %s", got, hashOf(42))
	}
	next := NewTxOverlay(v, w)
	next.BeginTx()
	if got := next.GetStorage(addr(1), hashOf(7)); got != hashOf(42) {
		t.Fatalf("later tx sees aborted write: %s, want base %s", got, hashOf(42))
	}
}

// TestVersionedStorageConflict: a transaction that read a slot another
// transaction then committed a different value for must fail
// validation — and must pass once re-speculated against the new value.
func TestVersionedStorageConflict(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	reader := NewTxOverlay(v, w)
	reader.BeginTx()
	if got := reader.GetStorage(addr(1), hashOf(7)); got != hashOf(42) {
		t.Fatalf("read %s, want %s", got, hashOf(42))
	}
	rs, _ := reader.Finish()
	if !v.Validate(rs) {
		t.Fatal("read set should validate before any commit")
	}

	writer := NewTxOverlay(v, w)
	writer.BeginTx()
	writer.SetStorage(addr(1), hashOf(7), hashOf(100))
	_, ws := writer.Finish()
	v.Commit(ws, w)

	if v.Validate(rs) {
		t.Fatal("stale read of a committed slot must fail validation")
	}

	retry := NewTxOverlay(v, w)
	retry.BeginTx()
	if got := retry.GetStorage(addr(1), hashOf(7)); got != hashOf(100) {
		t.Fatalf("re-speculation reads %s, want committed %s", got, hashOf(100))
	}
	rs2, _ := retry.Finish()
	if !v.Validate(rs2) {
		t.Fatal("re-speculated read set should validate")
	}
}

// TestVersionedDoubleConflict: the same logical transaction conflicts
// twice — each re-speculation is invalidated by another commit — and
// only the third execution validates. This is the state-level core of
// the scheduler's conflicts-twice-re-executes-twice path.
func TestVersionedDoubleConflict(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	speculate := func() *ReadSet {
		txo := NewTxOverlay(v, w)
		txo.BeginTx()
		txo.GetStorage(addr(1), hashOf(7))
		rs, _ := txo.Finish()
		return rs
	}
	commitWrite := func(val types.Hash) {
		txo := NewTxOverlay(v, w)
		txo.BeginTx()
		txo.SetStorage(addr(1), hashOf(7), val)
		_, ws := txo.Finish()
		v.Commit(ws, w)
	}

	rs := speculate()
	commitWrite(hashOf(1)) // first conflicting commit
	if v.Validate(rs) {
		t.Fatal("first speculation should conflict")
	}
	rs = speculate() // re-execution #1
	commitWrite(hashOf(2))
	if v.Validate(rs) {
		t.Fatal("second speculation should conflict again")
	}
	rs = speculate() // re-execution #2
	if !v.Validate(rs) {
		t.Fatal("third speculation should finally validate")
	}
}

// TestVersionedBalanceDelta: accounts whose balance is only credited
// (never read) commit as deltas, so two fee credits compose without
// conflicting — the coinbase case that would otherwise serialize every
// bundle.
func TestVersionedBalanceDelta(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()
	coinbase := addr(9) // absent in base

	credit := func(n uint64) (*ReadSet, *WriteSet) {
		txo := NewTxOverlay(v, w)
		txo.BeginTx()
		txo.AddBalance(coinbase, uint256.NewInt(n))
		return txo.Finish()
	}

	// Both txs speculate before either commits.
	_, ws1 := credit(10)
	rs2, ws2 := credit(25)

	v.Commit(ws1, w)
	if !v.Validate(rs2) {
		t.Fatal("pure credit must not conflict with an earlier credit")
	}
	v.Commit(ws2, w)

	acct, ok := v.View(w).Account(coinbase)
	if !ok {
		t.Fatal("credited account should exist")
	}
	if got := acct.Balance.Uint64(); got != 35 {
		t.Fatalf("composed balance = %d, want 35", got)
	}
}

// TestVersionedBalanceReadConflicts: once a transaction reads a
// balance, a concurrent change to it must invalidate the read.
func TestVersionedBalanceReadConflicts(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	reader := NewTxOverlay(v, w)
	reader.BeginTx()
	if got := reader.GetBalance(addr(2)).Uint64(); got != 1000 {
		t.Fatalf("balance = %d, want 1000", got)
	}
	rs, _ := reader.Finish()

	// Another tx reads-and-spends from addr(2): absolute commit.
	spender := NewTxOverlay(v, w)
	spender.BeginTx()
	spender.GetBalance(addr(2))
	spender.SubBalance(addr(2), uint256.NewInt(1))
	_, ws := spender.Finish()
	v.Commit(ws, w)

	if v.Validate(rs) {
		t.Fatal("balance read must conflict with a committed spend")
	}
}

// TestVersionedAbsoluteForcesFullValidation: an account committed
// absolutely (here: a nonce write) joins the read set with every field
// consumed, so an earlier delta credit to the same account conflicts
// instead of being silently overwritten.
func TestVersionedAbsoluteForcesFullValidation(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()
	target := addr(3)

	// Tx B (later in bundle order) bumps the nonce — an absolute
	// account write — speculated before A commits.
	b := NewTxOverlay(v, w)
	b.BeginTx()
	b.SetNonce(target, b.GetNonce(target)+1)
	rsB, _ := b.Finish()

	// Tx A (earlier) credits the same account as a pure delta.
	a := NewTxOverlay(v, w)
	a.BeginTx()
	a.AddBalance(target, uint256.NewInt(5))
	_, wsA := a.Finish()
	v.Commit(wsA, w)

	if v.Validate(rsB) {
		t.Fatal("absolute write must conflict with the earlier balance delta")
	}

	// Re-speculated B sees the credited balance and commits on top.
	b2 := NewTxOverlay(v, w)
	b2.BeginTx()
	b2.SetNonce(target, b2.GetNonce(target)+1)
	rsB2, wsB2 := b2.Finish()
	if !v.Validate(rsB2) {
		t.Fatal("re-speculated absolute write should validate")
	}
	v.Commit(wsB2, w)

	acct, ok := v.View(w).Account(target)
	if !ok {
		t.Fatal("account should exist")
	}
	if acct.Nonce != 4 || acct.Balance.Uint64() != 1005 {
		t.Fatalf("final account = nonce %d balance %d, want nonce 4 balance 1005",
			acct.Nonce, acct.Balance.Uint64())
	}
}

// TestVersionedDeletionCanonical: an absolute commit of a
// non-existent final state must compare equal to base-absent for later
// validation (canonical empty form).
func TestVersionedDeletionCanonical(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()
	victim := addr(4)

	// Destroy the account (selfdestruct path: read, destruct, finalise).
	killer := NewTxOverlay(v, w)
	killer.BeginTx()
	killer.GetBalance(victim)
	killer.Selfdestruct(victim)
	killer.FinaliseTx()
	_, ws := killer.Finish()
	v.Commit(ws, w)

	if _, ok := v.View(w).Account(victim); ok {
		t.Fatal("destroyed account should not resolve")
	}

	// A later tx observing the absence must validate.
	probe := NewTxOverlay(v, w)
	probe.BeginTx()
	if probe.Exists(victim) {
		t.Fatal("destroyed account should not exist")
	}
	rs, _ := probe.Finish()
	if !v.Validate(rs) {
		t.Fatal("observation of canonical deletion should validate")
	}
}

// TestVersionedPinnedReads: within one speculation, re-reading a slot
// returns the pinned first observation even if the committer published
// a new value in between — execution stays self-consistent.
func TestVersionedPinnedReads(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	txo := NewTxOverlay(v, w)
	txo.BeginTx()
	first := txo.GetStorage(addr(1), hashOf(7))

	// Concurrent commit changes the slot mid-speculation.
	writer := NewTxOverlay(v, w)
	writer.BeginTx()
	writer.SetStorage(addr(1), hashOf(7), hashOf(200))
	_, ws := writer.Finish()
	v.Commit(ws, w)

	second := txo.GetStorage(addr(1), hashOf(7))
	if first != second {
		t.Fatalf("read not pinned: first %s, second %s", first, second)
	}
	// And the stale observation is caught at validation.
	rs, _ := txo.Finish()
	if v.Validate(rs) {
		t.Fatal("pinned stale read must fail validation")
	}
}

// TestVersionedCommittedStorageBypass: GetCommittedStorage must keep
// returning the pre-bundle value even after a commit changed the slot
// (sequential overlays read their static backend for SSTORE gas).
func TestVersionedCommittedStorageBypass(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	writer := NewTxOverlay(v, w)
	writer.BeginTx()
	writer.SetStorage(addr(1), hashOf(7), hashOf(200))
	_, ws := writer.Finish()
	v.Commit(ws, w)

	txo := NewTxOverlay(v, w)
	txo.BeginTx()
	if got := txo.GetStorage(addr(1), hashOf(7)); got != hashOf(200) {
		t.Fatalf("current value = %s, want committed %s", got, hashOf(200))
	}
	if got := txo.GetCommittedStorage(addr(1), hashOf(7)); got != hashOf(42) {
		t.Fatalf("committed (pre-bundle) value = %s, want base %s", got, hashOf(42))
	}
}

// TestVersionedRevertedWriteIsNoop: a write that is fully reverted
// still flags the account, but the forced-absolute commit equals the
// validated observation — committing it is a no-op.
func TestVersionedRevertedWriteIsNoop(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()

	txo := NewTxOverlay(v, w)
	txo.BeginTx()
	snap := txo.Snapshot()
	txo.SetNonce(addr(2), 99)
	txo.RevertToSnapshot(snap)
	rs, ws := txo.Finish()
	if !v.Validate(rs) {
		t.Fatal("reverted write should validate")
	}
	v.Commit(ws, w)

	acct, ok := v.View(w).Account(addr(2))
	if !ok || acct.Nonce != 2 {
		t.Fatalf("account after no-op commit: %+v ok=%v, want nonce 2", acct, ok)
	}
}

// TestVersionedCodeCommit: deployed code resolves through the view for
// later transactions.
func TestVersionedCodeCommit(t *testing.T) {
	w := testWorld(t)
	v := NewVersioned()
	contract := addr(8)
	code := []byte{0x60, 0x00, 0x60, 0x00, 0xf3}

	deployer := NewTxOverlay(v, w)
	deployer.BeginTx()
	deployer.CreateAccount(contract)
	deployer.SetNonce(contract, 1)
	deployer.SetCode(contract, code)
	_, ws := deployer.Finish()
	v.Commit(ws, w)

	reader := NewTxOverlay(v, w)
	reader.BeginTx()
	got := reader.GetCode(contract)
	if string(got) != string(code) {
		t.Fatalf("committed code = %x, want %x", got, code)
	}
}
