package evm

import (
	"sync"

	"hardtape/internal/types"
)

// CodeAnalysis is the static analysis of one bytecode blob: the valid
// JUMPDEST bitmap and the push-immediate marks. It is immutable after
// construction, so one instance is safely shared by every frame,
// transaction, and bundle executing the same code.
type CodeAnalysis struct {
	// jumpdests marks positions holding a JUMPDEST opcode that is not
	// inside a PUSH immediate (bit i of byte i/8).
	jumpdests []byte
	// pushdata marks positions that are PUSH immediate bytes, i.e. not
	// instruction boundaries.
	pushdata []byte
}

// analyzeCode scans code once, marking valid JUMPDESTs and push
// immediates in a single pass.
func analyzeCode(code []byte) *CodeAnalysis {
	a := &CodeAnalysis{
		jumpdests: make([]byte, (len(code)+7)/8),
		pushdata:  make([]byte, (len(code)+7)/8),
	}
	for i := 0; i < len(code); {
		op := OpCode(code[i])
		if op == JUMPDEST {
			a.jumpdests[i/8] |= 1 << (i % 8)
			i++
			continue
		}
		n := op.PushSize()
		for j := i + 1; j <= i+n && j < len(code); j++ {
			a.pushdata[j/8] |= 1 << (j % 8)
		}
		i += 1 + n
	}
	return a
}

// ValidJumpdest reports whether pos is a valid jump target.
func (a *CodeAnalysis) ValidJumpdest(pos uint64) bool {
	return a.jumpdests[pos/8]&(1<<(pos%8)) != 0
}

// IsPushData reports whether the byte at pos is a PUSH immediate.
func (a *CodeAnalysis) IsPushData(pos uint64) bool {
	return a.pushdata[pos/8]&(1<<(pos%8)) != 0
}

// analysisCacheMaxEntries bounds the shared cache. When full the cache
// is dropped wholesale: hot contracts re-populate it within one bundle,
// and the bound keeps a churn-heavy workload (CREATE2 factories) from
// growing it without limit.
const analysisCacheMaxEntries = 4096

// analysisCache is a concurrency-safe map from code hash to analysis.
// Reads take the read lock only; the write lock is held just long
// enough to insert an already-built analysis (never across the scan
// itself, and never across any blocking call).
type analysisCache struct {
	mu      sync.RWMutex
	entries map[types.Hash]*CodeAnalysis
}

// sharedAnalysis is the process-wide cache shared by all EVM instances
// (one per HEVM core; many run concurrently under the fleet gateway).
var sharedAnalysis = &analysisCache{entries: make(map[types.Hash]*CodeAnalysis)}

// analyze returns the cached analysis for (hash, code), building and
// inserting it on a miss. The scan runs outside the lock; on a race the
// first inserted instance wins so all frames share one copy.
func (c *analysisCache) analyze(hash types.Hash, code []byte) *CodeAnalysis {
	c.mu.RLock()
	a := c.entries[hash]
	c.mu.RUnlock()
	if a != nil {
		return a
	}
	a = analyzeCode(code)
	c.mu.Lock()
	if existing := c.entries[hash]; existing != nil {
		a = existing
	} else {
		if len(c.entries) >= analysisCacheMaxEntries {
			clear(c.entries)
		}
		c.entries[hash] = a
	}
	c.mu.Unlock()
	return a
}

// size returns the current entry count (test support).
func (c *analysisCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
