package evm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"hardtape/internal/keccak"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Fast-path invariants (ISSUE 4): the shared analysis cache must be
// safe under concurrent EVMs (run these with -race), and neither frame
// pooling nor hook attachment may change observable behaviour — the
// same bundle produces identical traces and gas with pooling on or
// off, and identical gas/results with hooks attached or detached.

// synthCode builds deterministic pseudo-random bytecode of length n
// from seed, so distinct seeds give distinct code hashes with varied
// JUMPDEST / PUSH-immediate layouts.
func synthCode(seed uint64, n int) []byte {
	code := make([]byte, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range code {
		x = x*6364136223846793005 + 1442695040888963407
		code[i] = byte(x >> 33)
	}
	return code
}

// TestAnalysisCacheConcurrent hammers one analysisCache from many
// goroutines with overlapping key sets sized to trip the overflow
// clear, checking every returned analysis matches a fresh scan.
func TestAnalysisCacheConcurrent(t *testing.T) {
	c := &analysisCache{entries: make(map[types.Hash]*CodeAnalysis)}
	const (
		workers = 8
		codes   = analysisCacheMaxEntries + 512 // force at least one clear
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the same key space from a different
			// offset so inserts and hits interleave.
			for i := 0; i < codes; i++ {
				seed := uint64((i + w*137) % codes)
				code := synthCode(seed, 64)
				var h types.Hash
				keccak.Sum256Into(h[:], code)
				got := c.analyze(h, code)
				want := analyzeCode(code)
				if !bytes.Equal(got.jumpdests, want.jumpdests) ||
					!bytes.Equal(got.pushdata, want.pushdata) {
					errs <- fmt.Errorf("seed %d: cached analysis differs from fresh scan", seed)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := c.size(); n == 0 || n > analysisCacheMaxEntries {
		t.Errorf("cache size %d out of bounds (0, %d]", n, analysisCacheMaxEntries)
	}
}

// TestConcurrentEVMsSharedCache runs many EVMs in parallel executing
// the same contracts, so every goroutine races on sharedAnalysis and
// the frame pool (meaningful under -race).
func TestConcurrentEVMsSharedCache(t *testing.T) {
	contracts := [][]byte{
		loopCode(nil, 16, keccakLoopBody),
		loopCode(dupSwapPrologue, 16, dupSwapLoopBody),
		deepCallCode(),
	}
	var depth [32]byte
	binary.BigEndian.PutUint64(depth[24:], 8)
	inputs := [][]byte{nil, nil, depth[:]}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				i := (w + round) % len(contracts)
				e := newTestEVM(t, contracts[i])
				if _, _, err := e.Call(testCaller, testContract, inputs[i], 5_000_000, new(uint256.Int)); err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, round, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// stepRec is a hook recorder for parity tests. The tracer package
// cannot be used here (it imports evm), and a local recorder keeps the
// comparison independent of tracer behaviour anyway.
type stepRec struct {
	steps  []StepInfo
	enters []CallFrameInfo
	exits  []CallResultInfo
	ws     []WorldStateAccess
	mems   []MemAccess
	logs   int
}

func (r *stepRec) hooks() *Hooks {
	return &Hooks{
		OnStep: func(i StepInfo) { r.steps = append(r.steps, i) },
		OnCallEnter: func(i CallFrameInfo) {
			if i.Value != nil {
				v := *i.Value // copy: the pointee may be pooled
				i.Value = &v
			}
			r.enters = append(r.enters, i)
		},
		OnCallExit:   func(i CallResultInfo) { r.exits = append(r.exits, i) },
		OnWorldState: func(a WorldStateAccess) { r.ws = append(r.ws, a) },
		OnMemAccess:  func(a MemAccess) { r.mems = append(r.mems, a) },
		OnLog:        func(*types.Log) { r.logs++ },
	}
}

// diff returns the first divergence between two recordings, or "".
func (r *stepRec) diff(o *stepRec) string {
	if len(r.steps) != len(o.steps) {
		return fmt.Sprintf("step count %d vs %d", len(r.steps), len(o.steps))
	}
	for i := range r.steps {
		if r.steps[i] != o.steps[i] {
			return fmt.Sprintf("step %d: %+v vs %+v", i, r.steps[i], o.steps[i])
		}
	}
	if len(r.enters) != len(o.enters) {
		return fmt.Sprintf("enter count %d vs %d", len(r.enters), len(o.enters))
	}
	for i := range r.enters {
		a, b := r.enters[i], o.enters[i]
		av, bv := a.Value, b.Value
		a.Value, b.Value = nil, nil
		if a != b || (av == nil) != (bv == nil) || (av != nil && !av.Eq(bv)) {
			return fmt.Sprintf("enter %d: %+v vs %+v", i, r.enters[i], o.enters[i])
		}
	}
	if len(r.exits) != len(o.exits) {
		return fmt.Sprintf("exit count %d vs %d", len(r.exits), len(o.exits))
	}
	for i := range r.exits {
		a, b := r.exits[i], o.exits[i]
		// Err values may be distinct instances; compare presence.
		ae, be := a.Err != nil, b.Err != nil
		a.Err, b.Err = nil, nil
		if a != b || ae != be {
			return fmt.Sprintf("exit %d: %+v vs %+v", i, r.exits[i], o.exits[i])
		}
	}
	if len(r.ws) != len(o.ws) {
		return fmt.Sprintf("worldstate count %d vs %d", len(r.ws), len(o.ws))
	}
	for i := range r.ws {
		if r.ws[i] != o.ws[i] {
			return fmt.Sprintf("worldstate %d: %+v vs %+v", i, r.ws[i], o.ws[i])
		}
	}
	if len(r.mems) != len(o.mems) {
		return fmt.Sprintf("mem-access count %d vs %d", len(r.mems), len(o.mems))
	}
	for i := range r.mems {
		if r.mems[i] != o.mems[i] {
			return fmt.Sprintf("mem access %d: %+v vs %+v", i, r.mems[i], o.mems[i])
		}
	}
	if r.logs != o.logs {
		return fmt.Sprintf("log count %d vs %d", r.logs, o.logs)
	}
	return ""
}

// parityBundle is a fixed sequence of transactions covering the fast
// paths: keccak loop, dup/swap loop, nested calls, storage, CREATE2.
type parityTx struct {
	name  string
	code  []byte
	input []byte
	gas   uint64
}

func parityBundle() []parityTx {
	var depth [32]byte
	binary.BigEndian.PutUint64(depth[24:], 12)
	// SSTORE slot0=42; SLOAD slot0; return it.
	storageCode := cat(
		push(42), push(0), []byte{byte(SSTORE)},
		push(0), []byte{byte(SLOAD)},
		returnTop,
	)
	// CREATE2(value=0, offset=0, size=0, salt=5), return the address.
	create2Code := cat(
		push(5), push(0), push(0), push(0),
		[]byte{byte(CREATE2)},
		returnTop,
	)
	return []parityTx{
		{"keccak-loop", loopCode(nil, 32, keccakLoopBody), nil, 2_000_000},
		{"dupswap-loop", loopCode(dupSwapPrologue, 32, dupSwapLoopBody), nil, 2_000_000},
		{"deep-call", deepCallCode(), depth[:], 5_000_000},
		{"storage", storageCode, nil, 1_000_000},
		{"create2", create2Code, nil, 1_000_000},
	}
}

// runParityBundle executes the bundle on a fresh EVM and returns the
// recording plus per-tx (gas used, return data).
func runParityBundle(t *testing.T, disablePooling, attachHooks bool) (*stepRec, []uint64, [][]byte) {
	t.Helper()
	rec := &stepRec{}
	var gasUsed []uint64
	var rets [][]byte
	for _, tx := range parityBundle() {
		e := newTestEVM(t, tx.code)
		e.DisablePooling = disablePooling
		if attachHooks {
			e.Hooks = rec.hooks()
		}
		ret, left, err := e.Call(testCaller, testContract, tx.input, tx.gas, new(uint256.Int))
		if err != nil {
			t.Fatalf("%s: %v", tx.name, err)
		}
		gasUsed = append(gasUsed, tx.gas-left)
		rets = append(rets, append([]byte(nil), ret...))
	}
	return rec, gasUsed, rets
}

// TestPoolingParity runs the same bundle with frame pooling enabled
// and disabled and requires bit-identical traces, gas, and returns —
// the property that pooled frames never leak state between owners.
func TestPoolingParity(t *testing.T) {
	pooled, pooledGas, pooledRet := runParityBundle(t, false, true)
	fresh, freshGas, freshRet := runParityBundle(t, true, true)
	if d := pooled.diff(fresh); d != "" {
		t.Fatalf("pooling on vs off trace divergence: %s", d)
	}
	for i := range pooledGas {
		if pooledGas[i] != freshGas[i] {
			t.Errorf("tx %d gas: pooled %d vs fresh %d", i, pooledGas[i], freshGas[i])
		}
		if !bytes.Equal(pooledRet[i], freshRet[i]) {
			t.Errorf("tx %d return: pooled %x vs fresh %x", i, pooledRet[i], freshRet[i])
		}
	}
	if len(pooled.steps) == 0 {
		t.Fatal("recorder captured no steps; parity test is vacuous")
	}
}

// TestHookDetachParity runs the same bundle with hooks attached and
// detached: the zero-cost hook fast path must not change gas or
// results, and the attached run must actually observe events.
func TestHookDetachParity(t *testing.T) {
	rec, hookedGas, hookedRet := runParityBundle(t, false, true)
	_, bareGas, bareRet := runParityBundle(t, false, false)
	for i := range hookedGas {
		if hookedGas[i] != bareGas[i] {
			t.Errorf("tx %d gas: hooked %d vs detached %d", i, hookedGas[i], bareGas[i])
		}
		if !bytes.Equal(hookedRet[i], bareRet[i]) {
			t.Errorf("tx %d return: hooked %x vs detached %x", i, hookedRet[i], bareRet[i])
		}
	}
	if len(rec.steps) == 0 || len(rec.enters) == 0 || len(rec.ws) == 0 || len(rec.mems) == 0 {
		t.Fatalf("attached hooks missed events: steps=%d enters=%d ws=%d mems=%d",
			len(rec.steps), len(rec.enters), len(rec.ws), len(rec.mems))
	}
}

// TestPooledMemoryStartsZero releases a frame whose memory held
// non-zero bytes, then checks a fresh call observes all-zero memory —
// the reset-on-release discipline for the pooled Memory.
func TestPooledMemoryStartsZero(t *testing.T) {
	// Writer: fill mem[0..32) with a non-zero pattern via MSTORE.
	writer := cat(
		[]byte{byte(PUSH32)}, bytes.Repeat([]byte{0xAB}, 32),
		push(0), []byte{byte(MSTORE)},
		[]byte{byte(STOP)},
	)
	// Reader: expand memory to 64 bytes via MSIZE-extending MLOAD and
	// return mem[0..32) without writing it first.
	reader := cat(
		push(32), []byte{byte(MLOAD), byte(POP)},
		push(32), push(0), []byte{byte(RETURN)},
	)
	for round := 0; round < 8; round++ {
		if _, _, err := runCode(t, writer, nil, 1_000_000); err != nil {
			t.Fatal(err)
		}
		ret, _, err := runCode(t, reader, nil, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ret, make([]byte, 32)) {
			t.Fatalf("round %d: pooled memory leaked prior contents: %x", round, ret)
		}
	}
}

// newTestEVMAt deploys code at a caller-chosen address (CREATE2 parity
// support keeps all bundle contracts at testContract, so this is used
// by ad-hoc checks that need a second account).
func newTestEVMAt(t testing.TB, addr types.Address, code []byte) *EVM {
	t.Helper()
	w := state.NewWorldState()
	o := state.NewOverlay(w)
	o.CreateAccount(testCaller)
	o.AddBalance(testCaller, uint256.NewInt(1_000_000_000))
	o.CreateAccount(addr)
	o.SetCode(addr, code)
	e := New(BlockContext{
		Number:    100,
		Timestamp: 1700000000,
		GasLimit:  30_000_000,
		BaseFee:   uint256.NewInt(7),
		ChainID:   uint256.NewInt(1),
	}, o)
	return e
}

// TestAnalysisSharedAcrossEVMs checks two EVMs running the same code
// hand out the same *CodeAnalysis instance from the shared cache.
func TestAnalysisSharedAcrossEVMs(t *testing.T) {
	code := loopCode(nil, 4, keccakLoopBody)
	var h types.Hash
	keccak.Sum256Into(h[:], code)
	a1 := sharedAnalysis.analyze(h, code)
	a2 := sharedAnalysis.analyze(h, code)
	if a1 != a2 {
		t.Fatal("same code hash returned distinct analysis instances")
	}
	addr := types.MustAddress("0xd00d000000000000000000000000000000000001")
	e := newTestEVMAt(t, addr, code)
	if _, _, err := e.Call(testCaller, addr, nil, 1_000_000, new(uint256.Int)); err != nil {
		t.Fatal(err)
	}
}
