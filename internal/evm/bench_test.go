package evm

import (
	"encoding/binary"
	"testing"

	"hardtape/internal/uint256"
)

// The interpreter microbenchmarks drive the three workloads the fast
// path targets (ISSUE 4): a keccak-heavy loop (hash throughput), a
// dup/swap-heavy loop (raw per-instruction overhead), and a deep-call
// workload (frame setup/teardown cost). Each benchmark iteration is
// one message call executing the whole contract loop, wrapped in a
// state snapshot/revert so the overlay journal stays bounded.

// loopCode assembles "PUSH2 n; loop: JUMPDEST <body> ; decrement;
// DUP1; PUSH2 loop; JUMPI; STOP" with the body between JUMPDEST and
// the decrement. The loop counter sits on top of the stack at body
// entry and must still be on top (unchanged) at body exit.
func loopCode(prologue []byte, n uint16, body []byte) []byte {
	code := append([]byte{}, prologue...)
	code = append(code, byte(PUSH1+1), byte(n>>8), byte(n))
	loop := uint16(len(code))
	code = append(code, byte(JUMPDEST))
	code = append(code, body...)
	// counter-1: PUSH1 1; SWAP1; SUB  (SUB computes top - next).
	code = append(code, byte(PUSH1), 1, byte(SWAP1), byte(SUB))
	code = append(code, byte(DUP1), byte(PUSH1+1), byte(loop>>8), byte(loop), byte(JUMPI))
	code = append(code, byte(STOP))
	return code
}

// keccakLoopBody hashes the 32-byte word holding the loop counter on
// every iteration: DUP1; PUSH0; MSTORE; PUSH1 32; PUSH0; KECCAK256;
// POP.
var keccakLoopBody = []byte{
	byte(DUP1), byte(PUSH0), byte(MSTORE),
	byte(PUSH1), 32, byte(PUSH0), byte(KECCAK256), byte(POP),
}

// dupSwapLoopBody is 64 stack-neutral DUP/SWAP/POP operations: four
// repetitions of a palindromic SWAP run (its own inverse) followed by
// DUPn/POP pairs. The loop counter stays on top throughout.
var dupSwapLoopBody = func() []byte {
	block := []byte{
		byte(SWAP1), byte(SWAP1 + 1), byte(SWAP1 + 2), byte(SWAP1 + 3),
		byte(SWAP1 + 3), byte(SWAP1 + 2), byte(SWAP1 + 1), byte(SWAP1),
		byte(DUP1 + 2), byte(POP), byte(DUP1 + 4), byte(POP),
		byte(DUP1 + 6), byte(POP), byte(DUP1 + 8), byte(POP),
	}
	var body []byte
	for i := 0; i < 4; i++ {
		body = append(body, block...)
	}
	return body
}()

// dupSwapPrologue seeds 16 operand-stack values for the DUP/SWAP runs.
var dupSwapPrologue = func() []byte {
	var code []byte
	for i := byte(1); i <= 16; i++ {
		code = append(code, byte(PUSH1), i)
	}
	return code
}()

// benchCall runs one warm-up call (building jumpdest analysis and
// expanding memory) and then measures repeated calls on the same EVM.
func benchCall(b *testing.B, code, input []byte, gas uint64) {
	b.Helper()
	e := newTestEVM(b, code)
	zero := new(uint256.Int)
	if _, _, err := e.Call(testCaller, testContract, input, gas, zero); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := e.State.Snapshot()
		if _, _, err := e.Call(testCaller, testContract, input, gas, zero); err != nil {
			b.Fatal(err)
		}
		e.State.RevertToSnapshot(snap)
	}
}

// BenchmarkInterpKeccakLoop measures a 256-iteration KECCAK256 loop
// (one sponge permutation per iteration): hash-dominated throughput.
func BenchmarkInterpKeccakLoop(b *testing.B) {
	benchCall(b, loopCode(nil, 256, keccakLoopBody), nil, 10_000_000)
}

// BenchmarkInterpDupSwapLoop measures a 256-iteration loop of 64
// stack-neutral DUP/SWAP/POP ops: pure per-instruction dispatch cost.
func BenchmarkInterpDupSwapLoop(b *testing.B) {
	benchCall(b, loopCode(dupSwapPrologue, 256, dupSwapLoopBody), nil, 10_000_000)
}

// deepCallCode returns a contract that reads a recursion depth from
// calldata word 0 and CALLs itself with depth-1 until it hits zero.
func deepCallCode() []byte {
	var code []byte
	code = append(code, byte(PUSH0), byte(CALLDATALOAD)) // d
	code = append(code, byte(DUP1), byte(ISZERO))
	endPatch := len(code) + 1
	code = append(code, byte(PUSH1+1), 0, 0, byte(JUMPI))
	// mem[0] = d-1
	code = append(code, byte(PUSH1), 1, byte(SWAP1), byte(SUB))
	code = append(code, byte(PUSH0), byte(MSTORE))
	// CALL(gas, self, 0, 0, 32, 0, 0)
	code = append(code, byte(PUSH0), byte(PUSH0), byte(PUSH1), 32, byte(PUSH0), byte(PUSH0))
	code = append(code, byte(PUSH1+19))
	code = append(code, testContract[:]...)
	code = append(code, byte(GAS), byte(CALL), byte(POP), byte(PUSH0))
	end := uint16(len(code))
	code[endPatch] = byte(end >> 8)
	code[endPatch+1] = byte(end)
	code = append(code, byte(JUMPDEST), byte(STOP))
	return code
}

// BenchmarkInterpDeepCall measures 64 nested self-calls per iteration:
// frame construction, code (re)analysis, and call bookkeeping.
func BenchmarkInterpDeepCall(b *testing.B) {
	var input [32]byte
	binary.BigEndian.PutUint64(input[24:], 64)
	benchCall(b, deepCallCode(), input[:], 30_000_000)
}
