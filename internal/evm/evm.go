package evm

import (
	"errors"
	"fmt"

	"hardtape/internal/keccak"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// BlockContext supplies the block-level environment opcodes.
type BlockContext struct {
	Coinbase   types.Address
	Number     uint64
	Timestamp  uint64
	GasLimit   uint64
	BaseFee    *uint256.Int
	PrevRandao types.Hash
	ChainID    *uint256.Int
	// BlockHash resolves BLOCKHASH queries (may be nil → zero hash).
	BlockHash func(num uint64) types.Hash
}

// TxContext supplies the transaction-level environment opcodes.
type TxContext struct {
	Origin   types.Address
	GasPrice *uint256.Int
}

// EVM executes contract code against a state.Journal (an Overlay or a
// speculative TxOverlay). One EVM instance serves one transaction at a
// time (matching the paper's one-HEVM-per-bundle exclusivity).
type EVM struct {
	Block BlockContext
	Tx    TxContext
	State state.Journal
	Hooks *Hooks

	// DisablePooling makes every call allocate a fresh frame instead of
	// drawing from the shared pool (parity testing and debugging).
	DisablePooling bool

	depth int
	// readOnly propagates STATICCALL write protection.
	readOnly bool

	// Hook-presence flags, recomputed at every depth-0 entry
	// (refreshHookFlags). When a flag is false the interpreter skips
	// the corresponding event assembly entirely — the zero-cost hook
	// fast path. Hooks must not be swapped mid-transaction.
	hookStep      bool
	hookCallEnter bool
	hookCallExit  bool
	hookWS        bool
	hookMem       bool
	hookLog       bool
}

// refreshHookFlags recomputes the hook fast-path flags from e.Hooks.
// Called on every top-level entry so tests and services may install
// hooks any time between transactions.
func (e *EVM) refreshHookFlags() {
	h := e.Hooks
	e.hookStep = h != nil && h.OnStep != nil
	e.hookCallEnter = h != nil && h.OnCallEnter != nil
	e.hookCallExit = h != nil && h.OnCallExit != nil
	e.hookWS = h != nil && h.OnWorldState != nil
	e.hookMem = h != nil && h.OnMemAccess != nil
	e.hookLog = h != nil && h.OnLog != nil
}

// New constructs an EVM. Nil BaseFee/ChainID default to zero values.
func New(block BlockContext, st state.Journal) *EVM {
	if block.BaseFee == nil {
		block.BaseFee = new(uint256.Int)
	}
	if block.ChainID == nil {
		block.ChainID = uint256.NewInt(1)
	}
	return &EVM{Block: block, State: st, Tx: TxContext{GasPrice: new(uint256.Int)}}
}

// frame is one execution frame (the paper's unit of call-stack
// management).
type frame struct {
	caller   types.Address
	address  types.Address // storage/balance context
	codeAddr types.Address // where code was loaded from
	code     []byte
	input    []byte
	value    *uint256.Int
	gas      uint64

	stack   *Stack
	mem     *Memory
	retData []byte // output of the most recent nested call
	// analysis is the shared static analysis of f.code; built lazily
	// (and left uncached) for CREATE initcode, which has no stable hash.
	analysis *CodeAnalysis
}

// useGas deducts gas, reporting false on exhaustion.
func (f *frame) useGas(amount uint64) bool {
	if f.gas < amount {
		return false
	}
	f.gas -= amount
	return true
}

// validJumpdest checks the destination is a JUMPDEST not inside a PUSH
// immediate.
func (f *frame) validJumpdest(dest *uint256.Int) bool {
	if !dest.IsUint64() {
		return false
	}
	pos := dest.Uint64()
	if pos >= uint64(len(f.code)) {
		return false
	}
	if OpCode(f.code[pos]) != JUMPDEST {
		return false
	}
	if f.analysis == nil {
		f.analysis = analyzeCode(f.code)
	}
	return f.analysis.ValidJumpdest(pos)
}

// canTransfer checks balance sufficiency.
func (e *EVM) canTransfer(from types.Address, amount *uint256.Int) bool {
	return !e.State.GetBalance(from).Lt(amount)
}

// transfer moves value between accounts.
func (e *EVM) transfer(from, to types.Address, amount *uint256.Int) {
	e.State.SubBalance(from, amount)
	e.State.AddBalance(to, amount)
}

// Call executes the code at addr with the given input as a message
// call. It returns the return data, the leftover gas, and an error
// (ErrExecutionReverted for REVERT).
func (e *EVM) Call(caller, addr types.Address, input []byte, gas uint64, value *uint256.Int) ([]byte, uint64, error) {
	return e.callInternal(CallKindCall, caller, addr, addr, input, gas, value, false)
}

// StaticCall executes a read-only message call.
func (e *EVM) StaticCall(caller, addr types.Address, input []byte, gas uint64) ([]byte, uint64, error) {
	return e.callInternal(CallKindStaticCall, caller, addr, addr, input, gas, new(uint256.Int), true)
}

// callInternal is the shared message-call path.
// storageCtx is the address whose storage/balance the code runs
// against; codeAddr is where the code is loaded from (they differ for
// CALLCODE/DELEGATECALL).
func (e *EVM) callInternal(kind CallKind, caller, storageCtx, codeAddr types.Address, input []byte, gas uint64, value *uint256.Int, forceReadOnly bool) ([]byte, uint64, error) {
	if e.depth == 0 {
		e.refreshHookFlags()
	}
	if e.depth > StackLimit {
		return nil, gas, ErrDepth
	}
	transfersValue := kind == CallKindCall && !value.IsZero()
	if (kind == CallKindCall || kind == CallKindCallCode) && !e.canTransfer(caller, value) {
		return nil, gas, ErrInsufficientBalance
	}

	snap := e.State.Snapshot()
	if transfersValue {
		e.transfer(caller, storageCtx, value)
	}

	// Precompile dispatch.
	if pc, ok := precompile(codeAddr); ok {
		if e.hookCallEnter {
			e.Hooks.callEnter(CallFrameInfo{
				Kind: kind, Depth: e.depth, Caller: caller, Address: storageCtx,
				CodeAddr: codeAddr, Gas: gas, Value: value.Clone(), InputSize: len(input),
			})
		}
		ret, left, err := runPrecompile(pc, input, gas)
		if err != nil && !errors.Is(err, ErrExecutionReverted) {
			e.State.RevertToSnapshot(snap)
		}
		if e.hookCallExit {
			e.Hooks.callExit(CallResultInfo{Depth: e.depth, GasUsed: gas - left, ReturnSize: len(ret), Err: err})
		}
		return ret, left, err
	}

	codeHash := e.State.GetCodeHash(codeAddr)
	code := e.State.GetCode(codeAddr)
	if e.hookWS {
		e.Hooks.worldState(WorldStateAccess{Kind: WSCode, Addr: codeAddr, Warm: true})
	}

	if e.hookCallEnter {
		e.Hooks.callEnter(CallFrameInfo{
			Kind: kind, Depth: e.depth, Caller: caller, Address: storageCtx,
			CodeAddr: codeAddr, Gas: gas, Value: value.Clone(),
			InputSize: len(input), CodeSize: len(code),
		})
	}

	if len(code) == 0 {
		// Plain transfer or call to an EOA.
		if e.hookCallExit {
			e.Hooks.callExit(CallResultInfo{Depth: e.depth, GasUsed: 0})
		}
		return nil, gas, nil
	}

	f := e.newFrame(caller, storageCtx, codeAddr, code, input, value, gas,
		sharedAnalysis.analyze(codeHash, code))

	prevRO := e.readOnly
	if forceReadOnly {
		e.readOnly = true
	}
	e.depth++
	ret, err := e.run(f)
	e.depth--
	e.readOnly = prevRO

	leftGas := f.gas
	e.releaseFrame(f)

	if err != nil && !errors.Is(err, ErrExecutionReverted) {
		// Hard failure burns remaining gas and reverts state.
		e.State.RevertToSnapshot(snap)
		if e.hookCallExit {
			e.Hooks.callExit(CallResultInfo{Depth: e.depth, GasUsed: gas, Err: err})
		}
		return nil, 0, err
	}
	if errors.Is(err, ErrExecutionReverted) {
		e.State.RevertToSnapshot(snap)
	}
	if e.hookCallExit {
		e.Hooks.callExit(CallResultInfo{
			Depth: e.depth, GasUsed: gas - leftGas, ReturnSize: len(ret),
			Err: err, Reverted: errors.Is(err, ErrExecutionReverted),
		})
	}
	return ret, leftGas, err
}

// Create deploys a contract with CREATE address derivation.
func (e *EVM) Create(caller types.Address, initCode []byte, gas uint64, value *uint256.Int) ([]byte, types.Address, uint64, error) {
	nonce := e.State.GetNonce(caller)
	addr := types.CreateAddress(caller, nonce)
	return e.createAt(CallKindCreate, caller, addr, initCode, nil, gas, value)
}

// Create2 deploys a contract with the EIP-1014 salted address.
func (e *EVM) Create2(caller types.Address, initCode []byte, salt types.Hash, gas uint64, value *uint256.Int) ([]byte, types.Address, uint64, error) {
	var codeHash types.Hash
	keccak.Sum256Into(codeHash[:], initCode)
	addr := types.Create2Address(caller, salt, codeHash)
	return e.createAt(CallKindCreate2, caller, addr, initCode, &codeHash, gas, value)
}

// createAt is the shared deployment path. initCodeHash, when non-nil,
// is the already-computed keccak of initCode (CREATE2 pays for it as
// part of address derivation) and keys the shared analysis cache;
// CREATE initcode has no precomputed hash and is analyzed lazily per
// frame instead.
func (e *EVM) createAt(kind CallKind, caller, addr types.Address, initCode []byte, initCodeHash *types.Hash, gas uint64, value *uint256.Int) ([]byte, types.Address, uint64, error) {
	if e.depth == 0 {
		e.refreshHookFlags()
	}
	if e.depth > StackLimit {
		return nil, types.Address{}, gas, ErrDepth
	}
	if len(initCode) > MaxInitCodeSize {
		return nil, types.Address{}, gas, ErrMaxInitCodeSize
	}
	if !e.canTransfer(caller, value) {
		return nil, types.Address{}, gas, ErrInsufficientBalance
	}
	callerNonce := e.State.GetNonce(caller)
	if callerNonce+1 < callerNonce {
		return nil, types.Address{}, gas, ErrNonceOverflow
	}
	e.State.SetNonce(caller, callerNonce+1)

	// Collision check: an account with code or nonce blocks creation.
	if e.State.GetNonce(addr) != 0 ||
		(e.State.GetCodeHash(addr) != types.Hash{} && e.State.GetCodeHash(addr) != types.EmptyCodeHash) {
		return nil, types.Address{}, 0, ErrAddressCollision
	}

	snap := e.State.Snapshot()
	e.State.CreateAccount(addr)
	e.State.SetNonce(addr, 1)
	e.transfer(caller, addr, value)

	if e.hookCallEnter {
		e.Hooks.callEnter(CallFrameInfo{
			Kind: kind, Depth: e.depth, Caller: caller, Address: addr,
			CodeAddr: addr, Gas: gas, Value: value.Clone(),
			InputSize: 0, CodeSize: len(initCode),
		})
	}

	var analysis *CodeAnalysis
	if initCodeHash != nil {
		analysis = sharedAnalysis.analyze(*initCodeHash, initCode)
	}
	f := e.newFrame(caller, addr, addr, initCode, nil, value, gas, analysis)
	e.depth++
	ret, err := e.run(f)
	e.depth--

	if err == nil {
		// Deposit the returned code.
		switch {
		case len(ret) > MaxCodeSize:
			err = ErrMaxCodeSize
		case len(ret) > 0 && ret[0] == 0xef:
			// EIP-3541: reject EOF-prefixed code.
			err = ErrInvalidOpcode
		default:
			depositGas := uint64(len(ret)) * createDataGas
			if !f.useGas(depositGas) {
				err = ErrOutOfGas
			} else {
				e.State.SetCode(addr, ret)
			}
		}
	}

	leftGas := f.gas
	e.releaseFrame(f)

	if err != nil && !errors.Is(err, ErrExecutionReverted) {
		e.State.RevertToSnapshot(snap)
		if e.hookCallExit {
			e.Hooks.callExit(CallResultInfo{Depth: e.depth, GasUsed: gas, Err: err})
		}
		return nil, types.Address{}, 0, err
	}
	if errors.Is(err, ErrExecutionReverted) {
		e.State.RevertToSnapshot(snap)
		if e.hookCallExit {
			e.Hooks.callExit(CallResultInfo{Depth: e.depth, GasUsed: gas - leftGas, Err: err, Reverted: true})
		}
		return ret, types.Address{}, leftGas, err
	}
	if e.hookCallExit {
		e.Hooks.callExit(CallResultInfo{Depth: e.depth, GasUsed: gas - leftGas, ReturnSize: len(ret)})
	}
	return ret, addr, leftGas, nil
}

// ExecutionResult summarizes one applied transaction.
type ExecutionResult struct {
	GasUsed         uint64
	ReturnData      []byte
	Err             error // nil on success; ErrExecutionReverted on revert
	Logs            []*types.Log
	CreatedContract types.Address
}

// Reverted reports whether the transaction reverted.
func (r *ExecutionResult) Reverted() bool {
	return errors.Is(r.Err, ErrExecutionReverted)
}

// ApplyTransaction validates and executes tx against the overlay,
// charging gas to the sender and crediting the coinbase, exactly as a
// node (or pre-executor) would. Validation failures return an error
// and leave the state untouched; execution failures are reported
// inside the result.
func (e *EVM) ApplyTransaction(tx *types.Transaction) (*ExecutionResult, error) {
	sender, err := tx.Sender()
	if err != nil {
		return nil, fmt.Errorf("evm: apply: %w", err)
	}
	e.State.BeginTx()
	e.Tx = TxContext{Origin: sender, GasPrice: tx.GasPrice.Clone()}

	// Nonce check.
	if have := e.State.GetNonce(sender); have != tx.Nonce {
		return nil, fmt.Errorf("%w: have %d, tx %d", ErrNonceMismatch, have, tx.Nonce)
	}
	// Balance check: gasLimit*price + value.
	cost := new(uint256.Int).Mul(uint256.NewInt(tx.GasLimit), tx.GasPrice)
	cost.Add(cost, tx.Value)
	if e.State.GetBalance(sender).Lt(cost) {
		return nil, ErrInsufficientFunds
	}
	intrinsic, err := IntrinsicGas(tx.Data, tx.IsCreate())
	if err != nil {
		return nil, err
	}
	if intrinsic > tx.GasLimit {
		return nil, fmt.Errorf("%w: intrinsic %d > limit %d", ErrIntrinsicGas, intrinsic, tx.GasLimit)
	}

	// Buy gas.
	upfront := new(uint256.Int).Mul(uint256.NewInt(tx.GasLimit), tx.GasPrice)
	e.State.SubBalance(sender, upfront)
	// For calls, bump the nonce here; for creates, Create() bumps it
	// (and derives the contract address from the pre-bump value).
	if !tx.IsCreate() {
		e.State.SetNonce(sender, tx.Nonce+1)
	}

	// Warm the mandatory access-list entries (EIP-2929/3651).
	e.State.AddressWarm(sender)
	e.State.AddressWarm(e.Block.Coinbase)
	if tx.To != nil {
		e.State.AddressWarm(*tx.To)
	}

	gas := tx.GasLimit - intrinsic
	var (
		ret     []byte
		leftGas uint64
		vmErr   error
		created types.Address
	)
	logsBefore := len(e.State.Logs())
	if tx.IsCreate() {
		ret, created, leftGas, vmErr = e.Create(sender, tx.Data, gas, tx.Value)
	} else {
		ret, leftGas, vmErr = e.Call(sender, *tx.To, tx.Data, gas, tx.Value)
	}

	gasUsed := tx.GasLimit - leftGas
	// Apply refunds (capped).
	refund := e.State.GetRefund()
	if maxRefund := gasUsed / MaxRefundQuotient; refund > maxRefund {
		refund = maxRefund
	}
	gasUsed -= refund
	leftGas = tx.GasLimit - gasUsed

	// Return leftover gas and pay the coinbase.
	e.State.AddBalance(sender, new(uint256.Int).Mul(uint256.NewInt(leftGas), tx.GasPrice))
	e.State.AddBalance(e.Block.Coinbase, new(uint256.Int).Mul(uint256.NewInt(gasUsed), tx.GasPrice))

	e.State.FinaliseTx()

	return &ExecutionResult{
		GasUsed:         gasUsed,
		ReturnData:      ret,
		Err:             vmErr,
		Logs:            e.State.Logs()[logsBefore:],
		CreatedContract: created,
	}, nil
}
