package asm

import (
	"bytes"
	"errors"
	"testing"

	"hardtape/internal/evm"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// execute runs assembled code in a fresh EVM and returns (ret, err).
func execute(t *testing.T, code []byte, input []byte) ([]byte, error) {
	t.Helper()
	contract := types.MustAddress("0xc0de00000000000000000000000000000000c0de")
	caller := types.MustAddress("0xca11e4000000000000000000000000000000ca11")
	o := state.NewOverlay(state.NewWorldState())
	o.CreateAccount(caller)
	o.AddBalance(caller, uint256.NewInt(1<<40))
	o.CreateAccount(contract)
	o.SetCode(contract, code)
	e := evm.New(evm.BlockContext{Number: 1, GasLimit: 30_000_000}, o)
	ret, _, err := e.Call(caller, contract, input, 5_000_000, new(uint256.Int))
	return ret, err
}

func TestPushEncoding(t *testing.T) {
	code := New().Push(0).MustAssemble()
	if !bytes.Equal(code, []byte{byte(evm.PUSH0)}) {
		t.Fatalf("Push(0) = %x", code)
	}
	code = New().Push(0xff).MustAssemble()
	if !bytes.Equal(code, []byte{byte(evm.PUSH1), 0xff}) {
		t.Fatalf("Push(0xff) = %x", code)
	}
	code = New().Push(0x1234).MustAssemble()
	if !bytes.Equal(code, []byte{byte(evm.PUSH1) + 1, 0x12, 0x34}) {
		t.Fatalf("Push(0x1234) = %x", code)
	}
}

func TestPushBytesValidation(t *testing.T) {
	if _, err := New().PushBytes(nil).Assemble(); err == nil {
		t.Error("empty PushBytes should fail")
	}
	if _, err := New().PushBytes(make([]byte, 33)).Assemble(); err == nil {
		t.Error("33-byte PushBytes should fail")
	}
}

func TestLabelsAndJumps(t *testing.T) {
	// Count down from 3 in a loop, then return 0x77.
	code := New().
		Push(3).
		Label("loop").
		Push(1).Op(evm.SWAP1, evm.SUB).
		Op(evm.DUP1).
		JumpI("loop").
		Op(evm.POP).
		Push(0x77).Push(0).Op(evm.MSTORE).
		ReturnData(0, 32).
		MustAssemble()
	ret, err := execute(t, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x77)) {
		t.Fatalf("loop result = %s", got)
	}
}

func TestUnknownAndDuplicateLabels(t *testing.T) {
	if _, err := New().Jump("nowhere").Assemble(); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("unknown label: %v", err)
	}
	if _, err := New().Label("a").Label("a").Assemble(); !errors.Is(err, ErrDuplicateLabel) {
		t.Errorf("duplicate label: %v", err)
	}
}

func TestSStoreHelper(t *testing.T) {
	code := New().
		SStore(5, 0xabc).
		Push(5).Op(evm.SLOAD).
		Push(0).Op(evm.MSTORE).
		ReturnData(0, 32).
		MustAssemble()
	ret, err := execute(t, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0xabc)) {
		t.Fatalf("SStore helper = %s", got)
	}
}

func TestDeployWrapper(t *testing.T) {
	runtime := New().
		Push(0x99).Push(0).Op(evm.MSTORE).
		ReturnData(0, 32).
		MustAssemble()
	initCode := DeployWrapper(runtime)

	caller := types.MustAddress("0xca11e4000000000000000000000000000000ca11")
	o := state.NewOverlay(state.NewWorldState())
	o.CreateAccount(caller)
	o.AddBalance(caller, uint256.NewInt(1<<40))
	e := evm.New(evm.BlockContext{Number: 1}, o)
	_, addr, _, err := e.Create(caller, initCode, 5_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o.GetCode(addr), runtime) {
		t.Fatalf("deployed %x want %x", o.GetCode(addr), runtime)
	}
	ret, _, err := e.Call(caller, addr, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x99)) {
		t.Fatalf("deployed contract returned %s", got)
	}
}

func TestPushAddrRoundTrip(t *testing.T) {
	addr := types.MustAddress("0x00112233445566778899aabbccddeeff00112233")
	code := New().
		PushAddr(addr).
		Push(0).Op(evm.MSTORE).
		ReturnData(0, 32).
		MustAssemble()
	ret, err := execute(t, code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if types.BytesToAddress(ret[12:]) != addr {
		t.Fatalf("PushAddr = %x", ret)
	}
}
