// Package asm is a small EVM assembler used to build the synthetic
// workload contracts and interpreter tests: ops, typed pushes, and
// two-pass label resolution for jumps.
package asm

import (
	"errors"
	"fmt"

	"hardtape/internal/evm"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

// Assembler builds EVM bytecode. Use the fluent methods then call
// Assemble. The zero value is ready to use.
type Assembler struct {
	buf    []byte
	labels map[string]uint16
	// patches records PUSH2 immediates awaiting label resolution.
	patches []patch
	err     error
}

type patch struct {
	offset int
	label  string
}

// Errors returned by Assemble.
var (
	ErrUnknownLabel   = errors.New("asm: unknown label")
	ErrDuplicateLabel = errors.New("asm: duplicate label")
	ErrCodeTooLarge   = errors.New("asm: code exceeds 65535 bytes (label space)")
)

// New returns an empty assembler.
func New() *Assembler {
	return &Assembler{labels: make(map[string]uint16)}
}

// Op appends raw opcodes.
func (a *Assembler) Op(ops ...evm.OpCode) *Assembler {
	for _, op := range ops {
		a.buf = append(a.buf, byte(op))
	}
	return a
}

// Raw appends raw bytes verbatim.
func (a *Assembler) Raw(b ...byte) *Assembler {
	a.buf = append(a.buf, b...)
	return a
}

// Push appends the minimal PUSH for v.
func (a *Assembler) Push(v uint64) *Assembler {
	return a.PushInt(uint256.NewInt(v))
}

// PushInt appends the minimal PUSH for a 256-bit value (PUSH0 for 0).
func (a *Assembler) PushInt(v *uint256.Int) *Assembler {
	if v.IsZero() {
		return a.Op(evm.PUSH0)
	}
	b := v.Bytes()
	a.buf = append(a.buf, byte(evm.PUSH1)+byte(len(b)-1))
	a.buf = append(a.buf, b...)
	return a
}

// PushBytes appends a PUSH of up to 32 raw bytes.
func (a *Assembler) PushBytes(b []byte) *Assembler {
	if len(b) == 0 || len(b) > 32 {
		a.fail(fmt.Errorf("asm: PushBytes length %d out of range", len(b)))
		return a
	}
	a.buf = append(a.buf, byte(evm.PUSH1)+byte(len(b)-1))
	a.buf = append(a.buf, b...)
	return a
}

// PushAddr appends a PUSH20 of an address.
func (a *Assembler) PushAddr(addr types.Address) *Assembler {
	return a.PushBytes(addr[:])
}

// Label defines a jump target at the current position and emits a
// JUMPDEST.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("%w: %q", ErrDuplicateLabel, name))
		return a
	}
	if len(a.buf) > 0xffff {
		a.fail(ErrCodeTooLarge)
		return a
	}
	a.labels[name] = uint16(len(a.buf))
	return a.Op(evm.JUMPDEST)
}

// PushLabel emits a PUSH2 whose immediate is resolved to the label's
// offset at Assemble time.
func (a *Assembler) PushLabel(name string) *Assembler {
	a.buf = append(a.buf, byte(evm.PUSH1)+1, 0, 0)
	a.patches = append(a.patches, patch{offset: len(a.buf) - 2, label: name})
	return a
}

// Jump emits an unconditional jump to a label.
func (a *Assembler) Jump(name string) *Assembler {
	return a.PushLabel(name).Op(evm.JUMP)
}

// JumpI emits a conditional jump to a label (condition on stack).
func (a *Assembler) JumpI(name string) *Assembler {
	return a.PushLabel(name).Op(evm.JUMPI)
}

// MStore emits code storing a constant at a memory offset.
func (a *Assembler) MStore(offset uint64, value *uint256.Int) *Assembler {
	return a.PushInt(value).Push(offset).Op(evm.MSTORE)
}

// SStore emits code storing a constant at a storage key.
func (a *Assembler) SStore(key, value uint64) *Assembler {
	return a.Push(value).Push(key).Op(evm.SSTORE)
}

// ReturnData emits code returning memory [offset, offset+size).
func (a *Assembler) ReturnData(offset, size uint64) *Assembler {
	return a.Push(size).Push(offset).Op(evm.RETURN)
}

// Stop emits STOP.
func (a *Assembler) Stop() *Assembler {
	return a.Op(evm.STOP)
}

func (a *Assembler) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Assemble resolves labels and returns the bytecode.
func (a *Assembler) Assemble() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.buf) > 0xffff+1 {
		return nil, ErrCodeTooLarge
	}
	out := make([]byte, len(a.buf))
	copy(out, a.buf)
	for _, p := range a.patches {
		target, ok := a.labels[p.label]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownLabel, p.label)
		}
		out[p.offset] = byte(target >> 8)
		out[p.offset+1] = byte(target)
	}
	return out, nil
}

// MustAssemble is Assemble, panicking on error (test/workload helper).
func (a *Assembler) MustAssemble() []byte {
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}

// DeployWrapper wraps runtime code in a standard constructor that
// returns it (CODECOPY + RETURN), yielding initcode for CREATE.
func DeployWrapper(runtime []byte) []byte {
	a := New()
	// PUSH len, PUSH srcOffset(label), PUSH 0, CODECOPY; PUSH len, PUSH 0, RETURN
	a.Push(uint64(len(runtime)))
	a.PushLabel("runtime")
	a.Push(0)
	a.Op(evm.CODECOPY)
	a.Push(uint64(len(runtime)))
	a.Push(0)
	a.Op(evm.RETURN)
	// Label must point at the runtime bytes, not a JUMPDEST: record
	// manually.
	a.labels["runtime"] = uint16(len(a.buf))
	a.Raw(runtime...)
	code, err := a.Assemble()
	if err != nil {
		panic(err) // unreachable: label always defined
	}
	return code
}
