package evm

import (
	"hardtape/internal/uint256"
)

// StackLimit is the EVM runtime stack depth limit.
const StackLimit = 1024

// Stack is the EVM's 1024-slot 256-bit operand stack. Slots are stored
// by value; peek returns pointers into the backing array that are valid
// until the next mutation.
//
// The backing array is allocated at full capacity (StackLimit+1 words,
// 32 KiB) up front: the interpreter validates depth before every
// opcode, so pushes can extend by reslicing — no append machinery, no
// growth checks — and pooled reuse keeps the one-time allocation
// amortized across transactions.
type Stack struct {
	data []uint256.Int
}

// newStack returns an empty stack with full preallocated capacity.
func newStack() *Stack {
	return &Stack{data: make([]uint256.Int, 0, StackLimit+1)}
}

// Len returns the current depth.
func (s *Stack) Len() int { return len(s.data) }

// push appends a copy of v. Depth checks happen in the interpreter.
func (s *Stack) push(v *uint256.Int) {
	n := len(s.data)
	s.data = s.data[:n+1]
	s.data[n] = *v
}

// pushSlot extends the stack by one slot and returns a pointer to it.
// The slot is NOT zeroed — it may hold a previously popped value — so
// the caller must fully overwrite it (SetBytes/SetUint64) before any
// other stack operation.
func (s *Stack) pushSlot() *uint256.Int {
	n := len(s.data)
	s.data = s.data[:n+1]
	return &s.data[n]
}

// pushUint64 pushes v without an intermediate heap allocation.
func (s *Stack) pushUint64(v uint64) {
	n := len(s.data)
	s.data = s.data[:n+1]
	s.data[n].SetUint64(v)
}

// pushZero pushes a zero word.
func (s *Stack) pushZero() {
	n := len(s.data)
	s.data = s.data[:n+1]
	s.data[n] = uint256.Int{}
}

// drop removes the top value without copying it out (POP fast path).
func (s *Stack) drop() {
	s.data = s.data[:len(s.data)-1]
}

// reset empties the stack for pooled reuse, clearing the live slots so
// no operand values survive into the next owner. Slots above the final
// depth may hold residue from popped values, but they are unreachable:
// every push path fully overwrites its slot before it becomes readable.
func (s *Stack) reset() {
	clear(s.data)
	s.data = s.data[:0]
}

// pop removes and returns the top value.
func (s *Stack) pop() uint256.Int {
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v
}

// peek returns a pointer to the n'th element from the top (0 = top).
func (s *Stack) peek(n int) *uint256.Int {
	return &s.data[len(s.data)-1-n]
}

// swap exchanges the top with the n'th element below it (1-based).
// Index form: the compiler lowers it to register moves, where the
// pointer form would call memmove per 32-byte word.
func (s *Stack) swap(n int) {
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
}

// dup pushes a copy of the n'th element from the top (1-based).
func (s *Stack) dup(n int) {
	ln := len(s.data)
	s.data = s.data[:ln+1]
	s.data[ln] = s.data[ln-n]
}

// Snapshot returns a copy of the stack contents, bottom first
// (tracer support).
func (s *Stack) Snapshot() []uint256.Int {
	out := make([]uint256.Int, len(s.data))
	copy(out, s.data)
	return out
}
