package evm

import (
	"hardtape/internal/uint256"
)

// StackLimit is the EVM runtime stack depth limit.
const StackLimit = 1024

// Stack is the EVM's 1024-slot 256-bit operand stack. Slots are stored
// by value; peek returns pointers into the backing array that are valid
// until the next mutation.
type Stack struct {
	data []uint256.Int
}

// newStack returns an empty stack with modest preallocated capacity.
func newStack() *Stack {
	return &Stack{data: make([]uint256.Int, 0, 64)}
}

// Len returns the current depth.
func (s *Stack) Len() int { return len(s.data) }

// push appends a copy of v. Depth checks happen in the interpreter.
func (s *Stack) push(v *uint256.Int) {
	s.data = append(s.data, *v)
}

// pop removes and returns the top value.
func (s *Stack) pop() uint256.Int {
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v
}

// peek returns a pointer to the n'th element from the top (0 = top).
func (s *Stack) peek(n int) *uint256.Int {
	return &s.data[len(s.data)-1-n]
}

// swap exchanges the top with the n'th element below it (1-based).
func (s *Stack) swap(n int) {
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
}

// dup pushes a copy of the n'th element from the top (1-based).
func (s *Stack) dup(n int) {
	s.data = append(s.data, s.data[len(s.data)-n])
}

// Snapshot returns a copy of the stack contents, bottom first
// (tracer support).
func (s *Stack) Snapshot() []uint256.Int {
	out := make([]uint256.Int, len(s.data))
	copy(out, s.data)
	return out
}
