package evm

// OpClass buckets the instruction set into the coarse categories the
// telemetry layer samples (paper-eval question: where do pipeline
// cycles go — arithmetic, data movement, world state, or control?).
// Classes are deliberately few: counters are per-class, never per-PC
// or per-address, so exported samples carry no program identity.
type OpClass int

// Op classes.
const (
	OpClassArith   OpClass = iota // ADD..SIGNEXTEND, LT..SAR
	OpClassKeccak                 // KECCAK256
	OpClassEnv                    // ADDRESS..BLOBBASEFEE, PC, MSIZE, GAS
	OpClassMemory                 // MLOAD/MSTORE/MSTORE8/MCOPY, *COPY
	OpClassStorage                // SLOAD/SSTORE/TLOAD/TSTORE
	OpClassStack                  // POP, PUSH*, DUP*, SWAP*
	OpClassControl                // JUMP/JUMPI/JUMPDEST, STOP/RETURN/REVERT/INVALID
	OpClassCall                   // CALL family, CREATE family, SELFDESTRUCT
	OpClassLog                    // LOG0..LOG4
	OpClassOther                  // anything undefined

	NumOpClasses = int(OpClassOther) + 1
)

// String returns the export label for the class (constant strings —
// the telemetrysafe invariant for metric labels).
func (c OpClass) String() string {
	switch c {
	case OpClassArith:
		return "arith"
	case OpClassKeccak:
		return "keccak"
	case OpClassEnv:
		return "env"
	case OpClassMemory:
		return "memory"
	case OpClassStorage:
		return "storage"
	case OpClassStack:
		return "stack"
	case OpClassControl:
		return "control"
	case OpClassCall:
		return "call"
	case OpClassLog:
		return "log"
	default:
		return "other"
	}
}

// _opClassTable maps every opcode to its class once, at init.
var _opClassTable = buildOpClassTable()

func buildOpClassTable() [256]OpClass {
	var t [256]OpClass
	for i := range t {
		op := OpCode(i)
		switch {
		case op == STOP:
			t[i] = OpClassControl
		case op >= ADD && op <= SAR:
			t[i] = OpClassArith
		case op == KECCAK256:
			t[i] = OpClassKeccak
		case op >= ADDRESS && op <= 0x4a: // env + block context range
			switch op {
			case CALLDATACOPY, CODECOPY, EXTCODECOPY, RETURNDATACOPY:
				t[i] = OpClassMemory
			default:
				t[i] = OpClassEnv
			}
		case op == POP:
			t[i] = OpClassStack
		case op == MLOAD || op == MSTORE || op == MSTORE8 || op == MCOPY:
			t[i] = OpClassMemory
		case op == SLOAD || op == SSTORE || op == TLOAD || op == TSTORE:
			t[i] = OpClassStorage
		case op == JUMP || op == JUMPI || op == JUMPDEST:
			t[i] = OpClassControl
		case op == PC || op == MSIZE || op == GAS:
			t[i] = OpClassEnv
		case op >= PUSH0 && op <= SWAP16:
			t[i] = OpClassStack
		case op >= LOG0 && op <= LOG4:
			t[i] = OpClassLog
		case op == CREATE || op == CALL || op == CALLCODE || op == DELEGATECALL ||
			op == CREATE2 || op == STATICCALL || op == SELFDESTRUCT:
			t[i] = OpClassCall
		case op == RETURN || op == REVERT || op == INVALID:
			t[i] = OpClassControl
		default:
			t[i] = OpClassOther
		}
	}
	return t
}

// ClassOf returns an opcode's class.
func ClassOf(op OpCode) OpClass { return _opClassTable[op] }

// OpClassCounts accumulates executed-instruction counts per class.
// It is plain (non-atomic) memory: one instance belongs to one HEVM
// slot, counts a bundle, and is flushed into shared telemetry
// counters between bundles — the hot loop pays one array increment,
// no atomics.
type OpClassCounts [NumOpClasses]uint64

// Hooks returns an OnStep hook that counts classes into c. It rides
// the interpreter's hook-presence fast path: installed only when
// telemetry sampling is on, so the disabled cost is the existing
// hookStep flag check.
func (c *OpClassCounts) Hooks() *Hooks {
	return &Hooks{OnStep: func(si StepInfo) {
		c[_opClassTable[si.Op]]++
	}}
}

// Reset zeroes the counts (slot release).
func (c *OpClassCounts) Reset() { *c = OpClassCounts{} }

// Total sums all classes.
func (c *OpClassCounts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}
