package evm

import (
	"testing"

	"hardtape/internal/secp256k1"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

func TestIntrinsicGas(t *testing.T) {
	tests := []struct {
		name     string
		data     []byte
		isCreate bool
		want     uint64
	}{
		{"plain transfer", nil, false, 21000},
		{"one zero byte", []byte{0}, false, 21004},
		{"one nonzero byte", []byte{1}, false, 21016},
		{"mixed", []byte{0, 1, 0, 2}, false, 21000 + 2*4 + 2*16},
		{"create empty", nil, true, 53000},
		// create with 32 bytes: +1 initcode word (EIP-3860).
		{"create word", make([]byte, 32), true, 53000 + 32*4 + 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := IntrinsicGas(tt.data, tt.isCreate)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("IntrinsicGas = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCallGasCap63_64(t *testing.T) {
	// EIP-150: at most available - available/64 forwarded.
	if got := callGasCap(6400, 1<<62); got != 6400-100 {
		t.Fatalf("cap = %d, want %d", got, 6400-100)
	}
	// A modest request passes through.
	if got := callGasCap(6400, 1000); got != 1000 {
		t.Fatalf("small request = %d", got)
	}
}

func TestChildOOGDoesNotKillParent(t *testing.T) {
	// Parent calls callee with a tiny gas budget; callee runs out of
	// gas. The parent sees status 0 and continues.
	calleeLoop := cat(
		[]byte{byte(JUMPDEST)},
		push(0), []byte{byte(JUMP)},
	)
	var code []byte
	code = append(code, push(0)...) // outSize
	code = append(code, push(0)...) // outOff
	code = append(code, push(0)...) // inSize
	code = append(code, push(0)...) // inOff
	code = append(code, push(0)...) // value
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(5000)...) // small gas for an infinite loop
	code = append(code, byte(CALL))
	code = append(code, returnTop...) // return status

	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, calleeLoop)
	ret, left, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatalf("parent must survive child OOG: %v", err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("status = %s, want 0", got)
	}
	if left == 0 {
		t.Fatal("parent should retain most of its gas (63/64 reserve)")
	}
}

func TestCallStipendAllowsLogging(t *testing.T) {
	// A value transfer grants the 2300 stipend; the callee can run a
	// few cheap ops even when the caller forwards 0 gas.
	calleeCode := cat(push(1), push(2), []byte{byte(ADD), byte(POP), byte(STOP)})
	var code []byte
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(5)...) // value > 0 → stipend
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(0)...) // forward zero gas
	code = append(code, byte(CALL))
	code = append(code, returnTop...)

	e := newTestEVM(t, code)
	e.State.AddBalance(testContract, uint256.NewInt(100))
	deployAt(e, calleeAddr, calleeCode)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(1)) {
		t.Fatalf("stipend call status = %s, want 1", got)
	}
}

func TestRefundCappedAtFifthOfGasUsed(t *testing.T) {
	// EIP-3529: refund ≤ gasUsed/5 at transaction level. Pre-set many
	// slots, clear them in the tx; the refund would exceed the cap.
	priv, err := secp256k1.GenerateKey([]byte("refund cap"))
	if err != nil {
		t.Fatal(err)
	}
	sender := types.Address(priv.Public.Address())

	w := state.NewWorldState()
	contract := types.MustAddress("0xaaaa0000000000000000000000000000000000aa")
	// Code: clear slots 0..9.
	var code []byte
	for i := uint64(0); i < 10; i++ {
		code = append(code, push(0)...)
		code = append(code, push(i)...)
		code = append(code, byte(SSTORE))
	}
	code = append(code, byte(STOP))

	acct := types.NewAccount()
	acct.CodeHash = w.SetCode(code)
	if err := w.SetAccount(contract, acct); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 10; i++ {
		if err := w.SetStorage(contract, types.Hash{31: i}, types.Hash{31: 0xff}); err != nil {
			t.Fatal(err)
		}
	}
	sAcct := types.NewAccount()
	sAcct.Balance.SetUint64(1 << 40)
	if err := w.SetAccount(sender, sAcct); err != nil {
		t.Fatal(err)
	}

	o := state.NewOverlay(w)
	e := New(BlockContext{Number: 1}, o)
	tx := &types.Transaction{
		Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: 200_000,
		To: &contract, Value: new(uint256.Int),
	}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	// Raw usage ≈ intrinsic 21000 + 10 clears (≈5005 each) ≈ 71000;
	// uncapped refund would be 10 × 4800 = 48000, far above the cap
	// raw/5 ≈ 14200. With cap = raw/5 and raw = reported + applied,
	// the applied refund must equal reported/4 — and be well below the
	// uncapped 48000.
	const uncappedRefund = uint64(10 * 4800)
	applied := res.GasUsed / 4
	rawUsed := res.GasUsed + applied
	if applied >= uncappedRefund {
		t.Fatalf("cap did not bind: applied %d >= uncapped %d", applied, uncappedRefund)
	}
	if rawUsed/5 != applied {
		t.Fatalf("applied refund %d != raw/5 = %d (gasUsed %d)", applied, rawUsed/5, res.GasUsed)
	}
	// Sanity: raw usage in the expected ballpark.
	if rawUsed < 65_000 || rawUsed > 80_000 {
		t.Fatalf("raw usage %d outside expected range", rawUsed)
	}
}

func TestExtcodeOpsOnEOA(t *testing.T) {
	// EXTCODESIZE of an EOA is 0; EXTCODEHASH of an existing EOA is
	// the empty-code hash; of a non-existent account, 0.
	existing := testCaller // created and funded by newTestEVM
	missing := types.MustAddress("0x00000000000000000000000000000000000000ff")

	run := func(op OpCode, target types.Address) *uint256.Int {
		code := cat([]byte{byte(PUSH1) + 19}, target[:], []byte{byte(op)}, returnTop)
		ret, _, err := runCode(t, code, nil, 100_000)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		return new(uint256.Int).SetBytes(ret)
	}
	if got := run(EXTCODESIZE, existing); !got.IsZero() {
		t.Errorf("EXTCODESIZE(EOA) = %s", got)
	}
	if got := run(EXTCODEHASH, existing); !got.Eq(types.EmptyCodeHash.Word()) {
		t.Errorf("EXTCODEHASH(EOA) = %s", got.Hex())
	}
	if got := run(EXTCODEHASH, missing); !got.IsZero() {
		t.Errorf("EXTCODEHASH(missing) = %s", got.Hex())
	}
}

func TestTransientStorageRevertsWithFrame(t *testing.T) {
	// TSTORE inside a reverting callee must not leak to the caller's
	// later TLOAD (transient storage is journaled).
	calleeCode := cat(
		push(0x55), push(1), []byte{byte(TSTORE)},
		push(0), push(0), []byte{byte(REVERT)},
	)
	var code []byte
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, byte(PUSH1)+19)
	code = append(code, testContract[:]...) // self-call... need callee address
	code = code[:0]
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(100_000)...)
	code = append(code, byte(CALL), byte(POP))
	// TLOAD slot 1 of the CALLEE's transient space is not ours; load
	// our own slot 1 (unset → 0). To check cross-frame leakage we must
	// read the callee's space — use a second, non-reverting call that
	// TLOADs and returns it.
	code = append(code, push(32)...) // outSize
	code = append(code, push(0)...)  // outOff
	code = append(code, push(1)...)  // inSize=1 marks "read mode"
	code = append(code, push(0)...)  // inOff
	code = append(code, push(0)...)  // value
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(100_000)...)
	code = append(code, byte(CALL), byte(POP))
	code = append(code, push(32)...)
	code = append(code, push(0)...)
	code = append(code, byte(RETURN))

	// Callee: if calldata present → return TLOAD(1); else TSTORE+revert.
	calleeCode = cat(
		[]byte{byte(CALLDATASIZE)},
		push(10), []byte{byte(JUMPI)}, // jump to read branch at offset 10
		// write branch (offsets 0..9 must place JUMPDEST at 10)
		push(0x55), push(1), []byte{byte(TSTORE)},
		push(0), push(0), []byte{byte(REVERT)},
	)
	// Compute the read-branch offset dynamically instead of hand
	// counting: rebuild with the asm-style two-pass by padding.
	// offsets: CALLDATASIZE(1) PUSH1 10(2) JUMPI(1) = 4 bytes, then
	// write branch: PUSH1 0x55(2) PUSH1 1(2)? push(1) emits PUSH1 01
	// (2 bytes) TSTORE(1) PUSH0(1) PUSH0(1) REVERT(1) = 8 → JUMPDEST
	// lands at 12, not 10. Rebuild with correct target:
	calleeCode = cat(
		[]byte{byte(CALLDATASIZE)},           // 0
		[]byte{byte(PUSH1), 12, byte(JUMPI)}, // 1..3
		[]byte{byte(PUSH1), 0x55},            // 4..5
		[]byte{byte(PUSH1), 1},               // 6..7
		[]byte{byte(TSTORE)},                 // 8
		[]byte{byte(PUSH0), byte(PUSH0)},     // 9..10
		[]byte{byte(REVERT)},                 // 11
		[]byte{byte(JUMPDEST)},               // 12
		[]byte{byte(PUSH1), 1, byte(TLOAD)},  // 13..15
		[]byte{byte(PUSH0), byte(MSTORE)},    // 16..17
		[]byte{byte(PUSH1), 32, byte(PUSH0)}, // 18..20
		[]byte{byte(RETURN)},                 // 21
	)

	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, calleeCode)
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("transient store leaked through revert: %s", got)
	}
}

func TestCallValueVisibleToCallee(t *testing.T) {
	// The callee's CALLVALUE must equal the transferred amount.
	e := newTestEVM(t, callOpcode(CALL, 777))
	e.State.AddBalance(testContract, uint256.NewInt(10_000))
	deployAt(e, calleeAddr, cat([]byte{byte(CALLVALUE)}, returnTop))
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(777)) {
		t.Fatalf("callee CALLVALUE = %s", got)
	}
	if bal := e.State.GetBalance(calleeAddr); !bal.Eq(uint256.NewInt(777)) {
		t.Fatalf("callee balance = %s", bal)
	}
}

func TestCallcodeKeepsBalanceContext(t *testing.T) {
	// CALLCODE runs foreign code with the CALLER contract's storage
	// AND address: SELFBALANCE must report the proxy's balance.
	e := newTestEVM(t, callOpcode(CALLCODE, 0))
	e.State.AddBalance(testContract, uint256.NewInt(4242))
	deployAt(e, calleeAddr, cat([]byte{byte(SELFBALANCE)}, returnTop))
	e.State.AddBalance(calleeAddr, uint256.NewInt(1))
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(4242)) {
		t.Fatalf("CALLCODE SELFBALANCE = %s, want proxy's 4242", got)
	}
}

func TestPrecompileViaCallOpcode(t *testing.T) {
	// Call the identity precompile (0x04) from bytecode.
	var code []byte
	// Put 0xbeef into memory as input.
	code = append(code, push(0xbeef)...)
	code = append(code, push(0)...)
	code = append(code, byte(MSTORE))
	code = append(code, push(32)...) // outSize
	code = append(code, push(64)...) // outOff
	code = append(code, push(32)...) // inSize
	code = append(code, push(0)...)  // inOff
	code = append(code, push(0)...)  // value
	code = append(code, push(4)...)  // identity precompile address
	code = append(code, push(100_000)...)
	code = append(code, byte(CALL), byte(POP))
	code = append(code, push(64)...)
	code = append(code, byte(MLOAD))
	code = append(code, returnTop...)
	ret, _, err := runCode(t, code, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0xbeef)) {
		t.Fatalf("identity via CALL = %s", got)
	}
}

func TestGasOpcodeReflectsConsumption(t *testing.T) {
	// GAS; PUSH/ADD work; GAS; difference equals charged gas.
	code := cat(
		[]byte{byte(GAS)}, // g1
		push(1), push(2), []byte{byte(ADD), byte(POP)},
		[]byte{byte(GAS)}, // g2
		// return g1 - g2
		[]byte{byte(SWAP1)},
		[]byte{byte(SUB)},
		returnTop,
	)
	ret, _, err := runCode(t, code, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Between the GAS reads: PUSH1(3)+PUSH1(3)+ADD(3)+POP(2)+GAS(2) = 13.
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(13)) {
		t.Fatalf("gas delta = %s, want 13", got)
	}
}
