package evm

import "hardtape/internal/uint256"

// Memory is the EVM's byte-addressed volatile memory, growing in
// 32-byte words. Expansion gas is charged by the interpreter before
// resize is called.
type Memory struct {
	data []byte
}

// newMemory returns an empty memory.
func newMemory() *Memory {
	return &Memory{}
}

// Len returns the current size in bytes (always a multiple of 32).
func (m *Memory) Len() int { return len(m.data) }

// resize grows memory to at least size bytes, rounded up to words.
// Capacity grows geometrically so a loop that expands memory word by
// word costs O(n) total instead of O(n²) re-copies; the newly exposed
// region is zeroed explicitly, which also makes pooled reuse safe
// (reset only truncates).
func (m *Memory) resize(size uint64) {
	if uint64(len(m.data)) >= size {
		return
	}
	words := (size + 31) / 32
	n := words * 32
	if n <= uint64(cap(m.data)) {
		old := len(m.data)
		m.data = m.data[:n]
		clear(m.data[old:])
		return
	}
	newCap := uint64(cap(m.data))
	if newCap < 256 {
		newCap = 256
	}
	for newCap < n {
		newCap *= 2
	}
	buf := make([]byte, n, newCap)
	copy(buf, m.data)
	m.data = buf
}

// reset empties the memory for pooled reuse, keeping the backing array.
// Stale contents are unreachable afterwards: resize zeroes every byte
// it exposes before Len covers it again.
func (m *Memory) reset() {
	m.data = m.data[:0]
}

// set writes value to [offset, offset+len(value)).
func (m *Memory) set(offset uint64, value []byte) {
	if len(value) == 0 {
		return
	}
	copy(m.data[offset:offset+uint64(len(value))], value)
}

// setByte writes a single byte.
func (m *Memory) setByte(offset uint64, b byte) {
	m.data[offset] = b
}

// set32 writes a 256-bit word big-endian at offset.
func (m *Memory) set32(offset uint64, v *uint256.Int) {
	b := v.Bytes32()
	copy(m.data[offset:offset+32], b[:])
}

// get returns a copy of [offset, offset+size).
func (m *Memory) get(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	out := make([]byte, size)
	copy(out, m.data[offset:offset+size])
	return out
}

// view returns a direct slice (no copy); callers must not retain it
// across mutations.
func (m *Memory) view(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	return m.data[offset : offset+size]
}

// copyWithin implements MCOPY semantics (overlapping-safe).
func (m *Memory) copyWithin(dst, src, size uint64) {
	if size == 0 {
		return
	}
	copy(m.data[dst:dst+size], m.data[src:src+size])
}
