package evm

// Gas schedule constants (Shanghai-era values).
const (
	// Transaction-level.
	TxGas               uint64 = 21000
	TxGasContractCreate uint64 = 53000
	TxDataZeroGas       uint64 = 4
	TxDataNonZeroGas    uint64 = 16
	// MaxRefundQuotient caps refunds at gasUsed/5 (EIP-3529).
	MaxRefundQuotient uint64 = 5

	// Memory.
	memoryGasPerWord uint64 = 3
	quadCoeffDiv     uint64 = 512
	copyGasPerWord   uint64 = 3
	keccakGasPerWord uint64 = 6

	// EXP dynamic.
	expByteGas uint64 = 50

	// EIP-2929 access costs.
	ColdAccountAccessGas uint64 = 2600
	ColdSloadGas         uint64 = 2100
	WarmStorageReadGas   uint64 = 100

	// SSTORE (EIP-2200 + 3529).
	sstoreSetGas      uint64 = 20000
	sstoreResetGas    uint64 = 2900 // 5000 - ColdSloadGas
	sstoreClearRefund uint64 = 4800
	sstoreSentryGas   uint64 = 2300

	// Calls.
	callValueTransferGas uint64 = 9000
	callNewAccountGas    uint64 = 25000
	callStipend          uint64 = 2300

	// Creates.
	createDataGas   uint64 = 200 // per byte of deployed code
	initCodeWordGas uint64 = 2   // EIP-3860
	MaxCodeSize            = 24576
	MaxInitCodeSize        = 2 * MaxCodeSize

	// Logs.
	logTopicGas uint64 = 375
	logDataGas  uint64 = 8

	// Selfdestruct.
	selfdestructRefund uint64 = 0 // removed by EIP-3529
)

// memoryGasCost returns the total gas for a memory of the given byte
// size: 3w + w^2/512.
func memoryGasCost(size uint64) (uint64, error) {
	if size == 0 {
		return 0, nil
	}
	words := (size + 31) / 32
	// Overflow guard: words^2 must fit.
	if words > 0xffffffff {
		return 0, ErrGasUintOverflow
	}
	return words*memoryGasPerWord + words*words/quadCoeffDiv, nil
}

// wordCount rounds a byte size up to 32-byte words.
func wordCount(size uint64) uint64 {
	return (size + 31) / 32
}

// IntrinsicGas computes the transaction-level upfront gas.
func IntrinsicGas(data []byte, isCreate bool) (uint64, error) {
	gas := TxGas
	if isCreate {
		gas = TxGasContractCreate
	}
	var zeros, nonZeros uint64
	for _, b := range data {
		if b == 0 {
			zeros++
		} else {
			nonZeros++
		}
	}
	gas += zeros * TxDataZeroGas
	gas += nonZeros * TxDataNonZeroGas
	if isCreate {
		gas += wordCount(uint64(len(data))) * initCodeWordGas
	}
	return gas, nil
}

// callGasCap applies the EIP-150 63/64 rule: at most available -
// available/64 can be forwarded.
func callGasCap(available, requested uint64) uint64 {
	cap := available - available/64
	if requested < cap {
		return requested
	}
	return cap
}
