package evm

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"hardtape/internal/keccak"
	"hardtape/internal/secp256k1"
	"hardtape/internal/state"
	"hardtape/internal/types"
	"hardtape/internal/uint256"
)

var calleeAddr = types.MustAddress("0xbbbb000000000000000000000000000000bbbb00")

// deployAt adds code to an address in the EVM's overlay.
func deployAt(e *EVM, addr types.Address, code []byte) {
	e.State.CreateAccount(addr)
	e.State.SetCode(addr, code)
}

// callOpcode builds caller code performing `op` on calleeAddr with the
// given value (for CALL/CALLCODE) and returning the callee's 32-byte
// output.
func callOpcode(op OpCode, value uint64) []byte {
	var code []byte
	// stack for CALL: gas, addr, value, inOff, inSize, outOff, outSize
	code = append(code, push(32)...) // outSize
	code = append(code, push(0)...)  // outOff
	code = append(code, push(0)...)  // inSize
	code = append(code, push(0)...)  // inOff
	if op == CALL || op == CALLCODE {
		code = append(code, push(value)...)
	}
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(500000)...) // gas
	// Now stack top-down: gas, addr, [value,] inOff, inSize, outOff, outSize.
	code = append(code, byte(op))
	// Return memory[0:32] regardless of status (pop status first).
	code = append(code, byte(POP))
	code = append(code, push(32)...)
	code = append(code, push(0)...)
	code = append(code, byte(RETURN))
	return code
}

func TestCallReturnsCalleeOutput(t *testing.T) {
	e := newTestEVM(t, callOpcode(CALL, 0))
	deployAt(e, calleeAddr, cat(push(0x42), returnTop))
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x42)) {
		t.Fatalf("CALL output = %s", got)
	}
}

func TestCallStorageContext(t *testing.T) {
	// Callee writes 7 to its slot 0. Under CALL, the write lands in the
	// callee's storage; under CALLCODE/DELEGATECALL, in the caller's.
	calleeCode := cat(push(7), push(0), []byte{byte(SSTORE)}, []byte{byte(STOP)})
	for _, tt := range []struct {
		op           OpCode
		wantInCallee bool
	}{
		{CALL, true},
		{CALLCODE, false},
		{DELEGATECALL, false},
	} {
		e := newTestEVM(t, callOpcode(tt.op, 0))
		deployAt(e, calleeAddr, calleeCode)
		if _, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int)); err != nil {
			t.Fatalf("%s: %v", tt.op, err)
		}
		calleeV := e.State.GetStorage(calleeAddr, types.Hash{})
		callerV := e.State.GetStorage(testContract, types.Hash{})
		if tt.wantInCallee && (calleeV.IsZero() || !callerV.IsZero()) {
			t.Errorf("%s: write should land in callee (callee=%s caller=%s)", tt.op, calleeV, callerV)
		}
		if !tt.wantInCallee && (!calleeV.IsZero() || callerV.IsZero()) {
			t.Errorf("%s: write should land in caller (callee=%s caller=%s)", tt.op, calleeV, callerV)
		}
	}
}

func TestDelegateCallPreservesCallerAndValue(t *testing.T) {
	// Callee returns CALLER; under DELEGATECALL it must be the original
	// caller (testCaller), not the proxy contract.
	e := newTestEVM(t, callOpcode(DELEGATECALL, 0))
	deployAt(e, calleeAddr, cat([]byte{byte(CALLER)}, returnTop))
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(testCaller.Word()) {
		t.Fatalf("DELEGATECALL CALLER = %s, want original caller", got.Hex())
	}
}

func TestStaticCallBlocksWrites(t *testing.T) {
	// Callee attempts SSTORE → the static call must fail (status 0).
	statusCode := func(op OpCode) []byte {
		var code []byte
		code = append(code, push(0)...) // outSize
		code = append(code, push(0)...) // outOff
		code = append(code, push(0)...) // inSize
		code = append(code, push(0)...) // inOff
		code = append(code, byte(PUSH1)+19)
		code = append(code, calleeAddr[:]...)
		code = append(code, push(500000)...)
		code = append(code, byte(op))
		code = append(code, returnTop...) // return status
		return code
	}
	e := newTestEVM(t, statusCode(STATICCALL))
	deployAt(e, calleeAddr, cat(push(1), push(0), []byte{byte(SSTORE)}, []byte{byte(STOP)}))
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("STATICCALL with SSTORE should return status 0, got %s", got)
	}
	if !e.State.GetStorage(calleeAddr, types.Hash{}).IsZero() {
		t.Fatal("write leaked through static call")
	}

	// Static context propagates through nested plain CALLs.
	nested := types.MustAddress("0xcccc000000000000000000000000000000cccc00")
	// callee calls nested with CALL; nested SSTOREs.
	calleeCode := func() []byte {
		var code []byte
		code = append(code, push(0)...)
		code = append(code, push(0)...)
		code = append(code, push(0)...)
		code = append(code, push(0)...)
		code = append(code, push(0)...) // value
		code = append(code, byte(PUSH1)+19)
		code = append(code, nested[:]...)
		code = append(code, push(100000)...)
		code = append(code, byte(CALL))
		code = append(code, returnTop...)
		return code
	}()
	e2 := newTestEVM(t, statusCode(STATICCALL))
	deployAt(e2, calleeAddr, calleeCode)
	deployAt(e2, nested, cat(push(1), push(0), []byte{byte(SSTORE)}, []byte{byte(STOP)}))
	_, _, err = e2.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if !e2.State.GetStorage(nested, types.Hash{}).IsZero() {
		t.Fatal("write leaked through nested static context")
	}
}

func TestCallRevertPropagation(t *testing.T) {
	// Callee reverts with data; caller sees status 0 and returndata.
	var code []byte
	code = append(code, push(0)...) // outSize 0 — we'll use RETURNDATACOPY
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...) // value
	code = append(code, byte(PUSH1)+19)
	code = append(code, calleeAddr[:]...)
	code = append(code, push(500000)...)
	code = append(code, byte(CALL))
	code = append(code, byte(POP)) // drop status
	// Copy returndata to memory and return it.
	code = append(code, byte(RETURNDATASIZE))
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, byte(RETURNDATACOPY))
	code = append(code, byte(RETURNDATASIZE))
	code = append(code, push(0)...)
	code = append(code, byte(RETURN))

	e := newTestEVM(t, code)
	deployAt(e, calleeAddr, cat(
		push(0xdead), push(0), []byte{byte(MSTORE)},
		push(32), push(0), []byte{byte(REVERT)},
	))
	ret, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0xdead)) {
		t.Fatalf("revert data via RETURNDATACOPY = %s", got)
	}
}

func TestReturnDataCopyOOB(t *testing.T) {
	// RETURNDATACOPY beyond the buffer is a hard failure.
	code := cat(
		push(64), push(0), push(0), []byte{byte(RETURNDATACOPY)},
	)
	if _, _, err := runCode(t, code, nil, 100_000); !errors.Is(err, ErrReturnDataOOB) {
		t.Fatalf("OOB returndatacopy: %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	// A contract that calls itself recursively; must stop at depth 1024
	// without a hard error at the top.
	var code []byte
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...)
	code = append(code, push(0)...) // value
	code = append(code, byte(PUSH1)+19)
	code = append(code, testContract[:]...)
	code = append(code, byte(GAS)) // forward all gas
	code = append(code, byte(CALL))
	code = append(code, returnTop...)
	_, _, err := runCode(t, code, nil, 10_000_000)
	if err != nil {
		t.Fatalf("recursion top-level: %v", err)
	}
}

func TestCreateDeploysContract(t *testing.T) {
	// Initcode returning runtime [PUSH1 7, ... returnTop].
	runtime := cat(push(7), returnTop)
	// Build initcode: store runtime at 0 via MSTORE of padded word(s),
	// then RETURN. Simpler: CODECOPY the tail of initcode.
	// initcode layout: [header | runtime]
	header := func(runtimeLen, runtimeOff uint64) []byte {
		return cat(
			push(runtimeLen), push(runtimeOff), push(0), []byte{byte(CODECOPY)},
			push(runtimeLen), push(0), []byte{byte(RETURN)},
		)
	}
	// Compute header length by fixed-point iteration (PUSH width
	// depends on the offset value).
	h := header(uint64(len(runtime)), 0)
	for {
		next := header(uint64(len(runtime)), uint64(len(h)))
		if len(next) == len(h) {
			h = next
			break
		}
		h = next
	}
	initCode := cat(h, runtime)

	e := newTestEVM(t, nil)
	ret, addr, _, err := e.Create(testCaller, initCode, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatalf("Create: %v (ret=%x)", err, ret)
	}
	if !bytes.Equal(e.State.GetCode(addr), runtime) {
		t.Fatalf("deployed code = %x, want %x", e.State.GetCode(addr), runtime)
	}
	// The deployed contract runs.
	out, _, err := e.Call(testCaller, addr, nil, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(out); !got.Eq(uint256.NewInt(7)) {
		t.Fatalf("deployed contract returned %s", got)
	}
	// Nonce-based address.
	if addr != types.CreateAddress(testCaller, 0) {
		t.Fatalf("create address mismatch")
	}
}

func TestCreate2Address(t *testing.T) {
	initCode := cat(push(0), push(0), []byte{byte(RETURN)}) // deploys empty code
	e := newTestEVM(t, nil)
	var salt types.Hash
	salt[31] = 9
	_, addr, _, err := e.Create2(testCaller, initCode, salt, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	want := types.Create2Address(testCaller, salt, types.BytesToHash(keccakBytes(initCode)))
	if addr != want {
		t.Fatalf("create2 address = %s, want %s", addr, want)
	}
	// Redeploying at the same address collides (nonce was set to 1).
	_, _, _, err = e.Create2(testCaller, initCode, salt, 1_000_000, new(uint256.Int))
	if !errors.Is(err, ErrAddressCollision) {
		t.Fatalf("collision: %v", err)
	}
}

func keccakBytes(b []byte) []byte {
	return keccak.Hash(b)
}

func TestCreateRejectsEOFPrefixAndOversize(t *testing.T) {
	e := newTestEVM(t, nil)
	// Runtime starting with 0xef is rejected (EIP-3541).
	initCode := cat(
		push(0xef), push(0), []byte{byte(MSTORE8)},
		push(1), push(0), []byte{byte(RETURN)},
	)
	if _, _, _, err := e.Create(testCaller, initCode, 1_000_000, new(uint256.Int)); !errors.Is(err, ErrInvalidOpcode) {
		t.Fatalf("EOF prefix: %v", err)
	}
	// Oversized initcode.
	big := make([]byte, MaxInitCodeSize+1)
	if _, _, _, err := e.Create(testCaller, big, 10_000_000, new(uint256.Int)); !errors.Is(err, ErrMaxInitCodeSize) {
		t.Fatalf("oversize initcode: %v", err)
	}
	// Oversized deployed code: return 24577 bytes.
	initCode = cat(push(MaxCodeSize+1), push(0), []byte{byte(RETURN)})
	if _, _, _, err := e.Create(testCaller, initCode, 30_000_000, new(uint256.Int)); !errors.Is(err, ErrMaxCodeSize) {
		t.Fatalf("oversize code: %v", err)
	}
}

func TestCreateRevertReturnsData(t *testing.T) {
	e := newTestEVM(t, nil)
	initCode := cat(
		push(0x55), push(0), []byte{byte(MSTORE)},
		push(32), push(0), []byte{byte(REVERT)},
	)
	ret, _, left, err := e.Create(testCaller, initCode, 1_000_000, new(uint256.Int))
	if !errors.Is(err, ErrExecutionReverted) {
		t.Fatalf("err = %v", err)
	}
	if left == 0 {
		t.Fatal("reverted create should refund gas")
	}
	if got := new(uint256.Int).SetBytes(ret); !got.Eq(uint256.NewInt(0x55)) {
		t.Fatalf("revert data = %s", got)
	}
}

func TestSelfdestructOpcode(t *testing.T) {
	beneficiary := types.MustAddress("0x1234000000000000000000000000000000001234")
	code := cat([]byte{byte(PUSH1) + 19}, beneficiary[:], []byte{byte(SELFDESTRUCT)})
	e := newTestEVM(t, code)
	e.State.AddBalance(testContract, uint256.NewInt(999))
	_, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.State.GetBalance(beneficiary); !got.Eq(uint256.NewInt(999)) {
		t.Fatalf("beneficiary balance = %s", got)
	}
	if !e.State.HasSelfdestructed(testContract) {
		t.Fatal("contract not marked destructed")
	}
}

func TestPrecompileSha256(t *testing.T) {
	target := types.MustAddress("0x0000000000000000000000000000000000000002")
	e := newTestEVM(t, nil)
	input := []byte("hello world")
	ret, _, err := e.Call(testCaller, target, input, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(input)
	if !bytes.Equal(ret, want[:]) {
		t.Fatalf("sha256 precompile = %x", ret)
	}
}

func TestPrecompileIdentity(t *testing.T) {
	target := types.MustAddress("0x0000000000000000000000000000000000000004")
	e := newTestEVM(t, nil)
	input := []byte{1, 2, 3, 4, 5}
	ret, _, err := e.Call(testCaller, target, input, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, input) {
		t.Fatalf("identity = %x", ret)
	}
}

func TestPrecompileEcrecover(t *testing.T) {
	priv, err := secp256k1.GenerateKey([]byte("ecrecover test"))
	if err != nil {
		t.Fatal(err)
	}
	msgHash := types.BytesToHash(keccakBytes([]byte("signed message")))
	sig, err := priv.Sign(msgHash[:])
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 128)
	copy(input[:32], msgHash[:])
	input[63] = sig.V + 27
	sig.R.FillBytes(input[64:96])
	sig.S.FillBytes(input[96:128])

	target := types.MustAddress("0x0000000000000000000000000000000000000001")
	e := newTestEVM(t, nil)
	ret, _, err := e.Call(testCaller, target, input, 100_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	wantAddr := priv.Public.Address()
	if !bytes.Equal(ret[12:], wantAddr[:]) {
		t.Fatalf("ecrecover = %x, want %x", ret[12:], wantAddr)
	}
	// Garbage input returns empty, not error.
	ret, _, err = e.Call(testCaller, target, make([]byte, 128), 100_000, new(uint256.Int))
	if err != nil || len(ret) != 0 {
		t.Fatalf("garbage ecrecover: ret=%x err=%v", ret, err)
	}
}

func TestPrecompileUnsupported(t *testing.T) {
	target := types.MustAddress("0x0000000000000000000000000000000000000005") // modexp
	e := newTestEVM(t, nil)
	_, _, err := e.Call(testCaller, target, nil, 100_000, new(uint256.Int))
	if !errors.Is(err, ErrUnsupportedPrecompile) {
		t.Fatalf("modexp: %v", err)
	}
}

func TestApplyTransaction(t *testing.T) {
	priv, err := secp256k1.GenerateKey([]byte("tx sender"))
	if err != nil {
		t.Fatal(err)
	}
	sender := types.Address(priv.Public.Address())

	w := state.NewWorldState()
	o := state.NewOverlay(w)
	o.CreateAccount(sender)
	o.AddBalance(sender, uint256.NewInt(10_000_000))
	recipient := types.MustAddress("0x7777777777777777777777777777777777777777")

	e := New(BlockContext{Number: 1, GasLimit: 30_000_000,
		Coinbase: types.MustAddress("0x5555555555555555555555555555555555555555")}, o)

	tx := &types.Transaction{
		Nonce:    0,
		GasPrice: uint256.NewInt(2),
		GasLimit: 30_000,
		To:       &recipient,
		Value:    uint256.NewInt(1000),
	}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Reverted() {
		t.Fatalf("result err = %v", res.Err)
	}
	if res.GasUsed != TxGas {
		t.Fatalf("gas used = %d, want %d", res.GasUsed, TxGas)
	}
	if got := o.GetBalance(recipient); !got.Eq(uint256.NewInt(1000)) {
		t.Fatalf("recipient balance = %s", got)
	}
	// Sender paid value + gas.
	wantSender := uint64(10_000_000 - 1000 - 2*TxGas)
	if got := o.GetBalance(sender); !got.Eq(uint256.NewInt(wantSender)) {
		t.Fatalf("sender balance = %s, want %d", got, wantSender)
	}
	// Coinbase earned the fee.
	if got := o.GetBalance(e.Block.Coinbase); !got.Eq(uint256.NewInt(2 * TxGas)) {
		t.Fatalf("coinbase = %s", got)
	}
	if o.GetNonce(sender) != 1 {
		t.Fatal("sender nonce not bumped")
	}

	// Replaying with the same nonce fails.
	if _, err := e.ApplyTransaction(tx); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("replay: %v", err)
	}
}

func TestApplyTransactionValidation(t *testing.T) {
	priv, err := secp256k1.GenerateKey([]byte("validation"))
	if err != nil {
		t.Fatal(err)
	}
	sender := types.Address(priv.Public.Address())
	recipient := types.MustAddress("0x7777777777777777777777777777777777777777")

	newEVM := func(balance uint64) *EVM {
		o := state.NewOverlay(state.NewWorldState())
		o.CreateAccount(sender)
		o.AddBalance(sender, uint256.NewInt(balance))
		return New(BlockContext{Number: 1}, o)
	}

	// Insufficient funds.
	tx := &types.Transaction{Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: 21000, To: &recipient, Value: uint256.NewInt(0)}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	if _, err := newEVM(100).ApplyTransaction(tx); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("funds: %v", err)
	}
	// Intrinsic gas too high.
	tx2 := &types.Transaction{Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: 20000, To: &recipient, Value: new(uint256.Int)}
	if err := tx2.Sign(priv); err != nil {
		t.Fatal(err)
	}
	if _, err := newEVM(1_000_000).ApplyTransaction(tx2); !errors.Is(err, ErrIntrinsicGas) {
		t.Fatalf("intrinsic: %v", err)
	}
	// Unsigned.
	tx3 := &types.Transaction{Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: 21000, To: &recipient, Value: new(uint256.Int)}
	if _, err := newEVM(1_000_000).ApplyTransaction(tx3); err == nil {
		t.Fatal("unsigned tx should fail")
	}
}

func TestApplyTransactionRevertKeepsFee(t *testing.T) {
	priv, err := secp256k1.GenerateKey([]byte("revert fee"))
	if err != nil {
		t.Fatal(err)
	}
	sender := types.Address(priv.Public.Address())

	o := state.NewOverlay(state.NewWorldState())
	o.CreateAccount(sender)
	o.AddBalance(sender, uint256.NewInt(10_000_000))
	target := types.MustAddress("0xaaaa0000000000000000000000000000000000aa")
	o.CreateAccount(target)
	o.SetCode(target, cat(push(0), push(0), []byte{byte(REVERT)}))

	e := New(BlockContext{Number: 1}, o)
	tx := &types.Transaction{Nonce: 0, GasPrice: uint256.NewInt(1), GasLimit: 100_000, To: &target, Value: uint256.NewInt(500)}
	if err := tx.Sign(priv); err != nil {
		t.Fatal(err)
	}
	res, err := e.ApplyTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reverted() {
		t.Fatal("should have reverted")
	}
	// Value transfer rolled back, but gas was still consumed.
	if got := o.GetBalance(target); !got.IsZero() {
		t.Fatalf("target kept value after revert: %s", got)
	}
	if got := o.GetBalance(sender); got.Eq(uint256.NewInt(10_000_000)) {
		t.Fatal("sender paid no gas")
	}
	if o.GetNonce(sender) != 1 {
		t.Fatal("nonce must advance even on revert")
	}
}

func TestHooksFireDuringExecution(t *testing.T) {
	var steps, enters, exits, wsAccesses, memAccesses int
	hooks := &Hooks{
		OnStep:       func(StepInfo) { steps++ },
		OnCallEnter:  func(CallFrameInfo) { enters++ },
		OnCallExit:   func(CallResultInfo) { exits++ },
		OnWorldState: func(WorldStateAccess) { wsAccesses++ },
		OnMemAccess:  func(MemAccess) { memAccesses++ },
	}
	e := newTestEVM(t, callOpcode(CALL, 0))
	e.Hooks = hooks
	deployAt(e, calleeAddr, cat(
		push(1), push(0), []byte{byte(SSTORE)},
		push(3), returnTop,
	))
	if _, _, err := e.Call(testCaller, testContract, nil, 1_000_000, new(uint256.Int)); err != nil {
		t.Fatal(err)
	}
	if steps == 0 || enters != 2 || exits != 2 {
		t.Fatalf("hooks: steps=%d enters=%d exits=%d", steps, enters, exits)
	}
	if wsAccesses == 0 {
		t.Fatal("no world-state accesses observed")
	}
	if memAccesses == 0 {
		t.Fatal("no memory accesses observed")
	}
}
