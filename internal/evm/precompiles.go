package evm

import (
	"crypto/sha256"
	"math/big"

	"hardtape/internal/secp256k1"
	"hardtape/internal/types"
)

// precompiled is a native contract at a reserved address.
type precompiled interface {
	// requiredGas returns the gas cost for the given input.
	requiredGas(input []byte) uint64
	// run executes the precompile.
	run(input []byte) ([]byte, error)
}

// precompile resolves an address to its precompiled contract.
// Addresses 0x01 (ecrecover), 0x02 (sha256) and 0x04 (identity) are
// implemented; the remaining reserved addresses (0x03, 0x05–0x0a)
// return ErrUnsupportedPrecompile, a documented simplification — the
// synthetic workload never calls them.
func precompile(addr types.Address) (precompiled, bool) {
	var reserved bool
	for i := 0; i < 19; i++ {
		if addr[i] != 0 {
			return nil, false
		}
	}
	reserved = addr[19] >= 1 && addr[19] <= 10
	if !reserved {
		return nil, false
	}
	switch addr[19] {
	case 1:
		return ecrecoverPrecompile{}, true
	case 2:
		return sha256Precompile{}, true
	case 4:
		return identityPrecompile{}, true
	default:
		return unsupportedPrecompile{}, true
	}
}

// runPrecompile charges gas and executes.
func runPrecompile(p precompiled, input []byte, gas uint64) ([]byte, uint64, error) {
	cost := p.requiredGas(input)
	if cost > gas {
		return nil, 0, ErrOutOfGas
	}
	gas -= cost
	out, err := p.run(input)
	if err != nil {
		return nil, 0, err
	}
	return out, gas, nil
}

type ecrecoverPrecompile struct{}

func (ecrecoverPrecompile) requiredGas([]byte) uint64 { return 3000 }

func (ecrecoverPrecompile) run(input []byte) ([]byte, error) {
	// Input: hash(32) || v(32) || r(32) || s(32). Invalid inputs return
	// empty output, not an error (EVM convention).
	in := make([]byte, 128)
	copy(in, input)
	hash := in[:32]
	v := in[63] // low byte of the v word
	for _, b := range in[32:63] {
		if b != 0 {
			return nil, nil
		}
	}
	if v != 27 && v != 28 {
		return nil, nil
	}
	r := new(big.Int).SetBytes(in[64:96])
	s := new(big.Int).SetBytes(in[96:128])
	pub, err := secp256k1.Recover(hash, &secp256k1.Signature{R: r, S: s, V: v - 27})
	if err != nil {
		return nil, nil
	}
	addr := pub.Address()
	out := make([]byte, 32)
	copy(out[12:], addr[:])
	return out, nil
}

type sha256Precompile struct{}

func (sha256Precompile) requiredGas(input []byte) uint64 {
	return 60 + 12*wordCount(uint64(len(input)))
}

func (sha256Precompile) run(input []byte) ([]byte, error) {
	h := sha256.Sum256(input)
	return h[:], nil
}

type identityPrecompile struct{}

func (identityPrecompile) requiredGas(input []byte) uint64 {
	return 15 + 3*wordCount(uint64(len(input)))
}

func (identityPrecompile) run(input []byte) ([]byte, error) {
	out := make([]byte, len(input))
	copy(out, input)
	return out, nil
}

type unsupportedPrecompile struct{}

func (unsupportedPrecompile) requiredGas([]byte) uint64 { return 0 }

func (unsupportedPrecompile) run([]byte) ([]byte, error) {
	return nil, ErrUnsupportedPrecompile
}
